# Empty compiler generated dependencies file for vcode_tests.
# This may be replaced when dependencies are built.
