
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/AshTest.cpp" "tests/CMakeFiles/vcode_tests.dir/AshTest.cpp.o" "gcc" "tests/CMakeFiles/vcode_tests.dir/AshTest.cpp.o.d"
  "/root/repo/tests/CoreTest.cpp" "tests/CMakeFiles/vcode_tests.dir/CoreTest.cpp.o" "gcc" "tests/CMakeFiles/vcode_tests.dir/CoreTest.cpp.o.d"
  "/root/repo/tests/DcgTest.cpp" "tests/CMakeFiles/vcode_tests.dir/DcgTest.cpp.o" "gcc" "tests/CMakeFiles/vcode_tests.dir/DcgTest.cpp.o.d"
  "/root/repo/tests/DifferentialTest.cpp" "tests/CMakeFiles/vcode_tests.dir/DifferentialTest.cpp.o" "gcc" "tests/CMakeFiles/vcode_tests.dir/DifferentialTest.cpp.o.d"
  "/root/repo/tests/DisasmTest.cpp" "tests/CMakeFiles/vcode_tests.dir/DisasmTest.cpp.o" "gcc" "tests/CMakeFiles/vcode_tests.dir/DisasmTest.cpp.o.d"
  "/root/repo/tests/DpfStressTest.cpp" "tests/CMakeFiles/vcode_tests.dir/DpfStressTest.cpp.o" "gcc" "tests/CMakeFiles/vcode_tests.dir/DpfStressTest.cpp.o.d"
  "/root/repo/tests/DpfTest.cpp" "tests/CMakeFiles/vcode_tests.dir/DpfTest.cpp.o" "gcc" "tests/CMakeFiles/vcode_tests.dir/DpfTest.cpp.o.d"
  "/root/repo/tests/ErrorTest.cpp" "tests/CMakeFiles/vcode_tests.dir/ErrorTest.cpp.o" "gcc" "tests/CMakeFiles/vcode_tests.dir/ErrorTest.cpp.o.d"
  "/root/repo/tests/ExtensionTest.cpp" "tests/CMakeFiles/vcode_tests.dir/ExtensionTest.cpp.o" "gcc" "tests/CMakeFiles/vcode_tests.dir/ExtensionTest.cpp.o.d"
  "/root/repo/tests/FeatureTest.cpp" "tests/CMakeFiles/vcode_tests.dir/FeatureTest.cpp.o" "gcc" "tests/CMakeFiles/vcode_tests.dir/FeatureTest.cpp.o.d"
  "/root/repo/tests/PeepholeTest.cpp" "tests/CMakeFiles/vcode_tests.dir/PeepholeTest.cpp.o" "gcc" "tests/CMakeFiles/vcode_tests.dir/PeepholeTest.cpp.o.d"
  "/root/repo/tests/QuirksTest.cpp" "tests/CMakeFiles/vcode_tests.dir/QuirksTest.cpp.o" "gcc" "tests/CMakeFiles/vcode_tests.dir/QuirksTest.cpp.o.d"
  "/root/repo/tests/RegressionTest.cpp" "tests/CMakeFiles/vcode_tests.dir/RegressionTest.cpp.o" "gcc" "tests/CMakeFiles/vcode_tests.dir/RegressionTest.cpp.o.d"
  "/root/repo/tests/SimTest.cpp" "tests/CMakeFiles/vcode_tests.dir/SimTest.cpp.o" "gcc" "tests/CMakeFiles/vcode_tests.dir/SimTest.cpp.o.d"
  "/root/repo/tests/SupportTest.cpp" "tests/CMakeFiles/vcode_tests.dir/SupportTest.cpp.o" "gcc" "tests/CMakeFiles/vcode_tests.dir/SupportTest.cpp.o.d"
  "/root/repo/tests/TccTest.cpp" "tests/CMakeFiles/vcode_tests.dir/TccTest.cpp.o" "gcc" "tests/CMakeFiles/vcode_tests.dir/TccTest.cpp.o.d"
  "/root/repo/tests/TestUtil.cpp" "tests/CMakeFiles/vcode_tests.dir/TestUtil.cpp.o" "gcc" "tests/CMakeFiles/vcode_tests.dir/TestUtil.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dpf/CMakeFiles/vcode_dpf.dir/DependInfo.cmake"
  "/root/repo/build/src/dcg/CMakeFiles/vcode_dcg.dir/DependInfo.cmake"
  "/root/repo/build/src/ash/CMakeFiles/vcode_ash.dir/DependInfo.cmake"
  "/root/repo/build/src/tcc/CMakeFiles/vcode_tcc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vcode_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mips/CMakeFiles/vcode_mips.dir/DependInfo.cmake"
  "/root/repo/build/src/sparc/CMakeFiles/vcode_sparc.dir/DependInfo.cmake"
  "/root/repo/build/src/alpha/CMakeFiles/vcode_alpha.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vcode_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
