
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/Extension.cpp" "src/core/CMakeFiles/vcode_core.dir/Extension.cpp.o" "gcc" "src/core/CMakeFiles/vcode_core.dir/Extension.cpp.o.d"
  "/root/repo/src/core/Peephole.cpp" "src/core/CMakeFiles/vcode_core.dir/Peephole.cpp.o" "gcc" "src/core/CMakeFiles/vcode_core.dir/Peephole.cpp.o.d"
  "/root/repo/src/core/RegAlloc.cpp" "src/core/CMakeFiles/vcode_core.dir/RegAlloc.cpp.o" "gcc" "src/core/CMakeFiles/vcode_core.dir/RegAlloc.cpp.o.d"
  "/root/repo/src/core/StrengthReduce.cpp" "src/core/CMakeFiles/vcode_core.dir/StrengthReduce.cpp.o" "gcc" "src/core/CMakeFiles/vcode_core.dir/StrengthReduce.cpp.o.d"
  "/root/repo/src/core/VCode.cpp" "src/core/CMakeFiles/vcode_core.dir/VCode.cpp.o" "gcc" "src/core/CMakeFiles/vcode_core.dir/VCode.cpp.o.d"
  "/root/repo/src/core/VRegLayer.cpp" "src/core/CMakeFiles/vcode_core.dir/VRegLayer.cpp.o" "gcc" "src/core/CMakeFiles/vcode_core.dir/VRegLayer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
