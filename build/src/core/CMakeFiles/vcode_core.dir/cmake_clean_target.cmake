file(REMOVE_RECURSE
  "libvcode_core.a"
)
