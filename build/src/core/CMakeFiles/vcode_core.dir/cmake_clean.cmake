file(REMOVE_RECURSE
  "CMakeFiles/vcode_core.dir/Extension.cpp.o"
  "CMakeFiles/vcode_core.dir/Extension.cpp.o.d"
  "CMakeFiles/vcode_core.dir/Peephole.cpp.o"
  "CMakeFiles/vcode_core.dir/Peephole.cpp.o.d"
  "CMakeFiles/vcode_core.dir/RegAlloc.cpp.o"
  "CMakeFiles/vcode_core.dir/RegAlloc.cpp.o.d"
  "CMakeFiles/vcode_core.dir/StrengthReduce.cpp.o"
  "CMakeFiles/vcode_core.dir/StrengthReduce.cpp.o.d"
  "CMakeFiles/vcode_core.dir/VCode.cpp.o"
  "CMakeFiles/vcode_core.dir/VCode.cpp.o.d"
  "CMakeFiles/vcode_core.dir/VRegLayer.cpp.o"
  "CMakeFiles/vcode_core.dir/VRegLayer.cpp.o.d"
  "libvcode_core.a"
  "libvcode_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcode_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
