# Empty dependencies file for vcode_core.
# This may be replaced when dependencies are built.
