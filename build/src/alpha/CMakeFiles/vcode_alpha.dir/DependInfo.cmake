
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alpha/AlphaDisasm.cpp" "src/alpha/CMakeFiles/vcode_alpha.dir/AlphaDisasm.cpp.o" "gcc" "src/alpha/CMakeFiles/vcode_alpha.dir/AlphaDisasm.cpp.o.d"
  "/root/repo/src/alpha/AlphaTarget.cpp" "src/alpha/CMakeFiles/vcode_alpha.dir/AlphaTarget.cpp.o" "gcc" "src/alpha/CMakeFiles/vcode_alpha.dir/AlphaTarget.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vcode_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
