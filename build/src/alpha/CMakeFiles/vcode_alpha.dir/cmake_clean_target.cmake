file(REMOVE_RECURSE
  "libvcode_alpha.a"
)
