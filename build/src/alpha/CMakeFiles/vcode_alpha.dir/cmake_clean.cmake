file(REMOVE_RECURSE
  "CMakeFiles/vcode_alpha.dir/AlphaDisasm.cpp.o"
  "CMakeFiles/vcode_alpha.dir/AlphaDisasm.cpp.o.d"
  "CMakeFiles/vcode_alpha.dir/AlphaTarget.cpp.o"
  "CMakeFiles/vcode_alpha.dir/AlphaTarget.cpp.o.d"
  "libvcode_alpha.a"
  "libvcode_alpha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcode_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
