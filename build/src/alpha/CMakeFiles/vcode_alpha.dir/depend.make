# Empty dependencies file for vcode_alpha.
# This may be replaced when dependencies are built.
