# Empty compiler generated dependencies file for vcode_ash.
# This may be replaced when dependencies are built.
