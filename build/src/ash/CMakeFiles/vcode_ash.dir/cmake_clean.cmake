file(REMOVE_RECURSE
  "CMakeFiles/vcode_ash.dir/Ash.cpp.o"
  "CMakeFiles/vcode_ash.dir/Ash.cpp.o.d"
  "libvcode_ash.a"
  "libvcode_ash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcode_ash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
