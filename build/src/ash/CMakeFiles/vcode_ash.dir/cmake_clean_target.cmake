file(REMOVE_RECURSE
  "libvcode_ash.a"
)
