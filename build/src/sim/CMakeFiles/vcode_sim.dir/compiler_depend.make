# Empty compiler generated dependencies file for vcode_sim.
# This may be replaced when dependencies are built.
