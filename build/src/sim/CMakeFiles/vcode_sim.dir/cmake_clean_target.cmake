file(REMOVE_RECURSE
  "libvcode_sim.a"
)
