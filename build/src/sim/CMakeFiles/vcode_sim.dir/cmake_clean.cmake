file(REMOVE_RECURSE
  "CMakeFiles/vcode_sim.dir/AlphaSim.cpp.o"
  "CMakeFiles/vcode_sim.dir/AlphaSim.cpp.o.d"
  "CMakeFiles/vcode_sim.dir/MipsSim.cpp.o"
  "CMakeFiles/vcode_sim.dir/MipsSim.cpp.o.d"
  "CMakeFiles/vcode_sim.dir/SparcSim.cpp.o"
  "CMakeFiles/vcode_sim.dir/SparcSim.cpp.o.d"
  "libvcode_sim.a"
  "libvcode_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcode_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
