
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/AlphaSim.cpp" "src/sim/CMakeFiles/vcode_sim.dir/AlphaSim.cpp.o" "gcc" "src/sim/CMakeFiles/vcode_sim.dir/AlphaSim.cpp.o.d"
  "/root/repo/src/sim/MipsSim.cpp" "src/sim/CMakeFiles/vcode_sim.dir/MipsSim.cpp.o" "gcc" "src/sim/CMakeFiles/vcode_sim.dir/MipsSim.cpp.o.d"
  "/root/repo/src/sim/SparcSim.cpp" "src/sim/CMakeFiles/vcode_sim.dir/SparcSim.cpp.o" "gcc" "src/sim/CMakeFiles/vcode_sim.dir/SparcSim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vcode_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mips/CMakeFiles/vcode_mips.dir/DependInfo.cmake"
  "/root/repo/build/src/sparc/CMakeFiles/vcode_sparc.dir/DependInfo.cmake"
  "/root/repo/build/src/alpha/CMakeFiles/vcode_alpha.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
