file(REMOVE_RECURSE
  "libvcode_sparc.a"
)
