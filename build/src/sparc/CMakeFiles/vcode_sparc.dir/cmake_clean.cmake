file(REMOVE_RECURSE
  "CMakeFiles/vcode_sparc.dir/SparcDisasm.cpp.o"
  "CMakeFiles/vcode_sparc.dir/SparcDisasm.cpp.o.d"
  "CMakeFiles/vcode_sparc.dir/SparcTarget.cpp.o"
  "CMakeFiles/vcode_sparc.dir/SparcTarget.cpp.o.d"
  "libvcode_sparc.a"
  "libvcode_sparc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcode_sparc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
