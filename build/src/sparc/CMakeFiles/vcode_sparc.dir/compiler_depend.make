# Empty compiler generated dependencies file for vcode_sparc.
# This may be replaced when dependencies are built.
