file(REMOVE_RECURSE
  "libvcode_dpf.a"
)
