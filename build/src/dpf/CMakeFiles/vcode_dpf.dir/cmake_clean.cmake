file(REMOVE_RECURSE
  "CMakeFiles/vcode_dpf.dir/DpfEngine.cpp.o"
  "CMakeFiles/vcode_dpf.dir/DpfEngine.cpp.o.d"
  "CMakeFiles/vcode_dpf.dir/Filter.cpp.o"
  "CMakeFiles/vcode_dpf.dir/Filter.cpp.o.d"
  "CMakeFiles/vcode_dpf.dir/MpfEngine.cpp.o"
  "CMakeFiles/vcode_dpf.dir/MpfEngine.cpp.o.d"
  "CMakeFiles/vcode_dpf.dir/PathFinderEngine.cpp.o"
  "CMakeFiles/vcode_dpf.dir/PathFinderEngine.cpp.o.d"
  "libvcode_dpf.a"
  "libvcode_dpf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcode_dpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
