# Empty dependencies file for vcode_dpf.
# This may be replaced when dependencies are built.
