file(REMOVE_RECURSE
  "libvcode_dcg.a"
)
