# Empty dependencies file for vcode_dcg.
# This may be replaced when dependencies are built.
