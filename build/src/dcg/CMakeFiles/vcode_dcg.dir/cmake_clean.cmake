file(REMOVE_RECURSE
  "CMakeFiles/vcode_dcg.dir/Dcg.cpp.o"
  "CMakeFiles/vcode_dcg.dir/Dcg.cpp.o.d"
  "libvcode_dcg.a"
  "libvcode_dcg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcode_dcg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
