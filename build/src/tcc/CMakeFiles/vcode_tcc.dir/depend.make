# Empty dependencies file for vcode_tcc.
# This may be replaced when dependencies are built.
