file(REMOVE_RECURSE
  "CMakeFiles/vcode_tcc.dir/Tcc.cpp.o"
  "CMakeFiles/vcode_tcc.dir/Tcc.cpp.o.d"
  "libvcode_tcc.a"
  "libvcode_tcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcode_tcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
