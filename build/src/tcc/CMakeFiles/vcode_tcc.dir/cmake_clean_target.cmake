file(REMOVE_RECURSE
  "libvcode_tcc.a"
)
