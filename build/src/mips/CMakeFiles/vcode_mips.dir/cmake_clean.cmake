file(REMOVE_RECURSE
  "CMakeFiles/vcode_mips.dir/MipsDisasm.cpp.o"
  "CMakeFiles/vcode_mips.dir/MipsDisasm.cpp.o.d"
  "CMakeFiles/vcode_mips.dir/MipsTarget.cpp.o"
  "CMakeFiles/vcode_mips.dir/MipsTarget.cpp.o.d"
  "libvcode_mips.a"
  "libvcode_mips.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcode_mips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
