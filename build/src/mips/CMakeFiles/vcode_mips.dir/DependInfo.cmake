
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mips/MipsDisasm.cpp" "src/mips/CMakeFiles/vcode_mips.dir/MipsDisasm.cpp.o" "gcc" "src/mips/CMakeFiles/vcode_mips.dir/MipsDisasm.cpp.o.d"
  "/root/repo/src/mips/MipsTarget.cpp" "src/mips/CMakeFiles/vcode_mips.dir/MipsTarget.cpp.o" "gcc" "src/mips/CMakeFiles/vcode_mips.dir/MipsTarget.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vcode_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
