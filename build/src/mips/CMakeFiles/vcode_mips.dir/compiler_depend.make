# Empty compiler generated dependencies file for vcode_mips.
# This may be replaced when dependencies are built.
