file(REMOVE_RECURSE
  "libvcode_mips.a"
)
