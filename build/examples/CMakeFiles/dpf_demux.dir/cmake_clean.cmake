file(REMOVE_RECURSE
  "CMakeFiles/dpf_demux.dir/dpf_demux.cpp.o"
  "CMakeFiles/dpf_demux.dir/dpf_demux.cpp.o.d"
  "dpf_demux"
  "dpf_demux.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpf_demux.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
