# Empty compiler generated dependencies file for dpf_demux.
# This may be replaced when dependencies are built.
