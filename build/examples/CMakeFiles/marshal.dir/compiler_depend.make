# Empty compiler generated dependencies file for marshal.
# This may be replaced when dependencies are built.
