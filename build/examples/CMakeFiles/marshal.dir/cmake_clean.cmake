file(REMOVE_RECURSE
  "CMakeFiles/marshal.dir/marshal.cpp.o"
  "CMakeFiles/marshal.dir/marshal.cpp.o.d"
  "marshal"
  "marshal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marshal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
