file(REMOVE_RECURSE
  "CMakeFiles/tcc_compile.dir/tcc_compile.cpp.o"
  "CMakeFiles/tcc_compile.dir/tcc_compile.cpp.o.d"
  "tcc_compile"
  "tcc_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcc_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
