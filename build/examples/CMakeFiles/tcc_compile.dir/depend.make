# Empty dependencies file for tcc_compile.
# This may be replaced when dependencies are built.
