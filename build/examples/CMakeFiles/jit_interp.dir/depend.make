# Empty dependencies file for jit_interp.
# This may be replaced when dependencies are built.
