file(REMOVE_RECURSE
  "CMakeFiles/jit_interp.dir/jit_interp.cpp.o"
  "CMakeFiles/jit_interp.dir/jit_interp.cpp.o.d"
  "jit_interp"
  "jit_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jit_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
