file(REMOVE_RECURSE
  "CMakeFiles/ash_pipeline.dir/ash_pipeline.cpp.o"
  "CMakeFiles/ash_pipeline.dir/ash_pipeline.cpp.o.d"
  "ash_pipeline"
  "ash_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ash_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
