# Empty dependencies file for ash_pipeline.
# This may be replaced when dependencies are built.
