# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dpf_demux "/root/repo/build/examples/dpf_demux")
set_tests_properties(example_dpf_demux PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ash_pipeline "/root/repo/build/examples/ash_pipeline")
set_tests_properties(example_ash_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tcc_compile "/root/repo/build/examples/tcc_compile")
set_tests_properties(example_tcc_compile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_marshal "/root/repo/build/examples/marshal")
set_tests_properties(example_marshal PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_jit_interp "/root/repo/build/examples/jit_interp")
set_tests_properties(example_jit_interp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
