# Empty dependencies file for vcodegen.
# This may be replaced when dependencies are built.
