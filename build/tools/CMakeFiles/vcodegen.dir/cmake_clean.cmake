file(REMOVE_RECURSE
  "CMakeFiles/vcodegen.dir/vcodegen/vcodegen.cpp.o"
  "CMakeFiles/vcodegen.dir/vcodegen/vcodegen.cpp.o.d"
  "vcodegen"
  "vcodegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcodegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
