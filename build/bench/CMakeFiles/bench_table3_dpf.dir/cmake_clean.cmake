file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_dpf.dir/bench_table3_dpf.cpp.o"
  "CMakeFiles/bench_table3_dpf.dir/bench_table3_dpf.cpp.o.d"
  "bench_table3_dpf"
  "bench_table3_dpf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_dpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
