file(REMOVE_RECURSE
  "CMakeFiles/bench_dcg_compare.dir/bench_dcg_compare.cpp.o"
  "CMakeFiles/bench_dcg_compare.dir/bench_dcg_compare.cpp.o.d"
  "bench_dcg_compare"
  "bench_dcg_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dcg_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
