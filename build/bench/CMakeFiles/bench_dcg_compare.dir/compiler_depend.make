# Empty compiler generated dependencies file for bench_dcg_compare.
# This may be replaced when dependencies are built.
