
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table4_ash.cpp" "bench/CMakeFiles/bench_table4_ash.dir/bench_table4_ash.cpp.o" "gcc" "bench/CMakeFiles/bench_table4_ash.dir/bench_table4_ash.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ash/CMakeFiles/vcode_ash.dir/DependInfo.cmake"
  "/root/repo/build/src/mips/CMakeFiles/vcode_mips.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vcode_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sparc/CMakeFiles/vcode_sparc.dir/DependInfo.cmake"
  "/root/repo/build/src/alpha/CMakeFiles/vcode_alpha.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vcode_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
