file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_ash.dir/bench_table4_ash.cpp.o"
  "CMakeFiles/bench_table4_ash.dir/bench_table4_ash.cpp.o.d"
  "bench_table4_ash"
  "bench_table4_ash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_ash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
