file(REMOVE_RECURSE
  "CMakeFiles/bench_codegen.dir/bench_codegen.cpp.o"
  "CMakeFiles/bench_codegen.dir/bench_codegen.cpp.o.d"
  "bench_codegen"
  "bench_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
