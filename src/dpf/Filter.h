//===- dpf/Filter.h - Packet-filter language and workloads ------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The packet-filter model shared by the three message-demultiplexing
/// engines of paper §4.2 (Table 3). A filter is a conjunction of atoms,
/// each comparing a masked message field against a constant — the
/// "predicates written in a small safe language" of the packet-filter
/// literature. Includes the synthetic TCP/IP workload: ten filters that
/// "look in messages at identical fixed offsets for port numbers" and
/// differ only in the destination port, plus the packet generator.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_DPF_FILTER_H
#define VCODE_DPF_FILTER_H

#include "sim/Memory.h"
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vcode {
namespace dpf {

/// One predicate: (load Size bytes at Offset) & Mask == Value.
struct Atom {
  uint32_t Offset = 0;
  uint8_t Size = 4; ///< 1, 2, or 4 bytes
  uint32_t Mask = 0xffffffff;
  uint32_t Value = 0;

  friend bool operator==(const Atom &A, const Atom &B) {
    return A.Offset == B.Offset && A.Size == B.Size && A.Mask == B.Mask &&
           A.Value == B.Value;
  }
};

/// A filter: all atoms must hold; Id identifies the receiving endpoint.
struct Filter {
  std::vector<Atom> Atoms;
  int Id = -1;
};

/// Canonical textual key of a filter set, for compiled-filter caching:
/// two installs get the same key iff they would compile to the same
/// classifier from the same trie (filters listed in order with every
/// atom's offset/size/mask/value and the accepting id).
std::string filterSetKey(const std::vector<Filter> &Filters);

/// Appends the canonical key to \p Key (single upfront reserve, no
/// per-atom formatting calls) — the install hot path builds
/// "<prefix>|<key>" in one buffer per installShared under churn.
void appendFilterSetKey(std::string &Key, const std::vector<Filter> &Filters);

/// Header layout of the simplified IP/TCP packets used by the workload
/// (fields stored little-endian in simulator memory; see DESIGN.md).
namespace pkt {
inline constexpr uint32_t VersionOff = 0;  // byte: 0x45
inline constexpr uint32_t ProtoOff = 9;    // byte: 6 = TCP
inline constexpr uint32_t SrcIpOff = 12;   // 4 bytes
inline constexpr uint32_t DstIpOff = 16;   // 4 bytes
inline constexpr uint32_t SrcPortOff = 20; // 2 bytes
inline constexpr uint32_t DstPortOff = 22; // 2 bytes
inline constexpr uint32_t HeaderBytes = 40;
} // namespace pkt

/// Builds \p N TCP/IP filters sharing protocol and destination-IP checks
/// and differing in destination port (BasePort + i) — the paper's ten
/// concurrently-active TCP/IP filters.
std::vector<Filter> makeTcpIpFilters(unsigned N, uint16_t BasePort = 1024,
                                     uint32_t DstIp = 0x0a000001);

/// Writes a TCP/IP header for destination port \p DstPort at \p At.
void writeTcpPacket(sim::Memory &M, SimAddr At, uint16_t DstPort,
                    uint32_t DstIp = 0x0a000001, uint16_t SrcPort = 999);

/// A decision trie merging a filter set: shared atom prefixes are tested
/// once (what PATHFINDER's patterns and DPF's compiled code both exploit).
struct Trie {
  struct Node {
    /// True once the node has a field to examine (leaf accept states
    /// do not).
    bool HasField = false;
    uint32_t Offset = 0;
    uint8_t Size = 4;
    uint32_t Mask = 0xffffffff;
    /// Outgoing edges: field value -> child node index.
    std::map<uint32_t, int> Edges;
    /// Filter accepted when a message reaches this state, -1 otherwise.
    int AcceptId = -1;
  };

  std::vector<Node> Nodes; ///< node 0 is the root

  /// Builds the trie. All filters must examine fields in the same order
  /// (true of the workload and typical protocol filters).
  static Trie build(const std::vector<Filter> &Filters);

  /// Reference interpreter over the trie, mirroring the compiled
  /// classifier's semantics exactly: a node with a field dispatches on it
  /// (miss -> -1) and a fieldless node accepts. The differential gates
  /// (ServiceTest, the service's sampled checker) compare compiled
  /// verdicts against this. \p Msg points at the message in \p M.
  int classify(const sim::Memory &M, SimAddr Msg) const;
};

} // namespace dpf
} // namespace vcode

#endif // VCODE_DPF_FILTER_H
