//===- dpf/PathFinderEngine.cpp - PATHFINDER-style cell interpreter --------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
//
// PATHFINDER (Bailey et al., OSDI 1994) represents filters as patterns of
// "cells" merged into a DAG so that prefixes shared between filters are
// matched once. It remains an interpreter — the per-message loop walks
// cell structures in memory — which is why DPF's compiled classifiers beat
// it by an order of magnitude (Table 3).
//
// Cell layout (8 x u32): offset, size, mask, value, matchNext, failNext,
// acceptId, pad.  matchNext/failNext are cell indices; -1 means reject.
// A matching cell with acceptId >= 0 accepts immediately.
//
//===----------------------------------------------------------------------===//

#include "dpf/Engines.h"
#include "support/BitUtils.h"

using namespace vcode;
using namespace vcode::dpf;

namespace {

struct Cell {
  uint32_t Offset, Size, Mask, Value;
  int32_t MatchNext = -1, FailNext = -1, AcceptId = -1;
};

/// Flattens the decision trie into a cell list: each trie edge becomes a
/// cell; a node's edges chain through FailNext (PATHFINDER tries the
/// alternatives of a node sequentially).
struct CellBuilder {
  std::vector<Cell> Cells;
  const Trie &T;

  explicit CellBuilder(const Trie &Tr) : T(Tr) {}

  /// Emits the cells for trie node \p NodeIdx; returns the index of its
  /// first cell, or ~accept encoding for pure accept states.
  int emit(int NodeIdx) {
    const Trie::Node &N = T.Nodes[NodeIdx];
    if (!N.HasField)
      return -2 - N.AcceptId; // pure accept state marker
    int First = -1, Prev = -1;
    for (const auto &[Value, Child] : N.Edges) {
      int Idx = int(Cells.size());
      Cells.push_back(Cell{N.Offset, N.Size, N.Mask, Value, -1, -1, -1});
      if (Prev >= 0)
        Cells[Prev].FailNext = Idx;
      if (First < 0)
        First = Idx;
      Prev = Idx;
      int Sub = emit(Child);
      if (Sub <= -2)
        Cells[Idx].AcceptId = -2 - Sub; // child is an accept state
      else
        Cells[Idx].MatchNext = Sub;
    }
    return First;
  }
};

} // namespace

void PathFinderEngine::install(const std::vector<Filter> &Filters) {
  Trie T = Trie::build(Filters);
  CellBuilder CB(T);
  int Root = CB.emit(0);
  if (Root < 0)
    fatal("pathfinder: degenerate filter set");

  // Write the cells into simulator memory.
  SimAddr Base = Mem.alloc(CB.Cells.size() * 32, 8);
  for (size_t I = 0; I < CB.Cells.size(); ++I) {
    const Cell &C = CB.Cells[I];
    SimAddr A = Base + I * 32;
    Mem.write<uint32_t>(A + 0, C.Offset);
    Mem.write<uint32_t>(A + 4, C.Size);
    Mem.write<uint32_t>(A + 8, C.Mask);
    Mem.write<uint32_t>(A + 12, C.Value);
    Mem.write<int32_t>(A + 16, C.MatchNext);
    Mem.write<int32_t>(A + 20, C.FailNext);
    Mem.write<int32_t>(A + 24, C.AcceptId);
    Mem.write<uint32_t>(A + 28, 0);
  }

  // Generate the cell-walking interpreter (retrying with a grown region
  // on overflow; the cells written above persist across attempts).
  VCode V(Tgt);
  installWithRetry(V, [&](CodeMem CM) {
    Reg Arg[1];
    V.lambda("%p", Arg, LeafHint, CM);
    Reg Msg = Arg[0];
    Reg Cur = V.getreg(Type::I);  // current cell index
    Reg CA = V.getreg(Type::P);   // current cell address
    Reg Vv = V.getreg(Type::U);   // message field value
    Reg Fld = V.getreg(Type::U);  // cell field scratch
    Reg T0 = V.getreg(Type::P);
    Reg BaseR = V.getreg(Type::P);

    Label LStep = V.genLabel(), LMatch = V.genLabel(), LFailEdge = V.genLabel();
    Label LByte = V.genLabel(), LHalf = V.genLabel(), LHave = V.genLabel();
    Label LReject = V.genLabel();

    V.setp(BaseR, Base);
    V.seti(Cur, Root);

    V.label(LStep);
    // ca = base + cur*32
    V.lshii(CA, Cur, 5);
    V.addp(CA, BaseR, CA);
    // v = load(msg + offset, size)
    V.ldui(Fld, CA, 0);
    V.addp(T0, Msg, Fld);
    V.ldui(Fld, CA, 4);
    V.beqii(Fld, 1, LByte);
    V.beqii(Fld, 2, LHalf);
    V.ldui(Vv, T0, 0);
    V.jmp(LHave);
    V.label(LByte);
    V.lduci(Vv, T0, 0);
    V.jmp(LHave);
    V.label(LHalf);
    V.ldusi(Vv, T0, 0);
    V.label(LHave);
    V.ldui(Fld, CA, 8);
    V.andu(Vv, Vv, Fld);
    V.ldui(Fld, CA, 12);
    V.bequ(Vv, Fld, LMatch);

    // fail edge: cur = cell.failNext; reject if negative
    V.label(LFailEdge);
    V.ldii(Cur, CA, 20);
    V.bltii(Cur, 0, LReject);
    V.jmp(LStep);

    // match: accept if the cell carries an id, else descend.
    Label LDescend = V.genLabel();
    V.label(LMatch);
    V.ldii(Fld, CA, 24); // acceptId
    V.bltii(Fld, 0, LDescend);
    V.reti(Fld);
    V.label(LDescend);
    V.ldii(Cur, CA, 16); // matchNext
    V.jmp(LStep);

    V.label(LReject);
    V.seti(Fld, -1);
    V.reti(Fld);

    return V.end();
  });
}
