//===- dpf/DpfEngine.cpp - Dynamic Packet Filters ---------------------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
//
// DPF "exploits dynamic code generation in two ways: (1) by using it to
// eliminate interpretation overhead by compiling packet filters to
// executable code when they are installed ... and (2) by using filter
// constants to aggressively optimize this executable code" (paper §4.2).
//
// Installation merges the active filters into a decision trie and walks it
// emitting straight-line compare-immediate code: every offset, mask and
// comparison value is encoded directly in the instruction stream. Where
// many filters diverge on one field (the TCP port case), the dispatch is
// specialized from the runtime key set, "in a manner similar to how
// optimizing compilers treat C switch statements": a short compare chain,
// an indirect jump through a table for dense ranges, binary search for
// sparse sets, or a perfect hash selected at code-generation time — whose
// multiplier is encoded in the instruction stream, with no collision
// chains to check.
//
//===----------------------------------------------------------------------===//

#include "dpf/Engines.h"
#include "core/TierStream.h"
#include "core/VRegLayer.h"
#include "support/BitUtils.h"
#include <algorithm>

using namespace vcode;
using namespace vcode::dpf;

namespace {

/// Full mask for a field of Size bytes.
uint32_t fullMask(unsigned Size) {
  return Size >= 4 ? 0xffffffffu : ((1u << (8 * Size)) - 1);
}

/// Searches for a collision-free multiplicative hash of \p Keys into a
/// table of 2^Bits slots. Returns true and fills Mult on success.
bool findPerfectHash(const std::vector<uint32_t> &Keys, unsigned Bits,
                     uint32_t &Mult) {
  static const uint32_t Candidates[] = {0x9e3779b1u, 0x85ebca6bu, 0xc2b2ae35u,
                                        2654435761u, 0x7feb352du, 0x045d9f3bu,
                                        0x27220a95u, 0x51afd7edu};
  for (uint32_t M : Candidates) {
    std::vector<bool> Seen(size_t(1) << Bits, false);
    bool Ok = true;
    for (uint32_t K : Keys) {
      uint32_t H = (K * M) >> (32 - Bits);
      if (Seen[H]) {
        Ok = false;
        break;
      }
      Seen[H] = true;
    }
    if (Ok) {
      Mult = M;
      return true;
    }
  }
  return false;
}

} // namespace

/// The classifier emitter, instantiated per tier stream. St is a
/// DirectStream (Tier-0: pass-through, byte-identical to the historical
/// emission) or RecStream (Tier-1: records vreg IR for linear scan and
/// the optimizing replay).
template <typename S> struct DpfEngine::Em {
  using R = typename S::RegT;

  DpfEngine &E;
  S &St;

  void emitBinarySearch(std::vector<EdgeCase> &Cases, size_t Lo, size_t Hi,
                        R V0, Label Reject) {
    if (Hi - Lo <= 2) {
      for (size_t I = Lo; I <= Hi; ++I)
        St.bequi(V0, Cases[I].Value, Cases[I].Target);
      St.jmp(Reject);
      return;
    }
    size_t Mid = (Lo + Hi) / 2;
    St.bequi(V0, Cases[Mid].Value, Cases[Mid].Target);
    Label LLeft = St.genLabel();
    St.bltui(V0, Cases[Mid].Value, LLeft);
    if (Mid + 1 <= Hi)
      emitBinarySearch(Cases, Mid + 1, Hi, V0, Reject);
    else
      St.jmp(Reject);
    St.label(LLeft);
    if (Mid >= Lo + 1)
      emitBinarySearch(Cases, Lo, Mid - 1, V0, Reject);
    else
      St.jmp(Reject);
  }

  void emitDispatch(std::vector<EdgeCase> &Cases, R V0, R T0, Label Reject) {
    unsigned WB = E.Tgt.info().WordBytes;
    std::sort(Cases.begin(), Cases.end(),
              [](const EdgeCase &A, const EdgeCase &B) {
                return A.Value < B.Value;
              });
    size_t N = Cases.size();
    uint32_t LoV = Cases.front().Value, HiV = Cases.back().Value;
    uint64_t Range = uint64_t(HiV) - LoV + 1;
    bool Dense = Range <= 2 * N + 2;

    Dispatch D = E.Strategy;
    if (D == Dispatch::Auto) {
      if (N <= 3)
        D = Dispatch::Chain;
      else if (Dense)
        D = Dispatch::Table;
      else if (N >= 8)
        D = Dispatch::Hash;
      else
        D = Dispatch::Binary;
    }

    switch (D) {
    case Dispatch::Chain:
      E.Used = "chain";
      for (EdgeCase &C : Cases)
        St.bequi(V0, C.Value, C.Target);
      St.jmp(Reject);
      return;

    case Dispatch::Binary:
      E.Used = "binary";
      emitBinarySearch(Cases, 0, N - 1, V0, Reject);
      return;

    case Dispatch::Table: {
      E.Used = "table";
      if (Range > 4096) { // degenerate request; fall back
        emitBinarySearch(Cases, 0, N - 1, V0, Reject);
        return;
      }
      SimAddr Table = E.Mem.alloc(size_t(Range) * WB, 8);
      TablePatch TP;
      TP.TableAddr = Table;
      TP.Slots.assign(size_t(Range), Label()); // invalid -> reject
      for (EdgeCase &C : Cases)
        TP.Slots[C.Value - LoV] = C.Target;
      E.Tables.push_back(std::move(TP));

      R TPReg = St.temp(Type::P);
      if (!TPReg.isValid())
        fatalKind(CgErrKind::RegisterPressure,
                  "dpf: out of registers for table dispatch");
      St.subui(T0, V0, int64_t(LoV));
      St.bgtui(T0, int64_t(Range - 1), Reject);
      St.lshii(T0, T0, int64_t(log2Floor(WB)));
      St.setp(TPReg, Table);
      St.addp(TPReg, TPReg, T0);
      St.ldpi(TPReg, TPReg, 0);
      St.jmpr(TPReg);
      St.release(TPReg);
      return;
    }

    case Dispatch::Hash: {
      unsigned Bits = 1;
      while ((size_t(1) << Bits) < 2 * N)
        ++Bits;
      uint32_t Mult = 0;
      std::vector<uint32_t> Keys;
      for (EdgeCase &C : Cases)
        Keys.push_back(C.Value);
      if (!findPerfectHash(Keys, Bits, Mult)) {
        E.Used = "binary (no perfect hash)";
        emitBinarySearch(Cases, 0, N - 1, V0, Reject);
        return;
      }
      E.Used = "hash";
      size_t TSize = size_t(1) << Bits;
      SimAddr Table = E.Mem.alloc(TSize * WB, 8);
      TablePatch TP;
      TP.TableAddr = Table;
      TP.Slots.assign(TSize, Label());

      // Verification stubs: since keys are known at code-generation time,
      // each slot needs exactly one compare — there are no collision
      // chains.
      std::vector<Label> Stubs;
      for (EdgeCase &C : Cases) {
        uint32_t H = (C.Value * Mult) >> (32 - Bits);
        Label Stub = St.genLabel();
        TP.Slots[H] = Stub;
        Stubs.push_back(Stub);
      }
      E.Tables.push_back(std::move(TP));

      R TPReg = St.temp(Type::P);
      if (!TPReg.isValid())
        fatalKind(CgErrKind::RegisterPressure,
                  "dpf: out of registers for hash dispatch");
      // The chosen hash function is encoded directly in the instruction
      // stream (paper §4.2).
      St.mului(T0, V0, int64_t(Mult));
      St.rshui(T0, T0, int64_t(32 - Bits));
      St.lshii(T0, T0, int64_t(log2Floor(WB)));
      St.setp(TPReg, Table);
      St.addp(TPReg, TPReg, T0);
      St.ldpi(TPReg, TPReg, 0);
      St.jmpr(TPReg);
      St.release(TPReg);

      for (size_t I = 0; I < Cases.size(); ++I) {
        St.label(Stubs[I]);
        St.bneui(V0, Cases[I].Value, Reject);
        St.jmp(Cases[I].Target);
      }
      return;
    }

    case Dispatch::Auto:
      break;
    }
    unreachable("bad dispatch strategy");
  }

  void emitNode(const Trie &T, int NodeIdx, R Msg, R V0, R T0,
                Label Reject) {
    const Trie::Node &N = T.Nodes[NodeIdx];
    if (!N.HasField) {
      // Accept state: the id is a code-generation-time constant.
      St.seti(V0, N.AcceptId);
      St.reti(V0);
      return;
    }

    // Fully specialized field fetch: offset and width are encoded in the
    // instruction, not fetched from a description.
    switch (N.Size) {
    case 1:
      St.lduci(V0, Msg, N.Offset);
      break;
    case 2:
      St.ldusi(V0, Msg, N.Offset);
      break;
    default:
      St.ldui(V0, Msg, N.Offset);
      break;
    }
    if (N.Mask != fullMask(N.Size))
      St.andui(V0, V0, N.Mask);

    std::vector<EdgeCase> Cases;
    Cases.reserve(N.Edges.size());
    for (const auto &[Value, Child] : N.Edges)
      Cases.push_back(EdgeCase{Value, St.genLabel()});

    if (Cases.size() == 1) {
      // Single successor: a compare-immediate falls through to the child.
      St.bneui(V0, Cases[0].Value, Reject);
      St.label(Cases[0].Target);
      emitNode(T, N.Edges.begin()->second, Msg, V0, T0, Reject);
      return;
    }

    emitDispatch(Cases, V0, T0, Reject);
    size_t I = 0;
    for (const auto &[Value, Child] : N.Edges) {
      // Cases were sorted by value; map::iteration is sorted too.
      St.label(Cases[I].Target);
      emitNode(T, Child, Msg, V0, T0, Reject);
      ++I;
    }
  }
};

template <typename S>
Label DpfEngine::emitAll(S &St, const Trie &T, Reg MsgArg) {
  auto Msg = St.fromArg(Type::P, MsgArg);
  auto V0 = St.temp(Type::U);
  auto T0 = St.temp(Type::U);
  Label Reject = St.genLabel();
  Em<S> W{*this, St};
  W.emitNode(T, 0, Msg, V0, T0, Reject);
  St.label(Reject);
  St.seti(V0, -1);
  St.reti(V0);
  St.finish();
  return Reject;
}

CodePtr DpfEngine::emitInto(VCode &V, const Trie &T, CodeMem CM, Tier Tr) {
  Tables.clear();
  Used = "none";

  Reg Arg[1];
  V.lambda("%p", Arg, LeafHint, CM);
  Label Reject;
  if (Tr == Tier::Tier1) {
    VRegLayer L(V, Tier::Tier1);
    RecStream St(V, L);
    Reject = emitAll(St, T, Arg[0]);
  } else {
    DirectStream St(V);
    Reject = emitAll(St, T, Arg[0]);
  }
  CodePtr P = V.end();
  if (!P.isValid()) // recovery mode: poisoned attempt, tables untouched
    return P;

  // Fill the dispatch tables with the now-resolved code addresses.
  unsigned WB = Tgt.info().WordBytes;
  SimAddr RejectAddr = V.labelAddr(Reject);
  for (const TablePatch &TP : Tables) {
    for (size_t I = 0; I < TP.Slots.size(); ++I) {
      SimAddr A =
          TP.Slots[I].isValid() ? V.labelAddr(TP.Slots[I]) : RejectAddr;
      if (WB == 8)
        Mem.write<uint64_t>(TP.TableAddr + I * 8, A);
      else
        Mem.write<uint32_t>(TP.TableAddr + I * 4, uint32_t(A));
    }
  }
  return P;
}

void DpfEngine::install(const std::vector<Filter> &Filters) {
  CacheHandle = CodeCache::Handle(); // private install: unpin shared code
  SharedCache = nullptr;
  SharedKey.clear();
  SharedFilters.clear();
  Trie T = Trie::build(Filters);
  VCode V(Tgt);
  installWithRetry(
      V, [&](CodeMem CM, Tier Tr) { return emitInto(V, T, CM, Tr); },
      GenTier);
}

std::string DpfEngine::sharedCacheKey(const Target &T, Dispatch D,
                                      const std::vector<Filter> &Filters) {
  static const char *const DispatchNames[] = {"auto", "chain", "binary",
                                              "hash", "table"};
  // Deliberately tier-independent: promotion swaps code versions under
  // this same key rather than caching tiers side by side.
  std::string Key;
  Key.reserve(64);
  Key += "dpf|";
  Key += T.info().Name;
  Key += '|';
  Key += DispatchNames[size_t(D)];
  Key += '|';
  appendFilterSetKey(Key, Filters);
  return Key;
}

bool DpfEngine::installShared(CodeCache &Cache,
                              const std::vector<Filter> &Filters) {
  std::string Key = sharedCacheKey(Tgt, Strategy, Filters);

  unsigned MyAttempts = 0;
  size_t MyRegionBytes = 0;
  bool Generated = false;
  CodeCache::Handle H = Cache.lookupOrGenerate(
      Key, [&](CodeCache::RegionAlloc &Alloc) {
        Generated = true;
        Trie T = Trie::build(Filters);
        VCode V(Tgt);
        GenerateOptions Opts;
        Opts.InitialBytes = InitialCodeBytes;
        Opts.GenTier = GenTier;
        GenerateResult R = generateWithRetry(
            V, [&](size_t N) { return Alloc(N); },
            [&](CodeMem CM, Tier Tr) { return emitInto(V, T, CM, Tr); },
            Opts);
        MyAttempts = R.Attempts;
        MyRegionBytes = R.RegionBytes;
        return R;
      });
  if (!H.valid())
    fatalKind(H.error().Kind, "dpf: shared install failed: %s",
              H.error().Detail);
  CacheHandle = H;
  Code = H.code();
  Attempts = Generated ? MyAttempts : 0;
  RegionBytes = Generated ? MyRegionBytes : H.regionBytes();
  SharedCache = &Cache;
  SharedKey = std::move(Key);
  SharedFilters = Filters;
  VCODE_TM_COUNT("dpf.installs_shared", 1);
  return !Generated;
}

bool DpfEngine::promoteShared() {
  if (!SharedCache || SharedKey.empty())
    return false;
  bool Swapped =
      SharedCache->promote(SharedKey, [&](CodeCache::RegionAlloc &Alloc) {
        Trie T = Trie::build(SharedFilters);
        VCode V(Tgt);
        GenerateOptions Opts;
        Opts.InitialBytes = InitialCodeBytes;
        Opts.GenTier = Tier::Tier1;
        return generateWithRetry(
            V, [&](size_t N) { return Alloc(N); },
            [&](CodeMem CM, Tier Tr) { return emitInto(V, T, CM, Tr); },
            Opts);
      });
  if (Swapped)
    VCODE_TM_COUNT("dpf.promotions", 1);
  return Swapped;
}

int DpfEngine::classify(sim::Cpu &Cpu, SimAddr Msg) {
  // Shared classifiers dispatch through a pinned code version so a
  // concurrent promotion can never reclaim the region mid-call.
  if (SharedCache && CacheHandle.valid()) {
    auto Ver = CacheHandle.pin();
    if (Ver) {
      uint64_t N = CacheHandle.noteExecution();
      // Exactly one dispatcher observes the threshold-crossing count;
      // it performs (or delegates to promote()'s gate) the regeneration.
      if (HotThreshold && N == HotThreshold &&
          Ver->GenTier == Tier::Tier0 && promoteShared()) {
        if (auto NewVer = CacheHandle.pin())
          Ver = std::move(NewVer);
      }
      countDispatch();
      return Cpu.call(Ver->Code.Entry, {sim::TypedValue::fromPtr(Msg)},
                      Type::I)
          .asInt32();
    }
  }
  return Engine::classify(Cpu, Msg);
}
