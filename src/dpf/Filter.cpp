//===- dpf/Filter.cpp - Packet-filter language and workloads ----------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "dpf/Filter.h"
#include "support/Error.h"

using namespace vcode;
using namespace vcode::dpf;

std::vector<Filter> vcode::dpf::makeTcpIpFilters(unsigned N,
                                                 uint16_t BasePort,
                                                 uint32_t DstIp) {
  std::vector<Filter> Filters;
  Filters.reserve(N);
  for (unsigned I = 0; I < N; ++I) {
    Filter F;
    F.Id = int(I);
    // (1) IPv4 header, (2) protocol == TCP, (3) our address, (4) the
    // endpoint's port — the per-filter runtime constant.
    F.Atoms.push_back(Atom{pkt::VersionOff, 1, 0xff, 0x45});
    F.Atoms.push_back(Atom{pkt::ProtoOff, 1, 0xff, 6});
    F.Atoms.push_back(Atom{pkt::DstIpOff, 4, 0xffffffff, DstIp});
    F.Atoms.push_back(
        Atom{pkt::DstPortOff, 2, 0xffff, uint32_t(BasePort + I)});
    Filters.push_back(std::move(F));
  }
  return Filters;
}

std::string vcode::dpf::filterSetKey(const std::vector<Filter> &Filters) {
  std::string Key;
  Key.reserve(Filters.size() * 48);
  char Buf[80];
  for (const Filter &F : Filters) {
    std::snprintf(Buf, sizeof(Buf), "f%d:", F.Id);
    Key += Buf;
    for (const Atom &A : F.Atoms) {
      std::snprintf(Buf, sizeof(Buf), "(%u,%u,%08x,%08x)", A.Offset,
                    unsigned(A.Size), A.Mask, A.Value);
      Key += Buf;
    }
    Key += ';';
  }
  return Key;
}

void vcode::dpf::writeTcpPacket(sim::Memory &M, SimAddr At, uint16_t DstPort,
                                uint32_t DstIp, uint16_t SrcPort) {
  for (uint32_t I = 0; I < pkt::HeaderBytes; ++I)
    M.write<uint8_t>(At + I, 0);
  M.write<uint8_t>(At + pkt::VersionOff, 0x45);
  M.write<uint8_t>(At + pkt::ProtoOff, 6);
  M.write<uint32_t>(At + pkt::SrcIpOff, 0xc0a80001);
  M.write<uint32_t>(At + pkt::DstIpOff, DstIp);
  M.write<uint16_t>(At + pkt::SrcPortOff, SrcPort);
  M.write<uint16_t>(At + pkt::DstPortOff, DstPort);
}

Trie Trie::build(const std::vector<Filter> &Filters) {
  Trie T;
  T.Nodes.emplace_back(); // root
  for (const Filter &F : Filters) {
    int Cur = 0;
    for (const Atom &A : F.Atoms) {
      Node &N = T.Nodes[Cur];
      if (!N.HasField) {
        N.HasField = true;
        N.Offset = A.Offset;
        N.Size = A.Size;
        N.Mask = A.Mask;
      } else if (N.Offset != A.Offset || N.Size != A.Size ||
                 N.Mask != A.Mask) {
        fatal("dpf trie: filters disagree on the field at step (offset %u "
              "vs %u); out-of-order atom lists are not supported",
              N.Offset, A.Offset);
      }
      auto It = T.Nodes[Cur].Edges.find(A.Value);
      if (It != T.Nodes[Cur].Edges.end()) {
        Cur = It->second;
      } else {
        int Next = int(T.Nodes.size());
        T.Nodes[Cur].Edges.emplace(A.Value, Next);
        T.Nodes.emplace_back();
        Cur = Next;
      }
    }
    if (T.Nodes[Cur].AcceptId >= 0 && T.Nodes[Cur].AcceptId != F.Id)
      fatal("dpf trie: duplicate filter (ids %d and %d)",
            T.Nodes[Cur].AcceptId, F.Id);
    T.Nodes[Cur].AcceptId = F.Id;
  }
  return T;
}
