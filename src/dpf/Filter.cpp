//===- dpf/Filter.cpp - Packet-filter language and workloads ----------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "dpf/Filter.h"
#include "support/Error.h"

using namespace vcode;
using namespace vcode::dpf;

std::vector<Filter> vcode::dpf::makeTcpIpFilters(unsigned N,
                                                 uint16_t BasePort,
                                                 uint32_t DstIp) {
  std::vector<Filter> Filters;
  Filters.reserve(N);
  for (unsigned I = 0; I < N; ++I) {
    Filter F;
    F.Id = int(I);
    // (1) IPv4 header, (2) protocol == TCP, (3) our address, (4) the
    // endpoint's port — the per-filter runtime constant.
    F.Atoms.push_back(Atom{pkt::VersionOff, 1, 0xff, 0x45});
    F.Atoms.push_back(Atom{pkt::ProtoOff, 1, 0xff, 6});
    F.Atoms.push_back(Atom{pkt::DstIpOff, 4, 0xffffffff, DstIp});
    F.Atoms.push_back(
        Atom{pkt::DstPortOff, 2, 0xffff, uint32_t(BasePort + I)});
    Filters.push_back(std::move(F));
  }
  return Filters;
}

namespace {

// The canonical key is rebuilt per installShared call, which makes it a
// hot path under churn: avoid snprintf (locale machinery, per-call format
// parsing) and grow the string once — appendFilterSetKey measures the
// exact byte count up front, so the loop below never reallocates.

char *putDec(char *P, uint32_t V) {
  char Tmp[10];
  unsigned N = 0;
  do {
    Tmp[N++] = char('0' + V % 10);
    V /= 10;
  } while (V);
  while (N)
    *P++ = Tmp[--N];
  return P;
}

unsigned decDigits(uint32_t V) {
  unsigned N = 1;
  while (V >= 10) {
    V /= 10;
    ++N;
  }
  return N;
}

char *putHex8(char *P, uint32_t V) {
  static const char Digits[] = "0123456789abcdef";
  for (int Shift = 28; Shift >= 0; Shift -= 4)
    *P++ = Digits[(V >> Shift) & 0xf];
  return P;
}

} // namespace

void vcode::dpf::appendFilterSetKey(std::string &Key,
                                    const std::vector<Filter> &Filters) {
  // Exact length: "f<id>:" + per-atom "(<off>,<size>,<hex8>,<hex8>)" + ';'.
  size_t Len = 0;
  for (const Filter &F : Filters) {
    Len += 1 + decDigits(uint32_t(F.Id < 0 ? -F.Id : F.Id)) +
           (F.Id < 0 ? 1 : 0) + 1 + 1; // "f", sign, id, ':', ';'
    for (const Atom &A : F.Atoms)
      Len += 2 + decDigits(A.Offset) + 1 + decDigits(A.Size) + 1 + 8 + 1 + 8;
  }
  size_t Base = Key.size();
  Key.resize(Base + Len);
  char *P = Key.data() + Base;
  for (const Filter &F : Filters) {
    *P++ = 'f';
    if (F.Id < 0) {
      *P++ = '-';
      P = putDec(P, uint32_t(-F.Id));
    } else {
      P = putDec(P, uint32_t(F.Id));
    }
    *P++ = ':';
    for (const Atom &A : F.Atoms) {
      *P++ = '(';
      P = putDec(P, A.Offset);
      *P++ = ',';
      P = putDec(P, A.Size);
      *P++ = ',';
      P = putHex8(P, A.Mask);
      *P++ = ',';
      P = putHex8(P, A.Value);
      *P++ = ')';
    }
    *P++ = ';';
  }
}

std::string vcode::dpf::filterSetKey(const std::vector<Filter> &Filters) {
  std::string Key;
  appendFilterSetKey(Key, Filters);
  return Key;
}

void vcode::dpf::writeTcpPacket(sim::Memory &M, SimAddr At, uint16_t DstPort,
                                uint32_t DstIp, uint16_t SrcPort) {
  for (uint32_t I = 0; I < pkt::HeaderBytes; ++I)
    M.write<uint8_t>(At + I, 0);
  M.write<uint8_t>(At + pkt::VersionOff, 0x45);
  M.write<uint8_t>(At + pkt::ProtoOff, 6);
  M.write<uint32_t>(At + pkt::SrcIpOff, 0xc0a80001);
  M.write<uint32_t>(At + pkt::DstIpOff, DstIp);
  M.write<uint16_t>(At + pkt::SrcPortOff, SrcPort);
  M.write<uint16_t>(At + pkt::DstPortOff, DstPort);
}

Trie Trie::build(const std::vector<Filter> &Filters) {
  Trie T;
  T.Nodes.emplace_back(); // root
  for (const Filter &F : Filters) {
    int Cur = 0;
    for (const Atom &A : F.Atoms) {
      Node &N = T.Nodes[Cur];
      if (!N.HasField) {
        N.HasField = true;
        N.Offset = A.Offset;
        N.Size = A.Size;
        N.Mask = A.Mask;
      } else if (N.Offset != A.Offset || N.Size != A.Size ||
                 N.Mask != A.Mask) {
        fatal("dpf trie: filters disagree on the field at step (offset %u "
              "vs %u); out-of-order atom lists are not supported",
              N.Offset, A.Offset);
      }
      auto It = T.Nodes[Cur].Edges.find(A.Value);
      if (It != T.Nodes[Cur].Edges.end()) {
        Cur = It->second;
      } else {
        int Next = int(T.Nodes.size());
        T.Nodes[Cur].Edges.emplace(A.Value, Next);
        T.Nodes.emplace_back();
        Cur = Next;
      }
    }
    if (T.Nodes[Cur].AcceptId >= 0 && T.Nodes[Cur].AcceptId != F.Id)
      fatal("dpf trie: duplicate filter (ids %d and %d)",
            T.Nodes[Cur].AcceptId, F.Id);
    T.Nodes[Cur].AcceptId = F.Id;
  }
  return T;
}

int Trie::classify(const sim::Memory &M, SimAddr Msg) const {
  if (Nodes.empty())
    return -1;
  int Cur = 0;
  for (;;) {
    const Node &N = Nodes[Cur];
    // A node with a field dispatches on it; its AcceptId (a filter that
    // is a strict prefix of another) is ignored, because the compiled
    // classifier routes every dispatch miss to the shared reject exit.
    // Only fieldless leaves accept — mirror that exactly.
    if (!N.HasField)
      return N.AcceptId;
    uint32_t V;
    switch (N.Size) {
    case 1:
      V = M.read<uint8_t>(Msg + N.Offset);
      break;
    case 2:
      V = M.read<uint16_t>(Msg + N.Offset);
      break;
    default:
      V = M.read<uint32_t>(Msg + N.Offset);
      break;
    }
    V &= N.Mask;
    auto It = N.Edges.find(V);
    if (It == N.Edges.end())
      return -1; // dispatch miss rejects even at an interior accept state
    Cur = It->second;
  }
}
