//===- dpf/Engines.h - Message demultiplexing engines -----------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three message-classification engines compared in paper Table 3:
///
///  - MpfEngine: an MPF-style engine ("a widely used packet filter
///    engine"): every installed filter keeps its own predicate program,
///    interpreted one filter at a time until one matches.
///  - PathFinderEngine: a PATHFINDER-style engine ("the fastest packet
///    filter engine in the literature"): filters are merged into a pattern
///    (cell) graph so shared prefixes are tested once, but the cells are
///    still interpreted.
///  - DpfEngine: Dynamic Packet Filters — filters are merged and compiled
///    to machine code with VCODE when installed; filter constants are
///    encoded in the instruction stream, and the port dispatch is
///    specialized at code-generation time (direct range check, binary
///    search, or a runtime-selected perfect hash; paper §4.2).
///
/// Every engine's classifier is machine code executing on the ISA
/// simulator (the two interpreters are themselves generated with VCODE
/// once, at install time), so Table 3's per-message times compare like
/// with like. classify() returns the filter id or -1.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_DPF_ENGINES_H
#define VCODE_DPF_ENGINES_H

#include "core/VCode.h"
#include "dpf/Filter.h"
#include "sim/Cpu.h"

namespace vcode {
namespace dpf {

/// Common engine interface: install a filter set, classify messages.
class Engine {
public:
  virtual ~Engine();

  /// Installs \p Filters, (re)generating the classifier.
  virtual void install(const std::vector<Filter> &Filters) = 0;

  /// Classifier entry point: int classify(const char *Msg).
  SimAddr entry() const { return Code.Entry; }
  /// Size of the generated classifier, in bytes.
  size_t codeBytes() const { return Code.SizeBytes; }

  /// Runs the classifier for the message at \p Msg.
  int classify(sim::Cpu &Cpu, SimAddr Msg) {
    return Cpu.call(Code.Entry, {sim::TypedValue::fromPtr(Msg)}, Type::I)
        .asInt32();
  }

protected:
  Engine(Target &T, sim::Memory &M) : Tgt(T), Mem(M) {}

  Target &Tgt;
  sim::Memory &Mem;
  CodePtr Code;
};

/// MPF-style linear interpreter.
class MpfEngine : public Engine {
public:
  MpfEngine(Target &T, sim::Memory &M) : Engine(T, M) {}
  void install(const std::vector<Filter> &Filters) override;
};

/// PATHFINDER-style pattern (cell-graph) interpreter.
class PathFinderEngine : public Engine {
public:
  PathFinderEngine(Target &T, sim::Memory &M) : Engine(T, M) {}
  void install(const std::vector<Filter> &Filters) override;
};

/// DPF: dynamically compiled, constant-specialized classifier.
class DpfEngine : public Engine {
public:
  /// Dispatch strategy for wide fan-out nodes ("DPF can select among
  /// several" — Auto picks per the paper's rules; the others force one
  /// strategy for the ablation benchmarks).
  enum class Dispatch { Auto, Chain, Binary, Hash, Table };

  DpfEngine(Target &T, sim::Memory &M, Dispatch D = Dispatch::Auto)
      : Engine(T, M), Strategy(D) {}
  void install(const std::vector<Filter> &Filters) override;

  /// Name of the dispatch strategy the last install actually used for the
  /// widest node (for reporting).
  const char *dispatchUsed() const { return Used; }

private:
  struct EdgeCase {
    uint32_t Value;
    Label Target;
  };
  void emitNode(VCode &V, const Trie &T, int NodeIdx, Reg Msg, Reg V0,
                Reg T0, Label Reject);
  void emitDispatch(VCode &V, std::vector<EdgeCase> &Cases, Reg V0, Reg T0,
                    Label Reject);
  void emitBinarySearch(VCode &V, std::vector<EdgeCase> &Cases, size_t Lo,
                        size_t Hi, Reg V0, Label Reject);

  Dispatch Strategy;
  const char *Used = "none";
  /// Post-generation patches: jump tables filled with label addresses.
  struct TablePatch {
    SimAddr TableAddr;
    std::vector<Label> Slots;
  };
  std::vector<TablePatch> Tables;
};

} // namespace dpf
} // namespace vcode

#endif // VCODE_DPF_ENGINES_H
