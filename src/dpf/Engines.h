//===- dpf/Engines.h - Message demultiplexing engines -----------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three message-classification engines compared in paper Table 3:
///
///  - MpfEngine: an MPF-style engine ("a widely used packet filter
///    engine"): every installed filter keeps its own predicate program,
///    interpreted one filter at a time until one matches.
///  - PathFinderEngine: a PATHFINDER-style engine ("the fastest packet
///    filter engine in the literature"): filters are merged into a pattern
///    (cell) graph so shared prefixes are tested once, but the cells are
///    still interpreted.
///  - DpfEngine: Dynamic Packet Filters — filters are merged and compiled
///    to machine code with VCODE when installed; filter constants are
///    encoded in the instruction stream, and the port dispatch is
///    specialized at code-generation time (direct range check, binary
///    search, or a runtime-selected perfect hash; paper §4.2).
///
/// Every engine's classifier is machine code executing on the ISA
/// simulator (the two interpreters are themselves generated with VCODE
/// once, at install time), so Table 3's per-message times compare like
/// with like. classify() returns the filter id or -1.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_DPF_ENGINES_H
#define VCODE_DPF_ENGINES_H

#include "core/CodeCache.h"
#include "core/Generate.h"
#include "core/Tier.h"
#include "core/VCode.h"
#include "dpf/Filter.h"
#include "sim/Cpu.h"
#include "sim/Memory.h"
#include "support/Telemetry.h"
#include <atomic>
#include <string>

namespace vcode {
namespace dpf {

/// Common engine interface: install a filter set, classify messages.
class Engine {
public:
  virtual ~Engine();

  /// Installs \p Filters, (re)generating the classifier.
  virtual void install(const std::vector<Filter> &Filters) = 0;

  /// Classifier entry point: int classify(const char *Msg).
  SimAddr entry() const { return Code.Entry; }
  /// Size of the generated classifier, in bytes.
  size_t codeBytes() const { return Code.SizeBytes; }

  /// Sets the code-region size for the next install's first attempt; on
  /// overflow the install retries into a geometrically grown region.
  void setInitialCodeBytes(size_t N) { InitialCodeBytes = N; }
  /// Emission attempts the last install needed (1 when the initial
  /// region sufficed).
  unsigned installAttempts() const { return Attempts; }
  /// Code-region size of the last install's successful attempt.
  size_t regionBytes() const { return RegionBytes; }

  /// Runs the classifier for the message at \p Msg. Virtual so engines
  /// with tiered promotion can count executions and swap versions.
  virtual int classify(sim::Cpu &Cpu, SimAddr Msg) {
    countDispatch();
    return Cpu.call(Code.Entry, {sim::TypedValue::fromPtr(Msg)}, Type::I)
        .asInt32();
  }

protected:
  Engine(Target &T, sim::Memory &M, size_t CodeBytes)
      : Tgt(T), Mem(M), InitialCodeBytes(CodeBytes) {}

  /// Bills one classify to the dpf.dispatches registry counter, batched:
  /// the registry's sharded counter (thread-slot lookup + atomic) per
  /// message is a measurable tax once the substrate dispatches in tens
  /// of nanoseconds (binary translation, native). Relaxed atomics keep
  /// concurrent shared-cache dispatchers exact; flushed every ~1024
  /// messages and at destruction — before the at-exit telemetry report,
  /// so totals stay exact.
  void countDispatch() {
    if (PendingDispatches.fetch_add(1, std::memory_order_relaxed) + 1 >=
        1024)
      flushDispatches();
  }
  void flushDispatches() {
    if (uint64_t N = PendingDispatches.exchange(0, std::memory_order_relaxed))
      VCODE_TM_COUNT("dpf.dispatches", N);
  }

  /// Shared install driver: runs \p Emit under generateWithRetry, growing
  /// the code region on overflow. Failed attempts' allocations (the code
  /// region and anything \p Emit allocated mid-emission, e.g. DPF jump
  /// tables) are released back to the arena before the next attempt, so
  /// persistent data structures must be written *before* calling this.
  /// Aborts (or raises through an outer recovery handler) if generation
  /// still fails at the growth cap.
  template <typename EmitFn>
  void installWithRetry(VCode &V, EmitFn Emit, Tier T = Tier::Tier0) {
    GenerateOptions Opts;
    Opts.InitialBytes = InitialCodeBytes;
    Opts.GenTier = T;
    VCODE_TM_TICK(TmInstall);
    SimAddr Mark = Mem.mark();
    GenerateResult R = generateWithRetry(
        V,
        [&](size_t N) {
          Mem.release(Mark);
          return Mem.allocCode(N);
        },
        Emit, Opts);
    if (!R.ok())
      fatalKind(R.Err.Kind, "dpf: install failed after %u attempt(s): %s",
                R.Attempts, R.Err.Detail);
    Code = R.Code;
    Attempts = R.Attempts;
    RegionBytes = R.RegionBytes;
    VCODE_TM_SPAN("dpf.install", TmInstall);
    VCODE_TM_COUNT("dpf.installs", 1);
  }

  Target &Tgt;
  sim::Memory &Mem;
  CodePtr Code;
  size_t InitialCodeBytes;
  unsigned Attempts = 0;
  size_t RegionBytes = 0;
  std::atomic<uint64_t> PendingDispatches{0}; ///< see countDispatch()
};

/// MPF-style linear interpreter.
class MpfEngine : public Engine {
public:
  MpfEngine(Target &T, sim::Memory &M) : Engine(T, M, 4096) {}
  void install(const std::vector<Filter> &Filters) override;
};

/// PATHFINDER-style pattern (cell-graph) interpreter.
class PathFinderEngine : public Engine {
public:
  PathFinderEngine(Target &T, sim::Memory &M) : Engine(T, M, 4096) {}
  void install(const std::vector<Filter> &Filters) override;
};

/// DPF: dynamically compiled, constant-specialized classifier.
class DpfEngine : public Engine {
public:
  /// Dispatch strategy for wide fan-out nodes ("DPF can select among
  /// several" — Auto picks per the paper's rules; the others force one
  /// strategy for the ablation benchmarks).
  enum class Dispatch { Auto, Chain, Binary, Hash, Table };

  DpfEngine(Target &T, sim::Memory &M, Dispatch D = Dispatch::Auto)
      : Engine(T, M, 32768), Strategy(D), GenTier(defaultTier()) {}
  void install(const std::vector<Filter> &Filters) override;

  /// Selects the generation tier for subsequent installs (Tier-0 emits in
  /// place as installed filters always did; Tier-1 records a vreg IR,
  /// allocates registers by linear scan, and replays through the
  /// optimizing emitters). Defaults to defaultTier() (VCODE_TIER env).
  void setTier(Tier T) { GenTier = T; }
  Tier tier() const { return GenTier; }

  /// Enables hot-function promotion for installShared() classifiers:
  /// once a shared classifier has executed \p N times (counted across
  /// every engine dispatching it), the dispatcher that crosses the
  /// threshold regenerates it at Tier-1 and the cache swaps versions
  /// under the running dispatchers. 0 (the default) disables promotion.
  void setHotThreshold(uint64_t N) { HotThreshold = N; }
  uint64_t hotThreshold() const { return HotThreshold; }

  /// Tiered dispatch: executes the pinned current version of a shared
  /// classifier, counting executions and promoting at the threshold.
  int classify(sim::Cpu &Cpu, SimAddr Msg) override;

  /// Regenerates the installShared() classifier at Tier-1 and swaps it
  /// into the cache (exactly one promoter wins across all engines
  /// sharing the entry). Returns true when this call performed the swap.
  bool promoteShared();

  /// Cache-backed install. The canonical key of \p Filters (plus target
  /// and dispatch strategy) is looked up in \p Cache: the first caller
  /// generates the classifier under generateWithRetry, concurrent callers
  /// for the same filter set block until it is published and reuse it,
  /// and distinct sets generate in parallel. The engine pins the cached
  /// code through a refcounted Handle, so a later eviction never frees a
  /// classifier this engine can still execute. \p Cache must be built
  /// over the same sim::Memory this engine executes from. Returns true
  /// when the install was served from the cache (no generation by this
  /// caller). Unlike install(), failed generations raise through
  /// fatalKind under the caller's error policy without retrying callers
  /// piling up behind a poisoned entry.
  bool installShared(CodeCache &Cache, const std::vector<Filter> &Filters);

  /// Name of the dispatch strategy the last install actually used for the
  /// widest node (for reporting).
  const char *dispatchUsed() const { return Used; }

  /// The canonical CodeCache key installShared() files \p Filters under:
  /// "dpf|<target>|<strategy>|<filter-set key>". Exposed so observers
  /// (the service's hot-set report, CodeMap joins) can compute the key a
  /// set WOULD be cached under without holding a live engine.
  static std::string sharedCacheKey(const Target &T, Dispatch D,
                                    const std::vector<Filter> &Filters);
  std::string sharedCacheKey(const std::vector<Filter> &Filters) const {
    return sharedCacheKey(Tgt, Strategy, Filters);
  }

  /// One emission attempt of the classifier for \p T into \p CM at tier
  /// \p Tr: the single-shot body install() retries with grown regions.
  /// Exposed so fault-injection tests can drive it with an undersized
  /// region under a caller-controlled error policy. On success the
  /// dispatch tables are filled with resolved code addresses; on a
  /// poisoned recovery-mode attempt it returns an invalid CodePtr and
  /// touches no table memory.
  CodePtr emitInto(VCode &V, const Trie &T, CodeMem CM, Tier Tr);
  CodePtr emitInto(VCode &V, const Trie &T, CodeMem CM) {
    return emitInto(V, T, CM, GenTier);
  }

private:
  struct EdgeCase {
    uint32_t Value;
    Label Target;
  };
  /// The classifier emitter, templated over the tier's emission stream
  /// (core/TierStream.h): DirectStream reproduces the historical in-place
  /// emission byte for byte; RecStream records for Tier-1.
  template <typename S> struct Em;
  template <typename S> Label emitAll(S &St, const Trie &T, Reg MsgArg);

  Dispatch Strategy;
  const char *Used = "none";
  Tier GenTier;
  uint64_t HotThreshold = 0;
  /// installShared() provenance, kept so classify() can promote.
  CodeCache *SharedCache = nullptr;
  std::string SharedKey;
  std::vector<Filter> SharedFilters;
  /// Pin on the shared classifier when installShared() is in use.
  CodeCache::Handle CacheHandle;
  /// Post-generation patches: jump tables filled with label addresses.
  struct TablePatch {
    SimAddr TableAddr;
    std::vector<Label> Slots;
  };
  std::vector<TablePatch> Tables;
};

} // namespace dpf
} // namespace vcode

#endif // VCODE_DPF_ENGINES_H
