//===- dpf/MpfEngine.cpp - MPF-style linear filter interpreter -------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
//
// Data layout in simulator memory:
//   per filter program:  u32 natoms, then natoms x {u32 off,size,mask,val}
//   program table:       nfilters pointers (word-sized)
//   id table:            nfilters x i32
//
// The interpreter itself is generated once per install with VCODE; the
// per-message work — the cost Table 3 measures — is the interpretation
// loop over these structures, one filter after another. This models MPF's
// defining behaviour: "traditionally, packet filters are interpreted,
// which entails a high computational cost."
//
//===----------------------------------------------------------------------===//

#include "dpf/Engines.h"
#include "support/BitUtils.h"

using namespace vcode;
using namespace vcode::dpf;

// Virtual anchor; flushes the batched dispatch count so the at-exit
// telemetry report sees the exact total.
Engine::~Engine() { flushDispatches(); }

void MpfEngine::install(const std::vector<Filter> &Filters) {
  unsigned WB = Tgt.info().WordBytes;

  // Encode the filter programs.
  std::vector<SimAddr> Progs;
  for (const Filter &F : Filters) {
    SimAddr P = Mem.alloc(4 + F.Atoms.size() * 16, 8);
    Progs.push_back(P);
    Mem.write<uint32_t>(P, uint32_t(F.Atoms.size()));
    SimAddr Q = P + 4;
    for (const Atom &A : F.Atoms) {
      Mem.write<uint32_t>(Q + 0, A.Offset);
      Mem.write<uint32_t>(Q + 4, A.Size);
      Mem.write<uint32_t>(Q + 8, A.Mask);
      Mem.write<uint32_t>(Q + 12, A.Value);
      Q += 16;
    }
  }
  SimAddr ProgTable = Mem.alloc(Progs.size() * WB, 8);
  for (size_t I = 0; I < Progs.size(); ++I) {
    if (WB == 8)
      Mem.write<uint64_t>(ProgTable + I * 8, Progs[I]);
    else
      Mem.write<uint32_t>(ProgTable + I * 4, uint32_t(Progs[I]));
  }
  SimAddr Ids = Mem.alloc(Filters.size() * 4, 4);
  for (size_t I = 0; I < Filters.size(); ++I)
    Mem.write<int32_t>(Ids + I * 4, Filters[I].Id);

  // Generate the interpreter (retrying with a grown region on overflow;
  // the filter structures above persist across attempts).
  VCode V(Tgt);
  installWithRetry(V, [&](CodeMem CM) {
    Reg Arg[1];
    V.lambda("%p", Arg, LeafHint, CM);
    Reg Msg = Arg[0];
    Reg Idx = V.getreg(Type::I);
    Reg Pp = V.getreg(Type::P);
    Reg N = V.getreg(Type::I);
    Reg Vv = V.getreg(Type::U);
    Reg T = V.getreg(Type::P);
    Reg Fld = V.getreg(Type::U);
    Reg BaseProg = V.getreg(Type::P);
    Reg BaseIds = V.getreg(Type::P);

    Label LFilter = V.genLabel(), LAtom = V.genLabel(), LNext = V.genLabel();
    Label LAccept = V.genLabel(), LFail = V.genLabel();
    Label LByte = V.genLabel(), LHalf = V.genLabel(), LHave = V.genLabel();

    V.setp(BaseProg, ProgTable);
    V.setp(BaseIds, Ids);
    V.seti(Idx, 0);

    V.label(LFilter);
    V.bgeii(Idx, int64_t(Filters.size()), LFail);
    // pp = progTable[idx]
    V.lshii(T, Idx, int64_t(log2Floor(WB)));
    V.addp(T, BaseProg, T);
    V.ldpi(Pp, T, 0);
    V.ldui(N, Pp, 0);
    V.addpi(Pp, Pp, 4);

    V.label(LAtom);
    V.beqii(N, 0, LAccept);
    // t = msg + off
    V.ldui(Fld, Pp, 0);
    V.addp(T, Msg, Fld);
    // size dispatch
    V.ldui(Fld, Pp, 4);
    V.beqii(Fld, 1, LByte);
    V.beqii(Fld, 2, LHalf);
    V.ldui(Vv, T, 0);
    V.jmp(LHave);
    V.label(LByte);
    V.lduci(Vv, T, 0);
    V.jmp(LHave);
    V.label(LHalf);
    V.ldusi(Vv, T, 0);
    V.label(LHave);
    // mask & compare
    V.ldui(Fld, Pp, 8);
    V.andu(Vv, Vv, Fld);
    V.ldui(Fld, Pp, 12);
    V.bneu(Vv, Fld, LNext);
    // next atom
    V.addpi(Pp, Pp, 16);
    V.subii(N, N, 1);
    V.jmp(LAtom);

    V.label(LNext);
    V.addii(Idx, Idx, 1);
    V.jmp(LFilter);

    V.label(LAccept);
    V.lshii(T, Idx, 2);
    V.addp(T, BaseIds, T);
    V.ldii(Vv, T, 0);
    V.reti(Vv);

    V.label(LFail);
    V.seti(Vv, -1);
    V.reti(Vv);

    return V.end();
  });
}
