//===- sim/Cache.h - Direct-mapped cache model ------------------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A direct-mapped cache model (the DECstations' R2000/R3000 had split
/// direct-mapped I/D caches). Used by the CPU simulators to charge miss
/// penalties, which is what makes Table 4's cached-vs-flushed rows and the
/// "touching memory multiple times stresses the memory subsystem" effect
/// reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_SIM_CACHE_H
#define VCODE_SIM_CACHE_H

#include "core/CodeBuffer.h"
#include "support/BitUtils.h"
#include <vector>

namespace vcode {
namespace sim {

/// Direct-mapped cache: tag array only (data lives in Memory).
///
/// The index computation masks with NumLines - 1, so the line count is
/// rounded *down* to a power of two in configure() (a direct-mapped index
/// must be a bit-field of the address; a 48KB request models a 32KB
/// cache). An unconfigured cache (NumLines == 0) models no cache at all:
/// every access hits, so cycle charging degrades gracefully instead of
/// masking an empty tag vector with 0xFFFFFFFF.
class Cache {
public:
  void configure(uint32_t Bytes, uint32_t LineBytes) {
    if (LineBytes == 0 || Bytes < LineBytes) {
      Tags.clear();
      NumLines = 0;
      return;
    }
    LineShift = log2Floor(LineBytes);
    NumLines = uint32_t(1) << log2Floor(Bytes >> LineShift);
    Tags.assign(NumLines, ~uint64_t(0));
  }

  /// True once configure() has given the cache at least one line.
  bool configured() const { return NumLines != 0; }

  /// Accesses address \p A; returns true on hit, installing the line
  /// otherwise. An unconfigured cache always hits (no model).
  bool access(SimAddr A) {
    if (NumLines == 0)
      return true;
    uint64_t Line = A >> LineShift;
    uint32_t Idx = uint32_t(Line & (NumLines - 1));
    if (Tags[Idx] == Line)
      return true;
    Tags[Idx] = Line;
    return false;
  }

  /// Invalidates every line.
  void flush() { Tags.assign(NumLines, ~uint64_t(0)); }

  /// Reads every line of [A, A+Len) so subsequent accesses hit.
  void warm(SimAddr A, size_t Len) {
    if (NumLines == 0)
      return;
    for (SimAddr P = A & ~SimAddr((1u << LineShift) - 1); P < A + Len;
         P += (1u << LineShift))
      access(P);
  }

private:
  std::vector<uint64_t> Tags;
  uint32_t NumLines = 0;
  unsigned LineShift = 4;
};

} // namespace sim
} // namespace vcode

#endif // VCODE_SIM_CACHE_H
