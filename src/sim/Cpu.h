//===- sim/Cpu.h - CPU simulator interface ----------------------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The common interface of the per-ISA simulators (MIPS, SPARC, Alpha) and
/// the machine configurations named after the paper's evaluation hosts.
/// Calls into generated code marshal typed arguments according to the same
/// CallConv data the backend used, so the simulator and the generator can
/// never disagree about the convention.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_SIM_CPU_H
#define VCODE_SIM_CPU_H

#include "core/CallConv.h"
#include "core/CodeBuffer.h"
#include "core/Types.h"
#include "sim/Memory.h"
#include <cstring>
#include <initializer_list>
#include <vector>

namespace vcode {
namespace sim {

/// Cost-model and cache parameters of a simulated machine.
struct MachineConfig {
  const char *Name = "generic";
  double ClockMHz = 25.0;
  bool ModelCaches = true;
  uint32_t ICacheBytes = 64 * 1024;
  uint32_t DCacheBytes = 64 * 1024;
  uint32_t LineBytes = 16;
  uint32_t MissPenalty = 15; ///< cycles per cache miss
  uint32_t MulCycles = 12;
  uint32_t DivCycles = 35;
  uint32_t FpAddCycles = 2;
  uint32_t FpMulCycles = 5;
  uint32_t FpDivCycles = 19;
};

/// DECstation 3100 (16.67 MHz R2000, 64K/64K direct-mapped I/D caches).
inline MachineConfig dec3100Config() {
  MachineConfig C;
  C.Name = "DEC3100";
  C.ClockMHz = 16.67;
  C.MissPenalty = 6;
  C.MulCycles = 12;
  C.DivCycles = 35;
  return C;
}

/// DECstation 5000/200 (25 MHz R3000, 64K/64K direct-mapped I/D caches).
inline MachineConfig dec5000Config() {
  MachineConfig C;
  C.Name = "DEC5000";
  C.ClockMHz = 25.0;
  C.MissPenalty = 15;
  C.MulCycles = 12;
  C.DivCycles = 35;
  return C;
}

/// A typed value crossing the call boundary.
struct TypedValue {
  Type Ty = Type::V;
  uint64_t Bits = 0;

  static TypedValue fromInt(int64_t V, Type Ty = Type::I) {
    return TypedValue{Ty, uint64_t(V)};
  }
  static TypedValue fromUInt(uint64_t V, Type Ty = Type::U) {
    return TypedValue{Ty, V};
  }
  static TypedValue fromPtr(SimAddr A) { return TypedValue{Type::P, A}; }
  static TypedValue fromFloat(float V) {
    uint32_t B;
    std::memcpy(&B, &V, 4);
    return TypedValue{Type::F, B};
  }
  static TypedValue fromDouble(double V) {
    uint64_t B;
    std::memcpy(&B, &V, 8);
    return TypedValue{Type::D, B};
  }

  int32_t asInt32() const { return int32_t(uint32_t(Bits)); }
  uint32_t asUInt32() const { return uint32_t(Bits); }
  int64_t asInt64() const { return int64_t(Bits); }
  uint64_t asUInt64() const { return Bits; }
  float asFloat() const {
    float V;
    uint32_t B = uint32_t(Bits);
    std::memcpy(&V, &B, 4);
    return V;
  }
  double asDouble() const {
    double V;
    std::memcpy(&V, &Bits, 8);
    return V;
  }
};

/// Execution statistics of one call (or, via Cpu::cumulativeStats, of
/// every call since the last reset).
struct RunStats {
  uint64_t Instrs = 0;
  uint64_t Cycles = 0;
  uint64_t ICacheMisses = 0;
  uint64_t DCacheMisses = 0;
  uint64_t LoadStalls = 0;

  /// Wall time in microseconds at a given clock rate.
  double microseconds(double ClockMHz) const {
    return double(Cycles) / ClockMHz;
  }

  /// Adds another run's numbers into this one.
  void accumulate(const RunStats &S) {
    Instrs += S.Instrs;
    Cycles += S.Cycles;
    ICacheMisses += S.ICacheMisses;
    DCacheMisses += S.DCacheMisses;
    LoadStalls += S.LoadStalls;
  }
};

/// Common interface of the ISA simulators.
class Cpu {
public:
  virtual ~Cpu();

  /// Calls generated code at \p Entry with \p Args under convention \p CC,
  /// runs to completion, and returns the result interpreted as \p RetTy.
  virtual TypedValue callWithConv(const CallConv &CC, SimAddr Entry,
                                  const std::vector<TypedValue> &Args,
                                  Type RetTy) = 0;

  /// Span form of callWithConv: the argument list lives in caller-owned
  /// storage. The base implementation copies into a vector and delegates;
  /// NativeCpu overrides it with an allocation-free marshalling path, which
  /// matters when a dispatch loop makes millions of sub-microsecond calls.
  virtual TypedValue callWithConvSpan(const CallConv &CC, SimAddr Entry,
                                      const TypedValue *Args, size_t NumArgs,
                                      Type RetTy) {
    return callWithConv(CC, Entry,
                        std::vector<TypedValue>(Args, Args + NumArgs), RetTy);
  }

  /// Calls under the target's default convention.
  TypedValue call(SimAddr Entry, const std::vector<TypedValue> &Args,
                  Type RetTy = Type::I) {
    return callWithConv(defaultConv(), Entry, Args, RetTy);
  }

  /// Braced argument lists take the span path: no heap allocation on Cpus
  /// that override callWithConvSpan.
  TypedValue call(SimAddr Entry, std::initializer_list<TypedValue> Args,
                  Type RetTy = Type::I) {
    return callWithConvSpan(defaultConv(), Entry, Args.begin(), Args.size(),
                            RetTy);
  }

  /// The target's default calling convention.
  virtual const CallConv &defaultConv() const = 0;

  /// Invalidates both caches (Table 4's "uncached" rows).
  virtual void flushCaches() = 0;
  /// Pre-loads [A, A+Len) into the data cache.
  virtual void warmData(SimAddr A, size_t Len) = 0;

  /// Statistics of the most recent call(). Overwritten by every call;
  /// dispatch loops that want a total over many calls (e.g. classifying a
  /// packet stream) read cumulativeStats() instead of summing snapshots.
  /// The Table 3 DPF bench bills whole dispatch loops and sums per-call
  /// values explicitly; the Table 4 ASH bench bills single handler runs
  /// and uses lastStats() directly.
  virtual const RunStats &lastStats() const = 0;

  /// Aggregate statistics over every call() since construction (or the
  /// last resetCumulativeStats()): repeated runs accumulate instead of
  /// overwriting.
  const RunStats &cumulativeStats() const { return CumStats; }
  void resetCumulativeStats() { CumStats = RunStats(); }
  /// Upper bound on executed instructions per call (runaway guard).
  virtual void setInstrLimit(uint64_t N) = 0;
  /// The machine configuration in effect.
  virtual const MachineConfig &config() const = 0;

  /// Gives this Cpu a private stack: subsequent calls start with SP = \p A
  /// (16-byte aligned down) instead of the arena's shared default stack.
  /// Required when several Cpus execute concurrently over one Memory —
  /// pair with Memory::allocStack(). Pass 0 to restore the default.
  void setStackTop(SimAddr A) { StackTopOverride = A; }

protected:
  /// Initial SP for a fresh activation: the per-Cpu override when set,
  /// else the arena's shared stack region.
  SimAddr initialSp(const Memory &M) const {
    return StackTopOverride ? (StackTopOverride & ~SimAddr(15))
                            : M.stackTop();
  }

  /// Called by each simulator at the end of callWithConv with that run's
  /// stats: folds them into the cumulative totals and surfaces them in
  /// the process-wide telemetry registry, so generated-code cost (cycles,
  /// stalls, cache misses) and generation cost read off one report.
  void finishRun(const RunStats &S);

  /// Folds one run into the cumulative totals without touching the
  /// process-wide telemetry registry. Substrates whose entire call is
  /// tens of nanoseconds (binary translation, native dispatch) batch
  /// their registry traffic and flush it on a coarse cadence; the six
  /// per-call counter adds finishRun issues would dominate them.
  void accumulateStats(const RunStats &S) { CumStats.accumulate(S); }

private:
  RunStats CumStats;
  SimAddr StackTopOverride = 0;
};

} // namespace sim
} // namespace vcode

#endif // VCODE_SIM_CPU_H
