//===- sim/MipsSim.cpp - MIPS32 (R3000-class) simulator --------------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "sim/MipsSim.h"
#include "mips/MipsTarget.h"
#include "profile/Profiler.h"
#include "support/BitUtils.h"
#include "support/Telemetry.h"
#include <cmath>
#include <cstring>

using namespace vcode;
using namespace vcode::sim;

// Virtual method anchor.
Cpu::~Cpu() = default;

void Cpu::finishRun(const RunStats &S) {
  accumulateStats(S);
  VCODE_TM_COUNT("sim.calls", 1);
  VCODE_TM_COUNT("sim.instrs", S.Instrs);
  VCODE_TM_COUNT("sim.cycles", S.Cycles);
  VCODE_TM_COUNT("sim.icache_misses", S.ICacheMisses);
  VCODE_TM_COUNT("sim.dcache_misses", S.DCacheMisses);
  VCODE_TM_COUNT("sim.load_stalls", S.LoadStalls);
}

MipsSim::MipsSim(Memory &M, MachineConfig C) : Mem(M), Cfg(C) {
  ICache.configure(Cfg.ICacheBytes, Cfg.LineBytes);
  DCache.configure(Cfg.DCacheBytes, Cfg.LineBytes);
}

const CallConv &MipsSim::defaultConv() const {
  return mips::mipsTargetInfo().DefaultCC;
}

void MipsSim::flushCaches() {
  ICache.flush();
  DCache.flush();
}

void MipsSim::warmData(SimAddr A, size_t Len) { DCache.warm(A, Len); }

uint32_t MipsSim::fetch(SimAddr A) {
  if (Cfg.ModelCaches && !ICache.access(A)) {
    Stats.Cycles += Cfg.MissPenalty;
    ++Stats.ICacheMisses;
  }
  return Mem.read<uint32_t>(A);
}

uint32_t MipsSim::loadMem(SimAddr A, unsigned Bytes, bool SignExtend) {
  if (Cfg.ModelCaches && !DCache.access(A)) {
    Stats.Cycles += Cfg.MissPenalty;
    ++Stats.DCacheMisses;
  }
  switch (Bytes) {
  case 1: {
    uint8_t V = Mem.read<uint8_t>(A);
    return SignExtend ? uint32_t(int32_t(int8_t(V))) : V;
  }
  case 2: {
    if (A & 1)
      fatalKind(CgErrKind::SimFault,
          "mips sim: unaligned halfword load at 0x%llx",
            (unsigned long long)A);
    uint16_t V = Mem.read<uint16_t>(A);
    return SignExtend ? uint32_t(int32_t(int16_t(V))) : V;
  }
  case 4:
    if (A & 3)
      fatalKind(CgErrKind::SimFault,
          "mips sim: unaligned word load at 0x%llx", (unsigned long long)A);
    return Mem.read<uint32_t>(A);
  }
  unreachable("bad load size");
}

void MipsSim::storeMem(SimAddr A, unsigned Bytes, uint32_t V) {
  if (Cfg.ModelCaches && !DCache.access(A)) {
    Stats.Cycles += Cfg.MissPenalty;
    ++Stats.DCacheMisses;
  }
  switch (Bytes) {
  case 1:
    Mem.write<uint8_t>(A, uint8_t(V));
    return;
  case 2:
    if (A & 1)
      fatalKind(CgErrKind::SimFault,
          "mips sim: unaligned halfword store at 0x%llx",
            (unsigned long long)A);
    Mem.write<uint16_t>(A, uint16_t(V));
    return;
  case 4:
    if (A & 3)
      fatalKind(CgErrKind::SimFault,
          "mips sim: unaligned word store at 0x%llx", (unsigned long long)A);
    Mem.write<uint32_t>(A, V);
    return;
  }
  unreachable("bad store size");
}

float MipsSim::getS(unsigned F) const {
  float V;
  std::memcpy(&V, &FPR[F], 4);
  return V;
}

void MipsSim::setS(unsigned F, float V) { std::memcpy(&FPR[F], &V, 4); }

double MipsSim::getD(unsigned F) const {
  uint64_t Bits = uint64_t(FPR[F]) | (uint64_t(FPR[F + 1]) << 32);
  double V;
  std::memcpy(&V, &Bits, 8);
  return V;
}

void MipsSim::setD(unsigned F, double V) {
  uint64_t Bits;
  std::memcpy(&Bits, &V, 8);
  FPR[F] = uint32_t(Bits);
  FPR[F + 1] = uint32_t(Bits >> 32);
}

/// Conservative approximation of "instruction reads register N" for the
/// load-use interlock cost model.
static bool readsReg(uint32_t I, unsigned N) {
  if (N == 0)
    return false;
  unsigned Op = I >> 26;
  unsigned Rs = (I >> 21) & 31;
  unsigned Rt = (I >> 16) & 31;
  if (Op == 0x0f) // lui reads nothing
    return false;
  if (Rs == N)
    return true;
  // rt is a source for R-type ALU ops, stores, and beq/bne.
  bool RtIsSource = Op == 0 || (Op >= 0x28 && Op <= 0x3d) || Op == 4 || Op == 5;
  return RtIsSource && Rt == N;
}

void MipsSim::chargeLoadUse(uint32_t Instr) {
  if (LastLoadReg > 0 && readsReg(Instr, unsigned(LastLoadReg))) {
    ++Stats.Cycles;
    ++Stats.LoadStalls;
  }
  LastLoadReg = -1;
}

void MipsSim::step() {
  SimAddr InstrPC = PC;
  uint32_t I = fetch(InstrPC);
  PC = NPC;
  NPC += 4;
  ++Stats.Instrs;
  ++Stats.Cycles;
  chargeLoadUse(I);

  unsigned Op = I >> 26;
  unsigned Rs = (I >> 21) & 31;
  unsigned Rt = (I >> 16) & 31;
  unsigned Rd = (I >> 11) & 31;
  unsigned Sh = (I >> 6) & 31;
  unsigned Fn = I & 63;
  int32_t Imm = signExtend32<16>(I & 0xffff);
  uint32_t UImm = I & 0xffff;
  auto W = [this](unsigned N, uint32_t V) {
    if (N)
      R[N] = V;
  };

  switch (Op) {
  case 0x00: // SPECIAL
    switch (Fn) {
    case 0x00:
      W(Rd, R[Rt] << Sh);
      return;
    case 0x02:
      W(Rd, R[Rt] >> Sh);
      return;
    case 0x03:
      W(Rd, uint32_t(int32_t(R[Rt]) >> Sh));
      return;
    case 0x04:
      W(Rd, R[Rt] << (R[Rs] & 31));
      return;
    case 0x06:
      W(Rd, R[Rt] >> (R[Rs] & 31));
      return;
    case 0x07:
      W(Rd, uint32_t(int32_t(R[Rt]) >> (R[Rs] & 31)));
      return;
    case 0x08: // jr
      NPC = R[Rs];
      return;
    case 0x09: // jalr
      W(Rd, uint32_t(InstrPC + 8));
      NPC = R[Rs];
      return;
    case 0x10:
      W(Rd, HI);
      return;
    case 0x12:
      W(Rd, LO);
      return;
    case 0x11:
      HI = R[Rs];
      return;
    case 0x13:
      LO = R[Rs];
      return;
    case 0x18: { // mult
      int64_t P = int64_t(int32_t(R[Rs])) * int64_t(int32_t(R[Rt]));
      LO = uint32_t(P);
      HI = uint32_t(uint64_t(P) >> 32);
      Stats.Cycles += Cfg.MulCycles;
      return;
    }
    case 0x19: { // multu
      uint64_t P = uint64_t(R[Rs]) * uint64_t(R[Rt]);
      LO = uint32_t(P);
      HI = uint32_t(P >> 32);
      Stats.Cycles += Cfg.MulCycles;
      return;
    }
    case 0x1a: // div
      if (R[Rt] == 0) {
        LO = 0;
        HI = R[Rs];
      } else if (int32_t(R[Rs]) == INT32_MIN && int32_t(R[Rt]) == -1) {
        LO = R[Rs];
        HI = 0;
      } else {
        LO = uint32_t(int32_t(R[Rs]) / int32_t(R[Rt]));
        HI = uint32_t(int32_t(R[Rs]) % int32_t(R[Rt]));
      }
      Stats.Cycles += Cfg.DivCycles;
      return;
    case 0x1b: // divu
      if (R[Rt] == 0) {
        LO = 0;
        HI = R[Rs];
      } else {
        LO = R[Rs] / R[Rt];
        HI = R[Rs] % R[Rt];
      }
      Stats.Cycles += Cfg.DivCycles;
      return;
    case 0x20: // add (no overflow traps modeled)
    case 0x21:
      W(Rd, R[Rs] + R[Rt]);
      return;
    case 0x22:
    case 0x23:
      W(Rd, R[Rs] - R[Rt]);
      return;
    case 0x24:
      W(Rd, R[Rs] & R[Rt]);
      return;
    case 0x25:
      W(Rd, R[Rs] | R[Rt]);
      return;
    case 0x26:
      W(Rd, R[Rs] ^ R[Rt]);
      return;
    case 0x27:
      W(Rd, ~(R[Rs] | R[Rt]));
      return;
    case 0x2a:
      W(Rd, int32_t(R[Rs]) < int32_t(R[Rt]) ? 1 : 0);
      return;
    case 0x2b:
      W(Rd, R[Rs] < R[Rt] ? 1 : 0);
      return;
    }
    fatalKind(CgErrKind::SimFault,
        "mips sim: unknown SPECIAL funct 0x%x at 0x%llx", Fn,
          (unsigned long long)InstrPC);
  case 0x01: // REGIMM: bltz/bgez
    if (Rt == 0 ? int32_t(R[Rs]) < 0 : int32_t(R[Rs]) >= 0)
      NPC = InstrPC + 4 + (SimAddr(int64_t(Imm)) << 2);
    return;
  case 0x02: // j
    NPC = (InstrPC & ~SimAddr(0x0fffffff)) | SimAddr((I & 0x03ffffff) << 2);
    return;
  case 0x03: // jal
    R[31] = uint32_t(InstrPC + 8);
    NPC = (InstrPC & ~SimAddr(0x0fffffff)) | SimAddr((I & 0x03ffffff) << 2);
    return;
  case 0x04: // beq
    if (R[Rs] == R[Rt])
      NPC = InstrPC + 4 + (SimAddr(int64_t(Imm)) << 2);
    return;
  case 0x05: // bne
    if (R[Rs] != R[Rt])
      NPC = InstrPC + 4 + (SimAddr(int64_t(Imm)) << 2);
    return;
  case 0x06: // blez
    if (int32_t(R[Rs]) <= 0)
      NPC = InstrPC + 4 + (SimAddr(int64_t(Imm)) << 2);
    return;
  case 0x07: // bgtz
    if (int32_t(R[Rs]) > 0)
      NPC = InstrPC + 4 + (SimAddr(int64_t(Imm)) << 2);
    return;
  case 0x08: // addi (overflow traps not modeled)
  case 0x09:
    W(Rt, R[Rs] + uint32_t(Imm));
    return;
  case 0x0a:
    W(Rt, int32_t(R[Rs]) < Imm ? 1 : 0);
    return;
  case 0x0b:
    W(Rt, R[Rs] < uint32_t(Imm) ? 1 : 0);
    return;
  case 0x0c:
    W(Rt, R[Rs] & UImm);
    return;
  case 0x0d:
    W(Rt, R[Rs] | UImm);
    return;
  case 0x0e:
    W(Rt, R[Rs] ^ UImm);
    return;
  case 0x0f:
    W(Rt, UImm << 16);
    return;

  case 0x11: { // COP1
    unsigned Sub = Rs;
    if (Sub == 0) { // mfc1
      W(Rt, FPR[Rd]);
      return;
    }
    if (Sub == 4) { // mtc1
      FPR[Rd] = R[Rt];
      return;
    }
    if (Sub == 8) { // bc1f/bc1t
      bool WantTrue = (Rt & 1) != 0;
      if (FpCond == WantTrue)
        NPC = InstrPC + 4 + (SimAddr(int64_t(Imm)) << 2);
      return;
    }
    unsigned Fmt = Sub, Ft = Rt, Fs = Rd, Fd = Sh;
    bool Dbl = Fmt == 17;
    switch (Fn) {
    case 0x00:
      Dbl ? setD(Fd, getD(Fs) + getD(Ft)) : setS(Fd, getS(Fs) + getS(Ft));
      Stats.Cycles += Cfg.FpAddCycles - 1;
      return;
    case 0x01:
      Dbl ? setD(Fd, getD(Fs) - getD(Ft)) : setS(Fd, getS(Fs) - getS(Ft));
      Stats.Cycles += Cfg.FpAddCycles - 1;
      return;
    case 0x02:
      Dbl ? setD(Fd, getD(Fs) * getD(Ft)) : setS(Fd, getS(Fs) * getS(Ft));
      Stats.Cycles += Cfg.FpMulCycles - 1;
      return;
    case 0x03:
      Dbl ? setD(Fd, getD(Fs) / getD(Ft)) : setS(Fd, getS(Fs) / getS(Ft));
      Stats.Cycles += Cfg.FpDivCycles - 1;
      return;
    case 0x04:
      Dbl ? setD(Fd, std::sqrt(getD(Fs))) : setS(Fd, std::sqrt(getS(Fs)));
      Stats.Cycles += Cfg.FpDivCycles - 1;
      return;
    case 0x05:
      Dbl ? setD(Fd, std::fabs(getD(Fs))) : setS(Fd, std::fabs(getS(Fs)));
      return;
    case 0x06:
      Dbl ? setD(Fd, getD(Fs)) : setS(Fd, getS(Fs));
      return;
    case 0x07:
      Dbl ? setD(Fd, -getD(Fs)) : setS(Fd, -getS(Fs));
      return;
    case 0x0d: { // trunc.w.fmt
      double V = Dbl ? getD(Fs) : double(getS(Fs));
      FPR[Fd] = uint32_t(int32_t(V));
      return;
    }
    case 0x20: // cvt.s.fmt
      if (Fmt == 17)
        setS(Fd, float(getD(Fs)));
      else if (Fmt == 20)
        setS(Fd, float(int32_t(FPR[Fs])));
      else
        fatalKind(CgErrKind::SimFault,
            "mips sim: cvt.s from fmt %u", Fmt);
      return;
    case 0x21: // cvt.d.fmt
      if (Fmt == 16)
        setD(Fd, double(getS(Fs)));
      else if (Fmt == 20)
        setD(Fd, double(int32_t(FPR[Fs])));
      else
        fatalKind(CgErrKind::SimFault,
            "mips sim: cvt.d from fmt %u", Fmt);
      return;
    case 0x24: // cvt.w.fmt (round-to-nearest not modeled; truncates)
      FPR[Fd] = uint32_t(int32_t(Dbl ? getD(Fs) : double(getS(Fs))));
      return;
    case 0x32:
      FpCond = Dbl ? getD(Fs) == getD(Ft) : getS(Fs) == getS(Ft);
      return;
    case 0x3c:
      FpCond = Dbl ? getD(Fs) < getD(Ft) : getS(Fs) < getS(Ft);
      return;
    case 0x3e:
      FpCond = Dbl ? getD(Fs) <= getD(Ft) : getS(Fs) <= getS(Ft);
      return;
    }
    fatalKind(CgErrKind::SimFault,
        "mips sim: unknown COP1 funct 0x%x at 0x%llx", Fn,
          (unsigned long long)InstrPC);
  }

  case 0x20: // lb
    W(Rt, loadMem(R[Rs] + uint32_t(Imm), 1, true));
    LastLoadReg = int(Rt);
    return;
  case 0x21: // lh
    W(Rt, loadMem(R[Rs] + uint32_t(Imm), 2, true));
    LastLoadReg = int(Rt);
    return;
  case 0x23: // lw
    W(Rt, loadMem(R[Rs] + uint32_t(Imm), 4, false));
    LastLoadReg = int(Rt);
    return;
  case 0x24: // lbu
    W(Rt, loadMem(R[Rs] + uint32_t(Imm), 1, false));
    LastLoadReg = int(Rt);
    return;
  case 0x25: // lhu
    W(Rt, loadMem(R[Rs] + uint32_t(Imm), 2, false));
    LastLoadReg = int(Rt);
    return;
  case 0x28: // sb
    storeMem(R[Rs] + uint32_t(Imm), 1, R[Rt]);
    return;
  case 0x29: // sh
    storeMem(R[Rs] + uint32_t(Imm), 2, R[Rt]);
    return;
  case 0x2b: // sw
    storeMem(R[Rs] + uint32_t(Imm), 4, R[Rt]);
    return;
  case 0x31: // lwc1
    FPR[Rt] = loadMem(R[Rs] + uint32_t(Imm), 4, false);
    return;
  case 0x35: { // ldc1
    SimAddr A = R[Rs] + uint32_t(Imm);
    FPR[Rt] = loadMem(A, 4, false);
    FPR[Rt + 1] = loadMem(A + 4, 4, false);
    return;
  }
  case 0x39: // swc1
    storeMem(R[Rs] + uint32_t(Imm), 4, FPR[Rt]);
    return;
  case 0x3d: { // sdc1
    SimAddr A = R[Rs] + uint32_t(Imm);
    storeMem(A, 4, FPR[Rt]);
    storeMem(A + 4, 4, FPR[Rt + 1]);
    return;
  }
  }
  fatalKind(CgErrKind::SimFault,
      "mips sim: unknown opcode 0x%x at 0x%llx", Op,
        (unsigned long long)InstrPC);
}

void MipsSim::exportState(ArchState &S) const {
  std::memcpy(S.R, R, sizeof(R));
  std::memcpy(S.FPR, FPR, sizeof(FPR));
  S.HI = HI;
  S.LO = LO;
  S.FpCond = FpCond;
}

void MipsSim::importState(const ArchState &S) {
  std::memcpy(R, S.R, sizeof(R));
  R[0] = 0;
  std::memcpy(FPR, S.FPR, sizeof(FPR));
  HI = S.HI;
  LO = S.LO;
  FpCond = S.FpCond;
}

SimAddr MipsSim::stepUnit(SimAddr At) {
  PC = At;
  NPC = At + 4;
  // A unit is one instruction, extended while the pipeline is mid-transfer:
  // after a CTI executes, NPC != PC + 4 and the delay slot (possibly itself
  // a CTI, extending the chain) must run before control is architecturally
  // at rest again.
  do {
    if (Stats.Instrs >= InstrLimit)
      fatalKind(CgErrKind::SimFault,
          "mips sim: instruction limit (%llu) exceeded; runaway code?",
            (unsigned long long)InstrLimit);
    step();
  } while (PC != StopAddr && NPC != PC + 4);
  return PC;
}

TypedValue MipsSim::callWithConv(const CallConv &CC, SimAddr Entry,
                                 const std::vector<TypedValue> &Args,
                                 Type RetTy) {
  Stats = RunStats();
  std::memset(R, 0, sizeof(R));
  HI = LO = 0;
  FpCond = false;
  LastLoadReg = -1;

  R[29] = uint32_t(initialSp(Mem)); // sp
  unsigned Link = CC.LinkReg.isValid() ? CC.LinkReg.Num : 31;
  R[Link] = uint32_t(StopAddr);

  std::vector<Type> Types;
  Types.reserve(Args.size());
  for (const TypedValue &A : Args)
    Types.push_back(A.Ty);
  std::vector<ArgLoc> Locs = computeArgLocs(CC, Types, 4);
  for (size_t I = 0; I < Args.size(); ++I) {
    const ArgLoc &L = Locs[I];
    const TypedValue &A = Args[I];
    if (!L.OnStack) {
      if (L.R.isInt()) {
        R[L.R.Num] = uint32_t(A.Bits);
      } else if (A.Ty == Type::D) {
        FPR[L.R.Num] = uint32_t(A.Bits);
        FPR[L.R.Num + 1] = uint32_t(A.Bits >> 32);
      } else {
        FPR[L.R.Num] = uint32_t(A.Bits);
      }
      continue;
    }
    SimAddr Slot = SimAddr(R[29]) + uint32_t(L.StackOff);
    if (A.Ty == Type::D) {
      Mem.write<uint32_t>(Slot, uint32_t(A.Bits));
      Mem.write<uint32_t>(Slot + 4, uint32_t(A.Bits >> 32));
    } else {
      Mem.write<uint32_t>(Slot, uint32_t(A.Bits));
    }
  }

  PC = Entry;
  NPC = Entry + 4;
  uint64_t Limit = InstrLimit;
  while (PC != StopAddr) {
    if (Stats.Instrs >= Limit)
      fatalKind(CgErrKind::SimFault,
          "mips sim: instruction limit (%llu) exceeded; runaway code?",
            (unsigned long long)Limit);
    // Virtual-PC sampling (profile/Profiler.h): PfClock is cumulative
    // across calls (Stats resets per call) so the sampling phase does
    // not realign with every callWithConv.
    VCODE_PF_SAMPLE_VPC(++PfClock, PC);
    step();
  }

  TypedValue Res;
  Res.Ty = RetTy;
  if (RetTy == Type::D)
    Res.Bits = uint64_t(FPR[CC.FpRet.Num]) | (uint64_t(FPR[CC.FpRet.Num + 1]) << 32);
  else if (RetTy == Type::F)
    Res.Bits = FPR[CC.FpRet.Num];
  else if (isSignedType(RetTy))
    Res.Bits = uint64_t(int64_t(int32_t(R[CC.IntRet.Num])));
  else
    Res.Bits = R[CC.IntRet.Num];
  finishRun(Stats);
  return Res;
}
