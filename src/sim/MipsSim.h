//===- sim/MipsSim.h - MIPS32 (R3000-class) simulator -----------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An instruction-set simulator for the MIPS I/II subset emitted by the
/// MIPS backend: integer pipeline with one architectural branch delay slot,
/// interlocked loads (one-cycle load-use stall), multiply/divide latencies,
/// an R3010-style FPU, and split direct-mapped I/D caches. Stands in for
/// the paper's DECstation hardware (DESIGN.md substitution table).
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_SIM_MIPSSIM_H
#define VCODE_SIM_MIPSSIM_H

#include "sim/Cache.h"
#include "sim/Cpu.h"
#include "sim/Memory.h"

namespace vcode {
namespace sim {

/// MIPS32 CPU simulator over a Memory arena.
class MipsSim : public Cpu {
public:
  explicit MipsSim(Memory &M, MachineConfig Cfg = dec5000Config());

  TypedValue callWithConv(const CallConv &CC, SimAddr Entry,
                          const std::vector<TypedValue> &Args,
                          Type RetTy) override;
  const CallConv &defaultConv() const override;
  void flushCaches() override;
  void warmData(SimAddr A, size_t Len) override;
  const RunStats &lastStats() const override { return Stats; }
  const MachineConfig &config() const override { return Cfg; }

  void setInstrLimit(uint64_t N) override { InstrLimit = N; }

  /// Direct register access (tests).
  uint32_t reg(unsigned N) const { return R[N]; }
  void setReg(unsigned N, uint32_t V) {
    if (N)
      R[N] = V;
  }

private:
  void step();
  uint32_t fetch(SimAddr A);
  uint32_t loadMem(SimAddr A, unsigned Bytes, bool SignExtend);
  void storeMem(SimAddr A, unsigned Bytes, uint32_t V);
  double getD(unsigned F) const;
  void setD(unsigned F, double V);
  float getS(unsigned F) const;
  void setS(unsigned F, float V);
  void chargeLoadUse(uint32_t Instr);

  Memory &Mem;
  MachineConfig Cfg;
  Cache ICache, DCache;
  RunStats Stats;
  uint64_t InstrLimit = 2'000'000'000;

  uint32_t R[32] = {};
  uint32_t FPR[32] = {};
  uint32_t HI = 0, LO = 0;
  bool FpCond = false;
  SimAddr PC = 0, NPC = 0;
  int LastLoadReg = -1; // for the load-use interlock model
  bool Halted = false;

  static constexpr SimAddr StopAddr = 0xFFFF0000;
};

} // namespace sim
} // namespace vcode

#endif // VCODE_SIM_MIPSSIM_H
