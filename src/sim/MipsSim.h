//===- sim/MipsSim.h - MIPS32 (R3000-class) simulator -----------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An instruction-set simulator for the MIPS I/II subset emitted by the
/// MIPS backend: integer pipeline with one architectural branch delay slot,
/// interlocked loads (one-cycle load-use stall), multiply/divide latencies,
/// an R3010-style FPU, and split direct-mapped I/D caches. Stands in for
/// the paper's DECstation hardware (DESIGN.md substitution table).
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_SIM_MIPSSIM_H
#define VCODE_SIM_MIPSSIM_H

#include "sim/Cache.h"
#include "sim/Cpu.h"
#include "sim/Memory.h"

namespace vcode {
namespace sim {

/// MIPS32 CPU simulator over a Memory arena.
class MipsSim : public Cpu {
public:
  explicit MipsSim(Memory &M, MachineConfig Cfg = dec5000Config());

  TypedValue callWithConv(const CallConv &CC, SimAddr Entry,
                          const std::vector<TypedValue> &Args,
                          Type RetTy) override;
  const CallConv &defaultConv() const override;
  void flushCaches() override;
  void warmData(SimAddr A, size_t Len) override;
  const RunStats &lastStats() const override { return Stats; }
  const MachineConfig &config() const override { return Cfg; }

  void setInstrLimit(uint64_t N) override { InstrLimit = N; }

  /// Direct register access (tests).
  uint32_t reg(unsigned N) const { return R[N]; }
  void setReg(unsigned N, uint32_t V) {
    if (N)
      R[N] = V;
  }

  // --- Binary-translator fallback interface (dbt::MipsTranslatingCpu) ----

  /// Architectural register file, exportable/importable so a binary
  /// translator can hand individual instructions back to the interpreter
  /// and resume translated execution from the resulting state.
  struct ArchState {
    uint32_t R[32];
    uint32_t FPR[32];
    uint32_t HI, LO;
    bool FpCond;
  };

  void exportState(ArchState &S) const;
  void importState(const ArchState &S);

  /// Resets the per-run statistics and seeds the retired-instruction
  /// count, so interpreter-executed units continue a translator-maintained
  /// total and the instruction limit fires at the same point either way.
  void seedRun(uint64_t Instrs) {
    Stats = RunStats();
    Stats.Instrs = Instrs;
    LastLoadReg = -1;
  }
  uint64_t retiredInstrs() const { return Stats.Instrs; }

  /// Executes one instruction *unit* starting at \p At: the instruction
  /// itself plus, when it is a control-transfer, the delay-slot chain it
  /// starts — so the caller never observes the architecturally-invisible
  /// mid-CTI state. Returns the PC where control lands (stopAddr() when
  /// the unit returned through the sentinel link register).
  SimAddr stepUnit(SimAddr At);

  /// Sentinel return address terminating a call (link register seed).
  static constexpr SimAddr stopAddr() { return StopAddr; }
  /// Instruction budget for a call (see setInstrLimit).
  uint64_t instrLimit() const { return InstrLimit; }

private:
  void step();
  uint32_t fetch(SimAddr A);
  uint32_t loadMem(SimAddr A, unsigned Bytes, bool SignExtend);
  void storeMem(SimAddr A, unsigned Bytes, uint32_t V);
  double getD(unsigned F) const;
  void setD(unsigned F, double V);
  float getS(unsigned F) const;
  void setS(unsigned F, float V);
  void chargeLoadUse(uint32_t Instr);

  Memory &Mem;
  MachineConfig Cfg;
  Cache ICache, DCache;
  RunStats Stats;
  uint64_t InstrLimit = 2'000'000'000;
  uint64_t PfClock = 0; ///< cumulative instruction clock for the sampler

  uint32_t R[32] = {};
  uint32_t FPR[32] = {};
  uint32_t HI = 0, LO = 0;
  bool FpCond = false;
  SimAddr PC = 0, NPC = 0;
  int LastLoadReg = -1; // for the load-use interlock model
  bool Halted = false;

  static constexpr SimAddr StopAddr = 0xFFFF0000;
};

} // namespace sim
} // namespace vcode

#endif // VCODE_SIM_MIPSSIM_H
