//===- sim/Memory.h - Simulated flat memory arena ---------------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated machine's memory: a flat, little-endian, bounds-checked
/// arena backing a range of guest addresses. Dynamically generated code is
/// emitted directly into this arena (the CodeMem handed to v_lambda points
/// at arena storage), so the simulator executes exactly the bytes VCODE
/// emitted — the closest laptop-scale equivalent of running on the paper's
/// DECstation hardware (see DESIGN.md substitutions).
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_SIM_MEMORY_H
#define VCODE_SIM_MEMORY_H

#include "core/CodeBuffer.h"
#include "support/Error.h"
#include <cstring>
#include <mutex>
#include <vector>

namespace vcode {
namespace sim {

/// Flat guest memory with a bump allocator for code and data regions.
class Memory {
public:
  /// Creates an arena of \p Size bytes based at guest address \p Base.
  /// The top \p StackBytes are reserved for the stack.
  explicit Memory(size_t Size = 64 * 1024 * 1024, SimAddr Base = 0x10000000,
                  size_t StackBytes = 1024 * 1024)
      : Store(Size), BaseAddr(Base), Brk(Base + 64),
        StackTop(Base + Size - 64) {
    if (Size <= StackBytes + 4096)
      fatal("sim: arena too small");
    StackLimit = Base + Size - StackBytes;
  }

  SimAddr base() const { return BaseAddr; }
  size_t size() const { return Store.size(); }
  /// Initial stack pointer for a fresh activation (16-byte aligned).
  SimAddr stackTop() const { return StackTop & ~SimAddr(15); }

  /// True if [A, A+Len) lies inside the arena. Written overflow-safe: a
  /// wild guest address near the top of the address space must not wrap
  /// A + Len around and pass the check.
  bool contains(SimAddr A, size_t Len) const {
    if (Len == 0 || A < BaseAddr)
      return false;
    SimAddr Off = A - BaseAddr;
    return Off < Store.size() && Len <= Store.size() - Off;
  }

  /// Host pointer for guest range [A, A+Len); fatal on out-of-range.
  uint8_t *hostPtr(SimAddr A, size_t Len) {
    if (!contains(A, Len))
      fatalKind(CgErrKind::SimFault,
                "sim: guest access [0x%llx,+%zu) outside the arena",
                (unsigned long long)A, Len);
    return Store.data() + (A - BaseAddr);
  }
  const uint8_t *hostPtr(SimAddr A, size_t Len) const {
    return const_cast<Memory *>(this)->hostPtr(A, Len);
  }

  // Little-endian typed accessors.
  template <typename T> T read(SimAddr A) const {
    T V;
    std::memcpy(&V, hostPtr(A, sizeof(T)), sizeof(T));
    return V;
  }
  template <typename T> void write(SimAddr A, T V) {
    std::memcpy(hostPtr(A, sizeof(T)), &V, sizeof(T));
  }

  /// Allocates \p Bytes of guest memory aligned to \p Align. Thread-safe:
  /// the bump pointer is guarded, so independent threads may carve
  /// regions out of one arena concurrently (parallel code generation).
  SimAddr alloc(size_t Bytes, size_t Align = 16) {
    std::lock_guard<std::mutex> Lock(BrkMutex);
    SimAddr A = (Brk + Align - 1) & ~SimAddr(Align - 1);
    if (A < Brk || A > StackLimit || Bytes > StackLimit - A)
      fatalKind(CgErrKind::ArenaExhausted,
                "sim: arena exhausted (%zu bytes requested)", Bytes);
    Brk = A + Bytes;
    return A;
  }

  /// Allocates a code region suitable for passing to v_lambda.
  CodeMem allocCode(size_t Bytes) {
    SimAddr A = alloc(Bytes, 8);
    CodeMem M;
    M.Guest = A;
    M.Host = hostPtr(A, Bytes);
    M.Size = Bytes;
    return M;
  }

  /// Carves out a private stack and returns its (16-byte aligned) top.
  /// Each Cpu executing concurrently over this arena needs its own stack
  /// (Cpu::setStackTop); the arena's built-in stack region is a single
  /// shared default suitable only for one executing Cpu at a time.
  SimAddr allocStack(size_t Bytes = 64 * 1024) {
    SimAddr Base = alloc(Bytes, 16);
    return (Base + Bytes) & ~SimAddr(15);
  }

  /// Releases everything allocated after \p Mark (from mark()). The
  /// mark/release pair snapshots and rewinds the bump pointer, which only
  /// makes sense while this thread is the arena's sole allocator — do not
  /// interleave with alloc() from other threads (CodeCache's pooled
  /// regions are the concurrent-install alternative).
  SimAddr mark() const {
    std::lock_guard<std::mutex> Lock(BrkMutex);
    return Brk;
  }
  void release(SimAddr Mark) {
    std::lock_guard<std::mutex> Lock(BrkMutex);
    Brk = Mark;
  }

private:
  std::vector<uint8_t> Store;
  SimAddr BaseAddr;
  mutable std::mutex BrkMutex; ///< guards Brk (the only mutable word)
  SimAddr Brk;
  SimAddr StackTop;
  SimAddr StackLimit;
};

} // namespace sim
} // namespace vcode

#endif // VCODE_SIM_MEMORY_H
