//===- sim/Memory.h - Simulated flat memory arena ---------------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated machine's memory: a flat, little-endian, bounds-checked
/// arena backing a range of guest addresses. Dynamically generated code is
/// emitted directly into this arena (the CodeMem handed to v_lambda points
/// at arena storage), so the simulator executes exactly the bytes VCODE
/// emitted — the closest laptop-scale equivalent of running on the paper's
/// DECstation hardware (see DESIGN.md substitutions).
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_SIM_MEMORY_H
#define VCODE_SIM_MEMORY_H

#include "core/CodeBuffer.h"
#include "support/Error.h"
#include <cstring>
#include <vector>

namespace vcode {
namespace sim {

/// Flat guest memory with a bump allocator for code and data regions.
class Memory {
public:
  /// Creates an arena of \p Size bytes based at guest address \p Base.
  /// The top \p StackBytes are reserved for the stack.
  explicit Memory(size_t Size = 64 * 1024 * 1024, SimAddr Base = 0x10000000,
                  size_t StackBytes = 1024 * 1024)
      : Store(Size), BaseAddr(Base), Brk(Base + 64),
        StackTop(Base + Size - 64) {
    if (Size <= StackBytes + 4096)
      fatal("sim: arena too small");
    StackLimit = Base + Size - StackBytes;
  }

  SimAddr base() const { return BaseAddr; }
  size_t size() const { return Store.size(); }
  /// Initial stack pointer for a fresh activation (16-byte aligned).
  SimAddr stackTop() const { return StackTop & ~SimAddr(15); }

  /// True if [A, A+Len) lies inside the arena. Written overflow-safe: a
  /// wild guest address near the top of the address space must not wrap
  /// A + Len around and pass the check.
  bool contains(SimAddr A, size_t Len) const {
    if (Len == 0 || A < BaseAddr)
      return false;
    SimAddr Off = A - BaseAddr;
    return Off < Store.size() && Len <= Store.size() - Off;
  }

  /// Host pointer for guest range [A, A+Len); fatal on out-of-range.
  uint8_t *hostPtr(SimAddr A, size_t Len) {
    if (!contains(A, Len))
      fatalKind(CgErrKind::SimFault,
                "sim: guest access [0x%llx,+%zu) outside the arena",
                (unsigned long long)A, Len);
    return Store.data() + (A - BaseAddr);
  }
  const uint8_t *hostPtr(SimAddr A, size_t Len) const {
    return const_cast<Memory *>(this)->hostPtr(A, Len);
  }

  // Little-endian typed accessors.
  template <typename T> T read(SimAddr A) const {
    T V;
    std::memcpy(&V, hostPtr(A, sizeof(T)), sizeof(T));
    return V;
  }
  template <typename T> void write(SimAddr A, T V) {
    std::memcpy(hostPtr(A, sizeof(T)), &V, sizeof(T));
  }

  /// Allocates \p Bytes of guest memory aligned to \p Align.
  SimAddr alloc(size_t Bytes, size_t Align = 16) {
    SimAddr A = (Brk + Align - 1) & ~SimAddr(Align - 1);
    if (A < Brk || A > StackLimit || Bytes > StackLimit - A)
      fatalKind(CgErrKind::ArenaExhausted,
                "sim: arena exhausted (%zu bytes requested)", Bytes);
    Brk = A + Bytes;
    return A;
  }

  /// Allocates a code region suitable for passing to v_lambda.
  CodeMem allocCode(size_t Bytes) {
    SimAddr A = alloc(Bytes, 8);
    CodeMem M;
    M.Guest = A;
    M.Host = hostPtr(A, Bytes);
    M.Size = Bytes;
    return M;
  }

  /// Releases everything allocated after \p Mark (from mark()).
  SimAddr mark() const { return Brk; }
  void release(SimAddr Mark) { Brk = Mark; }

private:
  std::vector<uint8_t> Store;
  SimAddr BaseAddr;
  SimAddr Brk;
  SimAddr StackTop;
  SimAddr StackLimit;
};

} // namespace sim
} // namespace vcode

#endif // VCODE_SIM_MEMORY_H
