//===- sim/AlphaSim.h - Alpha (21064-class) simulator -----------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An instruction-set simulator for the Alpha subset emitted by the Alpha
/// backend: 64-bit integer pipeline (no delay slots), ldq_u/ext/ins/msk
/// byte machinery, IEEE FPU with register values held in T format, and
/// split direct-mapped I/D caches.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_SIM_ALPHASIM_H
#define VCODE_SIM_ALPHASIM_H

#include "sim/Cache.h"
#include "sim/Cpu.h"
#include "sim/Memory.h"

namespace vcode {
namespace sim {

/// Alpha CPU simulator over a Memory arena.
class AlphaSim : public Cpu {
public:
  explicit AlphaSim(Memory &M, MachineConfig Cfg = dec5000Config());

  TypedValue callWithConv(const CallConv &CC, SimAddr Entry,
                          const std::vector<TypedValue> &Args,
                          Type RetTy) override;
  const CallConv &defaultConv() const override;
  void flushCaches() override;
  void warmData(SimAddr A, size_t Len) override;
  const RunStats &lastStats() const override { return Stats; }
  const MachineConfig &config() const override { return Cfg; }

  void setInstrLimit(uint64_t N) override { InstrLimit = N; }

private:
  void step();
  uint32_t fetch(SimAddr A);
  uint64_t loadMem(SimAddr A, unsigned Bytes);
  void storeMem(SimAddr A, unsigned Bytes, uint64_t V);
  double getT(unsigned F) const;
  void setT(unsigned F, double V);

  Memory &Mem;
  MachineConfig Cfg;
  Cache ICache, DCache;
  RunStats Stats;
  uint64_t InstrLimit = 4'000'000'000;
  uint64_t PfClock = 0; ///< cumulative instruction clock for the sampler

  uint64_t R[32] = {};
  uint64_t F[32] = {}; // raw T-format bits
  SimAddr PC = 0;

  static constexpr SimAddr StopAddr = 0xFFFF0000;
};

} // namespace sim
} // namespace vcode

#endif // VCODE_SIM_ALPHASIM_H
