//===- sim/SparcSim.h - SPARC V8 simulator ----------------------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An instruction-set simulator for the SPARC V8 subset emitted by the
/// SPARC backend: integer pipeline with one branch delay slot, icc/fcc
/// condition codes, the Y register for mul/div, an FPU, and split
/// direct-mapped I/D caches.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_SIM_SPARCSIM_H
#define VCODE_SIM_SPARCSIM_H

#include "sim/Cache.h"
#include "sim/Cpu.h"
#include "sim/Memory.h"

namespace vcode {
namespace sim {

/// SPARC V8 CPU simulator over a Memory arena.
class SparcSim : public Cpu {
public:
  explicit SparcSim(Memory &M, MachineConfig Cfg = dec5000Config());

  TypedValue callWithConv(const CallConv &CC, SimAddr Entry,
                          const std::vector<TypedValue> &Args,
                          Type RetTy) override;
  const CallConv &defaultConv() const override;
  void flushCaches() override;
  void warmData(SimAddr A, size_t Len) override;
  const RunStats &lastStats() const override { return Stats; }
  const MachineConfig &config() const override { return Cfg; }

  void setInstrLimit(uint64_t N) override { InstrLimit = N; }

private:
  void step();
  uint32_t fetch(SimAddr A);
  uint32_t loadMem(SimAddr A, unsigned Bytes, bool SignExtend);
  void storeMem(SimAddr A, unsigned Bytes, uint32_t V);
  bool iccHolds(unsigned Cond) const;
  bool fccHolds(unsigned Cond) const;
  void setIccSub(uint32_t A, uint32_t B);
  double getD(unsigned F) const;
  void setD(unsigned F, double V);
  float getS(unsigned F) const;
  void setS(unsigned F, float V);

  Memory &Mem;
  MachineConfig Cfg;
  Cache ICache, DCache;
  RunStats Stats;
  uint64_t InstrLimit = 2'000'000'000;
  uint64_t PfClock = 0; ///< cumulative instruction clock for the sampler

  uint32_t R[32] = {};
  uint32_t FPR[32] = {};
  uint32_t Y = 0;
  bool IccN = false, IccZ = false, IccV = false, IccC = false;
  unsigned Fcc = 0; // 0=E 1=L 2=G 3=U
  SimAddr PC = 0, NPC = 0;

  static constexpr SimAddr StopAddr = 0xFFFF0000;
};

} // namespace sim
} // namespace vcode

#endif // VCODE_SIM_SPARCSIM_H
