//===- sim/SparcSim.cpp - SPARC V8 simulator --------------------------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "sim/SparcSim.h"
#include "profile/Profiler.h"
#include "sparc/SparcEncoding.h"
#include "sparc/SparcTarget.h"
#include "support/BitUtils.h"
#include <cmath>
#include <cstring>

using namespace vcode;
using namespace vcode::sim;
using namespace vcode::sparc;

SparcSim::SparcSim(Memory &M, MachineConfig C) : Mem(M), Cfg(C) {
  ICache.configure(Cfg.ICacheBytes, Cfg.LineBytes);
  DCache.configure(Cfg.DCacheBytes, Cfg.LineBytes);
}

const CallConv &SparcSim::defaultConv() const {
  return sparcTargetInfo().DefaultCC;
}

void SparcSim::flushCaches() {
  ICache.flush();
  DCache.flush();
}

void SparcSim::warmData(SimAddr A, size_t Len) { DCache.warm(A, Len); }

uint32_t SparcSim::fetch(SimAddr A) {
  if (Cfg.ModelCaches && !ICache.access(A)) {
    Stats.Cycles += Cfg.MissPenalty;
    ++Stats.ICacheMisses;
  }
  return Mem.read<uint32_t>(A);
}

uint32_t SparcSim::loadMem(SimAddr A, unsigned Bytes, bool SignExtend) {
  if (Cfg.ModelCaches && !DCache.access(A)) {
    Stats.Cycles += Cfg.MissPenalty;
    ++Stats.DCacheMisses;
  }
  switch (Bytes) {
  case 1: {
    uint8_t V = Mem.read<uint8_t>(A);
    return SignExtend ? uint32_t(int32_t(int8_t(V))) : V;
  }
  case 2: {
    if (A & 1)
      fatalKind(CgErrKind::SimFault,
          "sparc sim: unaligned halfword access at 0x%llx",
            (unsigned long long)A);
    uint16_t V = Mem.read<uint16_t>(A);
    return SignExtend ? uint32_t(int32_t(int16_t(V))) : V;
  }
  case 4:
    if (A & 3)
      fatalKind(CgErrKind::SimFault,
          "sparc sim: unaligned word access at 0x%llx",
            (unsigned long long)A);
    return Mem.read<uint32_t>(A);
  }
  unreachable("bad load size");
}

void SparcSim::storeMem(SimAddr A, unsigned Bytes, uint32_t V) {
  if (Cfg.ModelCaches && !DCache.access(A)) {
    Stats.Cycles += Cfg.MissPenalty;
    ++Stats.DCacheMisses;
  }
  switch (Bytes) {
  case 1:
    Mem.write<uint8_t>(A, uint8_t(V));
    return;
  case 2:
    Mem.write<uint16_t>(A, uint16_t(V));
    return;
  case 4:
    if (A & 3)
      fatalKind(CgErrKind::SimFault,
          "sparc sim: unaligned word store at 0x%llx",
            (unsigned long long)A);
    Mem.write<uint32_t>(A, V);
    return;
  }
  unreachable("bad store size");
}

void SparcSim::setIccSub(uint32_t A, uint32_t B) {
  uint32_t R32 = A - B;
  IccN = (R32 >> 31) != 0;
  IccZ = R32 == 0;
  IccV = (((A ^ B) & (A ^ R32)) >> 31) != 0;
  IccC = A < B;
}

bool SparcSim::iccHolds(unsigned Cond) const {
  switch (Cond) {
  case CondN:
    return false;
  case CondE:
    return IccZ;
  case CondLE:
    return IccZ || (IccN != IccV);
  case CondL:
    return IccN != IccV;
  case CondLEU:
    return IccC || IccZ;
  case CondCS:
    return IccC;
  case CondNEG:
    return IccN;
  case CondVS:
    return IccV;
  case CondA:
    return true;
  case CondNE:
    return !IccZ;
  case CondG:
    return !(IccZ || (IccN != IccV));
  case CondGE:
    return IccN == IccV;
  case CondGU:
    return !(IccC || IccZ);
  case CondCC:
    return !IccC;
  case CondPOS:
    return !IccN;
  case CondVC:
    return !IccV;
  }
  unreachable("bad icc condition");
}

bool SparcSim::fccHolds(unsigned Cond) const {
  bool E = Fcc == 0, L = Fcc == 1, G = Fcc == 2, U = Fcc == 3;
  switch (Cond) {
  case FCondN:
    return false;
  case FCondNE:
    return L || G || U;
  case FCondLG:
    return L || G;
  case FCondUL:
    return U || L;
  case FCondL:
    return L;
  case FCondUG:
    return U || G;
  case FCondG:
    return G;
  case FCondU:
    return U;
  case FCondA:
    return true;
  case FCondE:
    return E;
  case FCondUE:
    return U || E;
  case FCondGE:
    return G || E;
  case FCondUGE:
    return U || G || E;
  case FCondLE:
    return L || E;
  case FCondULE:
    return U || L || E;
  case FCondO:
    return !U;
  }
  unreachable("bad fcc condition");
}

float SparcSim::getS(unsigned F) const {
  float V;
  std::memcpy(&V, &FPR[F], 4);
  return V;
}
void SparcSim::setS(unsigned F, float V) { std::memcpy(&FPR[F], &V, 4); }

double SparcSim::getD(unsigned F) const {
  uint64_t Bits = uint64_t(FPR[F]) | (uint64_t(FPR[F + 1]) << 32);
  double V;
  std::memcpy(&V, &Bits, 8);
  return V;
}
void SparcSim::setD(unsigned F, double V) {
  uint64_t Bits;
  std::memcpy(&Bits, &V, 8);
  FPR[F] = uint32_t(Bits);
  FPR[F + 1] = uint32_t(Bits >> 32);
}

void SparcSim::step() {
  SimAddr InstrPC = PC;
  uint32_t I = fetch(InstrPC);
  PC = NPC;
  NPC += 4;
  ++Stats.Instrs;
  ++Stats.Cycles;

  unsigned Op = I >> 30;
  unsigned Rd = (I >> 25) & 31;
  auto W = [this](unsigned N, uint32_t V) {
    if (N)
      R[N] = V;
  };

  if (Op == 1) { // call
    int32_t Disp = signExtend32<30>(I & 0x3fffffff);
    R[O7] = uint32_t(InstrPC);
    NPC = InstrPC + (SimAddr(int64_t(Disp)) << 2);
    return;
  }

  if (Op == 0) { // sethi / branches
    unsigned Op2 = (I >> 22) & 7;
    if (Op2 == 4) { // sethi
      W(Rd, (I & 0x3fffff) << 10);
      return;
    }
    if (Op2 == 2 || Op2 == 6) { // Bicc / FBfcc
      if (I & (1u << 29))
        fatalKind(CgErrKind::SimFault,
            "sparc sim: annulled branches are not emitted by this port");
      unsigned Cond = (I >> 25) & 15;
      bool Taken = Op2 == 2 ? iccHolds(Cond) : fccHolds(Cond);
      if (Taken) {
        int32_t Disp = signExtend32<22>(I & 0x3fffff);
        NPC = InstrPC + (SimAddr(int64_t(Disp)) << 2);
      }
      return;
    }
    fatalKind(CgErrKind::SimFault,
        "sparc sim: unknown format-2 op2 %u at 0x%llx", Op2,
          (unsigned long long)InstrPC);
  }

  unsigned Op3 = (I >> 19) & 63;
  unsigned Rs1 = (I >> 14) & 31;
  bool ImmForm = (I >> 13) & 1;
  uint32_t Operand2 = ImmForm ? uint32_t(signExtend32<13>(I & 0x1fff))
                              : R[I & 31];

  if (Op == 2) {
    // FP operate.
    if (Op3 == 0x34 || Op3 == 0x35) {
      unsigned Opf = (I >> 5) & 0x1ff;
      unsigned Fs1 = Rs1, Fs2 = I & 31, Fd = Rd;
      switch (Opf) {
      case FMOVS:
        FPR[Fd] = FPR[Fs2];
        return;
      case FNEGS:
        FPR[Fd] = FPR[Fs2] ^ 0x80000000u;
        return;
      case FABSS:
        FPR[Fd] = FPR[Fs2] & 0x7fffffffu;
        return;
      case FSQRTS:
        setS(Fd, std::sqrt(getS(Fs2)));
        Stats.Cycles += Cfg.FpDivCycles - 1;
        return;
      case FSQRTD:
        setD(Fd, std::sqrt(getD(Fs2)));
        Stats.Cycles += Cfg.FpDivCycles - 1;
        return;
      case FADDS:
        setS(Fd, getS(Fs1) + getS(Fs2));
        Stats.Cycles += Cfg.FpAddCycles - 1;
        return;
      case FADDD:
        setD(Fd, getD(Fs1) + getD(Fs2));
        Stats.Cycles += Cfg.FpAddCycles - 1;
        return;
      case FSUBS:
        setS(Fd, getS(Fs1) - getS(Fs2));
        Stats.Cycles += Cfg.FpAddCycles - 1;
        return;
      case FSUBD:
        setD(Fd, getD(Fs1) - getD(Fs2));
        Stats.Cycles += Cfg.FpAddCycles - 1;
        return;
      case FMULS:
        setS(Fd, getS(Fs1) * getS(Fs2));
        Stats.Cycles += Cfg.FpMulCycles - 1;
        return;
      case FMULD:
        setD(Fd, getD(Fs1) * getD(Fs2));
        Stats.Cycles += Cfg.FpMulCycles - 1;
        return;
      case FDIVS:
        setS(Fd, getS(Fs1) / getS(Fs2));
        Stats.Cycles += Cfg.FpDivCycles - 1;
        return;
      case FDIVD:
        setD(Fd, getD(Fs1) / getD(Fs2));
        Stats.Cycles += Cfg.FpDivCycles - 1;
        return;
      case FITOS:
        setS(Fd, float(int32_t(FPR[Fs2])));
        return;
      case FITOD:
        setD(Fd, double(int32_t(FPR[Fs2])));
        return;
      case FSTOD:
        setD(Fd, double(getS(Fs2)));
        return;
      case FDTOS:
        setS(Fd, float(getD(Fs2)));
        return;
      case FSTOI:
        FPR[Fd] = uint32_t(int32_t(getS(Fs2)));
        return;
      case FDTOI:
        FPR[Fd] = uint32_t(int32_t(getD(Fs2)));
        return;
      case FCMPS: {
        float A = getS(Fs1), B = getS(Fs2);
        Fcc = A == B ? 0 : (A < B ? 1 : (A > B ? 2 : 3));
        return;
      }
      case FCMPD: {
        double A = getD(Fs1), B = getD(Fs2);
        Fcc = A == B ? 0 : (A < B ? 1 : (A > B ? 2 : 3));
        return;
      }
      }
      fatalKind(CgErrKind::SimFault,
          "sparc sim: unknown FP opf 0x%x at 0x%llx", Opf,
            (unsigned long long)InstrPC);
    }

    uint32_t A = R[Rs1], B = Operand2;
    switch (Op3) {
    case 0x00:
      W(Rd, A + B);
      return;
    case 0x04:
      W(Rd, A - B);
      return;
    case 0x14: // subcc
      setIccSub(A, B);
      W(Rd, A - B);
      return;
    case 0x01:
      W(Rd, A & B);
      return;
    case 0x02:
      W(Rd, A | B);
      return;
    case 0x03:
      W(Rd, A ^ B);
      return;
    case 0x07:
      W(Rd, ~(A ^ B));
      return;
    case 0x08: // addx
      W(Rd, A + B + (IccC ? 1 : 0));
      return;
    case 0x0a: { // umul
      uint64_t P = uint64_t(A) * uint64_t(B);
      W(Rd, uint32_t(P));
      Y = uint32_t(P >> 32);
      Stats.Cycles += Cfg.MulCycles;
      return;
    }
    case 0x0b: { // smul
      int64_t P = int64_t(int32_t(A)) * int64_t(int32_t(B));
      W(Rd, uint32_t(P));
      Y = uint32_t(uint64_t(P) >> 32);
      Stats.Cycles += Cfg.MulCycles;
      return;
    }
    case 0x0e: { // udiv
      uint64_t Dividend = (uint64_t(Y) << 32) | A;
      uint32_t Q = B == 0 ? 0 : uint32_t(Dividend / B);
      W(Rd, Q);
      Stats.Cycles += Cfg.DivCycles;
      return;
    }
    case 0x0f: { // sdiv
      int64_t Dividend = int64_t((uint64_t(Y) << 32) | A);
      int32_t Divisor = int32_t(B);
      uint32_t Q;
      if (Divisor == 0)
        Q = 0;
      else if (Dividend == INT64_MIN && Divisor == -1)
        Q = uint32_t(Dividend);
      else
        Q = uint32_t(int32_t(Dividend / Divisor));
      W(Rd, Q);
      Stats.Cycles += Cfg.DivCycles;
      return;
    }
    case 0x25:
      W(Rd, A << (B & 31));
      return;
    case 0x26:
      W(Rd, A >> (B & 31));
      return;
    case 0x27:
      W(Rd, uint32_t(int32_t(A) >> (B & 31)));
      return;
    case 0x28:
      W(Rd, Y);
      return;
    case 0x30:
      Y = A ^ B; // wry: rs1 xor operand2 per the V8 spec
      return;
    case 0x38: // jmpl
      W(Rd, uint32_t(InstrPC));
      NPC = (A + B) & ~SimAddr(3);
      return;
    }
    fatalKind(CgErrKind::SimFault,
        "sparc sim: unknown op3 0x%x at 0x%llx", Op3,
          (unsigned long long)InstrPC);
  }

  // Op == 3: memory.
  SimAddr Addr = SimAddr(R[Rs1] + Operand2);
  switch (Op3) {
  case LD:
    W(Rd, loadMem(Addr, 4, false));
    return;
  case LDUB:
    W(Rd, loadMem(Addr, 1, false));
    return;
  case LDUH:
    W(Rd, loadMem(Addr, 2, false));
    return;
  case LDSB:
    W(Rd, loadMem(Addr, 1, true));
    return;
  case LDSH:
    W(Rd, loadMem(Addr, 2, true));
    return;
  case ST:
    storeMem(Addr, 4, R[Rd]);
    return;
  case STB:
    storeMem(Addr, 1, R[Rd]);
    return;
  case STH:
    storeMem(Addr, 2, R[Rd]);
    return;
  case LDF:
    FPR[Rd] = loadMem(Addr, 4, false);
    return;
  case LDDF:
    FPR[Rd] = loadMem(Addr, 4, false);
    FPR[Rd + 1] = loadMem(Addr + 4, 4, false);
    return;
  case STF:
    storeMem(Addr, 4, FPR[Rd]);
    return;
  case STDF:
    storeMem(Addr, 4, FPR[Rd]);
    storeMem(Addr + 4, 4, FPR[Rd + 1]);
    return;
  }
  fatalKind(CgErrKind::SimFault,
      "sparc sim: unknown memory op3 0x%x at 0x%llx", Op3,
        (unsigned long long)InstrPC);
}

TypedValue SparcSim::callWithConv(const CallConv &CC, SimAddr Entry,
                                  const std::vector<TypedValue> &Args,
                                  Type RetTy) {
  Stats = RunStats();
  std::memset(R, 0, sizeof(R));
  Y = 0;
  IccN = IccZ = IccV = IccC = false;
  Fcc = 0;

  R[SP] = uint32_t(initialSp(Mem));
  unsigned Link = CC.LinkReg.isValid() ? unsigned(CC.LinkReg.Num) : unsigned(O7);
  R[Link] = uint32_t(StopAddr - 8); // retl jumps to link+8

  std::vector<Type> Types;
  Types.reserve(Args.size());
  for (const TypedValue &A : Args)
    Types.push_back(A.Ty);
  std::vector<ArgLoc> Locs = computeArgLocs(CC, Types, 4);
  for (size_t I = 0; I < Args.size(); ++I) {
    const ArgLoc &L = Locs[I];
    const TypedValue &A = Args[I];
    if (!L.OnStack) {
      if (L.R.isInt()) {
        R[L.R.Num] = uint32_t(A.Bits);
      } else if (A.Ty == Type::D) {
        FPR[L.R.Num] = uint32_t(A.Bits);
        FPR[L.R.Num + 1] = uint32_t(A.Bits >> 32);
      } else {
        FPR[L.R.Num] = uint32_t(A.Bits);
      }
      continue;
    }
    SimAddr Slot = SimAddr(R[SP]) + uint32_t(L.StackOff);
    Mem.write<uint32_t>(Slot, uint32_t(A.Bits));
    if (A.Ty == Type::D)
      Mem.write<uint32_t>(Slot + 4, uint32_t(A.Bits >> 32));
  }

  PC = Entry;
  NPC = Entry + 4;
  while (PC != StopAddr) {
    if (Stats.Instrs >= InstrLimit)
      fatalKind(CgErrKind::SimFault,
          "sparc sim: instruction limit exceeded; runaway code?");
    VCODE_PF_SAMPLE_VPC(++PfClock, PC);
    step();
  }

  TypedValue Res;
  Res.Ty = RetTy;
  if (RetTy == Type::D)
    Res.Bits =
        uint64_t(FPR[CC.FpRet.Num]) | (uint64_t(FPR[CC.FpRet.Num + 1]) << 32);
  else if (RetTy == Type::F)
    Res.Bits = FPR[CC.FpRet.Num];
  else if (isSignedType(RetTy))
    Res.Bits = uint64_t(int64_t(int32_t(R[CC.IntRet.Num])));
  else
    Res.Bits = R[CC.IntRet.Num];
  finishRun(Stats);
  return Res;
}
