//===- sim/AlphaSim.cpp - Alpha (21064-class) simulator ----------------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "sim/AlphaSim.h"
#include "alpha/AlphaEncoding.h"
#include "alpha/AlphaTarget.h"
#include "profile/Profiler.h"
#include "support/BitUtils.h"
#include <cmath>
#include <cstring>

using namespace vcode;
using namespace vcode::sim;
using namespace vcode::alpha;

AlphaSim::AlphaSim(Memory &M, MachineConfig C) : Mem(M), Cfg(C) {
  ICache.configure(Cfg.ICacheBytes, Cfg.LineBytes);
  DCache.configure(Cfg.DCacheBytes, Cfg.LineBytes);
}

const CallConv &AlphaSim::defaultConv() const {
  return alphaTargetInfo().DefaultCC;
}

void AlphaSim::flushCaches() {
  ICache.flush();
  DCache.flush();
}

void AlphaSim::warmData(SimAddr A, size_t Len) { DCache.warm(A, Len); }

uint32_t AlphaSim::fetch(SimAddr A) {
  if (Cfg.ModelCaches && !ICache.access(A)) {
    Stats.Cycles += Cfg.MissPenalty;
    ++Stats.ICacheMisses;
  }
  return Mem.read<uint32_t>(A);
}

uint64_t AlphaSim::loadMem(SimAddr A, unsigned Bytes) {
  if (Cfg.ModelCaches && !DCache.access(A)) {
    Stats.Cycles += Cfg.MissPenalty;
    ++Stats.DCacheMisses;
  }
  if (A & (Bytes - 1))
    fatalKind(CgErrKind::SimFault,
        "alpha sim: unaligned %u-byte load at 0x%llx", Bytes,
          (unsigned long long)A);
  if (Bytes == 4)
    return Mem.read<uint32_t>(A);
  return Mem.read<uint64_t>(A);
}

void AlphaSim::storeMem(SimAddr A, unsigned Bytes, uint64_t V) {
  if (Cfg.ModelCaches && !DCache.access(A)) {
    Stats.Cycles += Cfg.MissPenalty;
    ++Stats.DCacheMisses;
  }
  if (A & (Bytes - 1))
    fatalKind(CgErrKind::SimFault,
        "alpha sim: unaligned %u-byte store at 0x%llx", Bytes,
          (unsigned long long)A);
  if (Bytes == 4)
    Mem.write<uint32_t>(A, uint32_t(V));
  else
    Mem.write<uint64_t>(A, V);
}

double AlphaSim::getT(unsigned N) const {
  double V;
  std::memcpy(&V, &F[N], 8);
  return V;
}

void AlphaSim::setT(unsigned N, double V) {
  if (N == 31)
    return;
  std::memcpy(&F[N], &V, 8);
}

void AlphaSim::step() {
  SimAddr InstrPC = PC;
  uint32_t I = fetch(InstrPC);
  PC += 4;
  ++Stats.Instrs;
  ++Stats.Cycles;

  unsigned Op = I >> 26;
  unsigned Ra = (I >> 21) & 31;
  unsigned Rb = (I >> 16) & 31;
  int32_t Disp16 = signExtend32<16>(I & 0xffff);
  auto W = [this](unsigned N, uint64_t V) {
    if (N != 31)
      R[N] = V;
  };
  auto BranchTo = [&](int32_t Disp21) {
    PC = InstrPC + 4 + (SimAddr(int64_t(Disp21)) << 2);
  };
  int32_t Disp21 = signExtend32<21>(I & 0x1fffff);

  switch (Op) {
  case 0x08: // lda
    W(Ra, R[Rb] + uint64_t(int64_t(Disp16)));
    return;
  case 0x09: // ldah
    W(Ra, R[Rb] + (uint64_t(int64_t(Disp16)) << 16));
    return;
  case 0x0b: // ldq_u
    W(Ra, loadMem((R[Rb] + uint64_t(int64_t(Disp16))) & ~SimAddr(7), 8));
    return;
  case 0x0f: // stq_u
    storeMem((R[Rb] + uint64_t(int64_t(Disp16))) & ~SimAddr(7), 8, R[Ra]);
    return;
  case 0x28: // ldl
    W(Ra, uint64_t(int64_t(int32_t(
              loadMem(R[Rb] + uint64_t(int64_t(Disp16)), 4)))));
    return;
  case 0x29: // ldq
    W(Ra, loadMem(R[Rb] + uint64_t(int64_t(Disp16)), 8));
    return;
  case 0x2c: // stl
    storeMem(R[Rb] + uint64_t(int64_t(Disp16)), 4, R[Ra]);
    return;
  case 0x2d: // stq
    storeMem(R[Rb] + uint64_t(int64_t(Disp16)), 8, R[Ra]);
    return;
  case 0x22: { // lds: S-format memory -> T-format register
    uint32_t Bits = uint32_t(loadMem(R[Rb] + uint64_t(int64_t(Disp16)), 4));
    float Fv;
    std::memcpy(&Fv, &Bits, 4);
    setT(Ra, double(Fv));
    return;
  }
  case 0x26: { // sts
    float Fv = float(getT(Ra));
    uint32_t Bits;
    std::memcpy(&Bits, &Fv, 4);
    storeMem(R[Rb] + uint64_t(int64_t(Disp16)), 4, Bits);
    return;
  }
  case 0x23: // ldt
    if (Ra != 31)
      F[Ra] = loadMem(R[Rb] + uint64_t(int64_t(Disp16)), 8);
    return;
  case 0x27: // stt
    storeMem(R[Rb] + uint64_t(int64_t(Disp16)), 8, F[Ra]);
    return;

  case 0x30: // br
  case 0x34: // bsr
    W(Ra, InstrPC + 4);
    BranchTo(Disp21);
    return;
  case 0x39:
    if (R[Ra] == 0)
      BranchTo(Disp21);
    return;
  case 0x3d:
    if (R[Ra] != 0)
      BranchTo(Disp21);
    return;
  case 0x3a:
    if (int64_t(R[Ra]) < 0)
      BranchTo(Disp21);
    return;
  case 0x3b:
    if (int64_t(R[Ra]) <= 0)
      BranchTo(Disp21);
    return;
  case 0x3f:
    if (int64_t(R[Ra]) > 0)
      BranchTo(Disp21);
    return;
  case 0x3e:
    if (int64_t(R[Ra]) >= 0)
      BranchTo(Disp21);
    return;
  case 0x31: // fbeq (true for +0.0/-0.0)
    if ((F[Ra] << 1) == 0)
      BranchTo(Disp21);
    return;
  case 0x35: // fbne
    if ((F[Ra] << 1) != 0)
      BranchTo(Disp21);
    return;

  case 0x1a: { // jmp/jsr/ret (read the target before linking: Ra may == Rb)
    SimAddr Target = R[Rb] & ~SimAddr(3);
    W(Ra, InstrPC + 4);
    PC = Target;
    return;
  }

  case 0x10:
  case 0x11:
  case 0x12:
  case 0x13: {
    unsigned Fn = (I >> 5) & 0x7f;
    unsigned Rc = I & 31;
    uint64_t A = R[Ra];
    uint64_t B = (I & (1u << 12)) ? uint64_t((I >> 13) & 0xff) : R[Rb];
    if (Op == 0x10) {
      switch (Fn) {
      case 0x00:
        W(Rc, uint64_t(int64_t(int32_t(uint32_t(A) + uint32_t(B)))));
        return;
      case 0x09:
        W(Rc, uint64_t(int64_t(int32_t(uint32_t(A) - uint32_t(B)))));
        return;
      case 0x20:
        W(Rc, A + B);
        return;
      case 0x29:
        W(Rc, A - B);
        return;
      case 0x2d:
        W(Rc, A == B ? 1 : 0);
        return;
      case 0x4d:
        W(Rc, int64_t(A) < int64_t(B) ? 1 : 0);
        return;
      case 0x6d:
        W(Rc, int64_t(A) <= int64_t(B) ? 1 : 0);
        return;
      case 0x1d:
        W(Rc, A < B ? 1 : 0);
        return;
      case 0x3d:
        W(Rc, A <= B ? 1 : 0);
        return;
      }
    } else if (Op == 0x11) {
      switch (Fn) {
      case 0x00:
        W(Rc, A & B);
        return;
      case 0x20:
        W(Rc, A | B);
        return;
      case 0x40:
        W(Rc, A ^ B);
        return;
      case 0x28:
        W(Rc, A | ~B);
        return;
      case 0x08: // bic
        W(Rc, A & ~B);
        return;
      }
    } else if (Op == 0x12) {
      unsigned Sh = unsigned(B & 63);
      unsigned ByteIdx = unsigned(B & 7);
      switch (Fn) {
      case 0x39:
        W(Rc, A << Sh);
        return;
      case 0x34:
        W(Rc, A >> Sh);
        return;
      case 0x3c:
        W(Rc, uint64_t(int64_t(A) >> Sh));
        return;
      case 0x06: // extbl
        W(Rc, (A >> (8 * ByteIdx)) & 0xff);
        return;
      case 0x16: // extwl
        W(Rc, (A >> (8 * ByteIdx)) & 0xffff);
        return;
      case 0x0b: // insbl
        W(Rc, (A & 0xff) << (8 * ByteIdx));
        return;
      case 0x1b: // inswl
        W(Rc, (A & 0xffff) << (8 * ByteIdx));
        return;
      case 0x02: // mskbl
        W(Rc, A & ~(uint64_t(0xff) << (8 * ByteIdx)));
        return;
      case 0x12: // mskwl
        W(Rc, A & ~(uint64_t(0xffff) << (8 * ByteIdx)));
        return;
      case 0x31: { // zapnot
        uint64_t Keep = 0;
        for (unsigned K = 0; K < 8; ++K)
          if (B & (1u << K))
            Keep |= uint64_t(0xff) << (8 * K);
        W(Rc, A & Keep);
        return;
      }
      case 0x30: { // zap
        uint64_t Kill = 0;
        for (unsigned K = 0; K < 8; ++K)
          if (B & (1u << K))
            Kill |= uint64_t(0xff) << (8 * K);
        W(Rc, A & ~Kill);
        return;
      }
      }
    } else { // 0x13
      switch (Fn) {
      case 0x00:
        W(Rc, uint64_t(int64_t(int32_t(uint32_t(A) * uint32_t(B)))));
        Stats.Cycles += Cfg.MulCycles;
        return;
      case 0x20:
        W(Rc, A * B);
        Stats.Cycles += Cfg.MulCycles;
        return;
      case 0x30: { // umulh
        __uint128_t P = __uint128_t(A) * __uint128_t(B);
        W(Rc, uint64_t(P >> 64));
        Stats.Cycles += Cfg.MulCycles;
        return;
      }
      }
    }
    fatalKind(CgErrKind::SimFault,
        "alpha sim: unknown operate op=0x%x fn=0x%x at 0x%llx", Op, Fn,
          (unsigned long long)InstrPC);
  }

  case 0x14: { // sqrts/sqrtt
    unsigned Fn = (I >> 5) & 0x7ff;
    unsigned Fc = I & 31;
    if (Fn == 0x08b) {
      setT(Fc, double(float(std::sqrt(getT(Rb)))));
      Stats.Cycles += Cfg.FpDivCycles - 1;
      return;
    }
    if (Fn == 0x0ab) {
      setT(Fc, std::sqrt(getT(Rb)));
      Stats.Cycles += Cfg.FpDivCycles - 1;
      return;
    }
    fatalKind(CgErrKind::SimFault,
        "alpha sim: unknown 0x14 fn 0x%x", Fn);
  }

  case 0x16: { // IEEE FP operate
    unsigned Fn = (I >> 5) & 0x7ff;
    unsigned Fc = I & 31;
    double A = getT(Ra), B = getT(Rb);
    switch (Fn) {
    case ADDS:
      setT(Fc, double(float(A) + float(B)));
      Stats.Cycles += Cfg.FpAddCycles - 1;
      return;
    case ADDT:
      setT(Fc, A + B);
      Stats.Cycles += Cfg.FpAddCycles - 1;
      return;
    case SUBS:
      setT(Fc, double(float(A) - float(B)));
      Stats.Cycles += Cfg.FpAddCycles - 1;
      return;
    case SUBT:
      setT(Fc, A - B);
      Stats.Cycles += Cfg.FpAddCycles - 1;
      return;
    case MULS:
      setT(Fc, double(float(A) * float(B)));
      Stats.Cycles += Cfg.FpMulCycles - 1;
      return;
    case MULT:
      setT(Fc, A * B);
      Stats.Cycles += Cfg.FpMulCycles - 1;
      return;
    case DIVS:
      setT(Fc, double(float(A) / float(B)));
      Stats.Cycles += Cfg.FpDivCycles - 1;
      return;
    case DIVT:
      setT(Fc, A / B);
      Stats.Cycles += Cfg.FpDivCycles - 1;
      return;
    case CMPTEQ:
      setT(Fc, A == B ? 2.0 : 0.0);
      return;
    case CMPTLT:
      setT(Fc, A < B ? 2.0 : 0.0);
      return;
    case CMPTLE:
      setT(Fc, A <= B ? 2.0 : 0.0);
      return;
    case CVTQS:
      setT(Fc, double(float(int64_t(F[Rb]))));
      return;
    case CVTQT:
      setT(Fc, double(int64_t(F[Rb])));
      return;
    case CVTTQC:
      if (Fc != 31)
        F[Fc] = uint64_t(int64_t(B));
      return;
    case CVTTS:
      setT(Fc, double(float(B)));
      return;
    }
    fatalKind(CgErrKind::SimFault,
        "alpha sim: unknown FP fn 0x%x at 0x%llx", Fn,
          (unsigned long long)InstrPC);
  }

  case 0x17: { // cpys/cpysn
    unsigned Fn = (I >> 5) & 0x7ff;
    unsigned Fc = I & 31;
    constexpr uint64_t SignBit = uint64_t(1) << 63;
    uint64_t SignA = F[Ra] & SignBit;
    if (Fn == 0x020) {
      if (Fc != 31)
        F[Fc] = SignA | (F[Rb] & ~SignBit);
      return;
    }
    if (Fn == 0x021) {
      if (Fc != 31)
        F[Fc] = (SignA ^ SignBit) | (F[Rb] & ~SignBit);
      return;
    }
    fatalKind(CgErrKind::SimFault,
        "alpha sim: unknown 0x17 fn 0x%x", Fn);
  }
  }
  fatalKind(CgErrKind::SimFault,
      "alpha sim: unknown opcode 0x%x at 0x%llx", Op,
        (unsigned long long)InstrPC);
}

TypedValue AlphaSim::callWithConv(const CallConv &CC, SimAddr Entry,
                                  const std::vector<TypedValue> &Args,
                                  Type RetTy) {
  Stats = RunStats();
  std::memset(R, 0, sizeof(R));
  std::memset(F, 0, sizeof(F));

  R[SP] = initialSp(Mem);
  unsigned Link = CC.LinkReg.isValid() ? unsigned(CC.LinkReg.Num) : unsigned(RA);
  R[Link] = StopAddr;

  std::vector<Type> Types;
  Types.reserve(Args.size());
  for (const TypedValue &A : Args)
    Types.push_back(A.Ty);
  std::vector<ArgLoc> Locs = computeArgLocs(CC, Types, 8);
  for (size_t I = 0; I < Args.size(); ++I) {
    const ArgLoc &L = Locs[I];
    const TypedValue &A = Args[I];
    uint64_t Bits = A.Bits;
    // Integer values travel in canonical (sign-extended) longword form.
    if (A.Ty == Type::I || A.Ty == Type::U)
      Bits = uint64_t(int64_t(int32_t(uint32_t(Bits))));
    if (!L.OnStack) {
      if (L.R.isInt()) {
        R[L.R.Num] = Bits;
      } else if (A.Ty == Type::F) {
        // Register F values are held in T format.
        float Fv = A.asFloat();
        double Dv = double(Fv);
        std::memcpy(&F[L.R.Num], &Dv, 8);
      } else {
        F[L.R.Num] = A.Bits;
      }
      continue;
    }
    SimAddr Slot = R[SP] + uint32_t(L.StackOff);
    if (A.Ty == Type::F)
      Mem.write<uint32_t>(Slot, uint32_t(A.Bits)); // read back with lds
    else if (A.Ty == Type::I || A.Ty == Type::U)
      Mem.write<uint32_t>(Slot, uint32_t(A.Bits)); // read back with ldl
    else
      Mem.write<uint64_t>(Slot, Bits);
  }

  PC = Entry;
  while (PC != StopAddr) {
    if (Stats.Instrs >= InstrLimit)
      fatalKind(CgErrKind::SimFault,
          "alpha sim: instruction limit exceeded; runaway code?");
    VCODE_PF_SAMPLE_VPC(++PfClock, PC);
    step();
  }

  TypedValue Res;
  Res.Ty = RetTy;
  if (RetTy == Type::D) {
    Res.Bits = F[CC.FpRet.Num];
  } else if (RetTy == Type::F) {
    float Fv = float(getT(CC.FpRet.Num));
    uint32_t B;
    std::memcpy(&B, &Fv, 4);
    Res.Bits = B;
  } else if (RetTy == Type::I || RetTy == Type::C || RetTy == Type::S) {
    Res.Bits = uint64_t(int64_t(int32_t(uint32_t(R[CC.IntRet.Num]))));
  } else if (RetTy == Type::U || RetTy == Type::UC || RetTy == Type::US) {
    Res.Bits = uint32_t(R[CC.IntRet.Num]);
  } else {
    Res.Bits = R[CC.IntRet.Num];
  }
  finishRun(Stats);
  return Res;
}
