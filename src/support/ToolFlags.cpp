//===- support/ToolFlags.cpp - Shared CLI flags for tools/examples ---------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "support/ToolFlags.h"
#include "profile/JitDump.h"
#include "profile/Profiler.h"
#include "support/Error.h"
#include "support/Telemetry.h"
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace vcode;

namespace {

/// Strict unsigned decimal parse. strtoull alone is not enough: it accepts
/// leading whitespace and a leading '-' (wrapping to a huge count) and
/// saturates silently on overflow (ERANGE), all of which used to turn a
/// typo into a quietly wrong configuration.
bool parseCount(const char *S, uint64_t &Out) {
  if (!S || !std::isdigit((unsigned char)*S))
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(S, &End, 10);
  if (!End || *End || End == S || errno == ERANGE)
    return false;
  Out = V;
  return true;
}

/// Strict non-negative real parse for --duration/--zipf, in the spirit of
/// parseCount: no leading whitespace or sign, full-string consumption,
/// finite, no range overflow.
bool parseReal(const char *S, double &Out) {
  if (!S || !*S || std::isspace((unsigned char)*S) || *S == '-' || *S == '+')
    return false;
  errno = 0;
  char *End = nullptr;
  double V = std::strtod(S, &End);
  if (!End || *End || End == S || errno == ERANGE || !(V >= 0) ||
      V > 1e18) // finite by construction of the bounds check
    return false;
  Out = V;
  return true;
}

/// Backend names --target accepts.
bool validTarget(const char *S) {
  return !std::strcmp(S, "mips") || !std::strcmp(S, "sparc") ||
         !std::strcmp(S, "alpha") || !std::strcmp(S, "host") ||
         !std::strcmp(S, "dbt");
}

/// The profiling flags are accepted in every build so scripts don't need
/// to know the configuration, but in an OFF build they can't do anything;
/// say so once instead of silently producing no output.
void warnProfilingOff(const char *Flag) {
  if (telemetry::compiledIn())
    return;
  static bool Warned = false;
  if (!Warned) {
    Warned = true;
    std::fprintf(stderr,
                 "vcode: %s ignored: built with -DVCODE_TELEMETRY=OFF\n",
                 Flag);
  }
}

} // namespace

int tool::handleArgs(int Argc, char **Argv, ToolOptions &Opts) {
  int Out = 1;
  for (int Idx = 1; Idx < Argc; ++Idx) {
    const char *A = Argv[Idx] ? Argv[Idx] : "";
    if (std::strncmp(A, "--tier=", 7) == 0) {
      if (!parseTier(A + 7, Opts.GenTier))
        fatal("bad --tier value '%s' (expected 0, 1, tier0 or tier1)", A + 7);
      Opts.TierGiven = true;
      continue;
    }
    if (std::strncmp(A, "--hot-threshold=", 16) == 0) {
      if (!parseCount(A + 16, Opts.HotThreshold))
        fatal("bad --hot-threshold value '%s' (expected a non-negative "
              "64-bit count)",
              A + 16);
      Opts.HotGiven = true;
      continue;
    }
    if (std::strncmp(A, "--target=", 9) == 0) {
      if (!validTarget(A + 9))
        fatal("bad --target value '%s' (expected mips, sparc, alpha, host "
              "or dbt)",
              A + 9);
      Opts.TargetName = A + 9;
      Opts.TargetGiven = true;
      continue;
    }
    if (std::strncmp(A, "--filters=", 10) == 0) {
      if (!parseCount(A + 10, Opts.Filters) || Opts.Filters == 0)
        fatal("bad --filters value '%s' (expected a positive 64-bit count)",
              A + 10);
      Opts.FiltersGiven = true;
      continue;
    }
    if (std::strncmp(A, "--threads=", 10) == 0) {
      if (!parseCount(A + 10, Opts.Threads) || Opts.Threads == 0)
        fatal("bad --threads value '%s' (expected a positive 64-bit count)",
              A + 10);
      Opts.ThreadsGiven = true;
      continue;
    }
    if (std::strncmp(A, "--churn=", 8) == 0) {
      if (!parseCount(A + 8, Opts.Churn))
        fatal("bad --churn value '%s' (expected a non-negative 64-bit "
              "count of churn threads)",
              A + 8);
      Opts.ChurnGiven = true;
      continue;
    }
    if (std::strncmp(A, "--duration=", 11) == 0) {
      if (!parseReal(A + 11, Opts.Duration) || Opts.Duration <= 0)
        fatal("bad --duration value '%s' (expected a positive number of "
              "seconds)",
              A + 11);
      Opts.DurationGiven = true;
      continue;
    }
    if (std::strncmp(A, "--zipf=", 7) == 0) {
      if (!parseReal(A + 7, Opts.Zipf))
        fatal("bad --zipf value '%s' (expected a finite non-negative skew "
              "exponent)",
              A + 7);
      Opts.ZipfGiven = true;
      continue;
    }
    if (std::strcmp(A, "--profile-report") == 0) {
      Opts.ProfileReportGiven = true;
      continue;
    }
    if (std::strncmp(A, "--dump-code=", 12) == 0) {
      if (!A[12])
        fatal("bad --dump-code value '' (expected a region name or 'all')");
      Opts.DumpCode = A + 12;
      Opts.DumpCodeGiven = true;
      continue;
    }
    if (std::strcmp(A, "--perf-map") == 0) {
      Opts.PerfMapGiven = true;
      continue;
    }
    if (std::strcmp(A, "--jitdump") == 0 ||
        std::strncmp(A, "--jitdump=", 10) == 0) {
      Opts.JitDumpGiven = true;
      const char *Path = A[9] == '=' ? A + 10 : nullptr;
      if (Path && !*Path)
        fatal("bad --jitdump value '' (expected a file path)");
      if (!profile::enableJitDump(Path) && telemetry::compiledIn() && Path)
        fatal("cannot open jitdump file '%s'", Path);
      continue;
    }
    Argv[Out++] = Argv[Idx];
  }
  if (Out < Argc)
    Argv[Out] = nullptr;

  if (!Opts.ProfileReportGiven)
    if (const char *E = std::getenv("VCODE_PROFILE_REPORT"))
      if (*E && std::strcmp(E, "0") != 0)
        Opts.ProfileReportGiven = true;

  if (Opts.ProfileReportGiven) {
    warnProfilingOff("--profile-report");
    profile::requestProfileReport();
  }
  if (Opts.DumpCodeGiven) {
    warnProfilingOff("--dump-code");
    profile::requestDumpCode(Opts.DumpCode);
  }
  if (Opts.PerfMapGiven && !profile::enablePerfMap()) {
    warnProfilingOff("--perf-map");
    if (telemetry::compiledIn())
      std::fprintf(stderr, "vcode: --perf-map: cannot open the perf map\n");
  }
  if (Opts.JitDumpGiven) {
    warnProfilingOff("--jitdump");
    if (telemetry::compiledIn() && profile::jitDumpPath().empty())
      std::fprintf(stderr, "vcode: --jitdump unavailable on this OS\n");
  }

  return telemetry::handleArgs(Out, Argv);
}
