//===- support/ToolFlags.cpp - Shared CLI flags for tools/examples ---------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "support/ToolFlags.h"
#include "support/Error.h"
#include "support/Telemetry.h"
#include <cstdlib>
#include <cstring>

using namespace vcode;

int tool::handleArgs(int Argc, char **Argv, ToolOptions &Opts) {
  int Out = 1;
  for (int Idx = 1; Idx < Argc; ++Idx) {
    const char *A = Argv[Idx] ? Argv[Idx] : "";
    if (std::strncmp(A, "--tier=", 7) == 0) {
      if (!parseTier(A + 7, Opts.GenTier))
        fatal("bad --tier value '%s' (expected 0, 1, tier0 or tier1)", A + 7);
      Opts.TierGiven = true;
      continue;
    }
    if (std::strncmp(A, "--hot-threshold=", 16) == 0) {
      char *End = nullptr;
      unsigned long long V = std::strtoull(A + 16, &End, 10);
      if (!End || *End || End == A + 16)
        fatal("bad --hot-threshold value '%s' (expected a count)", A + 16);
      Opts.HotThreshold = V;
      Opts.HotGiven = true;
      continue;
    }
    Argv[Out++] = Argv[Idx];
  }
  if (Out < Argc)
    Argv[Out] = nullptr;
  return telemetry::handleArgs(Out, Argv);
}
