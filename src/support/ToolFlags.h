//===- support/ToolFlags.h - Shared CLI flags for tools/examples -*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One front door for the command-line plumbing every example, tool and
/// bench repeats: the telemetry flags (--telemetry-report,
/// --trace-json=<file>; see support/Telemetry.h) plus the tiered-codegen
/// knobs:
///
///   --tier=<0|1>           generation tier for tier-aware clients
///                          (default: $VCODE_TIER, else tier 0)
///   --hot-threshold=<N>    promote a cache-shared function to Tier-1
///                          after N executions (0 disables; clients with
///                          no shared cache ignore it)
///   --target=<name>        backend for tools/benches that honor it:
///                          mips, sparc, alpha, host (native x86-64), or
///                          dbt (MIPS code run through the binary
///                          translator instead of the interpreter)
///
/// plus the service-workload knobs (bench_dpf_service; other tools ignore
/// them unless they opt in):
///
///   --filters=<N>          total filters under management
///   --threads=<N>          dispatch threads
///   --churn=<N>            install/retire worker threads
///   --duration=<seconds>   length of the churn phase
///   --zipf=<s>             traffic skew exponent (0 = uniform)
///
/// plus the generated-code introspection flags (src/profile/; no-ops with
/// a one-line stderr note when telemetry is compiled out):
///
///   --profile-report       start the samplers; print the profile report
///                          (sample attribution + CodeMap heat) to stderr
///                          at exit ($VCODE_PROFILE_REPORT as default)
///   --dump-code=<name|all> print annotated disassembly of the matching
///                          published regions to stdout at exit
///   --perf-map             write /tmp/perf-<pid>.map for perf symbolization
///   --jitdump[=<path>]     write a perf jitdump file (default
///                          jit-<pid>.dump in the working directory)
///
/// Integer flag values are validated strictly: malformed text, a negative
/// count, or a value past the 64-bit range is a fatal diagnostic with a
/// nonzero exit, never a silent fallback. The two real-valued flags
/// (--duration, --zipf) are equally strict: full-string parse, finite,
/// non-negative.
///
/// handleArgs() strips every recognized flag from argv (compacting and
/// null-terminating it, like telemetry::handleArgs) so a tool's own
/// argument parsing only ever sees its own flags.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_SUPPORT_TOOLFLAGS_H
#define VCODE_SUPPORT_TOOLFLAGS_H

#include "core/Tier.h"
#include <cstdint>

namespace vcode {
namespace tool {

/// Results of parsing the shared flags.
struct ToolOptions {
  Tier GenTier = defaultTier(); ///< --tier, else the process default
  uint64_t HotThreshold = 0;    ///< --hot-threshold, else 0 (disabled)
  const char *TargetName = nullptr; ///< --target, else null (tool default)
  uint64_t Filters = 0;         ///< --filters, else 0 (tool default)
  uint64_t Threads = 0;         ///< --threads, else 0 (tool default)
  uint64_t Churn = 0;           ///< --churn, else 0 (tool default)
  double Duration = 0;          ///< --duration seconds, else 0 (default)
  double Zipf = 0;              ///< --zipf exponent, else 0 (default)
  const char *DumpCode = nullptr; ///< --dump-code pattern, else null
  bool TierGiven = false;       ///< --tier appeared on the command line
  bool HotGiven = false;        ///< --hot-threshold appeared
  bool TargetGiven = false;     ///< --target appeared
  bool FiltersGiven = false;    ///< --filters appeared
  bool ThreadsGiven = false;    ///< --threads appeared
  bool ChurnGiven = false;      ///< --churn appeared
  bool DurationGiven = false;   ///< --duration appeared
  bool ZipfGiven = false;       ///< --zipf appeared
  bool ProfileReportGiven = false; ///< --profile-report appeared (or env)
  bool DumpCodeGiven = false;   ///< --dump-code appeared
  bool PerfMapGiven = false;    ///< --perf-map appeared
  bool JitDumpGiven = false;    ///< --jitdump appeared
};

/// Scans argv for the shared flags above, fills \p Opts, delegates the
/// telemetry flags to telemetry::handleArgs, and returns the new argc.
/// Unparseable values (e.g. --tier=2) are fatal with a usage message.
int handleArgs(int Argc, char **Argv, ToolOptions &Opts);

} // namespace tool
} // namespace vcode

#endif // VCODE_SUPPORT_TOOLFLAGS_H
