//===- support/Error.h - Error reporting and recovery -----------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, "VCODE: a Retargetable,
// Extensible, Very Fast Dynamic Code Generation System" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Error reporting. The original VCODE policy is that programmer errors
/// (bad operands, unsupported type/op combinations, buffer overflow of
/// client-provided code memory) abort with a diagnostic. That remains the
/// default here, but every error is now classified (CgErrKind) and routed
/// through a pluggable per-thread ErrorHandler, so a long-running service
/// can opt into recovery instead: VCode::setErrorRecovery installs a
/// handler that records the error and unwinds (via CgAbort) rather than
/// killing the process. fatal() stays [[noreturn]] either way — a handler
/// may throw, but may never return — so emission code needs no error
/// plumbing and the hot path (CodeBuffer::put) stays a single compare.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_SUPPORT_ERROR_H
#define VCODE_SUPPORT_ERROR_H

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace vcode {

/// Classification of every error the library can raise. Drives retry
/// policy: BufferOverflow is the only kind a grown code region can cure.
enum class CgErrKind : uint8_t {
  None = 0,       ///< no error (CgError default state)
  BufferOverflow, ///< code region too small — retryable with a larger one
  ArenaExhausted, ///< sim::Memory allocation failure
  BadOperand,     ///< operand/type misuse (immediate where reg required, ...)
  OutOfRange,     ///< encodable-range overflow (frame size, displacement)
  BadPatch,       ///< backpatch index outside the emitted range
  BadRegion,      ///< code region rejected at bind time (null/misaligned)
  UnboundLabel,   ///< label referenced but never bound
  RegisterPressure, ///< register allocator ran out
  ApiMisuse,      ///< protocol violation (v_end without v_lambda, ...)
  SimFault,       ///< simulated machine fault (wild access, runaway code)
  Internal,       ///< library invariant broken (unreachable reached)
};

/// Human-readable kind name, for diagnostics and test assertions.
inline const char *cgErrKindName(CgErrKind K) {
  switch (K) {
  case CgErrKind::None:             return "none";
  case CgErrKind::BufferOverflow:   return "buffer-overflow";
  case CgErrKind::ArenaExhausted:   return "arena-exhausted";
  case CgErrKind::BadOperand:       return "bad-operand";
  case CgErrKind::OutOfRange:       return "out-of-range";
  case CgErrKind::BadPatch:         return "bad-patch";
  case CgErrKind::BadRegion:        return "bad-region";
  case CgErrKind::UnboundLabel:     return "unbound-label";
  case CgErrKind::RegisterPressure: return "register-pressure";
  case CgErrKind::ApiMisuse:        return "api-misuse";
  case CgErrKind::SimFault:         return "sim-fault";
  case CgErrKind::Internal:         return "internal";
  }
  return "unknown";
}

/// A structured code-generation error: what went wrong, where in the
/// function (when known), and the formatted diagnostic text.
struct CgError {
  static constexpr uint32_t NoWordIndex = ~uint32_t(0);

  CgErrKind Kind = CgErrKind::None;
  /// Function-relative word index of the emission cursor when the error
  /// was raised, or NoWordIndex when no function was in progress.
  uint32_t WordIndex = NoWordIndex;
  /// Formatted diagnostic (truncated to fit; always NUL-terminated).
  char Detail[232] = {};

  explicit operator bool() const { return Kind != CgErrKind::None; }
};

/// Receives every error raised through fatal()/unreachable(). handle() must
/// not return: it either terminates the process (the default behaviour) or
/// throws to unwind out of the emission sequence (recovery mode).
class ErrorHandler {
public:
  virtual ~ErrorHandler() = default;
  [[noreturn]] virtual void handle(const CgError &E) = 0;
};

namespace detail {
/// The active handler for this thread; null means print-and-abort.
inline thread_local ErrorHandler *CurrentHandler = nullptr;
} // namespace detail

/// Installs \p H as this thread's error handler and returns the previous
/// one (so handlers nest LIFO). Pass nullptr to restore the abort default.
inline ErrorHandler *setErrorHandler(ErrorHandler *H) {
  ErrorHandler *Prev = detail::CurrentHandler;
  detail::CurrentHandler = H;
  return Prev;
}

/// This thread's active handler, or null if the abort default is in force.
inline ErrorHandler *errorHandler() { return detail::CurrentHandler; }

/// RAII installation of an ErrorHandler; restores the previous handler on
/// scope exit.
class ErrorHandlerScope {
public:
  explicit ErrorHandlerScope(ErrorHandler &H) : Prev(setErrorHandler(&H)) {}
  ~ErrorHandlerScope() { setErrorHandler(Prev); }
  ErrorHandlerScope(const ErrorHandlerScope &) = delete;
  ErrorHandlerScope &operator=(const ErrorHandlerScope &) = delete;

private:
  ErrorHandler *Prev;
};

/// Exception thrown by recovery-mode handlers to unwind out of an emission
/// sequence. Carries the structured error; VCode records it before
/// throwing, so most clients never need to inspect the exception itself.
class CgAbort {
public:
  explicit CgAbort(const CgError &E) : Err(E) {}
  const CgError &error() const { return Err; }

private:
  CgError Err;
};

/// Routes a fully-formed error to the active handler, defaulting to the
/// paper's print-and-abort policy. Never returns.
[[noreturn]] inline void dispatchError(const CgError &E) {
  if (ErrorHandler *H = detail::CurrentHandler)
    H->handle(E); // [[noreturn]]
  std::fprintf(stderr, "%s%s\n",
               E.Kind == CgErrKind::Internal ? "vcode internal error: "
                                             : "vcode fatal error: ",
               E.Detail);
  std::abort();
}

namespace detail {
[[noreturn]] inline void fatalV(CgErrKind K, uint32_t WordIdx, const char *Fmt,
                                va_list Ap) {
  CgError E;
  E.Kind = K;
  E.WordIndex = WordIdx;
  std::vsnprintf(E.Detail, sizeof(E.Detail), Fmt, Ap);
  va_end(Ap);
  dispatchError(E);
}
} // namespace detail

/// Reports a printf-style error of kind \p K. Aborts by default; a
/// recovery handler throws CgAbort instead. Never returns.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
[[noreturn]] inline void
fatalKind(CgErrKind K, const char *Fmt, ...) {
  va_list Ap;
  va_start(Ap, Fmt);
  detail::fatalV(K, CgError::NoWordIndex, Fmt, Ap);
}

/// fatalKind plus the function-relative word index at which the error was
/// detected (CodeBuffer::wordIndex()). Never returns.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 3, 4)))
#endif
[[noreturn]] inline void
fatalAt(CgErrKind K, uint32_t WordIdx, const char *Fmt, ...) {
  va_list Ap;
  va_start(Ap, Fmt);
  detail::fatalV(K, WordIdx, Fmt, Ap);
}

/// Legacy unclassified fatal: reports as ApiMisuse. Never returns.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 1, 2)))
#endif
[[noreturn]] inline void
fatal(const char *Fmt, ...) {
  va_list Ap;
  va_start(Ap, Fmt);
  detail::fatalV(CgErrKind::ApiMisuse, CgError::NoWordIndex, Fmt, Ap);
}

/// Marks a point in code that must never be reached if library invariants
/// hold. Mirrors llvm_unreachable. Never returns.
[[noreturn]] inline void unreachable(const char *Msg) {
  fatalKind(CgErrKind::Internal, "%s", Msg);
}

} // namespace vcode

#endif // VCODE_SUPPORT_ERROR_H
