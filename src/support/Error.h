//===- support/Error.h - Fatal error reporting ------------------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, "VCODE: a Retargetable,
// Extensible, Very Fast Dynamic Code Generation System" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal error reporting and unreachable markers. The library follows the
/// original VCODE policy: programmer errors (bad operands, unsupported
/// type/op combinations, buffer overflow of client-provided code memory)
/// abort with a diagnostic rather than raising exceptions.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_SUPPORT_ERROR_H
#define VCODE_SUPPORT_ERROR_H

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace vcode {

/// Prints a printf-style message to stderr and aborts.
[[noreturn]] inline void fatal(const char *Fmt, ...) {
  va_list Ap;
  va_start(Ap, Fmt);
  std::fprintf(stderr, "vcode fatal error: ");
  std::vfprintf(stderr, Fmt, Ap);
  std::fprintf(stderr, "\n");
  va_end(Ap);
  std::abort();
}

/// Marks a point in code that must never be reached if library invariants
/// hold. Mirrors llvm_unreachable.
[[noreturn]] inline void unreachable(const char *Msg) {
  std::fprintf(stderr, "vcode internal error: %s\n", Msg);
  std::abort();
}

} // namespace vcode

#endif // VCODE_SUPPORT_ERROR_H
