//===- support/Telemetry.cpp - Telemetry registry and exporters -----------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"
#include "profile/CodeMap.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace vcode {
namespace telemetry {

unsigned detail::nextThreadId() {
  static std::atomic<unsigned> Next{1};
  return Next.fetch_add(1, std::memory_order_relaxed);
}

namespace {

double calibrateTicksPerNs() {
#if defined(__x86_64__) || defined(__i386__)
  // Measure the TSC against steady_clock over a ~2ms window. Runs once,
  // lazily, the first time anything converts ticks (reports/exports only).
  using Clock = std::chrono::steady_clock;
  Clock::time_point T0 = Clock::now();
  uint64_t C0 = now();
  while (Clock::now() - T0 < std::chrono::milliseconds(2)) {
  }
  uint64_t C1 = now();
  Clock::time_point T1 = Clock::now();
  double Ns = std::chrono::duration<double, std::nano>(T1 - T0).count();
  double R = double(C1 - C0) / Ns;
  return R > 0 ? R : 1.0;
#else
  // now() returns steady_clock ticks directly.
  using P = std::chrono::steady_clock::period;
  return double(P::den) / (1e9 * double(P::num));
#endif
}

} // namespace

double ticksToNs(uint64_t Ticks) {
  static const double TicksPerNs = calibrateTicksPerNs();
  return double(Ticks) / TicksPerNs;
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

namespace {

struct Event {
  const char *Name;
  unsigned Tid;
  uint64_t Start;
  uint64_t End;
};

constexpr uint64_t kRingSize = 1u << 16; // 64K events, power of two

} // namespace

struct Registry::Impl {
  mutable std::mutex M; ///< guards the maps below (registration is cold)
  // std::map: node-based, so element addresses and key c_str() pointers
  // stay stable for the life of the process (Timer::name() relies on it).
  std::map<std::string, Counter> Counters;
  std::map<std::string, Timer> Timers;
  std::map<std::string, Histogram> Histograms;
  std::map<std::string, std::vector<Counter *>> Attached;
  std::map<std::string, uint64_t> Retired;
  std::map<std::string, std::vector<Histogram *>> AttachedHists;
  std::map<std::string, Histogram::Snapshot> RetiredHists;

  // Event ring: single atomic cursor, slots overwritten on wrap. Writes to
  // a slot are unsynchronized by design (tracing is an opt-in debugging
  // mode); with 64K slots, concurrent writers collide only after the ring
  // wraps within one reader window. The 2MB backing store is allocated
  // lazily on the first event, so processes that never trace (and the
  // first cold code-generation run, which a perf test may be timing)
  // never touch it.
  std::atomic<Event *> Ring{nullptr};
  std::vector<Event> RingStorage; ///< guarded by M until published to Ring
  std::atomic<uint64_t> Head{0};

  Event *ensureRing() {
    std::lock_guard<std::mutex> L(M);
    if (RingStorage.empty())
      RingStorage.resize(size_t(kRingSize));
    Event *P = RingStorage.data();
    Ring.store(P, std::memory_order_release);
    return P;
  }
};

Registry::Registry() : I(new Impl) {}

Counter::Counter(const char *Name) : AttachedName(Name) {
  registry().attach(Name, this);
}

Counter::~Counter() {
  if (AttachedName)
    registry().detach(AttachedName, this);
}

Histogram::Histogram(const char *Name) : AttachedName(Name) {
  registry().attach(Name, this);
}

Histogram::~Histogram() {
  if (AttachedName)
    registry().detach(AttachedName, this);
}

double Histogram::Snapshot::percentile(double P) const {
  if (!Count)
    return 0;
  if (P < 0)
    P = 0;
  if (P > 100)
    P = 100;
  // Rank of the percentile sample, 1-based (p0 -> first sample).
  double Rank = P / 100.0 * double(Count);
  if (Rank < 1)
    Rank = 1;
  uint64_t Cum = 0;
  for (unsigned I = 0; I < kBuckets; ++I) {
    uint64_t N = Counts[I];
    if (!N)
      continue;
    if (double(Cum + N) >= Rank) {
      // Interpolate within [bucketLo, bucketHi) by the rank's position
      // among this bucket's samples, then clamp to the recorded max (the
      // top bucket's nominal width can far exceed any real sample).
      double Lo = double(bucketLo(I));
      double Hi = double(bucketHi(I));
      double Frac = (Rank - double(Cum)) / double(N);
      double V = Lo + (Hi - Lo) * Frac;
      return V > double(Max) ? double(Max) : V;
    }
    Cum += N;
  }
  return double(Max);
}

Registry &registry() {
  // Leaked singleton: atexit report/trace handlers may run after static
  // destructors, so the registry must never be destroyed.
  static Registry *R = new Registry;
  return *R;
}

Counter &Registry::counter(std::string_view Name) {
  std::lock_guard<std::mutex> L(I->M);
  return I->Counters[std::string(Name)];
}

Timer &Registry::timer(std::string_view Name) {
  std::lock_guard<std::mutex> L(I->M);
  auto [It, Inserted] = I->Timers.try_emplace(std::string(Name));
  // Set the back-pointer only on first insertion: event recording reads
  // Name without the lock, so it must never be re-written once the timer
  // has been handed out.
  if (Inserted)
    It->second.Name = It->first.c_str();
  return It->second;
}

Histogram &Registry::histogram(std::string_view Name) {
  std::lock_guard<std::mutex> L(I->M);
  return I->Histograms[std::string(Name)];
}

Histogram::Snapshot Registry::histogramSnapshot(std::string_view Name) const {
  std::lock_guard<std::mutex> L(I->M);
  std::string Key(Name);
  Histogram::Snapshot S;
  if (auto It = I->Histograms.find(Key); It != I->Histograms.end())
    S.merge(It->second.snapshot());
  if (auto It = I->AttachedHists.find(Key); It != I->AttachedHists.end())
    for (const Histogram *H : It->second)
      S.merge(H->snapshot());
  if (auto It = I->RetiredHists.find(Key); It != I->RetiredHists.end())
    S.merge(It->second);
  return S;
}

uint64_t Registry::counterValue(std::string_view Name) const {
  std::lock_guard<std::mutex> L(I->M);
  std::string Key(Name);
  uint64_t V = 0;
  if (auto It = I->Counters.find(Key); It != I->Counters.end())
    V += It->second.value();
  if (auto It = I->Attached.find(Key); It != I->Attached.end())
    for (const Counter *C : It->second)
      V += C->value();
  if (auto It = I->Retired.find(Key); It != I->Retired.end())
    V += It->second;
  return V;
}

void Registry::attach(const char *Name, Counter *C) {
  std::lock_guard<std::mutex> L(I->M);
  I->Attached[Name].push_back(C);
}

void Registry::detach(const char *Name, Counter *C) {
  std::lock_guard<std::mutex> L(I->M);
  auto It = I->Attached.find(Name);
  if (It == I->Attached.end())
    return;
  std::vector<Counter *> &V = It->second;
  V.erase(std::remove(V.begin(), V.end(), C), V.end());
  I->Retired[Name] += C->value();
}

void Registry::attach(const char *Name, Histogram *H) {
  std::lock_guard<std::mutex> L(I->M);
  I->AttachedHists[Name].push_back(H);
}

void Registry::detach(const char *Name, Histogram *H) {
  std::lock_guard<std::mutex> L(I->M);
  auto It = I->AttachedHists.find(Name);
  if (It == I->AttachedHists.end())
    return;
  std::vector<Histogram *> &V = It->second;
  V.erase(std::remove(V.begin(), V.end(), H), V.end());
  I->RetiredHists[Name].merge(H->snapshot());
}

void Registry::recordEvent(const char *Name, unsigned Tid, uint64_t StartTick,
                           uint64_t EndTick) {
  Event *R = I->Ring.load(std::memory_order_acquire);
  if (!R)
    R = I->ensureRing();
  uint64_t Idx = I->Head.fetch_add(1, std::memory_order_relaxed);
  Event &E = R[Idx & (kRingSize - 1)];
  E.Name = Name;
  E.Tid = Tid;
  E.Start = StartTick;
  E.End = EndTick;
}

uint64_t Registry::eventsRecorded() const {
  return I->Head.load(std::memory_order_relaxed);
}

uint64_t Registry::eventCapacity() const { return kRingSize; }

void Registry::reset() {
  std::lock_guard<std::mutex> L(I->M);
  for (auto &[Name, C] : I->Counters)
    C.reset();
  for (auto &[Name, T] : I->Timers)
    T.reset();
  for (auto &[Name, V] : I->Attached)
    for (Counter *C : V)
      C->reset();
  for (auto &[Name, H] : I->Histograms)
    H.reset();
  for (auto &[Name, V] : I->AttachedHists)
    for (Histogram *H : V)
      H->reset();
  I->Retired.clear();
  I->RetiredHists.clear();
  I->Head.store(0, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Text report
//===----------------------------------------------------------------------===//

namespace {

void printDuration(char *Buf, size_t N, double Ns) {
  if (Ns >= 1e9)
    std::snprintf(Buf, N, "%.3fs", Ns / 1e9);
  else if (Ns >= 1e6)
    std::snprintf(Buf, N, "%.3fms", Ns / 1e6);
  else if (Ns >= 1e3)
    std::snprintf(Buf, N, "%.2fus", Ns / 1e3);
  else
    std::snprintf(Buf, N, "%.0fns", Ns);
}

} // namespace

void Registry::report(std::ostream &OS) const {
  char Line[256];
  OS << "== vcode telemetry report ==\n";
  OS << "hot-path instrumentation: "
     << (compiledIn() ? "compiled in (VCODE_TELEMETRY=ON)"
                      : "compiled out (VCODE_TELEMETRY=OFF)")
     << "\n";
  OS << "phase timing: "
     << (timingEnabled()
             ? "on"
             : "off (--telemetry-report/--trace-json/setTiming enable it)")
     << "; tracing: " << (tracingEnabled() ? "on" : "off") << "\n";

  // Merge global, live instance, and retired counter values by name.
  std::map<std::string, uint64_t> Merged;
  {
    std::lock_guard<std::mutex> L(I->M);
    for (const auto &[Name, C] : I->Counters)
      Merged[Name] += C.value();
    for (const auto &[Name, V] : I->Attached)
      for (const Counter *C : V)
        Merged[Name] += C->value();
    for (const auto &[Name, V] : I->Retired)
      Merged[Name] += V;
  }
  if (!Merged.empty()) {
    OS << "counters:\n";
    for (const auto &[Name, V] : Merged) {
      std::snprintf(Line, sizeof(Line), "  %-36s %12llu\n", Name.c_str(),
                    (unsigned long long)V);
      OS << Line;
    }
  }

  std::lock_guard<std::mutex> L(I->M);
  if (!I->Timers.empty()) {
    std::snprintf(Line, sizeof(Line), "timers:%31s %10s %10s %10s %10s\n", "",
                  "count", "total", "avg", "max");
    OS << Line;
    for (const auto &[Name, T] : I->Timers) {
      Timer::Snapshot S = T.snapshot();
      char Total[32], Avg[32], Max[32];
      printDuration(Total, sizeof(Total), ticksToNs(S.TotalTicks));
      printDuration(Avg, sizeof(Avg),
                    S.Count ? ticksToNs(S.TotalTicks) / double(S.Count) : 0);
      printDuration(Max, sizeof(Max), ticksToNs(S.MaxTicks));
      std::snprintf(Line, sizeof(Line), "  %-36s %10llu %10s %10s %10s\n",
                    Name.c_str(), (unsigned long long)S.Count, Total, Avg, Max);
      OS << Line;
    }
  }

  // Merge global, live instance, and retired histograms by name. Values
  // recorded into histograms are nanoseconds by convention ("*_ns" names).
  std::map<std::string, Histogram::Snapshot> MergedHists;
  for (const auto &[Name, H] : I->Histograms)
    MergedHists[Name].merge(H.snapshot());
  for (const auto &[Name, V] : I->AttachedHists)
    for (const Histogram *H : V)
      MergedHists[Name].merge(H->snapshot());
  for (const auto &[Name, S] : I->RetiredHists)
    MergedHists[Name].merge(S);
  bool AnyHist = false;
  for (const auto &[Name, S] : MergedHists)
    AnyHist |= S.Count != 0;
  if (AnyHist) {
    std::snprintf(Line, sizeof(Line),
                  "histograms:%27s %10s %10s %10s %10s %10s\n", "", "count",
                  "p50", "p90", "p99", "max");
    OS << Line;
    for (const auto &[Name, S] : MergedHists) {
      if (!S.Count)
        continue;
      char P50[32], P90[32], P99[32], Max[32];
      printDuration(P50, sizeof(P50), S.percentile(50));
      printDuration(P90, sizeof(P90), S.percentile(90));
      printDuration(P99, sizeof(P99), S.percentile(99));
      printDuration(Max, sizeof(Max), double(S.Max));
      std::snprintf(Line, sizeof(Line), "  %-36s %10llu %10s %10s %10s %10s\n",
                    Name.c_str(), (unsigned long long)S.Count, P50, P90, P99,
                    Max);
      OS << Line;
    }
  }

  // Published-code heat map (src/profile/CodeMap.h); empty when nothing
  // was published or the profiler is compiled out.
  std::string CodeMapText;
  profile::CodeMap::instance().appendReport(CodeMapText);
  OS << CodeMapText;

  uint64_t Recorded = I->Head.load(std::memory_order_relaxed);
  uint64_t Dropped = Recorded > kRingSize ? Recorded - kRingSize : 0;
  std::snprintf(Line, sizeof(Line),
                "trace events: %llu recorded, %llu dropped (capacity %llu%s)\n",
                (unsigned long long)Recorded, (unsigned long long)Dropped,
                (unsigned long long)kRingSize,
                Dropped ? ", oldest overwritten" : "");
  OS << Line;
}

//===----------------------------------------------------------------------===//
// Chrome trace_event export
//===----------------------------------------------------------------------===//

namespace {

void appendJsonEscaped(std::string &Out, const char *S) {
  for (; *S; ++S) {
    char C = *S;
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if (uint8_t(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", unsigned(uint8_t(C)));
      Out += Buf;
    } else {
      Out += C;
    }
  }
}

} // namespace

void Registry::writeChromeTrace(std::ostream &OS) const {
  const Event *R = I->Ring.load(std::memory_order_acquire);
  uint64_t Head = I->Head.load(std::memory_order_relaxed);
  uint64_t N = R ? std::min(Head, kRingSize) : 0;
  std::vector<Event> Events(R, R + size_t(N));

  // chrome://tracing wants per-tid monotone timestamps; the ring is in
  // global append order, so sort by (tid, start).
  std::sort(Events.begin(), Events.end(), [](const Event &A, const Event &B) {
    return A.Tid != B.Tid ? A.Tid < B.Tid : A.Start < B.Start;
  });

  uint64_t Base = ~uint64_t(0);
  for (const Event &E : Events)
    Base = std::min(Base, E.Start);

  std::string Out;
  Out.reserve(Events.size() * 96 + 64);
  Out += "{\"traceEvents\":[";
  char Buf[128];
  bool First = true;
  for (const Event &E : Events) {
    double TsUs = ticksToNs(E.Start - Base) / 1e3;
    double DurUs = ticksToNs(E.End - E.Start) / 1e3;
    if (!First)
      Out += ",";
    First = false;
    Out += "\n{\"name\":\"";
    appendJsonEscaped(Out, E.Name ? E.Name : "?");
    std::snprintf(Buf, sizeof(Buf),
                  "\",\"cat\":\"vcode\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                  "\"ts\":%.3f,\"dur\":%.3f}",
                  E.Tid, TsUs, DurUs);
    Out += Buf;
  }
  // Overwritten ring slots are dropped from the export; say how many so
  // a truncated trace is distinguishable from a complete one.
  uint64_t Dropped = Head > kRingSize ? Head - kRingSize : 0;
  std::snprintf(Buf, sizeof(Buf), "\n],\"droppedEvents\":%llu}\n",
                (unsigned long long)Dropped);
  Out += Buf;
  OS << Out;
}

//===----------------------------------------------------------------------===//
// Free-function conveniences and CLI plumbing
//===----------------------------------------------------------------------===//

void report(std::ostream &OS) { registry().report(OS); }
void writeChromeTrace(std::ostream &OS) { registry().writeChromeTrace(OS); }
void resetAll() { registry().reset(); }

namespace {

// Set before the atexit handler is registered; both outlive main. The
// string is constructed during static initialization, so the handler
// (registered later, during main) runs before its destructor.
bool GWantReport = false;
std::string GTraceFile;

void atExitFlush() {
  if (!GTraceFile.empty()) {
    std::ofstream OS(GTraceFile);
    if (!OS) {
      std::fprintf(stderr, "telemetry: cannot open '%s' for the trace\n",
                   GTraceFile.c_str());
    } else {
      registry().writeChromeTrace(OS);
      uint64_t Recorded = registry().eventsRecorded();
      uint64_t Cap = registry().eventCapacity();
      std::fprintf(
          stderr,
          "telemetry: wrote %llu trace events (%llu dropped) to %s "
          "(load in chrome://tracing)\n",
          (unsigned long long)std::min(Recorded, Cap),
          (unsigned long long)(Recorded > Cap ? Recorded - Cap : 0),
          GTraceFile.c_str());
    }
  }
  if (GWantReport)
    registry().report(std::cerr);
}

} // namespace

int handleArgs(int Argc, char **Argv) {
  bool WantReport = false;
  const char *TraceFile = nullptr;

  int Out = 1;
  for (int Idx = 1; Idx < Argc; ++Idx) {
    const char *A = Argv[Idx] ? Argv[Idx] : "";
    if (std::strcmp(A, "--telemetry-report") == 0) {
      WantReport = true;
      continue;
    }
    if (std::strncmp(A, "--trace-json=", 13) == 0) {
      TraceFile = A + 13;
      continue;
    }
    Argv[Out++] = Argv[Idx];
  }
  if (Out < Argc)
    Argv[Out] = nullptr;

  if (const char *E = std::getenv("VCODE_TELEMETRY_REPORT"))
    if (*E && std::strcmp(E, "0") != 0)
      WantReport = true;
  if (!TraceFile)
    if (const char *E = std::getenv("VCODE_TRACE_JSON"))
      if (*E)
        TraceFile = E;

  if (WantReport) {
    GWantReport = true;
    setTiming(true); // the report should include phase timers
  }
  if (TraceFile && *TraceFile) {
    GTraceFile = TraceFile;
    setTracing(true);
  }
  if (GWantReport || !GTraceFile.empty()) {
    static bool Registered = (std::atexit(atExitFlush), true);
    (void)Registered;
  }
  return Out;
}

} // namespace telemetry
} // namespace vcode
