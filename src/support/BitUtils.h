//===- support/BitUtils.h - Bit manipulation helpers ------------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small bit-twiddling helpers used by the instruction encoders: immediate
/// range checks, field extraction/insertion, and sign extension. Modeled on
/// llvm/Support/MathExtras.h.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_SUPPORT_BITUTILS_H
#define VCODE_SUPPORT_BITUTILS_H

#include <cstdint>

namespace vcode {

/// Returns true if \p X fits in an \p N-bit signed immediate field.
template <unsigned N> constexpr bool isInt(int64_t X) {
  static_assert(N > 0 && N < 64, "width out of range");
  return X >= -(int64_t(1) << (N - 1)) && X < (int64_t(1) << (N - 1));
}

/// Returns true if \p X fits in an \p N-bit unsigned immediate field.
template <unsigned N> constexpr bool isUInt(uint64_t X) {
  static_assert(N > 0 && N < 64, "width out of range");
  return X < (uint64_t(1) << N);
}

/// Sign-extends the low \p N bits of \p X to 64 bits.
template <unsigned N> constexpr int64_t signExtend(uint64_t X) {
  static_assert(N > 0 && N < 64, "width out of range");
  return int64_t(X << (64 - N)) >> (64 - N);
}

/// Sign-extends the low \p N bits of \p X to 32 bits.
template <unsigned N> constexpr int32_t signExtend32(uint32_t X) {
  static_assert(N > 0 && N < 32, "width out of range");
  return int32_t(X << (32 - N)) >> (32 - N);
}

/// Extracts bits [Lo, Lo+Len) of \p X.
constexpr uint64_t extractBits(uint64_t X, unsigned Lo, unsigned Len) {
  return (X >> Lo) & ((uint64_t(1) << Len) - 1);
}

/// Byte-swaps a 16-bit value.
constexpr uint16_t byteSwap16(uint16_t X) {
  return uint16_t((X << 8) | (X >> 8));
}

/// Byte-swaps a 32-bit value.
constexpr uint32_t byteSwap32(uint32_t X) {
  return (X << 24) | ((X & 0xff00u) << 8) | ((X >> 8) & 0xff00u) | (X >> 24);
}

/// Rounds \p X up to the next multiple of \p Align (a power of two).
constexpr uint64_t alignTo(uint64_t X, uint64_t Align) {
  return (X + Align - 1) & ~(Align - 1);
}

/// Returns true if \p X is a power of two (and nonzero).
constexpr bool isPowerOf2(uint64_t X) { return X != 0 && (X & (X - 1)) == 0; }

/// Floor log2 of a nonzero value.
constexpr unsigned log2Floor(uint64_t X) {
  unsigned R = 0;
  while (X >>= 1)
    ++R;
  return R;
}

} // namespace vcode

#endif // VCODE_SUPPORT_BITUTILS_H
