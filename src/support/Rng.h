//===- support/Rng.h - Deterministic random numbers -------------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic PRNG (xorshift128+) used by the auto-generated
/// regression tests (paper §3.3) and the synthetic workload generators, so
/// every run of the test suite and benchmarks is reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_SUPPORT_RNG_H
#define VCODE_SUPPORT_RNG_H

#include <cstdint>

namespace vcode {

/// Deterministic xorshift128+ pseudo-random generator.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding so nearby seeds give unrelated streams.
    auto Mix = [&Seed]() {
      Seed += 0x9e3779b97f4a7c15ull;
      uint64_t Z = Seed;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
      return Z ^ (Z >> 31);
    };
    S0 = Mix();
    S1 = Mix();
  }

  /// Returns the next 64 pseudo-random bits.
  uint64_t next() {
    uint64_t X = S0, Y = S1;
    S0 = Y;
    X ^= X << 23;
    S1 = X ^ Y ^ (X >> 17) ^ (Y >> 26);
    return S1 + Y;
  }

  /// Returns a value uniform in [0, Bound). \p Bound must be nonzero.
  uint64_t below(uint64_t Bound) { return next() % Bound; }

  /// Returns a value uniform in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    return Lo + int64_t(below(uint64_t(Hi - Lo + 1)));
  }

  /// Returns true with probability Num/Den.
  bool chance(unsigned Num, unsigned Den) { return below(Den) < Num; }

private:
  uint64_t S0, S1;
};

} // namespace vcode

#endif // VCODE_SUPPORT_RNG_H
