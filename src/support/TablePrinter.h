//===- support/TablePrinter.h - Paper-style result tables -------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Formats benchmark results as fixed-width text tables in the same row /
/// column layout the paper's tables use, so EXPERIMENTS.md can quote bench
/// output directly next to the paper numbers.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_SUPPORT_TABLEPRINTER_H
#define VCODE_SUPPORT_TABLEPRINTER_H

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace vcode {

/// Accumulates rows of string cells and prints them with aligned columns.
class TablePrinter {
public:
  explicit TablePrinter(std::vector<std::string> Header)
      : Columns(std::move(Header)) {}

  /// Appends one row; missing trailing cells print empty.
  void addRow(std::vector<std::string> Cells) { Rows.push_back(std::move(Cells)); }

  /// Renders the table to \p Out (defaults to stdout).
  void print(std::FILE *Out = stdout) const {
    std::vector<size_t> Width(Columns.size(), 0);
    auto Widen = [&Width](const std::vector<std::string> &Cells) {
      for (size_t I = 0; I < Cells.size() && I < Width.size(); ++I)
        if (Cells[I].size() > Width[I])
          Width[I] = Cells[I].size();
    };
    Widen(Columns);
    for (const auto &R : Rows)
      Widen(R);

    auto PrintRow = [&](const std::vector<std::string> &Cells) {
      for (size_t I = 0; I < Width.size(); ++I) {
        const std::string &S = I < Cells.size() ? Cells[I] : std::string();
        std::fprintf(Out, "%s%-*s", I ? "  " : "", int(Width[I]), S.c_str());
      }
      std::fprintf(Out, "\n");
    };
    PrintRow(Columns);
    size_t Total = 0;
    for (size_t W : Width)
      Total += W + 2;
    for (size_t I = 0; I + 2 < Total; ++I)
      std::fputc('-', Out);
    std::fputc('\n', Out);
    for (const auto &R : Rows)
      PrintRow(R);
  }

private:
  std::vector<std::string> Columns;
  std::vector<std::vector<std::string>> Rows;
};

/// printf-style helper returning std::string, for building table cells.
inline std::string strFormat(const char *Fmt, ...) {
  char Buf[256];
  va_list Ap;
  va_start(Ap, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);
  return Buf;
}

} // namespace vcode

#endif // VCODE_SUPPORT_TABLEPRINTER_H
