//===- mips/MipsEncoding.h - MIPS instruction encoders ----------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MIPS I/II instruction word encoders, written as constexpr functions in
/// the style of the paper's Fig. 2 emission macros:
///
///   #define addu(dst, src1, src2)
///     (*v_ip++ = (((src1)<<21)|((src2)<<16)|((dst)<<11)|0x21))
///
/// Clients on the fast path (paper §5.3: hard-coded register names) can use
/// these encoders directly through the Asm wrapper; the portable layer uses
/// them from MipsTarget. Register operands are raw register numbers so the
/// compiler can constant-fold fully when the names are hard-coded.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_MIPS_MIPSENCODING_H
#define VCODE_MIPS_MIPSENCODING_H

#include "core/CodeBuffer.h"
#include <cstdint>

namespace vcode {
namespace mips {

/// Conventional MIPS O32 register numbers.
enum GpRegNum : unsigned {
  ZERO = 0, AT = 1, V0 = 2, V1 = 3,
  A0 = 4, A1 = 5, A2 = 6, A3 = 7,
  T0 = 8, T1 = 9, T2 = 10, T3 = 11, T4 = 12, T5 = 13, T6 = 14, T7 = 15,
  S0 = 16, S1 = 17, S2 = 18, S3 = 19, S4 = 20, S5 = 21, S6 = 22, S7 = 23,
  T8 = 24, T9 = 25, K0 = 26, K1 = 27,
  GP = 28, SP = 29, S8 = 30, RA = 31,
};

/// FPU condition-branch and data-format constants.
enum FpFormat : unsigned { FMT_S = 16, FMT_D = 17, FMT_W = 20 };

// --- Word builders ---------------------------------------------------------

constexpr uint32_t rType(unsigned Fn, unsigned Rs, unsigned Rt, unsigned Rd,
                         unsigned Sh = 0) {
  return (Rs << 21) | (Rt << 16) | (Rd << 11) | (Sh << 6) | Fn;
}
constexpr uint32_t iType(unsigned Op, unsigned Rs, unsigned Rt, uint32_t Imm) {
  return (Op << 26) | (Rs << 21) | (Rt << 16) | (Imm & 0xffff);
}
constexpr uint32_t jType(unsigned Op, uint64_t Target) {
  return (Op << 26) | (uint32_t(Target >> 2) & 0x03ffffff);
}
constexpr uint32_t fpRType(unsigned Fmt, unsigned Ft, unsigned Fs, unsigned Fd,
                           unsigned Fn) {
  return (0x11u << 26) | (Fmt << 21) | (Ft << 16) | (Fs << 11) | (Fd << 6) |
         Fn;
}

// --- ALU -------------------------------------------------------------------

constexpr uint32_t addu(unsigned Rd, unsigned Rs, unsigned Rt) {
  return rType(0x21, Rs, Rt, Rd);
}
constexpr uint32_t subu(unsigned Rd, unsigned Rs, unsigned Rt) {
  return rType(0x23, Rs, Rt, Rd);
}
constexpr uint32_t and_(unsigned Rd, unsigned Rs, unsigned Rt) {
  return rType(0x24, Rs, Rt, Rd);
}
constexpr uint32_t or_(unsigned Rd, unsigned Rs, unsigned Rt) {
  return rType(0x25, Rs, Rt, Rd);
}
constexpr uint32_t xor_(unsigned Rd, unsigned Rs, unsigned Rt) {
  return rType(0x26, Rs, Rt, Rd);
}
constexpr uint32_t nor(unsigned Rd, unsigned Rs, unsigned Rt) {
  return rType(0x27, Rs, Rt, Rd);
}
constexpr uint32_t slt(unsigned Rd, unsigned Rs, unsigned Rt) {
  return rType(0x2a, Rs, Rt, Rd);
}
constexpr uint32_t sltu(unsigned Rd, unsigned Rs, unsigned Rt) {
  return rType(0x2b, Rs, Rt, Rd);
}
constexpr uint32_t sll(unsigned Rd, unsigned Rt, unsigned Sh) {
  return rType(0x00, 0, Rt, Rd, Sh);
}
constexpr uint32_t srl(unsigned Rd, unsigned Rt, unsigned Sh) {
  return rType(0x02, 0, Rt, Rd, Sh);
}
constexpr uint32_t sra(unsigned Rd, unsigned Rt, unsigned Sh) {
  return rType(0x03, 0, Rt, Rd, Sh);
}
constexpr uint32_t sllv(unsigned Rd, unsigned Rt, unsigned Rs) {
  return rType(0x04, Rs, Rt, Rd);
}
constexpr uint32_t srlv(unsigned Rd, unsigned Rt, unsigned Rs) {
  return rType(0x06, Rs, Rt, Rd);
}
constexpr uint32_t srav(unsigned Rd, unsigned Rt, unsigned Rs) {
  return rType(0x07, Rs, Rt, Rd);
}
constexpr uint32_t mult(unsigned Rs, unsigned Rt) {
  return rType(0x18, Rs, Rt, 0);
}
constexpr uint32_t multu(unsigned Rs, unsigned Rt) {
  return rType(0x19, Rs, Rt, 0);
}
constexpr uint32_t div_(unsigned Rs, unsigned Rt) {
  return rType(0x1a, Rs, Rt, 0);
}
constexpr uint32_t divu(unsigned Rs, unsigned Rt) {
  return rType(0x1b, Rs, Rt, 0);
}
constexpr uint32_t mfhi(unsigned Rd) { return rType(0x10, 0, 0, Rd); }
constexpr uint32_t mflo(unsigned Rd) { return rType(0x12, 0, 0, Rd); }

constexpr uint32_t addiu(unsigned Rt, unsigned Rs, int32_t Imm) {
  return iType(0x09, Rs, Rt, uint32_t(Imm));
}
constexpr uint32_t slti(unsigned Rt, unsigned Rs, int32_t Imm) {
  return iType(0x0a, Rs, Rt, uint32_t(Imm));
}
constexpr uint32_t sltiu(unsigned Rt, unsigned Rs, int32_t Imm) {
  return iType(0x0b, Rs, Rt, uint32_t(Imm));
}
constexpr uint32_t andi(unsigned Rt, unsigned Rs, uint32_t Imm) {
  return iType(0x0c, Rs, Rt, Imm);
}
constexpr uint32_t ori(unsigned Rt, unsigned Rs, uint32_t Imm) {
  return iType(0x0d, Rs, Rt, Imm);
}
constexpr uint32_t xori(unsigned Rt, unsigned Rs, uint32_t Imm) {
  return iType(0x0e, Rs, Rt, Imm);
}
constexpr uint32_t lui(unsigned Rt, uint32_t Imm) {
  return iType(0x0f, 0, Rt, Imm);
}

// --- Memory ----------------------------------------------------------------

constexpr uint32_t lb(unsigned Rt, unsigned Base, int32_t Off) {
  return iType(0x20, Base, Rt, uint32_t(Off));
}
constexpr uint32_t lh(unsigned Rt, unsigned Base, int32_t Off) {
  return iType(0x21, Base, Rt, uint32_t(Off));
}
constexpr uint32_t lw(unsigned Rt, unsigned Base, int32_t Off) {
  return iType(0x23, Base, Rt, uint32_t(Off));
}
constexpr uint32_t lbu(unsigned Rt, unsigned Base, int32_t Off) {
  return iType(0x24, Base, Rt, uint32_t(Off));
}
constexpr uint32_t lhu(unsigned Rt, unsigned Base, int32_t Off) {
  return iType(0x25, Base, Rt, uint32_t(Off));
}
constexpr uint32_t sb(unsigned Rt, unsigned Base, int32_t Off) {
  return iType(0x28, Base, Rt, uint32_t(Off));
}
constexpr uint32_t sh(unsigned Rt, unsigned Base, int32_t Off) {
  return iType(0x29, Base, Rt, uint32_t(Off));
}
constexpr uint32_t sw(unsigned Rt, unsigned Base, int32_t Off) {
  return iType(0x2b, Base, Rt, uint32_t(Off));
}
constexpr uint32_t lwc1(unsigned Ft, unsigned Base, int32_t Off) {
  return iType(0x31, Base, Ft, uint32_t(Off));
}
constexpr uint32_t ldc1(unsigned Ft, unsigned Base, int32_t Off) {
  return iType(0x35, Base, Ft, uint32_t(Off));
}
constexpr uint32_t swc1(unsigned Ft, unsigned Base, int32_t Off) {
  return iType(0x39, Base, Ft, uint32_t(Off));
}
constexpr uint32_t sdc1(unsigned Ft, unsigned Base, int32_t Off) {
  return iType(0x3d, Base, Ft, uint32_t(Off));
}

// --- Control flow ----------------------------------------------------------

constexpr uint32_t beq(unsigned Rs, unsigned Rt, int32_t Disp = 0) {
  return iType(0x04, Rs, Rt, uint32_t(Disp));
}
constexpr uint32_t bne(unsigned Rs, unsigned Rt, int32_t Disp = 0) {
  return iType(0x05, Rs, Rt, uint32_t(Disp));
}
constexpr uint32_t blez(unsigned Rs, int32_t Disp = 0) {
  return iType(0x06, Rs, 0, uint32_t(Disp));
}
constexpr uint32_t bgtz(unsigned Rs, int32_t Disp = 0) {
  return iType(0x07, Rs, 0, uint32_t(Disp));
}
constexpr uint32_t bltz(unsigned Rs, int32_t Disp = 0) {
  return iType(0x01, Rs, 0, uint32_t(Disp));
}
constexpr uint32_t bgez(unsigned Rs, int32_t Disp = 0) {
  return iType(0x01, Rs, 1, uint32_t(Disp));
}
constexpr uint32_t j(uint64_t Target) { return jType(0x02, Target); }
constexpr uint32_t jal(uint64_t Target) { return jType(0x03, Target); }
constexpr uint32_t jr(unsigned Rs) { return rType(0x08, Rs, 0, 0); }
constexpr uint32_t jalr(unsigned Rd, unsigned Rs) {
  return rType(0x09, Rs, 0, Rd);
}
constexpr uint32_t nop() { return 0; }

// --- FPU -------------------------------------------------------------------

constexpr uint32_t fadd(unsigned Fmt, unsigned Fd, unsigned Fs, unsigned Ft) {
  return fpRType(Fmt, Ft, Fs, Fd, 0x00);
}
constexpr uint32_t fsub(unsigned Fmt, unsigned Fd, unsigned Fs, unsigned Ft) {
  return fpRType(Fmt, Ft, Fs, Fd, 0x01);
}
constexpr uint32_t fmul(unsigned Fmt, unsigned Fd, unsigned Fs, unsigned Ft) {
  return fpRType(Fmt, Ft, Fs, Fd, 0x02);
}
constexpr uint32_t fdiv(unsigned Fmt, unsigned Fd, unsigned Fs, unsigned Ft) {
  return fpRType(Fmt, Ft, Fs, Fd, 0x03);
}
constexpr uint32_t fsqrt(unsigned Fmt, unsigned Fd, unsigned Fs) {
  return fpRType(Fmt, 0, Fs, Fd, 0x04);
}
constexpr uint32_t fabs_(unsigned Fmt, unsigned Fd, unsigned Fs) {
  return fpRType(Fmt, 0, Fs, Fd, 0x05);
}
constexpr uint32_t fmov(unsigned Fmt, unsigned Fd, unsigned Fs) {
  return fpRType(Fmt, 0, Fs, Fd, 0x06);
}
constexpr uint32_t fneg(unsigned Fmt, unsigned Fd, unsigned Fs) {
  return fpRType(Fmt, 0, Fs, Fd, 0x07);
}
/// trunc.w.fmt (MIPS II): FP -> int with truncation.
constexpr uint32_t ftruncw(unsigned Fmt, unsigned Fd, unsigned Fs) {
  return fpRType(Fmt, 0, Fs, Fd, 0x0d);
}
constexpr uint32_t fcvts(unsigned FromFmt, unsigned Fd, unsigned Fs) {
  return fpRType(FromFmt, 0, Fs, Fd, 0x20);
}
constexpr uint32_t fcvtd(unsigned FromFmt, unsigned Fd, unsigned Fs) {
  return fpRType(FromFmt, 0, Fs, Fd, 0x21);
}
constexpr uint32_t fceq(unsigned Fmt, unsigned Fs, unsigned Ft) {
  return fpRType(Fmt, Ft, Fs, 0, 0x32);
}
constexpr uint32_t fclt(unsigned Fmt, unsigned Fs, unsigned Ft) {
  return fpRType(Fmt, Ft, Fs, 0, 0x3c);
}
constexpr uint32_t fcle(unsigned Fmt, unsigned Fs, unsigned Ft) {
  return fpRType(Fmt, Ft, Fs, 0, 0x3e);
}
constexpr uint32_t bc1t(int32_t Disp = 0) {
  return iType(0x11, 8, 1, uint32_t(Disp));
}
constexpr uint32_t bc1f(int32_t Disp = 0) {
  return iType(0x11, 8, 0, uint32_t(Disp));
}
constexpr uint32_t mfc1(unsigned Rt, unsigned Fs) {
  return (0x11u << 26) | (0u << 21) | (Rt << 16) | (Fs << 11);
}
constexpr uint32_t mtc1(unsigned Rt, unsigned Fs) {
  return (0x11u << 26) | (4u << 21) | (Rt << 16) | (Fs << 11);
}

/// Thin emission wrapper over a CodeBuffer: `A.put(mips::addu(T0,T1,T2))`
/// is the hard-coded-register fast path of paper §5.3, compiling down to a
/// constant-or and a store.
class Asm {
public:
  explicit Asm(CodeBuffer &B) : B(B) {}
  void put(uint32_t W) { B.put(W); }
  CodeBuffer &buffer() { return B; }

private:
  CodeBuffer &B;
};

} // namespace mips
} // namespace vcode

#endif // VCODE_MIPS_MIPSENCODING_H
