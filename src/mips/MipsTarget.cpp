//===- mips/MipsTarget.cpp - MIPS32 backend --------------------------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
// The hot emitters live inline in MipsTarget.h; this file holds the cold
// paths: target description, function framing, fixups, disassembly, and the
// machine-level extension instructions.
//
//===----------------------------------------------------------------------===//

#include "mips/MipsTarget.h"
#include "support/Telemetry.h"
#include "mips/MipsDisasm.h"

using namespace vcode;
using namespace vcode::mips;

const TargetInfo &vcode::mips::mipsTargetInfo() {
  static const TargetInfo TI = [] {
    TargetInfo T;
    T.Name = "mips";
    T.WordBytes = 4;
    T.HasBranchDelaySlot = true;
    T.LoadDelaySlots = 1;
    T.Zero = intReg(ZERO);
    T.At = intReg(AT);
    T.Sp = intReg(SP);
    T.Ra = intReg(RA);
    T.IntTemps = {intReg(T0), intReg(T1), intReg(T2), intReg(T3), intReg(T4),
                  intReg(T5), intReg(T6), intReg(T7), intReg(T8), intReg(T9),
                  intReg(V1), intReg(A3), intReg(A2), intReg(A1), intReg(A0)};
    T.IntSaves = {intReg(S0), intReg(S1), intReg(S2), intReg(S3), intReg(S4),
                  intReg(S5), intReg(S6), intReg(S7), intReg(S8)};
    T.FpTemps = {fpReg(4), fpReg(6), fpReg(8), fpReg(10), fpReg(2),
                 fpReg(14), fpReg(12)};
    T.FpSaves = {fpReg(20), fpReg(22), fpReg(24), fpReg(26), fpReg(28),
                 fpReg(30)};
    T.DefaultCC.IntArgRegs = {intReg(A0), intReg(A1), intReg(A2), intReg(A3)};
    T.DefaultCC.FpArgRegs = {fpReg(12), fpReg(14)};
    T.DefaultCC.IntRet = intReg(V0);
    T.DefaultCC.FpRet = fpReg(0);
    T.DefaultCC.LinkReg = intReg(RA);
    T.DefaultCC.MinOutArgBytes = 16;
    T.OutArgReserveBytes = 32;
    return T;
  }();
  return TI;
}

MipsTarget::MipsTarget() { registerMachineInstructions(); }

void MipsTarget::unsignedToFp(VCode &VC, bool ToDouble, Reg Rd, Reg Rs) {
  CodeBuffer &B = VC.buf();
  unsigned S = gpr(Rs);
  // Convert as signed, then add 2^32 if the sign bit was set. The fix block
  // has a fixed length, so the branch displacement is known at emission.
  Label Pool = VC.constPoolLabel(std::bit_cast<uint64_t>(4294967296.0));
  unsigned Acc = ToDouble ? fpr(Rd) : FAT1;
  B.ensureWords(ToDouble ? 8 : 9);
  B.put(mtc1(S, FAT0));
  B.put(fcvtd(FMT_W, Acc, FAT0));
  B.put(bgez(S, 5)); // skip the 5-word fix block
  B.put(nop());
  addrOfLabel(VC, AT, Pool); // 2 words
  B.put(ldc1(FAT0, AT, 0));
  B.put(fadd(FMT_D, Acc, Acc, FAT0));
  if (!ToDouble)
    B.put(fcvts(FMT_D, fpr(Rd), Acc));
}

// --- Function framing -------------------------------------------------------

std::string MipsTarget::disassemble(uint32_t Word, SimAddr Pc) const {
  return mips::disassemble(Word, Pc);
}

void MipsTarget::beginFunction(VCode &VC) {
  // Reserve instruction-stream space for the worst-case prologue
  // (paper §5.2): frame allocation, ra save, every callee-saved register,
  // and one copy per stack-passed argument. v_end writes the real prologue
  // into the tail of this region and the entry point skips the rest.
  uint32_t ReservedWords = uint32_t(2 + 32 + 32 + VC.prologueArgCopies().size());
  VC.setReservedPrologueWords(ReservedWords);
  VC.buf().ensureWords(ReservedWords);
  for (uint32_t I = 0; I < ReservedWords; ++I)
    VC.buf().put(nop());
}

CodePtr MipsTarget::endFunction(VCode &VC) {
  VCODE_TM_COUNT("mips.functions", 1);
  const TargetInfo &TI = info();
  CodeBuffer &B = VC.buf();
  uint32_t F = VC.frameBytes();
  if (!isInt<16>(int64_t(F)))
    fatalKind(CgErrKind::OutOfRange,
        "mips: frame of %u bytes exceeds the 32KB immediate range", F);

  uint32_t IntMask = VC.regAlloc().usedCalleeSavedMask(Reg::Int);
  uint32_t FpMask = VC.regAlloc().usedCalleeSavedMask(Reg::Fp);

  // Build the prologue.
  std::vector<uint32_t> Pro;
  if (F) {
    Pro.push_back(addiu(SP, SP, -int32_t(F)));
    if (!VC.isLeaf())
      Pro.push_back(sw(gpr(VC.cc().LinkReg), SP, int32_t(TI.linkSaveSlot())));
    for (unsigned N = 0; N < 32; ++N)
      if (IntMask & (1u << N))
        Pro.push_back(sw(N, SP, int32_t(TI.intSaveSlot(N))));
    for (unsigned N = 0; N < 32; ++N)
      if (FpMask & (1u << N))
        Pro.push_back(sdc1(N, SP, int32_t(TI.fpSaveSlot(N))));
  }
  for (const PrologueArgCopy &Copy : VC.prologueArgCopies()) {
    int64_t Off = int64_t(F) + Copy.IncomingOff;
    if (!isInt<16>(Off))
      fatalKind(CgErrKind::OutOfRange,
          "mips: incoming stack argument offset %lld out of range",
            (long long)Off);
    unsigned Rt = isFpType(Copy.Ty) ? fpr(Copy.Dst) : gpr(Copy.Dst);
    Pro.push_back(loadWord(Copy.Ty, Rt, SP, int32_t(Off)));
  }

  uint32_t ReservedWords = VC.reservedPrologueWords();
  if (Pro.size() > ReservedWords)
    fatalKind(CgErrKind::Internal,
        "mips: prologue of %zu words exceeds the %u reserved", Pro.size(),
          ReservedWords);
  uint32_t Start = ReservedWords - uint32_t(Pro.size());
  for (size_t I = 0; I < Pro.size(); ++I)
    B.patch(uint32_t(Start + I), Pro[I]);

  // Epilogue: restore registers and return. The frame release rides the
  // return's delay slot.
  if (F) {
    VC.label(VC.epilogueLabel());
    if (!VC.isLeaf())
      B.put(lw(gpr(VC.cc().LinkReg), SP, int32_t(TI.linkSaveSlot())));
    for (unsigned N = 0; N < 32; ++N)
      if (IntMask & (1u << N))
        B.put(lw(N, SP, int32_t(TI.intSaveSlot(N))));
    for (unsigned N = 0; N < 32; ++N)
      if (FpMask & (1u << N))
        B.put(ldc1(N, SP, int32_t(TI.fpSaveSlot(N))));
    B.put(jr(gpr(VC.cc().LinkReg)));
    B.put(addiu(SP, SP, int32_t(F)));
  }

  CodePtr P;
  P.Entry = B.addrOfWord(Start);
  return P;
}

void MipsTarget::applyFixup(VCode &VC, const Fixup &F, SimAddr Target) {
  CodeBuffer &B = VC.buf();
  switch (F.Kind) {
  case FixupKind::Branch: {
    int64_t Disp =
        (int64_t(Target) - int64_t(B.addrOfWord(F.WordIdx) + 4)) / 4;
    if (!isInt<16>(Disp))
      fatalKind(CgErrKind::OutOfRange,
          "mips: branch displacement %lld out of range", (long long)Disp);
    B.patchOr(F.WordIdx, uint32_t(Disp) & 0xffff);
    return;
  }
  case FixupKind::Jump:
    B.patch(F.WordIdx, j(Target));
    return;
  case FixupKind::Call:
    B.patch(F.WordIdx, jal(Target));
    return;
  case FixupKind::EpilogueJump:
    // Target==0: no epilogue; the optimistic `jr ra` already in place is
    // the final instruction (paper §5.2's eliminated epilogue jump).
    if (Target != 0)
      B.patch(F.WordIdx, j(Target));
    return;
  case FixupKind::AddrHi:
    B.patchOr(F.WordIdx, uint32_t(Target >> 16) & 0xffff);
    return;
  case FixupKind::AddrLo:
    B.patchOr(F.WordIdx, uint32_t(Target) & 0xffff);
    return;
  }
  unreachable("bad FixupKind");
}

// --- Extension machine instructions (paper §5.4) ----------------------------

void MipsTarget::registerMachineInstructions() {
  auto Fp2 = [](unsigned Fn, unsigned Fmt) {
    return [Fn, Fmt](VCode &VC, const Operand *Ops, unsigned N) {
      if (N != 2 || Ops[0].Kind != Operand::RegOp ||
          Ops[1].Kind != Operand::RegOp)
        fatalKind(CgErrKind::BadOperand,
            "mips fp machine instruction expects (rd, rs)");
      VC.buf().put(fpRType(Fmt, 0, Ops[1].R.Num, Ops[0].R.Num, Fn));
    };
  };
  // The paper's worked example: (sqrt (rd, rs) (f fsqrts) (d fsqrtd)).
  defineInstruction("fsqrts", Fp2(0x04, FMT_S));
  defineInstruction("fsqrtd", Fp2(0x04, FMT_D));
  defineInstruction("fabss", Fp2(0x05, FMT_S));
  defineInstruction("fabsd", Fp2(0x05, FMT_D));
  // An integer example for the spec tests: nor.
  defineInstruction("mips.nor", [](VCode &VC, const Operand *Ops, unsigned N) {
    if (N != 3)
      fatalKind(CgErrKind::BadOperand,
          "mips.nor expects (rd, rs1, rs2)");
    VC.buf().put(nor(Ops[0].R.Num, Ops[1].R.Num, Ops[2].R.Num));
  });
}

// The shared static-dispatch instantiation declared in MipsTarget.h.
template class vcode::VCodeT<MipsTarget>;
