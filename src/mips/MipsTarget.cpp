//===- mips/MipsTarget.cpp - MIPS32 backend --------------------------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "mips/MipsTarget.h"
#include "mips/MipsDisasm.h"
#include "mips/MipsEncoding.h"
#include "support/BitUtils.h"
#include <cassert>
#include <cstring>

using namespace vcode;
using namespace vcode::mips;

// Two FPU scratch registers reserved for synthesis sequences (conversions,
// constant materialization); excluded from the allocator's candidates.
static constexpr unsigned FAT0 = 18;
static constexpr unsigned FAT1 = 16;

static unsigned gpr(Reg R) {
  assert(R.isInt() && "integer register expected");
  return R.Num;
}

static unsigned fpr(Reg R) {
  assert(R.isFp() && "fp register expected");
  return R.Num;
}

const TargetInfo &vcode::mips::mipsTargetInfo() {
  static const TargetInfo TI = [] {
    TargetInfo T;
    T.Name = "mips";
    T.WordBytes = 4;
    T.HasBranchDelaySlot = true;
    T.LoadDelaySlots = 1;
    T.Zero = intReg(ZERO);
    T.At = intReg(AT);
    T.Sp = intReg(SP);
    T.Ra = intReg(RA);
    T.IntTemps = {intReg(T0), intReg(T1), intReg(T2), intReg(T3), intReg(T4),
                  intReg(T5), intReg(T6), intReg(T7), intReg(T8), intReg(T9),
                  intReg(V1), intReg(A3), intReg(A2), intReg(A1), intReg(A0)};
    T.IntSaves = {intReg(S0), intReg(S1), intReg(S2), intReg(S3), intReg(S4),
                  intReg(S5), intReg(S6), intReg(S7), intReg(S8)};
    T.FpTemps = {fpReg(4), fpReg(6), fpReg(8), fpReg(10), fpReg(2),
                 fpReg(14), fpReg(12)};
    T.FpSaves = {fpReg(20), fpReg(22), fpReg(24), fpReg(26), fpReg(28),
                 fpReg(30)};
    T.DefaultCC.IntArgRegs = {intReg(A0), intReg(A1), intReg(A2), intReg(A3)};
    T.DefaultCC.FpArgRegs = {fpReg(12), fpReg(14)};
    T.DefaultCC.IntRet = intReg(V0);
    T.DefaultCC.FpRet = fpReg(0);
    T.DefaultCC.LinkReg = intReg(RA);
    T.DefaultCC.MinOutArgBytes = 16;
    T.OutArgReserveBytes = 32;
    return T;
  }();
  return TI;
}

MipsTarget::MipsTarget() { registerMachineInstructions(); }

// --- Helpers ----------------------------------------------------------------

/// Loads a 32-bit constant into \p Rd (1-2 words).
void MipsTarget::li(VCode &VC, unsigned Rd, int64_t Imm) {
  CodeBuffer &B = VC.buf();
  int32_t V = int32_t(Imm);
  if (isInt<16>(V)) {
    B.put(addiu(Rd, ZERO, V));
    return;
  }
  if (isUInt<16>(uint32_t(V))) {
    B.put(ori(Rd, ZERO, uint32_t(V)));
    return;
  }
  B.put(lui(Rd, uint32_t(V) >> 16));
  if (uint32_t(V) & 0xffff)
    B.put(ori(Rd, Rd, uint32_t(V) & 0xffff));
}

/// Materializes the (post-linking) absolute address of \p L into \p Rd via
/// a fixed lui/ori pair completed when labels resolve.
void MipsTarget::addrOfLabel(VCode &VC, unsigned Rd, Label L) {
  CodeBuffer &B = VC.buf();
  VC.addFixup(FixupKind::AddrHi, L);
  B.put(lui(Rd, 0));
  VC.addFixup(FixupKind::AddrLo, L);
  B.put(ori(Rd, Rd, 0));
}

/// Emits the delay-slot nop after a branch/jump unless the client is
/// scheduling the slot (paper §5.3 v_schedule_delay).
void MipsTarget::delaySlot(VCode &VC) {
  if (!VC.suppressDelayNop())
    VC.buf().put(nop());
}

// --- ALU ---------------------------------------------------------------------

void MipsTarget::emitBinop(VCode &VC, BinOp Op, Type Ty, Reg Rd, Reg Rs1,
                           Reg Rs2) {
  CodeBuffer &B = VC.buf();
  if (isFpType(Ty)) {
    unsigned Fmt = Ty == Type::F ? FMT_S : FMT_D;
    unsigned D = fpr(Rd), S = fpr(Rs1), T = fpr(Rs2);
    switch (Op) {
    case BinOp::Add:
      B.put(fadd(Fmt, D, S, T));
      return;
    case BinOp::Sub:
      B.put(fsub(Fmt, D, S, T));
      return;
    case BinOp::Mul:
      B.put(fmul(Fmt, D, S, T));
      return;
    case BinOp::Div:
      B.put(fdiv(Fmt, D, S, T));
      return;
    default:
      fatal("mips: fp binop '%s' unsupported", binOpName(Op));
    }
  }
  bool Unsigned = !isSignedType(Ty);
  unsigned D = gpr(Rd), S = gpr(Rs1), T = gpr(Rs2);
  switch (Op) {
  case BinOp::Add:
    B.put(addu(D, S, T));
    return;
  case BinOp::Sub:
    B.put(subu(D, S, T));
    return;
  case BinOp::Mul:
    B.put(Unsigned ? multu(S, T) : mult(S, T));
    B.put(mflo(D));
    return;
  case BinOp::Div:
    B.put(Unsigned ? divu(S, T) : div_(S, T));
    B.put(mflo(D));
    return;
  case BinOp::Mod:
    B.put(Unsigned ? divu(S, T) : div_(S, T));
    B.put(mfhi(D));
    return;
  case BinOp::And:
    B.put(and_(D, S, T));
    return;
  case BinOp::Or:
    B.put(or_(D, S, T));
    return;
  case BinOp::Xor:
    B.put(xor_(D, S, T));
    return;
  case BinOp::Lsh:
    B.put(sllv(D, S, T));
    return;
  case BinOp::Rsh:
    B.put(Unsigned ? srlv(D, S, T) : srav(D, S, T));
    return;
  }
  unreachable("bad BinOp");
}

void MipsTarget::emitBinopImm(VCode &VC, BinOp Op, Type Ty, Reg Rd, Reg Rs1,
                              int64_t Imm) {
  if (isFpType(Ty))
    fatal("mips: immediate operands are not allowed for f/d (paper Table 2)");
  CodeBuffer &B = VC.buf();
  unsigned D = gpr(Rd), S = gpr(Rs1);
  switch (Op) {
  case BinOp::Add:
    if (isInt<16>(Imm)) {
      B.put(addiu(D, S, int32_t(Imm)));
      return;
    }
    break;
  case BinOp::Sub:
    if (isInt<16>(-Imm)) {
      B.put(addiu(D, S, int32_t(-Imm)));
      return;
    }
    break;
  case BinOp::And:
    if (isUInt<16>(uint64_t(Imm))) {
      B.put(andi(D, S, uint32_t(Imm)));
      return;
    }
    break;
  case BinOp::Or:
    if (isUInt<16>(uint64_t(Imm))) {
      B.put(ori(D, S, uint32_t(Imm)));
      return;
    }
    break;
  case BinOp::Xor:
    if (isUInt<16>(uint64_t(Imm))) {
      B.put(xori(D, S, uint32_t(Imm)));
      return;
    }
    break;
  case BinOp::Lsh:
    assert(Imm >= 0 && Imm < 32 && "shift amount out of range");
    B.put(sll(D, S, unsigned(Imm)));
    return;
  case BinOp::Rsh:
    assert(Imm >= 0 && Imm < 32 && "shift amount out of range");
    B.put(isSignedType(Ty) ? sra(D, S, unsigned(Imm))
                           : srl(D, S, unsigned(Imm)));
    return;
  default:
    break;
  }
  // Boundary condition (paper §1: "constants that don't fit in immediate
  // fields"): synthesize through the assembler temporary.
  li(VC, AT, Imm);
  emitBinop(VC, Op, Ty, Rd, Rs1, intReg(AT));
}

void MipsTarget::emitUnop(VCode &VC, UnOp Op, Type Ty, Reg Rd, Reg Rs) {
  CodeBuffer &B = VC.buf();
  if (isFpType(Ty)) {
    unsigned Fmt = Ty == Type::F ? FMT_S : FMT_D;
    switch (Op) {
    case UnOp::Mov:
      B.put(fmov(Fmt, fpr(Rd), fpr(Rs)));
      return;
    case UnOp::Neg:
      B.put(fneg(Fmt, fpr(Rd), fpr(Rs)));
      return;
    default:
      fatal("mips: fp unop unsupported");
    }
  }
  unsigned D = gpr(Rd), S = gpr(Rs);
  switch (Op) {
  case UnOp::Com:
    B.put(nor(D, S, ZERO));
    return;
  case UnOp::Not:
    B.put(sltiu(D, S, 1));
    return;
  case UnOp::Mov:
    B.put(addu(D, S, ZERO));
    return;
  case UnOp::Neg:
    B.put(subu(D, ZERO, S));
    return;
  }
  unreachable("bad UnOp");
}

void MipsTarget::emitSetInt(VCode &VC, Type Ty, Reg Rd, uint64_t Imm) {
  (void)Ty;
  li(VC, gpr(Rd), int64_t(int32_t(uint32_t(Imm))));
}

void MipsTarget::emitSetFp(VCode &VC, Type Ty, Reg Rd, double Val) {
  CodeBuffer &B = VC.buf();
  if (Ty == Type::F) {
    // Singles fit a GPR: materialize the bit pattern and move it over.
    float F = float(Val);
    uint32_t Bits;
    std::memcpy(&Bits, &F, 4);
    if (Bits == 0) {
      B.put(mtc1(ZERO, fpr(Rd)));
      return;
    }
    li(VC, AT, int64_t(int32_t(Bits)));
    B.put(mtc1(AT, fpr(Rd)));
    return;
  }
  // Doubles come from the per-function constant pool at the end of the
  // instruction stream (paper §5.2).
  uint64_t Bits;
  std::memcpy(&Bits, &Val, 8);
  Label Pool = VC.constPoolLabel(Bits);
  addrOfLabel(VC, AT, Pool);
  B.put(ldc1(fpr(Rd), AT, 0));
}

void MipsTarget::unsignedToFp(VCode &VC, bool ToDouble, Reg Rd, Reg Rs) {
  CodeBuffer &B = VC.buf();
  unsigned S = gpr(Rs);
  // Convert as signed, then add 2^32 if the sign bit was set. The fix block
  // has a fixed length, so the branch displacement is known at emission.
  uint64_t TwoTo32;
  double D = 4294967296.0;
  std::memcpy(&TwoTo32, &D, 8);
  Label Pool = VC.constPoolLabel(TwoTo32);
  unsigned Acc = ToDouble ? fpr(Rd) : FAT1;
  B.put(mtc1(S, FAT0));
  B.put(fcvtd(FMT_W, Acc, FAT0));
  B.put(bgez(S, 5)); // skip the 5-word fix block
  B.put(nop());
  addrOfLabel(VC, AT, Pool); // 2 words
  B.put(ldc1(FAT0, AT, 0));
  B.put(fadd(FMT_D, Acc, Acc, FAT0));
  if (!ToDouble)
    B.put(fcvts(FMT_D, fpr(Rd), Acc));
}

void MipsTarget::emitCvt(VCode &VC, Type From, Type To, Reg Rd, Reg Rs) {
  CodeBuffer &B = VC.buf();
  // On a 32-bit machine L/UL/P collapse onto I/U (paper Table 1).
  bool FromIntReg = isIntRegType(From);
  bool ToIntReg = isIntRegType(To);
  if (FromIntReg && ToIntReg) {
    if (Rd != Rs)
      B.put(addu(gpr(Rd), gpr(Rs), ZERO));
    return;
  }
  if (FromIntReg && isFpType(To)) {
    bool Uns = From == Type::U || From == Type::UL || From == Type::P;
    if (Uns) {
      unsignedToFp(VC, To == Type::D, Rd, Rs);
      return;
    }
    B.put(mtc1(gpr(Rs), FAT0));
    B.put(To == Type::F ? fcvts(FMT_W, fpr(Rd), FAT0)
                        : fcvtd(FMT_W, fpr(Rd), FAT0));
    return;
  }
  if (isFpType(From) && ToIntReg) {
    unsigned Fmt = From == Type::F ? FMT_S : FMT_D;
    B.put(ftruncw(Fmt, FAT0, fpr(Rs)));
    B.put(mfc1(gpr(Rd), FAT0));
    return;
  }
  if (From == Type::F && To == Type::D) {
    B.put(fcvtd(FMT_S, fpr(Rd), fpr(Rs)));
    return;
  }
  if (From == Type::D && To == Type::F) {
    B.put(fcvts(FMT_D, fpr(Rd), fpr(Rs)));
    return;
  }
  fatal("mips: unsupported conversion %s -> %s", typeName(From), typeName(To));
}

// --- Memory -------------------------------------------------------------------

/// Returns the opcode-applied load word for \p Ty.
static uint32_t loadWord(Type Ty, unsigned Rt, unsigned Base, int32_t Off) {
  switch (Ty) {
  case Type::C:
    return lb(Rt, Base, Off);
  case Type::UC:
    return lbu(Rt, Base, Off);
  case Type::S:
    return lh(Rt, Base, Off);
  case Type::US:
    return lhu(Rt, Base, Off);
  case Type::I:
  case Type::U:
  case Type::L:
  case Type::UL:
  case Type::P:
    return lw(Rt, Base, Off);
  case Type::F:
    return lwc1(Rt, Base, Off);
  case Type::D:
    return ldc1(Rt, Base, Off);
  case Type::V:
    break;
  }
  unreachable("bad load type");
}

static uint32_t storeWord(Type Ty, unsigned Rt, unsigned Base, int32_t Off) {
  switch (Ty) {
  case Type::C:
  case Type::UC:
    return sb(Rt, Base, Off);
  case Type::S:
  case Type::US:
    return sh(Rt, Base, Off);
  case Type::I:
  case Type::U:
  case Type::L:
  case Type::UL:
  case Type::P:
    return sw(Rt, Base, Off);
  case Type::F:
    return swc1(Rt, Base, Off);
  case Type::D:
    return sdc1(Rt, Base, Off);
  case Type::V:
    break;
  }
  unreachable("bad store type");
}

void MipsTarget::emitLoad(VCode &VC, Type Ty, Reg Rd, Reg Base, Reg Off) {
  CodeBuffer &B = VC.buf();
  B.put(addu(AT, gpr(Base), gpr(Off)));
  unsigned Rt = isFpType(Ty) ? fpr(Rd) : gpr(Rd);
  B.put(loadWord(Ty, Rt, AT, 0));
}

void MipsTarget::emitLoadImm(VCode &VC, Type Ty, Reg Rd, Reg Base,
                             int64_t Off) {
  CodeBuffer &B = VC.buf();
  unsigned Rt = isFpType(Ty) ? fpr(Rd) : gpr(Rd);
  if (isInt<16>(Off)) {
    B.put(loadWord(Ty, Rt, gpr(Base), int32_t(Off)));
    return;
  }
  li(VC, AT, Off);
  B.put(addu(AT, AT, gpr(Base)));
  B.put(loadWord(Ty, Rt, AT, 0));
}

void MipsTarget::emitStore(VCode &VC, Type Ty, Reg Val, Reg Base, Reg Off) {
  CodeBuffer &B = VC.buf();
  B.put(addu(AT, gpr(Base), gpr(Off)));
  unsigned Rt = isFpType(Ty) ? fpr(Val) : gpr(Val);
  B.put(storeWord(Ty, Rt, AT, 0));
}

void MipsTarget::emitStoreImm(VCode &VC, Type Ty, Reg Val, Reg Base,
                              int64_t Off) {
  CodeBuffer &B = VC.buf();
  unsigned Rt = isFpType(Ty) ? fpr(Val) : gpr(Val);
  if (isInt<16>(Off)) {
    B.put(storeWord(Ty, Rt, gpr(Base), int32_t(Off)));
    return;
  }
  li(VC, AT, Off);
  B.put(addu(AT, AT, gpr(Base)));
  B.put(storeWord(Ty, Rt, AT, 0));
}

// --- Control flow ---------------------------------------------------------------

void MipsTarget::intCompareBranch(VCode &VC, Cond C, bool Unsigned, unsigned A,
                                  unsigned B, Label L) {
  CodeBuffer &Buf = VC.buf();
  auto Slt = [&](unsigned D, unsigned X, unsigned Y) {
    Buf.put(Unsigned ? sltu(D, X, Y) : slt(D, X, Y));
  };
  switch (C) {
  case Cond::Eq:
    VC.addFixup(FixupKind::Branch, L);
    Buf.put(beq(A, B));
    break;
  case Cond::Ne:
    VC.addFixup(FixupKind::Branch, L);
    Buf.put(bne(A, B));
    break;
  case Cond::Lt:
    Slt(AT, A, B);
    VC.addFixup(FixupKind::Branch, L);
    Buf.put(bne(AT, ZERO));
    break;
  case Cond::Ge:
    Slt(AT, A, B);
    VC.addFixup(FixupKind::Branch, L);
    Buf.put(beq(AT, ZERO));
    break;
  case Cond::Gt:
    Slt(AT, B, A);
    VC.addFixup(FixupKind::Branch, L);
    Buf.put(bne(AT, ZERO));
    break;
  case Cond::Le:
    Slt(AT, B, A);
    VC.addFixup(FixupKind::Branch, L);
    Buf.put(beq(AT, ZERO));
    break;
  }
  delaySlot(VC);
}

void MipsTarget::fpCompareBranch(VCode &VC, Cond C, unsigned Fmt, unsigned A,
                                 unsigned B, Label L) {
  CodeBuffer &Buf = VC.buf();
  bool TrueBranch = true;
  switch (C) {
  case Cond::Lt:
    Buf.put(fclt(Fmt, A, B));
    break;
  case Cond::Le:
    Buf.put(fcle(Fmt, A, B));
    break;
  case Cond::Gt:
    Buf.put(fclt(Fmt, B, A));
    break;
  case Cond::Ge:
    Buf.put(fcle(Fmt, B, A));
    break;
  case Cond::Eq:
    Buf.put(fceq(Fmt, A, B));
    break;
  case Cond::Ne:
    Buf.put(fceq(Fmt, A, B));
    TrueBranch = false;
    break;
  }
  VC.addFixup(FixupKind::Branch, L);
  Buf.put(TrueBranch ? bc1t() : bc1f());
  delaySlot(VC);
}

void MipsTarget::emitBranch(VCode &VC, Cond C, Type Ty, Reg Rs1, Reg Rs2,
                            Label L) {
  if (isFpType(Ty)) {
    fpCompareBranch(VC, C, Ty == Type::F ? FMT_S : FMT_D, fpr(Rs1), fpr(Rs2),
                    L);
    return;
  }
  intCompareBranch(VC, C, !isSignedType(Ty), gpr(Rs1), gpr(Rs2), L);
}

void MipsTarget::emitBranchImm(VCode &VC, Cond C, Type Ty, Reg Rs1,
                               int64_t Imm, Label L) {
  if (isFpType(Ty))
    fatal("mips: fp branches take register operands");
  CodeBuffer &B = VC.buf();
  bool Unsigned = !isSignedType(Ty);
  unsigned A = gpr(Rs1);
  if (Imm == 0 && (C == Cond::Eq || C == Cond::Ne)) {
    VC.addFixup(FixupKind::Branch, L);
    B.put(C == Cond::Eq ? beq(A, ZERO) : bne(A, ZERO));
    delaySlot(VC);
    return;
  }
  if (C == Cond::Lt && !Unsigned && isInt<16>(Imm)) {
    B.put(slti(AT, A, int32_t(Imm)));
    VC.addFixup(FixupKind::Branch, L);
    B.put(bne(AT, ZERO));
    delaySlot(VC);
    return;
  }
  if (C == Cond::Ge && !Unsigned && isInt<16>(Imm)) {
    B.put(slti(AT, A, int32_t(Imm)));
    VC.addFixup(FixupKind::Branch, L);
    B.put(beq(AT, ZERO));
    delaySlot(VC);
    return;
  }
  // General case: materialize into AT; the compare reads AT before any
  // slt writes it, so reuse is safe.
  li(VC, AT, Imm);
  intCompareBranch(VC, C, Unsigned, A, AT, L);
}

void MipsTarget::emitJump(VCode &VC, Label L) {
  VC.addFixup(FixupKind::Jump, L);
  VC.buf().put(j(0));
  delaySlot(VC);
}

void MipsTarget::emitJumpReg(VCode &VC, Reg R) {
  VC.buf().put(jr(gpr(R)));
  delaySlot(VC);
}

void MipsTarget::emitJumpAddr(VCode &VC, SimAddr A) {
  VC.buf().put(j(A));
  delaySlot(VC);
}

void MipsTarget::emitCallAddr(VCode &VC, SimAddr A) {
  VC.buf().put(jal(A));
  delaySlot(VC);
}

void MipsTarget::emitCallLabel(VCode &VC, Label L) {
  if (gpr(VC.cc().LinkReg) != RA)
    fatal("mips: jal-to-label links through ra; substitute conventions "
          "must use callReg");
  VC.addFixup(FixupKind::Call, L);
  VC.buf().put(jal(0));
  delaySlot(VC);
}

void MipsTarget::emitLinkReturn(VCode &VC) {
  VC.buf().put(jr(gpr(VC.cc().LinkReg)));
  delaySlot(VC);
}

void MipsTarget::emitCallReg(VCode &VC, Reg R) {
  VC.buf().put(jalr(gpr(VC.cc().LinkReg), gpr(R)));
  delaySlot(VC);
}

void MipsTarget::emitRet(VCode &VC, Type Ty, Reg Rs) {
  CodeBuffer &B = VC.buf();
  // Optimistically emit a direct return with the result move in the delay
  // slot (exactly the code of the paper's plus1 example). If v_end decides
  // an epilogue is needed, the jr is rewritten into a jump to it; the delay
  // slot still executes either way.
  VC.addFixup(FixupKind::EpilogueJump, VC.epilogueLabel());
  B.put(jr(gpr(VC.cc().LinkReg)));
  if (Ty == Type::V) {
    B.put(nop());
  } else if (isFpType(Ty)) {
    unsigned Ret = fpr(VC.resultReg(Ty));
    if (fpr(Rs) != Ret)
      B.put(fmov(Ty == Type::F ? FMT_S : FMT_D, Ret, fpr(Rs)));
    else
      B.put(nop());
  } else {
    unsigned Ret = gpr(VC.resultReg(Ty));
    if (gpr(Rs) != Ret)
      B.put(addu(Ret, gpr(Rs), ZERO));
    else
      B.put(nop());
  }
}

void MipsTarget::emitNop(VCode &VC) { VC.buf().put(nop()); }

// --- Function framing -------------------------------------------------------------

std::string MipsTarget::disassemble(uint32_t Word, SimAddr Pc) const {
  return mips::disassemble(Word, Pc);
}

void MipsTarget::beginFunction(VCode &VC) {
  // Reserve instruction-stream space for the worst-case prologue
  // (paper §5.2): frame allocation, ra save, every callee-saved register,
  // and one copy per stack-passed argument. v_end writes the real prologue
  // into the tail of this region and the entry point skips the rest.
  ReservedWords = uint32_t(2 + 32 + 32 + VC.prologueArgCopies().size());
  for (uint32_t I = 0; I < ReservedWords; ++I)
    VC.buf().put(nop());
}

CodePtr MipsTarget::endFunction(VCode &VC) {
  const TargetInfo &TI = info();
  CodeBuffer &B = VC.buf();
  uint32_t F = VC.frameBytes();
  if (!isInt<16>(int64_t(F)))
    fatal("mips: frame of %u bytes exceeds the 32KB immediate range", F);

  uint32_t IntMask = VC.regAlloc().usedCalleeSavedMask(Reg::Int);
  uint32_t FpMask = VC.regAlloc().usedCalleeSavedMask(Reg::Fp);

  // Build the prologue.
  std::vector<uint32_t> Pro;
  if (F) {
    Pro.push_back(addiu(SP, SP, -int32_t(F)));
    if (!VC.isLeaf())
      Pro.push_back(sw(gpr(VC.cc().LinkReg), SP, int32_t(TI.linkSaveSlot())));
    for (unsigned N = 0; N < 32; ++N)
      if (IntMask & (1u << N))
        Pro.push_back(sw(N, SP, int32_t(TI.intSaveSlot(N))));
    for (unsigned N = 0; N < 32; ++N)
      if (FpMask & (1u << N))
        Pro.push_back(sdc1(N, SP, int32_t(TI.fpSaveSlot(N))));
  }
  for (const PrologueArgCopy &Copy : VC.prologueArgCopies()) {
    int64_t Off = int64_t(F) + Copy.IncomingOff;
    if (!isInt<16>(Off))
      fatal("mips: incoming stack argument offset %lld out of range",
            (long long)Off);
    unsigned Rt = isFpType(Copy.Ty) ? fpr(Copy.Dst) : gpr(Copy.Dst);
    Pro.push_back(loadWord(Copy.Ty, Rt, SP, int32_t(Off)));
  }

  if (Pro.size() > ReservedWords)
    fatal("mips: prologue of %zu words exceeds the %u reserved", Pro.size(),
          ReservedWords);
  uint32_t Start = ReservedWords - uint32_t(Pro.size());
  for (size_t I = 0; I < Pro.size(); ++I)
    B.patch(uint32_t(Start + I), Pro[I]);

  // Epilogue: restore registers and return. The frame release rides the
  // return's delay slot.
  if (F) {
    VC.label(VC.epilogueLabel());
    if (!VC.isLeaf())
      B.put(lw(gpr(VC.cc().LinkReg), SP, int32_t(TI.linkSaveSlot())));
    for (unsigned N = 0; N < 32; ++N)
      if (IntMask & (1u << N))
        B.put(lw(N, SP, int32_t(TI.intSaveSlot(N))));
    for (unsigned N = 0; N < 32; ++N)
      if (FpMask & (1u << N))
        B.put(ldc1(N, SP, int32_t(TI.fpSaveSlot(N))));
    B.put(jr(gpr(VC.cc().LinkReg)));
    B.put(addiu(SP, SP, int32_t(F)));
  }

  CodePtr P;
  P.Entry = B.addrOfWord(Start);
  return P;
}

void MipsTarget::applyFixup(VCode &VC, const Fixup &F, SimAddr Target) {
  CodeBuffer &B = VC.buf();
  switch (F.Kind) {
  case FixupKind::Branch: {
    int64_t Disp =
        (int64_t(Target) - int64_t(B.addrOfWord(F.WordIdx) + 4)) / 4;
    if (!isInt<16>(Disp))
      fatal("mips: branch displacement %lld out of range", (long long)Disp);
    B.patchOr(F.WordIdx, uint32_t(Disp) & 0xffff);
    return;
  }
  case FixupKind::Jump:
    B.patch(F.WordIdx, j(Target));
    return;
  case FixupKind::Call:
    B.patch(F.WordIdx, jal(Target));
    return;
  case FixupKind::EpilogueJump:
    // Target==0: no epilogue; the optimistic `jr ra` already in place is
    // the final instruction (paper §5.2's eliminated epilogue jump).
    if (Target != 0)
      B.patch(F.WordIdx, j(Target));
    return;
  case FixupKind::AddrHi:
    B.patchOr(F.WordIdx, uint32_t(Target >> 16) & 0xffff);
    return;
  case FixupKind::AddrLo:
    B.patchOr(F.WordIdx, uint32_t(Target) & 0xffff);
    return;
  }
  unreachable("bad FixupKind");
}

// --- Extension machine instructions (paper §5.4) ------------------------------

void MipsTarget::registerMachineInstructions() {
  auto Fp2 = [](unsigned Fn, unsigned Fmt) {
    return [Fn, Fmt](VCode &VC, const Operand *Ops, unsigned N) {
      if (N != 2 || Ops[0].Kind != Operand::RegOp ||
          Ops[1].Kind != Operand::RegOp)
        fatal("mips fp machine instruction expects (rd, rs)");
      VC.buf().put(fpRType(Fmt, 0, Ops[1].R.Num, Ops[0].R.Num, Fn));
    };
  };
  // The paper's worked example: (sqrt (rd, rs) (f fsqrts) (d fsqrtd)).
  defineInstruction("fsqrts", Fp2(0x04, FMT_S));
  defineInstruction("fsqrtd", Fp2(0x04, FMT_D));
  defineInstruction("fabss", Fp2(0x05, FMT_S));
  defineInstruction("fabsd", Fp2(0x05, FMT_D));
  // An integer example for the spec tests: nor.
  defineInstruction("mips.nor", [](VCode &VC, const Operand *Ops, unsigned N) {
    if (N != 3)
      fatal("mips.nor expects (rd, rs1, rs2)");
    VC.buf().put(nor(Ops[0].R.Num, Ops[1].R.Num, Ops[2].R.Num));
  });
}
