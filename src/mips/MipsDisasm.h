//===- mips/MipsDisasm.h - MIPS disassembler --------------------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A symbolic disassembler for the MIPS subset the backend emits — the
/// §6.2 "symbolic debugger" support the paper lists as its most critical
/// missing piece ("debugging dynamically generated code currently requires
/// stepping through it at the level of host-specific machine code").
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_MIPS_MIPSDISASM_H
#define VCODE_MIPS_MIPSDISASM_H

#include "core/CodeBuffer.h"
#include <string>

namespace vcode {
namespace mips {

/// Disassembles one instruction word fetched from address \p Pc
/// (pc-relative branch targets print absolute).
std::string disassemble(uint32_t Word, SimAddr Pc);

} // namespace mips
} // namespace vcode

#endif // VCODE_MIPS_MIPSDISASM_H
