//===- mips/MipsDisasm.cpp - MIPS disassembler -------------------------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "mips/MipsDisasm.h"
#include "support/BitUtils.h"
#include <cstdarg>
#include <cstdio>

using namespace vcode;

namespace {

const char *GprName[32] = {
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3", "t0", "t1", "t2",
    "t3",   "t4", "t5", "t6", "t7", "s0", "s1", "s2", "s3", "s4", "s5",
    "s6",   "s7", "t8", "t9", "k0", "k1", "gp", "sp", "s8", "ra"};

std::string fmt(const char *Format, ...) {
  char Buf[128];
  va_list Ap;
  va_start(Ap, Format);
  std::vsnprintf(Buf, sizeof(Buf), Format, Ap);
  va_end(Ap);
  return Buf;
}

std::string fpName(unsigned F) { return fmt("f%u", F); }

std::string branchTarget(SimAddr Pc, uint32_t Word) {
  int32_t Disp = signExtend32<16>(Word & 0xffff);
  return fmt("0x%llx", (unsigned long long)(Pc + 4 + (int64_t(Disp) << 2)));
}

} // namespace

std::string vcode::mips::disassemble(uint32_t I, SimAddr Pc) {
  unsigned Op = I >> 26;
  unsigned Rs = (I >> 21) & 31, Rt = (I >> 16) & 31, Rd = (I >> 11) & 31;
  unsigned Sh = (I >> 6) & 31, Fn = I & 63;
  int32_t Imm = signExtend32<16>(I & 0xffff);
  uint32_t UImm = I & 0xffff;

  if (I == 0)
    return "nop";

  switch (Op) {
  case 0x00: { // SPECIAL
    const char *N3 = nullptr;
    switch (Fn) {
    case 0x21:
      N3 = "addu";
      break;
    case 0x23:
      N3 = "subu";
      break;
    case 0x24:
      N3 = "and";
      break;
    case 0x25:
      N3 = "or";
      break;
    case 0x26:
      N3 = "xor";
      break;
    case 0x27:
      N3 = "nor";
      break;
    case 0x2a:
      N3 = "slt";
      break;
    case 0x2b:
      N3 = "sltu";
      break;
    default:
      break;
    }
    if (N3)
      return fmt("%-7s %s, %s, %s", N3, GprName[Rd], GprName[Rs],
                 GprName[Rt]);
    switch (Fn) {
    case 0x00:
      return fmt("%-7s %s, %s, %u", "sll", GprName[Rd], GprName[Rt], Sh);
    case 0x02:
      return fmt("%-7s %s, %s, %u", "srl", GprName[Rd], GprName[Rt], Sh);
    case 0x03:
      return fmt("%-7s %s, %s, %u", "sra", GprName[Rd], GprName[Rt], Sh);
    case 0x04:
      return fmt("%-7s %s, %s, %s", "sllv", GprName[Rd], GprName[Rt],
                 GprName[Rs]);
    case 0x06:
      return fmt("%-7s %s, %s, %s", "srlv", GprName[Rd], GprName[Rt],
                 GprName[Rs]);
    case 0x07:
      return fmt("%-7s %s, %s, %s", "srav", GprName[Rd], GprName[Rt],
                 GprName[Rs]);
    case 0x08:
      return fmt("%-7s %s", "jr", GprName[Rs]);
    case 0x09:
      return fmt("%-7s %s, %s", "jalr", GprName[Rd], GprName[Rs]);
    case 0x10:
      return fmt("%-7s %s", "mfhi", GprName[Rd]);
    case 0x12:
      return fmt("%-7s %s", "mflo", GprName[Rd]);
    case 0x18:
      return fmt("%-7s %s, %s", "mult", GprName[Rs], GprName[Rt]);
    case 0x19:
      return fmt("%-7s %s, %s", "multu", GprName[Rs], GprName[Rt]);
    case 0x1a:
      return fmt("%-7s %s, %s", "div", GprName[Rs], GprName[Rt]);
    case 0x1b:
      return fmt("%-7s %s, %s", "divu", GprName[Rs], GprName[Rt]);
    }
    break;
  }
  case 0x01:
    return fmt("%-7s %s, %s", Rt == 0 ? "bltz" : "bgez", GprName[Rs],
               branchTarget(Pc, I).c_str());
  case 0x02:
    return fmt("%-7s 0x%llx", "j",
               (unsigned long long)((Pc & ~SimAddr(0x0fffffff)) |
                                    ((I & 0x03ffffff) << 2)));
  case 0x03:
    return fmt("%-7s 0x%llx", "jal",
               (unsigned long long)((Pc & ~SimAddr(0x0fffffff)) |
                                    ((I & 0x03ffffff) << 2)));
  case 0x04:
    return fmt("%-7s %s, %s, %s", "beq", GprName[Rs], GprName[Rt],
               branchTarget(Pc, I).c_str());
  case 0x05:
    return fmt("%-7s %s, %s, %s", "bne", GprName[Rs], GprName[Rt],
               branchTarget(Pc, I).c_str());
  case 0x09:
    return fmt("%-7s %s, %s, %d", "addiu", GprName[Rt], GprName[Rs], Imm);
  case 0x0a:
    return fmt("%-7s %s, %s, %d", "slti", GprName[Rt], GprName[Rs], Imm);
  case 0x0b:
    return fmt("%-7s %s, %s, %d", "sltiu", GprName[Rt], GprName[Rs], Imm);
  case 0x0c:
    return fmt("%-7s %s, %s, 0x%x", "andi", GprName[Rt], GprName[Rs], UImm);
  case 0x0d:
    return fmt("%-7s %s, %s, 0x%x", "ori", GprName[Rt], GprName[Rs], UImm);
  case 0x0e:
    return fmt("%-7s %s, %s, 0x%x", "xori", GprName[Rt], GprName[Rs], UImm);
  case 0x0f:
    return fmt("%-7s %s, 0x%x", "lui", GprName[Rt], UImm);
  case 0x11: { // COP1
    unsigned Sub = Rs;
    if (Sub == 0)
      return fmt("%-7s %s, %s", "mfc1", GprName[Rt], fpName(Rd).c_str());
    if (Sub == 4)
      return fmt("%-7s %s, %s", "mtc1", GprName[Rt], fpName(Rd).c_str());
    if (Sub == 8)
      return fmt("%-7s %s", (Rt & 1) ? "bc1t" : "bc1f",
                 branchTarget(Pc, I).c_str());
    const char *Suffix = Sub == 16 ? "s" : (Sub == 17 ? "d" : "w");
    unsigned Ft = Rt, Fs = Rd, Fd = Sh;
    const char *N = nullptr;
    bool Two = false;
    switch (Fn) {
    case 0x00:
      N = "add";
      break;
    case 0x01:
      N = "sub";
      break;
    case 0x02:
      N = "mul";
      break;
    case 0x03:
      N = "div";
      break;
    case 0x04:
      N = "sqrt";
      Two = true;
      break;
    case 0x05:
      N = "abs";
      Two = true;
      break;
    case 0x06:
      N = "mov";
      Two = true;
      break;
    case 0x07:
      N = "neg";
      Two = true;
      break;
    case 0x0d:
      N = "trunc.w";
      Two = true;
      break;
    case 0x20:
      N = "cvt.s";
      Two = true;
      break;
    case 0x21:
      N = "cvt.d";
      Two = true;
      break;
    case 0x24:
      N = "cvt.w";
      Two = true;
      break;
    case 0x32:
      return fmt("c.eq.%s %s, %s", Suffix, fpName(Fs).c_str(),
                 fpName(Ft).c_str());
    case 0x3c:
      return fmt("c.lt.%s %s, %s", Suffix, fpName(Fs).c_str(),
                 fpName(Ft).c_str());
    case 0x3e:
      return fmt("c.le.%s %s, %s", Suffix, fpName(Fs).c_str(),
                 fpName(Ft).c_str());
    default:
      break;
    }
    if (N && Two)
      return fmt("%s.%-3s %s, %s", N, Suffix, fpName(Fd).c_str(),
                 fpName(Fs).c_str());
    if (N)
      return fmt("%s.%-3s %s, %s, %s", N, Suffix, fpName(Fd).c_str(),
                 fpName(Fs).c_str(), fpName(Ft).c_str());
    break;
  }
  case 0x20:
    return fmt("%-7s %s, %d(%s)", "lb", GprName[Rt], Imm, GprName[Rs]);
  case 0x21:
    return fmt("%-7s %s, %d(%s)", "lh", GprName[Rt], Imm, GprName[Rs]);
  case 0x23:
    return fmt("%-7s %s, %d(%s)", "lw", GprName[Rt], Imm, GprName[Rs]);
  case 0x24:
    return fmt("%-7s %s, %d(%s)", "lbu", GprName[Rt], Imm, GprName[Rs]);
  case 0x25:
    return fmt("%-7s %s, %d(%s)", "lhu", GprName[Rt], Imm, GprName[Rs]);
  case 0x28:
    return fmt("%-7s %s, %d(%s)", "sb", GprName[Rt], Imm, GprName[Rs]);
  case 0x29:
    return fmt("%-7s %s, %d(%s)", "sh", GprName[Rt], Imm, GprName[Rs]);
  case 0x2b:
    return fmt("%-7s %s, %d(%s)", "sw", GprName[Rt], Imm, GprName[Rs]);
  case 0x31:
    return fmt("%-7s %s, %d(%s)", "lwc1", fpName(Rt).c_str(), Imm,
               GprName[Rs]);
  case 0x35:
    return fmt("%-7s %s, %d(%s)", "ldc1", fpName(Rt).c_str(), Imm,
               GprName[Rs]);
  case 0x39:
    return fmt("%-7s %s, %d(%s)", "swc1", fpName(Rt).c_str(), Imm,
               GprName[Rs]);
  case 0x3d:
    return fmt("%-7s %s, %d(%s)", "sdc1", fpName(Rt).c_str(), Imm,
               GprName[Rs]);
  }
  return fmt(".word   0x%08x", I);
}

// --- profile/Disasm registration --------------------------------------------
// A static registrar publishes this disassembler under the target's name so
// --dump-code resolves it whenever the backend is linked in. Code words are
// stored little-endian in the code buffer's host memory.

#include "profile/Disasm.h"

namespace {

size_t decodeMipsWord(const uint8_t *P, size_t Avail, uint64_t Pc,
                      std::string &Out) {
  if (Avail < 4)
    return 0;
  uint32_t W = uint32_t(P[0]) | (uint32_t(P[1]) << 8) |
               (uint32_t(P[2]) << 16) | (uint32_t(P[3]) << 24);
  Out += mips::disassemble(W, SimAddr(Pc));
  return 4;
}

const bool RegisteredMipsDisasm = [] {
  profile::registerDisassembler("mips", &decodeMipsWord);
  return true;
}();

} // namespace
