//===- mips/MipsTarget.h - MIPS32 backend -----------------------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MIPS port of VCODE (the paper's primary platform: DECstation 3100 /
/// 5000). Transliterates the VCODE core instruction set to MIPS I/II words
/// in place, fills branch delay slots with nops unless the client schedules
/// them, implements an O32-flavoured calling convention, and performs the
/// prologue/epilogue backpatching of paper §5.2.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_MIPS_MIPSTARGET_H
#define VCODE_MIPS_MIPSTARGET_H

#include "core/Target.h"
#include "core/VCode.h"

namespace vcode {
namespace mips {

/// Returns the shared MIPS target description.
const TargetInfo &mipsTargetInfo();

/// MIPS32 code generator backend.
class MipsTarget final : public Target {
public:
  MipsTarget();

  const TargetInfo &info() const override { return mipsTargetInfo(); }

  void emitBinop(VCode &VC, BinOp Op, Type Ty, Reg Rd, Reg Rs1,
                 Reg Rs2) override;
  void emitBinopImm(VCode &VC, BinOp Op, Type Ty, Reg Rd, Reg Rs1,
                    int64_t Imm) override;
  void emitUnop(VCode &VC, UnOp Op, Type Ty, Reg Rd, Reg Rs) override;
  void emitSetInt(VCode &VC, Type Ty, Reg Rd, uint64_t Imm) override;
  void emitSetFp(VCode &VC, Type Ty, Reg Rd, double Val) override;
  void emitCvt(VCode &VC, Type From, Type To, Reg Rd, Reg Rs) override;
  void emitLoad(VCode &VC, Type Ty, Reg Rd, Reg Base, Reg Off) override;
  void emitLoadImm(VCode &VC, Type Ty, Reg Rd, Reg Base, int64_t Off) override;
  void emitStore(VCode &VC, Type Ty, Reg Val, Reg Base, Reg Off) override;
  void emitStoreImm(VCode &VC, Type Ty, Reg Val, Reg Base,
                    int64_t Off) override;
  void emitBranch(VCode &VC, Cond C, Type Ty, Reg Rs1, Reg Rs2,
                  Label L) override;
  void emitBranchImm(VCode &VC, Cond C, Type Ty, Reg Rs1, int64_t Imm,
                     Label L) override;
  void emitJump(VCode &VC, Label L) override;
  void emitJumpReg(VCode &VC, Reg R) override;
  void emitJumpAddr(VCode &VC, SimAddr A) override;
  void emitCallAddr(VCode &VC, SimAddr A) override;
  void emitCallLabel(VCode &VC, Label L) override;
  void emitLinkReturn(VCode &VC) override;
  void emitCallReg(VCode &VC, Reg R) override;
  void emitRet(VCode &VC, Type Ty, Reg Rs) override;
  void emitNop(VCode &VC) override;

  std::string disassemble(uint32_t Word, SimAddr Pc) const override;

  void beginFunction(VCode &VC) override;
  CodePtr endFunction(VCode &VC) override;
  void applyFixup(VCode &VC, const Fixup &F, SimAddr Target) override;

private:
  void li(VCode &VC, unsigned Rd, int64_t Imm);
  void addrOfLabel(VCode &VC, unsigned Rd, Label L);
  void delaySlot(VCode &VC);
  void intCompareBranch(VCode &VC, Cond C, bool Unsigned, unsigned A,
                        unsigned B, Label L);
  void fpCompareBranch(VCode &VC, Cond C, unsigned Fmt, unsigned A, unsigned B,
                       Label L);
  void unsignedToFp(VCode &VC, bool ToDouble, Reg Rd, Reg Rs);
  void registerMachineInstructions();

  /// Words reserved for the prologue of the function being generated.
  uint32_t ReservedWords = 0;
};

} // namespace mips
} // namespace vcode

#endif // VCODE_MIPS_MIPSTARGET_H
