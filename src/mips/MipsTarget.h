//===- mips/MipsTarget.h - MIPS32 backend -----------------------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MIPS port of VCODE (the paper's primary platform: DECstation 3100 /
/// 5000). Transliterates the VCODE core instruction set to MIPS I/II words
/// in place, fills branch delay slots with nops unless the client schedules
/// them, implements an O32-flavoured calling convention, and performs the
/// prologue/epilogue backpatching of paper §5.2.
///
/// The hot emitters (ins*) are non-virtual and inline in this header so
/// that VCodeT<MipsTarget> clients get the paper's macro-expansion cost
/// model; the Target virtuals are supplied by TargetBase<MipsTarget> as
/// forwarders, so type-erased VCode clients emit the exact same bytes one
/// virtual call away.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_MIPS_MIPSTARGET_H
#define VCODE_MIPS_MIPSTARGET_H

#include "core/EncTable.h"
#include "core/TargetBase.h"
#include "core/VCodeT.h"
#include "mips/MipsEncoding.h"
#include "support/BitUtils.h"
#include <bit>
#include <cassert>

namespace vcode {
namespace mips {

/// Returns the shared MIPS target description.
const TargetInfo &mipsTargetInfo();

// --- Encoding tables --------------------------------------------------------

/// One-word SPECIAL-group integer ALU row: functs for the signed and
/// unsigned forms plus whether rs/rt swap (shift-by-register encodes the
/// amount in rs). Mul/Div/Mod stay invalid: they synthesize through hi/lo.
struct MipsAluRow {
  uint8_t FnS = 0;
  uint8_t FnU = 0;
  bool Swap = false;
  bool Valid = false;

  constexpr MipsAluRow() = default;
  constexpr MipsAluRow(unsigned FnS, unsigned FnU, bool Swap = false)
      : FnS(uint8_t(FnS)), FnU(uint8_t(FnU)), Swap(Swap), Valid(true) {}
};

inline constexpr BinOpEncTable<MipsAluRow> MipsAluTable = [] {
  BinOpEncTable<MipsAluRow> T;
  T.set(BinOp::Add, {0x21, 0x21})
      .set(BinOp::Sub, {0x23, 0x23})
      .set(BinOp::And, {0x24, 0x24})
      .set(BinOp::Or, {0x25, 0x25})
      .set(BinOp::Xor, {0x26, 0x26})
      .set(BinOp::Lsh, {0x04, 0x04, /*Swap=*/true})
      .set(BinOp::Rsh, {0x07, 0x06, /*Swap=*/true});
  return T;
}();

/// COP1 functs for the single-word FP arithmetic ops.
inline constexpr BinOpEncTable<OpEnc> MipsFpAluTable = [] {
  BinOpEncTable<OpEnc> T;
  T.set(BinOp::Add, {0x00})
      .set(BinOp::Sub, {0x01})
      .set(BinOp::Mul, {0x02})
      .set(BinOp::Div, {0x03});
  return T;
}();

/// Major opcodes for typed loads and stores.
inline constexpr TypeEncTable<OpEnc> MipsLoadTable = [] {
  TypeEncTable<OpEnc> T;
  T.set(Type::C, {0x20})
      .set(Type::UC, {0x24})
      .set(Type::S, {0x21})
      .set(Type::US, {0x25})
      .set(Type::I, {0x23})
      .set(Type::U, {0x23})
      .set(Type::L, {0x23})
      .set(Type::UL, {0x23})
      .set(Type::P, {0x23})
      .set(Type::F, {0x31})
      .set(Type::D, {0x35});
  return T;
}();

inline constexpr TypeEncTable<OpEnc> MipsStoreTable = [] {
  TypeEncTable<OpEnc> T;
  T.set(Type::C, {0x28})
      .set(Type::UC, {0x28})
      .set(Type::S, {0x29})
      .set(Type::US, {0x29})
      .set(Type::I, {0x2b})
      .set(Type::U, {0x2b})
      .set(Type::L, {0x2b})
      .set(Type::UL, {0x2b})
      .set(Type::P, {0x2b})
      .set(Type::F, {0x39})
      .set(Type::D, {0x3d});
  return T;
}();

/// How an integer compare-and-branch synthesizes: either directly as
/// beq/bne on the operands, or as slt/sltu (operands possibly swapped for
/// Gt/Le) feeding bne/beq on the assembler temporary.
struct MipsCmpRow {
  bool UseSlt = false;
  bool Swap = false;
  bool BrNe = false;
  bool Valid = false;

  constexpr MipsCmpRow() = default;
  constexpr MipsCmpRow(bool UseSlt, bool Swap, bool BrNe)
      : UseSlt(UseSlt), Swap(Swap), BrNe(BrNe), Valid(true) {}
};

inline constexpr CondEncTable<MipsCmpRow> MipsIntCmpTable = [] {
  CondEncTable<MipsCmpRow> T;
  T.set(Cond::Eq, {false, false, false})
      .set(Cond::Ne, {false, false, true})
      .set(Cond::Lt, {true, false, true})
      .set(Cond::Ge, {true, false, false})
      .set(Cond::Gt, {true, true, true})
      .set(Cond::Le, {true, true, false});
  return T;
}();

/// FP compare-and-branch: c.cond.fmt funct in A, with Gt/Ge as swapped
/// Lt/Le and Ne as an inverted Eq taken with bc1f.
inline constexpr CondEncTable<CmpEnc> MipsFpCmpTable = [] {
  CondEncTable<CmpEnc> T;
  T.set(Cond::Lt, {0x3c, 0})
      .set(Cond::Le, {0x3e, 0})
      .set(Cond::Gt, {0x3c, 0, /*Swap=*/true})
      .set(Cond::Ge, {0x3e, 0, /*Swap=*/true})
      .set(Cond::Eq, {0x32, 0})
      .set(Cond::Ne, {0x32, 0, false, /*Invert=*/true});
  return T;
}();

/// MIPS32 code generator backend.
class MipsTarget final : public TargetBase<MipsTarget> {
public:
  MipsTarget();

  const TargetInfo &info() const override { return mipsTargetInfo(); }

  // --- Statically dispatched emitters (paper Table 2) ----------------------

  void insBinop(VCode &VC, BinOp Op, Type Ty, Reg Rd, Reg Rs1, Reg Rs2) {
    CodeBuffer &B = VC.buf();
    if (isFpType(Ty)) {
      const OpEnc &E = MipsFpAluTable[Op];
      if (!E.Valid)
        fatalKind(CgErrKind::BadOperand,
            "mips: fp binop '%s' unsupported", binOpName(Op));
      B.put(fpRType(Ty == Type::F ? FMT_S : FMT_D, fpr(Rs2), fpr(Rs1),
                    fpr(Rd), E.Op));
      return;
    }
    bool Unsigned = !isSignedType(Ty);
    unsigned D = gpr(Rd), S = gpr(Rs1), T = gpr(Rs2);
    const MipsAluRow &R = MipsAluTable[Op];
    if (R.Valid) {
      unsigned Fn = Unsigned ? R.FnU : R.FnS;
      B.put(R.Swap ? rType(Fn, T, S, D) : rType(Fn, S, T, D));
      return;
    }
    // Mul/Div/Mod synthesize through the hi/lo registers (two words).
    B.ensureWords(2);
    switch (Op) {
    case BinOp::Mul:
      B.put(Unsigned ? multu(S, T) : mult(S, T));
      B.put(mflo(D));
      return;
    case BinOp::Div:
      B.put(Unsigned ? divu(S, T) : div_(S, T));
      B.put(mflo(D));
      return;
    case BinOp::Mod:
      B.put(Unsigned ? divu(S, T) : div_(S, T));
      B.put(mfhi(D));
      return;
    default:
      break;
    }
    unreachable("bad BinOp");
  }

  void insBinopImm(VCode &VC, BinOp Op, Type Ty, Reg Rd, Reg Rs1,
                   int64_t Imm) {
    if (isFpType(Ty))
      fatalKind(CgErrKind::BadOperand,
          "mips: immediate operands are not allowed for f/d (paper "
            "Table 2)");
    CodeBuffer &B = VC.buf();
    unsigned D = gpr(Rd), S = gpr(Rs1);
    switch (Op) {
    case BinOp::Add:
      if (isInt<16>(Imm)) {
        B.put(addiu(D, S, int32_t(Imm)));
        return;
      }
      break;
    case BinOp::Sub:
      if (isInt<16>(-Imm)) {
        B.put(addiu(D, S, int32_t(-Imm)));
        return;
      }
      break;
    case BinOp::And:
      if (isUInt<16>(uint64_t(Imm))) {
        B.put(andi(D, S, uint32_t(Imm)));
        return;
      }
      break;
    case BinOp::Or:
      if (isUInt<16>(uint64_t(Imm))) {
        B.put(ori(D, S, uint32_t(Imm)));
        return;
      }
      break;
    case BinOp::Xor:
      if (isUInt<16>(uint64_t(Imm))) {
        B.put(xori(D, S, uint32_t(Imm)));
        return;
      }
      break;
    case BinOp::Lsh:
      assert(Imm >= 0 && Imm < 32 && "shift amount out of range");
      B.put(sll(D, S, unsigned(Imm)));
      return;
    case BinOp::Rsh:
      assert(Imm >= 0 && Imm < 32 && "shift amount out of range");
      B.put(isSignedType(Ty) ? sra(D, S, unsigned(Imm))
                             : srl(D, S, unsigned(Imm)));
      return;
    default:
      break;
    }
    // Boundary condition (paper §1: "constants that don't fit in immediate
    // fields"): synthesize through the assembler temporary.
    li(VC, AT, Imm);
    insBinop(VC, Op, Ty, Rd, Rs1, intReg(AT));
  }

  void insUnop(VCode &VC, UnOp Op, Type Ty, Reg Rd, Reg Rs) {
    CodeBuffer &B = VC.buf();
    if (isFpType(Ty)) {
      unsigned Fmt = Ty == Type::F ? FMT_S : FMT_D;
      switch (Op) {
      case UnOp::Mov:
        B.put(fmov(Fmt, fpr(Rd), fpr(Rs)));
        return;
      case UnOp::Neg:
        B.put(fneg(Fmt, fpr(Rd), fpr(Rs)));
        return;
      default:
        fatalKind(CgErrKind::BadOperand,
            "mips: fp unop unsupported");
      }
    }
    unsigned D = gpr(Rd), S = gpr(Rs);
    switch (Op) {
    case UnOp::Com:
      B.put(nor(D, S, ZERO));
      return;
    case UnOp::Not:
      B.put(sltiu(D, S, 1));
      return;
    case UnOp::Mov:
      B.put(addu(D, S, ZERO));
      return;
    case UnOp::Neg:
      B.put(subu(D, ZERO, S));
      return;
    }
    unreachable("bad UnOp");
  }

  void insSetInt(VCode &VC, Type Ty, Reg Rd, uint64_t Imm) {
    (void)Ty;
    li(VC, gpr(Rd), int64_t(int32_t(uint32_t(Imm))));
  }

  void insSetFp(VCode &VC, Type Ty, Reg Rd, double Val) {
    CodeBuffer &B = VC.buf();
    if (Ty == Type::F) {
      // Singles fit a GPR: materialize the bit pattern and move it over.
      uint32_t Bits = std::bit_cast<uint32_t>(float(Val));
      if (Bits == 0) {
        B.put(mtc1(ZERO, fpr(Rd)));
        return;
      }
      li(VC, AT, int64_t(int32_t(Bits)));
      B.put(mtc1(AT, fpr(Rd)));
      return;
    }
    // Doubles come from the per-function constant pool at the end of the
    // instruction stream (paper §5.2).
    Label Pool = VC.constPoolLabel(std::bit_cast<uint64_t>(Val));
    B.ensureWords(3);
    addrOfLabel(VC, AT, Pool);
    B.put(ldc1(fpr(Rd), AT, 0));
  }

  void insCvt(VCode &VC, Type From, Type To, Reg Rd, Reg Rs) {
    CodeBuffer &B = VC.buf();
    // On a 32-bit machine L/UL/P collapse onto I/U (paper Table 1).
    bool FromIntReg = isIntRegType(From);
    bool ToIntReg = isIntRegType(To);
    if (FromIntReg && ToIntReg) {
      if (Rd != Rs)
        B.put(addu(gpr(Rd), gpr(Rs), ZERO));
      return;
    }
    if (FromIntReg && isFpType(To)) {
      bool Uns = From == Type::U || From == Type::UL || From == Type::P;
      if (Uns) {
        unsignedToFp(VC, To == Type::D, Rd, Rs);
        return;
      }
      B.ensureWords(2);
      B.put(mtc1(gpr(Rs), FAT0));
      B.put(To == Type::F ? fcvts(FMT_W, fpr(Rd), FAT0)
                          : fcvtd(FMT_W, fpr(Rd), FAT0));
      return;
    }
    if (isFpType(From) && ToIntReg) {
      unsigned Fmt = From == Type::F ? FMT_S : FMT_D;
      B.ensureWords(2);
      B.put(ftruncw(Fmt, FAT0, fpr(Rs)));
      B.put(mfc1(gpr(Rd), FAT0));
      return;
    }
    if (From == Type::F && To == Type::D) {
      B.put(fcvtd(FMT_S, fpr(Rd), fpr(Rs)));
      return;
    }
    if (From == Type::D && To == Type::F) {
      B.put(fcvts(FMT_D, fpr(Rd), fpr(Rs)));
      return;
    }
    fatalKind(CgErrKind::BadOperand,
        "mips: unsupported conversion %s -> %s", typeName(From),
          typeName(To));
  }

  void insLoad(VCode &VC, Type Ty, Reg Rd, Reg Base, Reg Off) {
    CodeBuffer &B = VC.buf();
    B.ensureWords(2);
    B.put(addu(AT, gpr(Base), gpr(Off)));
    B.put(loadWord(Ty, isFpType(Ty) ? fpr(Rd) : gpr(Rd), AT, 0));
  }

  void insLoadImm(VCode &VC, Type Ty, Reg Rd, Reg Base, int64_t Off) {
    CodeBuffer &B = VC.buf();
    unsigned Rt = isFpType(Ty) ? fpr(Rd) : gpr(Rd);
    if (isInt<16>(Off)) {
      B.put(loadWord(Ty, Rt, gpr(Base), int32_t(Off)));
      return;
    }
    li(VC, AT, Off);
    B.put(addu(AT, AT, gpr(Base)));
    B.put(loadWord(Ty, Rt, AT, 0));
  }

  void insStore(VCode &VC, Type Ty, Reg Val, Reg Base, Reg Off) {
    CodeBuffer &B = VC.buf();
    B.ensureWords(2);
    B.put(addu(AT, gpr(Base), gpr(Off)));
    B.put(storeWord(Ty, isFpType(Ty) ? fpr(Val) : gpr(Val), AT, 0));
  }

  void insStoreImm(VCode &VC, Type Ty, Reg Val, Reg Base, int64_t Off) {
    CodeBuffer &B = VC.buf();
    unsigned Rt = isFpType(Ty) ? fpr(Val) : gpr(Val);
    if (isInt<16>(Off)) {
      B.put(storeWord(Ty, Rt, gpr(Base), int32_t(Off)));
      return;
    }
    li(VC, AT, Off);
    B.put(addu(AT, AT, gpr(Base)));
    B.put(storeWord(Ty, Rt, AT, 0));
  }

  void insBranch(VCode &VC, Cond C, Type Ty, Reg Rs1, Reg Rs2, Label L) {
    if (isFpType(Ty)) {
      fpCompareBranch(VC, C, Ty == Type::F ? FMT_S : FMT_D, fpr(Rs1),
                      fpr(Rs2), L);
      return;
    }
    intCompareBranch(VC, C, !isSignedType(Ty), gpr(Rs1), gpr(Rs2), L);
  }

  void insBranchImm(VCode &VC, Cond C, Type Ty, Reg Rs1, int64_t Imm,
                    Label L) {
    if (isFpType(Ty))
      fatalKind(CgErrKind::BadOperand,
          "mips: fp branches take register operands");
    CodeBuffer &B = VC.buf();
    bool Unsigned = !isSignedType(Ty);
    unsigned A = gpr(Rs1);
    if (Imm == 0 && (C == Cond::Eq || C == Cond::Ne)) {
      VC.addFixup(FixupKind::Branch, L);
      B.put(C == Cond::Eq ? beq(A, ZERO) : bne(A, ZERO));
      delaySlot(VC);
      return;
    }
    if (C == Cond::Lt && !Unsigned && isInt<16>(Imm)) {
      B.put(slti(AT, A, int32_t(Imm)));
      VC.addFixup(FixupKind::Branch, L);
      B.put(bne(AT, ZERO));
      delaySlot(VC);
      return;
    }
    if (C == Cond::Ge && !Unsigned && isInt<16>(Imm)) {
      B.put(slti(AT, A, int32_t(Imm)));
      VC.addFixup(FixupKind::Branch, L);
      B.put(beq(AT, ZERO));
      delaySlot(VC);
      return;
    }
    // General case: materialize into AT; the compare reads AT before any
    // slt writes it, so reuse is safe.
    li(VC, AT, Imm);
    intCompareBranch(VC, C, Unsigned, A, AT, L);
  }

  void insJump(VCode &VC, Label L) {
    VC.addFixup(FixupKind::Jump, L);
    VC.buf().put(j(0));
    delaySlot(VC);
  }

  void insJumpReg(VCode &VC, Reg R) {
    VC.buf().put(jr(gpr(R)));
    delaySlot(VC);
  }

  void insJumpAddr(VCode &VC, SimAddr A) {
    VC.buf().put(j(A));
    delaySlot(VC);
  }

  void insCallAddr(VCode &VC, SimAddr A) {
    VC.buf().put(jal(A));
    delaySlot(VC);
  }

  void insCallLabel(VCode &VC, Label L) {
    if (gpr(VC.cc().LinkReg) != RA)
      fatal("mips: jal-to-label links through ra; substitute conventions "
            "must use callReg");
    VC.addFixup(FixupKind::Call, L);
    VC.buf().put(jal(0));
    delaySlot(VC);
  }

  void insLinkReturn(VCode &VC) {
    VC.buf().put(jr(gpr(VC.cc().LinkReg)));
    delaySlot(VC);
  }

  void insCallReg(VCode &VC, Reg R) {
    VC.buf().put(jalr(gpr(VC.cc().LinkReg), gpr(R)));
    delaySlot(VC);
  }

  void insRet(VCode &VC, Type Ty, Reg Rs) {
    CodeBuffer &B = VC.buf();
    // Optimistically emit a direct return with the result move in the delay
    // slot (exactly the code of the paper's plus1 example). If v_end decides
    // an epilogue is needed, the jr is rewritten into a jump to it; the
    // delay slot still executes either way.
    B.ensureWords(2);
    VC.addFixup(FixupKind::EpilogueJump, VC.epilogueLabel());
    B.put(jr(gpr(VC.cc().LinkReg)));
    if (Ty == Type::V) {
      B.put(nop());
    } else if (isFpType(Ty)) {
      unsigned Ret = fpr(VC.resultReg(Ty));
      if (fpr(Rs) != Ret)
        B.put(fmov(Ty == Type::F ? FMT_S : FMT_D, Ret, fpr(Rs)));
      else
        B.put(nop());
    } else {
      unsigned Ret = gpr(VC.resultReg(Ty));
      if (gpr(Rs) != Ret)
        B.put(addu(Ret, gpr(Rs), ZERO));
      else
        B.put(nop());
    }
  }

  void insRetImm(VCode &VC, Type Ty, int64_t Imm) {
    unsigned Ret = gpr(VC.resultReg(Ty));
    if (!isInt<16>(Imm)) {
      // Too wide for the delay slot: materialize into the result register
      // (the ret then needs no move, so its slot stays a nop).
      insSetInt(VC, Ty, VC.resultReg(Ty), uint64_t(Imm));
      insRet(VC, Ty, VC.resultReg(Ty));
      return;
    }
    CodeBuffer &B = VC.buf();
    B.ensureWords(2);
    VC.addFixup(FixupKind::EpilogueJump, VC.epilogueLabel());
    B.put(jr(gpr(VC.cc().LinkReg)));
    B.put(addiu(Ret, ZERO, int32_t(Imm)));
  }

  void insNop(VCode &VC) { VC.buf().put(nop()); }

  // --- Cold paths (defined in MipsTarget.cpp) ------------------------------

  std::string disassemble(uint32_t Word, SimAddr Pc) const override;

  void beginFunction(VCode &VC) override;
  CodePtr endFunction(VCode &VC) override;
  void applyFixup(VCode &VC, const Fixup &F, SimAddr Target) override;

private:
  // Two FPU scratch registers reserved for synthesis sequences (conversions,
  // constant materialization); excluded from the allocator's candidates.
  static constexpr unsigned FAT0 = 18;
  static constexpr unsigned FAT1 = 16;

  static unsigned gpr(Reg R) {
    assert(R.isInt() && "integer register expected");
    return R.Num;
  }
  static unsigned fpr(Reg R) {
    assert(R.isFp() && "fp register expected");
    return R.Num;
  }

  /// Returns the opcode-applied load/store word for \p Ty.
  static uint32_t loadWord(Type Ty, unsigned Rt, unsigned Base, int32_t Off) {
    const OpEnc &E = MipsLoadTable[Ty];
    if (!E.Valid)
      unreachable("bad load type");
    return iType(E.Op, Base, Rt, uint32_t(Off));
  }
  static uint32_t storeWord(Type Ty, unsigned Rt, unsigned Base, int32_t Off) {
    const OpEnc &E = MipsStoreTable[Ty];
    if (!E.Valid)
      unreachable("bad store type");
    return iType(E.Op, Base, Rt, uint32_t(Off));
  }

  /// Loads a 32-bit constant into \p Rd (1-2 words).
  void li(VCode &VC, unsigned Rd, int64_t Imm) {
    CodeBuffer &B = VC.buf();
    int32_t V = int32_t(Imm);
    if (isInt<16>(V)) {
      B.put(addiu(Rd, ZERO, V));
      return;
    }
    if (isUInt<16>(uint32_t(V))) {
      B.put(ori(Rd, ZERO, uint32_t(V)));
      return;
    }
    B.put(lui(Rd, uint32_t(V) >> 16));
    if (uint32_t(V) & 0xffff)
      B.put(ori(Rd, Rd, uint32_t(V) & 0xffff));
  }

  /// Materializes the (post-linking) absolute address of \p L into \p Rd via
  /// a fixed lui/ori pair completed when labels resolve.
  void addrOfLabel(VCode &VC, unsigned Rd, Label L) {
    CodeBuffer &B = VC.buf();
    VC.addFixup(FixupKind::AddrHi, L);
    B.put(lui(Rd, 0));
    VC.addFixup(FixupKind::AddrLo, L);
    B.put(ori(Rd, Rd, 0));
  }

  /// Emits the delay-slot nop after a branch/jump unless the client is
  /// scheduling the slot (paper §5.3 v_schedule_delay).
  void delaySlot(VCode &VC) {
    if (!VC.suppressDelayNop())
      VC.buf().put(nop());
  }

  void intCompareBranch(VCode &VC, Cond C, bool Unsigned, unsigned A,
                        unsigned B, Label L) {
    CodeBuffer &Buf = VC.buf();
    const MipsCmpRow &R = MipsIntCmpTable[C];
    if (R.UseSlt) {
      unsigned X = R.Swap ? B : A, Y = R.Swap ? A : B;
      Buf.put(Unsigned ? sltu(AT, X, Y) : slt(AT, X, Y));
      VC.addFixup(FixupKind::Branch, L);
      Buf.put(R.BrNe ? bne(AT, ZERO) : beq(AT, ZERO));
    } else {
      VC.addFixup(FixupKind::Branch, L);
      Buf.put(R.BrNe ? bne(A, B) : beq(A, B));
    }
    delaySlot(VC);
  }

  void fpCompareBranch(VCode &VC, Cond C, unsigned Fmt, unsigned A, unsigned B,
                       Label L) {
    CodeBuffer &Buf = VC.buf();
    const CmpEnc &R = MipsFpCmpTable[C];
    unsigned X = R.Swap ? B : A, Y = R.Swap ? A : B;
    Buf.put(fpRType(Fmt, Y, X, 0, R.A));
    VC.addFixup(FixupKind::Branch, L);
    Buf.put(R.Invert ? bc1f() : bc1t());
    delaySlot(VC);
  }

  void unsignedToFp(VCode &VC, bool ToDouble, Reg Rd, Reg Rs);
  void registerMachineInstructions();

};

} // namespace mips

// One shared instantiation of the static-dispatch emission core for this
// backend (defined in MipsTarget.cpp).
extern template class VCodeT<mips::MipsTarget>;

} // namespace vcode

#endif // VCODE_MIPS_MIPSTARGET_H
