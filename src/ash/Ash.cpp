//===- ash/Ash.cpp - Integrated message-data manipulation -------------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "ash/Ash.h"
#include "core/Generate.h"
#include "core/TierStream.h"
#include "core/VRegLayer.h"
#include "support/BitUtils.h"
#include <algorithm>

using namespace vcode;
using namespace vcode::ash;

namespace {

template <typename R> struct LoopRegs {
  R Dst, Src, N, EndMain, EndAll, V, T1, T2, Acc;
};

/// Reverses the bytes of R.V (network byte-order conversion). All masks
/// fit 16-bit immediate fields.
template <typename S> void emitSwap(S &St, LoopRegs<typename S::RegT> &R) {
  St.rshui(R.T1, R.V, 24);
  St.rshui(R.T2, R.V, 8);
  St.andui(R.T2, R.T2, 0xff00);
  St.oru(R.T1, R.T1, R.T2);
  St.andui(R.T2, R.V, 0xff00);
  St.lshui(R.T2, R.T2, 8);
  St.oru(R.T1, R.T1, R.T2);
  St.lshui(R.T2, R.V, 24);
  St.oru(R.V, R.T1, R.T2);
}

/// Accumulates both 16-bit halves of R.V into R.Acc (deferred-fold
/// Internet checksum; safe for buffers up to tens of MB).
template <typename S>
void emitCksumStep(S &St, LoopRegs<typename S::RegT> &R) {
  St.andui(R.T1, R.V, 0xffff);
  St.addu(R.Acc, R.Acc, R.T1);
  St.rshui(R.T1, R.V, 16);
  St.addu(R.Acc, R.Acc, R.T1);
}

/// Folds the deferred sum into 16 bits.
template <typename S>
void emitCksumFold(S &St, LoopRegs<typename S::RegT> &R) {
  for (int I = 0; I < 2; ++I) {
    St.andui(R.T1, R.Acc, 0xffff);
    St.rshui(R.Acc, R.Acc, 16);
    St.addu(R.Acc, R.Acc, R.T1);
  }
}

/// Emits the per-word body at byte offset \p K.
template <typename S>
void emitBody(S &St, LoopRegs<typename S::RegT> &R,
              const std::vector<Step> &Steps, unsigned K, uint32_t XorKey) {
  St.ldui(R.V, R.Src, int64_t(K));
  for (Step S2 : Steps) {
    switch (S2) {
    case Step::Copy:
      St.stui(R.V, R.Dst, int64_t(K));
      break;
    case Step::ByteSwap:
      emitSwap(St, R);
      break;
    case Step::Checksum:
      emitCksumStep(St, R);
      break;
    case Step::Xor:
      // The key is a code-generation-time constant, baked into the
      // instruction stream like DPF's filter constants.
      St.xorui(R.V, R.V, int64_t(XorKey));
      break;
    }
  }
}

/// The whole loop over either tier's stream (see core/TierStream.h).
template <typename S>
void emitLoop(S &St, Reg Arg[3], const std::vector<Step> &Steps,
              unsigned Unroll, bool ScheduleSlots, uint32_t XorKey) {
  LoopRegs<typename S::RegT> R;
  R.Dst = St.fromArg(Type::P, Arg[0]);
  R.Src = St.fromArg(Type::P, Arg[1]);
  R.N = St.fromArg(Type::U, Arg[2]);
  R.EndMain = St.temp(Type::P);
  R.EndAll = St.temp(Type::P);
  R.V = St.temp(Type::U);
  R.T1 = St.temp(Type::U);
  R.T2 = St.temp(Type::U);
  R.Acc = St.temp(Type::U);
  if (!R.Acc.isValid())
    fatalKind(CgErrKind::RegisterPressure, "ash: out of registers");

  bool HasCksum =
      std::find(Steps.begin(), Steps.end(), Step::Checksum) != Steps.end();
  uint32_t IterBytes = 4 * Unroll;

  St.setu(R.Acc, 0);
  St.addp(R.EndAll, R.Src, R.N);
  if (Unroll > 1) {
    St.andui(R.T1, R.N, int64_t(uint32_t(~(IterBytes - 1))));
    St.addp(R.EndMain, R.Src, R.T1);
  } else {
    St.movp(R.EndMain, R.EndAll);
  }

  Label LMain = St.genLabel(), LTail = St.genLabel(), LDone = St.genLabel();

  St.label(LMain);
  St.bgep(R.Src, R.EndMain, LTail);
  for (unsigned K = 0; K < Unroll; ++K)
    emitBody(St, R, Steps, 4 * K, XorKey);
  St.addpi(R.Dst, R.Dst, IterBytes);
  if (ScheduleSlots) {
    St.scheduleDelay([&] { St.jmp(LMain); },
                     [&] { St.addpi(R.Src, R.Src, IterBytes); });
  } else {
    St.addpi(R.Src, R.Src, IterBytes);
    St.jmp(LMain);
  }

  St.label(LTail);
  if (Unroll > 1) {
    St.bgep(R.Src, R.EndAll, LDone);
    emitBody(St, R, Steps, 0, XorKey);
    St.addpi(R.Dst, R.Dst, 4);
    if (ScheduleSlots) {
      St.scheduleDelay([&] { St.jmp(LTail); },
                       [&] { St.addpi(R.Src, R.Src, 4); });
    } else {
      St.addpi(R.Src, R.Src, 4);
      St.jmp(LTail);
    }
  }
  St.label(LDone);
  if (HasCksum)
    emitCksumFold(St, R);
  else
    St.setu(R.Acc, 0);
  St.retu(R.Acc);
  St.finish();
}

} // namespace

/// See Ash.h: one emission attempt of the loop generator into \p CM.
CodePtr vcode::ash::emitLoopInto(VCode &V, CodeMem CM,
                                 const std::vector<Step> &Steps,
                                 unsigned Unroll, bool ScheduleSlots,
                                 uint32_t XorKey, Tier Tr) {
  Reg Arg[3];
  V.lambda("%p%p%u", Arg, LeafHint, CM);
  if (Tr == Tier::Tier1) {
    VRegLayer L(V, Tier::Tier1);
    RecStream St(V, L);
    emitLoop(St, Arg, Steps, Unroll, ScheduleSlots, XorKey);
  } else {
    DirectStream St(V);
    emitLoop(St, Arg, Steps, Unroll, ScheduleSlots, XorKey);
  }
  return V.end();
}

namespace {

/// Generates the loop with generateWithRetry: on buffer overflow the
/// failed region is released and the attempt re-run into a grown one.
CodePtr genLoop(Target &Tgt, sim::Memory &Mem, const std::vector<Step> &Steps,
                unsigned Unroll, bool ScheduleSlots,
                uint32_t XorKey = DefaultXorKey, Tier Tr = Tier::Tier0) {
  VCODE_TM_TICK(TmLoop);
  VCode V(Tgt);
  GenerateOptions Opts;
  Opts.InitialBytes = 16384;
  Opts.GenTier = Tr;
  SimAddr Mark = Mem.mark();
  GenerateResult R = generateWithRetry(
      V,
      [&](size_t N) {
        Mem.release(Mark);
        return Mem.allocCode(N);
      },
      [&](CodeMem CM, Tier T2) {
        return emitLoopInto(V, CM, Steps, Unroll, ScheduleSlots, XorKey, T2);
      },
      Opts);
  if (!R.ok())
    fatalKind(R.Err.Kind, "ash: loop generation failed: %s", R.Err.Detail);
  VCODE_TM_SPAN("ash.genloop", TmLoop);
  VCODE_TM_COUNT("ash.loops", 1);
  return R.Code;
}

} // namespace

uint32_t vcode::ash::refRun(const std::vector<Step> &Steps, sim::Memory &M,
                            SimAddr Dst, SimAddr Src, uint32_t Bytes,
                            uint32_t XorKey) {
  uint32_t Acc = 0;
  bool HasCksum = false;
  for (uint32_t Off = 0; Off < Bytes; Off += 4) {
    uint32_t V = M.read<uint32_t>(Src + Off);
    for (Step S : Steps) {
      switch (S) {
      case Step::Copy:
        M.write<uint32_t>(Dst + Off, V);
        break;
      case Step::ByteSwap:
        V = byteSwap32(V);
        break;
      case Step::Checksum:
        Acc += V & 0xffff;
        Acc += V >> 16;
        HasCksum = true;
        break;
      case Step::Xor:
        V ^= XorKey;
        break;
      }
    }
  }
  if (!HasCksum)
    return 0;
  Acc = (Acc & 0xffff) + (Acc >> 16);
  Acc = (Acc & 0xffff) + (Acc >> 16);
  return Acc;
}

SeparateLoops::SeparateLoops(Target &T, sim::Memory &M,
                             const std::vector<Step> &S, uint32_t XorKey)
    : Steps(S) {
  // One single-purpose routine per layer, as in a modular protocol stack.
  CopyLoop = genLoop(T, M, {Step::Copy}, 1, false);
  SwapLoop = genLoop(T, M, {Step::ByteSwap, Step::Copy}, 1, false);
  CksumLoop = genLoop(T, M, {Step::Checksum}, 1, false);
  XorLoop = genLoop(T, M, {Step::Xor, Step::Copy}, 1, false, XorKey);
}

uint32_t SeparateLoops::run(sim::Cpu &Cpu, SimAddr Dst, SimAddr Src,
                            uint32_t Bytes, uint64_t *TotalCycles) {
  using sim::TypedValue;
  uint64_t Cycles = 0;
  auto Call = [&](CodePtr &C, SimAddr D, SimAddr S) {
    TypedValue R = Cpu.call(C.Entry,
                            {TypedValue::fromPtr(D), TypedValue::fromPtr(S),
                             TypedValue::fromUInt(Bytes)},
                            Type::U);
    Cycles += Cpu.lastStats().Cycles;
    return R.asUInt32();
  };

  // Modular execution: each layer makes its own full pass over the
  // message. copy src -> dst, then swap dst in place, then checksum dst;
  // semantically identical to the fused pipelines for the canonical step
  // orders ({ByteSwap, Copy, Checksum} and {Copy, Checksum}).
  bool HasCopy =
      std::find(Steps.begin(), Steps.end(), Step::Copy) != Steps.end();
  bool HasSwap =
      std::find(Steps.begin(), Steps.end(), Step::ByteSwap) != Steps.end();
  bool HasCksum =
      std::find(Steps.begin(), Steps.end(), Step::Checksum) != Steps.end();
  bool HasXor = std::find(Steps.begin(), Steps.end(), Step::Xor) != Steps.end();
  if (!HasCopy)
    fatal("ash: the separate baseline requires a Copy step");

  // The canonical modular order: swap, then scramble, then copy... each
  // pass runs over the data separately; semantics match the fused loops
  // for step orders that transform before Copy/Checksum.
  uint32_t Cksum = 0;
  Call(CopyLoop, Dst, Src);
  if (HasSwap)
    Call(SwapLoop, Dst, Dst);
  if (HasXor)
    Call(XorLoop, Dst, Dst);
  if (HasCksum)
    Cksum = Call(CksumLoop, Dst, Dst);
  if (TotalCycles)
    *TotalCycles = Cycles;
  return Cksum;
}

IntegratedLoop::IntegratedLoop(Target &T, sim::Memory &M,
                               const std::vector<Step> &Steps,
                               uint32_t XorKey) {
  // Straightforward single-pass loop, compiled-C quality: no unrolling,
  // no delay-slot scheduling.
  Code = genLoop(T, M, Steps, 1, false, XorKey);
}

void Pipeline::compile(unsigned Unroll) {
  if (Steps.empty())
    fatal("ash: empty pipeline");
  Code = genLoop(Tgt, Mem, Steps, Unroll, /*ScheduleSlots=*/true, XorKey,
                 GenTier);
}
