//===- ash/Ash.cpp - Integrated message-data manipulation -------------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "ash/Ash.h"
#include "core/Generate.h"
#include "support/BitUtils.h"
#include <algorithm>

using namespace vcode;
using namespace vcode::ash;

namespace {

struct LoopRegs {
  Reg Dst, Src, N, EndMain, EndAll, V, T1, T2, Acc;
};

/// Reverses the bytes of R.V (network byte-order conversion). All masks
/// fit 16-bit immediate fields.
void emitSwap(VCode &V, LoopRegs &R) {
  V.rshui(R.T1, R.V, 24);
  V.rshui(R.T2, R.V, 8);
  V.andui(R.T2, R.T2, 0xff00);
  V.oru(R.T1, R.T1, R.T2);
  V.andui(R.T2, R.V, 0xff00);
  V.lshui(R.T2, R.T2, 8);
  V.oru(R.T1, R.T1, R.T2);
  V.lshui(R.T2, R.V, 24);
  V.oru(R.V, R.T1, R.T2);
}

/// Accumulates both 16-bit halves of R.V into R.Acc (deferred-fold
/// Internet checksum; safe for buffers up to tens of MB).
void emitCksumStep(VCode &V, LoopRegs &R) {
  V.andui(R.T1, R.V, 0xffff);
  V.addu(R.Acc, R.Acc, R.T1);
  V.rshui(R.T1, R.V, 16);
  V.addu(R.Acc, R.Acc, R.T1);
}

/// Folds the deferred sum into 16 bits.
void emitCksumFold(VCode &V, LoopRegs &R) {
  for (int I = 0; I < 2; ++I) {
    V.andui(R.T1, R.Acc, 0xffff);
    V.rshui(R.Acc, R.Acc, 16);
    V.addu(R.Acc, R.Acc, R.T1);
  }
}

/// Emits the per-word body at byte offset \p K.
void emitBody(VCode &V, LoopRegs &R, const std::vector<Step> &Steps,
              unsigned K, uint32_t XorKey) {
  V.ldui(R.V, R.Src, int64_t(K));
  for (Step S : Steps) {
    switch (S) {
    case Step::Copy:
      V.stui(R.V, R.Dst, int64_t(K));
      break;
    case Step::ByteSwap:
      emitSwap(V, R);
      break;
    case Step::Checksum:
      emitCksumStep(V, R);
      break;
    case Step::Xor:
      // The key is a code-generation-time constant, baked into the
      // instruction stream like DPF's filter constants.
      V.xorui(R.V, R.V, int64_t(XorKey));
      break;
    }
  }
}

} // namespace

/// See Ash.h: one emission attempt of the loop generator into \p CM.
CodePtr vcode::ash::emitLoopInto(VCode &V, CodeMem CM,
                                 const std::vector<Step> &Steps,
                                 unsigned Unroll, bool ScheduleSlots,
                                 uint32_t XorKey) {
  Reg Arg[3];
  V.lambda("%p%p%u", Arg, LeafHint, CM);
  LoopRegs R;
  R.Dst = Arg[0];
  R.Src = Arg[1];
  R.N = Arg[2];
  R.EndMain = V.getreg(Type::P);
  R.EndAll = V.getreg(Type::P);
  R.V = V.getreg(Type::U);
  R.T1 = V.getreg(Type::U);
  R.T2 = V.getreg(Type::U);
  R.Acc = V.getreg(Type::U);
  if (!R.Acc.isValid())
    fatalKind(CgErrKind::RegisterPressure, "ash: out of registers");

  bool HasCksum =
      std::find(Steps.begin(), Steps.end(), Step::Checksum) != Steps.end();
  uint32_t IterBytes = 4 * Unroll;

  V.setu(R.Acc, 0);
  V.addp(R.EndAll, R.Src, R.N);
  if (Unroll > 1) {
    V.andui(R.T1, R.N, int64_t(uint32_t(~(IterBytes - 1))));
    V.addp(R.EndMain, R.Src, R.T1);
  } else {
    V.movp(R.EndMain, R.EndAll);
  }

  Label LMain = V.genLabel(), LTail = V.genLabel(), LDone = V.genLabel();

  V.label(LMain);
  V.bgep(R.Src, R.EndMain, LTail);
  for (unsigned K = 0; K < Unroll; ++K)
    emitBody(V, R, Steps, 4 * K, XorKey);
  V.addpi(R.Dst, R.Dst, IterBytes);
  if (ScheduleSlots) {
    V.scheduleDelay([&] { V.jmp(LMain); },
                    [&] { V.addpi(R.Src, R.Src, IterBytes); });
  } else {
    V.addpi(R.Src, R.Src, IterBytes);
    V.jmp(LMain);
  }

  V.label(LTail);
  if (Unroll > 1) {
    V.bgep(R.Src, R.EndAll, LDone);
    emitBody(V, R, Steps, 0, XorKey);
    V.addpi(R.Dst, R.Dst, 4);
    if (ScheduleSlots) {
      V.scheduleDelay([&] { V.jmp(LTail); },
                      [&] { V.addpi(R.Src, R.Src, 4); });
    } else {
      V.addpi(R.Src, R.Src, 4);
      V.jmp(LTail);
    }
  }
  V.label(LDone);
  if (HasCksum)
    emitCksumFold(V, R);
  else
    V.setu(R.Acc, 0);
  V.retu(R.Acc);
  return V.end();
}

namespace {

/// Generates the loop with generateWithRetry: on buffer overflow the
/// failed region is released and the attempt re-run into a grown one.
CodePtr genLoop(Target &Tgt, sim::Memory &Mem, const std::vector<Step> &Steps,
                unsigned Unroll, bool ScheduleSlots,
                uint32_t XorKey = DefaultXorKey) {
  VCODE_TM_TICK(TmLoop);
  VCode V(Tgt);
  GenerateOptions Opts;
  Opts.InitialBytes = 16384;
  SimAddr Mark = Mem.mark();
  GenerateResult R = generateWithRetry(
      V,
      [&](size_t N) {
        Mem.release(Mark);
        return Mem.allocCode(N);
      },
      [&](CodeMem CM) {
        return emitLoopInto(V, CM, Steps, Unroll, ScheduleSlots, XorKey);
      },
      Opts);
  if (!R.ok())
    fatalKind(R.Err.Kind, "ash: loop generation failed: %s", R.Err.Detail);
  VCODE_TM_SPAN("ash.genloop", TmLoop);
  VCODE_TM_COUNT("ash.loops", 1);
  return R.Code;
}

} // namespace

uint32_t vcode::ash::refRun(const std::vector<Step> &Steps, sim::Memory &M,
                            SimAddr Dst, SimAddr Src, uint32_t Bytes,
                            uint32_t XorKey) {
  uint32_t Acc = 0;
  bool HasCksum = false;
  for (uint32_t Off = 0; Off < Bytes; Off += 4) {
    uint32_t V = M.read<uint32_t>(Src + Off);
    for (Step S : Steps) {
      switch (S) {
      case Step::Copy:
        M.write<uint32_t>(Dst + Off, V);
        break;
      case Step::ByteSwap:
        V = byteSwap32(V);
        break;
      case Step::Checksum:
        Acc += V & 0xffff;
        Acc += V >> 16;
        HasCksum = true;
        break;
      case Step::Xor:
        V ^= XorKey;
        break;
      }
    }
  }
  if (!HasCksum)
    return 0;
  Acc = (Acc & 0xffff) + (Acc >> 16);
  Acc = (Acc & 0xffff) + (Acc >> 16);
  return Acc;
}

SeparateLoops::SeparateLoops(Target &T, sim::Memory &M,
                             const std::vector<Step> &S, uint32_t XorKey)
    : Steps(S) {
  // One single-purpose routine per layer, as in a modular protocol stack.
  CopyLoop = genLoop(T, M, {Step::Copy}, 1, false);
  SwapLoop = genLoop(T, M, {Step::ByteSwap, Step::Copy}, 1, false);
  CksumLoop = genLoop(T, M, {Step::Checksum}, 1, false);
  XorLoop = genLoop(T, M, {Step::Xor, Step::Copy}, 1, false, XorKey);
}

uint32_t SeparateLoops::run(sim::Cpu &Cpu, SimAddr Dst, SimAddr Src,
                            uint32_t Bytes, uint64_t *TotalCycles) {
  using sim::TypedValue;
  uint64_t Cycles = 0;
  auto Call = [&](CodePtr &C, SimAddr D, SimAddr S) {
    TypedValue R = Cpu.call(C.Entry,
                            {TypedValue::fromPtr(D), TypedValue::fromPtr(S),
                             TypedValue::fromUInt(Bytes)},
                            Type::U);
    Cycles += Cpu.lastStats().Cycles;
    return R.asUInt32();
  };

  // Modular execution: each layer makes its own full pass over the
  // message. copy src -> dst, then swap dst in place, then checksum dst;
  // semantically identical to the fused pipelines for the canonical step
  // orders ({ByteSwap, Copy, Checksum} and {Copy, Checksum}).
  bool HasCopy =
      std::find(Steps.begin(), Steps.end(), Step::Copy) != Steps.end();
  bool HasSwap =
      std::find(Steps.begin(), Steps.end(), Step::ByteSwap) != Steps.end();
  bool HasCksum =
      std::find(Steps.begin(), Steps.end(), Step::Checksum) != Steps.end();
  bool HasXor = std::find(Steps.begin(), Steps.end(), Step::Xor) != Steps.end();
  if (!HasCopy)
    fatal("ash: the separate baseline requires a Copy step");

  // The canonical modular order: swap, then scramble, then copy... each
  // pass runs over the data separately; semantics match the fused loops
  // for step orders that transform before Copy/Checksum.
  uint32_t Cksum = 0;
  Call(CopyLoop, Dst, Src);
  if (HasSwap)
    Call(SwapLoop, Dst, Dst);
  if (HasXor)
    Call(XorLoop, Dst, Dst);
  if (HasCksum)
    Cksum = Call(CksumLoop, Dst, Dst);
  if (TotalCycles)
    *TotalCycles = Cycles;
  return Cksum;
}

IntegratedLoop::IntegratedLoop(Target &T, sim::Memory &M,
                               const std::vector<Step> &Steps,
                               uint32_t XorKey) {
  // Straightforward single-pass loop, compiled-C quality: no unrolling,
  // no delay-slot scheduling.
  Code = genLoop(T, M, Steps, 1, false, XorKey);
}

void Pipeline::compile(unsigned Unroll) {
  if (Steps.empty())
    fatal("ash: empty pipeline");
  Code = genLoop(Tgt, Mem, Steps, Unroll, /*ScheduleSlots=*/true, XorKey);
}
