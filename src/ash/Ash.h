//===- ash/Ash.h - Integrated message-data manipulation ---------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ASH data-manipulation subsystem of paper §4.3 (Table 4). Network
/// protocol layers each want a data-touching pass over the message (copy,
/// checksum, byte swap); performed separately they touch memory multiple
/// times, "stressing the weak link in modern workstations, the memory
/// subsystem." ASH uses VCODE "to compose multiple data processing steps
/// dynamically into a single specialized data copying loop generated at
/// runtime."
///
/// Three implementations, all executing as machine code on the ISA
/// simulator:
///
///  - SeparateLoops: one single-purpose loop per step, run back to back
///    (the modular baseline; its "uncached" variant flushes first).
///  - IntegratedLoop: a hand-integrated single-pass loop of static-compiler
///    quality (the "C" rows of Table 4).
///  - Pipeline: the ASH engine — steps registered as modular pieces and
///    compiled into one unrolled, delay-slot-scheduled pass.
///
/// All variants compute the same function: copy src to dst word by word,
/// optionally byte-swapping each word, and return the 16-bit ones'-
/// complement (Internet) checksum of the data as stored.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_ASH_ASH_H
#define VCODE_ASH_ASH_H

#include "core/Tier.h"
#include "core/VCode.h"
#include "sim/Cpu.h"
#include "sim/Memory.h"

namespace vcode {
namespace ash {

/// A modular data-manipulation step.
enum class Step : uint8_t {
  Copy,     ///< store the (possibly transformed) word to the destination
  Checksum, ///< accumulate the Internet checksum of the current word
  ByteSwap, ///< reverse the bytes of the current word
  Xor,      ///< XOR the word with a key (a stand-in crypto/scramble layer;
            ///< the key is a runtime constant encoded into the generated
            ///< instructions, DPF-style)
};

/// Key used by Step::Xor (see refRun / the generators).
inline constexpr uint32_t DefaultXorKey = 0x5aa51c3bu;

/// Host-side reference implementation (for tests): applies the steps to
/// the buffer and returns the folded checksum (0 when Checksum absent).
uint32_t refRun(const std::vector<Step> &Steps, sim::Memory &M, SimAddr Dst,
                SimAddr Src, uint32_t Bytes, uint32_t XorKey = DefaultXorKey);

/// One emission attempt of the §4.3 loop generator into caller-provided
/// code memory: `u32 f(char *dst, const char *src, u32 nbytes)` applying
/// \p Steps to every word, unrolled \p Unroll times, with optional
/// delay-slot scheduling. Re-runnable with a fresh region, so retry
/// drivers and fault-injection tests can call it directly; the pipeline
/// classes below wrap it in generateWithRetry. At Tier-1 the body is
/// recorded as vreg IR and replayed through linear-scan allocation with
/// the optimizing emitters (core/Tier.h); Tier-0 emits in place,
/// byte-identical to the historical generator.
CodePtr emitLoopInto(VCode &V, CodeMem CM, const std::vector<Step> &Steps,
                     unsigned Unroll, bool ScheduleSlots, uint32_t XorKey,
                     Tier Tr);
inline CodePtr emitLoopInto(VCode &V, CodeMem CM,
                            const std::vector<Step> &Steps, unsigned Unroll,
                            bool ScheduleSlots,
                            uint32_t XorKey = DefaultXorKey) {
  return emitLoopInto(V, CM, Steps, Unroll, ScheduleSlots, XorKey,
                      Tier::Tier0);
}

/// Common harness for generated message-data routines:
/// u32 f(char *dst, const char *src, u32 nbytes), nbytes % 4 == 0.
class Routine {
public:
  uint32_t run(sim::Cpu &Cpu, SimAddr Dst, SimAddr Src, uint32_t Bytes) {
    return Cpu
        .call(Code.Entry,
              {sim::TypedValue::fromPtr(Dst), sim::TypedValue::fromPtr(Src),
               sim::TypedValue::fromUInt(Bytes)},
              Type::U)
        .asUInt32();
  }
  SimAddr entry() const { return Code.Entry; }

protected:
  CodePtr Code;
};

/// The modular baseline: one loop per step, run sequentially (each loop is
/// its own generated routine; run() invokes them back to back, touching
/// the data once per step).
class SeparateLoops {
public:
  SeparateLoops(Target &T, sim::Memory &M, const std::vector<Step> &Steps,
                uint32_t XorKey = DefaultXorKey);

  /// Runs all passes; returns the checksum (0 when no Checksum step).
  /// Accumulates simulated cycles of all passes into \p TotalCycles.
  uint32_t run(sim::Cpu &Cpu, SimAddr Dst, SimAddr Src, uint32_t Bytes,
               uint64_t *TotalCycles = nullptr);

private:
  std::vector<Step> Steps;
  CodePtr CopyLoop, SwapLoop, CksumLoop, XorLoop;
};

/// The hand-integrated single-pass loop ("C integrated" rows): fixed,
/// straight-line-compiled quality, no specialization or unrolling.
class IntegratedLoop : public Routine {
public:
  IntegratedLoop(Target &T, sim::Memory &M, const std::vector<Step> &Steps,
                 uint32_t XorKey = DefaultXorKey);
};

/// The ASH engine: modular steps dynamically composed into one unrolled,
/// delay-slot-scheduled loop at runtime.
class Pipeline : public Routine {
public:
  Pipeline(Target &T, sim::Memory &M) : Tgt(T), Mem(M) {}

  /// Registers the next step of the pipeline (modular composition).
  void addStep(Step S) { Steps.push_back(S); }

  /// Key for any Step::Xor in the pipeline (compiled into the code).
  void setXorKey(uint32_t K) { XorKey = K; }

  /// Generation tier for compile(). Defaults to defaultTier()
  /// (VCODE_TIER env); the interpreter baselines stay Tier-0.
  void setTier(Tier T) { GenTier = T; }
  Tier tier() const { return GenTier; }

  /// Compiles the composed pipeline, unrolled \p Unroll times.
  void compile(unsigned Unroll = 4);

private:
  Target &Tgt;
  sim::Memory &Mem;
  std::vector<Step> Steps;
  uint32_t XorKey = DefaultXorKey;
  Tier GenTier = defaultTier();
};

} // namespace ash
} // namespace vcode

#endif // VCODE_ASH_ASH_H
