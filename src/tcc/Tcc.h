//===- tcc/Tcc.h - tcc-lite: a compiler targeting VCODE ---------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// tcc-lite: a small C-like language compiled through the VCODE API,
/// standing in for the paper's `tcc` (§4.1), the lcc-based \`C compiler
/// that "uses VCODE as an abstract machine to generate code dynamically".
/// Like tcc, it demonstrates the §4.1 claims: "compiling to VCODE has been
/// easier than compiling to more traditional RISC architectures ... due
/// both to the regularity of the VCODE instruction set and to the fact
/// that VCODE handles calling conventions", and the same front-end runs
/// unchanged on every ported target.
///
/// The language: integer functions with parameters, `var` declarations,
/// assignment, `if`/`else`, `while`, `return`, calls (including recursion
/// and forward references, resolved through a function table), and the
/// usual C operators with short-circuit && and ||.
///
///   gcd(a, b) { while (b != 0) { var t = b; b = a % b; a = t; } return a; }
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_TCC_TCC_H
#define VCODE_TCC_TCC_H

#include "core/CodeCache.h"
#include "core/VCode.h"
#include "sim/Cpu.h"
#include "sim/Memory.h"
#include <map>
#include <string>
#include <vector>

namespace vcode {
namespace tcc {

/// The tcc-lite compilation context: owns the function table through which
/// compiled functions call each other (which is how recursion and forward
/// references work before an entry address is known).
class Tcc {
public:
  Tcc(Target &T, sim::Memory &M) : Tgt(T), Mem(M) {}

  /// Enables the §6.2 peephole layer for subsequently compiled functions
  /// ("trade runtime compilation overhead for better generated code").
  void setOptimize(bool On) { Optimize = On; }

  /// Generation tier for subsequent compiles (core/Tier.h). tcc-lite's
  /// Tier-1 pipeline is the optimizing one: the peephole layer runs
  /// unconditionally (equivalent to setOptimize(true)) and results are
  /// stamped Tier-1 so cache promotion can tell the versions apart.
  /// Defaults to defaultTier() (VCODE_TIER env).
  void setTier(Tier T) { GenTier = T; }
  Tier tier() const { return GenTier; }

  /// Enables hot-function promotion for compileShared() functions: once
  /// a shared function has run \p N times through run() (counted across
  /// every Tcc pinning the cache entry), the caller that crosses the
  /// threshold recompiles it at Tier-1, the cache swaps the version
  /// under any concurrent pinned callers, and this instance's function
  /// table is re-patched to the promoted entry. 0 (default) disables.
  void setHotThreshold(uint64_t N) { HotThreshold = N; }
  uint64_t hotThreshold() const { return HotThreshold; }

  /// Sets the code-region size for the next compile's first attempt; on
  /// overflow compile() retries into a geometrically grown region.
  void setInitialCodeBytes(size_t N) { InitialCodeBytes = N; }
  /// Emission attempts the last compile needed (1 when the initial
  /// region sufficed).
  unsigned compileAttempts() const { return Attempts; }
  /// Code-region size of the last compile's successful attempt.
  size_t regionBytes() const { return RegionBytes; }

  /// Compiles one function definition, e.g. "inc(x) { return x + 1; }",
  /// registers it under its name, and returns its code handle. Fatal
  /// error (with line number) on syntax errors; code regions too small
  /// for the program are grown and retried (the function-table slots
  /// created during failed attempts persist, so those regions are leaked
  /// rather than released — bounded by the geometric growth).
  CodePtr compile(const std::string &Source);

  /// One emission attempt into caller-provided code memory. With \p Err
  /// null this is compile() without the retry loop (errors are fatal
  /// under the default policy). With \p Err non-null the attempt runs in
  /// recovery mode: on failure the error is stored there, an invalid
  /// CodePtr returns, and the function is not registered.
  CodePtr compileInto(const std::string &Source, CodeMem CM,
                      CgError *Err = nullptr);

  /// Cache-backed compile: identical (target, optimize, source) requests
  /// from any Tcc instance over the same arena share one generation; the
  /// first caller compiles, concurrent same-source callers block and
  /// reuse, distinct sources compile in parallel. The function is
  /// registered in *this* instance's table either way, and the cached
  /// code is pinned for the lifetime of this Tcc. Cached code freezes
  /// the callee bindings (function-table slots) of the instance that
  /// generated it, so share only self-contained functions: leaf code or
  /// self-recursion is always safe; calls into other functions resolve
  /// through the generator's table. \p Cache must be built over this
  /// Tcc's sim::Memory. Returns the code handle.
  CodePtr compileShared(CodeCache &Cache, const std::string &Source);

  /// Entry address of a compiled function; fatal if unknown.
  SimAddr lookup(const std::string &Name) const;

  /// Number of parameters of a compiled function.
  unsigned arity(const std::string &Name) const;

  /// Convenience: run a compiled function on \p Cpu.
  int32_t run(sim::Cpu &Cpu, const std::string &Name,
              const std::vector<int32_t> &Args);

private:
  /// compileShared() provenance, kept per function so run() can count
  /// executions and promote hot functions.
  struct SharedInfo {
    CodeCache *Cache = nullptr;
    std::string Key;
    std::string Source;
    CodeCache::Handle H;
  };

  /// Slot in the function table for \p Name (created on demand).
  SimAddr slotFor(const std::string &Name);
  /// Registers a successfully generated function under \p Name.
  void registerFn(const std::string &Name, unsigned Arity, CodePtr Code);
  /// Whether the peephole layer runs for the configured tier.
  bool effectiveOptimize() const {
    return Optimize || GenTier == Tier::Tier1;
  }
  /// Recompiles \p Name at Tier-1 and swaps the cached version; true
  /// when this call performed the swap (then the table is re-patched).
  bool promoteShared(const std::string &Name, SharedInfo &SI);

  Target &Tgt;
  sim::Memory &Mem;
  bool Optimize = false;
  Tier GenTier = defaultTier();
  uint64_t HotThreshold = 0;
  size_t InitialCodeBytes = 32768;
  unsigned Attempts = 0;
  size_t RegionBytes = 0;
  struct FnInfo {
    SimAddr Slot = 0;     ///< function-table slot holding the entry
    SimAddr Entry = 0;    ///< 0 until defined
    unsigned Arity = 0;
    bool Defined = false;
  };
  std::map<std::string, FnInfo> Functions;
  /// Pins on shared compiled functions (compileShared), so cache
  /// eviction cannot free code this instance's table still points at.
  std::vector<CodeCache::Handle> SharedPins;
  /// Per-function shared-compile provenance for tiered promotion.
  std::map<std::string, SharedInfo> Shared;
};

} // namespace tcc
} // namespace vcode

#endif // VCODE_TCC_TCC_H
