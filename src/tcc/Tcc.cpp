//===- tcc/Tcc.cpp - tcc-lite: a compiler targeting VCODE -------------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "tcc/Tcc.h"
#include "core/Generate.h"
#include "core/Peephole.h"
#include "support/Error.h"
#include <cctype>
#include <memory>
#include <vector>

using namespace vcode;
using namespace vcode::tcc;

namespace {

// --- Lexer -------------------------------------------------------------------

struct Token {
  enum KindType { Ident, Number, Punct, End } Kind = End;
  std::string Text;
  int64_t Value = 0;
  unsigned Line = 1;
};

class Lexer {
public:
  explicit Lexer(const std::string &Source) : Src(&Source) { advance(); }

  const Token &cur() const { return Cur; }

  void advance() {
    skipSpace();
    Cur.Line = Line;
    if (Pos >= Src->size()) {
      Cur.Kind = Token::End;
      Cur.Text.clear();
      return;
    }
    char C = (*Src)[Pos];
    if (std::isalpha(uint8_t(C)) || C == '_') {
      size_t Start = Pos;
      while (Pos < Src->size() &&
             (std::isalnum(uint8_t((*Src)[Pos])) || (*Src)[Pos] == '_'))
        ++Pos;
      Cur.Kind = Token::Ident;
      Cur.Text = Src->substr(Start, Pos - Start);
      return;
    }
    if (std::isdigit(uint8_t(C))) {
      size_t Start = Pos;
      int Base = 10;
      if (C == '0' && Pos + 1 < Src->size() &&
          ((*Src)[Pos + 1] == 'x' || (*Src)[Pos + 1] == 'X')) {
        Base = 16;
        Pos += 2;
        Start = Pos;
      }
      while (Pos < Src->size() && std::isalnum(uint8_t((*Src)[Pos])))
        ++Pos;
      Cur.Kind = Token::Number;
      Cur.Text = Src->substr(Start, Pos - Start);
      Cur.Value = std::strtoll(Cur.Text.c_str(), nullptr, Base);
      return;
    }
    // Multi-character punctuation first.
    static const char *Multi[] = {"==", "!=", "<=", ">=", "&&", "||"};
    for (const char *M : Multi) {
      if (Src->compare(Pos, 2, M) == 0) {
        Cur.Kind = Token::Punct;
        Cur.Text = M;
        Pos += 2;
        return;
      }
    }
    Cur.Kind = Token::Punct;
    Cur.Text = std::string(1, C);
    ++Pos;
  }

private:
  void skipSpace() {
    for (;;) {
      while (Pos < Src->size() && std::isspace(uint8_t((*Src)[Pos]))) {
        if ((*Src)[Pos] == '\n')
          ++Line;
        ++Pos;
      }
      // '//' comments
      if (Pos + 1 < Src->size() && (*Src)[Pos] == '/' &&
          (*Src)[Pos + 1] == '/') {
        while (Pos < Src->size() && (*Src)[Pos] != '\n')
          ++Pos;
        continue;
      }
      return;
    }
  }

  const std::string *Src;
  size_t Pos = 0;
  unsigned Line = 1;
  Token Cur;
};

// --- AST ---------------------------------------------------------------------

enum class EOp {
  Add, Sub, Mul, Div, Mod,
  Eq, Ne, Lt, Le, Gt, Ge,
  LogAnd, LogOr, LogNot, Neg,
};

struct Expr {
  enum KindType { Num, Var, Op, Call } Kind = Num;
  int64_t Value = 0;
  std::string Name;
  EOp Operation = EOp::Add;
  std::vector<std::unique_ptr<Expr>> Kids;
  unsigned Line = 0;
};

struct Stmt {
  enum KindType { Block, VarDecl, Assign, If, While, Return, ExprStmt } Kind =
      Block;
  std::string Name;
  std::unique_ptr<Expr> E;
  std::vector<std::unique_ptr<Stmt>> Kids; // Block: all; If: then[, else];
                                           // While: body
  unsigned Line = 0;
};

struct FunctionAst {
  std::string Name;
  std::vector<std::string> Params;
  std::unique_ptr<Stmt> Body;
  bool HasCalls = false;
};

// --- Parser ------------------------------------------------------------------

class Parser {
public:
  explicit Parser(const std::string &Src) : Lex(Src) {}

  FunctionAst parseFunction() {
    FunctionAst F;
    F.Name = expectIdent("function name");
    expectPunct("(");
    if (!isPunct(")")) {
      for (;;) {
        F.Params.push_back(expectIdent("parameter name"));
        if (!isPunct(","))
          break;
        Lex.advance();
      }
    }
    expectPunct(")");
    F.Body = parseBlock();
    if (Lex.cur().Kind != Token::End)
      err("trailing tokens after function body");
    F.HasCalls = HasCalls;
    return F;
  }

private:
  [[noreturn]] void err(const char *Msg) {
    fatal("tcc: line %u: %s (near '%s')", Lex.cur().Line, Msg,
          Lex.cur().Text.c_str());
  }

  bool isPunct(const char *P) {
    return Lex.cur().Kind == Token::Punct && Lex.cur().Text == P;
  }
  bool isIdent(const char *K) {
    return Lex.cur().Kind == Token::Ident && Lex.cur().Text == K;
  }
  void expectPunct(const char *P) {
    if (!isPunct(P))
      err(P[0] == ';' ? "expected ';'" : "unexpected token");
    Lex.advance();
  }
  std::string expectIdent(const char *What) {
    if (Lex.cur().Kind != Token::Ident)
      err(What);
    std::string S = Lex.cur().Text;
    Lex.advance();
    return S;
  }

  std::unique_ptr<Stmt> parseBlock() {
    expectPunct("{");
    auto B = std::make_unique<Stmt>();
    B->Kind = Stmt::Block;
    B->Line = Lex.cur().Line;
    while (!isPunct("}"))
      B->Kids.push_back(parseStmt());
    Lex.advance();
    return B;
  }

  std::unique_ptr<Stmt> parseStmt() {
    unsigned Line = Lex.cur().Line;
    if (isPunct("{"))
      return parseBlock();
    auto S = std::make_unique<Stmt>();
    S->Line = Line;
    if (isIdent("var")) {
      Lex.advance();
      S->Kind = Stmt::VarDecl;
      S->Name = expectIdent("variable name");
      if (isPunct("=")) {
        Lex.advance();
        S->E = parseExpr();
      }
      expectPunct(";");
      return S;
    }
    if (isIdent("if")) {
      Lex.advance();
      S->Kind = Stmt::If;
      expectPunct("(");
      S->E = parseExpr();
      expectPunct(")");
      S->Kids.push_back(parseStmt());
      if (isIdent("else")) {
        Lex.advance();
        S->Kids.push_back(parseStmt());
      }
      return S;
    }
    if (isIdent("while")) {
      Lex.advance();
      S->Kind = Stmt::While;
      expectPunct("(");
      S->E = parseExpr();
      expectPunct(")");
      S->Kids.push_back(parseStmt());
      return S;
    }
    if (isIdent("return")) {
      Lex.advance();
      S->Kind = Stmt::Return;
      if (!isPunct(";"))
        S->E = parseExpr();
      expectPunct(";");
      return S;
    }
    // assignment or expression statement
    if (Lex.cur().Kind == Token::Ident) {
      // Look ahead: ident '=' (but not '==') means assignment.
      std::string Name = Lex.cur().Text;
      Lexer Save = Lex; // cheap copy: lexer state is small
      Lex.advance();
      if (isPunct("=")) {
        Lex.advance();
        S->Kind = Stmt::Assign;
        S->Name = Name;
        S->E = parseExpr();
        expectPunct(";");
        return S;
      }
      Lex = Save;
    }
    S->Kind = Stmt::ExprStmt;
    S->E = parseExpr();
    expectPunct(";");
    return S;
  }

  std::unique_ptr<Expr> parseExpr() { return parseBinary(0); }

  struct OpInfo {
    const char *Text;
    EOp Operation;
    int Prec;
  };

  const OpInfo *matchBinary() {
    static const OpInfo Ops[] = {
        {"||", EOp::LogOr, 1},  {"&&", EOp::LogAnd, 2},
        {"==", EOp::Eq, 3},     {"!=", EOp::Ne, 3},
        {"<", EOp::Lt, 4},      {"<=", EOp::Le, 4},
        {">", EOp::Gt, 4},      {">=", EOp::Ge, 4},
        {"+", EOp::Add, 5},     {"-", EOp::Sub, 5},
        {"*", EOp::Mul, 6},     {"/", EOp::Div, 6},
        {"%", EOp::Mod, 6},
    };
    if (Lex.cur().Kind != Token::Punct)
      return nullptr;
    for (const OpInfo &O : Ops)
      if (Lex.cur().Text == O.Text)
        return &O;
    return nullptr;
  }

  std::unique_ptr<Expr> parseBinary(int MinPrec) {
    auto L = parseUnary();
    for (;;) {
      const OpInfo *O = matchBinary();
      if (!O || O->Prec < MinPrec)
        return L;
      Lex.advance();
      auto R = parseBinary(O->Prec + 1);
      auto N = std::make_unique<Expr>();
      N->Kind = Expr::Op;
      N->Operation = O->Operation;
      N->Kids.push_back(std::move(L));
      N->Kids.push_back(std::move(R));
      L = std::move(N);
    }
  }

  std::unique_ptr<Expr> parseUnary() {
    if (isPunct("-") || isPunct("!")) {
      bool Not = Lex.cur().Text == "!";
      Lex.advance();
      auto N = std::make_unique<Expr>();
      N->Kind = Expr::Op;
      N->Operation = Not ? EOp::LogNot : EOp::Neg;
      N->Kids.push_back(parseUnary());
      return N;
    }
    return parsePrimary();
  }

  std::unique_ptr<Expr> parsePrimary() {
    auto N = std::make_unique<Expr>();
    N->Line = Lex.cur().Line;
    if (Lex.cur().Kind == Token::Number) {
      N->Kind = Expr::Num;
      N->Value = Lex.cur().Value;
      Lex.advance();
      return N;
    }
    if (isPunct("(")) {
      Lex.advance();
      auto E = parseExpr();
      expectPunct(")");
      return E;
    }
    if (Lex.cur().Kind == Token::Ident) {
      std::string Name = Lex.cur().Text;
      Lex.advance();
      if (isPunct("(")) {
        Lex.advance();
        N->Kind = Expr::Call;
        N->Name = Name;
        HasCalls = true;
        if (!isPunct(")")) {
          for (;;) {
            N->Kids.push_back(parseExpr());
            if (!isPunct(","))
              break;
            Lex.advance();
          }
        }
        expectPunct(")");
        return N;
      }
      N->Kind = Expr::Var;
      N->Name = Name;
      return N;
    }
    err("expected expression");
  }

  Lexer Lex;
  bool HasCalls = false;
};

// --- Code generation -----------------------------------------------------------

class CodeGen {
public:
  CodeGen(Target &Tgt, sim::Memory &Mem, bool Optimize,
          std::function<SimAddr(const std::string &)> Resolve)
      : V(Tgt), PH(V, Optimize), Mem(Mem), Resolve(std::move(Resolve)) {}

  VCode &vcode() { return V; }

  /// One emission attempt into \p CM. Re-runnable: per-attempt state (the
  /// symbol table and the peephole window) is reset up front, so compile()
  /// can call it again with a larger region after an overflow.
  CodePtr generateInto(const FunctionAst &F, CodeMem CM) {
    Vars.clear();
    PH.discard();
    std::string Sig;
    for (size_t I = 0; I < F.Params.size(); ++I)
      Sig += "%i";
    if (F.Params.empty())
      Sig = "%v";
    NonLeaf = F.HasCalls;
    std::vector<Reg> ArgRegs(F.Params.size() + 1);
    V.lambda(Sig.c_str(), ArgRegs.data(), !F.HasCalls, CM);

    // Parameters become locals: simple and safe for a front-end this
    // small — VCODE's low-level interface would let a smarter compiler
    // keep them in registers (paper §3.1).
    for (size_t I = 0; I < F.Params.size(); ++I) {
      Local L = V.localVar(Type::I);
      if (!Vars.emplace(F.Params[I], L).second)
        fatal("tcc: duplicate parameter '%s'", F.Params[I].c_str());
      PH.storeImm(Type::I, ArgRegs[I], V.spReg(), L.Off);
    }

    genStmt(*F.Body);
    // Implicit `return 0` at the end.
    Reg R = get();
    PH.setInt(Type::I, R, 0);
    PH.ret(Type::I, R);
    V.putreg(R);
    PH.flush();
    return V.end();
  }

private:
  Reg get() {
    // In a non-leaf function every expression temporary may have to live
    // across a call, so allocate from the persistent class (paper §3.2's
    // Var registers); VCODE saves exactly the ones used.
    Reg R = V.getreg(Type::I, NonLeaf ? RegClass::Var : RegClass::Temp);
    if (!R.isValid())
      fatalKind(CgErrKind::RegisterPressure,
                "tcc: expression too complex (out of registers)");
    return R;
  }

  Local lookupVar(const std::string &Name, unsigned Line) {
    auto It = Vars.find(Name);
    if (It == Vars.end())
      fatal("tcc: line %u: undefined variable '%s'", Line, Name.c_str());
    return It->second;
  }

  void genStmt(const Stmt &S) {
    switch (S.Kind) {
    case Stmt::Block:
      for (const auto &K : S.Kids)
        genStmt(*K);
      return;
    case Stmt::VarDecl: {
      if (Vars.count(S.Name))
        fatal("tcc: line %u: duplicate variable '%s'", S.Line,
              S.Name.c_str());
      Local L = V.localVar(Type::I);
      Vars.emplace(S.Name, L);
      if (S.E) {
        Reg R = genExpr(*S.E);
        PH.storeImm(Type::I, R, V.spReg(), L.Off);
        V.putreg(R);
      }
      return;
    }
    case Stmt::Assign: {
      Local L = lookupVar(S.Name, S.Line);
      Reg R = genExpr(*S.E);
      PH.storeImm(Type::I, R, V.spReg(), L.Off);
      V.putreg(R);
      return;
    }
    case Stmt::If: {
      Label LElse = V.genLabel(), LEnd = V.genLabel();
      Reg C = genExpr(*S.E);
      PH.branchImm(Cond::Eq, Type::I, C, 0, LElse);
      V.putreg(C);
      genStmt(*S.Kids[0]);
      PH.jmp(LEnd);
      PH.label(LElse);
      if (S.Kids.size() > 1)
        genStmt(*S.Kids[1]);
      PH.label(LEnd);
      return;
    }
    case Stmt::While: {
      Label LTop = V.genLabel(), LEnd = V.genLabel();
      PH.label(LTop);
      Reg C = genExpr(*S.E);
      PH.branchImm(Cond::Eq, Type::I, C, 0, LEnd);
      V.putreg(C);
      genStmt(*S.Kids[0]);
      PH.jmp(LTop);
      PH.label(LEnd);
      return;
    }
    case Stmt::Return: {
      if (S.E) {
        Reg R = genExpr(*S.E);
        PH.ret(Type::I, R);
        V.putreg(R);
      } else {
        Reg R = get();
        PH.setInt(Type::I, R, 0);
        PH.ret(Type::I, R);
        V.putreg(R);
      }
      return;
    }
    case Stmt::ExprStmt: {
      Reg R = genExpr(*S.E);
      V.putreg(R);
      return;
    }
    }
    unreachable("bad Stmt kind");
  }

  Reg genExpr(const Expr &E) {
    switch (E.Kind) {
    case Expr::Num: {
      Reg R = get();
      PH.setInt(Type::I, R, uint64_t(int64_t(int32_t(E.Value))));
      return R;
    }
    case Expr::Var: {
      Local L = lookupVar(E.Name, E.Line);
      Reg R = get();
      PH.loadImm(Type::I, R, V.spReg(), L.Off);
      return R;
    }
    case Expr::Call:
      return genCall(E);
    case Expr::Op:
      break;
    }

    switch (E.Operation) {
    case EOp::Neg: {
      Reg R = genExpr(*E.Kids[0]);
      PH.unop(UnOp::Neg, Type::I, R, R);
      return R;
    }
    case EOp::LogNot: {
      Reg R = genExpr(*E.Kids[0]);
      PH.unop(UnOp::Not, Type::I, R, R);
      return R;
    }
    case EOp::LogAnd:
    case EOp::LogOr: {
      bool IsAnd = E.Operation == EOp::LogAnd;
      Label LShort = V.genLabel(), LEnd = V.genLabel();
      Reg A = genExpr(*E.Kids[0]);
      PH.branchImm(IsAnd ? Cond::Eq : Cond::Ne, Type::I, A, 0, LShort);
      V.putreg(A);
      Reg B = genExpr(*E.Kids[1]);
      PH.branchImm(IsAnd ? Cond::Eq : Cond::Ne, Type::I, B, 0, LShort);
      V.putreg(B);
      Reg R = get();
      PH.setInt(Type::I, R, IsAnd ? 1 : 0);
      PH.jmp(LEnd);
      PH.label(LShort);
      PH.setInt(Type::I, R, IsAnd ? 0 : 1);
      PH.label(LEnd);
      return R;
    }
    default:
      break;
    }

    Reg A = genExpr(*E.Kids[0]);
    Reg B = genExpr(*E.Kids[1]);
    switch (E.Operation) {
    case EOp::Add:
      PH.binop(BinOp::Add, Type::I, A, A, B);
      break;
    case EOp::Sub:
      PH.binop(BinOp::Sub, Type::I, A, A, B);
      break;
    case EOp::Mul:
      PH.binop(BinOp::Mul, Type::I, A, A, B);
      break;
    case EOp::Div:
      PH.binop(BinOp::Div, Type::I, A, A, B);
      break;
    case EOp::Mod:
      PH.binop(BinOp::Mod, Type::I, A, A, B);
      break;
    case EOp::Eq:
    case EOp::Ne:
    case EOp::Lt:
    case EOp::Le:
    case EOp::Gt:
    case EOp::Ge: {
      Cond C;
      switch (E.Operation) {
      case EOp::Eq:
        C = Cond::Eq;
        break;
      case EOp::Ne:
        C = Cond::Ne;
        break;
      case EOp::Lt:
        C = Cond::Lt;
        break;
      case EOp::Le:
        C = Cond::Le;
        break;
      case EOp::Gt:
        C = Cond::Gt;
        break;
      default:
        C = Cond::Ge;
        break;
      }
      Label LTrue = V.genLabel(), LEnd = V.genLabel();
      PH.branch(C, Type::I, A, B, LTrue);
      PH.setInt(Type::I, A, 0);
      PH.jmp(LEnd);
      PH.label(LTrue);
      PH.setInt(Type::I, A, 1);
      PH.label(LEnd);
      break;
    }
    default:
      unreachable("bad binary operation");
    }
    V.putreg(B);
    return A;
  }

  Reg genCall(const Expr &E) {
    // Evaluate arguments left to right into temporaries.
    std::vector<Reg> ArgVals;
    for (const auto &K : E.Kids)
      ArgVals.push_back(genExpr(*K));
    PH.flush(); // the call machinery below bypasses the window
    std::string Sig;
    for (size_t I = 0; I < E.Kids.size(); ++I)
      Sig += "%i";
    if (E.Kids.empty())
      Sig = "%v";
    V.callBegin(Sig.c_str());
    for (Reg R : ArgVals)
      V.callArg(R);
    for (Reg R : ArgVals)
      V.putreg(R);
    // Calls go through the function table so recursion and forward
    // references resolve once the callee is (re)defined.
    SimAddr Slot = Resolve(E.Name);
    Reg Fn = V.getreg(Type::P);
    if (!Fn.isValid())
      fatalKind(CgErrKind::RegisterPressure, "tcc: out of registers in call");
    V.setp(Fn, Slot);
    V.ldpi(Fn, Fn, 0);
    V.callReg(Fn);
    V.putreg(Fn);
    Reg R = get();
    PH.unop(UnOp::Mov, Type::I, R, V.retvalReg(Type::I));
    return R;
  }

  VCode V;
  Peephole PH; // the §6.2 peephole layer, pass-through when not optimizing
  sim::Memory &Mem;
  std::function<SimAddr(const std::string &)> Resolve;
  std::map<std::string, Local> Vars;
  bool NonLeaf = false;
};

} // namespace

// --- Tcc driver ------------------------------------------------------------------

SimAddr Tcc::slotFor(const std::string &Name) {
  FnInfo &F = Functions[Name];
  if (!F.Slot) {
    F.Slot = Mem.alloc(8, 8);
    Mem.write<uint64_t>(F.Slot, 0);
  }
  return F.Slot;
}

void Tcc::registerFn(const std::string &Name, unsigned Arity, CodePtr Code) {
  slotFor(Name);
  FnInfo &Info = Functions[Name];
  Info.Entry = Code.Entry;
  Info.Arity = Arity;
  Info.Defined = true;
  // Patch the function table (word-sized pointer).
  if (Tgt.info().WordBytes == 8)
    Mem.write<uint64_t>(Info.Slot, Code.Entry);
  else
    Mem.write<uint32_t>(Info.Slot, uint32_t(Code.Entry));
}

CodePtr Tcc::compile(const std::string &Source) {
  VCODE_TM_TICK(TmCompile);
  Parser P(Source);
  FunctionAst F = P.parseFunction();

  CodeGen CG(Tgt, Mem, effectiveOptimize(),
             [this](const std::string &Name) { return slotFor(Name); });
  // The function-table slots slotFor() lazily creates during emission must
  // survive across attempts, so failed regions are NOT released back to
  // the arena (the leak is bounded by the geometric growth: less than the
  // final region size in total).
  GenerateOptions Opts;
  Opts.InitialBytes = InitialCodeBytes;
  Opts.GenTier = GenTier;
  GenerateResult R = generateWithRetry(
      CG.vcode(), [&](size_t N) { return Mem.allocCode(N); },
      [&](CodeMem CM) { return CG.generateInto(F, CM); }, Opts);
  if (!R.ok())
    fatalKind(R.Err.Kind, "tcc: compiling '%s': %s", F.Name.c_str(),
              R.Err.Detail);
  Attempts = R.Attempts;
  RegionBytes = R.RegionBytes;
  registerFn(F.Name, unsigned(F.Params.size()), R.Code);
  VCODE_TM_SPAN("tcc.compile", TmCompile);
  VCODE_TM_COUNT("tcc.compiles", 1);
  return R.Code;
}

CodePtr Tcc::compileShared(CodeCache &Cache, const std::string &Source) {
  // Parse unconditionally: cheap next to code generation, and a cache hit
  // still needs the name/arity to register the function locally.
  Parser P(Source);
  FunctionAst F = P.parseFunction();

  // The key is deliberately tier-independent (the |opt|/|raw| marker
  // tracks only the caller's explicit setOptimize choice): promotion
  // swaps code versions under this same key rather than caching tiers
  // side by side.
  std::string Key = "tcc|";
  Key += Tgt.info().Name;
  Key += Optimize ? "|opt|" : "|raw|";
  Key += Source;

  unsigned MyAttempts = 0;
  size_t MyRegionBytes = 0;
  bool Generated = false;
  CodeCache::Handle H = Cache.lookupOrGenerate(
      Key, [&](CodeCache::RegionAlloc &Alloc) {
        Generated = true;
        CodeGen CG(Tgt, Mem, effectiveOptimize(),
                   [this](const std::string &Name) { return slotFor(Name); });
        GenerateOptions Opts;
        Opts.InitialBytes = InitialCodeBytes;
        Opts.GenTier = GenTier;
        GenerateResult R = generateWithRetry(
            CG.vcode(), [&](size_t N) { return Alloc(N); },
            [&](CodeMem CM) { return CG.generateInto(F, CM); }, Opts);
        MyAttempts = R.Attempts;
        MyRegionBytes = R.RegionBytes;
        return R;
      });
  if (!H.valid())
    fatalKind(H.error().Kind, "tcc: shared compile of '%s' failed: %s",
              F.Name.c_str(), H.error().Detail);
  SharedPins.push_back(H);
  Attempts = Generated ? MyAttempts : 0;
  RegionBytes = Generated ? MyRegionBytes : H.regionBytes();
  registerFn(F.Name, unsigned(F.Params.size()), H.code());
  Shared[F.Name] = SharedInfo{&Cache, std::move(Key), Source, H};
  VCODE_TM_COUNT("tcc.compiles_shared", 1);
  return H.code();
}

bool Tcc::promoteShared(const std::string &Name, SharedInfo &SI) {
  bool Swapped =
      SI.Cache->promote(SI.Key, [&](CodeCache::RegionAlloc &Alloc) {
        Parser P(SI.Source);
        FunctionAst F = P.parseFunction();
        // Tier-1 for tcc-lite: the optimizing pipeline, unconditionally.
        CodeGen CG(Tgt, Mem, /*Optimize=*/true,
                   [this](const std::string &N) { return slotFor(N); });
        GenerateOptions Opts;
        Opts.InitialBytes = InitialCodeBytes;
        Opts.GenTier = Tier::Tier1;
        return generateWithRetry(
            CG.vcode(), [&](size_t N) { return Alloc(N); },
            [&](CodeMem CM) { return CG.generateInto(F, CM); }, Opts);
      });
  if (Swapped) {
    // Re-patch this instance's function table so table-mediated calls
    // (recursion, callees) reach the promoted code too.
    registerFn(Name, Functions[Name].Arity, SI.H.code());
    VCODE_TM_COUNT("tcc.promotions", 1);
  }
  return Swapped;
}

CodePtr Tcc::compileInto(const std::string &Source, CodeMem CM, CgError *Err) {
  Parser P(Source);
  FunctionAst F = P.parseFunction();

  CodeGen CG(Tgt, Mem, effectiveOptimize(),
             [this](const std::string &Name) { return slotFor(Name); });
  CodePtr Code;
  if (Err) {
    *Err = CgError{};
    RecoveryScope Scope(CG.vcode());
    try {
      Code = CG.generateInto(F, CM);
    } catch (const CgAbort &) {
      CG.vcode().abandon();
    }
    if (!Code.isValid()) {
      *Err = CG.vcode().lastError();
      return CodePtr{};
    }
  } else {
    Code = CG.generateInto(F, CM);
  }
  Attempts = 1;
  RegionBytes = CM.Size;
  registerFn(F.Name, unsigned(F.Params.size()), Code);
  return Code;
}

SimAddr Tcc::lookup(const std::string &Name) const {
  auto It = Functions.find(Name);
  if (It == Functions.end() || !It->second.Defined)
    fatal("tcc: unknown function '%s'", Name.c_str());
  return It->second.Entry;
}

unsigned Tcc::arity(const std::string &Name) const {
  auto It = Functions.find(Name);
  if (It == Functions.end() || !It->second.Defined)
    fatal("tcc: unknown function '%s'", Name.c_str());
  return It->second.Arity;
}

int32_t Tcc::run(sim::Cpu &Cpu, const std::string &Name,
                 const std::vector<int32_t> &Args) {
  if (Args.size() != arity(Name))
    fatal("tcc: '%s' takes %u arguments, got %zu", Name.c_str(), arity(Name),
          Args.size());
  std::vector<sim::TypedValue> TV;
  for (int32_t A : Args)
    TV.push_back(sim::TypedValue::fromInt(A));
  // Shared functions dispatch through a pinned code version: the pin
  // keeps the region alive across a concurrent promotion's swap, and
  // execution counts feed the hot-function threshold.
  auto It = Shared.find(Name);
  if (It != Shared.end() && It->second.H.valid()) {
    auto Ver = It->second.H.pin();
    if (Ver) {
      uint64_t N = It->second.H.noteExecution();
      if (HotThreshold && N == HotThreshold &&
          Ver->GenTier == Tier::Tier0 &&
          promoteShared(Name, It->second)) {
        if (auto NewVer = It->second.H.pin())
          Ver = std::move(NewVer);
      }
      return Cpu.call(Ver->Code.Entry, TV, Type::I).asInt32();
    }
  }
  return Cpu.call(lookup(Name), TV, Type::I).asInt32();
}
