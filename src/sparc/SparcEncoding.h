//===- sparc/SparcEncoding.h - SPARC V8 instruction encoders ----*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SPARC V8 instruction word encoders (format 1 call, format 2
/// sethi/branches, format 3 arithmetic and memory). As with the MIPS
/// encoders, these are constexpr so hard-coded register names constant-fold
/// to a single or+store (paper §5.3).
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_SPARC_SPARCENCODING_H
#define VCODE_SPARC_SPARCENCODING_H

#include <cstdint>

namespace vcode {
namespace sparc {

/// Register numbering: %g0-%g7 = 0-7, %o0-%o7 = 8-15, %l0-%l7 = 16-23,
/// %i0-%i7 = 24-31.
enum RegNum : unsigned {
  G0 = 0, G1 = 1, G2 = 2, G3 = 3, G4 = 4, G5 = 5, G6 = 6, G7 = 7,
  O0 = 8, O1 = 9, O2 = 10, O3 = 11, O4 = 12, O5 = 13, SP = 14, O7 = 15,
  L0 = 16, L1 = 17, L2 = 18, L3 = 19, L4 = 20, L5 = 21, L6 = 22, L7 = 23,
  I0 = 24, I1 = 25, I2 = 26, I3 = 27, I4 = 28, I5 = 29, FP = 30, I7 = 31,
};

/// Integer condition codes for Bicc.
enum ICond : unsigned {
  CondN = 0, CondE = 1, CondLE = 2, CondL = 3, CondLEU = 4, CondCS = 5,
  CondNEG = 6, CondVS = 7, CondA = 8, CondNE = 9, CondG = 10, CondGE = 11,
  CondGU = 12, CondCC = 13, CondPOS = 14, CondVC = 15,
};

/// FP condition codes for FBfcc.
enum FCond : unsigned {
  FCondN = 0, FCondNE = 1, FCondLG = 2, FCondUL = 3, FCondL = 4,
  FCondUG = 5, FCondG = 6, FCondU = 7, FCondA = 8, FCondE = 9,
  FCondUE = 10, FCondGE = 11, FCondUGE = 12, FCondLE = 13, FCondULE = 14,
  FCondO = 15,
};

// --- Format builders ---------------------------------------------------------

/// Format 3, register-register.
constexpr uint32_t fmt3r(unsigned Op, unsigned Rd, unsigned Op3, unsigned Rs1,
                         unsigned Rs2) {
  return (Op << 30) | (Rd << 25) | (Op3 << 19) | (Rs1 << 14) | Rs2;
}
/// Format 3, register-immediate (simm13).
constexpr uint32_t fmt3i(unsigned Op, unsigned Rd, unsigned Op3, unsigned Rs1,
                         int32_t Simm13) {
  return (Op << 30) | (Rd << 25) | (Op3 << 19) | (Rs1 << 14) | (1u << 13) |
         (uint32_t(Simm13) & 0x1fff);
}
/// Format 3 FP operate (op3 0x34/0x35): opf in bits 5-13.
constexpr uint32_t fmt3f(unsigned Rd, unsigned Op3, unsigned Rs1, unsigned Opf,
                         unsigned Rs2) {
  return (2u << 30) | (Rd << 25) | (Op3 << 19) | (Rs1 << 14) | (Opf << 5) |
         Rs2;
}

// --- Arithmetic (op=2) ---------------------------------------------------------

constexpr uint32_t add(unsigned Rd, unsigned Rs1, unsigned Rs2) {
  return fmt3r(2, Rd, 0x00, Rs1, Rs2);
}
constexpr uint32_t addi(unsigned Rd, unsigned Rs1, int32_t Imm) {
  return fmt3i(2, Rd, 0x00, Rs1, Imm);
}
constexpr uint32_t sub(unsigned Rd, unsigned Rs1, unsigned Rs2) {
  return fmt3r(2, Rd, 0x04, Rs1, Rs2);
}
constexpr uint32_t subi(unsigned Rd, unsigned Rs1, int32_t Imm) {
  return fmt3i(2, Rd, 0x04, Rs1, Imm);
}
constexpr uint32_t subcc(unsigned Rd, unsigned Rs1, unsigned Rs2) {
  return fmt3r(2, Rd, 0x14, Rs1, Rs2);
}
constexpr uint32_t subcci(unsigned Rd, unsigned Rs1, int32_t Imm) {
  return fmt3i(2, Rd, 0x14, Rs1, Imm);
}
constexpr uint32_t and_(unsigned Rd, unsigned Rs1, unsigned Rs2) {
  return fmt3r(2, Rd, 0x01, Rs1, Rs2);
}
constexpr uint32_t andi(unsigned Rd, unsigned Rs1, int32_t Imm) {
  return fmt3i(2, Rd, 0x01, Rs1, Imm);
}
constexpr uint32_t or_(unsigned Rd, unsigned Rs1, unsigned Rs2) {
  return fmt3r(2, Rd, 0x02, Rs1, Rs2);
}
constexpr uint32_t ori(unsigned Rd, unsigned Rs1, int32_t Imm) {
  return fmt3i(2, Rd, 0x02, Rs1, Imm);
}
constexpr uint32_t xor_(unsigned Rd, unsigned Rs1, unsigned Rs2) {
  return fmt3r(2, Rd, 0x03, Rs1, Rs2);
}
constexpr uint32_t xori(unsigned Rd, unsigned Rs1, int32_t Imm) {
  return fmt3i(2, Rd, 0x03, Rs1, Imm);
}
constexpr uint32_t xnor(unsigned Rd, unsigned Rs1, unsigned Rs2) {
  return fmt3r(2, Rd, 0x07, Rs1, Rs2);
}
constexpr uint32_t umul(unsigned Rd, unsigned Rs1, unsigned Rs2) {
  return fmt3r(2, Rd, 0x0a, Rs1, Rs2);
}
constexpr uint32_t smul(unsigned Rd, unsigned Rs1, unsigned Rs2) {
  return fmt3r(2, Rd, 0x0b, Rs1, Rs2);
}
constexpr uint32_t udiv(unsigned Rd, unsigned Rs1, unsigned Rs2) {
  return fmt3r(2, Rd, 0x0e, Rs1, Rs2);
}
constexpr uint32_t sdiv(unsigned Rd, unsigned Rs1, unsigned Rs2) {
  return fmt3r(2, Rd, 0x0f, Rs1, Rs2);
}
constexpr uint32_t sll(unsigned Rd, unsigned Rs1, unsigned Rs2) {
  return fmt3r(2, Rd, 0x25, Rs1, Rs2);
}
constexpr uint32_t slli(unsigned Rd, unsigned Rs1, unsigned Sh) {
  return fmt3i(2, Rd, 0x25, Rs1, int32_t(Sh));
}
constexpr uint32_t srl(unsigned Rd, unsigned Rs1, unsigned Rs2) {
  return fmt3r(2, Rd, 0x26, Rs1, Rs2);
}
constexpr uint32_t srli(unsigned Rd, unsigned Rs1, unsigned Sh) {
  return fmt3i(2, Rd, 0x26, Rs1, int32_t(Sh));
}
constexpr uint32_t sra(unsigned Rd, unsigned Rs1, unsigned Rs2) {
  return fmt3r(2, Rd, 0x27, Rs1, Rs2);
}
constexpr uint32_t srai(unsigned Rd, unsigned Rs1, unsigned Sh) {
  return fmt3i(2, Rd, 0x27, Rs1, int32_t(Sh));
}
constexpr uint32_t addx(unsigned Rd, unsigned Rs1, unsigned Rs2) {
  return fmt3r(2, Rd, 0x08, Rs1, Rs2);
}
constexpr uint32_t addxi(unsigned Rd, unsigned Rs1, int32_t Imm) {
  return fmt3i(2, Rd, 0x08, Rs1, Imm);
}
constexpr uint32_t rdy(unsigned Rd) { return fmt3r(2, Rd, 0x28, 0, 0); }
constexpr uint32_t wry(unsigned Rs1) { return fmt3r(2, 0, 0x30, Rs1, 0); }
constexpr uint32_t wryi(unsigned Rs1, int32_t Imm) {
  return fmt3i(2, 0, 0x30, Rs1, Imm);
}
constexpr uint32_t jmpl(unsigned Rd, unsigned Rs1, int32_t Imm) {
  return fmt3i(2, Rd, 0x38, Rs1, Imm);
}
constexpr uint32_t jmplr(unsigned Rd, unsigned Rs1, unsigned Rs2) {
  return fmt3r(2, Rd, 0x38, Rs1, Rs2);
}

// --- Format 2: sethi and branches ----------------------------------------------

constexpr uint32_t sethi(unsigned Rd, uint32_t Imm22) {
  return (0u << 30) | (Rd << 25) | (4u << 22) | (Imm22 & 0x3fffff);
}
constexpr uint32_t nop() { return sethi(0, 0); }
/// Bicc: integer condition-code branch, disp22 in words.
constexpr uint32_t bicc(unsigned Cond, int32_t Disp22 = 0, bool Annul = false) {
  return (0u << 30) | ((Annul ? 1u : 0u) << 29) | (Cond << 25) | (2u << 22) |
         (uint32_t(Disp22) & 0x3fffff);
}
/// FBfcc: FP condition-code branch.
constexpr uint32_t fbfcc(unsigned Cond, int32_t Disp22 = 0) {
  return (0u << 30) | (Cond << 25) | (6u << 22) | (uint32_t(Disp22) & 0x3fffff);
}
constexpr uint32_t ba(int32_t Disp22 = 0) { return bicc(CondA, Disp22); }

// --- Format 1: call --------------------------------------------------------------

constexpr uint32_t call(int32_t Disp30) {
  return (1u << 30) | (uint32_t(Disp30) & 0x3fffffff);
}

// --- Memory (op=3) ----------------------------------------------------------------

constexpr uint32_t memri(unsigned Op3, unsigned Rd, unsigned Rs1,
                         int32_t Imm) {
  return fmt3i(3, Rd, Op3, Rs1, Imm);
}
constexpr uint32_t memrr(unsigned Op3, unsigned Rd, unsigned Rs1,
                         unsigned Rs2) {
  return fmt3r(3, Rd, Op3, Rs1, Rs2);
}

enum MemOp3 : unsigned {
  LD = 0x00, LDUB = 0x01, LDUH = 0x02, LDD = 0x03,
  ST = 0x04, STB = 0x05, STH = 0x06, STD = 0x07,
  LDSB = 0x09, LDSH = 0x0a,
  LDF = 0x20, LDDF = 0x23, STF = 0x24, STDF = 0x27,
};

// --- FP operate (op=2, op3=0x34 FPop1 / 0x35 FPop2) --------------------------------

enum FpOpf : unsigned {
  FMOVS = 0x01, FNEGS = 0x05, FABSS = 0x09,
  FSQRTS = 0x29, FSQRTD = 0x2a,
  FADDS = 0x41, FADDD = 0x42, FSUBS = 0x45, FSUBD = 0x46,
  FMULS = 0x49, FMULD = 0x4a, FDIVS = 0x4d, FDIVD = 0x4e,
  FITOS = 0xc4, FDTOS = 0xc6, FITOD = 0xc8, FSTOD = 0xc9,
  FSTOI = 0xd1, FDTOI = 0xd2,
  FCMPS = 0x51, FCMPD = 0x52,
};

constexpr uint32_t fpop1(unsigned Rd, unsigned Rs1, unsigned Opf,
                         unsigned Rs2) {
  return fmt3f(Rd, 0x34, Rs1, Opf, Rs2);
}
constexpr uint32_t fpop2(unsigned Rd, unsigned Rs1, unsigned Opf,
                         unsigned Rs2) {
  return fmt3f(Rd, 0x35, Rs1, Opf, Rs2);
}

} // namespace sparc
} // namespace vcode

#endif // VCODE_SPARC_SPARCENCODING_H
