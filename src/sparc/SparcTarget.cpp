//===- sparc/SparcTarget.cpp - SPARC V8 backend -----------------------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
// The hot emitters live inline in SparcTarget.h; this file holds the cold
// paths: target description, function framing, fixups, disassembly, and the
// machine-level extension instructions.
//
//===----------------------------------------------------------------------===//

#include "sparc/SparcTarget.h"
#include "support/Telemetry.h"
#include "sparc/SparcDisasm.h"

using namespace vcode;
using namespace vcode::sparc;

const TargetInfo &vcode::sparc::sparcTargetInfo() {
  static const TargetInfo TI = [] {
    TargetInfo T;
    T.Name = "sparc";
    T.WordBytes = 4;
    T.HasBranchDelaySlot = true;
    T.LoadDelaySlots = 0;
    T.Zero = intReg(G0);
    T.At = intReg(G1);
    T.Sp = intReg(SP);
    T.Ra = intReg(O7);
    T.IntTemps = {intReg(G2), intReg(G3), intReg(G4), intReg(L0), intReg(L1),
                  intReg(L2), intReg(L3), intReg(O5), intReg(O4), intReg(O3),
                  intReg(O2), intReg(O1), intReg(O0)};
    T.IntSaves = {intReg(L4), intReg(L5), intReg(L6), intReg(L7), intReg(I0),
                  intReg(I1), intReg(I2), intReg(I3), intReg(I4), intReg(I5)};
    T.FpTemps = {fpReg(8),  fpReg(10), fpReg(12), fpReg(14), fpReg(16),
                 fpReg(18), fpReg(2),  fpReg(6),  fpReg(4)};
    T.FpSaves = {fpReg(20), fpReg(22), fpReg(24), fpReg(26)};
    T.DefaultCC.IntArgRegs = {intReg(O0), intReg(O1), intReg(O2),
                              intReg(O3), intReg(O4), intReg(O5)};
    T.DefaultCC.FpArgRegs = {fpReg(4), fpReg(6)};
    T.DefaultCC.IntRet = intReg(O0);
    T.DefaultCC.FpRet = fpReg(0);
    T.DefaultCC.LinkReg = intReg(O7);
    T.DefaultCC.MinOutArgBytes = 0;
    T.OutArgReserveBytes = 32;
    return T;
  }();
  return TI;
}

SparcTarget::SparcTarget() { registerMachineInstructions(); }

// --- Function framing -----------------------------------------------------------------

std::string SparcTarget::disassemble(uint32_t Word, SimAddr Pc) const {
  return sparc::disassemble(Word, Pc);
}

void SparcTarget::beginFunction(VCode &VC) {
  // Reserve instruction-stream space for the worst-case prologue
  // (paper §5.2): frame allocation, link save, every callee-saved register,
  // and one copy per stack-passed argument. v_end writes the real prologue
  // into the tail of this region and the entry point skips the rest.
  uint32_t ReservedWords = uint32_t(2 + 32 + 32 + VC.prologueArgCopies().size());
  VC.setReservedPrologueWords(ReservedWords);
  VC.buf().ensureWords(ReservedWords);
  for (uint32_t I = 0; I < ReservedWords; ++I)
    VC.buf().put(nop());
}

CodePtr SparcTarget::endFunction(VCode &VC) {
  VCODE_TM_COUNT("sparc.functions", 1);
  const TargetInfo &TI = info();
  CodeBuffer &B = VC.buf();
  uint32_t F = VC.frameBytes();
  if (!isInt<13>(int64_t(F)))
    fatalKind(CgErrKind::OutOfRange,
        "sparc: frame of %u bytes exceeds the simm13 range", F);

  uint32_t IntMask = VC.regAlloc().usedCalleeSavedMask(Reg::Int);
  uint32_t FpMask = VC.regAlloc().usedCalleeSavedMask(Reg::Fp);
  unsigned Link = gpr(VC.cc().LinkReg);

  std::vector<uint32_t> Pro;
  if (F) {
    Pro.push_back(addi(SP, SP, -int32_t(F)));
    if (!VC.isLeaf())
      Pro.push_back(memri(ST, Link, SP, int32_t(TI.linkSaveSlot())));
    for (unsigned N = 0; N < 32; ++N)
      if (IntMask & (1u << N))
        Pro.push_back(memri(ST, N, SP, int32_t(TI.intSaveSlot(N))));
    for (unsigned N = 0; N < 32; ++N)
      if (FpMask & (1u << N))
        Pro.push_back(memri(STDF, N, SP, int32_t(TI.fpSaveSlot(N))));
  }
  for (const PrologueArgCopy &Copy : VC.prologueArgCopies()) {
    int64_t Off = int64_t(F) + Copy.IncomingOff;
    if (!isInt<13>(Off))
      fatalKind(CgErrKind::OutOfRange,
          "sparc: incoming stack argument offset %lld out of range",
            (long long)Off);
    unsigned Rt = isFpType(Copy.Ty) ? fpr(Copy.Dst) : gpr(Copy.Dst);
    Pro.push_back(memri(loadOp3(Copy.Ty), Rt, SP, int32_t(Off)));
  }

  uint32_t ReservedWords = VC.reservedPrologueWords();
  if (Pro.size() > ReservedWords)
    fatalKind(CgErrKind::Internal,
        "sparc: prologue of %zu words exceeds the %u reserved", Pro.size(),
          ReservedWords);
  uint32_t Start = ReservedWords - uint32_t(Pro.size());
  for (size_t I = 0; I < Pro.size(); ++I)
    B.patch(uint32_t(Start + I), Pro[I]);

  if (F) {
    VC.label(VC.epilogueLabel());
    if (!VC.isLeaf())
      B.put(memri(LD, Link, SP, int32_t(TI.linkSaveSlot())));
    for (unsigned N = 0; N < 32; ++N)
      if (IntMask & (1u << N))
        B.put(memri(LD, N, SP, int32_t(TI.intSaveSlot(N))));
    for (unsigned N = 0; N < 32; ++N)
      if (FpMask & (1u << N))
        B.put(memri(LDDF, N, SP, int32_t(TI.fpSaveSlot(N))));
    B.put(jmpl(G0, Link, 8));
    B.put(addi(SP, SP, int32_t(F)));
  }

  CodePtr P;
  P.Entry = B.addrOfWord(Start);
  return P;
}

void SparcTarget::applyFixup(VCode &VC, const Fixup &F, SimAddr Target) {
  CodeBuffer &B = VC.buf();
  // SPARC pc-relative displacements count from the branch itself.
  auto Disp = [&]() {
    return (int64_t(Target) - int64_t(B.addrOfWord(F.WordIdx))) / 4;
  };
  switch (F.Kind) {
  case FixupKind::Call: {
    int64_t D = Disp();
    B.patch(F.WordIdx, call(int32_t(D)));
    return;
  }
  case FixupKind::Branch:
  case FixupKind::Jump: {
    int64_t D = Disp();
    if (!isInt<22>(D))
      fatalKind(CgErrKind::OutOfRange,
          "sparc: branch displacement %lld out of range", (long long)D);
    B.patchOr(F.WordIdx, uint32_t(D) & 0x3fffff);
    return;
  }
  case FixupKind::EpilogueJump:
    if (Target != 0) {
      int64_t D = Disp();
      if (!isInt<22>(D))
        fatalKind(CgErrKind::OutOfRange,
            "sparc: epilogue displacement out of range");
      B.patch(F.WordIdx, ba(int32_t(D)));
    }
    return;
  case FixupKind::AddrHi:
    B.patchOr(F.WordIdx, uint32_t(Target >> 10) & 0x3fffff);
    return;
  case FixupKind::AddrLo:
    B.patchOr(F.WordIdx, uint32_t(Target) & 0x3ff);
    return;
  }
  unreachable("bad FixupKind");
}

// --- Extension machine instructions ------------------------------------------------

void SparcTarget::registerMachineInstructions() {
  auto Fp2 = [](unsigned Opf) {
    return [Opf](VCode &VC, const Operand *Ops, unsigned N) {
      if (N != 2 || Ops[0].Kind != Operand::RegOp ||
          Ops[1].Kind != Operand::RegOp)
        fatalKind(CgErrKind::BadOperand,
            "sparc fp machine instruction expects (rd, rs)");
      VC.buf().put(fpop1(Ops[0].R.Num, 0, Opf, Ops[1].R.Num));
    };
  };
  defineInstruction("fsqrts", Fp2(FSQRTS));
  defineInstruction("fsqrtd", Fp2(FSQRTD));
  defineInstruction("sparc.xnor",
                    [](VCode &VC, const Operand *Ops, unsigned N) {
                      if (N != 3)
                        fatalKind(CgErrKind::BadOperand,
                            "sparc.xnor expects (rd, rs1, rs2)");
                      VC.buf().put(
                          xnor(Ops[0].R.Num, Ops[1].R.Num, Ops[2].R.Num));
                    });
}

// The shared static-dispatch instantiation declared in SparcTarget.h.
template class vcode::VCodeT<SparcTarget>;
