//===- sparc/SparcTarget.cpp - SPARC V8 backend -----------------------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "sparc/SparcTarget.h"
#include "sparc/SparcDisasm.h"
#include "sparc/SparcEncoding.h"
#include "support/BitUtils.h"
#include <cassert>
#include <cstring>

using namespace vcode;
using namespace vcode::sparc;

// FP scratch (register pairs f28/f29 and f30/f31), excluded from allocation.
static constexpr unsigned FAT0 = 28;
static constexpr unsigned FAT1 = 30;

// Scratch stack slot for int<->fp register moves (SPARC V8 has no direct
// move): an 8-byte red zone below the stack pointer. Safe in this
// single-threaded, signal-free simulation environment.
static constexpr int32_t RedZone = -8;

static unsigned gpr(Reg R) {
  assert(R.isInt() && "integer register expected");
  return R.Num;
}

static unsigned fpr(Reg R) {
  assert(R.isFp() && "fp register expected");
  return R.Num;
}

const TargetInfo &vcode::sparc::sparcTargetInfo() {
  static const TargetInfo TI = [] {
    TargetInfo T;
    T.Name = "sparc";
    T.WordBytes = 4;
    T.HasBranchDelaySlot = true;
    T.LoadDelaySlots = 0;
    T.Zero = intReg(G0);
    T.At = intReg(G1);
    T.Sp = intReg(SP);
    T.Ra = intReg(O7);
    T.IntTemps = {intReg(G2), intReg(G3), intReg(G4), intReg(L0), intReg(L1),
                  intReg(L2), intReg(L3), intReg(O5), intReg(O4), intReg(O3),
                  intReg(O2), intReg(O1), intReg(O0)};
    T.IntSaves = {intReg(L4), intReg(L5), intReg(L6), intReg(L7), intReg(I0),
                  intReg(I1), intReg(I2), intReg(I3), intReg(I4), intReg(I5)};
    T.FpTemps = {fpReg(8),  fpReg(10), fpReg(12), fpReg(14), fpReg(16),
                 fpReg(18), fpReg(2),  fpReg(6),  fpReg(4)};
    T.FpSaves = {fpReg(20), fpReg(22), fpReg(24), fpReg(26)};
    T.DefaultCC.IntArgRegs = {intReg(O0), intReg(O1), intReg(O2),
                              intReg(O3), intReg(O4), intReg(O5)};
    T.DefaultCC.FpArgRegs = {fpReg(4), fpReg(6)};
    T.DefaultCC.IntRet = intReg(O0);
    T.DefaultCC.FpRet = fpReg(0);
    T.DefaultCC.LinkReg = intReg(O7);
    T.DefaultCC.MinOutArgBytes = 0;
    T.OutArgReserveBytes = 32;
    return T;
  }();
  return TI;
}

SparcTarget::SparcTarget() { registerMachineInstructions(); }

// --- Helpers -------------------------------------------------------------------

void SparcTarget::li(VCode &VC, unsigned Rd, int64_t Imm) {
  CodeBuffer &B = VC.buf();
  int32_t V = int32_t(Imm);
  if (isInt<13>(V)) {
    B.put(ori(Rd, G0, V));
    return;
  }
  B.put(sethi(Rd, uint32_t(V) >> 10));
  if (uint32_t(V) & 0x3ff)
    B.put(ori(Rd, Rd, int32_t(uint32_t(V) & 0x3ff)));
}

void SparcTarget::addrOfLabel(VCode &VC, unsigned Rd, Label L) {
  CodeBuffer &B = VC.buf();
  VC.addFixup(FixupKind::AddrHi, L);
  B.put(sethi(Rd, 0));
  VC.addFixup(FixupKind::AddrLo, L);
  B.put(ori(Rd, Rd, 0));
}

void SparcTarget::delaySlot(VCode &VC) {
  if (!VC.suppressDelayNop())
    VC.buf().put(nop());
}

// --- ALU -------------------------------------------------------------------------

void SparcTarget::emitBinop(VCode &VC, BinOp Op, Type Ty, Reg Rd, Reg Rs1,
                            Reg Rs2) {
  CodeBuffer &B = VC.buf();
  if (isFpType(Ty)) {
    bool Dbl = Ty == Type::D;
    unsigned D = fpr(Rd), S = fpr(Rs1), T = fpr(Rs2);
    switch (Op) {
    case BinOp::Add:
      B.put(fpop1(D, S, Dbl ? FADDD : FADDS, T));
      return;
    case BinOp::Sub:
      B.put(fpop1(D, S, Dbl ? FSUBD : FSUBS, T));
      return;
    case BinOp::Mul:
      B.put(fpop1(D, S, Dbl ? FMULD : FMULS, T));
      return;
    case BinOp::Div:
      B.put(fpop1(D, S, Dbl ? FDIVD : FDIVS, T));
      return;
    default:
      fatal("sparc: fp binop '%s' unsupported", binOpName(Op));
    }
  }
  bool Unsigned = !isSignedType(Ty);
  unsigned D = gpr(Rd), S = gpr(Rs1), T = gpr(Rs2);
  switch (Op) {
  case BinOp::Add:
    B.put(add(D, S, T));
    return;
  case BinOp::Sub:
    B.put(sub(D, S, T));
    return;
  case BinOp::Mul:
    B.put(Unsigned ? umul(D, S, T) : smul(D, S, T));
    return;
  case BinOp::Div:
    // The 64-bit dividend lives in Y:rs1; prime Y with the sign extension
    // (or zero) first.
    if (Unsigned) {
      B.put(wryi(G0, 0));
      B.put(udiv(D, S, T));
    } else {
      B.put(srai(G1, S, 31));
      B.put(wry(G1));
      B.put(sdiv(D, S, T));
    }
    return;
  case BinOp::Mod:
    // rem = a - (a/b)*b, computed through the assembler temporary.
    if (Unsigned) {
      B.put(wryi(G0, 0));
      B.put(udiv(G1, S, T));
    } else {
      B.put(srai(G1, S, 31));
      B.put(wry(G1));
      B.put(sdiv(G1, S, T));
    }
    B.put(smul(G1, G1, T));
    B.put(sub(D, S, G1));
    return;
  case BinOp::And:
    B.put(and_(D, S, T));
    return;
  case BinOp::Or:
    B.put(or_(D, S, T));
    return;
  case BinOp::Xor:
    B.put(xor_(D, S, T));
    return;
  case BinOp::Lsh:
    B.put(sll(D, S, T));
    return;
  case BinOp::Rsh:
    B.put(Unsigned ? srl(D, S, T) : sra(D, S, T));
    return;
  }
  unreachable("bad BinOp");
}

void SparcTarget::emitBinopImm(VCode &VC, BinOp Op, Type Ty, Reg Rd, Reg Rs1,
                               int64_t Imm) {
  if (isFpType(Ty))
    fatal("sparc: immediate operands are not allowed for f/d");
  CodeBuffer &B = VC.buf();
  unsigned D = gpr(Rd), S = gpr(Rs1);
  switch (Op) {
  case BinOp::Add:
    if (isInt<13>(Imm)) {
      B.put(addi(D, S, int32_t(Imm)));
      return;
    }
    break;
  case BinOp::Sub:
    if (isInt<13>(Imm)) {
      B.put(subi(D, S, int32_t(Imm)));
      return;
    }
    break;
  case BinOp::And:
    if (isInt<13>(Imm)) {
      B.put(andi(D, S, int32_t(Imm)));
      return;
    }
    break;
  case BinOp::Or:
    if (isInt<13>(Imm)) {
      B.put(ori(D, S, int32_t(Imm)));
      return;
    }
    break;
  case BinOp::Xor:
    if (isInt<13>(Imm)) {
      B.put(xori(D, S, int32_t(Imm)));
      return;
    }
    break;
  case BinOp::Lsh:
    assert(Imm >= 0 && Imm < 32 && "shift amount out of range");
    B.put(slli(D, S, unsigned(Imm)));
    return;
  case BinOp::Rsh:
    assert(Imm >= 0 && Imm < 32 && "shift amount out of range");
    B.put(isSignedType(Ty) ? srai(D, S, unsigned(Imm))
                           : srli(D, S, unsigned(Imm)));
    return;
  case BinOp::Div:
  case BinOp::Mod: {
    // The Y-register setup needs G1, so the divisor goes into the second
    // scratch register G5 (reserved, like G1, from allocation).
    bool Signed = isSignedType(Ty);
    if (Signed) {
      B.put(srai(G1, S, 31));
      B.put(wry(G1));
    } else {
      B.put(wryi(G0, 0));
    }
    li(VC, G5, Imm);
    if (Op == BinOp::Div) {
      B.put(Signed ? sdiv(D, S, G5) : udiv(D, S, G5));
    } else {
      B.put(Signed ? sdiv(G1, S, G5) : udiv(G1, S, G5));
      B.put(smul(G1, G1, G5));
      B.put(sub(D, S, G1));
    }
    return;
  }
  default:
    break;
  }
  li(VC, G1, Imm);
  emitBinop(VC, Op, Ty, Rd, Rs1, intReg(G1));
}

void SparcTarget::emitUnop(VCode &VC, UnOp Op, Type Ty, Reg Rd, Reg Rs) {
  CodeBuffer &B = VC.buf();
  if (isFpType(Ty)) {
    bool Dbl = Ty == Type::D;
    unsigned D = fpr(Rd), S = fpr(Rs);
    switch (Op) {
    case UnOp::Mov:
      B.put(fpop1(D, 0, FMOVS, S));
      if (Dbl)
        B.put(fpop1(D + 1, 0, FMOVS, S + 1));
      return;
    case UnOp::Neg:
      // fnegs negates the sign of the most significant half; with our
      // little-endian pair layout that is the odd register.
      if (Dbl) {
        B.put(fpop1(D, 0, FMOVS, S));
        B.put(fpop1(D + 1, 0, FNEGS, S + 1));
      } else {
        B.put(fpop1(D, 0, FNEGS, S));
      }
      return;
    default:
      fatal("sparc: fp unop unsupported");
    }
  }
  unsigned D = gpr(Rd), S = gpr(Rs);
  switch (Op) {
  case UnOp::Com:
    B.put(xnor(D, S, G0));
    return;
  case UnOp::Not:
    // rd = (rs == 0): carry of (0 - rs) is set iff rs != 0.
    B.put(subcc(G0, G0, S));
    B.put(addxi(D, G0, 0));
    B.put(xori(D, D, 1));
    return;
  case UnOp::Mov:
    B.put(or_(D, S, G0));
    return;
  case UnOp::Neg:
    B.put(sub(D, G0, S));
    return;
  }
  unreachable("bad UnOp");
}

void SparcTarget::emitSetInt(VCode &VC, Type Ty, Reg Rd, uint64_t Imm) {
  (void)Ty;
  li(VC, gpr(Rd), int64_t(int32_t(uint32_t(Imm))));
}

void SparcTarget::emitSetFp(VCode &VC, Type Ty, Reg Rd, double Val) {
  CodeBuffer &B = VC.buf();
  if (Ty == Type::F) {
    float F = float(Val);
    uint32_t Bits;
    std::memcpy(&Bits, &F, 4);
    li(VC, G1, int64_t(int32_t(Bits)));
    B.put(memri(ST, G1, SP, RedZone));
    B.put(memri(LDF, fpr(Rd), SP, RedZone));
    return;
  }
  uint64_t Bits;
  std::memcpy(&Bits, &Val, 8);
  Label Pool = VC.constPoolLabel(Bits);
  addrOfLabel(VC, G1, Pool);
  B.put(memri(LDDF, fpr(Rd), G1, 0));
}

void SparcTarget::emitCvt(VCode &VC, Type From, Type To, Reg Rd, Reg Rs) {
  CodeBuffer &B = VC.buf();
  bool FromIntReg = isIntRegType(From);
  bool ToIntReg = isIntRegType(To);
  if (FromIntReg && ToIntReg) {
    if (Rd != Rs)
      B.put(or_(gpr(Rd), gpr(Rs), G0));
    return;
  }
  if (FromIntReg && isFpType(To)) {
    bool Uns = From == Type::U || From == Type::UL || From == Type::P;
    unsigned S = gpr(Rs);
    if (!Uns) {
      B.put(memri(ST, S, SP, RedZone));
      B.put(memri(LDF, FAT0, SP, RedZone));
      B.put(fpop1(fpr(Rd), 0, To == Type::F ? FITOS : FITOD, FAT0));
      return;
    }
    // Unsigned: convert as signed to double, then add 2^32 when the sign
    // bit was set; narrow to single at the end if needed.
    uint64_t TwoTo32;
    double Dv = 4294967296.0;
    std::memcpy(&TwoTo32, &Dv, 8);
    Label Pool = VC.constPoolLabel(TwoTo32);
    unsigned Acc = To == Type::D ? fpr(Rd) : FAT1;
    B.put(memri(ST, S, SP, RedZone));
    B.put(memri(LDF, FAT0, SP, RedZone));
    B.put(fpop1(Acc, 0, FITOD, FAT0));
    B.put(subcci(G0, S, 0));       // sets N from rs
    B.put(bicc(CondGE, 6));        // skip the 5-word fix block
    B.put(nop());
    addrOfLabel(VC, G1, Pool); // 2 words
    B.put(memri(LDDF, FAT0, G1, 0));
    B.put(fpop1(Acc, Acc, FADDD, FAT0));
    if (To == Type::F)
      B.put(fpop1(fpr(Rd), 0, FDTOS, Acc));
    return;
  }
  if (isFpType(From) && ToIntReg) {
    B.put(fpop1(FAT0, 0, From == Type::F ? FSTOI : FDTOI, fpr(Rs)));
    B.put(memri(STF, FAT0, SP, RedZone));
    B.put(memri(LD, gpr(Rd), SP, RedZone));
    return;
  }
  if (From == Type::F && To == Type::D) {
    B.put(fpop1(fpr(Rd), 0, FSTOD, fpr(Rs)));
    return;
  }
  if (From == Type::D && To == Type::F) {
    B.put(fpop1(fpr(Rd), 0, FDTOS, fpr(Rs)));
    return;
  }
  fatal("sparc: unsupported conversion %s -> %s", typeName(From),
        typeName(To));
}

// --- Memory -------------------------------------------------------------------------

static unsigned loadOp3(Type Ty) {
  switch (Ty) {
  case Type::C:
    return LDSB;
  case Type::UC:
    return LDUB;
  case Type::S:
    return LDSH;
  case Type::US:
    return LDUH;
  case Type::I:
  case Type::U:
  case Type::L:
  case Type::UL:
  case Type::P:
    return LD;
  case Type::F:
    return LDF;
  case Type::D:
    return LDDF;
  case Type::V:
    break;
  }
  unreachable("bad load type");
}

static unsigned storeOp3(Type Ty) {
  switch (Ty) {
  case Type::C:
  case Type::UC:
    return STB;
  case Type::S:
  case Type::US:
    return STH;
  case Type::I:
  case Type::U:
  case Type::L:
  case Type::UL:
  case Type::P:
    return ST;
  case Type::F:
    return STF;
  case Type::D:
    return STDF;
  case Type::V:
    break;
  }
  unreachable("bad store type");
}

void SparcTarget::emitLoad(VCode &VC, Type Ty, Reg Rd, Reg Base, Reg Off) {
  unsigned Rt = isFpType(Ty) ? fpr(Rd) : gpr(Rd);
  VC.buf().put(memrr(loadOp3(Ty), Rt, gpr(Base), gpr(Off)));
}

void SparcTarget::emitLoadImm(VCode &VC, Type Ty, Reg Rd, Reg Base,
                              int64_t Off) {
  CodeBuffer &B = VC.buf();
  unsigned Rt = isFpType(Ty) ? fpr(Rd) : gpr(Rd);
  if (isInt<13>(Off)) {
    B.put(memri(loadOp3(Ty), Rt, gpr(Base), int32_t(Off)));
    return;
  }
  li(VC, G1, Off);
  B.put(memrr(loadOp3(Ty), Rt, gpr(Base), G1));
}

void SparcTarget::emitStore(VCode &VC, Type Ty, Reg Val, Reg Base, Reg Off) {
  unsigned Rt = isFpType(Ty) ? fpr(Val) : gpr(Val);
  VC.buf().put(memrr(storeOp3(Ty), Rt, gpr(Base), gpr(Off)));
}

void SparcTarget::emitStoreImm(VCode &VC, Type Ty, Reg Val, Reg Base,
                               int64_t Off) {
  CodeBuffer &B = VC.buf();
  unsigned Rt = isFpType(Ty) ? fpr(Val) : gpr(Val);
  if (isInt<13>(Off)) {
    B.put(memri(storeOp3(Ty), Rt, gpr(Base), int32_t(Off)));
    return;
  }
  li(VC, G1, Off);
  B.put(memrr(storeOp3(Ty), Rt, gpr(Base), G1));
}

// --- Control flow -------------------------------------------------------------------

/// Emits the Bicc for \p C (after a subcc) with a Branch fixup to \p L.
void SparcTarget::compareAndBranch(VCode &VC, Cond C, bool Unsigned,
                                   Label L) {
  unsigned BC;
  switch (C) {
  case Cond::Lt:
    BC = Unsigned ? CondCS : CondL;
    break;
  case Cond::Le:
    BC = Unsigned ? CondLEU : CondLE;
    break;
  case Cond::Gt:
    BC = Unsigned ? CondGU : CondG;
    break;
  case Cond::Ge:
    BC = Unsigned ? CondCC : CondGE;
    break;
  case Cond::Eq:
    BC = CondE;
    break;
  case Cond::Ne:
    BC = CondNE;
    break;
  default:
    unreachable("bad Cond");
  }
  VC.addFixup(FixupKind::Branch, L);
  VC.buf().put(bicc(BC));
  delaySlot(VC);
}

void SparcTarget::emitBranch(VCode &VC, Cond C, Type Ty, Reg Rs1, Reg Rs2,
                             Label L) {
  CodeBuffer &B = VC.buf();
  if (isFpType(Ty)) {
    bool Dbl = Ty == Type::D;
    B.put(fpop2(0, fpr(Rs1), Dbl ? FCMPD : FCMPS, fpr(Rs2)));
    B.put(nop()); // V8 requires one instruction between fcmp and fbfcc
    unsigned FC;
    switch (C) {
    case Cond::Lt:
      FC = FCondL;
      break;
    case Cond::Le:
      FC = FCondLE;
      break;
    case Cond::Gt:
      FC = FCondG;
      break;
    case Cond::Ge:
      FC = FCondGE;
      break;
    case Cond::Eq:
      FC = FCondE;
      break;
    case Cond::Ne:
      FC = FCondNE;
      break;
    default:
      unreachable("bad Cond");
    }
    VC.addFixup(FixupKind::Branch, L);
    B.put(fbfcc(FC));
    delaySlot(VC);
    return;
  }
  B.put(subcc(G0, gpr(Rs1), gpr(Rs2)));
  compareAndBranch(VC, C, !isSignedType(Ty), L);
}

void SparcTarget::emitBranchImm(VCode &VC, Cond C, Type Ty, Reg Rs1,
                                int64_t Imm, Label L) {
  if (isFpType(Ty))
    fatal("sparc: fp branches take register operands");
  CodeBuffer &B = VC.buf();
  if (isInt<13>(Imm)) {
    B.put(subcci(G0, gpr(Rs1), int32_t(Imm)));
  } else {
    li(VC, G1, Imm);
    B.put(subcc(G0, gpr(Rs1), G1));
  }
  compareAndBranch(VC, C, !isSignedType(Ty), L);
}

void SparcTarget::emitJump(VCode &VC, Label L) {
  VC.addFixup(FixupKind::Jump, L);
  VC.buf().put(ba(0));
  delaySlot(VC);
}

void SparcTarget::emitJumpReg(VCode &VC, Reg R) {
  VC.buf().put(jmpl(G0, gpr(R), 0));
  delaySlot(VC);
}

void SparcTarget::emitJumpAddr(VCode &VC, SimAddr A) {
  li(VC, G1, int64_t(A));
  VC.buf().put(jmpl(G0, G1, 0));
  delaySlot(VC);
}

void SparcTarget::emitCallAddr(VCode &VC, SimAddr A) {
  CodeBuffer &B = VC.buf();
  unsigned Link = gpr(VC.cc().LinkReg);
  if (Link == O7) {
    int64_t Disp = (int64_t(A) - int64_t(B.cursorAddr())) / 4;
    B.put(call(int32_t(Disp)));
  } else {
    li(VC, G1, int64_t(A));
    B.put(jmpl(Link, G1, 0));
  }
  delaySlot(VC);
}

void SparcTarget::emitCallLabel(VCode &VC, Label L) {
  if (gpr(VC.cc().LinkReg) != O7)
    fatal("sparc: call-to-label links through %%o7; substitute conventions "
          "must use callReg");
  VC.addFixup(FixupKind::Call, L);
  VC.buf().put(call(0));
  delaySlot(VC);
}

void SparcTarget::emitLinkReturn(VCode &VC) {
  // The call wrote its own address into the link register; resume past
  // the call and its delay slot.
  VC.buf().put(jmpl(G0, gpr(VC.cc().LinkReg), 8));
  delaySlot(VC);
}

void SparcTarget::emitCallReg(VCode &VC, Reg R) {
  VC.buf().put(jmpl(gpr(VC.cc().LinkReg), gpr(R), 0));
  delaySlot(VC);
}

void SparcTarget::emitRet(VCode &VC, Type Ty, Reg Rs) {
  CodeBuffer &B = VC.buf();
  unsigned Link = gpr(VC.cc().LinkReg);
  if (Ty == Type::D) {
    // Two fmovs do not fit the delay slot; move the result first.
    unsigned Ret = fpr(VC.resultReg(Ty));
    if (fpr(Rs) != Ret) {
      B.put(fpop1(Ret, 0, FMOVS, fpr(Rs)));
      B.put(fpop1(Ret + 1, 0, FMOVS, fpr(Rs) + 1));
    }
    VC.addFixup(FixupKind::EpilogueJump, VC.epilogueLabel());
    B.put(jmpl(G0, Link, 8));
    B.put(nop());
    return;
  }
  VC.addFixup(FixupKind::EpilogueJump, VC.epilogueLabel());
  B.put(jmpl(G0, Link, 8));
  if (Ty == Type::V) {
    B.put(nop());
  } else if (Ty == Type::F) {
    unsigned Ret = fpr(VC.resultReg(Ty));
    B.put(fpr(Rs) != Ret ? fpop1(Ret, 0, FMOVS, fpr(Rs)) : nop());
  } else {
    unsigned Ret = gpr(VC.resultReg(Ty));
    B.put(gpr(Rs) != Ret ? or_(Ret, gpr(Rs), G0) : nop());
  }
}

void SparcTarget::emitNop(VCode &VC) { VC.buf().put(nop()); }

// --- Function framing -----------------------------------------------------------------

std::string SparcTarget::disassemble(uint32_t Word, SimAddr Pc) const {
  return sparc::disassemble(Word, Pc);
}

void SparcTarget::beginFunction(VCode &VC) {
  ReservedWords = uint32_t(2 + 32 + 32 + VC.prologueArgCopies().size());
  for (uint32_t I = 0; I < ReservedWords; ++I)
    VC.buf().put(nop());
}

CodePtr SparcTarget::endFunction(VCode &VC) {
  const TargetInfo &TI = info();
  CodeBuffer &B = VC.buf();
  uint32_t F = VC.frameBytes();
  if (!isInt<13>(int64_t(F)))
    fatal("sparc: frame of %u bytes exceeds the simm13 range", F);

  uint32_t IntMask = VC.regAlloc().usedCalleeSavedMask(Reg::Int);
  uint32_t FpMask = VC.regAlloc().usedCalleeSavedMask(Reg::Fp);
  unsigned Link = gpr(VC.cc().LinkReg);

  std::vector<uint32_t> Pro;
  if (F) {
    Pro.push_back(addi(SP, SP, -int32_t(F)));
    if (!VC.isLeaf())
      Pro.push_back(memri(ST, Link, SP, int32_t(TI.linkSaveSlot())));
    for (unsigned N = 0; N < 32; ++N)
      if (IntMask & (1u << N))
        Pro.push_back(memri(ST, N, SP, int32_t(TI.intSaveSlot(N))));
    for (unsigned N = 0; N < 32; ++N)
      if (FpMask & (1u << N))
        Pro.push_back(memri(STDF, N, SP, int32_t(TI.fpSaveSlot(N))));
  }
  for (const PrologueArgCopy &Copy : VC.prologueArgCopies()) {
    int64_t Off = int64_t(F) + Copy.IncomingOff;
    if (!isInt<13>(Off))
      fatal("sparc: incoming stack argument offset %lld out of range",
            (long long)Off);
    unsigned Rt = isFpType(Copy.Ty) ? fpr(Copy.Dst) : gpr(Copy.Dst);
    Pro.push_back(memri(loadOp3(Copy.Ty), Rt, SP, int32_t(Off)));
  }

  if (Pro.size() > ReservedWords)
    fatal("sparc: prologue of %zu words exceeds the %u reserved", Pro.size(),
          ReservedWords);
  uint32_t Start = ReservedWords - uint32_t(Pro.size());
  for (size_t I = 0; I < Pro.size(); ++I)
    B.patch(uint32_t(Start + I), Pro[I]);

  if (F) {
    VC.label(VC.epilogueLabel());
    if (!VC.isLeaf())
      B.put(memri(LD, Link, SP, int32_t(TI.linkSaveSlot())));
    for (unsigned N = 0; N < 32; ++N)
      if (IntMask & (1u << N))
        B.put(memri(LD, N, SP, int32_t(TI.intSaveSlot(N))));
    for (unsigned N = 0; N < 32; ++N)
      if (FpMask & (1u << N))
        B.put(memri(LDDF, N, SP, int32_t(TI.fpSaveSlot(N))));
    B.put(jmpl(G0, Link, 8));
    B.put(addi(SP, SP, int32_t(F)));
  }

  CodePtr P;
  P.Entry = B.addrOfWord(Start);
  return P;
}

void SparcTarget::applyFixup(VCode &VC, const Fixup &F, SimAddr Target) {
  CodeBuffer &B = VC.buf();
  // SPARC pc-relative displacements count from the branch itself.
  auto Disp = [&]() {
    return (int64_t(Target) - int64_t(B.addrOfWord(F.WordIdx))) / 4;
  };
  switch (F.Kind) {
  case FixupKind::Call: {
    int64_t D = Disp();
    B.patch(F.WordIdx, call(int32_t(D)));
    return;
  }
  case FixupKind::Branch:
  case FixupKind::Jump: {
    int64_t D = Disp();
    if (!isInt<22>(D))
      fatal("sparc: branch displacement %lld out of range", (long long)D);
    B.patchOr(F.WordIdx, uint32_t(D) & 0x3fffff);
    return;
  }
  case FixupKind::EpilogueJump:
    if (Target != 0) {
      int64_t D = Disp();
      if (!isInt<22>(D))
        fatal("sparc: epilogue displacement out of range");
      B.patch(F.WordIdx, ba(int32_t(D)));
    }
    return;
  case FixupKind::AddrHi:
    B.patchOr(F.WordIdx, uint32_t(Target >> 10) & 0x3fffff);
    return;
  case FixupKind::AddrLo:
    B.patchOr(F.WordIdx, uint32_t(Target) & 0x3ff);
    return;
  }
  unreachable("bad FixupKind");
}

// --- Extension machine instructions ------------------------------------------------

void SparcTarget::registerMachineInstructions() {
  auto Fp2 = [](unsigned Opf) {
    return [Opf](VCode &VC, const Operand *Ops, unsigned N) {
      if (N != 2 || Ops[0].Kind != Operand::RegOp ||
          Ops[1].Kind != Operand::RegOp)
        fatal("sparc fp machine instruction expects (rd, rs)");
      VC.buf().put(fpop1(Ops[0].R.Num, 0, Opf, Ops[1].R.Num));
    };
  };
  defineInstruction("fsqrts", Fp2(FSQRTS));
  defineInstruction("fsqrtd", Fp2(FSQRTD));
  defineInstruction("sparc.xnor",
                    [](VCode &VC, const Operand *Ops, unsigned N) {
                      if (N != 3)
                        fatal("sparc.xnor expects (rd, rs1, rs2)");
                      VC.buf().put(
                          xnor(Ops[0].R.Num, Ops[1].R.Num, Ops[2].R.Num));
                    });
}
