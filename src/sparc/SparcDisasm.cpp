//===- sparc/SparcDisasm.cpp - SPARC disassembler -----------------------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "sparc/SparcDisasm.h"
#include "sparc/SparcEncoding.h"
#include "support/BitUtils.h"
#include <cstdarg>
#include <cstdio>

using namespace vcode;
using namespace vcode::sparc;

namespace {

std::string fmt(const char *Format, ...) {
  char Buf[128];
  va_list Ap;
  va_start(Ap, Format);
  std::vsnprintf(Buf, sizeof(Buf), Format, Ap);
  va_end(Ap);
  return Buf;
}

std::string regName(unsigned R) {
  static const char Banks[4] = {'g', 'o', 'l', 'i'};
  if (R == 14)
    return "%sp";
  if (R == 30)
    return "%fp";
  return fmt("%%%c%u", Banks[R >> 3], R & 7);
}

std::string operand2(uint32_t I) {
  if (I & (1u << 13))
    return fmt("%d", signExtend32<13>(I & 0x1fff));
  return regName(I & 31);
}

const char *IccName[16] = {"n",  "e",  "le", "l",  "leu", "cs", "neg", "vs",
                           "a",  "ne", "g",  "ge", "gu",  "cc", "pos", "vc"};
const char *FccName[16] = {"n",  "ne", "lg", "ul", "l",   "ug", "g",  "u",
                           "a",  "e",  "ue", "ge", "uge", "le", "ule", "o"};

} // namespace

std::string vcode::sparc::disassemble(uint32_t I, SimAddr Pc) {
  unsigned Op = I >> 30;
  unsigned Rd = (I >> 25) & 31;

  if (I == nop())
    return "nop";

  if (Op == 1) { // call
    int32_t Disp = signExtend32<30>(I & 0x3fffffff);
    return fmt("%-7s 0x%llx", "call",
               (unsigned long long)(Pc + (int64_t(Disp) << 2)));
  }
  if (Op == 0) {
    unsigned Op2 = (I >> 22) & 7;
    if (Op2 == 4)
      return fmt("%-7s %%hi(0x%x), %s", "sethi", (I & 0x3fffff) << 10,
                 regName(Rd).c_str());
    if (Op2 == 2 || Op2 == 6) {
      unsigned Cond = (I >> 25) & 15;
      int32_t Disp = signExtend32<22>(I & 0x3fffff);
      return fmt("%s%-4s 0x%llx", Op2 == 2 ? "b" : "fb",
                 (Op2 == 2 ? IccName : FccName)[Cond],
                 (unsigned long long)(Pc + (int64_t(Disp) << 2)));
    }
    return fmt(".word   0x%08x", I);
  }

  unsigned Op3 = (I >> 19) & 63;
  unsigned Rs1 = (I >> 14) & 31;

  if (Op == 2) {
    if (Op3 == 0x34 || Op3 == 0x35) { // FP operate
      unsigned Opf = (I >> 5) & 0x1ff;
      unsigned Fs2 = I & 31;
      const char *N = nullptr;
      bool Two = true;
      switch (Opf) {
      case FMOVS:
        N = "fmovs";
        break;
      case FNEGS:
        N = "fnegs";
        break;
      case FABSS:
        N = "fabss";
        break;
      case FSQRTS:
        N = "fsqrts";
        break;
      case FSQRTD:
        N = "fsqrtd";
        break;
      case FITOS:
        N = "fitos";
        break;
      case FITOD:
        N = "fitod";
        break;
      case FSTOD:
        N = "fstod";
        break;
      case FDTOS:
        N = "fdtos";
        break;
      case FSTOI:
        N = "fstoi";
        break;
      case FDTOI:
        N = "fdtoi";
        break;
      case FADDS:
        N = "fadds";
        Two = false;
        break;
      case FADDD:
        N = "faddd";
        Two = false;
        break;
      case FSUBS:
        N = "fsubs";
        Two = false;
        break;
      case FSUBD:
        N = "fsubd";
        Two = false;
        break;
      case FMULS:
        N = "fmuls";
        Two = false;
        break;
      case FMULD:
        N = "fmuld";
        Two = false;
        break;
      case FDIVS:
        N = "fdivs";
        Two = false;
        break;
      case FDIVD:
        N = "fdivd";
        Two = false;
        break;
      case FCMPS:
        return fmt("%-7s %%f%u, %%f%u", "fcmps", Rs1, Fs2);
      case FCMPD:
        return fmt("%-7s %%f%u, %%f%u", "fcmpd", Rs1, Fs2);
      default:
        return fmt(".word   0x%08x", I);
      }
      if (Two)
        return fmt("%-7s %%f%u, %%f%u", N, Fs2, Rd);
      return fmt("%-7s %%f%u, %%f%u, %%f%u", N, Rs1, Fs2, Rd);
    }

    const char *N = nullptr;
    switch (Op3) {
    case 0x00:
      N = "add";
      break;
    case 0x04:
      N = "sub";
      break;
    case 0x14:
      N = "subcc";
      break;
    case 0x01:
      N = "and";
      break;
    case 0x02:
      N = "or";
      break;
    case 0x03:
      N = "xor";
      break;
    case 0x07:
      N = "xnor";
      break;
    case 0x08:
      N = "addx";
      break;
    case 0x0a:
      N = "umul";
      break;
    case 0x0b:
      N = "smul";
      break;
    case 0x0e:
      N = "udiv";
      break;
    case 0x0f:
      N = "sdiv";
      break;
    case 0x25:
      N = "sll";
      break;
    case 0x26:
      N = "srl";
      break;
    case 0x27:
      N = "sra";
      break;
    case 0x28:
      return fmt("%-7s %s", "rd %y,", regName(Rd).c_str());
    case 0x30:
      return fmt("%-7s %s, %%y", "wr", regName(Rs1).c_str());
    case 0x38:
      return fmt("%-7s %s + %s, %s", "jmpl", regName(Rs1).c_str(),
                 operand2(I).c_str(), regName(Rd).c_str());
    default:
      return fmt(".word   0x%08x", I);
    }
    return fmt("%-7s %s, %s, %s", N, regName(Rs1).c_str(),
               operand2(I).c_str(), regName(Rd).c_str());
  }

  // Op == 3: memory.
  const char *N = nullptr;
  bool Fp = false;
  switch (Op3) {
  case LD:
    N = "ld";
    break;
  case LDUB:
    N = "ldub";
    break;
  case LDUH:
    N = "lduh";
    break;
  case LDSB:
    N = "ldsb";
    break;
  case LDSH:
    N = "ldsh";
    break;
  case ST:
    N = "st";
    break;
  case STB:
    N = "stb";
    break;
  case STH:
    N = "sth";
    break;
  case LDF:
    N = "ldf";
    Fp = true;
    break;
  case LDDF:
    N = "lddf";
    Fp = true;
    break;
  case STF:
    N = "stf";
    Fp = true;
    break;
  case STDF:
    N = "stdf";
    Fp = true;
    break;
  default:
    return fmt(".word   0x%08x", I);
  }
  std::string R = Fp ? fmt("%%f%u", Rd) : regName(Rd);
  bool IsStore = Op3 == ST || Op3 == STB || Op3 == STH || Op3 == STF ||
                 Op3 == STDF;
  if (IsStore)
    return fmt("%-7s %s, [%s + %s]", N, R.c_str(), regName(Rs1).c_str(),
               operand2(I).c_str());
  return fmt("%-7s [%s + %s], %s", N, regName(Rs1).c_str(),
             operand2(I).c_str(), R.c_str());
}

// --- profile/Disasm registration --------------------------------------------
// A static registrar publishes this disassembler under the target's name so
// --dump-code resolves it whenever the backend is linked in. Code words are
// stored little-endian in the code buffer's host memory.

#include "profile/Disasm.h"

namespace {

size_t decodeSparcWord(const uint8_t *P, size_t Avail, uint64_t Pc,
                       std::string &Out) {
  if (Avail < 4)
    return 0;
  uint32_t W = uint32_t(P[0]) | (uint32_t(P[1]) << 8) |
               (uint32_t(P[2]) << 16) | (uint32_t(P[3]) << 24);
  Out += sparc::disassemble(W, SimAddr(Pc));
  return 4;
}

const bool RegisteredSparcDisasm = [] {
  profile::registerDisassembler("sparc", &decodeSparcWord);
  return true;
}();

} // namespace
