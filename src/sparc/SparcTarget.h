//===- sparc/SparcTarget.h - SPARC V8 backend -------------------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SPARC port of VCODE. Uses a flat (windowless) register convention:
/// callee-saved registers are saved explicitly in the prologue rather than
/// with save/restore, which keeps the framing machinery shared with the
/// other ports and avoids window-overflow traps (the paper notes VCODE
/// clients "can dynamically substitute calling conventions"; this is the
/// convention this port substitutes — see DESIGN.md).
///
/// The hot emitters (ins*) are non-virtual and inline in this header for
/// VCodeT<SparcTarget> clients; TargetBase<SparcTarget> supplies the
/// virtual Target facade over the same code.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_SPARC_SPARCTARGET_H
#define VCODE_SPARC_SPARCTARGET_H

#include "core/EncTable.h"
#include "core/TargetBase.h"
#include "core/VCodeT.h"
#include "sparc/SparcEncoding.h"
#include "support/BitUtils.h"
#include <bit>
#include <cassert>

namespace vcode {
namespace sparc {

/// Returns the shared SPARC target description.
const TargetInfo &sparcTargetInfo();

// --- Encoding tables --------------------------------------------------------

/// Format-3 op3 codes for the single-word integer ALU ops; the signed /
/// unsigned variant is picked with pick(Unsigned). The same op3 serves the
/// register and simm13 forms. Div/Mod stay invalid: they need the
/// Y-register setup sequence.
inline constexpr BinOpEncTable<OpPairEnc> SparcAluTable = [] {
  BinOpEncTable<OpPairEnc> T;
  T.set(BinOp::Add, {0x00, 0x00})
      .set(BinOp::Sub, {0x04, 0x04})
      .set(BinOp::Mul, {0x0b, 0x0a}) // smul / umul
      .set(BinOp::And, {0x01, 0x01})
      .set(BinOp::Or, {0x02, 0x02})
      .set(BinOp::Xor, {0x03, 0x03})
      .set(BinOp::Lsh, {0x25, 0x25})
      .set(BinOp::Rsh, {0x27, 0x26}); // sra / srl
  return T;
}();

/// FPop1 opf codes, single/double picked with pick(Dbl).
inline constexpr BinOpEncTable<OpPairEnc> SparcFpAluTable = [] {
  BinOpEncTable<OpPairEnc> T;
  T.set(BinOp::Add, {FADDS, FADDD})
      .set(BinOp::Sub, {FSUBS, FSUBD})
      .set(BinOp::Mul, {FMULS, FMULD})
      .set(BinOp::Div, {FDIVS, FDIVD});
  return T;
}();

/// Bicc condition codes after a subcc, signed/unsigned picked with
/// pick(Unsigned).
inline constexpr CondEncTable<OpPairEnc> SparcBiccTable = [] {
  CondEncTable<OpPairEnc> T;
  T.set(Cond::Lt, {CondL, CondCS})
      .set(Cond::Le, {CondLE, CondLEU})
      .set(Cond::Gt, {CondG, CondGU})
      .set(Cond::Ge, {CondGE, CondCC})
      .set(Cond::Eq, {CondE, CondE})
      .set(Cond::Ne, {CondNE, CondNE});
  return T;
}();

/// FBfcc condition codes after an fcmp.
inline constexpr CondEncTable<OpEnc> SparcFCondTable = [] {
  CondEncTable<OpEnc> T;
  T.set(Cond::Lt, {FCondL})
      .set(Cond::Le, {FCondLE})
      .set(Cond::Gt, {FCondG})
      .set(Cond::Ge, {FCondGE})
      .set(Cond::Eq, {FCondE})
      .set(Cond::Ne, {FCondNE});
  return T;
}();

/// Memory op3 codes for typed loads and stores.
inline constexpr TypeEncTable<OpEnc> SparcLoadTable = [] {
  TypeEncTable<OpEnc> T;
  T.set(Type::C, {LDSB})
      .set(Type::UC, {LDUB})
      .set(Type::S, {LDSH})
      .set(Type::US, {LDUH})
      .set(Type::I, {LD})
      .set(Type::U, {LD})
      .set(Type::L, {LD})
      .set(Type::UL, {LD})
      .set(Type::P, {LD})
      .set(Type::F, {LDF})
      .set(Type::D, {LDDF});
  return T;
}();

inline constexpr TypeEncTable<OpEnc> SparcStoreTable = [] {
  TypeEncTable<OpEnc> T;
  T.set(Type::C, {STB})
      .set(Type::UC, {STB})
      .set(Type::S, {STH})
      .set(Type::US, {STH})
      .set(Type::I, {ST})
      .set(Type::U, {ST})
      .set(Type::L, {ST})
      .set(Type::UL, {ST})
      .set(Type::P, {ST})
      .set(Type::F, {STF})
      .set(Type::D, {STDF});
  return T;
}();

/// SPARC V8 code generator backend.
class SparcTarget final : public TargetBase<SparcTarget> {
public:
  SparcTarget();

  const TargetInfo &info() const override { return sparcTargetInfo(); }

  // --- Statically dispatched emitters --------------------------------------

  void insBinop(VCode &VC, BinOp Op, Type Ty, Reg Rd, Reg Rs1, Reg Rs2) {
    CodeBuffer &B = VC.buf();
    if (isFpType(Ty)) {
      const OpPairEnc &E = SparcFpAluTable[Op];
      if (!E.Valid)
        fatalKind(CgErrKind::BadOperand,
            "sparc: fp binop '%s' unsupported", binOpName(Op));
      B.put(fpop1(fpr(Rd), fpr(Rs1), E.pick(Ty == Type::D), fpr(Rs2)));
      return;
    }
    bool Unsigned = !isSignedType(Ty);
    unsigned D = gpr(Rd), S = gpr(Rs1), T = gpr(Rs2);
    const OpPairEnc &E = SparcAluTable[Op];
    if (E.Valid) {
      B.put(fmt3r(2, D, E.pick(Unsigned), S, T));
      return;
    }
    switch (Op) {
    case BinOp::Div:
      // The 64-bit dividend lives in Y:rs1; prime Y with the sign extension
      // (or zero) first.
      if (Unsigned) {
        B.ensureWords(2);
        B.put(wryi(G0, 0));
        B.put(udiv(D, S, T));
      } else {
        B.ensureWords(3);
        B.put(srai(G1, S, 31));
        B.put(wry(G1));
        B.put(sdiv(D, S, T));
      }
      return;
    case BinOp::Mod:
      // rem = a - (a/b)*b, computed through the assembler temporary.
      if (Unsigned) {
        B.ensureWords(4);
        B.put(wryi(G0, 0));
        B.put(udiv(G1, S, T));
      } else {
        B.ensureWords(5);
        B.put(srai(G1, S, 31));
        B.put(wry(G1));
        B.put(sdiv(G1, S, T));
      }
      B.put(smul(G1, G1, T));
      B.put(sub(D, S, G1));
      return;
    default:
      break;
    }
    unreachable("bad BinOp");
  }

  void insBinopImm(VCode &VC, BinOp Op, Type Ty, Reg Rd, Reg Rs1,
                   int64_t Imm) {
    if (isFpType(Ty))
      fatalKind(CgErrKind::BadOperand,
          "sparc: immediate operands are not allowed for f/d");
    CodeBuffer &B = VC.buf();
    unsigned D = gpr(Rd), S = gpr(Rs1);
    switch (Op) {
    case BinOp::Add:
    case BinOp::Sub:
    case BinOp::And:
    case BinOp::Or:
    case BinOp::Xor:
      if (isInt<13>(Imm)) {
        B.put(fmt3i(2, D, SparcAluTable[Op].pick(false), S, int32_t(Imm)));
        return;
      }
      break;
    case BinOp::Lsh:
    case BinOp::Rsh:
      assert(Imm >= 0 && Imm < 32 && "shift amount out of range");
      B.put(fmt3i(2, D, SparcAluTable[Op].pick(!isSignedType(Ty)), S,
                  int32_t(Imm)));
      return;
    case BinOp::Div:
    case BinOp::Mod: {
      // The Y-register setup needs G1, so the divisor goes into the second
      // scratch register G5 (reserved, like G1, from allocation).
      bool Signed = isSignedType(Ty);
      if (Signed) {
        B.put(srai(G1, S, 31));
        B.put(wry(G1));
      } else {
        B.put(wryi(G0, 0));
      }
      li(VC, G5, Imm);
      if (Op == BinOp::Div) {
        B.put(Signed ? sdiv(D, S, G5) : udiv(D, S, G5));
      } else {
        B.put(Signed ? sdiv(G1, S, G5) : udiv(G1, S, G5));
        B.put(smul(G1, G1, G5));
        B.put(sub(D, S, G1));
      }
      return;
    }
    default:
      break;
    }
    li(VC, G1, Imm);
    insBinop(VC, Op, Ty, Rd, Rs1, intReg(G1));
  }

  void insUnop(VCode &VC, UnOp Op, Type Ty, Reg Rd, Reg Rs) {
    CodeBuffer &B = VC.buf();
    if (isFpType(Ty)) {
      bool Dbl = Ty == Type::D;
      unsigned D = fpr(Rd), S = fpr(Rs);
      switch (Op) {
      case UnOp::Mov:
        if (Dbl)
          B.ensureWords(2);
        B.put(fpop1(D, 0, FMOVS, S));
        if (Dbl)
          B.put(fpop1(D + 1, 0, FMOVS, S + 1));
        return;
      case UnOp::Neg:
        // fnegs negates the sign of the most significant half; with our
        // little-endian pair layout that is the odd register.
        if (Dbl) {
          B.ensureWords(2);
          B.put(fpop1(D, 0, FMOVS, S));
          B.put(fpop1(D + 1, 0, FNEGS, S + 1));
        } else {
          B.put(fpop1(D, 0, FNEGS, S));
        }
        return;
      default:
        fatalKind(CgErrKind::BadOperand,
            "sparc: fp unop unsupported");
      }
    }
    unsigned D = gpr(Rd), S = gpr(Rs);
    switch (Op) {
    case UnOp::Com:
      B.put(xnor(D, S, G0));
      return;
    case UnOp::Not:
      // rd = (rs == 0): carry of (0 - rs) is set iff rs != 0.
      B.ensureWords(3);
      B.put(subcc(G0, G0, S));
      B.put(addxi(D, G0, 0));
      B.put(xori(D, D, 1));
      return;
    case UnOp::Mov:
      B.put(or_(D, S, G0));
      return;
    case UnOp::Neg:
      B.put(sub(D, G0, S));
      return;
    }
    unreachable("bad UnOp");
  }

  void insSetInt(VCode &VC, Type Ty, Reg Rd, uint64_t Imm) {
    (void)Ty;
    li(VC, gpr(Rd), int64_t(int32_t(uint32_t(Imm))));
  }

  void insSetFp(VCode &VC, Type Ty, Reg Rd, double Val) {
    CodeBuffer &B = VC.buf();
    if (Ty == Type::F) {
      uint32_t Bits = std::bit_cast<uint32_t>(float(Val));
      li(VC, G1, int64_t(int32_t(Bits)));
      B.put(memri(ST, G1, SP, RedZone));
      B.put(memri(LDF, fpr(Rd), SP, RedZone));
      return;
    }
    Label Pool = VC.constPoolLabel(std::bit_cast<uint64_t>(Val));
    B.ensureWords(3);
    addrOfLabel(VC, G1, Pool);
    B.put(memri(LDDF, fpr(Rd), G1, 0));
  }

  void insCvt(VCode &VC, Type From, Type To, Reg Rd, Reg Rs) {
    CodeBuffer &B = VC.buf();
    bool FromIntReg = isIntRegType(From);
    bool ToIntReg = isIntRegType(To);
    if (FromIntReg && ToIntReg) {
      if (Rd != Rs)
        B.put(or_(gpr(Rd), gpr(Rs), G0));
      return;
    }
    if (FromIntReg && isFpType(To)) {
      bool Uns = From == Type::U || From == Type::UL || From == Type::P;
      unsigned S = gpr(Rs);
      if (!Uns) {
        B.ensureWords(3);
        B.put(memri(ST, S, SP, RedZone));
        B.put(memri(LDF, FAT0, SP, RedZone));
        B.put(fpop1(fpr(Rd), 0, To == Type::F ? FITOS : FITOD, FAT0));
        return;
      }
      // Unsigned: convert as signed to double, then add 2^32 when the sign
      // bit was set; narrow to single at the end if needed.
      Label Pool = VC.constPoolLabel(std::bit_cast<uint64_t>(4294967296.0));
      unsigned Acc = To == Type::D ? fpr(Rd) : FAT1;
      B.ensureWords(To == Type::D ? 10 : 11);
      B.put(memri(ST, S, SP, RedZone));
      B.put(memri(LDF, FAT0, SP, RedZone));
      B.put(fpop1(Acc, 0, FITOD, FAT0));
      B.put(subcci(G0, S, 0)); // sets N from rs
      B.put(bicc(CondGE, 6));  // skip the 5-word fix block
      B.put(nop());
      addrOfLabel(VC, G1, Pool); // 2 words
      B.put(memri(LDDF, FAT0, G1, 0));
      B.put(fpop1(Acc, Acc, FADDD, FAT0));
      if (To == Type::F)
        B.put(fpop1(fpr(Rd), 0, FDTOS, Acc));
      return;
    }
    if (isFpType(From) && ToIntReg) {
      B.ensureWords(3);
      B.put(fpop1(FAT0, 0, From == Type::F ? FSTOI : FDTOI, fpr(Rs)));
      B.put(memri(STF, FAT0, SP, RedZone));
      B.put(memri(LD, gpr(Rd), SP, RedZone));
      return;
    }
    if (From == Type::F && To == Type::D) {
      B.put(fpop1(fpr(Rd), 0, FSTOD, fpr(Rs)));
      return;
    }
    if (From == Type::D && To == Type::F) {
      B.put(fpop1(fpr(Rd), 0, FDTOS, fpr(Rs)));
      return;
    }
    fatalKind(CgErrKind::BadOperand,
        "sparc: unsupported conversion %s -> %s", typeName(From),
          typeName(To));
  }

  void insLoad(VCode &VC, Type Ty, Reg Rd, Reg Base, Reg Off) {
    VC.buf().put(memrr(loadOp3(Ty), isFpType(Ty) ? fpr(Rd) : gpr(Rd),
                       gpr(Base), gpr(Off)));
  }

  void insLoadImm(VCode &VC, Type Ty, Reg Rd, Reg Base, int64_t Off) {
    CodeBuffer &B = VC.buf();
    unsigned Rt = isFpType(Ty) ? fpr(Rd) : gpr(Rd);
    if (isInt<13>(Off)) {
      B.put(memri(loadOp3(Ty), Rt, gpr(Base), int32_t(Off)));
      return;
    }
    li(VC, G1, Off);
    B.put(memrr(loadOp3(Ty), Rt, gpr(Base), G1));
  }

  void insStore(VCode &VC, Type Ty, Reg Val, Reg Base, Reg Off) {
    VC.buf().put(memrr(storeOp3(Ty), isFpType(Ty) ? fpr(Val) : gpr(Val),
                       gpr(Base), gpr(Off)));
  }

  void insStoreImm(VCode &VC, Type Ty, Reg Val, Reg Base, int64_t Off) {
    CodeBuffer &B = VC.buf();
    unsigned Rt = isFpType(Ty) ? fpr(Val) : gpr(Val);
    if (isInt<13>(Off)) {
      B.put(memri(storeOp3(Ty), Rt, gpr(Base), int32_t(Off)));
      return;
    }
    li(VC, G1, Off);
    B.put(memrr(storeOp3(Ty), Rt, gpr(Base), G1));
  }

  void insBranch(VCode &VC, Cond C, Type Ty, Reg Rs1, Reg Rs2, Label L) {
    CodeBuffer &B = VC.buf();
    if (isFpType(Ty)) {
      const OpEnc &E = SparcFCondTable[C];
      if (!E.Valid)
        unreachable("bad Cond");
      B.ensureWords(3);
      B.put(fpop2(0, fpr(Rs1), Ty == Type::D ? FCMPD : FCMPS, fpr(Rs2)));
      B.put(nop()); // V8 requires one instruction between fcmp and fbfcc
      VC.addFixup(FixupKind::Branch, L);
      B.put(fbfcc(E.Op));
      delaySlot(VC);
      return;
    }
    B.put(subcc(G0, gpr(Rs1), gpr(Rs2)));
    compareAndBranch(VC, C, !isSignedType(Ty), L);
  }

  void insBranchImm(VCode &VC, Cond C, Type Ty, Reg Rs1, int64_t Imm,
                    Label L) {
    if (isFpType(Ty))
      fatalKind(CgErrKind::BadOperand,
          "sparc: fp branches take register operands");
    CodeBuffer &B = VC.buf();
    if (isInt<13>(Imm)) {
      B.put(subcci(G0, gpr(Rs1), int32_t(Imm)));
    } else {
      li(VC, G1, Imm);
      B.put(subcc(G0, gpr(Rs1), G1));
    }
    compareAndBranch(VC, C, !isSignedType(Ty), L);
  }

  void insJump(VCode &VC, Label L) {
    VC.addFixup(FixupKind::Jump, L);
    VC.buf().put(ba(0));
    delaySlot(VC);
  }

  void insJumpReg(VCode &VC, Reg R) {
    VC.buf().put(jmpl(G0, gpr(R), 0));
    delaySlot(VC);
  }

  void insJumpAddr(VCode &VC, SimAddr A) {
    li(VC, G1, int64_t(A));
    VC.buf().put(jmpl(G0, G1, 0));
    delaySlot(VC);
  }

  void insCallAddr(VCode &VC, SimAddr A) {
    CodeBuffer &B = VC.buf();
    unsigned Link = gpr(VC.cc().LinkReg);
    if (Link == O7) {
      int64_t Disp = (int64_t(A) - int64_t(B.cursorAddr())) / 4;
      B.put(call(int32_t(Disp)));
    } else {
      li(VC, G1, int64_t(A));
      B.put(jmpl(Link, G1, 0));
    }
    delaySlot(VC);
  }

  void insCallLabel(VCode &VC, Label L) {
    if (gpr(VC.cc().LinkReg) != O7)
      fatal("sparc: call-to-label links through %%o7; substitute conventions "
            "must use callReg");
    VC.addFixup(FixupKind::Call, L);
    VC.buf().put(call(0));
    delaySlot(VC);
  }

  void insLinkReturn(VCode &VC) {
    // The call wrote its own address into the link register; resume past
    // the call and its delay slot.
    VC.buf().put(jmpl(G0, gpr(VC.cc().LinkReg), 8));
    delaySlot(VC);
  }

  void insCallReg(VCode &VC, Reg R) {
    VC.buf().put(jmpl(gpr(VC.cc().LinkReg), gpr(R), 0));
    delaySlot(VC);
  }

  void insRet(VCode &VC, Type Ty, Reg Rs) {
    CodeBuffer &B = VC.buf();
    unsigned Link = gpr(VC.cc().LinkReg);
    if (Ty == Type::D) {
      // Two fmovs do not fit the delay slot; move the result first.
      unsigned Ret = fpr(VC.resultReg(Ty));
      B.ensureWords(fpr(Rs) != Ret ? 4 : 2);
      if (fpr(Rs) != Ret) {
        B.put(fpop1(Ret, 0, FMOVS, fpr(Rs)));
        B.put(fpop1(Ret + 1, 0, FMOVS, fpr(Rs) + 1));
      }
      VC.addFixup(FixupKind::EpilogueJump, VC.epilogueLabel());
      B.put(jmpl(G0, Link, 8));
      B.put(nop());
      return;
    }
    B.ensureWords(2);
    VC.addFixup(FixupKind::EpilogueJump, VC.epilogueLabel());
    B.put(jmpl(G0, Link, 8));
    if (Ty == Type::V) {
      B.put(nop());
    } else if (Ty == Type::F) {
      unsigned Ret = fpr(VC.resultReg(Ty));
      B.put(fpr(Rs) != Ret ? fpop1(Ret, 0, FMOVS, fpr(Rs)) : nop());
    } else {
      unsigned Ret = gpr(VC.resultReg(Ty));
      B.put(gpr(Rs) != Ret ? or_(Ret, gpr(Rs), G0) : nop());
    }
  }

  void insRetImm(VCode &VC, Type Ty, int64_t Imm) {
    unsigned Ret = gpr(VC.resultReg(Ty));
    int32_t V = int32_t(Imm);
    if (!isInt<13>(V)) {
      // sethi/or pair does not fit the delay slot; materialize first.
      li(VC, Ret, Imm);
      insRet(VC, Ty, VC.resultReg(Ty));
      return;
    }
    CodeBuffer &B = VC.buf();
    B.ensureWords(2);
    VC.addFixup(FixupKind::EpilogueJump, VC.epilogueLabel());
    B.put(jmpl(G0, gpr(VC.cc().LinkReg), 8));
    B.put(ori(Ret, G0, V));
  }

  void insNop(VCode &VC) { VC.buf().put(nop()); }

  // --- Cold paths (defined in SparcTarget.cpp) ------------------------------

  std::string disassemble(uint32_t Word, SimAddr Pc) const override;

  void beginFunction(VCode &VC) override;
  CodePtr endFunction(VCode &VC) override;
  void applyFixup(VCode &VC, const Fixup &F, SimAddr Target) override;

private:
  // FP scratch (register pairs f28/f29 and f30/f31), excluded from
  // allocation.
  static constexpr unsigned FAT0 = 28;
  static constexpr unsigned FAT1 = 30;

  // Scratch stack slot for int<->fp register moves (SPARC V8 has no direct
  // move): an 8-byte red zone below the stack pointer. Safe in this
  // single-threaded, signal-free simulation environment.
  static constexpr int32_t RedZone = -8;

  static unsigned gpr(Reg R) {
    assert(R.isInt() && "integer register expected");
    return R.Num;
  }
  static unsigned fpr(Reg R) {
    assert(R.isFp() && "fp register expected");
    return R.Num;
  }

  static unsigned loadOp3(Type Ty) {
    const OpEnc &E = SparcLoadTable[Ty];
    if (!E.Valid)
      unreachable("bad load type");
    return E.Op;
  }
  static unsigned storeOp3(Type Ty) {
    const OpEnc &E = SparcStoreTable[Ty];
    if (!E.Valid)
      unreachable("bad store type");
    return E.Op;
  }

  void li(VCode &VC, unsigned Rd, int64_t Imm) {
    CodeBuffer &B = VC.buf();
    int32_t V = int32_t(Imm);
    if (isInt<13>(V)) {
      B.put(ori(Rd, G0, V));
      return;
    }
    B.put(sethi(Rd, uint32_t(V) >> 10));
    if (uint32_t(V) & 0x3ff)
      B.put(ori(Rd, Rd, int32_t(uint32_t(V) & 0x3ff)));
  }

  void addrOfLabel(VCode &VC, unsigned Rd, Label L) {
    CodeBuffer &B = VC.buf();
    VC.addFixup(FixupKind::AddrHi, L);
    B.put(sethi(Rd, 0));
    VC.addFixup(FixupKind::AddrLo, L);
    B.put(ori(Rd, Rd, 0));
  }

  void delaySlot(VCode &VC) {
    if (!VC.suppressDelayNop())
      VC.buf().put(nop());
  }

  /// Emits the Bicc for \p C (after a subcc) with a Branch fixup to \p L.
  void compareAndBranch(VCode &VC, Cond C, bool Unsigned, Label L) {
    const OpPairEnc &E = SparcBiccTable[C];
    if (!E.Valid)
      unreachable("bad Cond");
    VC.addFixup(FixupKind::Branch, L);
    VC.buf().put(bicc(E.pick(Unsigned)));
    delaySlot(VC);
  }

  void registerMachineInstructions();

};

} // namespace sparc

// One shared instantiation of the static-dispatch emission core for this
// backend (defined in SparcTarget.cpp).
extern template class VCodeT<sparc::SparcTarget>;

} // namespace vcode

#endif // VCODE_SPARC_SPARCTARGET_H
