//===- sparc/SparcTarget.h - SPARC V8 backend -------------------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SPARC port of VCODE. Uses a flat (windowless) register convention:
/// callee-saved registers are saved explicitly in the prologue rather than
/// with save/restore, which keeps the framing machinery shared with the
/// other ports and avoids window-overflow traps (the paper notes VCODE
/// clients "can dynamically substitute calling conventions"; this is the
/// convention this port substitutes — see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_SPARC_SPARCTARGET_H
#define VCODE_SPARC_SPARCTARGET_H

#include "core/Target.h"
#include "core/VCode.h"

namespace vcode {
namespace sparc {

/// Returns the shared SPARC target description.
const TargetInfo &sparcTargetInfo();

/// SPARC V8 code generator backend.
class SparcTarget final : public Target {
public:
  SparcTarget();

  const TargetInfo &info() const override { return sparcTargetInfo(); }

  void emitBinop(VCode &VC, BinOp Op, Type Ty, Reg Rd, Reg Rs1,
                 Reg Rs2) override;
  void emitBinopImm(VCode &VC, BinOp Op, Type Ty, Reg Rd, Reg Rs1,
                    int64_t Imm) override;
  void emitUnop(VCode &VC, UnOp Op, Type Ty, Reg Rd, Reg Rs) override;
  void emitSetInt(VCode &VC, Type Ty, Reg Rd, uint64_t Imm) override;
  void emitSetFp(VCode &VC, Type Ty, Reg Rd, double Val) override;
  void emitCvt(VCode &VC, Type From, Type To, Reg Rd, Reg Rs) override;
  void emitLoad(VCode &VC, Type Ty, Reg Rd, Reg Base, Reg Off) override;
  void emitLoadImm(VCode &VC, Type Ty, Reg Rd, Reg Base, int64_t Off) override;
  void emitStore(VCode &VC, Type Ty, Reg Val, Reg Base, Reg Off) override;
  void emitStoreImm(VCode &VC, Type Ty, Reg Val, Reg Base,
                    int64_t Off) override;
  void emitBranch(VCode &VC, Cond C, Type Ty, Reg Rs1, Reg Rs2,
                  Label L) override;
  void emitBranchImm(VCode &VC, Cond C, Type Ty, Reg Rs1, int64_t Imm,
                     Label L) override;
  void emitJump(VCode &VC, Label L) override;
  void emitJumpReg(VCode &VC, Reg R) override;
  void emitJumpAddr(VCode &VC, SimAddr A) override;
  void emitCallAddr(VCode &VC, SimAddr A) override;
  void emitCallLabel(VCode &VC, Label L) override;
  void emitLinkReturn(VCode &VC) override;
  void emitCallReg(VCode &VC, Reg R) override;
  void emitRet(VCode &VC, Type Ty, Reg Rs) override;
  void emitNop(VCode &VC) override;

  std::string disassemble(uint32_t Word, SimAddr Pc) const override;

  void beginFunction(VCode &VC) override;
  CodePtr endFunction(VCode &VC) override;
  void applyFixup(VCode &VC, const Fixup &F, SimAddr Target) override;

private:
  void li(VCode &VC, unsigned Rd, int64_t Imm);
  void addrOfLabel(VCode &VC, unsigned Rd, Label L);
  void delaySlot(VCode &VC);
  void compareAndBranch(VCode &VC, Cond C, bool Unsigned, Label L);
  void registerMachineInstructions();

  uint32_t ReservedWords = 0;
};

} // namespace sparc
} // namespace vcode

#endif // VCODE_SPARC_SPARCTARGET_H
