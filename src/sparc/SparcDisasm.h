//===- sparc/SparcDisasm.h - SPARC disassembler -----------------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic disassembler for the SPARC V8 subset the backend emits
/// (paper §6.2 debugger support).
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_SPARC_SPARCDISASM_H
#define VCODE_SPARC_SPARCDISASM_H

#include "core/CodeBuffer.h"
#include <string>

namespace vcode {
namespace sparc {

/// Disassembles one instruction word fetched from address \p Pc.
std::string disassemble(uint32_t Word, SimAddr Pc);

} // namespace sparc
} // namespace vcode

#endif // VCODE_SPARC_SPARCDISASM_H
