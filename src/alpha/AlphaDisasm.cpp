//===- alpha/AlphaDisasm.cpp - Alpha disassembler ------------------------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "alpha/AlphaDisasm.h"
#include "alpha/AlphaEncoding.h"
#include "support/BitUtils.h"
#include <cstdarg>
#include <cstdio>

using namespace vcode;
using namespace vcode::alpha;

namespace {

const char *RegName[32] = {"v0", "t0", "t1", "t2",  "t3",  "t4", "t5", "t6",
                           "t7", "s0", "s1", "s2",  "s3",  "s4", "s5", "fp",
                           "a0", "a1", "a2", "a3",  "a4",  "a5", "t8", "t9",
                           "t10", "t11", "ra", "t12", "at", "gp", "sp",
                           "zero"};

std::string fmt(const char *Format, ...) {
  char Buf[128];
  va_list Ap;
  va_start(Ap, Format);
  std::vsnprintf(Buf, sizeof(Buf), Format, Ap);
  va_end(Ap);
  return Buf;
}

std::string operandB(uint32_t I) {
  if (I & (1u << 12))
    return fmt("#%u", (I >> 13) & 0xff);
  return RegName[(I >> 16) & 31];
}

} // namespace

std::string vcode::alpha::disassemble(uint32_t I, SimAddr Pc) {
  unsigned Op = I >> 26;
  unsigned Ra = (I >> 21) & 31, Rb = (I >> 16) & 31;
  int32_t D16 = signExtend32<16>(I & 0xffff);
  int32_t D21 = signExtend32<21>(I & 0x1fffff);

  if (I == nop())
    return "nop";

  auto MemI = [&](const char *N) {
    return fmt("%-7s %s, %d(%s)", N, RegName[Ra], D16, RegName[Rb]);
  };
  auto MemF = [&](const char *N) {
    return fmt("%-7s f%u, %d(%s)", N, Ra, D16, RegName[Rb]);
  };
  auto Br = [&](const char *N) {
    return fmt("%-7s %s, 0x%llx", N, RegName[Ra],
               (unsigned long long)(Pc + 4 + (int64_t(D21) << 2)));
  };
  auto FBr = [&](const char *N) {
    return fmt("%-7s f%u, 0x%llx", N, Ra,
               (unsigned long long)(Pc + 4 + (int64_t(D21) << 2)));
  };

  switch (Op) {
  case 0x08:
    return MemI("lda");
  case 0x09:
    return MemI("ldah");
  case 0x0b:
    return MemI("ldq_u");
  case 0x0f:
    return MemI("stq_u");
  case 0x28:
    return MemI("ldl");
  case 0x29:
    return MemI("ldq");
  case 0x2c:
    return MemI("stl");
  case 0x2d:
    return MemI("stq");
  case 0x22:
    return MemF("lds");
  case 0x23:
    return MemF("ldt");
  case 0x26:
    return MemF("sts");
  case 0x27:
    return MemF("stt");
  case 0x30:
    return Br("br");
  case 0x34:
    return Br("bsr");
  case 0x39:
    return Br("beq");
  case 0x3d:
    return Br("bne");
  case 0x3a:
    return Br("blt");
  case 0x3b:
    return Br("ble");
  case 0x3f:
    return Br("bgt");
  case 0x3e:
    return Br("bge");
  case 0x31:
    return FBr("fbeq");
  case 0x35:
    return FBr("fbne");
  case 0x1a: {
    unsigned Hint = (I >> 14) & 3;
    const char *N = Hint == 0 ? "jmp" : (Hint == 1 ? "jsr" : "ret");
    return fmt("%-7s %s, (%s)", N, RegName[Ra], RegName[Rb]);
  }
  case 0x10:
  case 0x11:
  case 0x12:
  case 0x13: {
    unsigned Fn = (I >> 5) & 0x7f;
    unsigned Rc = I & 31;
    const char *N = nullptr;
    if (Op == 0x10) {
      switch (Fn) {
      case 0x00: N = "addl"; break;
      case 0x09: N = "subl"; break;
      case 0x20: N = "addq"; break;
      case 0x29: N = "subq"; break;
      case 0x2d: N = "cmpeq"; break;
      case 0x4d: N = "cmplt"; break;
      case 0x6d: N = "cmple"; break;
      case 0x1d: N = "cmpult"; break;
      case 0x3d: N = "cmpule"; break;
      }
    } else if (Op == 0x11) {
      switch (Fn) {
      case 0x00: N = "and"; break;
      case 0x20: N = "bis"; break;
      case 0x40: N = "xor"; break;
      case 0x28: N = "ornot"; break;
      case 0x08: N = "bic"; break;
      }
    } else if (Op == 0x12) {
      switch (Fn) {
      case 0x39: N = "sll"; break;
      case 0x34: N = "srl"; break;
      case 0x3c: N = "sra"; break;
      case 0x06: N = "extbl"; break;
      case 0x16: N = "extwl"; break;
      case 0x0b: N = "insbl"; break;
      case 0x1b: N = "inswl"; break;
      case 0x02: N = "mskbl"; break;
      case 0x12: N = "mskwl"; break;
      case 0x31: N = "zapnot"; break;
      case 0x30: N = "zap"; break;
      }
    } else {
      switch (Fn) {
      case 0x00: N = "mull"; break;
      case 0x20: N = "mulq"; break;
      case 0x30: N = "umulh"; break;
      }
    }
    if (!N)
      break;
    return fmt("%-7s %s, %s, %s", N, RegName[Ra], operandB(I).c_str(),
               RegName[Rc]);
  }
  case 0x14: {
    unsigned Fn = (I >> 5) & 0x7ff;
    unsigned Fc = I & 31;
    if (Fn == 0x08b)
      return fmt("%-7s f%u, f%u", "sqrts", Rb, Fc);
    if (Fn == 0x0ab)
      return fmt("%-7s f%u, f%u", "sqrtt", Rb, Fc);
    break;
  }
  case 0x16: {
    unsigned Fn = (I >> 5) & 0x7ff;
    unsigned Fc = I & 31;
    const char *N = nullptr;
    bool Two = false;
    switch (Fn) {
    case ADDS: N = "adds"; break;
    case ADDT: N = "addt"; break;
    case SUBS: N = "subs"; break;
    case SUBT: N = "subt"; break;
    case MULS: N = "muls"; break;
    case MULT: N = "mult"; break;
    case DIVS: N = "divs"; break;
    case DIVT: N = "divt"; break;
    case CMPTEQ: N = "cmpteq"; break;
    case CMPTLT: N = "cmptlt"; break;
    case CMPTLE: N = "cmptle"; break;
    case CVTQS: N = "cvtqs"; Two = true; break;
    case CVTQT: N = "cvtqt"; Two = true; break;
    case CVTTQC: N = "cvttq/c"; Two = true; break;
    case CVTTS: N = "cvtts"; Two = true; break;
    }
    if (!N)
      break;
    if (Two)
      return fmt("%-7s f%u, f%u", N, Rb, Fc);
    return fmt("%-7s f%u, f%u, f%u", N, Ra, Rb, Fc);
  }
  case 0x17: {
    unsigned Fn = (I >> 5) & 0x7ff;
    unsigned Fc = I & 31;
    if (Fn == 0x020)
      return fmt("%-7s f%u, f%u, f%u", "cpys", Ra, Rb, Fc);
    if (Fn == 0x021)
      return fmt("%-7s f%u, f%u, f%u", "cpysn", Ra, Rb, Fc);
    break;
  }
  }
  return fmt(".word   0x%08x", I);
}

// --- profile/Disasm registration --------------------------------------------
// A static registrar publishes this disassembler under the target's name so
// --dump-code resolves it whenever the backend is linked in. Code words are
// stored little-endian in the code buffer's host memory.

#include "profile/Disasm.h"

namespace {

size_t decodeAlphaWord(const uint8_t *P, size_t Avail, uint64_t Pc,
                       std::string &Out) {
  if (Avail < 4)
    return 0;
  uint32_t W = uint32_t(P[0]) | (uint32_t(P[1]) << 8) |
               (uint32_t(P[2]) << 16) | (uint32_t(P[3]) << 24);
  Out += alpha::disassemble(W, SimAddr(Pc));
  return 4;
}

const bool RegisteredAlphaDisasm = [] {
  profile::registerDisassembler("alpha", &decodeAlphaWord);
  return true;
}();

} // namespace
