//===- alpha/AlphaTarget.cpp - Alpha backend ---------------------------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
// The hot emitters live inline in AlphaTarget.h; this file holds the cold
// paths: target description, function framing, fixups, disassembly, the
// division helper routines, and the machine-level extension instructions.
//
//===----------------------------------------------------------------------===//

#include "alpha/AlphaTarget.h"
#include "support/Telemetry.h"
#include "alpha/AlphaDisasm.h"

using namespace vcode;
using namespace vcode::alpha;

const TargetInfo &vcode::alpha::alphaTargetInfo() {
  static const TargetInfo TI = [] {
    TargetInfo T;
    T.Name = "alpha";
    T.WordBytes = 8;
    T.HasBranchDelaySlot = false;
    T.LoadDelaySlots = 0;
    T.Zero = intReg(ZERO);
    T.At = intReg(AT);
    T.Sp = intReg(SP);
    T.Ra = intReg(RA);
    T.IntTemps = {intReg(T0), intReg(T1), intReg(T2), intReg(T3), intReg(T4),
                  intReg(T5), intReg(T6), intReg(T7), intReg(T8), intReg(T9),
                  intReg(A5), intReg(A4), intReg(A3), intReg(A2), intReg(A1),
                  intReg(A0)};
    T.IntSaves = {intReg(S0), intReg(S1), intReg(S2), intReg(S3),
                  intReg(S4), intReg(S5), intReg(FP)};
    T.FpTemps = {fpReg(1),  fpReg(10), fpReg(11), fpReg(12), fpReg(13),
                 fpReg(14), fpReg(15), fpReg(22), fpReg(23), fpReg(24),
                 fpReg(25), fpReg(26), fpReg(29), fpReg(30), fpReg(21),
                 fpReg(20), fpReg(19), fpReg(18), fpReg(17), fpReg(16)};
    T.FpSaves = {fpReg(2), fpReg(3), fpReg(4), fpReg(5),
                 fpReg(6), fpReg(7), fpReg(8), fpReg(9)};
    T.DefaultCC.IntArgRegs = {intReg(A0), intReg(A1), intReg(A2),
                              intReg(A3), intReg(A4), intReg(A5)};
    T.DefaultCC.FpArgRegs = {fpReg(16), fpReg(17), fpReg(18),
                             fpReg(19), fpReg(20), fpReg(21)};
    T.DefaultCC.IntRet = intReg(V0);
    T.DefaultCC.FpRet = fpReg(0);
    T.DefaultCC.LinkReg = intReg(RA);
    T.DefaultCC.MinOutArgBytes = 0;
    T.OutArgReserveBytes = 64;
    return T;
  }();
  return TI;
}

AlphaTarget::AlphaTarget() { registerMachineInstructions(); }

// --- Division (no hardware divide on the 21064) ------------------------------

void AlphaTarget::divCall(VCode &VC, Type Ty, Reg Rd, Reg Rs1, Reg Rs2,
                          bool Rem) {
  if (!divHelpersInstalled())
    fatal("alpha: integer division requires AlphaTarget::installDivHelpers() "
          "(the 21064 has no divide instruction; paper §5.2)");
  CodeBuffer &B = VC.buf();
  bool Signed = isSignedType(Ty);
  // Marshal operands under the helper convention. 32-bit unsigned operands
  // must be zero-extended for the 64-bit helper; everything else is already
  // canonical.
  if (Ty == Type::U) {
    B.put(zapnoti(AT3, gpr(Rs1), 0x0f));
    B.put(zapnoti(AT2, gpr(Rs2), 0x0f));
  } else {
    B.put(bis(AT3, gpr(Rs1), gpr(Rs1)));
    B.put(bis(AT2, gpr(Rs2), gpr(Rs2)));
  }
  li(VC, T12, int64_t(DivHelper[(Signed ? 2 : 0) + (Rem ? 1 : 0)]));
  B.put(jsr(AT, T12)); // link in AT: leaf callers keep their own ra intact
  if (is32(Ty))
    B.put(addli(gpr(Rd), T12, 0)); // re-canonicalize the 32-bit result
  else
    B.put(bis(gpr(Rd), T12, T12));
}

// --- Function framing ----------------------------------------------------------------

std::string AlphaTarget::disassemble(uint32_t Word, SimAddr Pc) const {
  return alpha::disassemble(Word, Pc);
}

void AlphaTarget::beginFunction(VCode &VC) {
  // Reserve instruction-stream space for the worst-case prologue
  // (paper §5.2): frame allocation, link save, every callee-saved register,
  // and one copy per stack-passed argument. v_end writes the real prologue
  // into the tail of this region and the entry point skips the rest.
  uint32_t ReservedWords = uint32_t(2 + 32 + 32 + VC.prologueArgCopies().size());
  VC.setReservedPrologueWords(ReservedWords);
  VC.buf().ensureWords(ReservedWords);
  for (uint32_t I = 0; I < ReservedWords; ++I)
    VC.buf().put(nop());
}

CodePtr AlphaTarget::endFunction(VCode &VC) {
  VCODE_TM_COUNT("alpha.functions", 1);
  const TargetInfo &TI = info();
  CodeBuffer &B = VC.buf();
  uint32_t F = VC.frameBytes();
  if (!isInt<15>(int64_t(F)))
    fatalKind(CgErrKind::OutOfRange,
        "alpha: frame of %u bytes exceeds the displacement range", F);

  uint32_t IntMask = VC.regAlloc().usedCalleeSavedMask(Reg::Int);
  uint32_t FpMask = VC.regAlloc().usedCalleeSavedMask(Reg::Fp);
  unsigned Link = gpr(VC.cc().LinkReg);

  std::vector<uint32_t> Pro;
  if (F) {
    Pro.push_back(lda(SP, SP, -int32_t(F)));
    if (!VC.isLeaf())
      Pro.push_back(stq(Link, SP, int32_t(TI.linkSaveSlot())));
    for (unsigned N = 0; N < 32; ++N)
      if (IntMask & (1u << N))
        Pro.push_back(stq(N, SP, int32_t(TI.intSaveSlot(N))));
    for (unsigned N = 0; N < 32; ++N)
      if (FpMask & (1u << N))
        Pro.push_back(stt(N, SP, int32_t(TI.fpSaveSlot(N))));
  }
  for (const PrologueArgCopy &Copy : VC.prologueArgCopies()) {
    int64_t Off = int64_t(F) + Copy.IncomingOff;
    if (!isInt<15>(Off))
      fatalKind(CgErrKind::OutOfRange,
          "alpha: incoming stack argument offset out of range");
    switch (Copy.Ty) {
    case Type::F:
      Pro.push_back(lds(fpr(Copy.Dst), SP, int32_t(Off)));
      break;
    case Type::D:
      Pro.push_back(ldt(fpr(Copy.Dst), SP, int32_t(Off)));
      break;
    case Type::I:
    case Type::U:
      Pro.push_back(ldl(gpr(Copy.Dst), SP, int32_t(Off)));
      break;
    default:
      Pro.push_back(ldq(gpr(Copy.Dst), SP, int32_t(Off)));
      break;
    }
  }

  uint32_t ReservedWords = VC.reservedPrologueWords();
  if (Pro.size() > ReservedWords)
    fatalKind(CgErrKind::Internal,
        "alpha: prologue of %zu words exceeds the %u reserved", Pro.size(),
          ReservedWords);
  uint32_t Start = ReservedWords - uint32_t(Pro.size());
  for (size_t I = 0; I < Pro.size(); ++I)
    B.patch(uint32_t(Start + I), Pro[I]);

  if (F) {
    VC.label(VC.epilogueLabel());
    if (!VC.isLeaf())
      B.put(ldq(Link, SP, int32_t(TI.linkSaveSlot())));
    for (unsigned N = 0; N < 32; ++N)
      if (IntMask & (1u << N))
        B.put(ldq(N, SP, int32_t(TI.intSaveSlot(N))));
    for (unsigned N = 0; N < 32; ++N)
      if (FpMask & (1u << N))
        B.put(ldt(N, SP, int32_t(TI.fpSaveSlot(N))));
    B.put(lda(SP, SP, int32_t(F)));
    B.put(ret(ZERO, Link));
  }

  CodePtr P;
  P.Entry = B.addrOfWord(Start);
  return P;
}

void AlphaTarget::applyFixup(VCode &VC, const Fixup &F, SimAddr Target) {
  CodeBuffer &B = VC.buf();
  auto Disp = [&]() {
    return (int64_t(Target) - int64_t(B.addrOfWord(F.WordIdx) + 4)) / 4;
  };
  switch (F.Kind) {
  case FixupKind::Call:
  case FixupKind::Branch:
  case FixupKind::Jump: {
    int64_t D = Disp();
    if (!isInt<21>(D))
      fatalKind(CgErrKind::OutOfRange,
          "alpha: branch displacement %lld out of range", (long long)D);
    B.patchOr(F.WordIdx, uint32_t(D) & 0x1fffff);
    return;
  }
  case FixupKind::EpilogueJump:
    if (Target != 0) {
      int64_t D = Disp();
      if (!isInt<21>(D))
        fatalKind(CgErrKind::OutOfRange,
            "alpha: epilogue displacement out of range");
      B.patch(F.WordIdx, br(ZERO, int32_t(D)));
    }
    return;
  case FixupKind::AddrHi: {
    int64_t Lo = int64_t(int16_t(Target & 0xffff));
    int64_t Hi = (int64_t(Target) - Lo) >> 16;
    B.patchOr(F.WordIdx, uint32_t(Hi) & 0xffff);
    return;
  }
  case FixupKind::AddrLo:
    B.patchOr(F.WordIdx, uint32_t(Target) & 0xffff);
    return;
  }
  unreachable("bad FixupKind");
}

// --- Division helpers (generated with VCODE itself) ----------------------------------

CodePtr AlphaTarget::generateDivHelper(CodeMem Mem, bool Signed,
                                       bool WantRem) {
  VCode V(*this);

  // The substituted convention of paper §5.2: arguments in t10/t11, result
  // in t12, link in at — so callers (even leaf procedures) lose nothing.
  CallConv CC;
  CC.IntArgRegs = {intReg(T10), intReg(T11)};
  CC.IntRet = intReg(T12);
  CC.FpRet = fpReg(0);
  CC.LinkReg = intReg(AT);
  V.setCallConv(CC);

  Reg Arg[2];
  V.lambda("%U%U", Arg, LeafHint, Mem);
  // "Routines that emulate common machine instructions frequently obey
  // different calling conventions in that they save all caller-saved
  // registers": interrupt-handler register mode (§5.3).
  V.allRegsCalleeSaved();

  Reg A = V.getreg(Type::UL, RegClass::Var);
  Reg Bv = V.getreg(Type::UL, RegClass::Var);
  Reg Q = V.getreg(Type::UL, RegClass::Var);
  Reg R = V.getreg(Type::UL, RegClass::Var);
  Reg Cnt = V.getreg(Type::UL, RegClass::Var);
  Reg T = V.getreg(Type::UL, RegClass::Var);
  Reg NegQ, SignA;
  // The link arrived in AT, which doubles as the assembler temporary the
  // compare-and-branch sequences below scribble on: park it in a saved
  // register and restore it just before returning.
  Reg LinkSave = V.getreg(Type::UL, RegClass::Var);
  V.movul(LinkSave, V.atReg());
  V.movul(A, Arg[0]);
  V.movul(Bv, Arg[1]);

  if (Signed) {
    NegQ = V.getreg(Type::UL, RegClass::Var);
    SignA = V.getreg(Type::UL, RegClass::Var);
    V.setul(NegQ, 0);
    V.setul(SignA, 0);
    Label APos = V.genLabel();
    V.bgeli(A, 0, APos);
    V.negl(A, A);
    V.setul(NegQ, 1);
    V.setul(SignA, 1);
    V.label(APos);
    Label BPos = V.genLabel();
    V.bgeli(Bv, 0, BPos);
    V.negl(Bv, Bv);
    V.xoruli(NegQ, NegQ, 1);
    V.label(BPos);
  }

  // Restoring long division, one bit per iteration.
  V.setul(Q, 0);
  V.setul(R, 0);
  V.setul(Cnt, 64);
  Label Loop = V.genLabel(), Skip = V.genLabel();
  V.label(Loop);
  V.lshuli(R, R, 1);
  V.rshuli(T, A, 63);
  V.orul(R, R, T);
  V.lshuli(A, A, 1);
  V.lshuli(Q, Q, 1);
  V.bltul(R, Bv, Skip);
  V.subul(R, R, Bv);
  V.oruli(Q, Q, 1);
  V.label(Skip);
  V.subuli(Cnt, Cnt, 1);
  V.bneuli(Cnt, 0, Loop);

  Reg Res = WantRem ? R : Q;
  if (Signed) {
    // Quotient sign: XOR of operand signs; remainder sign: the dividend's.
    Label Done = V.genLabel();
    V.bequli(WantRem ? SignA : NegQ, 0, Done);
    V.negl(Res, Res);
    V.label(Done);
  }
  V.movul(V.atReg(), LinkSave);
  V.retul(Res);
  return V.end();
}

void AlphaTarget::installDivHelpers(CodeMem Region) {
  size_t Quarter = (Region.Size / 4) & ~size_t(7);
  if (Quarter < 1024)
    fatal("alpha: installDivHelpers needs at least 4KB of code memory");
  for (unsigned Signed = 0; Signed < 2; ++Signed)
    for (unsigned Rem = 0; Rem < 2; ++Rem) {
      unsigned Idx = Signed * 2 + Rem;
      CodeMem M;
      M.Host = Region.Host + Idx * Quarter;
      M.Guest = Region.Guest + Idx * Quarter;
      M.Size = Quarter;
      CodePtr P = generateDivHelper(M, Signed != 0, Rem != 0);
      DivHelper[Idx] = P.Entry;
    }
}

// --- Extension machine instructions ----------------------------------------------

void AlphaTarget::registerMachineInstructions() {
  auto Fp2 = [](bool Dbl) {
    return [Dbl](VCode &VC, const Operand *Ops, unsigned N) {
      if (N != 2 || Ops[0].Kind != Operand::RegOp ||
          Ops[1].Kind != Operand::RegOp)
        fatalKind(CgErrKind::BadOperand,
            "alpha fp machine instruction expects (rd, rs)");
      VC.buf().put(Dbl ? sqrtt(Ops[0].R.Num, Ops[1].R.Num)
                       : sqrts(Ops[0].R.Num, Ops[1].R.Num));
    };
  };
  defineInstruction("fsqrts", Fp2(false));
  defineInstruction("fsqrtd", Fp2(true));
  defineInstruction("alpha.ornot",
                    [](VCode &VC, const Operand *Ops, unsigned N) {
                      if (N != 3)
                        fatalKind(CgErrKind::BadOperand,
                            "alpha.ornot expects (rd, rs1, rs2)");
                      VC.buf().put(ornot(Ops[0].R.Num, Ops[1].R.Num,
                                         Ops[2].R.Num));
                    });
}

// The shared static-dispatch instantiation declared in AlphaTarget.h.
template class vcode::VCodeT<AlphaTarget>;
