//===- alpha/AlphaTarget.cpp - Alpha backend ---------------------------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "alpha/AlphaTarget.h"
#include "alpha/AlphaDisasm.h"
#include "alpha/AlphaEncoding.h"
#include "support/BitUtils.h"
#include <cassert>
#include <cstring>

using namespace vcode;
using namespace vcode::alpha;

// Scratch registers reserved from allocation: AT (r28) plus AT2 (r25, also
// the division helpers' second argument) and r24 (helper first argument /
// third scratch of the byte-store synthesis).
static constexpr unsigned AT2 = T11; // r25
static constexpr unsigned AT3 = T10; // r24
// FP scratch.
static constexpr unsigned FAT0 = 27;
static constexpr unsigned FAT1 = 28;
// Red-zone slot for int<->fp moves (no direct move on the 21064).
static constexpr int32_t RedZone = -8;

static unsigned gpr(Reg R) {
  assert(R.isInt() && "integer register expected");
  return R.Num;
}

static unsigned fpr(Reg R) {
  assert(R.isFp() && "fp register expected");
  return R.Num;
}

/// I and U are 32-bit on Alpha; values live sign-extended in 64-bit
/// registers (the architecture's canonical longword form).
static bool is32(Type Ty) { return Ty == Type::I || Ty == Type::U; }

const TargetInfo &vcode::alpha::alphaTargetInfo() {
  static const TargetInfo TI = [] {
    TargetInfo T;
    T.Name = "alpha";
    T.WordBytes = 8;
    T.HasBranchDelaySlot = false;
    T.LoadDelaySlots = 0;
    T.Zero = intReg(ZERO);
    T.At = intReg(AT);
    T.Sp = intReg(SP);
    T.Ra = intReg(RA);
    T.IntTemps = {intReg(T0), intReg(T1), intReg(T2), intReg(T3), intReg(T4),
                  intReg(T5), intReg(T6), intReg(T7), intReg(T8), intReg(T9),
                  intReg(A5), intReg(A4), intReg(A3), intReg(A2), intReg(A1),
                  intReg(A0)};
    T.IntSaves = {intReg(S0), intReg(S1), intReg(S2), intReg(S3),
                  intReg(S4), intReg(S5), intReg(FP)};
    T.FpTemps = {fpReg(1),  fpReg(10), fpReg(11), fpReg(12), fpReg(13),
                 fpReg(14), fpReg(15), fpReg(22), fpReg(23), fpReg(24),
                 fpReg(25), fpReg(26), fpReg(29), fpReg(30), fpReg(21),
                 fpReg(20), fpReg(19), fpReg(18), fpReg(17), fpReg(16)};
    T.FpSaves = {fpReg(2), fpReg(3), fpReg(4), fpReg(5),
                 fpReg(6), fpReg(7), fpReg(8), fpReg(9)};
    T.DefaultCC.IntArgRegs = {intReg(A0), intReg(A1), intReg(A2),
                              intReg(A3), intReg(A4), intReg(A5)};
    T.DefaultCC.FpArgRegs = {fpReg(16), fpReg(17), fpReg(18),
                             fpReg(19), fpReg(20), fpReg(21)};
    T.DefaultCC.IntRet = intReg(V0);
    T.DefaultCC.FpRet = fpReg(0);
    T.DefaultCC.LinkReg = intReg(RA);
    T.DefaultCC.MinOutArgBytes = 0;
    T.OutArgReserveBytes = 64;
    return T;
  }();
  return TI;
}

AlphaTarget::AlphaTarget() { registerMachineInstructions(); }

// --- Helpers -----------------------------------------------------------------

void AlphaTarget::li(VCode &VC, unsigned Rd, int64_t V) {
  CodeBuffer &B = VC.buf();
  if (isInt<16>(V)) {
    B.put(lda(Rd, ZERO, int32_t(V)));
    return;
  }
  int64_t Lo = int64_t(int16_t(V & 0xffff));
  // Wrapping subtraction: V may be INT64_MAX with a negative Lo.
  int64_t Rem = int64_t(uint64_t(V) - uint64_t(Lo));
  if ((Rem & 0xffff) == 0 && isInt<16>(Rem >> 16)) {
    B.put(ldah(Rd, ZERO, int32_t(Rem >> 16)));
    if (Lo)
      B.put(lda(Rd, Rd, int32_t(Lo)));
    return;
  }
  // Wide 64-bit constant: load it from the constant pool (the same
  // end-of-function pool used for FP immediates, paper §5.2).
  Label Pool = VC.constPoolLabel(uint64_t(V));
  addrOfLabel(VC, Rd, Pool);
  B.put(ldq(Rd, Rd, 0));
}

void AlphaTarget::addrOfLabel(VCode &VC, unsigned Rd, Label L) {
  CodeBuffer &B = VC.buf();
  VC.addFixup(FixupKind::AddrHi, L);
  B.put(ldah(Rd, ZERO, 0));
  VC.addFixup(FixupKind::AddrLo, L);
  B.put(lda(Rd, Rd, 0));
}

// --- ALU -----------------------------------------------------------------------

void AlphaTarget::emitDivCall(VCode &VC, Type Ty, Reg Rd, Reg Rs1, Reg Rs2,
                              bool Rem) {
  if (!divHelpersInstalled())
    fatal("alpha: integer division requires AlphaTarget::installDivHelpers() "
          "(the 21064 has no divide instruction; paper §5.2)");
  CodeBuffer &B = VC.buf();
  bool Signed = isSignedType(Ty);
  // Marshal operands under the helper convention. 32-bit unsigned operands
  // must be zero-extended for the 64-bit helper; everything else is already
  // canonical.
  if (Ty == Type::U) {
    B.put(zapnoti(AT3, gpr(Rs1), 0x0f));
    B.put(zapnoti(AT2, gpr(Rs2), 0x0f));
  } else {
    B.put(bis(AT3, gpr(Rs1), gpr(Rs1)));
    B.put(bis(AT2, gpr(Rs2), gpr(Rs2)));
  }
  li(VC, T12, int64_t(DivHelper[(Signed ? 2 : 0) + (Rem ? 1 : 0)]));
  B.put(jsr(AT, T12)); // link in AT: leaf callers keep their own ra intact
  if (is32(Ty))
    B.put(addli(gpr(Rd), T12, 0)); // re-canonicalize the 32-bit result
  else
    B.put(bis(gpr(Rd), T12, T12));
}

void AlphaTarget::emitBinop(VCode &VC, BinOp Op, Type Ty, Reg Rd, Reg Rs1,
                            Reg Rs2) {
  CodeBuffer &B = VC.buf();
  if (isFpType(Ty)) {
    bool Dbl = Ty == Type::D;
    unsigned D = fpr(Rd), S = fpr(Rs1), T = fpr(Rs2);
    switch (Op) {
    case BinOp::Add:
      B.put(fop(Dbl ? ADDT : ADDS, D, S, T));
      return;
    case BinOp::Sub:
      B.put(fop(Dbl ? SUBT : SUBS, D, S, T));
      return;
    case BinOp::Mul:
      B.put(fop(Dbl ? MULT : MULS, D, S, T));
      return;
    case BinOp::Div:
      B.put(fop(Dbl ? DIVT : DIVS, D, S, T));
      return;
    default:
      fatal("alpha: fp binop '%s' unsupported", binOpName(Op));
    }
  }
  bool W32 = is32(Ty);
  unsigned D = gpr(Rd), S = gpr(Rs1), T = gpr(Rs2);
  switch (Op) {
  case BinOp::Add:
    B.put(W32 ? addl(D, S, T) : addq(D, S, T));
    return;
  case BinOp::Sub:
    B.put(W32 ? subl(D, S, T) : subq(D, S, T));
    return;
  case BinOp::Mul:
    B.put(W32 ? mull(D, S, T) : mulq(D, S, T));
    return;
  case BinOp::Div:
    emitDivCall(VC, Ty, Rd, Rs1, Rs2, /*Rem=*/false);
    return;
  case BinOp::Mod:
    emitDivCall(VC, Ty, Rd, Rs1, Rs2, /*Rem=*/true);
    return;
  case BinOp::And:
    B.put(and_(D, S, T));
    return;
  case BinOp::Or:
    B.put(bis(D, S, T));
    return;
  case BinOp::Xor:
    B.put(xor_(D, S, T));
    return;
  case BinOp::Lsh:
    B.put(sll(D, S, T));
    if (W32)
      B.put(addli(D, D, 0)); // truncate + sign-extend to canonical form
    return;
  case BinOp::Rsh:
    if (!W32) {
      B.put(isSignedType(Ty) ? sra(D, S, T) : srl(D, S, T));
      return;
    }
    if (Ty == Type::I) {
      B.put(sra(D, S, T)); // canonical form is already sign-extended
      return;
    }
    // 32-bit logical shift: zero-extend, shift, re-canonicalize.
    B.put(zapnoti(AT, S, 0x0f));
    B.put(srl(D, AT, T));
    B.put(addli(D, D, 0));
    return;
  }
  unreachable("bad BinOp");
}

void AlphaTarget::emitBinopImm(VCode &VC, BinOp Op, Type Ty, Reg Rd, Reg Rs1,
                               int64_t Imm) {
  if (isFpType(Ty))
    fatal("alpha: immediate operands are not allowed for f/d");
  CodeBuffer &B = VC.buf();
  bool W32 = is32(Ty);
  unsigned D = gpr(Rd), S = gpr(Rs1);
  bool Lit8 = Imm >= 0 && Imm <= 255;
  switch (Op) {
  case BinOp::Add:
    if (Lit8) {
      B.put(W32 ? addli(D, S, unsigned(Imm)) : addqi(D, S, unsigned(Imm)));
      return;
    }
    break;
  case BinOp::Sub:
    if (Lit8) {
      B.put(W32 ? subli(D, S, unsigned(Imm)) : subqi(D, S, unsigned(Imm)));
      return;
    }
    break;
  case BinOp::And:
    if (Lit8) {
      B.put(andi(D, S, unsigned(Imm)));
      return;
    }
    break;
  case BinOp::Or:
    if (Lit8) {
      B.put(bisi(D, S, unsigned(Imm)));
      return;
    }
    break;
  case BinOp::Xor:
    if (Lit8) {
      B.put(xori(D, S, unsigned(Imm)));
      return;
    }
    break;
  case BinOp::Lsh: {
    unsigned Sh = unsigned(Imm) & 63;
    B.put(slli(D, S, Sh));
    if (W32)
      B.put(addli(D, D, 0));
    return;
  }
  case BinOp::Rsh: {
    unsigned Sh = unsigned(Imm) & 63;
    if (!W32) {
      B.put(isSignedType(Ty) ? srai(D, S, Sh) : srli(D, S, Sh));
      return;
    }
    if (Ty == Type::I) {
      B.put(srai(D, S, Sh));
      return;
    }
    B.put(zapnoti(AT, S, 0x0f));
    B.put(srli(D, AT, Sh));
    B.put(addli(D, D, 0));
    return;
  }
  default:
    break;
  }
  li(VC, AT, Imm);
  emitBinop(VC, Op, Ty, Rd, Rs1, intReg(AT));
}

void AlphaTarget::emitUnop(VCode &VC, UnOp Op, Type Ty, Reg Rd, Reg Rs) {
  CodeBuffer &B = VC.buf();
  if (isFpType(Ty)) {
    switch (Op) {
    case UnOp::Mov:
      B.put(cpys(fpr(Rd), fpr(Rs), fpr(Rs)));
      return;
    case UnOp::Neg:
      B.put(cpysn(fpr(Rd), fpr(Rs), fpr(Rs)));
      return;
    default:
      fatal("alpha: fp unop unsupported");
    }
  }
  unsigned D = gpr(Rd), S = gpr(Rs);
  switch (Op) {
  case UnOp::Com:
    B.put(ornot(D, ZERO, S));
    return;
  case UnOp::Not:
    B.put(cmpeqi(D, S, 0));
    return;
  case UnOp::Mov:
    B.put(bis(D, S, S));
    return;
  case UnOp::Neg:
    B.put(is32(Ty) || Ty == Type::I ? subl(D, ZERO, S) : subq(D, ZERO, S));
    return;
  }
  unreachable("bad UnOp");
}

void AlphaTarget::emitSetInt(VCode &VC, Type Ty, Reg Rd, uint64_t Imm) {
  if (is32(Ty))
    li(VC, gpr(Rd), int64_t(int32_t(uint32_t(Imm))));
  else
    li(VC, gpr(Rd), int64_t(Imm));
}

void AlphaTarget::emitSetFp(VCode &VC, Type Ty, Reg Rd, double Val) {
  CodeBuffer &B = VC.buf();
  if (Ty == Type::F) {
    float F = float(Val);
    uint32_t Bits;
    std::memcpy(&Bits, &F, 4);
    li(VC, AT, int64_t(int32_t(Bits)));
    B.put(stl(AT, SP, RedZone));
    B.put(lds(fpr(Rd), SP, RedZone));
    return;
  }
  uint64_t Bits;
  std::memcpy(&Bits, &Val, 8);
  Label Pool = VC.constPoolLabel(Bits);
  addrOfLabel(VC, AT, Pool);
  B.put(ldt(fpr(Rd), AT, 0));
}

void AlphaTarget::emitCvt(VCode &VC, Type From, Type To, Reg Rd, Reg Rs) {
  CodeBuffer &B = VC.buf();
  bool FromIntReg = isIntRegType(From);
  bool ToIntReg = isIntRegType(To);
  if (FromIntReg && ToIntReg) {
    unsigned D = gpr(Rd), S = gpr(Rs);
    if (is32(To) && !is32(From)) {
      B.put(addli(D, S, 0)); // truncate to 32 bits, canonical form
      return;
    }
    if (!is32(To) && From == Type::U) {
      B.put(zapnoti(D, S, 0x0f)); // 32-bit unsigned widens with zeroes
      return;
    }
    if (Rd != Rs)
      B.put(bis(D, S, S));
    return;
  }
  if (FromIntReg && isFpType(To)) {
    unsigned S = gpr(Rs);
    if (From == Type::U) {
      B.put(zapnoti(AT, S, 0x0f));
      S = AT;
    }
    B.put(stq(S, SP, RedZone));
    B.put(ldt(FAT0, SP, RedZone));
    if (From == Type::UL || From == Type::P) {
      // Unsigned 64-bit: convert as signed, then add 2^64 when negative.
      uint64_t TwoTo64;
      double Dv = 18446744073709551616.0;
      std::memcpy(&TwoTo64, &Dv, 8);
      Label Pool = VC.constPoolLabel(TwoTo64);
      unsigned Acc = To == Type::D ? fpr(Rd) : FAT1;
      B.put(fop(CVTQT, Acc, 31, FAT0));
      B.put(bge(gpr(Rs), 4)); // skip the 4-word fix block
      addrOfLabel(VC, AT, Pool);
      B.put(ldt(FAT0, AT, 0));
      B.put(fop(ADDT, Acc, Acc, FAT0));
      if (To == Type::F)
        B.put(fop(CVTTS, fpr(Rd), 31, Acc));
      return;
    }
    B.put(fop(To == Type::F ? CVTQS : CVTQT, fpr(Rd), 31, FAT0));
    return;
  }
  if (isFpType(From) && ToIntReg) {
    B.put(fop(CVTTQC, FAT0, 31, fpr(Rs)));
    B.put(stt(FAT0, SP, RedZone));
    B.put(ldq(gpr(Rd), SP, RedZone));
    if (is32(To))
      B.put(addli(gpr(Rd), gpr(Rd), 0));
    return;
  }
  if (From == Type::F && To == Type::D) {
    // Register F values are already in T format.
    B.put(cpys(fpr(Rd), fpr(Rs), fpr(Rs)));
    return;
  }
  if (From == Type::D && To == Type::F) {
    B.put(fop(CVTTS, fpr(Rd), 31, fpr(Rs)));
    return;
  }
  fatal("alpha: unsupported conversion %s -> %s", typeName(From),
        typeName(To));
}

// --- Memory --------------------------------------------------------------------

/// Sub-word loads: the pre-BWX synthesis from ldq_u/ext (paper §6.2).
void AlphaTarget::byteFieldLoad(VCode &VC, Type Ty, unsigned Rd, unsigned Base,
                                int64_t Off) {
  CodeBuffer &B = VC.buf();
  assert(isInt<15>(Off) && "sub-word offset out of range");
  B.put(lda(AT, Base, int32_t(Off)));
  B.put(ldq_u(Rd, AT, 0));
  bool IsByte = Ty == Type::C || Ty == Type::UC;
  B.put(IsByte ? extbl(Rd, Rd, AT) : extwl(Rd, Rd, AT));
  if (isSignedType(Ty)) {
    unsigned Sh = IsByte ? 56 : 48;
    B.put(slli(Rd, Rd, Sh));
    B.put(srai(Rd, Rd, Sh));
  }
}

void AlphaTarget::byteFieldStore(VCode &VC, Type Ty, unsigned Val,
                                 unsigned Base, int64_t Off) {
  CodeBuffer &B = VC.buf();
  assert(isInt<15>(Off) && "sub-word offset out of range");
  bool IsByte = Ty == Type::C || Ty == Type::UC;
  B.put(lda(AT, Base, int32_t(Off)));
  B.put(ldq_u(AT2, AT, 0));
  B.put(IsByte ? insbl(AT3, Val, AT) : inswl(AT3, Val, AT));
  B.put(IsByte ? mskbl(AT2, AT2, AT) : mskwl(AT2, AT2, AT));
  B.put(bis(AT2, AT2, AT3));
  B.put(stq_u(AT2, AT, 0));
}

void AlphaTarget::emitLoadImm(VCode &VC, Type Ty, Reg Rd, Reg Base,
                              int64_t Off) {
  CodeBuffer &B = VC.buf();
  if (!isInt<15>(Off)) {
    li(VC, AT, Off);
    B.put(addq(AT, AT, gpr(Base)));
    emitLoadImm(VC, Ty, Rd, intReg(AT), 0);
    return;
  }
  switch (Ty) {
  case Type::C:
  case Type::UC:
  case Type::S:
  case Type::US:
    byteFieldLoad(VC, Ty, gpr(Rd), gpr(Base), Off);
    return;
  case Type::I:
  case Type::U:
    B.put(ldl(gpr(Rd), gpr(Base), int32_t(Off)));
    return;
  case Type::L:
  case Type::UL:
  case Type::P:
    B.put(ldq(gpr(Rd), gpr(Base), int32_t(Off)));
    return;
  case Type::F:
    B.put(lds(fpr(Rd), gpr(Base), int32_t(Off)));
    return;
  case Type::D:
    B.put(ldt(fpr(Rd), gpr(Base), int32_t(Off)));
    return;
  case Type::V:
    break;
  }
  unreachable("bad load type");
}

void AlphaTarget::emitLoad(VCode &VC, Type Ty, Reg Rd, Reg Base, Reg Off) {
  // The ldq_u synthesis needs the address in AT anyway; form it there.
  VC.buf().put(addq(AT, gpr(Base), gpr(Off)));
  emitLoadImm(VC, Ty, Rd, intReg(AT), 0);
}

void AlphaTarget::emitStoreImm(VCode &VC, Type Ty, Reg Val, Reg Base,
                               int64_t Off) {
  CodeBuffer &B = VC.buf();
  if (!isInt<15>(Off)) {
    li(VC, AT, Off);
    B.put(addq(AT, AT, gpr(Base)));
    emitStoreImm(VC, Ty, Val, intReg(AT), 0);
    return;
  }
  switch (Ty) {
  case Type::C:
  case Type::UC:
  case Type::S:
  case Type::US:
    byteFieldStore(VC, Ty, gpr(Val), gpr(Base), Off);
    return;
  case Type::I:
  case Type::U:
    B.put(stl(gpr(Val), gpr(Base), int32_t(Off)));
    return;
  case Type::L:
  case Type::UL:
  case Type::P:
    B.put(stq(gpr(Val), gpr(Base), int32_t(Off)));
    return;
  case Type::F:
    B.put(sts(fpr(Val), gpr(Base), int32_t(Off)));
    return;
  case Type::D:
    B.put(stt(fpr(Val), gpr(Base), int32_t(Off)));
    return;
  case Type::V:
    break;
  }
  unreachable("bad store type");
}

void AlphaTarget::emitStore(VCode &VC, Type Ty, Reg Val, Reg Base, Reg Off) {
  VC.buf().put(addq(AT, gpr(Base), gpr(Off)));
  emitStoreImm(VC, Ty, Val, intReg(AT), 0);
}

// --- Control flow -----------------------------------------------------------------

void AlphaTarget::emitBranch(VCode &VC, Cond C, Type Ty, Reg Rs1, Reg Rs2,
                             Label L) {
  CodeBuffer &B = VC.buf();
  if (isFpType(Ty)) {
    unsigned A = fpr(Rs1), Bf = fpr(Rs2);
    bool TrueBranch = true;
    switch (C) {
    case Cond::Lt:
      B.put(fop(CMPTLT, FAT0, A, Bf));
      break;
    case Cond::Le:
      B.put(fop(CMPTLE, FAT0, A, Bf));
      break;
    case Cond::Gt:
      B.put(fop(CMPTLT, FAT0, Bf, A));
      break;
    case Cond::Ge:
      B.put(fop(CMPTLE, FAT0, Bf, A));
      break;
    case Cond::Eq:
      B.put(fop(CMPTEQ, FAT0, A, Bf));
      break;
    case Cond::Ne:
      B.put(fop(CMPTEQ, FAT0, A, Bf));
      TrueBranch = false;
      break;
    }
    VC.addFixup(FixupKind::Branch, L);
    B.put(TrueBranch ? fbne(FAT0) : fbeq(FAT0));
    return;
  }
  // Canonical (sign-extended) forms make full-width compares correct for
  // both the 32- and 64-bit types.
  bool Unsigned = !isSignedType(Ty);
  unsigned A = gpr(Rs1), Bv = gpr(Rs2);
  bool TrueBranch = true;
  switch (C) {
  case Cond::Lt:
    B.put(Unsigned ? cmpult(AT, A, Bv) : cmplt(AT, A, Bv));
    break;
  case Cond::Le:
    B.put(Unsigned ? cmpule(AT, A, Bv) : cmple(AT, A, Bv));
    break;
  case Cond::Gt:
    B.put(Unsigned ? cmpult(AT, Bv, A) : cmplt(AT, Bv, A));
    break;
  case Cond::Ge:
    B.put(Unsigned ? cmpule(AT, Bv, A) : cmple(AT, Bv, A));
    break;
  case Cond::Eq:
    B.put(cmpeq(AT, A, Bv));
    break;
  case Cond::Ne:
    B.put(cmpeq(AT, A, Bv));
    TrueBranch = false;
    break;
  }
  VC.addFixup(FixupKind::Branch, L);
  B.put(TrueBranch ? bne(AT) : beq(AT));
}

void AlphaTarget::emitBranchImm(VCode &VC, Cond C, Type Ty, Reg Rs1,
                                int64_t Imm, Label L) {
  if (isFpType(Ty))
    fatal("alpha: fp branches take register operands");
  CodeBuffer &B = VC.buf();
  bool Unsigned = !isSignedType(Ty);
  unsigned A = gpr(Rs1);
  if (Imm == 0 && !Unsigned) {
    // Compare-against-zero branches come for free.
    VC.addFixup(FixupKind::Branch, L);
    switch (C) {
    case Cond::Lt:
      B.put(blt(A));
      return;
    case Cond::Le:
      B.put(ble(A));
      return;
    case Cond::Gt:
      B.put(bgt(A));
      return;
    case Cond::Ge:
      B.put(bge(A));
      return;
    case Cond::Eq:
      B.put(beq(A));
      return;
    case Cond::Ne:
      B.put(bne(A));
      return;
    }
  }
  if (Imm == 0 && (C == Cond::Eq || C == Cond::Ne)) {
    VC.addFixup(FixupKind::Branch, L);
    B.put(C == Cond::Eq ? beq(A) : bne(A));
    return;
  }
  bool Lit8 = Imm >= 0 && Imm <= 255;
  bool TrueBranch = true;
  if (Lit8) {
    unsigned LitV = unsigned(Imm);
    switch (C) {
    case Cond::Lt:
      B.put(Unsigned ? cmpulti(AT, A, LitV) : cmplti(AT, A, LitV));
      break;
    case Cond::Le:
      B.put(Unsigned ? cmpulei(AT, A, LitV) : cmplei(AT, A, LitV));
      break;
    case Cond::Eq:
      B.put(cmpeqi(AT, A, LitV));
      break;
    case Cond::Ne:
      B.put(cmpeqi(AT, A, LitV));
      TrueBranch = false;
      break;
    case Cond::Gt: // a > lit  <=>  !(a <= lit)
      B.put(Unsigned ? cmpulei(AT, A, LitV) : cmplei(AT, A, LitV));
      TrueBranch = false;
      break;
    case Cond::Ge:
      B.put(Unsigned ? cmpulti(AT, A, LitV) : cmplti(AT, A, LitV));
      TrueBranch = false;
      break;
    }
    VC.addFixup(FixupKind::Branch, L);
    B.put(TrueBranch ? bne(AT) : beq(AT));
    return;
  }
  // Wide immediate: materialize into AT (the compare reads it before
  // overwriting it with the result).
  li(VC, AT, is32(Ty) ? int64_t(int32_t(uint32_t(Imm))) : Imm);
  emitBranch(VC, C, Ty, Rs1, intReg(AT), L);
}

void AlphaTarget::emitJump(VCode &VC, Label L) {
  VC.addFixup(FixupKind::Jump, L);
  VC.buf().put(br(ZERO));
}

void AlphaTarget::emitJumpReg(VCode &VC, Reg R) {
  VC.buf().put(jmp(ZERO, gpr(R)));
}

void AlphaTarget::emitJumpAddr(VCode &VC, SimAddr A) {
  li(VC, AT, int64_t(A));
  VC.buf().put(jmp(ZERO, AT));
}

void AlphaTarget::emitCallAddr(VCode &VC, SimAddr A) {
  li(VC, T12, int64_t(A)); // pv, by convention
  VC.buf().put(jsr(gpr(VC.cc().LinkReg), T12));
}

void AlphaTarget::emitCallLabel(VCode &VC, Label L) {
  VC.addFixup(FixupKind::Call, L);
  VC.buf().put(bsr(gpr(VC.cc().LinkReg), 0));
}

void AlphaTarget::emitLinkReturn(VCode &VC) {
  VC.buf().put(ret(ZERO, gpr(VC.cc().LinkReg)));
}

void AlphaTarget::emitCallReg(VCode &VC, Reg R) {
  VC.buf().put(jsr(gpr(VC.cc().LinkReg), gpr(R)));
}

void AlphaTarget::emitRet(VCode &VC, Type Ty, Reg Rs) {
  CodeBuffer &B = VC.buf();
  // No delay slot: move the result first, then return (rewritten into a
  // branch to the epilogue when one turns out to be needed).
  if (Ty != Type::V) {
    if (isFpType(Ty)) {
      unsigned R = fpr(VC.resultReg(Ty));
      if (fpr(Rs) != R)
        B.put(cpys(R, fpr(Rs), fpr(Rs)));
    } else {
      unsigned R = gpr(VC.resultReg(Ty));
      if (gpr(Rs) != R)
        B.put(bis(R, gpr(Rs), gpr(Rs)));
    }
  }
  VC.addFixup(FixupKind::EpilogueJump, VC.epilogueLabel());
  B.put(ret(ZERO, gpr(VC.cc().LinkReg)));
}

void AlphaTarget::emitNop(VCode &VC) { VC.buf().put(nop()); }

// --- Function framing ----------------------------------------------------------------

std::string AlphaTarget::disassemble(uint32_t Word, SimAddr Pc) const {
  return alpha::disassemble(Word, Pc);
}

void AlphaTarget::beginFunction(VCode &VC) {
  ReservedWords = uint32_t(2 + 32 + 32 + VC.prologueArgCopies().size());
  for (uint32_t I = 0; I < ReservedWords; ++I)
    VC.buf().put(nop());
}

CodePtr AlphaTarget::endFunction(VCode &VC) {
  const TargetInfo &TI = info();
  CodeBuffer &B = VC.buf();
  uint32_t F = VC.frameBytes();
  if (!isInt<15>(int64_t(F)))
    fatal("alpha: frame of %u bytes exceeds the displacement range", F);

  uint32_t IntMask = VC.regAlloc().usedCalleeSavedMask(Reg::Int);
  uint32_t FpMask = VC.regAlloc().usedCalleeSavedMask(Reg::Fp);
  unsigned Link = gpr(VC.cc().LinkReg);

  std::vector<uint32_t> Pro;
  if (F) {
    Pro.push_back(lda(SP, SP, -int32_t(F)));
    if (!VC.isLeaf())
      Pro.push_back(stq(Link, SP, int32_t(TI.linkSaveSlot())));
    for (unsigned N = 0; N < 32; ++N)
      if (IntMask & (1u << N))
        Pro.push_back(stq(N, SP, int32_t(TI.intSaveSlot(N))));
    for (unsigned N = 0; N < 32; ++N)
      if (FpMask & (1u << N))
        Pro.push_back(stt(N, SP, int32_t(TI.fpSaveSlot(N))));
  }
  for (const PrologueArgCopy &Copy : VC.prologueArgCopies()) {
    int64_t Off = int64_t(F) + Copy.IncomingOff;
    if (!isInt<15>(Off))
      fatal("alpha: incoming stack argument offset out of range");
    switch (Copy.Ty) {
    case Type::F:
      Pro.push_back(lds(fpr(Copy.Dst), SP, int32_t(Off)));
      break;
    case Type::D:
      Pro.push_back(ldt(fpr(Copy.Dst), SP, int32_t(Off)));
      break;
    case Type::I:
    case Type::U:
      Pro.push_back(ldl(gpr(Copy.Dst), SP, int32_t(Off)));
      break;
    default:
      Pro.push_back(ldq(gpr(Copy.Dst), SP, int32_t(Off)));
      break;
    }
  }

  if (Pro.size() > ReservedWords)
    fatal("alpha: prologue of %zu words exceeds the %u reserved", Pro.size(),
          ReservedWords);
  uint32_t Start = ReservedWords - uint32_t(Pro.size());
  for (size_t I = 0; I < Pro.size(); ++I)
    B.patch(uint32_t(Start + I), Pro[I]);

  if (F) {
    VC.label(VC.epilogueLabel());
    if (!VC.isLeaf())
      B.put(ldq(Link, SP, int32_t(TI.linkSaveSlot())));
    for (unsigned N = 0; N < 32; ++N)
      if (IntMask & (1u << N))
        B.put(ldq(N, SP, int32_t(TI.intSaveSlot(N))));
    for (unsigned N = 0; N < 32; ++N)
      if (FpMask & (1u << N))
        B.put(ldt(N, SP, int32_t(TI.fpSaveSlot(N))));
    B.put(lda(SP, SP, int32_t(F)));
    B.put(ret(ZERO, Link));
  }

  CodePtr P;
  P.Entry = B.addrOfWord(Start);
  return P;
}

void AlphaTarget::applyFixup(VCode &VC, const Fixup &F, SimAddr Target) {
  CodeBuffer &B = VC.buf();
  auto Disp = [&]() {
    return (int64_t(Target) - int64_t(B.addrOfWord(F.WordIdx) + 4)) / 4;
  };
  switch (F.Kind) {
  case FixupKind::Call:
  case FixupKind::Branch:
  case FixupKind::Jump: {
    int64_t D = Disp();
    if (!isInt<21>(D))
      fatal("alpha: branch displacement %lld out of range", (long long)D);
    B.patchOr(F.WordIdx, uint32_t(D) & 0x1fffff);
    return;
  }
  case FixupKind::EpilogueJump:
    if (Target != 0) {
      int64_t D = Disp();
      if (!isInt<21>(D))
        fatal("alpha: epilogue displacement out of range");
      B.patch(F.WordIdx, br(ZERO, int32_t(D)));
    }
    return;
  case FixupKind::AddrHi: {
    int64_t Lo = int64_t(int16_t(Target & 0xffff));
    int64_t Hi = (int64_t(Target) - Lo) >> 16;
    B.patchOr(F.WordIdx, uint32_t(Hi) & 0xffff);
    return;
  }
  case FixupKind::AddrLo:
    B.patchOr(F.WordIdx, uint32_t(Target) & 0xffff);
    return;
  }
  unreachable("bad FixupKind");
}

// --- Division helpers (generated with VCODE itself) ----------------------------------

CodePtr AlphaTarget::generateDivHelper(CodeMem Mem, bool Signed,
                                       bool WantRem) {
  VCode V(*this);

  // The substituted convention of paper §5.2: arguments in t10/t11, result
  // in t12, link in at — so callers (even leaf procedures) lose nothing.
  CallConv CC;
  CC.IntArgRegs = {intReg(T10), intReg(T11)};
  CC.IntRet = intReg(T12);
  CC.FpRet = fpReg(0);
  CC.LinkReg = intReg(AT);
  V.setCallConv(CC);

  Reg Arg[2];
  V.lambda("%U%U", Arg, LeafHint, Mem);
  // "Routines that emulate common machine instructions frequently obey
  // different calling conventions in that they save all caller-saved
  // registers": interrupt-handler register mode (§5.3).
  V.allRegsCalleeSaved();

  Reg A = V.getreg(Type::UL, RegClass::Var);
  Reg Bv = V.getreg(Type::UL, RegClass::Var);
  Reg Q = V.getreg(Type::UL, RegClass::Var);
  Reg R = V.getreg(Type::UL, RegClass::Var);
  Reg Cnt = V.getreg(Type::UL, RegClass::Var);
  Reg T = V.getreg(Type::UL, RegClass::Var);
  Reg NegQ, SignA;
  // The link arrived in AT, which doubles as the assembler temporary the
  // compare-and-branch sequences below scribble on: park it in a saved
  // register and restore it just before returning.
  Reg LinkSave = V.getreg(Type::UL, RegClass::Var);
  V.movul(LinkSave, V.atReg());
  V.movul(A, Arg[0]);
  V.movul(Bv, Arg[1]);

  if (Signed) {
    NegQ = V.getreg(Type::UL, RegClass::Var);
    SignA = V.getreg(Type::UL, RegClass::Var);
    V.setul(NegQ, 0);
    V.setul(SignA, 0);
    Label APos = V.genLabel();
    V.bgeli(A, 0, APos);
    V.negl(A, A);
    V.setul(NegQ, 1);
    V.setul(SignA, 1);
    V.label(APos);
    Label BPos = V.genLabel();
    V.bgeli(Bv, 0, BPos);
    V.negl(Bv, Bv);
    V.xoruli(NegQ, NegQ, 1);
    V.label(BPos);
  }

  // Restoring long division, one bit per iteration.
  V.setul(Q, 0);
  V.setul(R, 0);
  V.setul(Cnt, 64);
  Label Loop = V.genLabel(), Skip = V.genLabel();
  V.label(Loop);
  V.lshuli(R, R, 1);
  V.rshuli(T, A, 63);
  V.orul(R, R, T);
  V.lshuli(A, A, 1);
  V.lshuli(Q, Q, 1);
  V.bltul(R, Bv, Skip);
  V.subul(R, R, Bv);
  V.oruli(Q, Q, 1);
  V.label(Skip);
  V.subuli(Cnt, Cnt, 1);
  V.bneuli(Cnt, 0, Loop);

  Reg Res = WantRem ? R : Q;
  if (Signed) {
    // Quotient sign: XOR of operand signs; remainder sign: the dividend's.
    Label Done = V.genLabel();
    V.bequli(WantRem ? SignA : NegQ, 0, Done);
    V.negl(Res, Res);
    V.label(Done);
  }
  V.movul(V.atReg(), LinkSave);
  V.retul(Res);
  return V.end();
}

void AlphaTarget::installDivHelpers(CodeMem Region) {
  size_t Quarter = (Region.Size / 4) & ~size_t(7);
  if (Quarter < 1024)
    fatal("alpha: installDivHelpers needs at least 4KB of code memory");
  for (unsigned Signed = 0; Signed < 2; ++Signed)
    for (unsigned Rem = 0; Rem < 2; ++Rem) {
      unsigned Idx = Signed * 2 + Rem;
      CodeMem M;
      M.Host = Region.Host + Idx * Quarter;
      M.Guest = Region.Guest + Idx * Quarter;
      M.Size = Quarter;
      CodePtr P = generateDivHelper(M, Signed != 0, Rem != 0);
      DivHelper[Idx] = P.Entry;
    }
}

// --- Extension machine instructions ----------------------------------------------

void AlphaTarget::registerMachineInstructions() {
  auto Fp2 = [](bool Dbl) {
    return [Dbl](VCode &VC, const Operand *Ops, unsigned N) {
      if (N != 2 || Ops[0].Kind != Operand::RegOp ||
          Ops[1].Kind != Operand::RegOp)
        fatal("alpha fp machine instruction expects (rd, rs)");
      VC.buf().put(Dbl ? sqrtt(Ops[0].R.Num, Ops[1].R.Num)
                       : sqrts(Ops[0].R.Num, Ops[1].R.Num));
    };
  };
  defineInstruction("fsqrts", Fp2(false));
  defineInstruction("fsqrtd", Fp2(true));
  defineInstruction("alpha.ornot",
                    [](VCode &VC, const Operand *Ops, unsigned N) {
                      if (N != 3)
                        fatal("alpha.ornot expects (rd, rs1, rs2)");
                      VC.buf().put(ornot(Ops[0].R.Num, Ops[1].R.Num,
                                         Ops[2].R.Num));
                    });
}
