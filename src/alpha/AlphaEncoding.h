//===- alpha/AlphaEncoding.h - Alpha instruction encoders -------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Alpha (21064-class, pre-BWX) instruction word encoders. The 21064 has no
/// byte or halfword loads/stores — the backend synthesizes them from
/// ldq_u/extbl/insbl/mskbl/stq_u, the expensive sequences §6.2 of the paper
/// complains about — and no integer division, which goes through runtime
/// helper routines (§5.2).
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_ALPHA_ALPHAENCODING_H
#define VCODE_ALPHA_ALPHAENCODING_H

#include <cstdint>

namespace vcode {
namespace alpha {

/// Conventional Alpha register numbers.
enum RegNum : unsigned {
  V0 = 0,
  T0 = 1, T1 = 2, T2 = 3, T3 = 4, T4 = 5, T5 = 6, T6 = 7, T7 = 8,
  S0 = 9, S1 = 10, S2 = 11, S3 = 12, S4 = 13, S5 = 14, FP = 15,
  A0 = 16, A1 = 17, A2 = 18, A3 = 19, A4 = 20, A5 = 21,
  T8 = 22, T9 = 23, T10 = 24, T11 = 25, RA = 26, T12 = 27,
  AT = 28, GP = 29, SP = 30, ZERO = 31,
};

// --- Format builders ---------------------------------------------------------

/// Memory format: op ra, disp16(rb).
constexpr uint32_t mem(unsigned Op, unsigned Ra, unsigned Rb, int32_t Disp) {
  return (Op << 26) | (Ra << 21) | (Rb << 16) | (uint32_t(Disp) & 0xffff);
}
/// Branch format: op ra, disp21 (in words, from pc+4).
constexpr uint32_t brf(unsigned Op, unsigned Ra, int32_t Disp21) {
  return (Op << 26) | (Ra << 21) | (uint32_t(Disp21) & 0x1fffff);
}
/// Operate format, register-register.
constexpr uint32_t oprr(unsigned Op, unsigned Fn, unsigned Ra, unsigned Rb,
                        unsigned Rc) {
  return (Op << 26) | (Ra << 21) | (Rb << 16) | (Fn << 5) | Rc;
}
/// Operate format, 8-bit literal.
constexpr uint32_t opri(unsigned Op, unsigned Fn, unsigned Ra, unsigned Lit,
                        unsigned Rc) {
  return (Op << 26) | (Ra << 21) | ((Lit & 0xff) << 13) | (1u << 12) |
         (Fn << 5) | Rc;
}
/// FP operate format (11-bit function).
constexpr uint32_t fpop(unsigned Op, unsigned Fn, unsigned Fa, unsigned Fb,
                        unsigned Fc) {
  return (Op << 26) | (Fa << 21) | (Fb << 16) | (Fn << 5) | Fc;
}
/// Jump format (op 0x1a): jmp/jsr/ret by hint.
constexpr uint32_t jump(unsigned Hint, unsigned Ra, unsigned Rb) {
  return (0x1au << 26) | (Ra << 21) | (Rb << 16) | (Hint << 14);
}

// --- Memory ------------------------------------------------------------------

constexpr uint32_t lda(unsigned Ra, unsigned Rb, int32_t D) {
  return mem(0x08, Ra, Rb, D);
}
constexpr uint32_t ldah(unsigned Ra, unsigned Rb, int32_t D) {
  return mem(0x09, Ra, Rb, D);
}
constexpr uint32_t ldq_u(unsigned Ra, unsigned Rb, int32_t D) {
  return mem(0x0b, Ra, Rb, D);
}
constexpr uint32_t stq_u(unsigned Ra, unsigned Rb, int32_t D) {
  return mem(0x0f, Ra, Rb, D);
}
constexpr uint32_t ldl(unsigned Ra, unsigned Rb, int32_t D) {
  return mem(0x28, Ra, Rb, D);
}
constexpr uint32_t ldq(unsigned Ra, unsigned Rb, int32_t D) {
  return mem(0x29, Ra, Rb, D);
}
constexpr uint32_t stl(unsigned Ra, unsigned Rb, int32_t D) {
  return mem(0x2c, Ra, Rb, D);
}
constexpr uint32_t stq(unsigned Ra, unsigned Rb, int32_t D) {
  return mem(0x2d, Ra, Rb, D);
}
constexpr uint32_t lds(unsigned Fa, unsigned Rb, int32_t D) {
  return mem(0x22, Fa, Rb, D);
}
constexpr uint32_t ldt(unsigned Fa, unsigned Rb, int32_t D) {
  return mem(0x23, Fa, Rb, D);
}
constexpr uint32_t sts(unsigned Fa, unsigned Rb, int32_t D) {
  return mem(0x26, Fa, Rb, D);
}
constexpr uint32_t stt(unsigned Fa, unsigned Rb, int32_t D) {
  return mem(0x27, Fa, Rb, D);
}

// --- Branches -------------------------------------------------------------------

constexpr uint32_t br(unsigned Ra, int32_t D = 0) { return brf(0x30, Ra, D); }
constexpr uint32_t bsr(unsigned Ra, int32_t D = 0) { return brf(0x34, Ra, D); }
constexpr uint32_t beq(unsigned Ra, int32_t D = 0) { return brf(0x39, Ra, D); }
constexpr uint32_t bne(unsigned Ra, int32_t D = 0) { return brf(0x3d, Ra, D); }
constexpr uint32_t blt(unsigned Ra, int32_t D = 0) { return brf(0x3a, Ra, D); }
constexpr uint32_t ble(unsigned Ra, int32_t D = 0) { return brf(0x3b, Ra, D); }
constexpr uint32_t bgt(unsigned Ra, int32_t D = 0) { return brf(0x3f, Ra, D); }
constexpr uint32_t bge(unsigned Ra, int32_t D = 0) { return brf(0x3e, Ra, D); }
constexpr uint32_t fbeq(unsigned Fa, int32_t D = 0) { return brf(0x31, Fa, D); }
constexpr uint32_t fbne(unsigned Fa, int32_t D = 0) { return brf(0x35, Fa, D); }

constexpr uint32_t jmp(unsigned Ra, unsigned Rb) { return jump(0, Ra, Rb); }
constexpr uint32_t jsr(unsigned Ra, unsigned Rb) { return jump(1, Ra, Rb); }
constexpr uint32_t ret(unsigned Ra, unsigned Rb) { return jump(2, Ra, Rb); }

// --- Integer operate ---------------------------------------------------------------

constexpr uint32_t addl(unsigned Rc, unsigned Ra, unsigned Rb) {
  return oprr(0x10, 0x00, Ra, Rb, Rc);
}
constexpr uint32_t addli(unsigned Rc, unsigned Ra, unsigned Lit) {
  return opri(0x10, 0x00, Ra, Lit, Rc);
}
constexpr uint32_t subl(unsigned Rc, unsigned Ra, unsigned Rb) {
  return oprr(0x10, 0x09, Ra, Rb, Rc);
}
constexpr uint32_t subli(unsigned Rc, unsigned Ra, unsigned Lit) {
  return opri(0x10, 0x09, Ra, Lit, Rc);
}
constexpr uint32_t addq(unsigned Rc, unsigned Ra, unsigned Rb) {
  return oprr(0x10, 0x20, Ra, Rb, Rc);
}
constexpr uint32_t addqi(unsigned Rc, unsigned Ra, unsigned Lit) {
  return opri(0x10, 0x20, Ra, Lit, Rc);
}
constexpr uint32_t subq(unsigned Rc, unsigned Ra, unsigned Rb) {
  return oprr(0x10, 0x29, Ra, Rb, Rc);
}
constexpr uint32_t subqi(unsigned Rc, unsigned Ra, unsigned Lit) {
  return opri(0x10, 0x29, Ra, Lit, Rc);
}
constexpr uint32_t cmpeq(unsigned Rc, unsigned Ra, unsigned Rb) {
  return oprr(0x10, 0x2d, Ra, Rb, Rc);
}
constexpr uint32_t cmpeqi(unsigned Rc, unsigned Ra, unsigned Lit) {
  return opri(0x10, 0x2d, Ra, Lit, Rc);
}
constexpr uint32_t cmplt(unsigned Rc, unsigned Ra, unsigned Rb) {
  return oprr(0x10, 0x4d, Ra, Rb, Rc);
}
constexpr uint32_t cmplti(unsigned Rc, unsigned Ra, unsigned Lit) {
  return opri(0x10, 0x4d, Ra, Lit, Rc);
}
constexpr uint32_t cmple(unsigned Rc, unsigned Ra, unsigned Rb) {
  return oprr(0x10, 0x6d, Ra, Rb, Rc);
}
constexpr uint32_t cmplei(unsigned Rc, unsigned Ra, unsigned Lit) {
  return opri(0x10, 0x6d, Ra, Lit, Rc);
}
constexpr uint32_t cmpult(unsigned Rc, unsigned Ra, unsigned Rb) {
  return oprr(0x10, 0x1d, Ra, Rb, Rc);
}
constexpr uint32_t cmpulti(unsigned Rc, unsigned Ra, unsigned Lit) {
  return opri(0x10, 0x1d, Ra, Lit, Rc);
}
constexpr uint32_t cmpule(unsigned Rc, unsigned Ra, unsigned Rb) {
  return oprr(0x10, 0x3d, Ra, Rb, Rc);
}
constexpr uint32_t cmpulei(unsigned Rc, unsigned Ra, unsigned Lit) {
  return opri(0x10, 0x3d, Ra, Lit, Rc);
}

constexpr uint32_t and_(unsigned Rc, unsigned Ra, unsigned Rb) {
  return oprr(0x11, 0x00, Ra, Rb, Rc);
}
constexpr uint32_t andi(unsigned Rc, unsigned Ra, unsigned Lit) {
  return opri(0x11, 0x00, Ra, Lit, Rc);
}
constexpr uint32_t bis(unsigned Rc, unsigned Ra, unsigned Rb) {
  return oprr(0x11, 0x20, Ra, Rb, Rc);
}
constexpr uint32_t bisi(unsigned Rc, unsigned Ra, unsigned Lit) {
  return opri(0x11, 0x20, Ra, Lit, Rc);
}
constexpr uint32_t xor_(unsigned Rc, unsigned Ra, unsigned Rb) {
  return oprr(0x11, 0x40, Ra, Rb, Rc);
}
constexpr uint32_t xori(unsigned Rc, unsigned Ra, unsigned Lit) {
  return opri(0x11, 0x40, Ra, Lit, Rc);
}
constexpr uint32_t ornot(unsigned Rc, unsigned Ra, unsigned Rb) {
  return oprr(0x11, 0x28, Ra, Rb, Rc);
}

constexpr uint32_t sll(unsigned Rc, unsigned Ra, unsigned Rb) {
  return oprr(0x12, 0x39, Ra, Rb, Rc);
}
constexpr uint32_t slli(unsigned Rc, unsigned Ra, unsigned Sh) {
  return opri(0x12, 0x39, Ra, Sh, Rc);
}
constexpr uint32_t srl(unsigned Rc, unsigned Ra, unsigned Rb) {
  return oprr(0x12, 0x34, Ra, Rb, Rc);
}
constexpr uint32_t srli(unsigned Rc, unsigned Ra, unsigned Sh) {
  return opri(0x12, 0x34, Ra, Sh, Rc);
}
constexpr uint32_t sra(unsigned Rc, unsigned Ra, unsigned Rb) {
  return oprr(0x12, 0x3c, Ra, Rb, Rc);
}
constexpr uint32_t srai(unsigned Rc, unsigned Ra, unsigned Sh) {
  return opri(0x12, 0x3c, Ra, Sh, Rc);
}
constexpr uint32_t extbl(unsigned Rc, unsigned Ra, unsigned Rb) {
  return oprr(0x12, 0x06, Ra, Rb, Rc);
}
constexpr uint32_t extwl(unsigned Rc, unsigned Ra, unsigned Rb) {
  return oprr(0x12, 0x16, Ra, Rb, Rc);
}
constexpr uint32_t insbl(unsigned Rc, unsigned Ra, unsigned Rb) {
  return oprr(0x12, 0x0b, Ra, Rb, Rc);
}
constexpr uint32_t inswl(unsigned Rc, unsigned Ra, unsigned Rb) {
  return oprr(0x12, 0x1b, Ra, Rb, Rc);
}
constexpr uint32_t mskbl(unsigned Rc, unsigned Ra, unsigned Rb) {
  return oprr(0x12, 0x02, Ra, Rb, Rc);
}
constexpr uint32_t mskwl(unsigned Rc, unsigned Ra, unsigned Rb) {
  return oprr(0x12, 0x12, Ra, Rb, Rc);
}
constexpr uint32_t zapnoti(unsigned Rc, unsigned Ra, unsigned ByteMask) {
  return opri(0x12, 0x31, Ra, ByteMask, Rc);
}

constexpr uint32_t mull(unsigned Rc, unsigned Ra, unsigned Rb) {
  return oprr(0x13, 0x00, Ra, Rb, Rc);
}
constexpr uint32_t mulq(unsigned Rc, unsigned Ra, unsigned Rb) {
  return oprr(0x13, 0x20, Ra, Rb, Rc);
}
constexpr uint32_t umulh(unsigned Rc, unsigned Ra, unsigned Rb) {
  return oprr(0x13, 0x30, Ra, Rb, Rc);
}

/// Canonical nop.
constexpr uint32_t nop() { return bis(ZERO, ZERO, ZERO); }

// --- FP operate (IEEE, opcode 0x16; copies 0x17; sqrt 0x14) ------------------------

enum FpFn : unsigned {
  ADDS = 0x080, ADDT = 0x0a0, SUBS = 0x081, SUBT = 0x0a1,
  MULS = 0x082, MULT = 0x0a2, DIVS = 0x083, DIVT = 0x0a3,
  CMPTEQ = 0x0a5, CMPTLT = 0x0a6, CMPTLE = 0x0a7,
  CVTQS = 0x0bc, CVTQT = 0x0be, CVTTQC = 0x02f, CVTTS = 0x2ac,
};

constexpr uint32_t fop(unsigned Fn, unsigned Fc, unsigned Fa, unsigned Fb) {
  return fpop(0x16, Fn, Fa, Fb, Fc);
}
constexpr uint32_t cpys(unsigned Fc, unsigned Fa, unsigned Fb) {
  return fpop(0x17, 0x020, Fa, Fb, Fc);
}
constexpr uint32_t cpysn(unsigned Fc, unsigned Fa, unsigned Fb) {
  return fpop(0x17, 0x021, Fa, Fb, Fc);
}
constexpr uint32_t sqrts(unsigned Fc, unsigned Fb) {
  return fpop(0x14, 0x08b, 31, Fb, Fc);
}
constexpr uint32_t sqrtt(unsigned Fc, unsigned Fb) {
  return fpop(0x14, 0x0ab, 31, Fb, Fc);
}

} // namespace alpha
} // namespace vcode

#endif // VCODE_ALPHA_ALPHAENCODING_H
