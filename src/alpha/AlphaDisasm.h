//===- alpha/AlphaDisasm.h - Alpha disassembler -----------------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic disassembler for the Alpha subset the backend emits
/// (paper §6.2 debugger support).
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_ALPHA_ALPHADISASM_H
#define VCODE_ALPHA_ALPHADISASM_H

#include "core/CodeBuffer.h"
#include <string>

namespace vcode {
namespace alpha {

/// Disassembles one instruction word fetched from address \p Pc.
std::string disassemble(uint32_t Word, SimAddr Pc);

} // namespace alpha
} // namespace vcode

#endif // VCODE_ALPHA_ALPHADISASM_H
