//===- service/Traffic.cpp - Zipf-skewed synthetic traffic ------------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "service/Traffic.h"
#include "support/Error.h"
#include <cmath>

using namespace vcode;
using namespace vcode::service;

ZipfGen::ZipfGen(unsigned N, double S, uint64_t Seed) : R(Seed) {
  if (N == 0)
    fatal("service: ZipfGen over an empty rank set");
  if (!(S >= 0.0) || !std::isfinite(S))
    fatal("service: Zipf skew must be a finite non-negative value");
  Cdf.resize(N);
  double Sum = 0;
  for (unsigned I = 0; I < N; ++I) {
    Sum += 1.0 / std::pow(double(I + 1), S);
    Cdf[I] = Sum;
  }
  for (unsigned I = 0; I < N; ++I)
    Cdf[I] /= Sum;
  Cdf[N - 1] = 1.0; // exact, against accumulated rounding
}

unsigned ZipfGen::next() {
  // 53 uniform bits -> [0, 1); first CDF entry >= U is the drawn rank.
  double U = double(R.next() >> 11) * 0x1.0p-53;
  unsigned Lo = 0, Hi = unsigned(Cdf.size()) - 1;
  while (Lo < Hi) {
    unsigned Mid = (Lo + Hi) / 2;
    if (Cdf[Mid] < U)
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  return Lo;
}

double ZipfGen::probabilityOf(unsigned R) const {
  if (R >= Cdf.size())
    return 0;
  return R == 0 ? Cdf[0] : Cdf[R] - Cdf[R - 1];
}

std::vector<dpf::Filter> vcode::service::makeSetFilters(unsigned Set,
                                                        unsigned FlowsPerSet) {
  return dpf::makeTcpIpFilters(FlowsPerSet, kBasePort, kSetIpBase + Set);
}

TrafficGen::TrafficGen(sim::Memory &M, unsigned Sets, unsigned FlowsPerSet,
                       double ZipfS, uint64_t Seed)
    : Mem(M), FlowsPerSet(FlowsPerSet),
      // Distinct sub-seeds so the two rank streams are unrelated even
      // though they advance in lockstep.
      SetGen(Sets, ZipfS, Seed * 2 + 1),
      FlowGen(FlowsPerSet + 1, ZipfS, Seed * 2 + 2),
      Buf(M.alloc(dpf::pkt::HeaderBytes, 8)) {}

TrafficGen::Pkt TrafficGen::next() {
  Pkt P;
  P.Set = SetGen.next();
  unsigned Flow = FlowGen.next();
  // The rank one past the set's filters is the deliberate miss: its port
  // matches no filter, so the classifier must reject.
  P.ExpectId = Flow < FlowsPerSet ? int(Flow) : -1;
  P.Addr = Buf;
  dpf::writeTcpPacket(Mem, Buf, uint16_t(kBasePort + Flow),
                      kSetIpBase + P.Set);
  return P;
}
