//===- service/Traffic.h - Zipf-skewed synthetic traffic --------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The synthetic packet source for the classifier service: a seeded Zipf
/// generator (real traffic is flow-skewed — a few flows carry most
/// packets), and a TrafficGen that turns its draws into TCP/IP headers in
/// simulator memory together with the verdict the installed filter set
/// must return for them. Deterministic for a fixed seed, so a service run
/// (and its differential gate) is reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_SERVICE_TRAFFIC_H
#define VCODE_SERVICE_TRAFFIC_H

#include "dpf/Filter.h"
#include "sim/Memory.h"
#include "support/Rng.h"
#include <vector>

namespace vcode {
namespace service {

/// Draws ranks from a Zipf(s) distribution over {0, ..., N-1}: rank r is
/// drawn with probability proportional to 1/(r+1)^s. s == 0 degenerates
/// to uniform; larger s concentrates the mass on the low ranks (s ~ 1 is
/// the classic web/flow skew). Implementation: the CDF is precomputed
/// once (N entries) and each draw binary-searches it with one uniform
/// double from a seeded xorshift Rng — exact, allocation-free draws, and
/// two generators with the same (N, s, seed) produce identical streams.
class ZipfGen {
public:
  ZipfGen(unsigned N, double S, uint64_t Seed);

  /// The next rank, in [0, size()).
  unsigned next();

  unsigned size() const { return unsigned(Cdf.size()); }
  /// P(rank == R) for distribution-shape tests.
  double probabilityOf(unsigned R) const;

private:
  std::vector<double> Cdf; ///< Cdf[R] = P(rank <= R); back() == 1.0
  Rng R;
};

/// Base of the per-set destination-IP space: set S's filters match
/// destination IP kSetIpBase + S, so filter sets stay distinguishable no
/// matter how many the service churns (ports alone run out at 64K).
inline constexpr uint32_t kSetIpBase = 0x0a010000;
/// First destination port of every set's filters (filter F of a set
/// matches port kBasePort + F; one port past the set's last filter is the
/// deliberate-miss flow).
inline constexpr uint16_t kBasePort = 1024;

/// The filters of service set \p Set (\p FlowsPerSet filters on the
/// set's own destination IP).
std::vector<dpf::Filter> makeSetFilters(unsigned Set, unsigned FlowsPerSet);

/// A per-dispatch-thread packet source: each next() draws a filter set
/// (Zipf over sets — hot sets dominate, exercising cache reuse and
/// promotion) and a flow within it (Zipf over FlowsPerSet+1 ranks, the
/// extra rank being a port no filter matches), writes the TCP/IP header
/// into this generator's own packet buffer, and reports the verdict the
/// set's classifier must produce. Not thread-safe; one per thread.
class TrafficGen {
public:
  TrafficGen(sim::Memory &M, unsigned Sets, unsigned FlowsPerSet,
             double ZipfS, uint64_t Seed);

  struct Pkt {
    unsigned Set;   ///< which filter set this packet is destined for
    int ExpectId;   ///< verdict set Set's classifier must return (-1 miss)
    SimAddr Addr;   ///< the header, in the service's shared arena
  };

  Pkt next();

private:
  sim::Memory &Mem;
  unsigned FlowsPerSet;
  ZipfGen SetGen;
  ZipfGen FlowGen;
  SimAddr Buf; ///< this generator's packet buffer
};

} // namespace service
} // namespace vcode

#endif // VCODE_SERVICE_TRAFFIC_H
