//===- service/ClassifierService.h - DPF classification service -*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "millions of users" story told as a running system: a packet
/// classification service managing many concurrently-installed DPF filter
/// sets under churn. Worker threads install and retire filter sets through
/// DpfEngine::installShared into one shared CodeCache (sized below the
/// live set count, so LRU eviction and pin-based reclamation are always in
/// play, with hot promotion available on top), while dispatch threads
/// classify Zipf-skewed synthetic traffic (service/Traffic.h) and check
/// every verdict against the workload's ground truth — plus a sampled
/// differential gate against the reference trie interpreter
/// (dpf::Trie::classify), so "fast" is continuously cross-checked against
/// "right".
///
/// The paper's Table 3 measures one filter set, installed once, on a cold
/// timer. A service is judged differently: tail install latency while
/// dispatchers are running, sustained dispatch throughput, and cache
/// behavior under eviction pressure. The service reports exactly that,
/// off the existing telemetry registry: install latency percentiles from
/// the new log-bucketed Histogram ("service.install_ns"), sampled dispatch
/// latency ("service.dispatch_ns"), and the CodeCache's exact counters
/// (hits/misses/generations/evictions/promotions) for the SLO table that
/// bench_dpf_service prints (EXPERIMENTS.md E16).
///
/// Substrate-agnostic: the caller supplies the Target and a CpuFactory,
/// so the same service runs on the MIPS interpreter, the native x86-64
/// backend, or the binary translator.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_SERVICE_CLASSIFIERSERVICE_H
#define VCODE_SERVICE_CLASSIFIERSERVICE_H

#include "core/CodeCache.h"
#include "core/Tier.h"
#include "dpf/Engines.h"
#include "service/Traffic.h"
#include "sim/Cpu.h"
#include "sim/Memory.h"
#include "support/Telemetry.h"
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace vcode {
namespace service {

/// Runs one churn-under-dispatch workload and reports SLOs.
class ClassifierService {
public:
  /// Makes a fresh execution substrate over the service's arena (one per
  /// dispatch thread; threads never share a Cpu).
  using CpuFactory =
      std::function<std::unique_ptr<sim::Cpu>(sim::Memory &)>;

  struct Config {
    unsigned Sets = 32;          ///< concurrently-managed filter sets
    unsigned FlowsPerSet = 10;   ///< filters per set (the paper's 10)
    unsigned DispatchThreads = 2;
    unsigned ChurnThreads = 2;   ///< install/retire workers
    double DurationSec = 1.0;    ///< churn phase length (bounded soak)
    double ZipfS = 1.1;          ///< traffic skew (0 = uniform)
    unsigned DiffSampleEvery = 61; ///< trie differential sampling period
    uint64_t Seed = 42;
    uint64_t HotThreshold = 0;   ///< promote shared classifiers (0 = off)
    Tier GenTier = defaultTier();
    unsigned CacheShards = 8;
    /// Cache capacity per shard; 0 sizes the cache to roughly half the
    /// live sets, so steady-state churn continuously evicts.
    size_t CacheEntriesPerShard = 0;
    bool Prepopulate = true; ///< install every set before the clock starts
    /// Hottest filter sets listed in the report (0 disables the table).
    /// Heat is profiler samples when the sampler ran, joined to sets
    /// through the CodeMap by shared cache key; dispatch counts are
    /// always tallied.
    unsigned TopN = 5;
  };

  /// Outcome of one run(): correctness gates plus the SLO numbers.
  struct Report {
    double WallSec = 0;
    uint64_t Installs = 0;  ///< installShared calls (prepopulate + churn)
    uint64_t Retires = 0;
    uint64_t Dispatches = 0;
    uint64_t DiffChecks = 0;     ///< sampled trie differentials run
    uint64_t Mismatches = 0;     ///< compiled verdict != trie verdict
    uint64_t VerdictErrors = 0;  ///< verdict != workload ground truth
    uint64_t Skips = 0;          ///< dispatches that hit a retired slot
    CodeCache::Stats Cache;
    double HitRatio = 0;         ///< hits / (hits + misses)
    double InstallsPerSec = 0;
    double DispatchPerSec = 0;
    double InstallP50Us = 0, InstallP99Us = 0, InstallP999Us = 0;
    double InstallMaxUs = 0;
    double DispatchP50Us = 0, DispatchP99Us = 0;

    /// One hottest-filter-set row (Config::TopN of these, hottest first).
    struct HotSet {
      unsigned Set = 0;        ///< filter-set index
      std::string Key;         ///< shared cache key the set files under
      uint64_t Samples = 0;    ///< profiler heat (live + retired versions)
      uint64_t Dispatches = 0; ///< classify() calls routed to the set
      unsigned TierNum = 0;    ///< generation tier of the live classifier
      bool LiveEntry = false;  ///< a CodeMap entry was live at report time
    };
    std::vector<HotSet> TopSets;

    /// Every verdict matched ground truth and every sampled differential
    /// matched the reference interpreter.
    bool ok() const { return Mismatches == 0 && VerdictErrors == 0; }
    /// The cache's exactly-once accounting survived the churn: every
    /// install was either a hit or a miss, and every miss either
    /// generated or failed.
    bool countersReconcile() const {
      return Cache.Hits + Cache.Misses == Installs &&
             Cache.Misses == Cache.Generations + Cache.Failures;
    }
  };

  /// \p Tgt must outlive the service; \p Mem is the shared arena every
  /// engine generates into and every Cpu executes from (the CodeCache is
  /// built over it).
  ClassifierService(Target &Tgt, sim::Memory &Mem, CpuFactory MakeCpu,
                    Config C);

  /// Runs the workload: prepopulates (when configured), races
  /// ChurnThreads install/retire workers against DispatchThreads
  /// classifiers for DurationSec, joins, and returns the report.
  Report run();

  const Config &config() const { return Cfg; }
  /// Per-service install-latency distribution (ns), for tests that check
  /// the histogram itself.
  telemetry::Histogram::Snapshot installLatency() const {
    return InstallHist.snapshot();
  }

  /// Prints \p R as the SLO table under a "config" header line.
  static void printReport(const Report &R, const Config &C,
                          const char *Title);

private:
  struct Live; ///< one installed engine; retired by dropping the pointer
  struct Slot {
    std::mutex M;
    std::shared_ptr<Live> Cur;
  };

  void installSet(unsigned Set);
  void churnLoop(unsigned Tid);
  void dispatchLoop(unsigned Tid);
  /// Ranks filter sets by profiler heat (joined through the CodeMap) and
  /// per-set dispatch tallies; fills Report::TopSets.
  void buildTopSets(Report &R) const;

  Target &Tgt;
  sim::Memory &Mem;
  CpuFactory MakeCpu;
  Config Cfg;
  CodeCache Cache;

  /// Per-set filters and reference tries, built once; const during the
  /// threaded phase.
  std::vector<std::vector<dpf::Filter>> Filters;
  std::vector<dpf::Trie> Tries;
  std::vector<Slot> Slots;

  /// Per-set dispatch tallies. Dispatch threads count locally and fold
  /// here once at exit, so the hot loop stays free of shared writes.
  mutable std::mutex SetDispatchM;
  std::vector<uint64_t> SetDispatches;

  std::atomic<bool> Stop{false};

  // Instance-owned telemetry: exact per-service values here, and the same
  // numbers aggregated under "service.*" in the process-wide report.
  telemetry::Counter CtInstalls{"service.installs"};
  telemetry::Counter CtRetires{"service.retires"};
  telemetry::Counter CtDispatches{"service.dispatches"};
  telemetry::Counter CtDiffChecks{"service.diff_checks"};
  telemetry::Counter CtMismatches{"service.diff_mismatches"};
  telemetry::Counter CtVerdictErrors{"service.verdict_errors"};
  telemetry::Counter CtSkips{"service.skips"};
  telemetry::Histogram InstallHist{"service.install_ns"};
  telemetry::Histogram DispatchHist{"service.dispatch_ns"};
};

} // namespace service
} // namespace vcode

#endif // VCODE_SERVICE_CLASSIFIERSERVICE_H
