//===- service/ClassifierService.cpp - DPF classification service -----------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "service/ClassifierService.h"
#include "profile/CodeMap.h"
#include "support/Error.h"
#include "support/Rng.h"
#include "support/TablePrinter.h"
#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_map>

using namespace vcode;
using namespace vcode::service;

/// One installed classifier. Slots swap these by shared_ptr: a dispatcher
/// that copied the pointer keeps the engine (and, through the engine's
/// cache Handle, the generated code) alive across a concurrent retire or
/// reinstall — the service-level mirror of the cache's pin-based
/// reclamation.
struct ClassifierService::Live {
  Live(Target &T, sim::Memory &M) : Engine(T, M) {}
  dpf::DpfEngine Engine;
};

ClassifierService::ClassifierService(Target &Tgt, sim::Memory &Mem,
                                     CpuFactory MakeCpu, Config C)
    : Tgt(Tgt), Mem(Mem), MakeCpu(std::move(MakeCpu)), Cfg(C),
      Cache(Mem,
            CodeCache::Options(
                C.CacheShards,
                C.CacheEntriesPerShard
                    ? C.CacheEntriesPerShard
                    // Auto: capacity of about half the live sets, so the
                    // steady state is continuous eviction.
                    : std::max<size_t>(1, C.Sets / (2 * std::max(
                                                            1u,
                                                            C.CacheShards))))),
      Slots(C.Sets), SetDispatches(C.Sets, 0) {
  if (Cfg.Sets == 0 || Cfg.FlowsPerSet == 0)
    fatal("service: need at least one set and one filter per set");
  if (Cfg.DispatchThreads == 0)
    fatal("service: need at least one dispatch thread");
  if (Cfg.DiffSampleEvery == 0)
    Cfg.DiffSampleEvery = 1;
  if (!this->MakeCpu)
    fatal("service: a CpuFactory is required");
  Filters.reserve(Cfg.Sets);
  Tries.reserve(Cfg.Sets);
  for (unsigned S = 0; S < Cfg.Sets; ++S) {
    Filters.push_back(makeSetFilters(S, Cfg.FlowsPerSet));
    Tries.push_back(dpf::Trie::build(Filters.back()));
  }
}

void ClassifierService::installSet(unsigned Set) {
  auto L = std::make_shared<Live>(Tgt, Mem);
  L->Engine.setTier(Cfg.GenTier);
  L->Engine.setHotThreshold(Cfg.HotThreshold);
  // Unconditionally timed (not gated like phase timers): the install
  // latency distribution IS the service's product, and now() is one TSC
  // read on either side of a code generation.
  uint64_t T0 = telemetry::now();
  L->Engine.installShared(Cache, Filters[Set]);
  InstallHist.record(uint64_t(telemetry::ticksToNs(telemetry::now() - T0)));
  {
    std::lock_guard<std::mutex> Lock(Slots[Set].M);
    Slots[Set].Cur = std::move(L);
  }
  CtInstalls.inc();
}

void ClassifierService::churnLoop(unsigned Tid) {
  Rng R(Cfg.Seed + 0x1000 + Tid);
  while (!Stop.load(std::memory_order_relaxed)) {
    unsigned Set = unsigned(R.below(Cfg.Sets));
    if (R.chance(1, 4)) {
      // Retire: drop the slot's engine. In-flight dispatchers finish on
      // their copied shared_ptr; the cache entry itself stays (only its
      // pin drops), so a reinstall is a cache hit unless eviction got it.
      std::shared_ptr<Live> Old;
      {
        std::lock_guard<std::mutex> Lock(Slots[Set].M);
        Old = std::move(Slots[Set].Cur);
      }
      if (Old)
        CtRetires.inc();
    } else {
      installSet(Set);
    }
  }
}

void ClassifierService::dispatchLoop(unsigned Tid) {
  std::unique_ptr<sim::Cpu> Cpu = MakeCpu(Mem);
  if (!Cpu)
    fatal("service: CpuFactory returned no Cpu");
  Cpu->setStackTop(Mem.allocStack());
  TrafficGen Traffic(Mem, Cfg.Sets, Cfg.FlowsPerSet, Cfg.ZipfS,
                     Cfg.Seed + 0x2000 + Tid);
  // Thread-local per-set tallies, folded into SetDispatches once at exit.
  std::vector<uint64_t> MySetDispatches(Cfg.Sets, 0);
  uint64_t N = 0;
  while (!Stop.load(std::memory_order_relaxed)) {
    TrafficGen::Pkt P = Traffic.next();
    std::shared_ptr<Live> L;
    {
      std::lock_guard<std::mutex> Lock(Slots[P.Set].M);
      L = Slots[P.Set].Cur;
    }
    if (!L) {
      CtSkips.inc(); // the set is mid-retire; the packet has no classifier
      continue;
    }
    ++N;
    ++MySetDispatches[P.Set];
    bool Sampled = N % 16 == 0; // sampled dispatch latency (2 TSC reads)
    uint64_t T0 = Sampled ? telemetry::now() : 0;
    int Verdict = L->Engine.classify(*Cpu, P.Addr);
    if (Sampled)
      DispatchHist.record(
          uint64_t(telemetry::ticksToNs(telemetry::now() - T0)));
    CtDispatches.inc();
    // Ground truth is free: the traffic generator knows which filter (if
    // any) its packet matches. Checked on every dispatch.
    if (Verdict != P.ExpectId)
      CtVerdictErrors.inc();
    // The sampled differential gate: the compiled classifier against the
    // reference trie interpreter, on the live packet bytes.
    if (N % Cfg.DiffSampleEvery == 0) {
      CtDiffChecks.inc();
      if (Tries[P.Set].classify(Mem, P.Addr) != Verdict)
        CtMismatches.inc();
    }
  }
  {
    std::lock_guard<std::mutex> Lock(SetDispatchM);
    for (unsigned S = 0; S < Cfg.Sets; ++S)
      SetDispatches[S] += MySetDispatches[S];
  }
}

void ClassifierService::buildTopSets(Report &R) const {
  if (!Cfg.TopN)
    return;
  // Heat joins through the CodeMap by shared cache key: the live entry
  // (annotated by CodeCache::makeVersion) plus samples folded into the
  // retired tally when churn evicted earlier versions of the same key.
  std::vector<std::pair<std::string, uint64_t>> Retired =
      profile::CodeMap::instance().retiredHeat();
  std::unordered_map<std::string, uint64_t> RetiredByKey(Retired.begin(),
                                                         Retired.end());
  std::vector<Report::HotSet> Sets;
  Sets.reserve(Cfg.Sets);
  for (unsigned S = 0; S < Cfg.Sets; ++S) {
    Report::HotSet H;
    H.Set = S;
    H.Key = dpf::DpfEngine::sharedCacheKey(Tgt, dpf::DpfEngine::Dispatch::Auto,
                                           Filters[S]);
    {
      std::lock_guard<std::mutex> Lock(SetDispatchM);
      H.Dispatches = SetDispatches[S];
    }
    if (std::shared_ptr<const profile::CodeEntry> E =
            profile::CodeMap::instance().findByName(H.Key)) {
      H.Samples = E->Samples.load(std::memory_order_relaxed);
      H.TierNum = unsigned(E->GenTier);
      H.LiveEntry = true;
    }
    auto It = RetiredByKey.find(H.Key);
    if (It != RetiredByKey.end())
      H.Samples += It->second;
    Sets.push_back(std::move(H));
  }
  std::sort(Sets.begin(), Sets.end(),
            [](const Report::HotSet &A, const Report::HotSet &B) {
              if (A.Samples != B.Samples)
                return A.Samples > B.Samples;
              if (A.Dispatches != B.Dispatches)
                return A.Dispatches > B.Dispatches;
              return A.Set < B.Set;
            });
  if (Sets.size() > Cfg.TopN)
    Sets.resize(Cfg.TopN);
  R.TopSets = std::move(Sets);
}

ClassifierService::Report ClassifierService::run() {
  auto Start = std::chrono::steady_clock::now();
  if (Cfg.Prepopulate)
    for (unsigned S = 0; S < Cfg.Sets; ++S)
      installSet(S);

  Stop.store(false, std::memory_order_relaxed);
  std::vector<std::thread> Threads;
  Threads.reserve(Cfg.ChurnThreads + Cfg.DispatchThreads);
  for (unsigned T = 0; T < Cfg.ChurnThreads; ++T)
    Threads.emplace_back([this, T] { churnLoop(T); });
  for (unsigned T = 0; T < Cfg.DispatchThreads; ++T)
    Threads.emplace_back([this, T] { dispatchLoop(T); });
  std::this_thread::sleep_for(std::chrono::duration<double>(Cfg.DurationSec));
  Stop.store(true, std::memory_order_relaxed);
  for (std::thread &T : Threads)
    T.join();

  Report R;
  R.WallSec = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            Start)
                  .count();
  R.Installs = CtInstalls.value();
  R.Retires = CtRetires.value();
  R.Dispatches = CtDispatches.value();
  R.DiffChecks = CtDiffChecks.value();
  R.Mismatches = CtMismatches.value();
  R.VerdictErrors = CtVerdictErrors.value();
  R.Skips = CtSkips.value();
  R.Cache = Cache.stats();
  uint64_t Lookups = R.Cache.Hits + R.Cache.Misses;
  R.HitRatio = Lookups ? double(R.Cache.Hits) / double(Lookups) : 0;
  R.InstallsPerSec = R.WallSec > 0 ? double(R.Installs) / R.WallSec : 0;
  R.DispatchPerSec = R.WallSec > 0 ? double(R.Dispatches) / R.WallSec : 0;
  telemetry::Histogram::Snapshot Inst = InstallHist.snapshot();
  R.InstallP50Us = Inst.percentile(50) / 1e3;
  R.InstallP99Us = Inst.percentile(99) / 1e3;
  R.InstallP999Us = Inst.percentile(99.9) / 1e3;
  R.InstallMaxUs = double(Inst.Max) / 1e3;
  telemetry::Histogram::Snapshot Disp = DispatchHist.snapshot();
  R.DispatchP50Us = Disp.percentile(50) / 1e3;
  R.DispatchP99Us = Disp.percentile(99) / 1e3;
  buildTopSets(R);
  return R;
}

void ClassifierService::printReport(const Report &R, const Config &C,
                                    const char *Title) {
  std::printf("%s: %u sets x %u filters, %u dispatch + %u churn threads, "
              "zipf %.2f, %.1fs\n",
              Title, C.Sets, C.FlowsPerSet, C.DispatchThreads, C.ChurnThreads,
              C.ZipfS, C.DurationSec);
  TablePrinter T({"metric", "value"});
  T.addRow({"installs (filter sets)",
            strFormat("%llu (%llu filters)", (unsigned long long)R.Installs,
                      (unsigned long long)(R.Installs * C.FlowsPerSet))});
  T.addRow({"install rate", strFormat("%.0f sets/s", R.InstallsPerSec)});
  T.addRow({"install p50 / p99 / p999",
            strFormat("%.1f / %.1f / %.1f us", R.InstallP50Us, R.InstallP99Us,
                      R.InstallP999Us)});
  T.addRow({"install max", strFormat("%.1f us", R.InstallMaxUs)});
  T.addRow({"dispatch throughput",
            strFormat("%.0f msgs/s", R.DispatchPerSec)});
  T.addRow({"dispatch p50 / p99 (sampled)",
            strFormat("%.2f / %.2f us", R.DispatchP50Us, R.DispatchP99Us)});
  T.addRow({"cache hit ratio",
            strFormat("%.1f%% (%llu hits / %llu misses)", R.HitRatio * 100,
                      (unsigned long long)R.Cache.Hits,
                      (unsigned long long)R.Cache.Misses)});
  T.addRow({"generations / evictions",
            strFormat("%llu / %llu", (unsigned long long)R.Cache.Generations,
                      (unsigned long long)R.Cache.Evictions)});
  T.addRow({"promotions", strFormat("%llu",
                                    (unsigned long long)R.Cache.Promotions)});
  T.addRow({"retires / skips",
            strFormat("%llu / %llu", (unsigned long long)R.Retires,
                      (unsigned long long)R.Skips)});
  T.addRow({"differential checks",
            strFormat("%llu sampled, %llu mismatches",
                      (unsigned long long)R.DiffChecks,
                      (unsigned long long)R.Mismatches)});
  T.addRow({"verdict errors (vs ground truth)",
            strFormat("%llu of %llu", (unsigned long long)R.VerdictErrors,
                      (unsigned long long)R.Dispatches)});
  T.print();

  if (!R.TopSets.empty()) {
    std::printf("hottest filter sets (top %zu of %u):\n", R.TopSets.size(),
                C.Sets);
    TablePrinter H({"set", "samples", "dispatches", "tier", "key"});
    for (const Report::HotSet &S : R.TopSets) {
      // Keys are long; the set id and the filter-set tail identify a row.
      std::string K = S.Key.size() > 40 ? S.Key.substr(0, 37) + "..." : S.Key;
      H.addRow({strFormat("%u", S.Set),
                strFormat("%llu", (unsigned long long)S.Samples),
                strFormat("%llu", (unsigned long long)S.Dispatches),
                S.LiveEntry ? strFormat("tier%u", S.TierNum) : "retired", K});
    }
    H.print();
  }
}
