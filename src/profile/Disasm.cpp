//===- profile/Disasm.cpp - Per-target disassembler registry --------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "profile/Disasm.h"
#include "core/Tier.h"
#include <cstdio>
#include <cstring>
#include <mutex>
#include <vector>

namespace vcode {
namespace profile {

namespace {

struct Registry {
  std::mutex M;
  // Tiny and append-mostly: four targets. Linear scan beats a map.
  std::vector<std::pair<const char *, DisasmFn>> Fns;

  static Registry &get() {
    static Registry *R = new Registry(); // leaked: static-init callers
    return *R;
  }
};

bool undecodableText(const char *Text) {
  return std::strncmp(Text, ".word", 5) == 0 ||
         std::strncmp(Text, ".byte", 5) == 0;
}

} // namespace

void registerDisassembler(const char *Target, DisasmFn Fn) {
  Registry &R = Registry::get();
  std::lock_guard<std::mutex> L(R.M);
  for (auto &KV : R.Fns)
    if (std::strcmp(KV.first, Target) == 0) {
      KV.second = Fn;
      return;
    }
  R.Fns.emplace_back(Target, Fn);
}

DisasmFn findDisassembler(const char *Target) {
  Registry &R = Registry::get();
  std::lock_guard<std::mutex> L(R.M);
  for (auto &KV : R.Fns)
    if (std::strcmp(KV.first, Target) == 0)
      return KV.second;
  return nullptr;
}

DumpStats dumpEntry(const CodeEntry &E, std::string &Out) {
  DumpStats S;
  char Line[256];
  std::snprintf(Line, sizeof(Line),
                "%s: target=%s tier=%s %llu bytes gen#%llu samples=%llu",
                E.Name.c_str(), E.Target, tierName(E.GenTier),
                (unsigned long long)E.Bytes,
                (unsigned long long)E.Generation,
                (unsigned long long)E.Samples.load(
                    std::memory_order_relaxed));
  Out += Line;
  if (E.GuestHi > E.GuestLo) {
    std::snprintf(Line, sizeof(Line), " guest=%llx-%llx",
                  (unsigned long long)E.GuestLo,
                  (unsigned long long)E.GuestHi);
    Out += Line;
  }
  Out += '\n';

  const uint8_t *P = nullptr;
  size_t N = 0;
  if (!E.Code.empty()) {
    P = E.Code.data();
    N = E.Code.size();
  } else if (E.Host) {
    P = reinterpret_cast<const uint8_t *>(E.Host);
    N = size_t(E.Bytes);
  }
  S.HaveBytes = P != nullptr;
  DisasmFn Fn = findDisassembler(E.Target);
  S.HaveDisasm = Fn != nullptr;
  if (!P) {
    Out += "  (no code bytes captured)\n";
    return S;
  }
  if (!Fn) {
    Out += "  (no disassembler registered for this target)\n";
    return S;
  }

  size_t Off = 0;
  while (Off < N) {
    std::string Text;
    size_t Len = Fn(P + Off, N - Off, E.Addr + Off, Text);
    if (Len == 0 || Len > N - Off) {
      // Undecodable gap: consume one unit (word targets emit 4-byte
      // units; x64 is byte-granular) and show the raw bytes.
      size_t Gap = (std::strcmp(E.Target, "x64") == 0) ? 1 : 4;
      if (Gap > N - Off)
        Gap = N - Off;
      Text.clear();
      char B[16];
      std::snprintf(B, sizeof(B), ".byte");
      Text += B;
      for (size_t K = 0; K < Gap; ++K) {
        std::snprintf(B, sizeof(B), " 0x%02x", P[Off + K]);
        Text += B;
      }
      Len = Gap;
      ++S.Undecodable;
    } else if (undecodableText(Text.c_str())) {
      ++S.Undecodable;
    } else {
      ++S.Instrs;
    }

    std::snprintf(Line, sizeof(Line), "  %8llx:  ",
                  (unsigned long long)(E.Addr + Off));
    Out += Line;
    // Up to 10 raw bytes, then the mnemonic column.
    std::string Hex;
    size_t Show = Len < 10 ? Len : 10;
    for (size_t K = 0; K < Show; ++K) {
      char B[8];
      std::snprintf(B, sizeof(B), "%02x ", P[Off + K]);
      Hex += B;
    }
    Hex.resize(31, ' ');
    Out += Hex;
    Out += Text;
    Out += '\n';
    Off += Len;
  }
  return S;
}

} // namespace profile
} // namespace vcode
