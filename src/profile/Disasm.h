//===- profile/Disasm.h - Per-target disassembler registry ------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// --dump-code needs to disassemble whatever target a CodeEntry was
/// generated for, but profile/ sits below the backends in the link
/// order. Each backend therefore registers a byte-level disassembler
/// here from a static initializer (word targets wrap their existing
/// MipsDisasm/SparcDisasm/AlphaDisasm; x64 registers X64Disasm), and
/// dumpEntry() resolves by the entry's Target name at dump time.
///
/// The registry itself is available in all builds (a disassembler is
/// not profiler code), but dumpEntry only has bytes to chew on when the
/// CodeMap captured them, which only happens under VCODE_TELEMETRY=ON.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_PROFILE_DISASM_H
#define VCODE_PROFILE_DISASM_H

#include "profile/CodeMap.h"
#include <cstddef>
#include <cstdint>
#include <string>

namespace vcode {
namespace profile {

/// Decodes one instruction at \p P (with \p Avail bytes left, \p Pc its
/// address for pc-relative operands), appends its text to \p Out, and
/// returns the encoded length in bytes. Returns 0 when the bytes do not
/// decode; the caller advances by one unit and marks the gap. A decoder
/// may also return nonzero with text beginning ".word"/".byte" to flag a
/// recognized-width-but-unknown encoding; dumpEntry counts both forms as
/// undecodable.
using DisasmFn = size_t (*)(const uint8_t *P, size_t Avail, uint64_t Pc,
                            std::string &Out);

/// Registers the decoder for \p Target (a TargetInfo::Name string).
/// Last registration wins; safe to call from static initializers.
void registerDisassembler(const char *Target, DisasmFn Fn);

/// Decoder for \p Target, or nullptr if that backend is not linked in.
DisasmFn findDisassembler(const char *Target);

struct DumpStats {
  uint64_t Instrs = 0;      ///< instructions decoded
  uint64_t Undecodable = 0; ///< gaps: length 0 or ".word"/".byte" text
  bool HaveDisasm = false;  ///< a decoder was registered for the target
  bool HaveBytes = false;   ///< entry had captured or live bytes to read
};

/// Appends an annotated disassembly of \p E to \p Out — header line with
/// name/target/tier/size/heat, then one "  <addr>: <bytes>  <text>" line
/// per instruction. Prefers the captured byte snapshot; falls back to the
/// live host mapping when none was captured. Degrades gracefully (header
/// plus a note) when neither bytes nor a decoder are available.
DumpStats dumpEntry(const CodeEntry &E, std::string &Out);

} // namespace profile
} // namespace vcode

#endif // VCODE_PROFILE_DISASM_H
