//===- profile/JitDump.h - perf map and jitdump writers ---------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exports published code regions to Linux perf's two JIT interfaces:
///
/// - perf map: a text file "/tmp/perf-<pid>.map" of "<addr> <size>
///   <name>" lines that `perf report` consults to symbolize otherwise
///   anonymous JIT frames. Plain text, appended and flushed per entry —
///   works on every OS (useful for the test-side reader even off Linux).
///
/// - jitdump: the richer binary format ("jit-<pid>.dump", consumed via
///   `perf inject --jit`) carrying code bytes so perf can annotate at
///   instruction level. The file is mmap'd PROT_EXEC for one page when
///   possible because perf locates the jitdump by that mmap record.
///   Linux-only; enableJitDump() reports failure elsewhere.
///
/// Both are push-model: once enabled, CodeMap::publish streams every
/// subsequent entry through exportOnPublish. Addresses written are the
/// host address when the region has one (what a sampling perf sees) and
/// the simulated address otherwise.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_PROFILE_JITDUMP_H
#define VCODE_PROFILE_JITDUMP_H

#include "profile/CodeMap.h"
#include <string>

namespace vcode {
namespace profile {

#if VCODE_TELEMETRY_ENABLED

/// Starts streaming a perf map. \p Path overrides the default
/// "/tmp/perf-<pid>.map" (tests point it into their temp dir). Returns
/// false if the file cannot be opened. Idempotent while open.
bool enablePerfMap(const char *Path = nullptr);

/// Starts streaming a jitdump. \p Path overrides the default
/// "jit-<pid>.dump" in the working directory. Returns false off Linux
/// or if the file cannot be created.
bool enableJitDump(const char *Path = nullptr);

/// Paths of the open exports ("" when not enabled).
std::string perfMapPath();
std::string jitDumpPath();

/// Flushes and closes both writers (atexit; safe to call repeatedly).
void closeJitExports();

/// Called by CodeMap::publish for every new entry.
void exportOnPublish(const CodeEntry &E);

#else // !VCODE_TELEMETRY_ENABLED

inline bool enablePerfMap(const char * = nullptr) { return false; }
inline bool enableJitDump(const char * = nullptr) { return false; }
inline std::string perfMapPath() { return {}; }
inline std::string jitDumpPath() { return {}; }
inline void closeJitExports() {}
inline void exportOnPublish(const CodeEntry &) {}

#endif // VCODE_TELEMETRY_ENABLED

} // namespace profile
} // namespace vcode

#endif // VCODE_PROFILE_JITDUMP_H
