//===- profile/CodeMap.cpp - Registry of published generated code ---------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "profile/CodeMap.h"

#if VCODE_TELEMETRY_ENABLED

#include "profile/JitDump.h"
#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <unordered_map>

namespace vcode {
namespace profile {

namespace {

/// Distinct retired names kept before aggregating under "<retired>".
constexpr size_t kMaxRetired = 4096;
/// Mutations between snapshot rebuilds (amortizes the O(n) copy; while
/// the snapshot is behind, lookups take the locked slow path instead).
constexpr uint64_t kRebuildEvery = 32;

/// "fn@<hex addr>" without the snprintf detour: publish() is on the
/// v_end path of every generated function, so the synthesized-name case
/// (most of them) must stay cheap.
std::string synthName(uint64_t Addr) {
  char Buf[22];
  char *P = Buf + sizeof(Buf);
  do {
    *--P = "0123456789abcdef"[Addr & 15];
    Addr >>= 4;
  } while (Addr);
  *--P = '@';
  *--P = 'n';
  *--P = 'f';
  return std::string(P, Buf + sizeof(Buf));
}

std::string fmtLine(const char *Fmt, ...) {
  char Buf[256];
  va_list Ap;
  va_start(Ap, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);
  return Buf;
}

} // namespace

struct CodeMap::Impl {
  mutable std::mutex M;
  /// Source of truth, keyed by region base address.
  std::map<uint64_t, std::shared_ptr<CodeEntry>> Live;
  /// Published read view; replaced wholesale, never mutated in place.
  std::atomic<std::shared_ptr<const Snap>> Reader;
  /// Mutations since the last snapshot rebuild (relaxed; readers use it
  /// only to decide whether the slow path could help).
  std::atomic<uint64_t> Dirty{0};
  std::atomic<uint64_t> GenSeq{0};

  uint64_t Published = 0, Removed = 0, Renames = 0;
  /// Heat folded out of removed entries, by name.
  std::unordered_map<std::string, uint64_t> Retired;
  uint64_t RetiredOther = 0;

  /// Rebuilds and republishes the read snapshot. Caller holds M.
  void rebuildLocked() {
    auto S = std::make_shared<Snap>();
    S->ByAddr.reserve(Live.size());
    for (auto &KV : Live)
      S->ByAddr.push_back(KV.second);
    for (auto &E : S->ByAddr)
      if (E->Host)
        S->ByHost.push_back(E);
    std::sort(S->ByHost.begin(), S->ByHost.end(),
              [](const std::shared_ptr<CodeEntry> &A,
                 const std::shared_ptr<CodeEntry> &B) {
                return A->Host < B->Host;
              });
    Reader.store(std::shared_ptr<const Snap>(std::move(S)),
                 std::memory_order_release);
    Dirty.store(0, std::memory_order_relaxed);
  }

  /// Counts a mutation and rebuilds the snapshot on the amortization
  /// boundary. Caller holds M.
  void noteMutationLocked() {
    if (Dirty.fetch_add(1, std::memory_order_relaxed) + 1 >= kRebuildEvery)
      rebuildLocked();
  }

  /// Folds a dying entry's heat into the retired tally. Caller holds M.
  void retireLocked(const CodeEntry &E) {
    uint64_t S = E.Samples.load(std::memory_order_relaxed);
    if (!S)
      return;
    auto It = Retired.find(E.Name);
    if (It != Retired.end())
      It->second += S;
    else if (Retired.size() < kMaxRetired)
      Retired.emplace(E.Name, S);
    else
      RetiredOther += S;
  }

  /// Removes every live entry overlapping [Addr, Addr+Bytes). Caller
  /// holds M. Returns the number removed.
  uint64_t removeOverlapsLocked(uint64_t Addr, uint64_t Bytes) {
    uint64_t N = 0;
    // First candidate: the entry at or before Addr can still cover it.
    auto It = Live.upper_bound(Addr);
    if (It != Live.begin()) {
      auto Prev = std::prev(It);
      if (Prev->first + Prev->second->Bytes > Addr)
        It = Prev;
    }
    while (It != Live.end() && It->first < Addr + Bytes) {
      retireLocked(*It->second);
      It = Live.erase(It);
      ++N;
    }
    return N;
  }

  /// Snapshot binary search by simulated address.
  static std::shared_ptr<const CodeEntry>
  searchAddr(const Snap &S, uint64_t Pc) {
    auto It = std::upper_bound(
        S.ByAddr.begin(), S.ByAddr.end(), Pc,
        [](uint64_t P, const std::shared_ptr<CodeEntry> &E) {
          return P < E->Addr;
        });
    if (It == S.ByAddr.begin())
      return nullptr;
    auto &E = *std::prev(It);
    return E->contains(Pc) ? E : nullptr;
  }

  /// Snapshot binary search by host address.
  static std::shared_ptr<const CodeEntry>
  searchHost(const Snap &S, uintptr_t Pc) {
    auto It = std::upper_bound(
        S.ByHost.begin(), S.ByHost.end(), Pc,
        [](uintptr_t P, const std::shared_ptr<CodeEntry> &E) {
          return P < E->Host;
        });
    if (It == S.ByHost.begin())
      return nullptr;
    auto &E = *std::prev(It);
    return E->containsHost(Pc) ? E : nullptr;
  }
};

CodeMap::CodeMap() : I(new Impl) {
  std::lock_guard<std::mutex> L(I->M);
  I->rebuildLocked(); // never leave Reader null
}

CodeMap &CodeMap::instance() {
  // Leaked: profiler drains and atexit reports may run after static
  // destruction of anything else.
  static CodeMap *M = new CodeMap();
  return *M;
}

uint64_t CodeMap::publish(uint64_t Addr, uint64_t Bytes, uint64_t Entry,
                          uintptr_t Host, std::string Name,
                          const char *Target, Tier T) {
  if (!Bytes)
    return 0;
  auto E = std::make_shared<CodeEntry>();
  E->Addr = Addr;
  E->Bytes = Bytes;
  E->Entry = Entry;
  E->Host = Host;
  E->Target = Target ? Target : "";
  E->GenTier = T;
  E->Generation = I->GenSeq.fetch_add(1, std::memory_order_relaxed) + 1;
  if (Name.empty())
    E->Name = synthName(Addr);
  else
    E->Name = std::move(Name);
  if (Host && Capture.load(std::memory_order_relaxed)) {
    const uint8_t *P = reinterpret_cast<const uint8_t *>(Host);
    E->Code.assign(P, P + Bytes);
  }
  {
    std::lock_guard<std::mutex> L(I->M);
    I->Removed += I->removeOverlapsLocked(Addr, Bytes);
    I->Live[Addr] = E;
    ++I->Published;
    I->noteMutationLocked();
  }
  exportOnPublish(*E);
  return E->Generation;
}

bool CodeMap::annotate(uint64_t Addr, const std::string &Name, Tier T) {
  std::lock_guard<std::mutex> L(I->M);
  auto It = I->Live.find(Addr);
  if (It == I->Live.end())
    return false;
  // Copy-on-write: concurrent readers hold the old entry; a string they
  // might be reading is never mutated underneath them.
  auto E = std::make_shared<CodeEntry>(*It->second);
  E->Name = Name;
  E->GenTier = T;
  It->second = std::move(E);
  ++I->Renames;
  I->noteMutationLocked();
  return true;
}

bool CodeMap::setGuestRange(uint64_t AnyAddrInRegion, uint64_t Lo,
                            uint64_t Hi) {
  std::lock_guard<std::mutex> L(I->M);
  auto It = I->Live.upper_bound(AnyAddrInRegion);
  if (It == I->Live.begin())
    return false;
  --It;
  if (!It->second->contains(AnyAddrInRegion))
    return false;
  auto E = std::make_shared<CodeEntry>(*It->second);
  E->GuestLo = Lo;
  E->GuestHi = Hi;
  It->second = std::move(E);
  I->noteMutationLocked();
  return true;
}

void CodeMap::remove(uint64_t Addr) {
  std::lock_guard<std::mutex> L(I->M);
  auto It = I->Live.find(Addr);
  if (It == I->Live.end())
    return;
  I->retireLocked(*It->second);
  I->Live.erase(It);
  ++I->Removed;
  I->noteMutationLocked();
}

std::shared_ptr<const CodeEntry> CodeMap::lookup(uint64_t Pc) const {
  {
    auto S = I->Reader.load(std::memory_order_acquire);
    // The snapshot answers only when it is current: a stale *hit* would
    // attribute to an entry already removed or renamed, not just miss.
    if (!I->Dirty.load(std::memory_order_relaxed))
      return Impl::searchAddr(*S, Pc);
  }
  // Answer from the truth map without rebuilding: this is the virtual
  // sampler's path, and continuous churn keeps the snapshot perpetually
  // dirty — an O(n) rebuild per sample inside the lock would convoy the
  // dispatch threads behind the installers. O(log n) and allocation-free
  // keeps the critical section negligible; rebuilds stay amortized on
  // the mutation boundary.
  std::lock_guard<std::mutex> L(I->M);
  auto It = I->Live.upper_bound(Pc);
  if (It == I->Live.begin())
    return nullptr;
  auto &E = std::prev(It)->second;
  return E->contains(Pc) ? E : nullptr;
}

std::shared_ptr<const CodeEntry> CodeMap::lookupHost(uintptr_t Pc) const {
  {
    auto S = I->Reader.load(std::memory_order_acquire);
    if (!I->Dirty.load(std::memory_order_relaxed))
      return Impl::searchHost(*S, Pc);
  }
  // Host lookups come from the native ring drain (stop/report time), not
  // a hot loop, and Live is not indexed by host address — rebuilding here
  // restores the indexed fast path for the rest of the batch.
  std::lock_guard<std::mutex> L(I->M);
  I->rebuildLocked();
  auto S2 = I->Reader.load(std::memory_order_acquire);
  return Impl::searchHost(*S2, Pc);
}

std::vector<std::shared_ptr<const CodeEntry>> CodeMap::entries() const {
  std::lock_guard<std::mutex> L(I->M);
  std::vector<std::shared_ptr<const CodeEntry>> Out;
  Out.reserve(I->Live.size());
  for (auto &KV : I->Live)
    Out.push_back(KV.second);
  return Out;
}

std::shared_ptr<const CodeEntry>
CodeMap::findByName(const std::string &Name) const {
  std::lock_guard<std::mutex> L(I->M);
  for (auto &KV : I->Live)
    if (KV.second->Name == Name)
      return KV.second;
  return nullptr;
}

CodeMap::Stats CodeMap::stats() const {
  std::lock_guard<std::mutex> L(I->M);
  Stats S;
  S.Published = I->Published;
  S.Removed = I->Removed;
  S.Live = I->Live.size();
  S.Renames = I->Renames;
  return S;
}

std::vector<std::pair<std::string, uint64_t>> CodeMap::retiredHeat() const {
  std::lock_guard<std::mutex> L(I->M);
  std::vector<std::pair<std::string, uint64_t>> Out;
  Out.reserve(I->Retired.size() + 1);
  for (auto &KV : I->Retired)
    Out.emplace_back(KV.first, KV.second);
  if (I->RetiredOther)
    Out.emplace_back("<retired>", I->RetiredOther);
  return Out;
}

void CodeMap::appendReport(std::string &Out) const {
  // Gather under the lock, format outside it.
  std::vector<std::shared_ptr<const CodeEntry>> Es = entries();
  Stats S = stats();
  auto Retired = retiredHeat();

  Out += "codemap:\n";
  Out += fmtLine("  regions: %llu live, %llu published, %llu retired, "
                 "%llu renamed\n",
                 (unsigned long long)S.Live, (unsigned long long)S.Published,
                 (unsigned long long)S.Removed,
                 (unsigned long long)S.Renames);
  uint64_t TotalBytes = 0, TotalSamples = 0;
  for (auto &E : Es) {
    TotalBytes += E->Bytes;
    TotalSamples += E->Samples.load(std::memory_order_relaxed);
  }
  uint64_t RetiredSamples = 0;
  for (auto &KV : Retired)
    RetiredSamples += KV.second;
  Out += fmtLine("  code bytes live: %llu; samples: %llu live, %llu "
                 "retired\n",
                 (unsigned long long)TotalBytes,
                 (unsigned long long)TotalSamples,
                 (unsigned long long)RetiredSamples);

  // Top entries by heat, then generation order for the cold remainder.
  std::sort(Es.begin(), Es.end(),
            [](const std::shared_ptr<const CodeEntry> &A,
               const std::shared_ptr<const CodeEntry> &B) {
              uint64_t Sa = A->Samples.load(std::memory_order_relaxed);
              uint64_t Sb = B->Samples.load(std::memory_order_relaxed);
              if (Sa != Sb)
                return Sa > Sb;
              return A->Generation < B->Generation;
            });
  constexpr size_t kMaxLines = 20;
  size_t Shown = std::min(Es.size(), kMaxLines);
  for (size_t K = 0; K < Shown; ++K) {
    const CodeEntry &E = *Es[K];
    std::string Name = E.Name.size() > 48 ? E.Name.substr(0, 45) + "..."
                                          : E.Name;
    Out += fmtLine("    %-48s %-5s %-6s %6llu B %8llu samples",
                   Name.c_str(), E.Target, tierName(E.GenTier),
                   (unsigned long long)E.Bytes,
                   (unsigned long long)E.Samples.load(
                       std::memory_order_relaxed));
    if (E.GuestHi > E.GuestLo)
      Out += fmtLine("  guest %llx-%llx", (unsigned long long)E.GuestLo,
                     (unsigned long long)E.GuestHi);
    Out += '\n';
  }
  if (Es.size() > Shown)
    Out += fmtLine("    ... %zu more regions\n", Es.size() - Shown);
}

void CodeMap::resetForTest() {
  std::lock_guard<std::mutex> L(I->M);
  I->Live.clear();
  I->Retired.clear();
  I->RetiredOther = 0;
  I->Published = I->Removed = I->Renames = 0;
  I->rebuildLocked();
}

} // namespace profile
} // namespace vcode

#endif // VCODE_TELEMETRY_ENABLED
