//===- profile/JitDump.cpp - perf map and jitdump writers -----------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "profile/JitDump.h"

#if VCODE_TELEMETRY_ENABLED

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>

#if defined(__linux__)
#include <sys/mman.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>
#endif

namespace vcode {
namespace profile {

namespace {

std::mutex GM;
/// Publish-path gate: checked without GM so the common case (no export
/// enabled) costs one relaxed load on every v_end.
std::atomic<bool> GExportsOn{false};
FILE *GMapF = nullptr;
std::string GMapPath;
FILE *GDumpF = nullptr;
std::string GDumpPath;
uint64_t GCodeIndex = 0;
void *GMarkerPage = nullptr;

#if defined(__linux__)

// Jitdump format, as consumed by `perf inject --jit` (see
// linux/tools/perf/Documentation/jitdump-specification.txt).
constexpr uint32_t kJitMagic = 0x4A695444; // "JiTD"
constexpr uint32_t kJitVersion = 1;
constexpr uint32_t kElfMachX86_64 = 62;
constexpr uint32_t kRecCodeLoad = 0;

struct JitHeader {
  uint32_t Magic;
  uint32_t Version;
  uint32_t TotalSize;
  uint32_t ElfMach;
  uint32_t Pad1;
  uint32_t Pid;
  uint64_t Timestamp;
  uint64_t Flags;
};
static_assert(sizeof(JitHeader) == 40, "jitdump header layout");

struct JitRecHeader {
  uint32_t Id;
  uint32_t TotalSize;
  uint64_t Timestamp;
};

struct JitRecLoad {
  uint32_t Pid;
  uint32_t Tid;
  uint64_t Vma;
  uint64_t CodeAddr;
  uint64_t CodeSize;
  uint64_t CodeIndex;
};
static_assert(sizeof(JitRecHeader) + sizeof(JitRecLoad) == 56,
              "jitdump load record layout");

uint64_t monotonicNs() {
  struct timespec TS;
  clock_gettime(CLOCK_MONOTONIC, &TS);
  return uint64_t(TS.tv_sec) * 1000000000ull + uint64_t(TS.tv_nsec);
}

#endif // __linux__

int processId() {
#if defined(__linux__)
  return int(getpid());
#else
  return 0;
#endif
}

} // namespace

bool enablePerfMap(const char *Path) {
  std::lock_guard<std::mutex> L(GM);
  if (GMapF)
    return true;
  char Buf[128];
  if (!Path) {
    std::snprintf(Buf, sizeof(Buf), "/tmp/perf-%d.map", processId());
    Path = Buf;
  }
  GMapF = std::fopen(Path, "w");
  if (!GMapF)
    return false;
  GMapPath = Path;
  GExportsOn.store(true, std::memory_order_relaxed);
  return true;
}

bool enableJitDump(const char *Path) {
#if defined(__linux__)
  std::lock_guard<std::mutex> L(GM);
  if (GDumpF)
    return true;
  char Buf[128];
  if (!Path) {
    std::snprintf(Buf, sizeof(Buf), "jit-%d.dump", processId());
    Path = Buf;
  }
  GDumpF = std::fopen(Path, "w+");
  if (!GDumpF)
    return false;
  GDumpPath = Path;

  JitHeader H;
  std::memset(&H, 0, sizeof(H));
  H.Magic = kJitMagic;
  H.Version = kJitVersion;
  H.TotalSize = sizeof(H);
  H.ElfMach = kElfMachX86_64;
  H.Pid = uint32_t(processId());
  H.Timestamp = monotonicNs();
  std::fwrite(&H, sizeof(H), 1, GDumpF);
  std::fflush(GDumpF);

  // perf finds the jitdump via an executable mmap of its first page in
  // the recorded process. Best effort: without it `perf inject` needs
  // the file named explicitly, so only warn.
  long Page = sysconf(_SC_PAGESIZE);
  GMarkerPage = mmap(nullptr, size_t(Page), PROT_READ | PROT_EXEC,
                     MAP_PRIVATE, fileno(GDumpF), 0);
  if (GMarkerPage == MAP_FAILED) {
    GMarkerPage = nullptr;
    std::fprintf(stderr,
                 "vcode: warning: jitdump marker mmap failed; perf "
                 "record will not auto-detect %s\n",
                 GDumpPath.c_str());
  }
  GExportsOn.store(true, std::memory_order_relaxed);
  return true;
#else
  (void)Path;
  return false;
#endif
}

std::string perfMapPath() {
  std::lock_guard<std::mutex> L(GM);
  return GMapPath;
}

std::string jitDumpPath() {
  std::lock_guard<std::mutex> L(GM);
  return GDumpPath;
}

void closeJitExports() {
  std::lock_guard<std::mutex> L(GM);
  GExportsOn.store(false, std::memory_order_relaxed);
  if (GMapF) {
    std::fclose(GMapF);
    GMapF = nullptr;
  }
  if (GDumpF) {
    std::fclose(GDumpF);
    GDumpF = nullptr;
  }
#if defined(__linux__)
  if (GMarkerPage) {
    munmap(GMarkerPage, size_t(sysconf(_SC_PAGESIZE)));
    GMarkerPage = nullptr;
  }
#endif
}

void exportOnPublish(const CodeEntry &E) {
  if (!GExportsOn.load(std::memory_order_relaxed))
    return;
  std::lock_guard<std::mutex> L(GM);
  if (!GMapF && !GDumpF)
    return;
  uint64_t Addr = E.Host ? uint64_t(E.Host) : E.Addr;
  if (GMapF) {
    std::fprintf(GMapF, "%llx %llx %s\n", (unsigned long long)Addr,
                 (unsigned long long)E.Bytes, E.Name.c_str());
    std::fflush(GMapF); // survive crashes mid-run; perf tails the file
  }
#if defined(__linux__)
  if (GDumpF) {
    const uint8_t *Code = nullptr;
    if (!E.Code.empty())
      Code = E.Code.data();
    else if (E.Host)
      Code = reinterpret_cast<const uint8_t *>(E.Host);
    size_t CodeLen = Code ? size_t(E.Bytes) : 0;

    JitRecHeader RH;
    JitRecLoad RL;
    RH.Id = kRecCodeLoad;
    RH.TotalSize = uint32_t(sizeof(RH) + sizeof(RL) + E.Name.size() + 1 +
                            CodeLen);
    RH.Timestamp = monotonicNs();
    RL.Pid = uint32_t(processId());
    RL.Tid = uint32_t(syscall(SYS_gettid));
    RL.Vma = Addr;
    RL.CodeAddr = Addr;
    RL.CodeSize = CodeLen;
    RL.CodeIndex = GCodeIndex++;
    std::fwrite(&RH, sizeof(RH), 1, GDumpF);
    std::fwrite(&RL, sizeof(RL), 1, GDumpF);
    std::fwrite(E.Name.c_str(), E.Name.size() + 1, 1, GDumpF);
    if (CodeLen)
      std::fwrite(Code, CodeLen, 1, GDumpF);
    std::fflush(GDumpF);
  }
#endif
}

} // namespace profile
} // namespace vcode

#endif // VCODE_TELEMETRY_ENABLED
