//===- profile/Profiler.h - Sampling profiler for generated code -*- C++ -*-==//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two samplers feed CodeMap heat tallies:
///
/// - Native: a SIGPROF/itimer handler captures the interrupted RIP into a
///   lock-free ring of atomic slots (async-signal-safe: the handler does
///   one relaxed fetch_add and one relaxed store). Samples are attributed
///   through CodeMap::lookupHost at drain time (stop/report), so native
///   and DBT frames — real host code — show up by name. Linux/x86-64
///   only; startSampler() reports false elsewhere.
///
/// - Virtual: the simulators sample their own guest PC every
///   kVirtualSamplePeriod instructions via VCODE_PF_SAMPLE_VPC. Ordinary
///   thread context, so attribution is immediate (lock-free CodeMap
///   lookup + relaxed Samples increment).
///
/// Everything here compiles out under -DVCODE_TELEMETRY=OFF: the macro
/// expands to nothing and the functions become inline no-ops, so the
/// simulator dispatch loops carry zero cost.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_PROFILE_PROFILER_H
#define VCODE_PROFILE_PROFILER_H

#include "profile/CodeMap.h"
#include <cstdint>
#include <string>

namespace vcode {
namespace profile {

/// Virtual-PC sampling period (instructions); power of two so the gate
/// is one AND on the dispatch path.
constexpr uint64_t kVirtualSamplePeriod = 4096;

struct SamplerStats {
  uint64_t VirtualSamples = 0;    ///< virtual-PC samples taken
  uint64_t VirtualAttributed = 0; ///< ... that hit a CodeMap entry
  uint64_t NativeSamples = 0;     ///< SIGPROF ticks captured
  uint64_t NativeAttributed = 0;  ///< ... whose RIP hit a CodeMap entry
  uint64_t NativeDropped = 0;     ///< ring overruns between drains
};

#if VCODE_TELEMETRY_ENABLED

/// True while a profiling session is open (gates both samplers).
bool samplerActive();

/// Opens a profiling session: enables virtual-PC sampling everywhere
/// and, on Linux/x86-64, arms an ITIMER_PROF at \p Hz for native
/// sampling. Returns true if the native timer armed; virtual sampling
/// is active either way. Idempotent while running.
bool startSampler(unsigned Hz = 997);

/// Disarms the timer, drains the native ring through CodeMap, and
/// closes the session. Safe to call when not running.
void stopSampler();

/// Attributes one virtual-PC sample immediately. Called from the
/// simulators through VCODE_PF_SAMPLE_VPC; ordinary thread context.
void recordVirtualPc(uint64_t Pc);

/// Cumulative tallies for the current process (drains the native ring
/// first so NativeAttributed is current).
SamplerStats samplerStats();

/// Appends the profiler section: sampler tallies + hottest entries.
void appendProfileReport(std::string &Out);

/// --profile-report: start sampling now and print the profile to
/// stderr at exit (idempotent).
void requestProfileReport();

/// --dump-code=<name|all>: turn on CodeMap byte capture now and print
/// annotated disassembly of the matching entries to stdout at exit.
void requestDumpCode(const std::string &NameOrAll);

/// The atexit hook behind the request* entry points (exposed so tests
/// can invoke the same path deterministically).
void profileAtExit();

/// Zeroes the sampler tallies and drops pending ring samples. Tests
/// only, same rationale as CodeMap::resetForTest.
void resetSamplerForTest();

/// One virtual-PC sample every kVirtualSamplePeriod ticks of Clk, only
/// while a session is open. The common case is one AND, one compare,
/// and one relaxed load.
#define VCODE_PF_SAMPLE_VPC(Clk, Pc)                                         \
  do {                                                                       \
    if (((Clk) & (::vcode::profile::kVirtualSamplePeriod - 1)) == 0 &&       \
        ::vcode::profile::samplerActive())                                   \
      ::vcode::profile::recordVirtualPc(Pc);                                 \
  } while (0)

#else // !VCODE_TELEMETRY_ENABLED

inline bool samplerActive() { return false; }
inline bool startSampler(unsigned = 997) { return false; }
inline void stopSampler() {}
inline void recordVirtualPc(uint64_t) {}
inline SamplerStats samplerStats() { return {}; }
inline void appendProfileReport(std::string &) {}
inline void requestProfileReport() {}
inline void requestDumpCode(const std::string &) {}
inline void profileAtExit() {}
inline void resetSamplerForTest() {}

// Arguments are not evaluated: the clock increment itself compiles out.
#define VCODE_PF_SAMPLE_VPC(Clk, Pc)                                         \
  do {                                                                       \
  } while (0)

#endif // VCODE_TELEMETRY_ENABLED

} // namespace profile
} // namespace vcode

#endif // VCODE_PROFILE_PROFILER_H
