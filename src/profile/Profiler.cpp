//===- profile/Profiler.cpp - Sampling profiler for generated code --------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "profile/Profiler.h"

#if VCODE_TELEMETRY_ENABLED

#include "profile/Disasm.h"
#include "profile/JitDump.h"
#include <algorithm>
#include <atomic>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>
#include <vector>

#if defined(__linux__) && defined(__x86_64__)
#include <csignal>
#include <sys/time.h>
#include <ucontext.h>
#define VCODE_PF_NATIVE_SAMPLER 1
#else
#define VCODE_PF_NATIVE_SAMPLER 0
#endif

namespace vcode {
namespace profile {

namespace {

/// Session gate read on every virtual sample.
std::atomic<bool> GActive{false};

/// Native SIGPROF ring. Atomic slots keep the handler async-signal-safe
/// and the drain TSan-clean; slot value 0 means "empty or already
/// drained" (RIP 0 never occurs).
constexpr size_t kRingSlots = 1u << 16;
std::array<std::atomic<uint64_t>, kRingSlots> GRing;
std::atomic<uint64_t> GRingHead{0};
std::atomic<uint64_t> GRingDrained{0}; ///< next index drain will read
std::atomic<bool> GTimerArmed{false};

/// Virtual-sampler tallies (immediate attribution).
std::atomic<uint64_t> GVirtSamples{0};
std::atomic<uint64_t> GVirtAttributed{0};
/// Native tallies, owned by drainNativeRing under GDrainM.
std::mutex GDrainM;
uint64_t GNatSamples = 0, GNatAttributed = 0, GNatDropped = 0;

/// atexit plumbing for --profile-report / --dump-code.
std::atomic<bool> GWantReport{false};
std::mutex GDumpM;
std::string GDumpPattern; ///< empty = no dump; "all" or a name

#if VCODE_PF_NATIVE_SAMPLER
void sigprofHandler(int, siginfo_t *, void *Ctx) {
  // Async-signal-safe: two relaxed atomic ops, no locks, no allocation.
  auto *UC = static_cast<ucontext_t *>(Ctx);
  uint64_t Rip = uint64_t(UC->uc_mcontext.gregs[REG_RIP]);
  if (!Rip)
    return;
  uint64_t H = GRingHead.fetch_add(1, std::memory_order_relaxed);
  GRing[H % kRingSlots].store(Rip, std::memory_order_relaxed);
}
#endif

/// Attributes everything captured since the last drain. Overruns (more
/// ticks than ring slots between drains) count as dropped.
void drainNativeRing() {
  std::lock_guard<std::mutex> L(GDrainM);
  uint64_t Head = GRingHead.load(std::memory_order_relaxed);
  uint64_t From = GRingDrained.load(std::memory_order_relaxed);
  if (Head == From)
    return;
  uint64_t Avail = Head - From;
  if (Avail > kRingSlots) {
    GNatDropped += Avail - kRingSlots;
    From = Head - kRingSlots;
  }
  CodeMap &M = CodeMap::instance();
  for (uint64_t K = From; K < Head; ++K) {
    uint64_t Rip = GRing[K % kRingSlots].exchange(
        0, std::memory_order_relaxed);
    if (!Rip)
      continue; // handler racing ahead of the store; count it dropped
    ++GNatSamples;
    if (auto E = M.lookupHost(uintptr_t(Rip))) {
      E->Samples.fetch_add(1, std::memory_order_relaxed);
      ++GNatAttributed;
    }
  }
  GRingDrained.store(Head, std::memory_order_relaxed);
}

void dumpMatching(const std::string &Pattern, std::string &Out) {
  CodeMap &M = CodeMap::instance();
  bool All = Pattern == "all";
  uint64_t Matched = 0;
  for (auto &E : M.entries()) {
    if (!All && E->Name != Pattern)
      continue;
    ++Matched;
    dumpEntry(*E, Out);
    Out += '\n';
  }
  if (!Matched) {
    Out += "dump-code: no published function matches '";
    Out += Pattern;
    Out += "'\n";
  }
}

void registerAtExitOnce() {
  static bool Registered = (std::atexit(profileAtExit), true);
  (void)Registered;
}

} // namespace

bool samplerActive() { return GActive.load(std::memory_order_relaxed); }

bool startSampler(unsigned Hz) {
  if (GActive.exchange(true, std::memory_order_relaxed))
    return GTimerArmed.load(std::memory_order_relaxed);
#if VCODE_PF_NATIVE_SAMPLER
  if (Hz == 0)
    Hz = 997;
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_sigaction = sigprofHandler;
  SA.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&SA.sa_mask);
  if (sigaction(SIGPROF, &SA, nullptr) == 0) {
    struct itimerval TV;
    TV.it_interval.tv_sec = 0;
    TV.it_interval.tv_usec = long(1000000 / Hz);
    if (TV.it_interval.tv_usec == 0)
      TV.it_interval.tv_usec = 1;
    TV.it_value = TV.it_interval;
    if (setitimer(ITIMER_PROF, &TV, nullptr) == 0) {
      GTimerArmed.store(true, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
#else
  (void)Hz;
  return false; // virtual sampling still on
#endif
}

void stopSampler() {
  if (!GActive.exchange(false, std::memory_order_relaxed))
    return;
#if VCODE_PF_NATIVE_SAMPLER
  if (GTimerArmed.exchange(false, std::memory_order_relaxed)) {
    struct itimerval TV;
    std::memset(&TV, 0, sizeof(TV));
    setitimer(ITIMER_PROF, &TV, nullptr);
    signal(SIGPROF, SIG_IGN);
  }
#endif
  drainNativeRing();
}

void recordVirtualPc(uint64_t Pc) {
  GVirtSamples.fetch_add(1, std::memory_order_relaxed);
  if (auto E = CodeMap::instance().lookup(Pc)) {
    E->Samples.fetch_add(1, std::memory_order_relaxed);
    GVirtAttributed.fetch_add(1, std::memory_order_relaxed);
  }
}

SamplerStats samplerStats() {
  drainNativeRing();
  std::lock_guard<std::mutex> L(GDrainM);
  SamplerStats S;
  S.VirtualSamples = GVirtSamples.load(std::memory_order_relaxed);
  S.VirtualAttributed = GVirtAttributed.load(std::memory_order_relaxed);
  S.NativeSamples = GNatSamples;
  S.NativeAttributed = GNatAttributed;
  S.NativeDropped = GNatDropped;
  return S;
}

void appendProfileReport(std::string &Out) {
  SamplerStats S = samplerStats(); // drains first
  char Line[256];
  Out += "profile:\n";
  double VirtRate =
      S.VirtualSamples
          ? 100.0 * double(S.VirtualAttributed) / double(S.VirtualSamples)
          : 0.0;
  std::snprintf(Line, sizeof(Line),
                "  virtual-pc samples: %llu (%llu attributed, %.1f%%)\n",
                (unsigned long long)S.VirtualSamples,
                (unsigned long long)S.VirtualAttributed, VirtRate);
  Out += Line;
  std::snprintf(
      Line, sizeof(Line),
      "  native samples: %llu (%llu in generated code, %llu in "
      "runtime, %llu dropped)\n",
      (unsigned long long)S.NativeSamples,
      (unsigned long long)S.NativeAttributed,
      (unsigned long long)(S.NativeSamples - S.NativeAttributed),
      (unsigned long long)S.NativeDropped);
  Out += Line;
  CodeMap::instance().appendReport(Out);
}

void requestProfileReport() {
  registerAtExitOnce();
  GWantReport.store(true, std::memory_order_relaxed);
  startSampler();
}

void requestDumpCode(const std::string &NameOrAll) {
  registerAtExitOnce();
  CodeMap::instance().setCaptureBytes(true);
  std::lock_guard<std::mutex> L(GDumpM);
  GDumpPattern = NameOrAll.empty() ? std::string("all") : NameOrAll;
}

void profileAtExit() {
  stopSampler();
  std::string Pattern;
  {
    std::lock_guard<std::mutex> L(GDumpM);
    Pattern = GDumpPattern;
  }
  if (!Pattern.empty()) {
    std::string Out;
    dumpMatching(Pattern, Out);
    std::fwrite(Out.data(), 1, Out.size(), stdout);
    std::fflush(stdout);
  }
  if (GWantReport.load(std::memory_order_relaxed)) {
    std::string Out;
    appendProfileReport(Out);
    std::cerr << Out; // matches telemetry's at-exit report stream
  }
  closeJitExports();
}

void resetSamplerForTest() {
  stopSampler();
  std::lock_guard<std::mutex> L(GDrainM);
  GVirtSamples.store(0, std::memory_order_relaxed);
  GVirtAttributed.store(0, std::memory_order_relaxed);
  GNatSamples = GNatAttributed = GNatDropped = 0;
  uint64_t Head = GRingHead.load(std::memory_order_relaxed);
  GRingDrained.store(Head, std::memory_order_relaxed);
  for (auto &Slot : GRing)
    Slot.store(0, std::memory_order_relaxed);
}

} // namespace profile
} // namespace vcode

#endif // VCODE_TELEMETRY_ENABLED
