//===- profile/CodeMap.h - Registry of published generated code -*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CodeMap is the process-wide answer to "what generated code is live
/// right now, and where?". Every published code region — a v_end on any
/// target, a CodeCache insert or promotion, a DBT translation — registers
/// here with its name (the cache key when there is one), target, tier,
/// size, and for translations the guest-PC range it was lifted from. The
/// sampling profiler (profile/Profiler.h) attributes PCs through it, the
/// perf-map/jitdump writers (profile/JitDump.h) stream entries from it,
/// and --dump-code walks it for annotated disassembly.
///
/// Concurrency: writers (publish/annotate/remove) serialize on a mutex;
/// readers look PCs up in an immutable snapshot swapped through
/// std::atomic<std::shared_ptr>, so a lookup never blocks on a writer.
/// Snapshot rebuilds are amortized (every kRebuildEvery mutations) to keep
/// the publish path off the service's install-latency SLO; a lookup only
/// consults the snapshot while no mutations are pending — otherwise it
/// takes the slow path and rebuilds — so attribution stays exact (never a
/// removed or renamed entry) without per-publish rebuild cost.
///
/// Like the telemetry layer it reports through, the whole registry
/// compiles out under -DVCODE_TELEMETRY=OFF: the class below becomes an
/// inline no-op shell and call sites vanish.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_PROFILE_CODEMAP_H
#define VCODE_PROFILE_CODEMAP_H

#include "core/Tier.h"
#include "support/Telemetry.h" // VCODE_TELEMETRY_ENABLED
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace vcode {
namespace profile {

/// Metadata for one published code region. Immutable after publication
/// except Samples (relaxed-atomic profiler heat); metadata updates
/// (annotate/setGuestRange) replace the entry copy-on-write so concurrent
/// readers never observe a string mid-write.
struct CodeEntry {
  uint64_t Addr = 0;  ///< region base, in its arena's simulated addresses
  uint64_t Bytes = 0; ///< published length
  uint64_t Entry = 0; ///< entry point (>= Addr when prologues right-align)
  uintptr_t Host = 0; ///< host address of byte 0 (0 when unknown)
  std::string Name;   ///< cache key or client name; synthesized if unset
  const char *Target = ""; ///< TargetInfo::Name (static storage)
  Tier GenTier = Tier::Tier0;
  uint64_t Generation = 0; ///< process-wide publish sequence number
  uint64_t GuestLo = 0, GuestHi = 0; ///< DBT: guest-PC source range
  std::vector<uint8_t> Code; ///< captured bytes (only when capture is on)
  mutable std::atomic<uint64_t> Samples{0}; ///< profiler heat

  CodeEntry() = default;
  /// Copy for the copy-on-write metadata updates; carries the heat over.
  CodeEntry(const CodeEntry &O)
      : Addr(O.Addr), Bytes(O.Bytes), Entry(O.Entry), Host(O.Host),
        Name(O.Name), Target(O.Target), GenTier(O.GenTier),
        Generation(O.Generation), GuestLo(O.GuestLo), GuestHi(O.GuestHi),
        Code(O.Code), Samples(O.Samples.load(std::memory_order_relaxed)) {}
  CodeEntry &operator=(const CodeEntry &) = delete;

  bool contains(uint64_t Pc) const { return Pc - Addr < Bytes; }
  bool containsHost(uintptr_t Pc) const {
    return Host && Pc - Host < Bytes;
  }
};

#if VCODE_TELEMETRY_ENABLED

/// Process-wide registry of published code regions. See the file comment
/// for the concurrency model.
class CodeMap {
public:
  static CodeMap &instance();

  struct Stats {
    uint64_t Published = 0; ///< publish() calls
    uint64_t Removed = 0;   ///< remove() plus overlap evictions
    uint64_t Live = 0;      ///< entries currently registered
    uint64_t Renames = 0;   ///< annotate() metadata updates
  };

  /// Registers [Addr, Addr+Bytes) with entry point \p Entry. Any
  /// previously published region that overlaps is removed first (the
  /// cache's free pool reuses regions); its heat folds into the retired
  /// tally. An empty \p Name is synthesized as "fn@<addr>". Captures the
  /// code bytes from \p Host when capture is enabled. Returns the publish
  /// generation number.
  uint64_t publish(uint64_t Addr, uint64_t Bytes, uint64_t Entry,
                   uintptr_t Host, std::string Name, const char *Target,
                   Tier T);

  /// Renames the region based at exactly \p Addr and updates its tier
  /// (CodeCache insert/promote know the key and final tier only after
  /// v_end published). Returns false if no region is based there.
  bool annotate(uint64_t Addr, const std::string &Name, Tier T);

  /// Records the guest-PC source range on the region containing
  /// \p AnyAddrInRegion (DBT translations). Returns false on no region.
  bool setGuestRange(uint64_t AnyAddrInRegion, uint64_t Lo, uint64_t Hi);

  /// Unregisters the region based at exactly \p Addr (eviction, promotion
  /// reclaim); its heat folds into the retired tally.
  void remove(uint64_t Addr);

  /// PC -> entry in the simulated address space of each region's arena.
  /// O(log n) against the read snapshot; never blocks on a publisher
  /// unless mutations are pending (then rebuilds under the writer lock,
  /// so a stale entry is never returned). NOT async-signal-safe.
  std::shared_ptr<const CodeEntry> lookup(uint64_t Pc) const;
  /// Host-address -> entry (SIGPROF RIPs, DBT translated-function
  /// pointers). Same contract as lookup().
  std::shared_ptr<const CodeEntry> lookupHost(uintptr_t Pc) const;

  /// Every live entry, in address order.
  std::vector<std::shared_ptr<const CodeEntry>> entries() const;
  /// First live entry whose Name equals \p Name (report-time joins).
  std::shared_ptr<const CodeEntry> findByName(const std::string &Name) const;

  Stats stats() const;

  /// When on, publish() snapshots the region's bytes into the entry so
  /// disassembly/jitdump survive arena teardown (set by --dump-code and
  /// the round-trip checker before any generation).
  void setCaptureBytes(bool On) {
    Capture.store(On, std::memory_order_relaxed);
  }
  bool captureBytes() const {
    return Capture.load(std::memory_order_relaxed);
  }

  /// Heat folded out of removed entries: (name, samples), unordered. At
  /// most kMaxRetired distinct names are kept; the rest aggregate under
  /// "<retired>".
  std::vector<std::pair<std::string, uint64_t>> retiredHeat() const;

  /// Appends the "codemap:" section of --telemetry-report.
  void appendReport(std::string &Out) const;

  /// Drops every entry and zeroes the stats. Tests only: the map is
  /// process-global, and suites that count entries need a clean slate.
  void resetForTest();

private:
  CodeMap();
  ~CodeMap() = delete; // leaked singleton: atexit readers outlive statics

  struct Snap {
    std::vector<std::shared_ptr<CodeEntry>> ByAddr; ///< sorted by Addr
    std::vector<std::shared_ptr<CodeEntry>> ByHost; ///< Host != 0, sorted
  };

  struct Impl;
  Impl *I;
  std::atomic<bool> Capture{false};
};

#else // !VCODE_TELEMETRY_ENABLED

/// Compiled-out shell: every member is an inline no-op, so call sites in
/// core/backends/dbt vanish entirely from VCODE_TELEMETRY=OFF builds.
class CodeMap {
public:
  static CodeMap &instance() {
    static CodeMap M;
    return M;
  }
  struct Stats {
    uint64_t Published = 0, Removed = 0, Live = 0, Renames = 0;
  };
  uint64_t publish(uint64_t, uint64_t, uint64_t, uintptr_t, std::string,
                   const char *, Tier) {
    return 0;
  }
  bool annotate(uint64_t, const std::string &, Tier) { return false; }
  bool setGuestRange(uint64_t, uint64_t, uint64_t) { return false; }
  void remove(uint64_t) {}
  std::shared_ptr<const CodeEntry> lookup(uint64_t) const { return {}; }
  std::shared_ptr<const CodeEntry> lookupHost(uintptr_t) const { return {}; }
  std::vector<std::shared_ptr<const CodeEntry>> entries() const { return {}; }
  std::shared_ptr<const CodeEntry> findByName(const std::string &) const {
    return {};
  }
  Stats stats() const { return {}; }
  void setCaptureBytes(bool) {}
  bool captureBytes() const { return false; }
  std::vector<std::pair<std::string, uint64_t>> retiredHeat() const {
    return {};
  }
  void appendReport(std::string &) const {}
  void resetForTest() {}
};

#endif // VCODE_TELEMETRY_ENABLED

} // namespace profile
} // namespace vcode

#endif // VCODE_PROFILE_CODEMAP_H
