//===- dbt/TranslationEngine.cpp - Cached guest-block translation ----------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "dbt/TranslationEngine.h"
#include "core/Generate.h"
#include "dbt/MipsRegion.h"
#include "dbt/MipsTranslator.h"
#include "profile/CodeMap.h"
#include "support/Telemetry.h"
#include <algorithm>
#include <cstdio>

using namespace vcode;
using namespace vcode::dbt;

TranslationEngine::TranslationEngine(sim::Memory &Guest,
                                     size_t NativeArenaBytes)
    : Guest(Guest) {
  if (!hostSupported())
    return;
#ifdef VCODE_HAVE_MMAP
  NativeMem.reset(new sim::Memory(sim::Memory::Native, NativeArenaBytes));
  CodeCache::Options O;
  O.Shards = 8;
  // Regions are block-sized (a few KiB); keep enough per shard that a
  // working set of hot regions plus cold strays stays resident.
  O.MaxEntriesPerShard = 256;
  Cache.reset(new CodeCache(*NativeMem, O));
#endif
}

TranslationEngine::~TranslationEngine() = default;

bool TranslationEngine::hostSupported() {
#if defined(__x86_64__) && defined(VCODE_HAVE_MMAP)
  return true;
#else
  return false;
#endif
}

bool TranslationEngine::available() const {
  if (!Cache)
    return false;
  // The translator's effective-address arithmetic is 32-bit and its
  // bounds check subtracts the 32-bit truncated base, so the guest arena
  // must sit entirely inside the low 4 GiB (a native guest arena is a
  // host mapping and never qualifies — nor would interpreting MIPS out of
  // one make sense).
  return Guest.base() + Guest.size() <= (uint64_t(1) << 32);
}

CodeCache::Handle TranslationEngine::translate(SimAddr PC, uint64_t Gen) {
  char Key[64];
  std::snprintf(Key, sizeof(Key), "dbt:%llx:g%llu",
                static_cast<unsigned long long>(PC),
                static_cast<unsigned long long>(Gen));
  return Cache->lookupOrGenerate(Key, [&](CodeCache::RegionAlloc &RA) {
    VCODE_TM_TICK(T0);
    VCODE_TM_COUNT("dbt.translations", 1);
    MipsRegion R = discoverRegion(Guest, PC);
    VCodeT<x64::X64Target> V(Tgt);
    GenerateOptions GO;
    // ~tens of host bytes per guest word plus per-block stub overhead;
    // generateWithRetry grows geometrically on a miss.
    GO.InitialBytes = 512 + 96 * size_t(R.TotalWords) + 64 * R.Blocks.size();
    GO.MaxBytes = size_t(1) << 22;
    GenerateResult GR = generateWithRetry(
        V, RA, [&](CodeMem CM) { return translateRegion(V, R, CM, Guest); },
        GO);
    VCODE_TM_SPAN("dbt.translate", T0);
    if (GR.Code.isValid()) {
      // Record the guest-PC span the region translates so profiler samples
      // of the dispatch loop (which carry guest PCs) attribute back here.
      SimAddr Lo = ~SimAddr(0), Hi = 0;
      for (const MipsBlock &B : R.Blocks) {
        if (B.Units.empty())
          continue;
        Lo = std::min(Lo, B.Entry);
        const MipsUnit &Last = B.Units.back();
        Hi = std::max(Hi, Last.PC + 4 * SimAddr(Last.instrs()));
      }
      if (Hi > Lo)
        profile::CodeMap::instance().setGuestRange(GR.Code.Entry, Lo, Hi);
    }
    return GR;
  });
}
