//===- dbt/MipsTranslator.cpp - MIPS region -> x86-64 translation ----------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
// The translated ABI and exit protocol:
//
//   uint64_t f(GuestState *S /*RDI*/, uint8_t *GuestHostBase /*RSI*/)
//
// returns the next guest PC. A return value with DbtInterpTag set asks the
// dispatcher to execute exactly one instruction unit at (ret & DbtPcMask)
// through the interpreter — that single mechanism covers memory faults,
// untranslatable opcodes, and the instruction budget, and it is what makes
// the translation bit-exact: anything subtle is *re-executed* by the
// reference implementation from precise spilled state.
//
// Instruction accounting is block-granular with fixups. A block that
// retires N guest instructions adds N to GuestState::Instrs up front
// (exiting untouched to the interpreter if that would cross InstrLimit,
// so the interpreter's own limit fatal triggers at the exact instruction);
// a mid-block exit at unit k subtracts the not-yet-executed remainder in
// its out-of-line stub. Every CTI re-executed by the interpreter after a
// delay-slot fault is idempotent to re-enter: link-register writes write
// the same value, and branch conditions are recomputed from unmodified
// state.
//
//===----------------------------------------------------------------------===//

#include "dbt/MipsTranslator.h"
#include "support/Error.h"
#include "x64/X64Encoding.h"
#include <vector>

using namespace vcode;
using namespace vcode::dbt;

namespace {

class RegionTranslator {
public:
  RegionTranslator(VCodeT<x64::X64Target> &V, const MipsRegion &R,
                   const sim::Memory &Guest)
      : V(V), R(R), GuestBase(uint32_t(Guest.base())), GuestSize(Guest.size()) {
  }

  CodePtr run(CodeMem CM) {
    Reg Args[2];
    V.lambda("%p%p", Args, LeafHint, CM);
    State = Args[0]; // RDI
    Base = Args[1];  // RSI
    A = V.getreg(Type::UL);
    B = V.getreg(Type::UL);
    C = V.getreg(Type::UL);
    D = V.getreg(Type::UL);
    Cap = V.getreg(Type::UL);
    F0 = V.getreg(Type::D);
    F1 = V.getreg(Type::D);
    if (!Cap.isValid() || !F1.isValid())
      fatalKind(CgErrKind::RegisterPressure,
                "dbt: host scratch registers unavailable");
    BlockLbl.reserve(R.Blocks.size());
    for (size_t I = 0; I < R.Blocks.size(); ++I)
      BlockLbl.push_back(V.genLabel());
    for (size_t I = 0; I < R.Blocks.size(); ++I)
      emitBlock(unsigned(I));
    return V.end();
  }

private:
  VCodeT<x64::X64Target> &V;
  const MipsRegion &R;
  uint32_t GuestBase;
  size_t GuestSize;

  Reg State, Base;       // incoming arguments, live throughout
  Reg A, B, C, D, Cap;   // int scratch; Cap survives across delay slots
  Reg F0, F1;            // fp scratch

  std::vector<Label> BlockLbl;

  /// Out-of-line interpreter-exit stubs requested by the current block.
  struct Stub {
    Label L;
    SimAddr FaultPC;       ///< unit the interpreter must re-execute
    unsigned InstrsBefore; ///< guest instructions retired before that unit
  };
  std::vector<Stub> Stubs;
  Label LimitLbl;
  unsigned BlockN = 0; ///< instructions the current block pre-charges

  // -- small emission helpers --------------------------------------------

  void loadG(Reg Rd, unsigned N) {
    // $0 is read from memory like any register: the dispatcher marshals
    // state exactly as the interpreter does (which writes R[Link]
    // unguarded), and execution-time writes below are guarded, so this
    // mirrors MipsSim bit for bit even for exotic calling conventions.
    V.loadImm(Type::U, Rd, State, gsRegOff(N));
  }
  void storeG(Reg Rs, unsigned N) {
    if (N != 0) // the interpreter's W(): writes to $0 are dropped
      V.storeImm(Type::U, Rs, State, gsRegOff(N));
  }
  void loadF(Reg Rd, unsigned F, bool Dbl) {
    V.loadImm(Dbl ? Type::D : Type::F, Rd, State, gsFprOff(F));
  }
  void storeF(Reg Rs, unsigned F, bool Dbl) {
    V.storeImm(Dbl ? Type::D : Type::F, Rs, State, gsFprOff(F));
  }

  /// cmp Ra32, Rb32 (sets flags; no register modified).
  void cmpRR(Reg Ra, Reg Rb) {
    x64::Asm As(V.buf());
    As.rr(false, 0x39, Rb.Num, Ra.Num);
  }
  /// cmp Ra32, imm32.
  void cmpRI(Reg Ra, uint32_t Imm) {
    x64::Asm As(V.buf());
    As.aluRI(false, 7, Ra.Num, Imm);
  }
  /// Rd32 = condition CC of the current flags (0/1), via the AT byte reg.
  void setCond(unsigned CC, Reg Rd) {
    x64::Asm As(V.buf());
    As.setcc(CC, x64::AT);
    As.rr0F(false, 0xB6, Rd.Num, x64::AT); // movzx Rd32, r10b
  }
  /// ucomis{s,d} Ra, Rb (FP compare; sets ZF/PF/CF).
  void ucomis(bool Dbl, Reg Ra, Reg Rb) {
    x64::Asm As(V.buf());
    As.sse(Dbl ? 0x66 : 0x00, false, 0x2E, Ra.Num, Rb.Num);
  }

  void interpExitAt(SimAddr PC) {
    V.retImm(Type::UL, int64_t(DbtInterpTag | (PC & DbtPcMask)));
  }

  /// Continue at guest PC \p T: chain directly when \p T is a translated
  /// leader in this region, otherwise hand the plain PC back.
  void exitTo(SimAddr T) {
    auto It = R.Leaders.find(T);
    if (It != R.Leaders.end())
      V.jmp(BlockLbl[It->second]);
    else
      V.retImm(Type::UL, int64_t(T & DbtPcMask));
  }

  /// Label of a fresh fault stub for the unit at \p FaultPC with
  /// \p InstrsBefore guest instructions retired before it.
  Label faultStub(SimAddr FaultPC, unsigned InstrsBefore) {
    Stub S;
    S.L = V.genLabel();
    S.FaultPC = FaultPC;
    S.InstrsBefore = InstrsBefore;
    Stubs.push_back(S);
    return S.L;
  }

  /// Effective address + access checks for a guest memory operand.
  /// Leaves EA in C (32-bit guest address) and the in-arena byte offset in
  /// D; branches to a fault stub when misaligned (mod \p Align) or out of
  /// [GuestBase, GuestBase+GuestSize-\p Bytes]. The interpreter re-executes
  /// the faulting unit and reproduces its exact diagnostic.
  void emitAccessCheck(unsigned Rs, int32_t Imm, unsigned Bytes,
                       unsigned Align, SimAddr FaultPC,
                       unsigned InstrsBefore) {
    loadG(C, Rs);
    if (Imm != 0)
      V.binopImm(BinOp::Add, Type::U, C, C, Imm); // 32-bit wrap, like uint32_t
    Label F = faultStub(FaultPC, InstrsBefore);
    if (Align > 1) {
      V.binopImm(BinOp::And, Type::U, D, C, int64_t(Align - 1));
      V.branchImm(Cond::Ne, Type::U, D, 0, F);
    }
    V.binopImm(BinOp::Sub, Type::U, D, C, int64_t(GuestBase));
    // Unsigned compare: a wrapped (EA < base) offset is huge and fails too.
    V.branchImm(Cond::Gt, Type::U, D, int64_t(GuestSize - Bytes), F);
  }

  // -- block emission ----------------------------------------------------

  void emitBlock(unsigned Idx) {
    const MipsBlock &Blk = R.Blocks[Idx];
    Stubs.clear();
    BlockN = Blk.instrCount();

    V.label(BlockLbl[Idx]);
    if (BlockN != 0) {
      // Pre-charge the whole block; exit *without storing* if that would
      // cross the budget, so the interpreter recounts from the block entry
      // and its limit fatal fires at the precise instruction.
      V.loadImm(Type::UL, A, State, GsInstrsOff);
      V.binopImm(BinOp::Add, Type::UL, A, A, int64_t(BlockN));
      V.loadImm(Type::UL, B, State, GsInstrLimitOff);
      LimitLbl = V.genLabel();
      V.branch(Cond::Gt, Type::UL, A, B, LimitLbl);
      V.storeImm(Type::UL, A, State, GsInstrsOff);
    }

    unsigned InstrIdx = 0;
    for (const MipsUnit &U : Blk.Units) {
      if (U.Kind == UnitKind::Cti)
        emitCti(U, InstrIdx);
      else
        emitPlain(U.Insn, U.PC, InstrIdx);
      InstrIdx += U.instrs();
    }

    if (Blk.Term == TermKind::InterpExit)
      interpExitAt(Blk.ExitPC);
    else if (Blk.Term == TermKind::Goto)
      exitTo(Blk.ExitPC);
    // TermKind::Cti: emitCti already emitted the dispatch.

    if (BlockN != 0) {
      V.label(LimitLbl);
      interpExitAt(Blk.Entry);
    }
    for (const Stub &S : Stubs) {
      V.label(S.L);
      // Uncharge the instructions this execution did not retire.
      if (BlockN != S.InstrsBefore) {
        V.loadImm(Type::UL, A, State, GsInstrsOff);
        V.binopImm(BinOp::Sub, Type::UL, A, A,
                   int64_t(BlockN - S.InstrsBefore));
        V.storeImm(Type::UL, A, State, GsInstrsOff);
      }
      interpExitAt(S.FaultPC);
    }
  }

  // -- control transfers -------------------------------------------------

  void emitCti(const MipsUnit &U, unsigned InstrIdx) {
    MipsFields F{U.Insn};
    SimAddr PC = U.PC;
    bool TakenIfZero = false; // bc1f: taken when Cap == 0
    bool IsIndirect = false;  // jr / jalr: Cap holds the target PC
    bool IsStatic = false;    // j / jal: static Target

    // Phase 1: capture everything the transfer needs *before* the delay
    // slot runs (the delay instruction may overwrite sources).
    switch (F.op()) {
    case 0x00:
      if (F.fn() == 0x08) { // jr
        loadG(Cap, F.rs());
      } else { // jalr: link first, then read rs (rd==rs jumps to pc+8,
               // exactly like the interpreter's W-then-read order)
        V.setInt(Type::U, A, uint32_t(PC + 8));
        storeG(A, F.rd());
        loadG(Cap, F.rs());
      }
      IsIndirect = true;
      break;
    case 0x01: // REGIMM: rt==0 is bltz, anything else bgez
      loadG(A, F.rs());
      cmpRI(A, 0);
      setCond(F.rt() == 0 ? x64::CC_L : x64::CC_GE, Cap);
      break;
    case 0x02: // j
      IsStatic = true;
      break;
    case 0x03: // jal
      V.setInt(Type::U, A, uint32_t(PC + 8));
      V.storeImm(Type::U, A, State, gsRegOff(31));
      IsStatic = true;
      break;
    case 0x04: // beq
    case 0x05: // bne
      loadG(A, F.rs());
      loadG(B, F.rt());
      cmpRR(A, B);
      setCond(F.op() == 0x04 ? x64::CC_E : x64::CC_NE, Cap);
      break;
    case 0x06: // blez
    case 0x07: // bgtz
      loadG(A, F.rs());
      cmpRI(A, 0);
      setCond(F.op() == 0x06 ? x64::CC_LE : x64::CC_G, Cap);
      break;
    case 0x11: // bc1f / bc1t
      V.loadImm(Type::U, Cap, State, GsFpCondOff);
      TakenIfZero = (F.rt() & 1) == 0;
      break;
    default:
      fatalKind(CgErrKind::Internal, "dbt: non-CTI in CTI unit");
    }

    // Phase 2: the delay-slot instruction (never itself a CTI; uses only
    // A/B/C/D/F0/F1, so Cap survives). A fault here re-enters at the CTI,
    // which is idempotent: the link write repeats the same value and the
    // condition re-evaluates from unmodified state.
    emitPlain(U.Delay, PC, InstrIdx);

    // Phase 3: dispatch.
    if (IsIndirect) {
      V.ret(Type::UL, Cap);
      return;
    }
    if (IsStatic) {
      SimAddr T = (PC & ~SimAddr(0x0fffffff)) | SimAddr(F.jindex() << 2);
      exitTo(T);
      return;
    }
    SimAddr Taken = PC + 4 + (SimAddr(int64_t(F.imm())) << 2);
    Label Tk = V.genLabel();
    if (TakenIfZero)
      V.branchImm(Cond::Eq, Type::U, Cap, 0, Tk);
    else
      V.branchImm(Cond::Ne, Type::U, Cap, 0, Tk);
    exitTo(PC + 8);
    V.label(Tk);
    exitTo(Taken);
  }

  // -- straight-line instructions ----------------------------------------

  /// Emits one non-CTI instruction. \p FaultPC / \p InstrIdx parameterize
  /// the fault stubs: for a delay-slot instruction they name the CTI unit,
  /// not the slot itself.
  void emitPlain(uint32_t I, SimAddr FaultPC, unsigned InstrIdx) {
    MipsFields F{I};
    switch (F.op()) {
    case 0x00:
      emitSpecial(F);
      return;
    case 0x08: // addi (the interpreter ignores the overflow trap)
    case 0x09: // addiu
      loadG(A, F.rs());
      V.binopImm(BinOp::Add, Type::U, A, A, F.imm());
      storeG(A, F.rt());
      return;
    case 0x0a: // slti
    case 0x0b: // sltiu
      loadG(A, F.rs());
      cmpRI(A, uint32_t(F.imm())); // full 32-bit immediate compare
      setCond(F.op() == 0x0a ? x64::CC_L : x64::CC_B, A);
      storeG(A, F.rt());
      return;
    case 0x0c: // andi
    case 0x0d: // ori
    case 0x0e: // xori
      loadG(A, F.rs());
      V.binopImm(F.op() == 0x0c   ? BinOp::And
                 : F.op() == 0x0d ? BinOp::Or
                                  : BinOp::Xor,
                 Type::U, A, A, int64_t(F.uimm()));
      storeG(A, F.rt());
      return;
    case 0x0f: // lui
      V.setInt(Type::U, A, F.uimm() << 16);
      storeG(A, F.rt());
      return;
    case 0x11:
      emitCop1(F);
      return;
    case 0x20: // lb
    case 0x21: // lh
    case 0x23: // lw
    case 0x24: // lbu
    case 0x25: // lhu
    case 0x28: // sb
    case 0x29: // sh
    case 0x2b: // sw
    case 0x31: // lwc1
    case 0x39: // swc1
    case 0x35: // ldc1
    case 0x3d: // sdc1
      emitMem(F, FaultPC, InstrIdx);
      return;
    default:
      fatalKind(CgErrKind::Internal, "dbt: untranslatable opcode 0x%x",
                F.op());
    }
  }

  void emitSpecial(MipsFields F) {
    unsigned Rs = F.rs(), Rt = F.rt(), Rd = F.rd(), Sh = F.sh();
    switch (F.fn()) {
    case 0x00: // sll
    case 0x02: // srl
    case 0x03: // sra
      loadG(A, Rt);
      if (Sh != 0)
        V.binopImm(F.fn() == 0x00 ? BinOp::Lsh : BinOp::Rsh,
                   F.fn() == 0x03 ? Type::I : Type::U, A, A, Sh);
      storeG(A, Rd);
      return;
    case 0x04: // sllv
    case 0x06: // srlv
    case 0x07: // srav (the host masks the count to 5 bits, like &31)
      loadG(A, Rt);
      loadG(B, Rs);
      V.binop(F.fn() == 0x04 ? BinOp::Lsh : BinOp::Rsh,
              F.fn() == 0x07 ? Type::I : Type::U, A, A, B);
      storeG(A, Rd);
      return;
    case 0x08: // jr
    case 0x09: // jalr — CTIs; never reach emitSpecial
      fatalKind(CgErrKind::Internal, "dbt: CTI in plain unit");
    case 0x10: // mfhi
      V.loadImm(Type::U, A, State, GsHiOff);
      storeG(A, Rd);
      return;
    case 0x11: // mthi
      loadG(A, Rs);
      V.storeImm(Type::U, A, State, GsHiOff);
      return;
    case 0x12: // mflo
      V.loadImm(Type::U, A, State, GsLoOff);
      storeG(A, Rd);
      return;
    case 0x13: // mtlo
      loadG(A, Rs);
      V.storeImm(Type::U, A, State, GsLoOff);
      return;
    case 0x18: // mult
    case 0x19: // multu
      loadG(A, Rs);
      loadG(B, Rt);
      if (F.fn() == 0x18) { // widen signed: (int64)int32 * (int64)int32
        V.cvt(Type::I, Type::L, A, A);
        V.cvt(Type::I, Type::L, B, B);
      }
      V.binop(BinOp::Mul, Type::UL, A, A, B);
      V.storeImm(Type::U, A, State, GsLoOff);
      V.binopImm(BinOp::Rsh, Type::UL, A, A, 32);
      V.storeImm(Type::U, A, State, GsHiOff);
      return;
    case 0x1a: // div
    case 0x1b: // divu
    {
      bool Signed = F.fn() == 0x1a;
      loadG(A, Rs);
      loadG(B, Rt);
      Label Ok = V.genLabel(), End = V.genLabel();
      V.branchImm(Cond::Ne, Type::U, B, 0, Ok);
      // rt == 0: LO = 0, HI = rs (the interpreter's explicit convention).
      V.storeImm(Type::U, V.zeroReg(), State, GsLoOff);
      V.storeImm(Type::U, A, State, GsHiOff);
      V.jmp(End);
      V.label(Ok);
      // 64-bit host division of the widened operands: INT_MIN / -1 yields
      // 2^31 whose low word is the interpreter's 0x80000000, remainder 0.
      V.binop(BinOp::Div, Signed ? Type::I : Type::U, C, A, B);
      V.binop(BinOp::Mod, Signed ? Type::I : Type::U, D, A, B);
      V.storeImm(Type::U, C, State, GsLoOff);
      V.storeImm(Type::U, D, State, GsHiOff);
      V.label(End);
      return;
    }
    case 0x20: // add (no trap in the interpreter)
    case 0x21: // addu
      loadG(A, Rs);
      loadG(B, Rt);
      V.binop(BinOp::Add, Type::U, A, A, B);
      storeG(A, Rd);
      return;
    case 0x22: // sub
    case 0x23: // subu
      loadG(A, Rs);
      loadG(B, Rt);
      V.binop(BinOp::Sub, Type::U, A, A, B);
      storeG(A, Rd);
      return;
    case 0x24: // and
    case 0x25: // or
    case 0x26: // xor
      loadG(A, Rs);
      loadG(B, Rt);
      V.binop(F.fn() == 0x24   ? BinOp::And
              : F.fn() == 0x25 ? BinOp::Or
                               : BinOp::Xor,
              Type::U, A, A, B);
      storeG(A, Rd);
      return;
    case 0x27: // nor
      loadG(A, Rs);
      loadG(B, Rt);
      V.binop(BinOp::Or, Type::U, A, A, B);
      V.unop(UnOp::Com, Type::U, A, A);
      storeG(A, Rd);
      return;
    case 0x2a: // slt
    case 0x2b: // sltu
      loadG(A, Rs);
      loadG(B, Rt);
      cmpRR(A, B);
      setCond(F.fn() == 0x2a ? x64::CC_L : x64::CC_B, A);
      storeG(A, Rd);
      return;
    default:
      fatalKind(CgErrKind::Internal, "dbt: untranslatable SPECIAL 0x%x",
                F.fn());
    }
  }

  void emitCop1(MipsFields F) {
    unsigned Sub = F.rs();
    if (Sub == 0) { // mfc1: W(rt, FPR[rd])
      V.loadImm(Type::U, A, State, gsFprOff(F.rd()));
      storeG(A, F.rt());
      return;
    }
    if (Sub == 4) { // mtc1: FPR[rd] = R[rt] (unguarded FPR write)
      loadG(A, F.rt());
      V.storeImm(Type::U, A, State, gsFprOff(F.rd()));
      return;
    }
    // Arithmetic. The interpreter: fmt==17 is double, everything else
    // single (bc1 was classified as a CTI and cannot reach here).
    bool Dbl = Sub == 17;
    unsigned Ft = F.rt(), Fs = F.rd(), Fd = F.sh();
    Type Ty = Dbl ? Type::D : Type::F;
    switch (F.fn()) {
    case 0x00: // add.fmt
    case 0x01: // sub.fmt
    case 0x02: // mul.fmt
    case 0x03: // div.fmt
      loadF(F0, Fs, Dbl);
      loadF(F1, Ft, Dbl);
      V.binop(F.fn() == 0x00   ? BinOp::Add
              : F.fn() == 0x01 ? BinOp::Sub
              : F.fn() == 0x02 ? BinOp::Mul
                               : BinOp::Div,
              Ty, F0, F0, F1);
      storeF(F0, Fd, Dbl);
      return;
    case 0x04: { // sqrt.fmt
      loadF(F0, Fs, Dbl);
      x64::Asm As(V.buf());
      As.sse(Dbl ? 0xF2 : 0xF3, false, 0x51, F0.Num, F0.Num);
      storeF(F0, Fd, Dbl);
      return;
    }
    case 0x05: // abs.fmt: clear the sign bit (bitwise, NaN-preserving)
      if (Dbl) {
        V.loadImm(Type::UL, A, State, gsFprOff(Fs));
        V.binopImm(BinOp::And, Type::UL, A, A, 0x7fffffffffffffffLL);
        V.storeImm(Type::UL, A, State, gsFprOff(Fd));
      } else {
        V.loadImm(Type::U, A, State, gsFprOff(Fs));
        V.binopImm(BinOp::And, Type::U, A, A, 0x7fffffffLL);
        V.storeImm(Type::U, A, State, gsFprOff(Fd));
      }
      return;
    case 0x06: // mov.fmt: raw bit copy
      if (Dbl) {
        V.loadImm(Type::UL, A, State, gsFprOff(Fs));
        V.storeImm(Type::UL, A, State, gsFprOff(Fd));
      } else {
        V.loadImm(Type::U, A, State, gsFprOff(Fs));
        V.storeImm(Type::U, A, State, gsFprOff(Fd));
      }
      return;
    case 0x07: // neg.fmt: flip the sign bit
      if (Dbl) {
        V.loadImm(Type::UL, A, State, gsFprOff(Fs));
        V.binopImm(BinOp::Xor, Type::UL, A, A, INT64_MIN);
        V.storeImm(Type::UL, A, State, gsFprOff(Fd));
      } else {
        V.loadImm(Type::U, A, State, gsFprOff(Fs));
        V.binopImm(BinOp::Xor, Type::U, A, A, int64_t(0x80000000LL));
        V.storeImm(Type::U, A, State, gsFprOff(Fd));
      }
      return;
    case 0x0d: // trunc.w.fmt
    case 0x24: // cvt.w.fmt (the interpreter truncates for both)
    {
      loadF(F0, Fs, Dbl);
      // 32-bit cvttss2si / cvttsd2si: the interpreter computes an int32_t
      // cast (float sources widen to double exactly, so the single-
      // precision instruction is equivalent), 0x80000000 when out of range.
      x64::Asm As(V.buf());
      As.sse(Dbl ? 0xF2 : 0xF3, false, 0x2C, A.Num, F0.Num);
      V.storeImm(Type::U, A, State, gsFprOff(Fd));
      return;
    }
    case 0x20: // cvt.s.fmt: from double or from word
      if (Sub == 20) { // cvt.s.w
        V.loadImm(Type::U, A, State, gsFprOff(Fs));
        V.cvt(Type::I, Type::F, F0, A);
      } else { // cvt.s.d
        loadF(F0, Fs, true);
        V.cvt(Type::D, Type::F, F0, F0);
      }
      storeF(F0, Fd, false);
      return;
    case 0x21: // cvt.d.fmt: from single or from word
      if (Sub == 20) { // cvt.d.w
        V.loadImm(Type::U, A, State, gsFprOff(Fs));
        V.cvt(Type::I, Type::D, F0, A);
      } else { // cvt.d.s
        loadF(F0, Fs, false);
        V.cvt(Type::F, Type::D, F0, F0);
      }
      storeF(F0, Fd, true);
      return;
    case 0x32: // c.eq.fmt: true iff ZF && !PF (NaN compares false)
      loadF(F0, Fs, Dbl);
      loadF(F1, Ft, Dbl);
      ucomis(Dbl, F0, F1);
      setCond(x64::CC_E, A);
      setCond(0x0B /* NP */, B);
      {
        x64::Asm As(V.buf());
        As.rr(false, 0x21, B.Num, A.Num); // and A32, B32
      }
      V.storeImm(Type::U, A, State, GsFpCondOff);
      return;
    case 0x3c: // c.lt.fmt: a < b  ==  ucomis(b, a) above (NaN -> false)
    case 0x3e: // c.le.fmt
      loadF(F0, Fs, Dbl);
      loadF(F1, Ft, Dbl);
      ucomis(Dbl, F1, F0);
      setCond(F.fn() == 0x3c ? x64::CC_A : x64::CC_AE, A);
      V.storeImm(Type::U, A, State, GsFpCondOff);
      return;
    default:
      fatalKind(CgErrKind::Internal, "dbt: untranslatable COP1 0x%x", F.fn());
    }
  }

  void emitMem(MipsFields F, SimAddr FaultPC, unsigned InstrIdx) {
    unsigned Rs = F.rs(), Rt = F.rt();
    int32_t Imm = F.imm();
    switch (F.op()) {
    case 0x20: // lb
    case 0x21: // lh
    case 0x23: // lw
    case 0x24: // lbu
    case 0x25: // lhu
    {
      Type Ty = F.op() == 0x20   ? Type::C
                : F.op() == 0x21 ? Type::S
                : F.op() == 0x23 ? Type::U
                : F.op() == 0x24 ? Type::UC
                                 : Type::US;
      unsigned Bytes = F.op() == 0x23 ? 4 : (F.op() == 0x21 || F.op() == 0x25) ? 2 : 1;
      emitAccessCheck(Rs, Imm, Bytes, Bytes, FaultPC, InstrIdx);
      V.load(Ty, A, Base, D); // sub-word loads extend into a 32-bit value
      storeG(A, Rt);
      return;
    }
    case 0x28: // sb
    case 0x29: // sh
    case 0x2b: // sw
    {
      Type Ty = F.op() == 0x28 ? Type::UC : F.op() == 0x29 ? Type::US : Type::U;
      unsigned Bytes = F.op() == 0x2b ? 4 : F.op() == 0x29 ? 2 : 1;
      emitAccessCheck(Rs, Imm, Bytes, Bytes, FaultPC, InstrIdx);
      loadG(A, Rt);
      V.store(Ty, A, Base, D);
      return;
    }
    case 0x31: // lwc1
      emitAccessCheck(Rs, Imm, 4, 4, FaultPC, InstrIdx);
      V.load(Type::U, A, Base, D);
      V.storeImm(Type::U, A, State, gsFprOff(Rt));
      return;
    case 0x39: // swc1
      emitAccessCheck(Rs, Imm, 4, 4, FaultPC, InstrIdx);
      V.loadImm(Type::U, A, State, gsFprOff(Rt));
      V.store(Type::U, A, Base, D);
      return;
    case 0x35: // ldc1: two interpreter word accesses, so alignment is 4;
               // both words checked before either moves (8-byte bounds)
      emitAccessCheck(Rs, Imm, 8, 4, FaultPC, InstrIdx);
      V.load(Type::UL, A, Base, D); // little-endian == FPR[rt] | FPR[rt+1]<<32
      V.storeImm(Type::UL, A, State, gsFprOff(Rt));
      return;
    case 0x3d: // sdc1
      emitAccessCheck(Rs, Imm, 8, 4, FaultPC, InstrIdx);
      V.loadImm(Type::UL, A, State, gsFprOff(Rt));
      V.store(Type::UL, A, Base, D);
      return;
    default:
      fatalKind(CgErrKind::Internal, "dbt: bad memory opcode 0x%x", F.op());
    }
  }
};

} // namespace

CodePtr vcode::dbt::translateRegion(VCodeT<x64::X64Target> &V,
                                    const MipsRegion &R, CodeMem CM,
                                    const sim::Memory &GuestMem) {
  RegionTranslator T(V, R, GuestMem);
  return T.run(CM);
}
