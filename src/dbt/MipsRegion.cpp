//===- dbt/MipsRegion.cpp - Guest basic-block discovery ---------------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "dbt/MipsRegion.h"
#include <deque>

using namespace vcode;
using namespace vcode::dbt;

bool vcode::dbt::isMipsCti(uint32_t I) {
  MipsFields F{I};
  switch (F.op()) {
  case 0x00: // SPECIAL: jr / jalr
    return F.fn() == 0x08 || F.fn() == 0x09;
  case 0x01: // REGIMM: bltz / bgez
  case 0x02: // j
  case 0x03: // jal
  case 0x04: // beq
  case 0x05: // bne
  case 0x06: // blez
  case 0x07: // bgtz
    return true;
  case 0x11: // COP1: bc1f / bc1t
    return F.rs() == 8;
  default:
    return false;
  }
}

bool vcode::dbt::isMipsTranslatable(uint32_t I) {
  MipsFields F{I};
  switch (F.op()) {
  case 0x00: // SPECIAL
    switch (F.fn()) {
    case 0x00: case 0x02: case 0x03: // sll / srl / sra
    case 0x04: case 0x06: case 0x07: // sllv / srlv / srav
    case 0x08: case 0x09:            // jr / jalr
    case 0x10: case 0x11: case 0x12: case 0x13: // mfhi/mthi/mflo/mtlo
    case 0x18: case 0x19: case 0x1a: case 0x1b: // mult/multu/div/divu
    case 0x20: case 0x21: case 0x22: case 0x23: // add/addu/sub/subu
    case 0x24: case 0x25: case 0x26: case 0x27: // and/or/xor/nor
    case 0x2a: case 0x2b:            // slt / sltu
      return true;
    default:
      return false; // interpreter fatals: route through it
    }
  case 0x01: // REGIMM (any rt: rt==0 is bltz, everything else bgez)
  case 0x02: case 0x03: // j / jal
  case 0x04: case 0x05: case 0x06: case 0x07: // beq/bne/blez/bgtz
  case 0x08: case 0x09: // addi / addiu
  case 0x0a: case 0x0b: // slti / sltiu
  case 0x0c: case 0x0d: case 0x0e: // andi / ori / xori
  case 0x0f:            // lui
  case 0x20: case 0x21: case 0x23: case 0x24: case 0x25: // loads
  case 0x28: case 0x29: case 0x2b: // sb / sh / sw
  case 0x31: case 0x39: // lwc1 / swc1
    return true;
  case 0x35: case 0x3d: // ldc1 / sdc1: FPR[rt+1] must exist
    return F.rt() != 31;
  case 0x11: { // COP1
    unsigned Sub = F.rs();
    if (Sub == 0 || Sub == 4 || Sub == 8) // mfc1 / mtc1 / bc1
      return true;
    // Arithmetic: the interpreter treats fmt==17 as double and anything
    // else as single. Double operands read FPR[f] and FPR[f+1], so f==31
    // goes to the interpreter (whose own bounds behavior applies).
    bool Dbl = Sub == 17;
    unsigned Ft = F.rt(), Fs = F.rd(), Fd = F.sh();
    auto BadD = [&](unsigned R) { return Dbl && R == 31; };
    switch (F.fn()) {
    case 0x00: case 0x01: case 0x02: case 0x03: // add/sub/mul/div.fmt
      return !BadD(Ft) && !BadD(Fs) && !BadD(Fd);
    case 0x04: case 0x05: case 0x06: case 0x07: // sqrt/abs/mov/neg.fmt
      return !BadD(Fs) && !BadD(Fd);
    case 0x0d: case 0x24: // trunc.w.fmt / cvt.w.fmt (result is one word)
      return !BadD(Fs);
    case 0x20: // cvt.s.fmt: from double (17) or word (20) only
      return (Sub == 17 && Fs != 31) || Sub == 20;
    case 0x21: // cvt.d.fmt: from single (16) or word (20) only
      return (Sub == 16 || Sub == 20) && Fd != 31;
    case 0x32: case 0x3c: case 0x3e: // c.eq / c.lt / c.le
      return !BadD(Fs) && !BadD(Ft);
    default:
      return false;
    }
  }
  default:
    return false;
  }
}

namespace {

/// Static successors of a CTI at \p PC (fall-through and/or taken target).
/// Indirect transfers contribute none.
void staticSuccessors(SimAddr PC, uint32_t I, std::deque<SimAddr> &Out) {
  MipsFields F{I};
  switch (F.op()) {
  case 0x00: // jr / jalr: indirect
    return;
  case 0x02: // j
    Out.push_back((PC & ~SimAddr(0x0fffffff)) | SimAddr(F.jindex() << 2));
    return;
  case 0x03: // jal: static target; the return lands wherever $ra points
    Out.push_back((PC & ~SimAddr(0x0fffffff)) | SimAddr(F.jindex() << 2));
    return;
  default: // conditional branches: taken target + fall-through
    Out.push_back(PC + 4 + (SimAddr(int64_t(F.imm())) << 2));
    Out.push_back(PC + 8);
    return;
  }
}

} // namespace

MipsRegion vcode::dbt::discoverRegion(const sim::Memory &GuestMem,
                                      SimAddr Entry) {
  MipsRegion R;
  R.Entry = Entry;

  std::deque<SimAddr> Work;
  Work.push_back(Entry);

  while (!Work.empty() && R.Blocks.size() < MaxRegionBlocks &&
         R.TotalWords < MaxRegionWords) {
    SimAddr Start = Work.front();
    Work.pop_front();
    if (R.isLeader(Start))
      continue;

    R.Leaders.emplace(Start, unsigned(R.Blocks.size()));
    R.Blocks.emplace_back();
    MipsBlock &B = R.Blocks.back();
    B.Entry = Start;

    SimAddr PC = Start;
    for (;;) {
      // Falling into another block's entry: chain instead of duplicating.
      if (PC != Start && R.isLeader(PC)) {
        B.Term = TermKind::Goto;
        B.ExitPC = PC;
        break;
      }
      if (R.TotalWords >= MaxRegionWords) {
        B.Term = TermKind::Goto; // cap: hand the plain PC back
        B.ExitPC = PC;
        break;
      }
      if ((PC & 3) != 0 || !GuestMem.contains(PC, 4)) {
        // The interpreter's fetch will fault here with its own message.
        B.Term = TermKind::InterpExit;
        B.ExitPC = PC;
        break;
      }
      uint32_t I = GuestMem.read<uint32_t>(PC);
      if (!isMipsTranslatable(I)) {
        B.Term = TermKind::InterpExit;
        B.ExitPC = PC;
        break;
      }
      if (isMipsCti(I)) {
        // The unit needs its delay slot. A missing, untranslatable, or
        // CTI delay word sends the whole unit to the interpreter, which
        // owns every delay-slot edge case (chained CTIs included).
        if (!GuestMem.contains(PC + 4, 4)) {
          B.Term = TermKind::InterpExit;
          B.ExitPC = PC;
          break;
        }
        uint32_t D = GuestMem.read<uint32_t>(PC + 4);
        if (isMipsCti(D) || !isMipsTranslatable(D)) {
          B.Term = TermKind::InterpExit;
          B.ExitPC = PC;
          break;
        }
        MipsUnit U;
        U.PC = PC;
        U.Insn = I;
        U.Delay = D;
        U.Kind = UnitKind::Cti;
        B.Units.push_back(U);
        R.TotalWords += 2;
        B.Term = TermKind::Cti;
        staticSuccessors(PC, I, Work);
        break;
      }
      MipsUnit U;
      U.PC = PC;
      U.Insn = I;
      B.Units.push_back(U);
      R.TotalWords += 1;
      PC += 4;
    }
  }

  // Blocks queued but never built stay mere exit targets: any reference
  // to them from a built block falls back to a plain-PC return and the
  // dispatcher translates them as their own region entries.
  return R;
}
