//===- dbt/MipsRegion.h - Guest basic-block discovery -----------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decode and basic-block discovery over simulated MIPS code. A Region is
/// the unit of translation: the set of basic blocks reachable from one
/// entry PC through *static* control transfers (conditional branches, j,
/// jal), bounded by discovery caps. Indirect transfers (jr, jalr) and
/// anything the translator cannot handle end a block; the translated code
/// returns the next guest PC (possibly tagged "run one unit through the
/// interpreter") and the dispatcher takes it from there.
///
/// The decode mirrors sim::MipsSim exactly: an instruction is classified
/// translatable if and only if the interpreter executes it without a
/// fatal; everything else becomes an interpreter-exit unit, so unknown
/// encodings produce the interpreter's own diagnostics, not new ones.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_DBT_MIPSREGION_H
#define VCODE_DBT_MIPSREGION_H

#include "core/CodeBuffer.h"
#include "sim/Memory.h"
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace vcode {
namespace dbt {

/// Field accessors for a MIPS instruction word (interpreter layout).
struct MipsFields {
  uint32_t I;
  unsigned op() const { return I >> 26; }
  unsigned rs() const { return (I >> 21) & 31; }
  unsigned rt() const { return (I >> 16) & 31; }
  unsigned rd() const { return (I >> 11) & 31; }
  unsigned sh() const { return (I >> 6) & 31; }
  unsigned fn() const { return I & 63; }
  int32_t imm() const { return int32_t(int16_t(I & 0xffff)); }
  uint32_t uimm() const { return I & 0xffff; }
  uint32_t jindex() const { return I & 0x03ffffff; }
};

/// True for instructions that architecturally start a delay-slot chain:
/// jr/jalr, REGIMM branches, j/jal, beq/bne/blez/bgtz, and bc1f/bc1t.
bool isMipsCti(uint32_t I);

/// True when the translator emits native code for this instruction. A
/// false return is not an error: the unit is routed to the interpreter,
/// which either executes it (semantics we chose not to translate) or
/// reports its own unknown-instruction fatal.
bool isMipsTranslatable(uint32_t I);

/// How one translation unit ends.
enum class UnitKind : uint8_t {
  Plain, ///< one straight-line instruction
  Cti,   ///< control transfer + its delay-slot instruction (two words)
};

/// One translation unit: an instruction, plus its delay-slot word when it
/// is a control transfer.
struct MipsUnit {
  SimAddr PC = 0;
  uint32_t Insn = 0;
  uint32_t Delay = 0; ///< delay-slot word (Cti units only)
  UnitKind Kind = UnitKind::Plain;
  /// Guest instructions this unit retires when executed natively.
  unsigned instrs() const { return Kind == UnitKind::Cti ? 2 : 1; }
};

/// Why a block stopped.
enum class TermKind : uint8_t {
  Cti,        ///< last unit is a control transfer; it picks the successor
  InterpExit, ///< next instruction is untranslatable: exit tagged at ExitPC
  Goto,       ///< fell into another leader / hit a cap: continue at ExitPC
};

/// A straight-line run of units with one terminator.
struct MipsBlock {
  SimAddr Entry = 0;
  std::vector<MipsUnit> Units; ///< excludes the InterpExit pseudo-unit
  TermKind Term = TermKind::InterpExit;
  SimAddr ExitPC = 0; ///< InterpExit/Goto continuation PC
  /// Instructions retired by one full native execution of this block.
  unsigned instrCount() const {
    unsigned N = 0;
    for (const MipsUnit &U : Units)
      N += U.instrs();
    return N;
  }
};

/// A multi-block translation region rooted at Entry.
struct MipsRegion {
  SimAddr Entry = 0;
  std::vector<MipsBlock> Blocks; ///< Blocks[0].Entry == Entry
  std::unordered_map<SimAddr, unsigned> Leaders; ///< block entry -> index
  unsigned TotalWords = 0; ///< decoded instruction words (code sizing)

  bool isLeader(SimAddr PC) const { return Leaders.count(PC) != 0; }
};

/// Discovery caps: regions stay small enough that one translation never
/// monopolizes the code cache, and the BFS terminates on any input.
inline constexpr unsigned MaxRegionWords = 2048;
inline constexpr unsigned MaxRegionBlocks = 128;

/// Discovers the region rooted at \p Entry by breadth-first search over
/// static successors. Never faults: addresses outside \p GuestMem simply
/// terminate their block with an interpreter exit (the interpreter then
/// reproduces the fetch fault with its own diagnostic).
MipsRegion discoverRegion(const sim::Memory &GuestMem, SimAddr Entry);

} // namespace dbt
} // namespace vcode

#endif // VCODE_DBT_MIPSREGION_H
