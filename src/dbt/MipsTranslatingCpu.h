//===- dbt/MipsTranslatingCpu.h - Drop-in translating MIPS CPU --*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sim::Cpu that executes simulated MIPS code by dynamic binary
/// translation: guest basic blocks are translated to host x86-64 through
/// VCODE's own backend, cached per (guest PC, guest code generation), and
/// chained; anything the translator does not handle — faults, delay-slot
/// edge cases, unsupported opcodes, the instruction budget — is executed
/// one unit at a time by an embedded reference MipsSim from precise
/// spilled state. Architectural results are bit-identical to MipsSim by
/// construction; timing statistics are not modeled (Instrs is exact,
/// Cycles and cache counters read zero).
///
/// Drop-in: DPF engines, tcc, ash pipelines, and benches that take a
/// sim::Cpu run unchanged. On hosts where translation is unavailable the
/// embedded interpreter transparently runs the whole call.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_DBT_MIPSTRANSLATINGCPU_H
#define VCODE_DBT_MIPSTRANSLATINGCPU_H

#include "dbt/GuestState.h"
#include "dbt/TranslationEngine.h"
#include "sim/MipsSim.h"
#include <memory>
#include <unordered_map>

namespace vcode {
namespace dbt {

/// Binary-translating MIPS CPU over a simulated memory arena.
class MipsTranslatingCpu final : public sim::Cpu {
public:
  /// Creates a CPU with its own TranslationEngine.
  explicit MipsTranslatingCpu(sim::Memory &M,
                              sim::MachineConfig Cfg = sim::dec5000Config());
  /// Creates a CPU over a shared engine (several CPUs, one translation
  /// cache — the multi-threaded dispatch configuration).
  MipsTranslatingCpu(sim::Memory &M, std::shared_ptr<TranslationEngine> Eng,
                     sim::MachineConfig Cfg = sim::dec5000Config());
  ~MipsTranslatingCpu();

  sim::TypedValue callWithConv(const CallConv &CC, SimAddr Entry,
                               const std::vector<sim::TypedValue> &Args,
                               Type RetTy) override {
    return callWithConvSpan(CC, Entry, Args.data(), Args.size(), RetTy);
  }
  /// The hot path: register-only argument lists marshal straight into the
  /// guest state block with no allocation (a million-call dispatch loop
  /// lives or dies on this; see the Table 3 bench's --target=dbt section).
  sim::TypedValue callWithConvSpan(const CallConv &CC, SimAddr Entry,
                                   const sim::TypedValue *Args,
                                   size_t NumArgs, Type RetTy) override;
  const CallConv &defaultConv() const override;
  void flushCaches() override { Interp.flushCaches(); }
  void warmData(SimAddr A, size_t Len) override { Interp.warmData(A, Len); }
  const sim::RunStats &lastStats() const override { return Stats; }
  void setInstrLimit(uint64_t N) override {
    InstrLimit = N;
    Interp.setInstrLimit(N);
  }
  const sim::MachineConfig &config() const override { return Interp.config(); }

  /// True when calls actually run translated (false: pure interpretation).
  bool translating() const { return Engine->available(); }
  /// The shared translation service (tests / telemetry).
  TranslationEngine &engine() { return *Engine; }
  /// Spilled architectural state after the last translated call (tests:
  /// differential comparison against the interpreter's register file).
  const GuestState &guestState() const { return GS; }

private:
  /// Executes one instruction unit at \p At through the interpreter from
  /// the spilled GuestState and folds the result back. Returns the next
  /// guest PC.
  SimAddr interpUnit(SimAddr At);

  sim::Memory &Mem;
  sim::MipsSim Interp; ///< reference fallback; also the delegate path
  std::shared_ptr<TranslationEngine> Engine;
  GuestState GS;
  sim::RunStats Stats;
  uint64_t InstrLimit = 2'000'000'000;

  /// Per-CPU dispatch index: guest PC -> pinned translation. Pins keep
  /// regions alive across cache eviction; the map is rebuilt whenever the
  /// guest publishes new code (generation bump).
  struct CachedFn {
    TranslatedFn Fn;
    CodeCache::Handle H; ///< execution counting
    std::shared_ptr<const CodeCache::Version> Pin;
    /// Executions not yet folded into the cache entry's shared counter
    /// (one plain increment per dispatch; see flushExecCounts).
    uint64_t PendingExecs = 0;
  };
  std::unordered_map<SimAddr, CachedFn> Local;
  uint64_t LocalGen = ~uint64_t(0);
  /// Direct-mapped front of Local (valid while LocalGen holds): a
  /// steady-state call re-dispatches the same few guest blocks every
  /// time, and a one-entry MRU thrashes as soon as a call chains through
  /// two of them, so hot dispatch indexes this little table instead of
  /// hashing. CachedFn pointers are stable (node-based map); the table is
  /// cleared whenever Local is.
  struct TableEnt {
    SimAddr PC = ~SimAddr(0);
    CachedFn *CF = nullptr;
  };
  static constexpr size_t DispatchSlots = 64; ///< power of two
  TableEnt Dispatch[DispatchSlots];
  uint8_t *HostBase = nullptr; ///< cached hostPtr(base, size); arena is fixed
  bool Avail = false;          ///< Engine->available(), fixed at construction
  const CallConv *DefCC = nullptr; ///< cached MIPS default convention

  /// Per-call registry atomics would dominate a nanosecond-scale dispatch
  /// loop, so per-call telemetry (dbt.calls / dbt.dispatches / sim.calls /
  /// sim.instrs) accumulates in these plain counters and is flushed to the
  /// process-wide registry every TelemetryFlushPeriod calls and at
  /// destruction — before the at-exit report runs, so reports stay exact.
  uint64_t PendCalls = 0, PendDispatches = 0, PendInstrs = 0;
  static constexpr uint64_t TelemetryFlushPeriod = 4096;
  uint64_t PfClock = 0; ///< cumulative dispatch clock for the sampler

  /// Folds every CachedFn's PendingExecs into its cache entry.
  void flushExecCounts();
  /// Flushes pending execution counts and per-call counters.
  void flushTelemetry();
};

} // namespace dbt
} // namespace vcode

#endif // VCODE_DBT_MIPSTRANSLATINGCPU_H
