//===- dbt/MipsTranslatingCpu.cpp - Drop-in translating MIPS CPU -----------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "dbt/MipsTranslatingCpu.h"
#include "profile/Profiler.h"
#include "support/Telemetry.h"
#include <cstring>

using namespace vcode;
using namespace vcode::dbt;
using sim::RunStats;
using sim::TypedValue;

MipsTranslatingCpu::MipsTranslatingCpu(sim::Memory &M, sim::MachineConfig Cfg)
    : MipsTranslatingCpu(M, std::make_shared<TranslationEngine>(M), Cfg) {}

MipsTranslatingCpu::MipsTranslatingCpu(sim::Memory &M,
                                       std::shared_ptr<TranslationEngine> Eng,
                                       sim::MachineConfig Cfg)
    : Mem(M), Interp(M, Cfg), Engine(std::move(Eng)) {
  Interp.setInstrLimit(InstrLimit);
  Avail = Engine->available();
  DefCC = &Interp.defaultConv();
}

MipsTranslatingCpu::~MipsTranslatingCpu() { flushTelemetry(); }

void MipsTranslatingCpu::flushExecCounts() {
  for (auto &KV : Local) {
    if (KV.second.PendingExecs) {
      KV.second.H.noteExecutions(KV.second.PendingExecs);
      KV.second.PendingExecs = 0;
    }
  }
}

void MipsTranslatingCpu::flushTelemetry() {
  flushExecCounts();
  if (!PendCalls && !PendDispatches)
    return;
  VCODE_TM_COUNT("dbt.calls", PendCalls);
  VCODE_TM_COUNT("dbt.dispatches", PendDispatches);
  VCODE_TM_COUNT("sim.calls", PendCalls);
  VCODE_TM_COUNT("sim.instrs", PendInstrs);
  PendCalls = PendDispatches = PendInstrs = 0;
}

const CallConv &MipsTranslatingCpu::defaultConv() const {
  return *DefCC; // cached: resolved once at construction
}

SimAddr MipsTranslatingCpu::interpUnit(SimAddr At) {
  VCODE_TM_COUNT("dbt.fallback_units", 1);
  sim::MipsSim::ArchState S;
  std::memcpy(S.R, GS.R, sizeof(S.R));
  std::memcpy(S.FPR, GS.FPR, sizeof(S.FPR));
  S.HI = GS.HI;
  S.LO = GS.LO;
  S.FpCond = GS.FpCond != 0;
  Interp.importState(S);
  Interp.seedRun(GS.Instrs); // the limit fatal fires at the exact count
  SimAddr Next = Interp.stepUnit(At);
  Interp.exportState(S);
  std::memcpy(GS.R, S.R, sizeof(GS.R));
  std::memcpy(GS.FPR, S.FPR, sizeof(GS.FPR));
  GS.HI = S.HI;
  GS.LO = S.LO;
  GS.FpCond = S.FpCond ? 1 : 0;
  GS.Instrs = Interp.retiredInstrs();
  return Next;
}

TypedValue MipsTranslatingCpu::callWithConvSpan(const CallConv &CC,
                                                SimAddr Entry,
                                                const TypedValue *Args,
                                                size_t NumArgs, Type RetTy) {
  if (!Avail) {
    // Unsupported host or out-of-range guest arena: the whole call runs
    // on the embedded reference interpreter (which bills full timing
    // statistics and its own sim.* telemetry; we refold the stats so
    // cumulativeStats() stays coherent without double-billing the
    // registry).
    Interp.setStackTop(initialSp(Mem));
    TypedValue Res =
        Interp.callWithConvSpan(CC, Entry, Args, NumArgs, RetTy);
    Stats = Interp.lastStats();
    accumulateStats(Stats);
    return Res;
  }

  // Marshal exactly as MipsSim::callWithConv does. FPR persists across
  // calls there too (only the integer file is cleared).
  std::memset(GS.R, 0, sizeof(GS.R));
  GS.HI = GS.LO = 0;
  GS.FpCond = 0;
  GS.R[29] = uint32_t(initialSp(Mem));
  unsigned Link = CC.LinkReg.isValid() ? CC.LinkReg.Num : 31;
  GS.R[Link] = uint32_t(sim::MipsSim::stopAddr());

  // Register-only argument lists (every client in this repo) marshal
  // inline with the same left-to-right next-free-register rule as
  // computeArgLocs; the vector-building path only runs when some argument
  // spills to the stack (its offset depends on the whole prefix).
  size_t NextInt = 0, NextFp = 0, FirstSpill = NumArgs;
  for (size_t I = 0; I < NumArgs; ++I) {
    const TypedValue &A = Args[I];
    if (isFpType(A.Ty)) {
      if (NextFp >= CC.FpArgRegs.size()) {
        FirstSpill = I;
        break;
      }
      unsigned N = CC.FpArgRegs[NextFp++].Num;
      GS.FPR[N] = uint32_t(A.Bits);
      if (A.Ty == Type::D)
        GS.FPR[N + 1] = uint32_t(A.Bits >> 32);
    } else {
      if (NextInt >= CC.IntArgRegs.size()) {
        FirstSpill = I;
        break;
      }
      GS.R[CC.IntArgRegs[NextInt++].Num] = uint32_t(A.Bits);
    }
  }
  if (FirstSpill != NumArgs) {
    std::vector<Type> Types;
    Types.reserve(NumArgs);
    for (size_t I = 0; I < NumArgs; ++I)
      Types.push_back(Args[I].Ty);
    std::vector<ArgLoc> Locs = computeArgLocs(CC, Types, 4);
    for (size_t I = FirstSpill; I < NumArgs; ++I) {
      const ArgLoc &L = Locs[I];
      const TypedValue &A = Args[I];
      if (!L.OnStack) {
        if (L.R.isInt()) {
          GS.R[L.R.Num] = uint32_t(A.Bits);
        } else {
          GS.FPR[L.R.Num] = uint32_t(A.Bits);
          if (A.Ty == Type::D)
            GS.FPR[L.R.Num + 1] = uint32_t(A.Bits >> 32);
        }
        continue;
      }
      SimAddr Slot = SimAddr(GS.R[29]) + uint32_t(L.StackOff);
      Mem.write<uint32_t>(Slot, uint32_t(A.Bits));
      if (A.Ty == Type::D)
        Mem.write<uint32_t>(Slot + 4, uint32_t(A.Bits >> 32));
    }
  }

  GS.Instrs = 0;
  GS.InstrLimit = InstrLimit;
  if (!HostBase)
    HostBase = Mem.hostPtr(Mem.base(), Mem.size());

  // One generation check per call: guest code is published from the host
  // side between calls (translated code cannot republish regions), so the
  // generation cannot move under a running call. A concurrent publisher's
  // bump is observed by the next call — the strongest ordering a publish
  // racing with execution can ask for.
  uint64_t Gen = Mem.codeGeneration();
  if (Gen != LocalGen) {
    if (!Local.empty()) {
      VCODE_TM_COUNT("dbt.invalidations", 1);
      flushExecCounts();
      Local.clear();
    }
    for (TableEnt &T : Dispatch)
      T = TableEnt();
    LocalGen = Gen;
  }

  const SimAddr Stop = sim::MipsSim::stopAddr();
  uint64_t PC = Entry;
  while (PC != Stop) {
    if (PC & DbtInterpTag) {
      PC = interpUnit(SimAddr(PC & DbtPcMask));
      continue;
    }
    TableEnt &T = Dispatch[(PC >> 2) & (DispatchSlots - 1)];
    CachedFn *CF;
    if (T.PC == PC) {
      CF = T.CF;
    } else {
      auto It = Local.find(PC);
      if (It == Local.end()) {
        CodeCache::Handle H = Engine->translate(PC, Gen);
        std::shared_ptr<const CodeCache::Version> Pin = H.pin();
        if (!Pin || !Pin->Code.isValid()) {
          VCODE_TM_COUNT("dbt.translate_failures", 1);
          PC = interpUnit(PC);
          continue;
        }
        CachedFn NF;
        NF.Fn = reinterpret_cast<TranslatedFn>(uintptr_t(Pin->Code.Entry));
        NF.H = H;
        NF.Pin = std::move(Pin);
        It = Local.emplace(PC, std::move(NF)).first;
      }
      CF = &It->second;
      T.PC = PC;
      T.CF = CF;
    }
    ++PendDispatches;
    ++CF->PendingExecs;
    VCODE_PF_SAMPLE_VPC(++PfClock, PC);
    PC = CF->Fn(&GS, HostBase);
  }

  TypedValue Res;
  Res.Ty = RetTy;
  if (RetTy == Type::D)
    Res.Bits = uint64_t(GS.FPR[CC.FpRet.Num]) |
               (uint64_t(GS.FPR[CC.FpRet.Num + 1]) << 32);
  else if (RetTy == Type::F)
    Res.Bits = GS.FPR[CC.FpRet.Num];
  else if (isSignedType(RetTy))
    Res.Bits = uint64_t(int64_t(int32_t(GS.R[CC.IntRet.Num])));
  else
    Res.Bits = GS.R[CC.IntRet.Num];

  // Architectural results are exact; the timing model is not run, so a
  // translated call bills retired instructions only. Registry telemetry
  // is batched (see flushTelemetry); per-call cumulative stats stay exact.
  Stats = RunStats();
  Stats.Instrs = GS.Instrs;
  accumulateStats(Stats);
  ++PendCalls;
  PendInstrs += GS.Instrs;
  if (PendCalls >= TelemetryFlushPeriod)
    flushTelemetry();
  return Res;
}
