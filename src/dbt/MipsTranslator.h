//===- dbt/MipsTranslator.h - MIPS region -> x86-64 translation -*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translation of a discovered MipsRegion to host x86-64 through the
/// ordinary VCodeT<X64Target> emission path — the translator is just
/// another VCODE client. Guest registers live in a spilled GuestState
/// block (first argument), guest memory accesses are bounds- and
/// alignment-checked against the guest arena (second argument: its host
/// base), and every check failure, unsupported opcode, and instruction-
/// budget crossing exits back to the dispatcher with a tagged PC so the
/// interpreter reproduces the exact architectural behavior, fatal
/// messages included.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_DBT_MIPSTRANSLATOR_H
#define VCODE_DBT_MIPSTRANSLATOR_H

#include "dbt/GuestState.h"
#include "dbt/MipsRegion.h"
#include "x64/X64Target.h"

namespace vcode {
namespace dbt {

/// Emits native code for region \p R into \p CM through \p V and returns
/// the entry point. The generated function is `uint64_t f(GuestState *,
/// uint8_t *GuestHostBase)` (see GuestState.h). Emission errors follow
/// \p V's error policy: under generateWithRetry they unwind as CgAbort
/// and surface as a failed GenerateResult.
CodePtr translateRegion(VCodeT<x64::X64Target> &V, const MipsRegion &R,
                        CodeMem CM, const sim::Memory &GuestMem);

} // namespace dbt
} // namespace vcode

#endif // VCODE_DBT_MIPSTRANSLATOR_H
