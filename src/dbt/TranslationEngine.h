//===- dbt/TranslationEngine.h - Cached guest-block translation -*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ties region discovery, the x64 VCODE backend, and the shared CodeCache
/// into one thread-safe service: translate(PC, generation) returns cached
/// host code for the guest region rooted at PC, generating it at most once
/// per (PC, generation) even under concurrent callers. Translations live
/// in the engine's own *native* arena — separate from the guest arena — so
/// publishing translated code never bumps the guest's code generation and
/// self-invalidates the cache.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_DBT_TRANSLATIONENGINE_H
#define VCODE_DBT_TRANSLATIONENGINE_H

#include "core/CodeCache.h"
#include "dbt/GuestState.h"
#include "sim/Memory.h"
#include "x64/X64Target.h"
#include <memory>

namespace vcode {
namespace dbt {

/// Shared, thread-safe translation service for one guest memory.
class TranslationEngine {
public:
  /// \p Guest is the simulated memory holding MIPS code and data; it must
  /// outlive the engine. The engine allocates its own native code arena
  /// of \p NativeArenaBytes.
  explicit TranslationEngine(sim::Memory &Guest,
                             size_t NativeArenaBytes = 64 * 1024 * 1024);
  ~TranslationEngine();

  /// True when this build/host can run translated code at all (x86-64
  /// host with mmap W^X support).
  static bool hostSupported();

  /// True when translation applies to this guest: supported host, and the
  /// guest arena lives entirely below 4 GiB so 32-bit guest addresses and
  /// the translator's unsigned bounds checks are exact.
  bool available() const;

  /// Cached translation of the region rooted at \p PC under guest code
  /// generation \p Gen. Invalid handle when code generation failed (the
  /// caller falls back to interpretation). Thread-safe; concurrent
  /// requests for the same (PC, Gen) generate once.
  CodeCache::Handle translate(SimAddr PC, uint64_t Gen);

  sim::Memory &guest() { return Guest; }
  /// The engine's translation cache (telemetry / tests).
  CodeCache *cache() { return Cache.get(); }

private:
  sim::Memory &Guest;
  std::unique_ptr<sim::Memory> NativeMem; ///< null when !hostSupported()
  std::unique_ptr<CodeCache> Cache;
  x64::X64Target Tgt; ///< stateless across functions; shareable
};

} // namespace dbt
} // namespace vcode

#endif // VCODE_DBT_TRANSLATIONENGINE_H
