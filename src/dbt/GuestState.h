//===- dbt/GuestState.h - Spilled MIPS guest register block -----*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The spilled architectural state of the translated MIPS guest. Translated
/// x86-64 code receives a GuestState* as its first argument and reads/writes
/// guest registers through fixed offsets into it, so guest state is precise
/// at every instruction boundary — which is what lets any translated
/// instruction bail out to the interpreter mid-block (fault, unsupported
/// opcode, instruction budget) without reconstruction.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_DBT_GUESTSTATE_H
#define VCODE_DBT_GUESTSTATE_H

#include "core/CodeBuffer.h"
#include <cstddef>
#include <cstdint>

namespace vcode {
namespace dbt {

/// Spilled MIPS architectural state, laid out for direct addressing from
/// translated code (all hot offsets fit in a disp8/disp32).
struct GuestState {
  uint32_t R[32] = {};    ///< integer registers ($0 stored but never read)
  uint32_t FPR[32] = {};  ///< FPU registers (doubles span two cells)
  uint32_t HI = 0;
  uint32_t LO = 0;
  uint32_t FpCond = 0;    ///< FP condition flag (0/1)
  uint32_t Pad = 0;
  uint64_t Instrs = 0;     ///< guest instructions retired this call
  uint64_t InstrLimit = 0; ///< budget; crossing it exits to the interpreter
};

/// Byte offsets into GuestState used by the translator.
inline constexpr int32_t gsRegOff(unsigned N) { return int32_t(4 * N); }
inline constexpr int32_t gsFprOff(unsigned N) { return int32_t(128 + 4 * N); }
inline constexpr int32_t GsHiOff = 256;
inline constexpr int32_t GsLoOff = 260;
inline constexpr int32_t GsFpCondOff = 264;
inline constexpr int32_t GsInstrsOff = 272;
inline constexpr int32_t GsInstrLimitOff = 280;

static_assert(offsetof(GuestState, FPR) == 128, "GuestState layout");
static_assert(offsetof(GuestState, HI) == GsHiOff, "GuestState layout");
static_assert(offsetof(GuestState, LO) == GsLoOff, "GuestState layout");
static_assert(offsetof(GuestState, FpCond) == GsFpCondOff, "GuestState layout");
static_assert(offsetof(GuestState, Instrs) == GsInstrsOff, "GuestState layout");
static_assert(offsetof(GuestState, InstrLimit) == GsInstrLimitOff,
              "GuestState layout");

/// A translated region is a function `uint64_t f(GuestState *, uint8_t
/// *GuestHostBase)` returning the next guest PC. The tag bit marks "the
/// dispatcher must execute one instruction unit at this PC through the
/// interpreter before continuing" — runtime faults, unsupported opcodes,
/// and budget exhaustion all funnel through it.
using TranslatedFn = uint64_t (*)(GuestState *, uint8_t *);

/// Exit-protocol tag: high bit block well above any 32-bit guest PC.
inline constexpr uint64_t DbtInterpTag = uint64_t(1) << 62;
/// Mask recovering the guest PC from a tagged exit value.
inline constexpr uint64_t DbtPcMask = 0xFFFFFFFFull;

} // namespace dbt
} // namespace vcode

#endif // VCODE_DBT_GUESTSTATE_H
