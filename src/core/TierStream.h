//===- core/TierStream.h - Tier-polymorphic emission streams ----*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Adapters that let one templated emitter body drive either generation
/// tier (core/Tier.h):
///
///  - DirectStream (RegT = Reg): inline-forwards every operation to the
///    VCode in-place emitters — Tier-0, byte-identical to calling VCode
///    directly.
///  - RecStream (RegT = VReg): forwards to a VRegLayer in recording mode —
///    Tier-1; finish() runs linear scan and the optimizing replay.
///
/// Clients write `template <typename S> void emitBody(S &St)` using
/// `typename S::RegT` for registers and the shared surface below; the
/// tier choice reduces to which adapter is constructed. TierNamedOps
/// mirrors the paper-named instruction families (Instructions.inc) the
/// clients use, defined once over the generic surface so the two
/// adapters cannot drift.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_CORE_TIERSTREAM_H
#define VCODE_CORE_TIERSTREAM_H

#include "core/Tier.h"
#include "core/VCode.h"
#include "core/VRegLayer.h"

namespace vcode {

/// Paper-named instruction helpers over a stream's generic surface
/// (CRTP: \p Derived provides binop/binopImm/unop/setInt/loadImm/
/// storeImm/branch/branchImm/ret).
template <typename Derived, typename R> struct TierNamedOps {
  // Register-register ALU.
  void addu(R Rd, R A, R B) { D().binop(BinOp::Add, Type::U, Rd, A, B); }
  void addp(R Rd, R A, R B) { D().binop(BinOp::Add, Type::P, Rd, A, B); }
  void oru(R Rd, R A, R B) { D().binop(BinOp::Or, Type::U, Rd, A, B); }
  // Immediate ALU.
  void addpi(R Rd, R A, int64_t I) {
    D().binopImm(BinOp::Add, Type::P, Rd, A, I);
  }
  void subui(R Rd, R A, int64_t I) {
    D().binopImm(BinOp::Sub, Type::U, Rd, A, I);
  }
  void andui(R Rd, R A, int64_t I) {
    D().binopImm(BinOp::And, Type::U, Rd, A, I);
  }
  void xorui(R Rd, R A, int64_t I) {
    D().binopImm(BinOp::Xor, Type::U, Rd, A, I);
  }
  void lshii(R Rd, R A, int64_t I) {
    D().binopImm(BinOp::Lsh, Type::I, Rd, A, I);
  }
  void lshui(R Rd, R A, int64_t I) {
    D().binopImm(BinOp::Lsh, Type::U, Rd, A, I);
  }
  void rshui(R Rd, R A, int64_t I) {
    D().binopImm(BinOp::Rsh, Type::U, Rd, A, I);
  }
  void mului(R Rd, R A, int64_t I) {
    D().binopImm(BinOp::Mul, Type::U, Rd, A, I);
  }
  void movp(R Rd, R A) { D().unop(UnOp::Mov, Type::P, Rd, A); }
  // Constants.
  void seti(R Rd, int32_t V) {
    D().setInt(Type::I, Rd, uint64_t(int64_t(V)));
  }
  void setu(R Rd, uint32_t V) { D().setInt(Type::U, Rd, V); }
  void setp(R Rd, SimAddr V) { D().setInt(Type::P, Rd, V); }
  // Memory.
  void lduci(R Rd, R Base, int64_t O) { D().loadImm(Type::UC, Rd, Base, O); }
  void ldusi(R Rd, R Base, int64_t O) { D().loadImm(Type::US, Rd, Base, O); }
  void ldui(R Rd, R Base, int64_t O) { D().loadImm(Type::U, Rd, Base, O); }
  void ldpi(R Rd, R Base, int64_t O) { D().loadImm(Type::P, Rd, Base, O); }
  void stui(R Val, R Base, int64_t O) { D().storeImm(Type::U, Val, Base, O); }
  // Branches.
  void bequi(R A, int64_t I, Label L) {
    D().branchImm(Cond::Eq, Type::U, A, I, L);
  }
  void bneui(R A, int64_t I, Label L) {
    D().branchImm(Cond::Ne, Type::U, A, I, L);
  }
  void bltui(R A, int64_t I, Label L) {
    D().branchImm(Cond::Lt, Type::U, A, I, L);
  }
  void bgtui(R A, int64_t I, Label L) {
    D().branchImm(Cond::Gt, Type::U, A, I, L);
  }
  void bgep(R A, R B, Label L) { D().branch(Cond::Ge, Type::P, A, B, L); }
  // Returns.
  void reti(R Rs) { D().ret(Type::I, Rs); }
  void retu(R Rs) { D().ret(Type::U, Rs); }

private:
  Derived &D() { return *static_cast<Derived *>(this); }
};

/// Tier-0: straight pass-through to the in-place VCode emitters.
struct DirectStream : TierNamedOps<DirectStream, Reg> {
  using RegT = Reg;

  explicit DirectStream(VCode &V) : V(V) {}

  Reg fromArg(Type, Reg ArgReg) { return ArgReg; }
  Reg temp(Type Ty) { return V.getreg(Ty); }
  void release(Reg Rg) { V.putreg(Rg); }
  Label genLabel() { return V.genLabel(); }
  void label(Label L) { V.label(L); }
  void jmp(Label L) { V.jmp(L); }
  void jmpr(Reg Rg) { V.jmpr(Rg); }
  template <typename BrFn, typename SlotFn>
  void scheduleDelay(BrFn Br, SlotFn Slot) {
    V.scheduleDelay(Br, Slot);
  }
  void finish() {}

  void binop(BinOp Op, Type Ty, Reg Rd, Reg A, Reg B) {
    V.binop(Op, Ty, Rd, A, B);
  }
  void binopImm(BinOp Op, Type Ty, Reg Rd, Reg A, int64_t I) {
    V.binopImm(Op, Ty, Rd, A, I);
  }
  void unop(UnOp Op, Type Ty, Reg Rd, Reg A) { V.unop(Op, Ty, Rd, A); }
  void setInt(Type Ty, Reg Rd, uint64_t Imm) { V.setInt(Ty, Rd, Imm); }
  void loadImm(Type Ty, Reg Rd, Reg Base, int64_t O) {
    V.loadImm(Ty, Rd, Base, O);
  }
  void storeImm(Type Ty, Reg Val, Reg Base, int64_t O) {
    V.storeImm(Ty, Val, Base, O);
  }
  void branch(Cond C, Type Ty, Reg A, Reg B, Label L) {
    V.branch(C, Ty, A, B, L);
  }
  void branchImm(Cond C, Type Ty, Reg A, int64_t I, Label L) {
    V.branchImm(C, Ty, A, I, L);
  }
  void ret(Type Ty, Reg Rs) { V.ret(Ty, Rs); }

  VCode &V;
};

/// Tier-1: records into a VRegLayer; finish() allocates and replays.
struct RecStream : TierNamedOps<RecStream, VReg> {
  using RegT = VReg;

  RecStream(VCode &V, VRegLayer &L) : V(V), L(L) {}

  VReg fromArg(Type Ty, Reg ArgReg) { return L.fromArg(Ty, ArgReg); }
  VReg temp(Type Ty) { return L.alloc(Ty); }
  void release(VReg) {} // vregs need no pool bookkeeping
  Label genLabel() { return V.genLabel(); }
  void label(Label Lb) { L.label(Lb); }
  void jmp(Label Lb) { L.jmp(Lb); }
  void jmpr(VReg Rg) { L.jmpReg(Rg); }
  /// The recording replay schedules delay slots itself; record in
  /// no-delay order and let the fill pass reassemble the pair.
  template <typename BrFn, typename SlotFn>
  void scheduleDelay(BrFn Br, SlotFn Slot) {
    Slot();
    Br();
  }
  void finish() { L.finish(); }

  void binop(BinOp Op, Type Ty, VReg Rd, VReg A, VReg B) {
    L.binop(Op, Ty, Rd, A, B);
  }
  void binopImm(BinOp Op, Type Ty, VReg Rd, VReg A, int64_t I) {
    L.binopImm(Op, Ty, Rd, A, I);
  }
  void unop(UnOp Op, Type Ty, VReg Rd, VReg A) { L.unop(Op, Ty, Rd, A); }
  void setInt(Type Ty, VReg Rd, uint64_t Imm) { L.setInt(Ty, Rd, Imm); }
  void loadImm(Type Ty, VReg Rd, VReg Base, int64_t O) {
    L.load(Ty, Rd, Base, O);
  }
  void storeImm(Type Ty, VReg Val, VReg Base, int64_t O) {
    L.store(Ty, Val, Base, O);
  }
  void branch(Cond C, Type Ty, VReg A, VReg B, Label Lb) {
    L.branch(C, Ty, A, B, Lb);
  }
  void branchImm(Cond C, Type Ty, VReg A, int64_t I, Label Lb) {
    L.branchImm(C, Ty, A, I, Lb);
  }
  void ret(Type Ty, VReg Rs) { L.ret(Ty, Rs); }

  VCode &V;
  VRegLayer &L;
};

} // namespace vcode

#endif // VCODE_CORE_TIERSTREAM_H
