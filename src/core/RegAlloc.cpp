//===- core/RegAlloc.cpp - Machine-independent register allocator ---------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "core/RegAlloc.h"
#include "support/Error.h"
#include "support/Telemetry.h"
#include <cassert>

using namespace vcode;

RegAlloc::Entry &RegAlloc::entry(Reg R) {
  assert(R.isValid() && R.Num < MaxRegs && "bad register handle");
  return R.isInt() ? Int[R.Num] : Fp[R.Num];
}

const RegAlloc::Entry &RegAlloc::entry(Reg R) const {
  assert(R.isValid() && R.Num < MaxRegs && "bad register handle");
  return R.isInt() ? Int[R.Num] : Fp[R.Num];
}

void RegAlloc::init(const TargetInfo &TI) {
  for (unsigned I = 0; I < MaxRegs; ++I)
    Int[I] = Fp[I] = Entry();
  UsedCalleeInt = UsedCalleeFp = 0;

  IntOrder.clear();
  FpOrder.clear();
  auto Add = [this](const std::vector<Reg> &Regs, RegKind K) {
    for (Reg R : Regs) {
      entry(R) = Entry{K, /*Free=*/true};
      (R.isInt() ? IntOrder : FpOrder).push_back(R);
    }
  };
  // Default priority: caller-saved scratch first (cheap), then the
  // callee-saved registers (each first use costs a prologue save).
  Add(TI.IntTemps, RegKind::CallerSaved);
  Add(TI.IntSaves, RegKind::CalleeSaved);
  Add(TI.FpTemps, RegKind::CallerSaved);
  Add(TI.FpSaves, RegKind::CalleeSaved);
}

void RegAlloc::setPriorityOrder(Reg::KindType Kind,
                                const std::vector<Reg> &Order) {
  std::vector<Reg> &Dst = Kind == Reg::Int ? IntOrder : FpOrder;
  // Reordering must not change which registers are currently allocated:
  // a register handed out before the reorder stays allocated, and one
  // free before it stays free. Snapshot liveness before rewriting.
  bool Live[MaxRegs] = {};
  for (Reg R : Dst)
    Live[R.Num] = !entry(R).Free;
  // Registers dropped from the ordering stop being candidates; their class
  // is retained so hard-coded uses still save correctly.
  for (Reg R : Dst)
    entry(R).Free = false;
  Dst = Order;
  for (Reg R : Dst)
    entry(R).Free = !Live[R.Num];
}

void RegAlloc::setKind(Reg R, RegKind K) {
  Entry &E = entry(R);
  E.Kind = K;
  if (K == RegKind::Unavailable)
    E.Free = false;
}

void RegAlloc::allCalleeSaved() {
  for (unsigned I = 0; I < MaxRegs; ++I) {
    if (Int[I].Kind == RegKind::CallerSaved)
      Int[I].Kind = RegKind::CalleeSaved;
    if (Fp[I].Kind == RegKind::CallerSaved)
      Fp[I].Kind = RegKind::CalleeSaved;
  }
}

Reg RegAlloc::scan(Reg::KindType Kind, RegKind Want) {
  const std::vector<Reg> &Order = Kind == Reg::Int ? IntOrder : FpOrder;
  for (Reg R : Order) {
    Entry &E = entry(R);
    if (E.Free && E.Kind == Want) {
      E.Free = false;
      if (Want == RegKind::CalleeSaved)
        noteCalleeSavedUse(R);
      return R;
    }
  }
  return Reg();
}

Reg RegAlloc::get(Type Ty, RegClass C, bool IsLeaf) {
  assert(isRegType(Ty) && "sub-word types have no register operations");
  Reg::KindType Kind = isFpType(Ty) ? Reg::Fp : Reg::Int;

  if (C == RegClass::Temp) {
    // Prefer cheap scratch; fall back to a callee-saved register, which
    // costs a prologue save ("callee-saved registers stand in for
    // caller-saved ones").
    if (Reg R = scan(Kind, RegKind::CallerSaved); R.isValid())
      return R;
    Reg R = scan(Kind, RegKind::CalleeSaved);
    if (!R.isValid())
      VCODE_TM_COUNT("core.regalloc.exhausted", 1);
    return R;
  }

  // RegClass::Var: persistent across calls. In a leaf procedure nothing
  // clobbers caller-saved registers, so they may stand in for callee-saved
  // ones at zero cost; prefer that.
  if (IsLeaf)
    if (Reg R = scan(Kind, RegKind::CallerSaved); R.isValid())
      return R;
  Reg R = scan(Kind, RegKind::CalleeSaved);
  if (!R.isValid())
    VCODE_TM_COUNT("core.regalloc.exhausted", 1);
  return R;
}

void RegAlloc::put(Reg R) {
  Entry &E = entry(R);
  assert(!E.Free && "double putreg");
  if (E.Kind != RegKind::Unavailable)
    E.Free = true;
}

bool RegAlloc::take(Reg R) {
  Entry &E = entry(R);
  if (!E.Free)
    return false;
  E.Free = false;
  if (E.Kind == RegKind::CalleeSaved)
    noteCalleeSavedUse(R);
  return true;
}

bool RegAlloc::isFree(Reg R) const { return entry(R).Free; }

void RegAlloc::noteCalleeSavedUse(Reg R) {
  // Unconditional: R can come straight from client code, and an out-of-range
  // shift would be UB in release builds rather than a diagnosable error.
  if (R.Num >= 32)
    fatalKind(CgErrKind::BadOperand,
              "register %u out of range: the save mask only covers 32 "
              "registers per kind",
              unsigned(R.Num));
  uint32_t Bit = 1u << R.Num;
  uint32_t &Mask = R.isInt() ? UsedCalleeInt : UsedCalleeFp;
  if (!(Mask & Bit)) {
    // First use of this callee-saved register in the current function:
    // the prologue gains one save (and the epilogue one restore).
    VCODE_TM_COUNT("core.regalloc.callee_spills", 1);
    Mask |= Bit;
  }
}
