//===- core/Ops.h - VCODE operations and fixups -----------------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Base operations of the VCODE core instruction set (paper Table 2) and the
/// fixup records used to backpatch jumps and constant-pool references when
/// the client signals the end of code generation.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_CORE_OPS_H
#define VCODE_CORE_OPS_H

#include "support/Error.h"
#include <cstdint>

namespace vcode {

/// Standard binary operations (paper Table 2).
enum class BinOp : uint8_t { Add, Sub, Mul, Div, Mod, And, Or, Xor, Lsh, Rsh };

/// Standard unary operations.
enum class UnOp : uint8_t { Com, Not, Mov, Neg };

/// Branch conditions.
enum class Cond : uint8_t { Lt, Le, Gt, Ge, Eq, Ne };

/// Returns the condition with operands swapped (a C b == b swap(C) a).
constexpr Cond swapCond(Cond C) {
  switch (C) {
  case Cond::Lt:
    return Cond::Gt;
  case Cond::Le:
    return Cond::Ge;
  case Cond::Gt:
    return Cond::Lt;
  case Cond::Ge:
    return Cond::Le;
  case Cond::Eq:
  case Cond::Ne:
    return C;
  }
  unreachable("bad Cond");
}

/// Returns the logical negation of a condition.
constexpr Cond negateCond(Cond C) {
  switch (C) {
  case Cond::Lt:
    return Cond::Ge;
  case Cond::Le:
    return Cond::Gt;
  case Cond::Gt:
    return Cond::Le;
  case Cond::Ge:
    return Cond::Lt;
  case Cond::Eq:
    return Cond::Ne;
  case Cond::Ne:
    return Cond::Eq;
  }
  unreachable("bad Cond");
}

/// Printable name of a BinOp (for diagnostics and the vcodegen tool).
constexpr const char *binOpName(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return "add";
  case BinOp::Sub:
    return "sub";
  case BinOp::Mul:
    return "mul";
  case BinOp::Div:
    return "div";
  case BinOp::Mod:
    return "mod";
  case BinOp::And:
    return "and";
  case BinOp::Or:
    return "or";
  case BinOp::Xor:
    return "xor";
  case BinOp::Lsh:
    return "lsh";
  case BinOp::Rsh:
    return "rsh";
  }
  unreachable("bad BinOp");
}

/// A code label. Labels are created with VCode::genLabel() and bound with
/// VCode::label(); branches to not-yet-bound labels are backpatched at
/// VCode::end() (paper §3.2 step 4).
struct Label {
  int32_t Id = -1;
  constexpr bool isValid() const { return Id >= 0; }
  friend constexpr bool operator==(Label A, Label B) { return A.Id == B.Id; }
};

/// What a pending fixup patches once label addresses are known.
enum class FixupKind : uint8_t {
  Branch,       ///< pc-relative conditional branch displacement
  Jump,         ///< unconditional jump to a label
  Call,         ///< jump-and-link to a label (paper Table 2: "jal ...
                ///< immediate, register, or label")
  EpilogueJump, ///< jump to the function epilogue; the target may rewrite
                ///< this into a direct return when no epilogue is needed
  AddrHi,       ///< high part of an absolute label address materialization
  AddrLo,       ///< low part of an absolute label address materialization
};

/// A recorded patch site: instruction word \p WordIdx (function-relative)
/// must be completed with the address of \p Lab.
struct Fixup {
  uint32_t WordIdx;
  Label Lab;
  FixupKind Kind;
};

} // namespace vcode

#endif // VCODE_CORE_OPS_H
