//===- core/Peephole.h - VCODE-level peephole optimizer --------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The VCODE-level peephole optimizer the paper leaves as future work
/// (§6.2): "Future work will include implementing a VCODE-level peephole
/// optimizer for clients that wish to trade runtime compilation overhead
/// for better generated code."
///
/// The layer buffers a one-instruction window of VCODE-level operations
/// and applies strictly semantics-preserving local rewrites before
/// forwarding to the underlying stream:
///
///   set t, k ; op d, s, t   (t == d)  ->  op-immediate d, s, k
///   set d, _ ; set d, k                ->  set d, k
///   add/sub d, s, 0                    ->  mov d, s (dropped when d == s)
///   mul d, s, +/-2^k                   ->  shift (and negate)
///   mul d, s, 0 / 1                    ->  set 0 / mov
///   or/xor d, s, 0                     ->  mov d, s
///   mov d, d                           ->  (dropped)
///   st [b+o] ; ld same [b+o]           ->  st ; mov (load elided)
///
/// Anything not recognized flushes the window. Labels, branches, jumps,
/// returns, and end() are barriers. `saved()` reports how many
/// instructions the rewrites removed (the ablation benchmark measures the
/// codegen-time cost against the generated-code win).
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_CORE_PEEPHOLE_H
#define VCODE_CORE_PEEPHOLE_H

#include "core/VCode.h"
#include "support/Telemetry.h"

namespace vcode {

/// One-instruction-window peephole layer over a VCode stream.
class Peephole {
public:
  /// \p Enabled false makes the layer a zero-rewrite pass-through, so
  /// clients can keep one code path and toggle optimization.
  explicit Peephole(VCode &V, bool Enabled = true)
      : V(V), Enabled(Enabled) {}
  ~Peephole() {
    // Flush only into a live function: when an emission attempt was
    // abandoned after an error, the window's target buffer is gone and
    // emitting into it would raise again (possibly during unwinding).
    if (V.inFunction())
      flush();
    if (Saved)
      VCODE_TM_COUNT("core.peephole.saved", Saved);
  }

  // --- Mirrored surface (the subset the optimizer understands) ----------
  void binop(BinOp Op, Type Ty, Reg Rd, Reg Rs1, Reg Rs2);
  void binopImm(BinOp Op, Type Ty, Reg Rd, Reg Rs1, int64_t Imm);
  void unop(UnOp Op, Type Ty, Reg Rd, Reg Rs);
  void setInt(Type Ty, Reg Rd, uint64_t Imm);
  void loadImm(Type Ty, Reg Rd, Reg Base, int64_t Off);
  void storeImm(Type Ty, Reg Val, Reg Base, int64_t Off);

  // Barriers: flush the window, then forward.
  void label(Label L) {
    flush();
    V.label(L);
  }
  void branch(Cond C, Type Ty, Reg A, Reg B, Label L) {
    flush();
    V.branch(C, Ty, A, B, L);
  }
  void branchImm(Cond C, Type Ty, Reg A, int64_t Imm, Label L) {
    flush();
    V.branchImm(C, Ty, A, Imm, L);
  }
  void jmp(Label L) {
    flush();
    V.jmp(L);
  }
  void ret(Type Ty, Reg Rs) {
    flush();
    V.ret(Ty, Rs);
  }

  /// Emits any buffered instruction.
  void flush();

  /// Drops any buffered instruction without emitting it. Call before
  /// re-running an emission sequence whose previous attempt was abandoned.
  void discard() { Pend = PendingInsn(); }

  /// Number of VCODE instructions the rewrites eliminated or simplified.
  unsigned saved() const { return Saved; }

  /// The underlying stream (for operations the layer does not mirror;
  /// callers must flush() first).
  VCode &stream() { return V; }

private:
  enum class PendKind { None, Set, Store };
  struct PendingInsn {
    PendKind Kind = PendKind::None;
    Type Ty = Type::I;
    Reg Rd, Base;
    uint64_t Imm = 0;
    int64_t Off = 0;
    Reg Val;
  };

  void emitPending();

  VCode &V;
  PendingInsn Pend;
  unsigned Saved = 0;
  bool Enabled = true;
};

} // namespace vcode

#endif // VCODE_CORE_PEEPHOLE_H
