//===- core/Peephole.cpp - VCODE-level peephole optimizer ------------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "core/Peephole.h"
#include "core/StrengthReduce.h"
#include "support/BitUtils.h"

using namespace vcode;

void Peephole::emitPending() {
  switch (Pend.Kind) {
  case PendKind::None:
    return;
  case PendKind::Set:
    V.setInt(Pend.Ty, Pend.Rd, Pend.Imm);
    break;
  case PendKind::Store:
    V.storeImm(Pend.Ty, Pend.Val, Pend.Base, Pend.Off);
    break;
  }
  Pend.Kind = PendKind::None;
}

void Peephole::flush() { emitPending(); }

void Peephole::setInt(Type Ty, Reg Rd, uint64_t Imm) {
  if (!Enabled) {
    V.setInt(Ty, Rd, Imm);
    return;
  }
  // set d, _ ; set d, k  ->  set d, k
  if (Pend.Kind == PendKind::Set && Pend.Rd == Rd) {
    ++Saved;
    Pend.Ty = Ty;
    Pend.Imm = Imm;
    return;
  }
  emitPending();
  Pend.Kind = PendKind::Set;
  Pend.Ty = Ty;
  Pend.Rd = Rd;
  Pend.Imm = Imm;
}

void Peephole::binop(BinOp Op, Type Ty, Reg Rd, Reg Rs1, Reg Rs2) {
  if (!Enabled) {
    V.binop(Op, Ty, Rd, Rs1, Rs2);
    return;
  }
  // set t, k ; op d, s, t  with t == d: the constant register dies here,
  // so the pair folds to the immediate form.
  if (Pend.Kind == PendKind::Set && Pend.Rd == Rs2 && Rs2 == Rd &&
      Rs1 != Rs2 && !isFpType(Ty)) {
    uint64_t K = Pend.Imm;
    Pend.Kind = PendKind::None;
    ++Saved;
    binopImm(Op, Ty, Rd, Rs1, int64_t(K));
    return;
  }
  emitPending();
  V.binop(Op, Ty, Rd, Rs1, Rs2);
}

void Peephole::binopImm(BinOp Op, Type Ty, Reg Rd, Reg Rs1, int64_t Imm) {
  if (!Enabled) {
    V.binopImm(Op, Ty, Rd, Rs1, Imm);
    return;
  }
  emitPending();
  if (!isFpType(Ty)) {
    switch (Op) {
    case BinOp::Add:
    case BinOp::Sub:
    case BinOp::Or:
    case BinOp::Xor:
    case BinOp::Lsh:
    case BinOp::Rsh:
      if (Imm == 0) {
        ++Saved;
        if (Rd != Rs1)
          V.unop(UnOp::Mov, Ty, Rd, Rs1);
        return;
      }
      break;
    case BinOp::Mul:
      if (Imm == 0) {
        ++Saved;
        V.setInt(Ty, Rd, 0);
        return;
      }
      if (Imm == 1) {
        ++Saved;
        if (Rd != Rs1)
          V.unop(UnOp::Mov, Ty, Rd, Rs1);
        return;
      }
      if (Imm > 1 && isPowerOf2(uint64_t(Imm))) {
        ++Saved;
        V.binopImm(BinOp::Lsh, Ty, Rd, Rs1, int64_t(log2Floor(uint64_t(Imm))));
        return;
      }
      if (Imm < 0 && Imm != INT64_MIN && isPowerOf2(uint64_t(-Imm)) &&
          isSignedType(Ty)) {
        ++Saved;
        V.binopImm(BinOp::Lsh, Ty, Rd, Rs1,
                   int64_t(log2Floor(uint64_t(-Imm))));
        V.unop(UnOp::Neg, Ty, Rd, Rd);
        return;
      }
      break;
    default:
      break;
    }
  }
  V.binopImm(Op, Ty, Rd, Rs1, Imm);
}

void Peephole::unop(UnOp Op, Type Ty, Reg Rd, Reg Rs) {
  if (!Enabled) {
    V.unop(Op, Ty, Rd, Rs);
    return;
  }
  emitPending();
  if (Op == UnOp::Mov && Rd == Rs) {
    ++Saved;
    return;
  }
  V.unop(Op, Ty, Rd, Rs);
}

void Peephole::storeImm(Type Ty, Reg Val, Reg Base, int64_t Off) {
  if (!Enabled) {
    V.storeImm(Ty, Val, Base, Off);
    return;
  }
  emitPending();
  Pend.Kind = PendKind::Store;
  Pend.Ty = Ty;
  Pend.Val = Val;
  Pend.Base = Base;
  Pend.Off = Off;
}

void Peephole::loadImm(Type Ty, Reg Rd, Reg Base, int64_t Off) {
  if (!Enabled) {
    V.loadImm(Ty, Rd, Base, Off);
    return;
  }
  // st v, [b+o] ; ld d, [b+o]  ->  st ; mov d, v  (no intervening code,
  // so the loaded value is exactly the stored register). Sub-word stores
  // narrow the value, so only fold full-width matches.
  if (Pend.Kind == PendKind::Store && Pend.Base == Base && Pend.Off == Off &&
      Pend.Ty == Ty && isRegType(Ty)) {
    Reg Val = Pend.Val;
    emitPending(); // the store itself still happens
    ++Saved;
    if (Rd != Val)
      V.unop(UnOp::Mov, Ty, Rd, Val);
    return;
  }
  emitPending();
  V.loadImm(Ty, Rd, Base, Off);
}
