//===- core/CodeCache.h - Sharded compiled-code cache -----------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A concurrent cache of compiled code, keyed by a canonical description of
/// what was compiled (a filter set, a tcc program, ...). This is the piece
/// that turns VCODE from a per-caller code generator into a shared service
/// (Kistler & Franz's "code optimization as a central system service"):
/// when compilation sits on the request path, identical requests must not
/// regenerate identical classifiers, and distinct requests must be able to
/// generate in parallel.
///
/// Guarantees:
///
///  - Exactly-once generation. The first thread to ask for a key runs the
///    generator; concurrent threads asking for the *same* key block and
///    reuse its result; threads asking for *different* keys generate in
///    parallel (the shard lock is dropped during generation).
///  - Safe reclamation. Entries hand out refcounted Handles. Evicting an
///    entry only removes it from the table; its code region returns to the
///    cache's free pool when the last Handle drops, so a classifier still
///    executing on some simulator thread is never freed under it.
///  - Tiered promotion. Entries carry per-execution counters
///    (Handle::noteExecution) and promote(key) regenerates an entry —
///    typically at Tier-1 — and atomically swaps the refcounted code
///    version under concurrent dispatchers: exactly one promoter runs,
///    pinned dispatchers finish on the old version, and the old region
///    is recycled only when its last pin drops.
///  - Counters. Hits / misses / generations / evictions / reclaimed
///    regions are exact (sharded relaxed atomics, summed by stats()), so
///    tests can assert "one generation per distinct key" instead of
///    eyeballing timings. The counters are instance-owned
///    telemetry::Counter objects: stats() stays per-cache exact, and the
///    same numbers appear in the process-wide telemetry report under
///    "cache.*" (summed across caches, including destroyed ones).
///
/// The cache allocates code regions from one sim::Memory arena (which must
/// be the arena the consuming engines execute from). The arena is a bump
/// allocator with no general free; the cache layers a size-bucketed free
/// pool on top, so evicted regions are recycled into later generations
/// rather than leaked. Side allocations a generator makes during emission
/// (e.g. DPF jump tables) stay in the arena for the lifetime of the arena —
/// bounded, but not recycled; see the threading-model notes in README.md.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_CORE_CODECACHE_H
#define VCODE_CORE_CODECACHE_H

#include "core/Generate.h"
#include "profile/CodeMap.h"
#include "sim/Memory.h"
#include "support/Telemetry.h"
#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace vcode {

/// Sharded (per-shard mutex) cache: canonical key -> generated CodePtr.
class CodeCache {
public:
  struct Options {
    unsigned Shards;          ///< lock shards (>=1; rounded up to 1)
    size_t MaxEntriesPerShard; ///< LRU-evict beyond this
    Options(unsigned Shards = 8, size_t MaxEntriesPerShard = 64)
        : Shards(Shards), MaxEntriesPerShard(MaxEntriesPerShard) {}
  };

  /// Counter snapshot. Hits counts lookups satisfied by an existing entry
  /// (including block-and-reuse waiters); Misses counts lookups that had
  /// to create an entry; Generations counts generator runs that succeeded
  /// (Failures those that did not) — so Misses == Generations + Failures
  /// once the cache is quiescent, and "no redundant regeneration" is the
  /// assertion Generations == number of distinct keys.
  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Generations = 0;
    uint64_t Failures = 0;
    uint64_t Evictions = 0;
    uint64_t RegionsReused = 0; ///< regions served from the free pool
    uint64_t PooledBytes = 0;   ///< bytes currently sitting in the pool
    uint64_t Promotions = 0;        ///< promote() swaps that succeeded
    uint64_t PromoteFailures = 0;   ///< promote() regenerations that failed
  };

  /// One immutable generation of an entry's code. Promotion installs a
  /// new Version and drops the entry's reference to the old one; the old
  /// code region returns to the pool only when the last pin (a dispatcher
  /// mid-call) releases it — so code is never freed under a running
  /// simulator thread.
  struct Version {
    explicit Version(CodeCache &C) : Owner(C) {}
    ~Version() {
      if (RegionBytes) {
        // The region is going back to the free pool: unregister it from
        // the CodeMap before another generation can reuse the addresses.
        profile::CodeMap::instance().remove(RegionAddr);
        Owner.reclaimRegion(RegionAddr, RegionBytes);
      }
    }
    Version(const Version &) = delete;
    Version &operator=(const Version &) = delete;

    CodeCache &Owner;
    CodePtr Code;
    SimAddr RegionAddr = 0;
    size_t RegionBytes = 0;
    Tier GenTier = Tier::Tier0; ///< tier this version was generated at
  };

private:
  enum class State : uint8_t { Generating, Ready, Failed };

  struct Entry {
    explicit Entry(CodeCache &C, std::string K)
        : Owner(C), Key(std::move(K)) {}
    Entry(const Entry &) = delete;
    Entry &operator=(const Entry &) = delete;

    CodeCache &Owner;
    const std::string Key;

    std::mutex M;              ///< guards St/Err/Cur + CV below
    std::condition_variable CV;
    State St = State::Generating;
    CgError Err;

    /// Current code version; set once when St becomes Ready, then only
    /// replaced (never cleared) by promote() under M.
    std::shared_ptr<const Version> Cur;
    std::atomic<uint64_t> LastUse{0};
    std::atomic<uint64_t> ExecCount{0}; ///< dispatches via Handle
    std::atomic<bool> Promoting{false}; ///< exactly-once promote gate
  };

public:
  /// A refcounted view of one cache entry. As long as any Handle (or the
  /// cache's own table slot) references the entry, its code region stays
  /// allocated; engines keep the Handle of their installed classifier for
  /// as long as they may execute it. Handles must not outlive the cache.
  class Handle {
  public:
    Handle() = default;

    /// True when the entry holds generated code.
    bool valid() const { return E && E->St == State::Ready; }
    explicit operator bool() const { return valid(); }
    /// The generated code (invalid CodePtr unless valid()). With
    /// promotion in play, prefer pin(): code() samples the current
    /// version, which may be swapped before the caller dispatches.
    CodePtr code() const {
      auto V = pin();
      return V ? V->Code : CodePtr{};
    }
    /// Pins the entry's current code version: as long as the returned
    /// reference lives, the version's region cannot be reclaimed even if
    /// promote() swaps in a replacement. Null for an invalid Handle.
    std::shared_ptr<const Version> pin() const {
      if (!E)
        return nullptr;
      std::lock_guard<std::mutex> Lock(E->M);
      return E->Cur;
    }
    /// Counts one execution of this entry's code; returns the new total.
    /// Engines call this per dispatch so the cache owner can promote hot
    /// entries (the unique threshold-crossing value picks one promoter).
    uint64_t noteExecution() {
      return E ? E->ExecCount.fetch_add(1, std::memory_order_relaxed) + 1
               : 0;
    }
    /// Counts \p N executions at once; returns the new total. Dispatchers
    /// whose whole call is tens of nanoseconds batch their counts locally
    /// and fold them in on a coarse cadence instead of paying one atomic
    /// per dispatch.
    uint64_t noteExecutions(uint64_t N) {
      return E ? E->ExecCount.fetch_add(N, std::memory_order_relaxed) + N
               : 0;
    }
    /// Executions recorded so far.
    uint64_t execCount() const {
      return E ? E->ExecCount.load(std::memory_order_relaxed) : 0;
    }
    /// Tier of the current code version.
    Tier tier() const {
      auto V = pin();
      return V ? V->GenTier : Tier::Tier0;
    }
    /// The generation error when !valid() (None for an empty Handle).
    const CgError &error() const {
      static const CgError NoErr{};
      return E ? E->Err : NoErr;
    }
    /// Size of the cached code region in bytes (diagnostics).
    size_t regionBytes() const {
      auto V = pin();
      return V ? V->RegionBytes : 0;
    }

  private:
    friend class CodeCache;
    explicit Handle(std::shared_ptr<Entry> E) : E(std::move(E)) {}
    std::shared_ptr<Entry> E;
  };

  /// Per-generation region allocator handed to the generator callback:
  /// plugs into generateWithRetry's Alloc slot. Each call reclaims the
  /// previous (failed) attempt's region into the cache pool and serves a
  /// fresh one, pool-first. The final region is handed over to the cache
  /// entry on success (or reclaimed on failure) by lookupOrGenerate.
  class RegionAlloc {
  public:
    CodeMem operator()(size_t Bytes) {
      if (CurBytes)
        C.reclaimRegion(CurAddr, CurBytes);
      CodeMem M = C.allocRegion(Bytes);
      CurAddr = M.Guest;
      CurBytes = M.Size;
      return M;
    }

  private:
    friend class CodeCache;
    explicit RegionAlloc(CodeCache &C) : C(C) {}
    CodeCache &C;
    SimAddr CurAddr = 0;
    size_t CurBytes = 0;
  };

  explicit CodeCache(sim::Memory &M, Options O = Options())
      : Mem(M), Opts(O), ShardVec(std::max(O.Shards, 1u)) {}

  CodeCache(const CodeCache &) = delete;
  CodeCache &operator=(const CodeCache &) = delete;

  /// Looks up \p Key; on a miss, runs \p Gen — a callable
  /// `GenerateResult Gen(CodeCache::RegionAlloc &)` that typically wraps
  /// generateWithRetry with the RegionAlloc as its allocator — exactly
  /// once per key, while concurrent same-key callers block until the
  /// result is published. A failed generation is reported through the
  /// returned Handle (to the generator *and* to every waiter) and the key
  /// is removed, so a later caller may retry.
  template <typename GenFn>
  Handle lookupOrGenerate(const std::string &Key, GenFn Gen) {
    Shard &S = shardFor(Key);
    std::shared_ptr<Entry> E;
    bool Creator = false;
    {
      std::lock_guard<std::mutex> Lock(S.M);
      auto It = S.Map.find(Key);
      if (It != S.Map.end()) {
        E = It->second;
      } else {
        E = std::make_shared<Entry>(*this, Key);
        S.Map.emplace(Key, E);
        Creator = true;
      }
    }
    E->LastUse.store(Tick.fetch_add(1, std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);

    if (!Creator) {
      // Hit, possibly on an entry still generating: block-and-reuse.
      CtHits.inc();
      std::unique_lock<std::mutex> Lock(E->M);
      E->CV.wait(Lock, [&] { return E->St != State::Generating; });
      return Handle(std::move(E));
    }

    CtMisses.inc();
    RegionAlloc RA(*this);
    VCODE_TM_TICK(TmGenStart);
    GenerateResult R = Gen(RA);
    VCODE_TM_SPAN("cache.generate", TmGenStart);
    if (R.ok()) {
      {
        std::lock_guard<std::mutex> Lock(E->M);
        E->Cur = makeVersion(R, RA, E->Key);
        E->St = State::Ready;
      }
      E->CV.notify_all();
      CtGenerations.inc();
      evictIfNeeded(S);
      return Handle(std::move(E));
    }

    // Failure: the last attempt's region is unused — recycle it, publish
    // the error to waiters, and drop the key so a retry can regenerate.
    if (RA.CurBytes)
      reclaimRegion(RA.CurAddr, RA.CurBytes);
    {
      std::lock_guard<std::mutex> Lock(E->M);
      E->Err = R.Err;
      E->St = State::Failed;
    }
    E->CV.notify_all();
    CtFailures.inc();
    {
      std::lock_guard<std::mutex> Lock(S.M);
      auto It = S.Map.find(Key);
      if (It != S.Map.end() && It->second == E)
        S.Map.erase(It);
    }
    return Handle(std::move(E));
  }

  /// Promotes \p Key's entry: regenerates through \p Gen (same callable
  /// shape as lookupOrGenerate's — typically generateWithRetry at
  /// Tier-1) and atomically swaps the entry's code version while
  /// concurrent dispatchers keep executing the old one through their
  /// pins. Exactly one caller per entry ever runs the generator (an
  /// atomic gate that stays closed after success and reopens on
  /// failure); everyone else returns false immediately. Returns true
  /// when this call performed the swap.
  template <typename GenFn>
  bool promote(const std::string &Key, GenFn Gen) {
    Shard &S = shardFor(Key);
    std::shared_ptr<Entry> E;
    {
      std::lock_guard<std::mutex> Lock(S.M);
      auto It = S.Map.find(Key);
      if (It == S.Map.end())
        return false;
      E = It->second;
    }
    {
      std::lock_guard<std::mutex> Lock(E->M);
      if (E->St != State::Ready)
        return false;
    }
    if (E->Promoting.exchange(true, std::memory_order_acq_rel))
      return false; // someone else is (or already has) promoted
    RegionAlloc RA(*this);
    VCODE_TM_TICK(TmPromoteStart);
    GenerateResult R = Gen(RA);
    VCODE_TM_SPAN("cache.promote", TmPromoteStart);
    if (!R.ok()) {
      if (RA.CurBytes)
        reclaimRegion(RA.CurAddr, RA.CurBytes);
      CtPromoteFailures.inc();
      E->Promoting.store(false, std::memory_order_release);
      return false;
    }
    std::shared_ptr<const Version> Old;
    {
      std::lock_guard<std::mutex> Lock(E->M);
      Old = std::move(E->Cur);
      E->Cur = makeVersion(R, RA, E->Key);
    }
    // Old's region is reclaimed when the last pinned dispatcher drops it
    // (possibly right here, when nobody was mid-call).
    Old.reset();
    CtPromotions.inc();
    return true;
  }

  /// Probes for \p Key without generating. The returned Handle is empty
  /// on a miss and also while the key is still generating (a probe never
  /// blocks). Does not count as a hit or miss.
  Handle lookup(const std::string &Key) {
    Shard &S = shardFor(Key);
    std::lock_guard<std::mutex> Lock(S.M);
    auto It = S.Map.find(Key);
    if (It == S.Map.end())
      return Handle();
    std::lock_guard<std::mutex> ELock(It->second->M);
    if (It->second->St != State::Ready)
      return Handle();
    return Handle(It->second);
  }

  /// Current counter values (exact once concurrent calls have returned).
  Stats stats() const {
    Stats S;
    S.Hits = CtHits.value();
    S.Misses = CtMisses.value();
    S.Generations = CtGenerations.value();
    S.Failures = CtFailures.value();
    S.Evictions = CtEvictions.value();
    S.RegionsReused = CtRegionsReused.value();
    S.Promotions = CtPromotions.value();
    S.PromoteFailures = CtPromoteFailures.value();
    std::lock_guard<std::mutex> Lock(PoolMutex);
    for (const auto &[Bytes, Addr] : FreePool) {
      (void)Addr;
      S.PooledBytes += Bytes;
    }
    return S;
  }

  /// Number of entries currently cached (sums shard sizes; approximate
  /// while lookups run concurrently).
  size_t size() const {
    size_t N = 0;
    for (const Shard &S : ShardVec) {
      std::lock_guard<std::mutex> Lock(S.M);
      N += S.Map.size();
    }
    return N;
  }

  /// The arena the cached code lives in.
  sim::Memory &memory() { return Mem; }

private:
  struct Shard {
    mutable std::mutex M;
    std::unordered_map<std::string, std::shared_ptr<Entry>> Map;
  };

  Shard &shardFor(const std::string &Key) {
    size_t H = std::hash<std::string>{}(Key);
    return ShardVec[H % ShardVec.size()];
  }

  /// Wraps a successful generation's region into a refcounted Version,
  /// taking ownership from the RegionAlloc.
  std::shared_ptr<const Version> makeVersion(const GenerateResult &R,
                                             RegionAlloc &RA,
                                             const std::string &Key) {
    auto V = std::make_shared<Version>(*this);
    V->Code = R.Code;
    V->RegionAddr = RA.CurAddr;
    V->RegionBytes = RA.CurBytes;
    V->GenTier = R.GenTier;
    // v_end published this region under a synthetic name; rename it to
    // the cache key and record the tier actually generated.
    profile::CodeMap::instance().annotate(RA.CurAddr, Key, R.GenTier);
    return V;
  }

  /// Serves a code region, preferring the smallest pooled region that
  /// fits; falls back to the (thread-safe) arena bump allocator.
  CodeMem allocRegion(size_t Bytes) {
    {
      std::lock_guard<std::mutex> Lock(PoolMutex);
      auto It = FreePool.lower_bound(Bytes);
      if (It != FreePool.end()) {
        CodeMem M;
        M.Guest = It->second;
        M.Size = It->first;
        FreePool.erase(It);
        M.Host = Mem.hostPtr(M.Guest, M.Size);
        M.Arena = &Mem;
        M.Source = RegionSource;
        CtRegionsReused.inc();
        return M;
      }
    }
    CodeMem M = Mem.allocCode(Bytes);
    M.Source = RegionSource;
    return M;
  }

  /// Overflow-diagnostic provenance for cache-managed regions: the caller
  /// never sized these, so "pass a larger region to v_lambda" is wrong.
  static constexpr const char *RegionSource =
      "the region came from the CodeCache region pool (generateWithRetry "
      "grows it on overflow)";

  /// Returns a region to the free pool (called by Entry destruction and
  /// by RegionAlloc when an attempt's region is abandoned).
  void reclaimRegion(SimAddr Addr, size_t Bytes) {
    std::lock_guard<std::mutex> Lock(PoolMutex);
    FreePool.emplace(Bytes, Addr);
  }

  /// Evicts least-recently-used Ready entries from \p S until it is back
  /// under capacity. Entries still generating are never evicted; evicted
  /// entries live on through any outstanding Handles.
  void evictIfNeeded(Shard &S) {
    std::lock_guard<std::mutex> Lock(S.M);
    while (S.Map.size() > Opts.MaxEntriesPerShard) {
      auto Victim = S.Map.end();
      uint64_t Oldest = ~uint64_t(0);
      for (auto It = S.Map.begin(); It != S.Map.end(); ++It) {
        std::lock_guard<std::mutex> ELock(It->second->M);
        if (It->second->St != State::Ready)
          continue;
        uint64_t Use = It->second->LastUse.load(std::memory_order_relaxed);
        if (Use < Oldest) {
          Oldest = Use;
          Victim = It;
        }
      }
      if (Victim == S.Map.end())
        return; // everything is mid-generation; nothing evictable
      S.Map.erase(Victim);
      CtEvictions.inc();
    }
  }

  sim::Memory &Mem;
  Options Opts;

  // Declared before the shards so entry destructors running during shard
  // teardown can still reclaim into a live pool.
  mutable std::mutex PoolMutex;
  std::multimap<size_t, SimAddr> FreePool; ///< size -> region base

  std::vector<Shard> ShardVec;

  std::atomic<uint64_t> Tick{0};

  // Instance-owned telemetry counters: lock-free sharded increments, exact
  // per-cache values via value()/stats(), and automatic aggregation into
  // the global registry report (folded into retired totals when the cache
  // is destroyed). Names are process-wide; multiple caches sum in the
  // report but never cross-contaminate each other's stats().
  telemetry::Counter CtHits{"cache.hits"};
  telemetry::Counter CtMisses{"cache.misses"};
  telemetry::Counter CtGenerations{"cache.generations"};
  telemetry::Counter CtFailures{"cache.failures"};
  telemetry::Counter CtEvictions{"cache.evictions"};
  telemetry::Counter CtRegionsReused{"cache.regions_reused"};
  telemetry::Counter CtPromotions{"cache.promotions"};
  telemetry::Counter CtPromoteFailures{"cache.promote_failures"};
};

} // namespace vcode

#endif // VCODE_CORE_CODECACHE_H
