//===- core/Target.cpp - Backend interface --------------------------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "core/Target.h"
#include <cstdio>

using namespace vcode;

// Virtual method anchor.
Target::~Target() = default;

std::string Target::disassemble(uint32_t Word, SimAddr Pc) const {
  (void)Pc;
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), ".word   0x%08x", Word);
  return Buf;
}

ExtId Target::defineInstruction(const std::string &Name, ExtensionFn Fn) {
  std::lock_guard<std::mutex> Lock(ExtMutex);
  auto It = ExtIndex.find(Name);
  if (It != ExtIndex.end()) {
    // Override: replace the body in place so ids interned before the
    // redefinition keep resolving (and see the new body). Racy against
    // concurrent emission of this same id — see the ordering guarantee
    // in Target.h: redefinition happens-before the next emission.
    ExtFns[It->second] = std::move(Fn);
    return ExtId{It->second};
  }
  uint32_t Idx = ExtCount.load(std::memory_order_relaxed);
  if (Idx >= MaxExtensions)
    fatal("extension registry full (%u instructions) on target %s",
          unsigned(MaxExtensions), info().Name);
  ExtFns.push_back(std::move(Fn)); // capacity reserved: no reallocation
  ExtNames.push_back(Name);
  ExtIndex.emplace(Name, Idx);
  // Publish: emitExtension acquire-loads the count, so the body written
  // above is visible on any thread that sees the new id as in range.
  ExtCount.store(Idx + 1, std::memory_order_release);
  return ExtId{Idx};
}

ExtId Target::findInstruction(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(ExtMutex);
  auto It = ExtIndex.find(Name);
  return It == ExtIndex.end() ? ExtId{} : ExtId{It->second};
}

const char *Target::instructionName(ExtId Id) const {
  std::lock_guard<std::mutex> Lock(ExtMutex);
  if (!Id.isValid() || Id.Idx >= ExtNames.size())
    return "<invalid>";
  return ExtNames[Id.Idx].c_str();
}

void Target::emitExtension(VCode &VC, const std::string &Name,
                           const Operand *Ops, unsigned NumOps) {
  ExtId Id = findInstruction(Name);
  if (!Id.isValid())
    fatal("unknown extension instruction '%s' on target %s", Name.c_str(),
          info().Name);
  ExtFns[Id.Idx](VC, Ops, NumOps);
}
