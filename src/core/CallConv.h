//===- core/CallConv.h - Calling convention descriptions --------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Data-driven calling convention descriptions. VCODE handles calling
/// conventions for the client (paper §3.2) and allows clients to substitute
/// conventions on a per-generated-function basis (paper §5.4). The
/// convention is described by data (argument registers, result registers,
/// stack layout constants) interpreted by shared placement logic, so a
/// client can swap in a custom convention without touching a backend.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_CORE_CALLCONV_H
#define VCODE_CORE_CALLCONV_H

#include "core/Reg.h"
#include "core/Types.h"
#include <cstdint>
#include <vector>

namespace vcode {

/// Where one argument of a call lives at the call boundary.
struct ArgLoc {
  Type Ty = Type::V;
  bool OnStack = false;
  Reg R;             ///< valid when !OnStack
  int32_t StackOff = 0; ///< byte offset into the outgoing-argument area
};

/// A calling convention: argument/result registers plus stack rules.
///
/// Placement rule (uniform across targets in this reproduction, documented
/// in DESIGN.md): arguments are scanned left to right; integer/pointer
/// arguments take the next free register of IntArgRegs, floating-point
/// arguments the next of FpArgRegs; once the respective list is exhausted
/// the argument is passed in the outgoing-argument area at the next
/// naturally-aligned offset.
struct CallConv {
  std::vector<Reg> IntArgRegs;
  std::vector<Reg> FpArgRegs;
  Reg IntRet; ///< integer/pointer result register
  Reg FpRet;  ///< floating-point result register
  /// Register holding the return address on entry. Defaults to the
  /// machine's standard link register; substituted conventions (e.g. the
  /// Alpha division helpers, paper §5.2) may pick another so leaf callers
  /// need not save their own link register.
  Reg LinkReg;
  /// Bytes always reserved at the bottom of a non-leaf frame for outgoing
  /// arguments, even when every argument is in registers (MIPS O32 style
  /// home area). May be zero.
  uint32_t MinOutArgBytes = 0;
};

/// Computes the location of every argument of a call with argument types
/// \p ArgTypes under convention \p CC. \p WordBytes is the target word size
/// (stack slots are word-granular; doubles take 8 bytes always).
inline std::vector<ArgLoc> computeArgLocs(const CallConv &CC,
                                          const std::vector<Type> &ArgTypes,
                                          unsigned WordBytes) {
  std::vector<ArgLoc> Locs;
  Locs.reserve(ArgTypes.size());
  size_t NextInt = 0, NextFp = 0;
  uint32_t StackOff = 0;
  for (Type T : ArgTypes) {
    ArgLoc L;
    L.Ty = T;
    bool IsFp = isFpType(T);
    const std::vector<Reg> &Regs = IsFp ? CC.FpArgRegs : CC.IntArgRegs;
    size_t &Next = IsFp ? NextFp : NextInt;
    if (Next < Regs.size()) {
      L.OnStack = false;
      L.R = Regs[Next++];
    } else {
      unsigned Size = typeSize(T, WordBytes);
      if (Size < WordBytes)
        Size = WordBytes; // promote sub-word arguments to a full slot
      StackOff = uint32_t((StackOff + Size - 1) & ~uint32_t(Size - 1));
      L.OnStack = true;
      L.StackOff = int32_t(StackOff);
      StackOff += Size;
    }
    Locs.push_back(L);
  }
  return Locs;
}

/// Returns the number of outgoing-argument-area bytes a call with locations
/// \p Locs needs under convention \p CC.
inline uint32_t outArgBytes(const CallConv &CC, const std::vector<ArgLoc> &Locs,
                            unsigned WordBytes) {
  uint32_t Max = CC.MinOutArgBytes;
  for (const ArgLoc &L : Locs)
    if (L.OnStack) {
      uint32_t End = uint32_t(L.StackOff) + typeSize(L.Ty, WordBytes);
      if (End > Max)
        Max = End;
    }
  return Max;
}

} // namespace vcode

#endif // VCODE_CORE_CALLCONV_H
