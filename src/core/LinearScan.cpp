//===- core/LinearScan.cpp - Linear-scan register allocation ---------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "core/LinearScan.h"
#include <algorithm>
#include <cassert>

using namespace vcode;

namespace {

struct Interval {
  int32_t V = -1;
  uint32_t Start = 0;
  uint32_t End = 0;
  bool Fp = false;
};

} // namespace

LsResult vcode::linearScan(const std::vector<LsVRegInfo> &VRegs,
                           const std::vector<LsOpRefs> &Ops,
                           const std::vector<LsEdge> &BackEdges,
                           const std::vector<Reg> &IntPool,
                           const std::vector<Reg> &FpPool) {
  LsResult R;
  R.Assign.resize(VRegs.size());

  // Build [first ref, last ref] intervals.
  std::vector<Interval> Iv;
  std::vector<int32_t> IvOf(VRegs.size(), -1);
  auto Ref = [&](int32_t V, uint32_t Pos) {
    if (V < 0)
      return;
    assert(size_t(V) < VRegs.size() && "bad vreg reference");
    if (IvOf[V] < 0) {
      IvOf[V] = int32_t(Iv.size());
      Iv.push_back({V, Pos, Pos, isFpType(VRegs[V].Ty)});
    } else {
      Iv[IvOf[V]].End = Pos;
    }
  };
  for (uint32_t P = 0; P < Ops.size(); ++P) {
    Ref(Ops[P].Use0, P);
    Ref(Ops[P].Use1, P);
    Ref(Ops[P].Def, P);
  }

  // Loop extension: a value live at a backward branch's target must
  // survive to the branch (it is needed again next iteration). Iterate
  // to a fixpoint so nested loops compose.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const LsEdge &E : BackEdges) {
      if (E.Target > E.Pos)
        continue; // forward edge: no extension needed
      for (Interval &I : Iv) {
        if (I.Start <= E.Target && I.End >= E.Target && I.End < E.Pos) {
          I.End = E.Pos;
          Changed = true;
        }
      }
    }
  }

  // Pre-colored vregs keep their register and never compete for a pool.
  for (size_t V = 0; V < VRegs.size(); ++V)
    if (VRegs[V].Pre.isValid())
      R.Assign[V].Phys = VRegs[V].Pre;

  std::vector<uint32_t> Order(Iv.size());
  for (uint32_t I = 0; I < Order.size(); ++I)
    Order[I] = I;
  std::stable_sort(Order.begin(), Order.end(), [&](uint32_t A, uint32_t B) {
    return Iv[A].Start < Iv[B].Start;
  });

  struct PoolState {
    const std::vector<Reg> &Regs;
    std::vector<bool> Busy;          // by pool index
    std::vector<uint32_t> Active;    // interval indices, unsorted
    std::vector<int32_t> RegIdxOf;   // interval -> pool index
    unsigned HighWater = 0;
    explicit PoolState(const std::vector<Reg> &P, size_t NIv)
        : Regs(P), Busy(P.size(), false), RegIdxOf(NIv, -1) {}
  };
  PoolState Int(IntPool, Iv.size()), Fp(FpPool, Iv.size());

  for (uint32_t Idx : Order) {
    const Interval &I = Iv[Idx];
    if (VRegs[I.V].Pre.isValid())
      continue;
    PoolState &PS = I.Fp ? Fp : Int;

    // Expire intervals that ended strictly before this one starts.
    for (size_t A = 0; A < PS.Active.size();) {
      if (Iv[PS.Active[A]].End < I.Start) {
        PS.Busy[PS.RegIdxOf[PS.Active[A]]] = false;
        PS.Active[A] = PS.Active.back();
        PS.Active.pop_back();
      } else {
        ++A;
      }
    }

    // Lowest free pool index = most-preferred register.
    int32_t FreeIdx = -1;
    for (size_t K = 0; K < PS.Busy.size(); ++K)
      if (!PS.Busy[K]) {
        FreeIdx = int32_t(K);
        break;
      }
    if (FreeIdx >= 0) {
      PS.Busy[FreeIdx] = true;
      PS.RegIdxOf[Idx] = FreeIdx;
      PS.Active.push_back(Idx);
      R.Assign[I.V].Phys = PS.Regs[FreeIdx];
      PS.HighWater = std::max(PS.HighWater, unsigned(FreeIdx) + 1);
      continue;
    }

    // Pressure: spill the interval with the furthest end (it blocks a
    // register for the longest time).
    uint32_t Victim = Idx;
    size_t VictimAt = SIZE_MAX;
    for (size_t A = 0; A < PS.Active.size(); ++A)
      if (Iv[PS.Active[A]].End > Iv[Victim].End) {
        Victim = PS.Active[A];
        VictimAt = A;
      }
    if (Victim != Idx) {
      int32_t StolenIdx = PS.RegIdxOf[Victim];
      R.Assign[Iv[Victim].V] = LsAssignment{Reg{}, true};
      PS.RegIdxOf[Victim] = -1;
      PS.RegIdxOf[Idx] = StolenIdx;
      PS.Active[VictimAt] = Idx;
      R.Assign[I.V].Phys = PS.Regs[StolenIdx];
    } else {
      R.Assign[I.V] = LsAssignment{Reg{}, true};
    }
    ++R.Spills;
  }

  R.IntRegsUsed = Int.HighWater;
  R.FpRegsUsed = Fp.HighWater;
  return R;
}
