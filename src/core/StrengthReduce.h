//===- core/StrengthReduce.h - mul/div-by-constant reducer -----*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The strength reducer of paper §5.4: "we have built a sophisticated
/// strength reducer for multiplication and division by integer constants on
/// top of VCODE". It is layered strictly above the core — it expands into
/// core shift/add/sub instructions — so registering it on any ported target
/// works unmodified (the extension-layer portability property of §3.1).
///
/// Registered instructions:
///   "mulki"  (rd, rs, imm)  — multiply by a constant, type i
///   "mulkl"  (rd, rs, imm)  — multiply by a constant, type l
///   "divki"  (rd, rs, imm)  — signed divide by a power-of-two constant
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_CORE_STRENGTHREDUCE_H
#define VCODE_CORE_STRENGTHREDUCE_H

#include "core/Target.h"

namespace vcode {

/// Registers the strength-reduction extension instructions on \p T.
void registerStrengthReduce(Target &T);

/// Expansion used by "mulki"/"mulkl": multiplies \p Rs by the constant
/// \p K into \p Rd using shifts and adds when profitable, falling back to
/// the core multiply otherwise. \p Rd must differ from \p Rs.
void emitMulConst(VCode &VC, Type Ty, Reg Rd, Reg Rs, int64_t K);

/// Expansion used by "divki": signed division by a power of two with
/// correct round-toward-zero behaviour for negative dividends.
void emitDivPow2(VCode &VC, Type Ty, Reg Rd, Reg Rs, int64_t K);

} // namespace vcode

#endif // VCODE_CORE_STRENGTHREDUCE_H
