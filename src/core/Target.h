//===- core/Target.h - Backend interface ------------------------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The retargeting interface. A backend ("port" in the paper's terms)
/// supplies a TargetInfo describing its register file and conventions plus
/// emitters that transliterate each VCODE instruction into machine words
/// in place. Porting VCODE to a new RISC machine means implementing this
/// interface (paper §3.3: "one to four days").
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_CORE_TARGET_H
#define VCODE_CORE_TARGET_H

#include "core/CallConv.h"
#include "support/BitUtils.h"
#include "core/CodeBuffer.h"
#include "core/Ops.h"
#include "core/Reg.h"
#include "core/Types.h"
#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace vcode {

class VCode;

/// Static description of a target machine.
struct TargetInfo {
  const char *Name = "?";
  unsigned WordBytes = 4;          ///< 4 (MIPS/SPARC) or 8 (Alpha/x64)
  bool HasBranchDelaySlot = false; ///< MIPS/SPARC: one branch delay slot
  unsigned LoadDelaySlots = 0;     ///< architectural load-use delay (MIPS I)
  /// Smallest instruction element the port emits: 4 on the fixed-width
  /// RISC ports, 1 on variable-length x86-64. This is the CodeBuffer
  /// unit; all fixup/word indices are in these units.
  unsigned CodeUnitBytes = 4;

  Reg Zero; ///< hardwired zero register
  Reg At;   ///< assembler temporary, reserved for synthesis sequences
  Reg Sp;   ///< stack pointer
  Reg Ra;   ///< return-address register

  /// Allocation candidates in priority order (paper §3.2: the client can
  /// re-declare the ordering; these are the defaults).
  std::vector<Reg> IntTemps; ///< caller-saved integer registers
  std::vector<Reg> IntSaves; ///< callee-saved integer registers
  std::vector<Reg> FpTemps;  ///< caller-saved FP registers
  std::vector<Reg> FpSaves;  ///< callee-saved FP registers

  CallConv DefaultCC;

  /// Fixed bytes reserved at the bottom of every non-leaf frame for
  /// outgoing arguments (the space-for-time trade of paper §5.2).
  uint32_t OutArgReserveBytes = 32;

  /// Worst-case register save area, reserved in every frame (paper §5.2:
  /// "it simply allocates the space needed to save all machine registers
  /// ... in the worst case, the stack space required to save 32 integer
  /// and floating point registers"). One slot per register number so that
  /// dynamically reclassified registers (paper §5.3 interrupt-handler mode)
  /// have a home too: link slot + 32 integer slots + 32 FP slots.
  uint32_t saveAreaBytes() const {
    return uint32_t(alignTo(33 * WordBytes, 8)) + 32 * 8;
  }

  /// SP offset of the save slot for integer register \p N (slot 32 within
  /// the integer area is the link register's).
  uint32_t intSaveSlot(unsigned N) const {
    return OutArgReserveBytes + N * WordBytes;
  }
  /// SP offset of the link register's save slot.
  uint32_t linkSaveSlot() const { return OutArgReserveBytes + 32 * WordBytes; }
  /// SP offset of the save slot for FP register \p N.
  uint32_t fpSaveSlot(unsigned N) const {
    return uint32_t(alignTo(OutArgReserveBytes + 33 * WordBytes, 8)) + N * 8;
  }

  /// SP offset where locals start (above out-args and the save area).
  uint32_t localAreaBase() const {
    return OutArgReserveBytes + saveAreaBytes();
  }
};

/// Operand of a client-defined extension instruction (paper §5.4).
struct Operand {
  enum KindType : uint8_t { RegOp, ImmOp, FpImmOp, LabelOp } Kind = ImmOp;
  Reg R;
  int64_t Imm = 0;
  double FpImm = 0;
  Label L;
};

/// Makes a register operand.
inline Operand opReg(Reg R) {
  Operand O;
  O.Kind = Operand::RegOp;
  O.R = R;
  return O;
}
/// Makes an immediate operand.
inline Operand opImm(int64_t V) {
  Operand O;
  O.Kind = Operand::ImmOp;
  O.Imm = V;
  return O;
}
/// Makes a floating-point immediate operand.
inline Operand opFpImm(double V) {
  Operand O;
  O.Kind = Operand::FpImmOp;
  O.FpImm = V;
  return O;
}
/// Makes a label operand.
inline Operand opLabel(Label L) {
  Operand O;
  O.Kind = Operand::LabelOp;
  O.L = L;
  return O;
}

/// Body of an extension instruction: emits code through the VCode state.
using ExtensionFn =
    std::function<void(VCode &, const Operand *Ops, unsigned NumOps)>;

/// Interned identity of an extension instruction on one Target
/// (paper §5.4). The string name is looked up once — at defineInstruction
/// or findInstruction time — and emission indexes a flat vector, so the
/// per-emission cost of an extension instruction is one bounds check and
/// an indirect call. Ids are only meaningful on the Target that issued
/// them; a redefined instruction keeps its id (the body is replaced in
/// place), so captured ids always see the latest override.
struct ExtId {
  uint32_t Idx = ~0u;

  constexpr bool isValid() const { return Idx != ~0u; }
};

/// Abstract backend. All emit methods write machine words into
/// VCode::buf() immediately — there is no intermediate representation.
class Target {
public:
  virtual ~Target();

  virtual const TargetInfo &info() const = 0;

  // --- Instruction transliteration (paper Table 2) -----------------------
  virtual void emitBinop(VCode &VC, BinOp Op, Type Ty, Reg Rd, Reg Rs1,
                         Reg Rs2) = 0;
  virtual void emitBinopImm(VCode &VC, BinOp Op, Type Ty, Reg Rd, Reg Rs1,
                            int64_t Imm) = 0;
  virtual void emitUnop(VCode &VC, UnOp Op, Type Ty, Reg Rd, Reg Rs) = 0;
  virtual void emitSetInt(VCode &VC, Type Ty, Reg Rd, uint64_t Imm) = 0;
  virtual void emitSetFp(VCode &VC, Type Ty, Reg Rd, double Val) = 0;
  virtual void emitCvt(VCode &VC, Type From, Type To, Reg Rd, Reg Rs) = 0;
  virtual void emitLoad(VCode &VC, Type Ty, Reg Rd, Reg Base, Reg Off) = 0;
  virtual void emitLoadImm(VCode &VC, Type Ty, Reg Rd, Reg Base,
                           int64_t Off) = 0;
  virtual void emitStore(VCode &VC, Type Ty, Reg Val, Reg Base, Reg Off) = 0;
  virtual void emitStoreImm(VCode &VC, Type Ty, Reg Val, Reg Base,
                            int64_t Off) = 0;
  virtual void emitBranch(VCode &VC, Cond C, Type Ty, Reg Rs1, Reg Rs2,
                          Label L) = 0;
  virtual void emitBranchImm(VCode &VC, Cond C, Type Ty, Reg Rs1, int64_t Imm,
                             Label L) = 0;
  virtual void emitJump(VCode &VC, Label L) = 0;
  virtual void emitJumpReg(VCode &VC, Reg R) = 0;
  virtual void emitJumpAddr(VCode &VC, SimAddr A) = 0;
  virtual void emitCallAddr(VCode &VC, SimAddr A) = 0;
  virtual void emitCallLabel(VCode &VC, Label L) = 0;
  /// Return-through-link-register for local subroutines entered with
  /// callLabel/callReg (accounts for the machine's link semantics, e.g.
  /// SPARC linking to the call site rather than past it).
  virtual void emitLinkReturn(VCode &VC) = 0;
  virtual void emitCallReg(VCode &VC, Reg R) = 0;
  virtual void emitRet(VCode &VC, Type Ty, Reg Rs) = 0;
  /// Return an integer constant: materialize \p Imm into the result
  /// register and return, as one fused sequence. On delay-slot machines a
  /// small constant rides the return's slot (one instruction shorter than
  /// setInt + ret); machines without a slot skip the result move.
  virtual void emitRetImm(VCode &VC, Type Ty, int64_t Imm) = 0;
  virtual void emitNop(VCode &VC) = 0;

  // --- Function framing ---------------------------------------------------
  /// Called by v_lambda after argument locations are known: reserves
  /// prologue space in the instruction stream (paper §5.2).
  virtual void beginFunction(VCode &VC) = 0;
  /// Called by v_end: writes the real prologue into the reserved area,
  /// emits the epilogue (or rewrites returns when none is needed) and
  /// returns the entry address.
  virtual CodePtr endFunction(VCode &VC) = 0;
  /// Completes one patch site now that the label address is known.
  virtual void applyFixup(VCode &VC, const Fixup &F, SimAddr Target) = 0;

  // --- Debugging (paper §6.2) ----------------------------------------------
  /// Symbolic disassembly of one emitted instruction word; ports override
  /// (default prints a raw .word). This is the §6.2 "symbolic debugger"
  /// support the paper names as its most critical missing piece.
  virtual std::string disassemble(uint32_t Word, SimAddr Pc) const;

  // --- Extensibility (paper §5.4) -----------------------------------------
  //
  // Thread-safety / ordering guarantee of the registry: registration and
  // lookup (defineInstruction / findInstruction / hasInstruction) may be
  // called concurrently from any number of threads; each call is atomic.
  // Emission through a valid ExtId (emitExtension) takes no lock and may
  // run concurrently with registration of *other* instructions: the id
  // count is published with release/acquire ordering and the registry's
  // storage never reallocates, so an ExtId obtained from any thread is
  // immediately usable on every thread. The one operation requiring
  // external ordering is *redefinition*: replacing the body of a name
  // while another thread is emitting that same id is a race — redefine
  // only during setup, or synchronize with the emitting threads.

  /// Registers an extension instruction under \p Name and returns its
  /// interned id. Redefining an existing name replaces the body in place,
  /// so previously interned ids observe the override. Thread-safe against
  /// concurrent registration, lookup, and emission of other ids.
  ExtId defineInstruction(const std::string &Name, ExtensionFn Fn);
  /// Interns \p Name; returns an invalid ExtId if it was never defined.
  /// Thread-safe.
  ExtId findInstruction(const std::string &Name) const;
  /// True if \p Name names a registered extension.
  bool hasInstruction(const std::string &Name) const {
    return findInstruction(Name).isValid();
  }
  /// Name of a registered extension (diagnostics).
  const char *instructionName(ExtId Id) const;

  /// Emits a pre-interned extension instruction: the hot path — no string
  /// lookup and no lock, just an acquire-load of the published id count
  /// and an index into the (reallocation-free) registry.
  void emitExtension(VCode &VC, ExtId Id, const Operand *Ops,
                     unsigned NumOps) {
    if (!Id.isValid() || Id.Idx >= ExtCount.load(std::memory_order_acquire))
      fatal("unknown extension instruction id %u on target %s",
            unsigned(Id.Idx), info().Name);
    ExtFns[Id.Idx](VC, Ops, NumOps);
  }
  /// Emits extension \p Name; fatal error if it was never defined. The
  /// string-keyed facade over the interned registry (pays one map lookup
  /// under the registry lock).
  void emitExtension(VCode &VC, const std::string &Name, const Operand *Ops,
                     unsigned NumOps);

  /// Capacity bound of the extension registry. Fixed so the flat body
  /// vector never reallocates, which is what lets emitExtension index it
  /// without taking ExtMutex while another thread registers.
  static constexpr uint32_t MaxExtensions = 4096;

protected:
  Target() { ExtFns.reserve(MaxExtensions); }

private:
  /// Flat interned registry: bodies and names indexed by ExtId::Idx. The
  /// string map is consulted only at define/find time, never at emission.
  /// ExtMutex guards all mutation plus the string map; readers of ExtFns
  /// synchronize through the release-store of ExtCount in
  /// defineInstruction (the vector's capacity is reserved up front, so
  /// elements below ExtCount are never moved).
  mutable std::mutex ExtMutex;
  std::vector<ExtensionFn> ExtFns;
  std::atomic<uint32_t> ExtCount{0};
  std::deque<std::string> ExtNames; // deque: names stay pinned for c_str()
  std::map<std::string, uint32_t> ExtIndex;
};

} // namespace vcode

#endif // VCODE_CORE_TARGET_H
