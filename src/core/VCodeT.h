//===- core/VCodeT.h - Statically dispatched emission core ------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// VCodeT<TargetT>: the VCode client interface specialized for one concrete
/// backend. It derives from VCode (so all lifecycle, register, label, call
/// and fixup machinery — and every API taking a VCode& — work unchanged)
/// and re-declares the dispatch primitives to call the backend's ins*
/// emitters directly on a TargetT reference. The typed instruction families
/// (addii, ldii, bneii, ...) are re-expanded from Instructions.inc inside
/// this class, so they bind to the shadowing primitives by name hiding and
/// the whole chain from `vc.addii(...)` down to `*v_ip++ = w` is visible to
/// the inliner: no virtual call per emitted instruction, which is how the
/// paper's macro-based VCODE hits ~10 host instructions per generated one
/// (§1, Fig. 2).
///
/// Use VCodeT<MipsTarget> when the backend is known at compile time (the
/// common client case); use plain VCode when it genuinely varies at
/// runtime. A VCodeT is-a VCode, so code written against VCode& accepts
/// either (and pays virtual dispatch). Each backend's .cpp explicitly
/// instantiates its VCodeT so clients including the backend header link
/// against one shared instantiation.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_CORE_VCODET_H
#define VCODE_CORE_VCODET_H

#include "core/VCode.h"
#include <cassert>

namespace vcode {

template <class TargetT> class VCodeT : public VCode {
public:
  explicit VCodeT(TargetT &Tgt) : VCode(Tgt), DT(Tgt) {}

  /// The concrete backend (shadows VCode::target's type-erased result).
  TargetT &target() { return DT; }

  // --- Statically dispatched primitives -------------------------------------
  // Shadow the VCode dispatch wrappers: same names and signatures, but the
  // callee is the backend's non-virtual inline emitter.

  void binop(BinOp Op, Type Ty, Reg Rd, Reg Rs1, Reg Rs2) {
    DT.insBinop(*this, Op, Ty, Rd, Rs1, Rs2);
  }
  void binopImm(BinOp Op, Type Ty, Reg Rd, Reg Rs1, int64_t Imm) {
    DT.insBinopImm(*this, Op, Ty, Rd, Rs1, Imm);
  }
  void unop(UnOp Op, Type Ty, Reg Rd, Reg Rs) {
    DT.insUnop(*this, Op, Ty, Rd, Rs);
  }
  void cvt(Type From, Type To, Reg Rd, Reg Rs) {
    DT.insCvt(*this, From, To, Rd, Rs);
  }
  void load(Type Ty, Reg Rd, Reg Base, Reg Off) {
    DT.insLoad(*this, Ty, Rd, Base, Off);
  }
  void loadImm(Type Ty, Reg Rd, Reg Base, int64_t Off) {
    DT.insLoadImm(*this, Ty, Rd, Base, Off);
  }
  void store(Type Ty, Reg Val, Reg Base, Reg Off) {
    DT.insStore(*this, Ty, Val, Base, Off);
  }
  void storeImm(Type Ty, Reg Val, Reg Base, int64_t Off) {
    DT.insStoreImm(*this, Ty, Val, Base, Off);
  }
  void branch(Cond C, Type Ty, Reg A, Reg B, Label L) {
    DT.insBranch(*this, C, Ty, A, B, L);
  }
  void branchImm(Cond C, Type Ty, Reg A, int64_t Imm, Label L) {
    DT.insBranchImm(*this, C, Ty, A, Imm, L);
  }
  void jmp(Label L) { DT.insJump(*this, L); }
  void jmpr(Reg R) { DT.insJumpReg(*this, R); }
  void jmpi(SimAddr A) { DT.insJumpAddr(*this, A); }
  void ret(Type Ty, Reg Rs) { DT.insRet(*this, Ty, Rs); }
  void retv() { DT.insRet(*this, Type::V, Reg()); }
  void retImm(Type Ty, int64_t Imm) { DT.insRetImm(*this, Ty, Imm); }
  void nop() { DT.insNop(*this); }
  void setInt(Type Ty, Reg Rd, uint64_t V) { DT.insSetInt(*this, Ty, Rd, V); }
  void setFp(Type Ty, Reg Rd, double V) { DT.insSetFp(*this, Ty, Rd, V); }
  void retlink() { DT.insLinkReturn(*this); }

  // Re-expand the typed per-type families against the shadowing primitives
  // above (the .inc #undef's its macros, so a second inclusion is clean).
#include "core/Instructions.inc"

  // --- Locals through the static path ---------------------------------------

  void loadLocal(Type Ty, Reg Rd, Local Lo) {
    assert(Lo.isValid() && "local never allocated");
    loadImm(Ty, Rd, spReg(), Lo.Off);
  }
  void storeLocal(Type Ty, Reg Rs, Local Lo) {
    assert(Lo.isValid() && "local never allocated");
    storeImm(Ty, Rs, spReg(), Lo.Off);
  }
  void localAddr(Reg Rd, Local Lo) {
    assert(Lo.isValid() && "local never allocated");
    binopImm(BinOp::Add, Type::P, Rd, spReg(), Lo.Off);
  }

private:
  TargetT &DT;
};

} // namespace vcode

#endif // VCODE_CORE_VCODET_H
