//===- core/EncTable.h - Constexpr encoding tables --------------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for per-target constexpr encoding tables. Backends map
/// a VCODE operation (Type, BinOp, Cond) to machine opcode fields with a
/// dense table lookup instead of a per-emission switch, so the common
/// "one VCODE instruction -> one machine word" case is a load, an or, and a
/// store — the paper's Fig. 2 cost model. Rows carry an explicit Valid flag
/// because 0 is a real opcode on every target (e.g. SPARC LD op3 is 0);
/// invalid rows route the operation to the backend's multi-word synthesis
/// path.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_CORE_ENCTABLE_H
#define VCODE_CORE_ENCTABLE_H

#include "core/Ops.h"
#include "core/Types.h"
#include <cstdint>

namespace vcode {

/// Enumerator counts for table sizing (kept next to the tables rather than
/// the enums so the enums stay pure interface).
inline constexpr unsigned NumBinOps = 10;
inline constexpr unsigned NumUnOps = 4;
inline constexpr unsigned NumConds = 6;

/// Dense constexpr lookup table indexed by a scoped enum. Built at compile
/// time with the set() builder inside an immediately-invoked constexpr
/// lambda; unset rows default-construct (Valid == false for the row types
/// below).
template <typename EnumT, typename RowT, unsigned N> class EncTable {
public:
  constexpr EncTable() : Rows{} {}

  constexpr EncTable &set(EnumT E, RowT R) {
    Rows[unsigned(E)] = R;
    return *this;
  }

  constexpr const RowT &operator[](EnumT E) const { return Rows[unsigned(E)]; }

private:
  RowT Rows[N];
};

template <typename RowT> using TypeEncTable = EncTable<Type, RowT, NumTypes>;
template <typename RowT>
using BinOpEncTable = EncTable<BinOp, RowT, NumBinOps>;
template <typename RowT> using CondEncTable = EncTable<Cond, RowT, NumConds>;

/// Row holding a single opcode field (major opcode, funct, op3, opf...).
struct OpEnc {
  uint16_t Op = 0;
  bool Valid = false;

  constexpr OpEnc() = default;
  constexpr OpEnc(unsigned Op) : Op(uint16_t(Op)), Valid(true) {}
};

/// Row holding a two-way opcode variant: signed/unsigned, single/double,
/// or 32/64-bit, selected with pick().
struct OpPairEnc {
  uint16_t A = 0;
  uint16_t B = 0;
  bool Valid = false;

  constexpr OpPairEnc() = default;
  constexpr OpPairEnc(unsigned A, unsigned B)
      : A(uint16_t(A)), B(uint16_t(B)), Valid(true) {}

  constexpr unsigned pick(bool Second) const { return Second ? B : A; }
};

/// Row describing a compare feeding a conditional branch: the compare
/// opcode variants plus whether the operands swap (Gt/Ge as reversed
/// Lt/Le) and whether the branch sense inverts (Ne as inverted Eq).
struct CmpEnc {
  uint16_t A = 0;
  uint16_t B = 0;
  bool Swap = false;
  bool Invert = false;
  bool Valid = false;

  constexpr CmpEnc() = default;
  constexpr CmpEnc(unsigned A, unsigned B, bool Swap = false,
                   bool Invert = false)
      : A(uint16_t(A)), B(uint16_t(B)), Swap(Swap), Invert(Invert),
        Valid(true) {}

  constexpr unsigned pick(bool Second) const { return Second ? B : A; }
};

} // namespace vcode

#endif // VCODE_CORE_ENCTABLE_H
