//===- core/Reg.h - Register handles and classes ----------------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register handles. The paper represents VCODE registers as one-word C
/// structs (for type checking) wrapping a physical register number; we do
/// the same. A Reg names either an integer or a floating-point physical
/// register of the current target.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_CORE_REG_H
#define VCODE_CORE_REG_H

#include <cstdint>

namespace vcode {

/// A physical register handle. Invalid (default-constructed) Regs are
/// returned by the allocator on exhaustion, mirroring the paper's error
/// code return.
struct Reg {
  enum KindType : uint8_t { None = 0, Int = 1, Fp = 2 };

  uint8_t Kind = None;
  uint8_t Num = 0;

  constexpr Reg() = default;
  constexpr Reg(KindType K, uint8_t N) : Kind(K), Num(N) {}

  /// Returns true if this handle names a real register.
  constexpr bool isValid() const { return Kind != None; }
  constexpr bool isInt() const { return Kind == Int; }
  constexpr bool isFp() const { return Kind == Fp; }

  friend constexpr bool operator==(Reg A, Reg B) {
    return A.Kind == B.Kind && A.Num == B.Num;
  }
  friend constexpr bool operator!=(Reg A, Reg B) { return !(A == B); }
};

/// Makes an integer register handle.
constexpr Reg intReg(unsigned N) { return Reg(Reg::Int, uint8_t(N)); }
/// Makes a floating-point register handle.
constexpr Reg fpReg(unsigned N) { return Reg(Reg::Fp, uint8_t(N)); }

/// Allocation classes (paper §3.2): \c Temp registers are caller-saved
/// scratch; \c Var registers are "persistent across procedure calls"
/// (callee-saved).
enum class RegClass : uint8_t { Temp, Var };

/// Dynamic register classification (paper §5.3): clients can control the
/// class VCODE assigns to each physical register, e.g. treating every
/// register as callee-saved inside an interrupt handler.
enum class RegKind : uint8_t { CallerSaved, CalleeSaved, Unavailable };

} // namespace vcode

#endif // VCODE_CORE_REG_H
