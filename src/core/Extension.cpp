//===- core/Extension.cpp - Instruction-set extension layer ---------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "core/Extension.h"
#include "core/VCode.h"
#include "support/Error.h"
#include <cctype>

using namespace vcode;

namespace {

/// Minimal S-expression tokenizer for the spec language. Commas are
/// whitespace, as in the paper's examples.
class Lexer {
public:
  explicit Lexer(const std::string &Text) : Text(Text) {}

  /// Token kinds: '(' ')' atom, or end.
  enum Kind { LParen, RParen, Atom, End };

  Kind next(std::string &AtomText) {
    while (Pos < Text.size() &&
           (std::isspace(uint8_t(Text[Pos])) || Text[Pos] == ','))
      ++Pos;
    if (Pos >= Text.size())
      return End;
    char C = Text[Pos];
    if (C == '(') {
      ++Pos;
      return LParen;
    }
    if (C == ')') {
      ++Pos;
      return RParen;
    }
    size_t Start = Pos;
    while (Pos < Text.size() && !std::isspace(uint8_t(Text[Pos])) &&
           Text[Pos] != ',' && Text[Pos] != '(' && Text[Pos] != ')')
      ++Pos;
    AtomText = Text.substr(Start, Pos - Start);
    return Atom;
  }

private:
  const std::string &Text;
  size_t Pos = 0;
};

bool isTypeLetter(const std::string &S) {
  return S == "c" || S == "uc" || S == "s" || S == "us" || S == "i" ||
         S == "u" || S == "l" || S == "ul" || S == "p" || S == "f" ||
         S == "d" || S == "v";
}

} // namespace

std::vector<SpecInsn> vcode::parseSpecs(const std::string &Text,
                                        std::string *Err) {
  std::vector<SpecInsn> Out;
  Lexer Lex(Text);
  std::string Tok;
  auto Fail = [&](const char *Msg) {
    if (Err)
      *Err = Msg;
    Out.clear();
    return Out;
  };

  for (;;) {
    Lexer::Kind K = Lex.next(Tok);
    if (K == Lexer::End)
      return Out;
    if (K != Lexer::LParen)
      return Fail("expected '(' starting an instruction specification");

    SpecInsn Insn;
    if (Lex.next(Tok) != Lexer::Atom)
      return Fail("expected base instruction name");
    Insn.Name = Tok;

    // Parameter list: ( rd rs ... )
    if (Lex.next(Tok) != Lexer::LParen)
      return Fail("expected '(' starting the parameter list");
    for (;;) {
      K = Lex.next(Tok);
      if (K == Lexer::RParen)
        break;
      if (K != Lexer::Atom)
        return Fail("expected parameter name");
      Insn.Params.push_back(Tok);
    }

    // Mappings: ( type-list mach_insn [mach_imm_insn] )+
    for (;;) {
      K = Lex.next(Tok);
      if (K == Lexer::RParen)
        break;
      if (K != Lexer::LParen)
        return Fail("expected '(' starting a type mapping");
      SpecInsn::Mapping M;
      // Leading type letters, then one or two machine-instruction names.
      std::vector<std::string> Atoms;
      for (;;) {
        K = Lex.next(Tok);
        if (K == Lexer::RParen)
          break;
        if (K != Lexer::Atom)
          return Fail("expected atom inside a type mapping");
        Atoms.push_back(Tok);
      }
      size_t NumTypes = 0;
      while (NumTypes < Atoms.size() && isTypeLetter(Atoms[NumTypes]))
        ++NumTypes;
      size_t NumInsns = Atoms.size() - NumTypes;
      if (NumTypes == 0 || NumInsns == 0 || NumInsns > 2)
        return Fail("a type mapping is (type... mach_insn [mach_imm_insn])");
      M.Types.assign(Atoms.begin(), Atoms.begin() + NumTypes);
      M.MachInsn = Atoms[NumTypes];
      if (NumInsns == 2)
        M.MachImmInsn = Atoms[NumTypes + 1];
      Insn.Mappings.push_back(std::move(M));
    }
    if (Insn.Mappings.empty())
      return Fail("instruction specification has no type mappings");
    Out.push_back(std::move(Insn));
  }
}

std::vector<std::string> vcode::defineFromSpec(Target &T,
                                               const std::string &Text) {
  std::string Err;
  std::vector<SpecInsn> Insns = parseSpecs(Text, &Err);
  if (Insns.empty() && !Err.empty())
    fatal("extension specification error: %s", Err.c_str());

  std::vector<std::string> Defined;
  for (const SpecInsn &Insn : Insns) {
    for (const SpecInsn::Mapping &M : Insn.Mappings) {
      if (!T.hasInstruction(M.MachInsn))
        fatal("extension '%s': machine instruction '%s' is not provided by "
              "target %s; register it first (paper §5.4: \"the client must "
              "then provide any missing instructions\")",
              Insn.Name.c_str(), M.MachInsn.c_str(), T.info().Name);
      if (!M.MachImmInsn.empty() && !T.hasInstruction(M.MachImmInsn))
        fatal("extension '%s': machine instruction '%s' is not provided by "
              "target %s",
              Insn.Name.c_str(), M.MachImmInsn.c_str(), T.info().Name);
      // Intern the machine-instruction names once here, so the emitters
      // dispatch on an index instead of a per-emission string lookup.
      ExtId MachId = T.findInstruction(M.MachInsn);
      ExtId MachImmId =
          M.MachImmInsn.empty() ? ExtId() : T.findInstruction(M.MachImmInsn);
      for (const std::string &Ty : M.Types) {
        unsigned Arity = unsigned(Insn.Params.size());
        // Register-form instruction, e.g. v_sqrtf -> fsqrts.
        std::string VName = Insn.Name + Ty;
        T.defineInstruction(
            VName, [MachId, Arity](VCode &VC, const Operand *Ops, unsigned N) {
              if (N != Arity)
                fatal("extension instruction: expected %u operands, got %u",
                      Arity, N);
              VC.target().emitExtension(VC, MachId, Ops, N);
            });
        Defined.push_back(VName);
        // Immediate form, e.g. v_addfooii.
        if (!M.MachImmInsn.empty()) {
          std::string VNameImm = VName + "i";
          T.defineInstruction(VNameImm, [MachImmId, Arity](VCode &VC,
                                                           const Operand *Ops,
                                                           unsigned N) {
            if (N != Arity)
              fatal("extension instruction: expected %u operands, got %u",
                    Arity, N);
            VC.target().emitExtension(VC, MachImmId, Ops, N);
          });
          Defined.push_back(VNameImm);
        }
      }
    }
  }
  return Defined;
}

std::string vcode::generateCppExtensionHeader(
    const std::vector<SpecInsn> &Specs) {
  std::string Out;
  Out += "// Generated by tools/vcodegen -- do not edit.\n";
  Out += "// VCODE extension instruction wrappers (paper \xc2\xa7""5.4).\n";
  Out += "#include \"core/Target.h\"\n";
  Out += "#include \"core/VCode.h\"\n\n";

  auto EmitOne = [&Out](const SpecInsn &Insn, const std::string &Ty,
                        const std::string &Mach, bool ImmForm) {
    std::string Name = "v_" + Insn.Name + Ty + (ImmForm ? "i" : "");
    Out += "inline void " + Name + "(vcode::VCode &V";
    for (size_t P = 0; P < Insn.Params.size(); ++P) {
      bool IsImm = Insn.Params[P] == "imm" ||
                   (ImmForm && P + 1 == Insn.Params.size());
      Out += ", ";
      Out += IsImm ? "int64_t " : "vcode::Reg ";
      Out += Insn.Params[P];
    }
    Out += ") {\n  const vcode::Operand Ops[] = {";
    for (size_t P = 0; P < Insn.Params.size(); ++P) {
      bool IsImm = Insn.Params[P] == "imm" ||
                   (ImmForm && P + 1 == Insn.Params.size());
      if (P)
        Out += ", ";
      Out += IsImm ? ("vcode::opImm(" + Insn.Params[P] + ")")
                   : ("vcode::opReg(" + Insn.Params[P] + ")");
    }
    Out += "};\n  V.target().emitExtension(V, \"" + Mach + "\", Ops, " +
           std::to_string(Insn.Params.size()) + ");\n}\n\n";
  };

  for (const SpecInsn &Insn : Specs)
    for (const SpecInsn::Mapping &M : Insn.Mappings)
      for (const std::string &Ty : M.Types) {
        EmitOne(Insn, Ty, M.MachInsn, /*ImmForm=*/false);
        if (!M.MachImmInsn.empty())
          EmitOne(Insn, Ty, M.MachImmInsn, /*ImmForm=*/true);
      }
  return Out;
}
