//===- core/Extension.h - Instruction-set extension layer ------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The VCODE extension mechanism (paper §5.4). Because VCODE emits code in
/// place and attaches no semantics to instructions, the instruction set can
/// be extended with a single line of specification:
///
///   (sqrt (rd, rs) (f fsqrts) (d fsqrtd))
///
/// composes base instruction `sqrt` with types `f` and `d` and maps the
/// result onto the named machine instructions. This header provides:
///
///  - parseSpecs(): a parser for the concise specification language,
///    shared with the offline tools/vcodegen preprocessor; and
///  - defineFromSpec(): a runtime interpreter that registers the resulting
///    VCODE instructions on a Target, resolving machine-instruction names
///    against instructions the target (or the client) has already
///    registered. Extensions couched in terms of the VCODE core — or other
///    extensions — are therefore automatically present on every machine.
///
/// Thread safety. The extension registry each Target carries is interning
/// storage shared by every VCode/VCodeT bound to that Target, so it is
/// guarded: defineFromSpec / Target::defineInstruction / findInstruction
/// may run concurrently from any number of threads, and emission through
/// an interned ExtId is lock-free and may overlap registration of *other*
/// instructions (the id count is published with release/acquire ordering
/// and registry storage never moves). The ordering guarantee clients rely
/// on: an ExtId returned by a registration call is valid on every thread
/// that receives it, with no further synchronization. The only operation
/// needing external ordering is redefining an existing instruction while
/// some thread concurrently emits that same id — redefine during setup,
/// or make the redefinition happen-before the next emission yourself.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_CORE_EXTENSION_H
#define VCODE_CORE_EXTENSION_H

#include "core/Target.h"
#include <string>
#include <vector>

namespace vcode {

/// One parsed extension specification.
struct SpecInsn {
  std::string Name;                ///< base instruction name, e.g. "sqrt"
  std::vector<std::string> Params; ///< operand names, e.g. {"rd", "rs"}
  struct Mapping {
    std::vector<std::string> Types; ///< type letters, e.g. {"f", "d"}
    std::string MachInsn;           ///< register-form machine instruction
    std::string MachImmInsn;        ///< optional immediate-form instruction
  };
  std::vector<Mapping> Mappings;
};

/// Parses a sequence of specifications. On success returns the parsed
/// instructions; on a syntax error returns an empty vector and fills
/// \p Err with a diagnostic.
std::vector<SpecInsn> parseSpecs(const std::string &Text, std::string *Err);

/// Registers every instruction described by \p Text on \p T. Machine
/// instruction names are resolved through T's instruction registry, so a
/// target must pre-register its native instructions (e.g. "fsqrts") and
/// clients may register portable bodies built from the VCODE core.
/// Returns the list of VCODE instruction names defined (e.g. "sqrtf",
/// "sqrtd"); fatal error on syntax errors or unresolvable machine names.
std::vector<std::string> defineFromSpec(Target &T, const std::string &Text);

/// Emits C++ inline wrapper functions for the instructions described by
/// \p Specs — the output of the offline tools/vcodegen preprocessor (the
/// paper's static-compile-time path, where "a single line in a
/// preprocessing specification can add a new family of instructions").
/// Parameters named "imm" become int64_t immediates; all others are Regs.
std::string generateCppExtensionHeader(const std::vector<SpecInsn> &Specs);

} // namespace vcode

#endif // VCODE_CORE_EXTENSION_H
