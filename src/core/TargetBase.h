//===- core/TargetBase.h - CRTP static-dispatch backend base ----*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CRTP adapter between the type-erased Target facade and a concrete
/// backend's statically dispatched emitters. A backend derives as
/// `class MipsTarget final : public TargetBase<MipsTarget>` and implements
/// non-virtual inline ins* emitters; TargetBase supplies the virtual emit*
/// overrides as one-line forwarders. Code reaching the backend through the
/// Target interface pays one virtual call per instruction (as before);
/// code reaching it through VCodeT<Derived> calls the ins* emitters
/// directly and the virtual layer vanishes — the paper's macro-expanded
/// "*v_ip++ = w" cost model (Fig. 2) recovered by the optimizer.
///
/// The forwarders are `final`: a derived class cannot accidentally
/// re-override an emit* virtual (the compiler rejects it), which keeps the
/// invariant that the virtual path and the static path run the exact same
/// ins* code — the differential test's byte-identical guarantee holds by
/// construction.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_CORE_TARGETBASE_H
#define VCODE_CORE_TARGETBASE_H

#include "core/Target.h"

namespace vcode {

template <class Derived> class TargetBase : public Target {
public:
  void emitBinop(VCode &VC, BinOp Op, Type Ty, Reg Rd, Reg Rs1,
                 Reg Rs2) final {
    derived().insBinop(VC, Op, Ty, Rd, Rs1, Rs2);
  }
  void emitBinopImm(VCode &VC, BinOp Op, Type Ty, Reg Rd, Reg Rs1,
                    int64_t Imm) final {
    derived().insBinopImm(VC, Op, Ty, Rd, Rs1, Imm);
  }
  void emitUnop(VCode &VC, UnOp Op, Type Ty, Reg Rd, Reg Rs) final {
    derived().insUnop(VC, Op, Ty, Rd, Rs);
  }
  void emitSetInt(VCode &VC, Type Ty, Reg Rd, uint64_t Imm) final {
    derived().insSetInt(VC, Ty, Rd, Imm);
  }
  void emitSetFp(VCode &VC, Type Ty, Reg Rd, double Val) final {
    derived().insSetFp(VC, Ty, Rd, Val);
  }
  void emitCvt(VCode &VC, Type From, Type To, Reg Rd, Reg Rs) final {
    derived().insCvt(VC, From, To, Rd, Rs);
  }
  void emitLoad(VCode &VC, Type Ty, Reg Rd, Reg Base, Reg Off) final {
    derived().insLoad(VC, Ty, Rd, Base, Off);
  }
  void emitLoadImm(VCode &VC, Type Ty, Reg Rd, Reg Base, int64_t Off) final {
    derived().insLoadImm(VC, Ty, Rd, Base, Off);
  }
  void emitStore(VCode &VC, Type Ty, Reg Val, Reg Base, Reg Off) final {
    derived().insStore(VC, Ty, Val, Base, Off);
  }
  void emitStoreImm(VCode &VC, Type Ty, Reg Val, Reg Base, int64_t Off) final {
    derived().insStoreImm(VC, Ty, Val, Base, Off);
  }
  void emitBranch(VCode &VC, Cond C, Type Ty, Reg Rs1, Reg Rs2,
                  Label L) final {
    derived().insBranch(VC, C, Ty, Rs1, Rs2, L);
  }
  void emitBranchImm(VCode &VC, Cond C, Type Ty, Reg Rs1, int64_t Imm,
                     Label L) final {
    derived().insBranchImm(VC, C, Ty, Rs1, Imm, L);
  }
  void emitJump(VCode &VC, Label L) final { derived().insJump(VC, L); }
  void emitJumpReg(VCode &VC, Reg R) final { derived().insJumpReg(VC, R); }
  void emitJumpAddr(VCode &VC, SimAddr A) final {
    derived().insJumpAddr(VC, A);
  }
  void emitCallAddr(VCode &VC, SimAddr A) final {
    derived().insCallAddr(VC, A);
  }
  void emitCallLabel(VCode &VC, Label L) final {
    derived().insCallLabel(VC, L);
  }
  void emitLinkReturn(VCode &VC) final { derived().insLinkReturn(VC); }
  void emitCallReg(VCode &VC, Reg R) final { derived().insCallReg(VC, R); }
  void emitRet(VCode &VC, Type Ty, Reg Rs) final {
    derived().insRet(VC, Ty, Rs);
  }
  void emitRetImm(VCode &VC, Type Ty, int64_t Imm) final {
    derived().insRetImm(VC, Ty, Imm);
  }
  void emitNop(VCode &VC) final { derived().insNop(VC); }

private:
  constexpr Derived &derived() { return static_cast<Derived &>(*this); }
};

} // namespace vcode

#endif // VCODE_CORE_TARGETBASE_H
