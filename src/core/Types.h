//===- core/Types.h - The VCODE type system (paper Table 1) -----*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The VCODE base types (paper Table 1), named for their mappings to ANSI C
/// types. Instructions are composed from a base operation and one of these
/// types. As in the paper, some types may not be distinct on a given target
/// (e.g. \c L is equivalent to \c I on 32-bit machines).
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_CORE_TYPES_H
#define VCODE_CORE_TYPES_H

#include "support/Error.h"
#include <cstdint>

namespace vcode {

/// VCODE value types. Mirrors paper Table 1.
enum class Type : uint8_t {
  V,  ///< void
  C,  ///< signed char (memory-only type)
  UC, ///< unsigned char (memory-only type)
  S,  ///< signed short (memory-only type)
  US, ///< unsigned short (memory-only type)
  I,  ///< int
  U,  ///< unsigned
  L,  ///< long
  UL, ///< unsigned long
  P,  ///< void *
  F,  ///< float
  D,  ///< double
};

/// Number of distinct VCODE types (for table sizing).
inline constexpr unsigned NumTypes = 12;

/// Returns true for the floating-point types F and D.
constexpr bool isFpType(Type T) { return T == Type::F || T == Type::D; }

/// Returns true for the signed integer types (C, S, I, L).
constexpr bool isSignedType(Type T) {
  return T == Type::C || T == Type::S || T == Type::I || T == Type::L;
}

/// Returns true for the sub-word "memory only" types. Per the paper, most
/// non-memory operations do not take these as operands.
constexpr bool isSmallIntType(Type T) {
  return T == Type::C || T == Type::UC || T == Type::S || T == Type::US;
}

/// Returns true for types register operations accept (word-sized and up,
/// plus floating point).
constexpr bool isRegType(Type T) {
  return !isSmallIntType(T) && T != Type::V;
}

/// Returns true for the integer/pointer register types.
constexpr bool isIntRegType(Type T) {
  return T == Type::I || T == Type::U || T == Type::L || T == Type::UL ||
         T == Type::P;
}

/// Returns true for the 64-bit-capable types (L, UL, P) whose width depends
/// on the target word size.
constexpr bool isLongType(Type T) {
  return T == Type::L || T == Type::UL || T == Type::P;
}

/// Size in bytes of \p T in memory on a target with \p WordBytes-byte words
/// (4 for MIPS/SPARC, 8 for Alpha).
constexpr unsigned typeSize(Type T, unsigned WordBytes) {
  switch (T) {
  case Type::V:
    return 0;
  case Type::C:
  case Type::UC:
    return 1;
  case Type::S:
  case Type::US:
    return 2;
  case Type::I:
  case Type::U:
  case Type::F:
    return 4;
  case Type::L:
  case Type::UL:
  case Type::P:
    return WordBytes;
  case Type::D:
    return 8;
  }
  unreachable("bad Type");
}

/// One-letter (or two-letter) paper name for \p T, e.g. "i", "ul".
constexpr const char *typeName(Type T) {
  switch (T) {
  case Type::V:
    return "v";
  case Type::C:
    return "c";
  case Type::UC:
    return "uc";
  case Type::S:
    return "s";
  case Type::US:
    return "us";
  case Type::I:
    return "i";
  case Type::U:
    return "u";
  case Type::L:
    return "l";
  case Type::UL:
    return "ul";
  case Type::P:
    return "p";
  case Type::F:
    return "f";
  case Type::D:
    return "d";
  }
  unreachable("bad Type");
}

} // namespace vcode

#endif // VCODE_CORE_TYPES_H
