//===- core/VRegLayer.cpp - Unlimited virtual registers --------------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "core/VRegLayer.h"
#include <cassert>

using namespace vcode;

VRegLayer::VRegLayer(VCode &V) : V(V) {
  for (unsigned I = 0; I < 3; ++I) {
    IntStage[I] = V.getreg(Type::L, RegClass::Temp);
    FpStage[I] = V.getreg(Type::D, RegClass::Temp);
    if (!IntStage[I].isValid() || !FpStage[I].isValid())
      fatal("vreg layer: could not claim staging registers");
  }
}

VRegLayer::~VRegLayer() {
  for (unsigned I = 0; I < 3; ++I) {
    V.putreg(IntStage[I]);
    V.putreg(FpStage[I]);
  }
}

VReg VRegLayer::alloc(Type Ty) {
  Slot S;
  S.Ty = Ty;
  S.Home = V.localVar(Ty);
  Slots.push_back(S);
  return VReg{int32_t(Slots.size() - 1)};
}

Reg VRegLayer::stage(unsigned Which, Type Ty) {
  assert(Which < 3 && "bad staging index");
  return isFpType(Ty) ? FpStage[Which] : IntStage[Which];
}

Reg VRegLayer::readIn(VReg R, unsigned Which) {
  assert(R.isValid() && size_t(R.Id) < Slots.size() && "bad vreg");
  const Slot &S = Slots[R.Id];
  Reg P = stage(Which, S.Ty);
  V.loadLocal(S.Ty, P, S.Home);
  return P;
}

void VRegLayer::writeBack(VReg R, Reg Phys) {
  const Slot &S = Slots[R.Id];
  V.storeLocal(S.Ty, Phys, S.Home);
}

void VRegLayer::fromPhys(VReg Dst, Reg Src) {
  writeBack(Dst, Src);
}

void VRegLayer::binop(BinOp Op, Type Ty, VReg Rd, VReg Rs1, VReg Rs2) {
  Reg A = readIn(Rs1, 0);
  Reg B = readIn(Rs2, 1);
  Reg D = stage(2, Ty);
  V.binop(Op, Ty, D, A, B);
  writeBack(Rd, D);
}

void VRegLayer::binopImm(BinOp Op, Type Ty, VReg Rd, VReg Rs1, int64_t Imm) {
  Reg A = readIn(Rs1, 0);
  Reg D = stage(2, Ty);
  V.binopImm(Op, Ty, D, A, Imm);
  writeBack(Rd, D);
}

void VRegLayer::unop(UnOp Op, Type Ty, VReg Rd, VReg Rs) {
  Reg A = readIn(Rs, 0);
  Reg D = stage(2, Ty);
  V.unop(Op, Ty, D, A);
  writeBack(Rd, D);
}

void VRegLayer::setInt(Type Ty, VReg Rd, uint64_t Imm) {
  Reg D = stage(2, Ty);
  V.setInt(Ty, D, Imm);
  writeBack(Rd, D);
}

void VRegLayer::load(Type Ty, VReg Rd, VReg Base, int64_t Off) {
  Reg A = readIn(Base, 0);
  Reg D = stage(2, Ty);
  V.loadImm(Ty, D, A, Off);
  writeBack(Rd, D);
}

void VRegLayer::store(Type Ty, VReg Val, VReg Base, int64_t Off) {
  Reg A = readIn(Base, 0);
  Reg Vv = readIn(Val, 1);
  V.storeImm(Ty, Vv, A, Off);
}

void VRegLayer::branch(Cond C, Type Ty, VReg A, VReg B, Label L) {
  Reg Pa = readIn(A, 0);
  Reg Pb = readIn(B, 1);
  V.branch(C, Ty, Pa, Pb, L);
}

void VRegLayer::branchImm(Cond C, Type Ty, VReg A, int64_t Imm, Label L) {
  Reg Pa = readIn(A, 0);
  V.branchImm(C, Ty, Pa, Imm, L);
}

void VRegLayer::ret(Type Ty, VReg Rs) {
  Reg P = readIn(Rs, 0);
  V.ret(Ty, P);
}
