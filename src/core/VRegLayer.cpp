//===- core/VRegLayer.cpp - Unlimited virtual registers --------------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "core/VRegLayer.h"
#include "core/LinearScan.h"
#include "core/Peephole.h"
#include "core/StrengthReduce.h"
#include "support/Telemetry.h"
#include <algorithm>
#include <cassert>
#include <unordered_map>

using namespace vcode;

VRegLayer::VRegLayer(VCode &V, Tier T) : V(V), Mode(T) {
  if (Mode != Tier::Tier0)
    return;
  for (unsigned I = 0; I < 3; ++I) {
    IntStage[I] = V.getreg(Type::L, RegClass::Temp);
    FpStage[I] = V.getreg(Type::D, RegClass::Temp);
    if (!IntStage[I].isValid() || !FpStage[I].isValid())
      fatal("vreg layer: could not claim staging registers");
  }
}

VRegLayer::~VRegLayer() {
  if (Mode == Tier::Tier0) {
    for (unsigned I = 0; I < 3; ++I) {
      V.putreg(IntStage[I]);
      V.putreg(FpStage[I]);
    }
    return;
  }
  // Tier-1: finish() releases the claimed pool; this only runs when an
  // emission error unwound out of the recording or replay.
  releaseClaimed();
}

VReg VRegLayer::alloc(Type Ty) {
  Slot S;
  S.Ty = Ty;
  if (Mode == Tier::Tier0)
    S.Home = V.localVar(Ty); // Tier-1 spill homes are allocated on demand
  Slots.push_back(S);
  return VReg{int32_t(Slots.size() - 1)};
}

VReg VRegLayer::fromArg(Type Ty, Reg ArgReg) {
  if (Mode == Tier::Tier0) {
    VReg R = alloc(Ty);
    fromPhys(R, ArgReg);
    return R;
  }
  Slot S;
  S.Ty = Ty;
  S.Pre = ArgReg;
  Slots.push_back(S);
  VReg R{int32_t(Slots.size() - 1)};
  RecOp &O = rec(RecOp::FromPhys);
  O.Ty = Ty;
  O.D = R.Id;
  O.Phys = ArgReg;
  return R;
}

// --- Tier-0: stage-through-locals emission ----------------------------------

Reg VRegLayer::stage(unsigned Which, Type Ty) {
  assert(Which < 3 && "bad staging index");
  return isFpType(Ty) ? FpStage[Which] : IntStage[Which];
}

Reg VRegLayer::readIn(VReg R, unsigned Which) {
  assert(R.isValid() && size_t(R.Id) < Slots.size() && "bad vreg");
  const Slot &S = Slots[R.Id];
  Reg P = stage(Which, S.Ty);
  V.loadLocal(S.Ty, P, S.Home);
  return P;
}

void VRegLayer::writeBack(VReg R, Reg Phys) {
  const Slot &S = Slots[R.Id];
  V.storeLocal(S.Ty, Phys, S.Home);
}

// --- Mirrored surface --------------------------------------------------------

void VRegLayer::checkVReg(VReg R) const {
  if (!R.isValid() || size_t(R.Id) >= Slots.size())
    fatal("vreg layer: invalid virtual register");
}

VRegLayer::RecOp &VRegLayer::rec(RecOp::Kind K) {
  if (Finished)
    fatal("vreg layer: recording after finish()");
  Rec.emplace_back();
  Rec.back().K = K;
  return Rec.back();
}

void VRegLayer::fromPhys(VReg Dst, Reg Src) {
  checkVReg(Dst);
  if (Mode == Tier::Tier0) {
    writeBack(Dst, Src);
    return;
  }
  RecOp &O = rec(RecOp::FromPhys);
  O.Ty = Slots[Dst.Id].Ty;
  O.D = Dst.Id;
  O.Phys = Src;
}

void VRegLayer::binop(BinOp Op, Type Ty, VReg Rd, VReg Rs1, VReg Rs2) {
  checkVReg(Rd);
  checkVReg(Rs1);
  checkVReg(Rs2);
  if (Mode == Tier::Tier0) {
    Reg A = readIn(Rs1, 0);
    Reg B = readIn(Rs2, 1);
    Reg D = stage(2, Ty);
    V.binop(Op, Ty, D, A, B);
    writeBack(Rd, D);
    return;
  }
  RecOp &O = rec(RecOp::Binop);
  O.Op = uint8_t(Op);
  O.Ty = Ty;
  O.D = Rd.Id;
  O.S1 = Rs1.Id;
  O.S2 = Rs2.Id;
}

void VRegLayer::binopImm(BinOp Op, Type Ty, VReg Rd, VReg Rs1, int64_t Imm) {
  checkVReg(Rd);
  checkVReg(Rs1);
  if (Mode == Tier::Tier0) {
    Reg A = readIn(Rs1, 0);
    Reg D = stage(2, Ty);
    V.binopImm(Op, Ty, D, A, Imm);
    writeBack(Rd, D);
    return;
  }
  RecOp &O = rec(RecOp::BinopImm);
  O.Op = uint8_t(Op);
  O.Ty = Ty;
  O.D = Rd.Id;
  O.S1 = Rs1.Id;
  O.Imm = Imm;
}

void VRegLayer::unop(UnOp Op, Type Ty, VReg Rd, VReg Rs) {
  checkVReg(Rd);
  checkVReg(Rs);
  if (Mode == Tier::Tier0) {
    Reg A = readIn(Rs, 0);
    Reg D = stage(2, Ty);
    V.unop(Op, Ty, D, A);
    writeBack(Rd, D);
    return;
  }
  RecOp &O = rec(RecOp::Unop);
  O.Op = uint8_t(Op);
  O.Ty = Ty;
  O.D = Rd.Id;
  O.S1 = Rs.Id;
}

void VRegLayer::setInt(Type Ty, VReg Rd, uint64_t Imm) {
  checkVReg(Rd);
  if (Mode == Tier::Tier0) {
    Reg D = stage(2, Ty);
    V.setInt(Ty, D, Imm);
    writeBack(Rd, D);
    return;
  }
  RecOp &O = rec(RecOp::SetInt);
  O.Ty = Ty;
  O.D = Rd.Id;
  O.Imm = int64_t(Imm);
}

void VRegLayer::load(Type Ty, VReg Rd, VReg Base, int64_t Off) {
  checkVReg(Rd);
  checkVReg(Base);
  if (Mode == Tier::Tier0) {
    Reg A = readIn(Base, 0);
    Reg D = stage(2, Ty);
    V.loadImm(Ty, D, A, Off);
    writeBack(Rd, D);
    return;
  }
  RecOp &O = rec(RecOp::Load);
  O.Ty = Ty;
  O.D = Rd.Id;
  O.S1 = Base.Id;
  O.Imm = Off;
}

void VRegLayer::store(Type Ty, VReg Val, VReg Base, int64_t Off) {
  checkVReg(Val);
  checkVReg(Base);
  if (Mode == Tier::Tier0) {
    Reg A = readIn(Base, 0);
    Reg Vv = readIn(Val, 1);
    V.storeImm(Ty, Vv, A, Off);
    return;
  }
  RecOp &O = rec(RecOp::Store);
  O.Ty = Ty;
  O.S1 = Val.Id;
  O.S2 = Base.Id;
  O.Imm = Off;
}

void VRegLayer::branch(Cond C, Type Ty, VReg A, VReg B, Label L) {
  checkVReg(A);
  checkVReg(B);
  if (Mode == Tier::Tier0) {
    Reg Pa = readIn(A, 0);
    Reg Pb = readIn(B, 1);
    V.branch(C, Ty, Pa, Pb, L);
    return;
  }
  RecOp &O = rec(RecOp::Branch);
  O.Op = uint8_t(C);
  O.Ty = Ty;
  O.S1 = A.Id;
  O.S2 = B.Id;
  O.L = L;
}

void VRegLayer::branchImm(Cond C, Type Ty, VReg A, int64_t Imm, Label L) {
  checkVReg(A);
  if (Mode == Tier::Tier0) {
    Reg Pa = readIn(A, 0);
    V.branchImm(C, Ty, Pa, Imm, L);
    return;
  }
  RecOp &O = rec(RecOp::BranchImm);
  O.Op = uint8_t(C);
  O.Ty = Ty;
  O.S1 = A.Id;
  O.Imm = Imm;
  O.L = L;
}

void VRegLayer::ret(Type Ty, VReg Rs) {
  checkVReg(Rs);
  if (Mode == Tier::Tier0) {
    Reg P = readIn(Rs, 0);
    V.ret(Ty, P);
    return;
  }
  RecOp &O = rec(RecOp::Ret);
  O.Ty = Ty;
  O.S1 = Rs.Id;
}

void VRegLayer::label(Label L) {
  if (Mode == Tier::Tier0) {
    V.label(L);
    return;
  }
  rec(RecOp::Lbl).L = L;
}

void VRegLayer::jmp(Label L) {
  if (Mode == Tier::Tier0) {
    V.jmp(L);
    return;
  }
  rec(RecOp::Jmp).L = L;
}

void VRegLayer::jmpReg(VReg R) {
  checkVReg(R);
  if (Mode == Tier::Tier0) {
    Reg P = readIn(R, 0);
    V.jmpr(P);
    return;
  }
  rec(RecOp::JmpReg).S1 = R.Id;
}

// --- Tier-1: allocate and replay ---------------------------------------------

void VRegLayer::claimPools() {
  // Claim only caller-saved temps, by name: probing through getreg would
  // eventually hand out a callee-saved register, and merely touching one
  // sticks in the used-callee mask — the allocated code would pay a
  // prologue/epilogue (frame, save, restore) it does not need. take()
  // also skips argument registers the lambda already pinned.
  RegAlloc &RA = V.regAlloc();
  auto Claim = [&](std::vector<Reg> &Pool, const std::vector<Reg> &Temps) {
    for (Reg R : Temps)
      if (RA.kindOf(R) == RegKind::CallerSaved && RA.isFree(R) &&
          RA.take(R)) {
        Pool.push_back(R);
        Claimed.push_back(R);
      }
  };
  const TargetInfo &TI = V.info();
  Claim(IntPool, TI.IntTemps);
  bool AnyFp = false;
  for (const Slot &S : Slots)
    AnyFp |= isFpType(S.Ty);
  if (AnyFp)
    Claim(FpPool, TI.FpTemps);
}

void VRegLayer::releaseClaimed() {
  for (Reg R : Claimed)
    V.putreg(R);
  Claimed.clear();
}

Reg VRegLayer::physOf(int32_t Vr) const {
  return Vr >= 0 ? Slots[Vr].Phys : Reg{};
}

bool VRegLayer::isSpilled(int32_t Vr) const {
  return Vr >= 0 && Slots[Vr].Spilled;
}

Reg VRegLayer::scratchFor(Type Ty, unsigned Which) const {
  Reg R = isFpType(Ty) ? FpScratch[Which] : IntScratch[Which];
  if (!R.isValid())
    fatal("vreg layer: spill with no reserved scratch register");
  return R;
}

void VRegLayer::allocate() {
  std::vector<LsVRegInfo> Infos(Slots.size());
  for (size_t I = 0; I < Slots.size(); ++I) {
    Infos[I].Ty = Slots[I].Ty;
    Infos[I].Pre = Slots[I].Pre;
  }

  std::unordered_map<int32_t, uint32_t> LabelPos;
  for (uint32_t P = 0; P < Rec.size(); ++P)
    if (Rec[P].K == RecOp::Lbl)
      LabelPos[Rec[P].L.Id] = P;

  std::vector<LsOpRefs> Refs(Rec.size());
  std::vector<LsEdge> BackEdges;
  for (uint32_t P = 0; P < Rec.size(); ++P) {
    const RecOp &O = Rec[P];
    LsOpRefs &R = Refs[P];
    switch (O.K) {
    case RecOp::Binop:
      R.Use0 = O.S1;
      R.Use1 = O.S2;
      R.Def = O.D;
      break;
    case RecOp::BinopImm:
    case RecOp::Unop:
    case RecOp::Load:
      R.Use0 = O.S1;
      R.Def = O.D;
      break;
    case RecOp::SetInt:
    case RecOp::FromPhys:
      R.Def = O.D;
      break;
    case RecOp::Store:
    case RecOp::Branch:
      R.Use0 = O.S1;
      R.Use1 = O.S2;
      break;
    case RecOp::BranchImm:
    case RecOp::Ret:
    case RecOp::JmpReg:
      R.Use0 = O.S1;
      break;
    case RecOp::Lbl:
    case RecOp::Jmp:
      break;
    }
    if (O.K == RecOp::Branch || O.K == RecOp::BranchImm || O.K == RecOp::Jmp) {
      auto It = LabelPos.find(O.L.Id);
      if (It != LabelPos.end() && It->second <= P)
        BackEdges.push_back(LsEdge{P, It->second});
    }
  }

  LsResult LS = linearScan(Infos, Refs, BackEdges, IntPool, FpPool);
  if (LS.Spills > 0) {
    // Pressure: rerun with scratch registers held back so the replay can
    // stage spilled operands. Two per class covers the worst op (both
    // sources spilled).
    auto Reserve = [&](std::vector<Reg> &Pool, Reg (&Scratch)[2],
                       const char *What) {
      if (Pool.size() < 2)
        fatal("vreg layer: not enough %s registers to stage spills", What);
      for (unsigned I = 0; I < 2; ++I) {
        Scratch[I] = Pool.back();
        Pool.pop_back();
      }
    };
    Reserve(IntPool, IntScratch, "integer");
    if (!FpPool.empty())
      Reserve(FpPool, FpScratch, "floating-point");
    LS = linearScan(Infos, Refs, BackEdges, IntPool, FpPool);
  }

  Spills = LS.Spills;
  for (size_t I = 0; I < Slots.size(); ++I) {
    if (Slots[I].Pre.isValid()) {
      Slots[I].Phys = Slots[I].Pre;
      continue;
    }
    Slots[I].Phys = LS.Assign[I].Phys;
    Slots[I].Spilled = LS.Assign[I].Spilled;
    if (Slots[I].Spilled)
      Slots[I].Home = V.localVar(Slots[I].Ty);
  }
}

namespace {

enum FillKind : uint8_t { FillNone = 0, FillPred, FillTarget };

} // namespace

void VRegLayer::replay() {
  const TargetInfo &TI = V.info();
  const size_t N = Rec.size();

  auto IsBr = [&](const RecOp &O) {
    return O.K == RecOp::Branch || O.K == RecOp::BranchImm || O.K == RecOp::Jmp;
  };

  // An op that may legally sit in a branch delay slot: a single emitted
  // word on MIPS and SPARC, no memory access, no spilled operand.
  auto SlotEligible = [&](const RecOp &O) {
    switch (O.K) {
    case RecOp::Binop:
      if (isFpType(O.Ty) || isSpilled(O.D) || isSpilled(O.S1) ||
          isSpilled(O.S2))
        return false;
      switch (BinOp(O.Op)) {
      case BinOp::Add:
      case BinOp::Sub:
      case BinOp::And:
      case BinOp::Or:
      case BinOp::Xor:
        return true;
      default:
        return false;
      }
    case RecOp::BinopImm:
      if (isFpType(O.Ty) || isSpilled(O.D) || isSpilled(O.S1))
        return false;
      switch (BinOp(O.Op)) {
      case BinOp::Add:
      case BinOp::Sub:
        return O.Imm >= -2047 && O.Imm <= 2047;
      case BinOp::And:
      case BinOp::Or:
      case BinOp::Xor:
        return O.Imm >= 0 && O.Imm <= 2047;
      case BinOp::Lsh:
      case BinOp::Rsh:
        return O.Imm >= 0 && O.Imm <= 31;
      default:
        return false;
      }
    case RecOp::Unop:
      return UnOp(O.Op) == UnOp::Mov && !isFpType(O.Ty) && !isSpilled(O.D) &&
             !isSpilled(O.S1) && physOf(O.D) != physOf(O.S1);
    case RecOp::SetInt:
      return !isFpType(O.Ty) && !isSpilled(O.D) && O.Imm >= -2047 &&
             O.Imm <= 2047;
    default:
      return false;
    }
  };

  // A branch must not read the register the slot op writes (the sim's
  // delayed-NPC semantics evaluate the condition before the slot runs,
  // but the recorded order computed the value first).
  auto BranchReads = [&](const RecOp &Br, Reg Written) {
    if (Br.K == RecOp::Branch)
      return physOf(Br.S1) == Written || physOf(Br.S2) == Written;
    if (Br.K == RecOp::BranchImm)
      return physOf(Br.S1) == Written;
    return false; // jmp
  };
  auto BranchSpilled = [&](const RecOp &Br) {
    if (Br.K == RecOp::Branch)
      return isSpilled(Br.S1) || isSpilled(Br.S2);
    if (Br.K == RecOp::BranchImm)
      return isSpilled(Br.S1);
    return false; // jmp
  };

  std::vector<uint8_t> Fill(N, FillNone);  // per branch op
  std::vector<uint8_t> Consumed(N, 0);     // op folded into a neighbor
  std::vector<uint8_t> RetImm(N, 0);       // ret emitted as retImm
  std::vector<int32_t> FillSrc(N, -1);     // FillTarget: op index to copy
  std::unordered_map<int32_t, Label> SkipLabelOf; // label id -> skip label
  std::unordered_multimap<uint32_t, Label> BindAfter; // op idx -> skip label

  // Fold "setInt D, K; ret D" into one return-immediate: the constant's
  // only consumer is the adjacent ret (a ret never falls through and no
  // label separates the pair, so no other path can observe this def).
  // On delay-slot machines the constant rides the return's slot; on the
  // others the result move disappears. Either way, one instruction saved.
  for (uint32_t I = 0; I + 1 < N; ++I) {
    const RecOp &O = Rec[I];
    const RecOp &R = Rec[I + 1];
    if (O.K == RecOp::SetInt && !isFpType(O.Ty) && R.K == RecOp::Ret &&
        !isFpType(R.Ty) && R.S1 == O.D) {
      Consumed[I] = 1;
      RetImm[I + 1] = 1;
    }
  }

  if (TI.HasBranchDelaySlot) {
    std::unordered_map<int32_t, uint32_t> LabelPos;
    for (uint32_t P = 0; P < N; ++P)
      if (Rec[P].K == RecOp::Lbl)
        LabelPos[Rec[P].L.Id] = P;

    // Pass 1: fill from the predecessor. The previous recorded op moves
    // into the slot; it executes on every path through the branch (no
    // label can sit between — it would be a distinct recorded op).
    for (uint32_t I = 1; I < N; ++I) {
      const RecOp &O = Rec[I];
      if (!IsBr(O) || BranchSpilled(O) || Consumed[I - 1])
        continue;
      const RecOp &Prev = Rec[I - 1];
      if (!SlotEligible(Prev) || BranchReads(O, physOf(Prev.D)))
        continue;
      Consumed[I - 1] = 1;
      Fill[I] = FillPred;
    }

    // Pass 2: for unconditional jumps with an empty slot, copy the
    // target's first instruction into the slot and retarget the jump to
    // a skip label bound just past the copied instruction. Illegal for
    // conditional branches (the slot executes on the fall-through path
    // too).
    for (uint32_t I = 0; I < N; ++I) {
      if (Rec[I].K != RecOp::Jmp || Fill[I] != FillNone)
        continue;
      auto It = LabelPos.find(Rec[I].L.Id);
      if (It == LabelPos.end())
        continue;
      uint32_t F = It->second;
      while (F < N && Rec[F].K == RecOp::Lbl)
        ++F;
      if (F >= N || F == I || Consumed[F] || !SlotEligible(Rec[F]))
        continue;
      Fill[I] = FillTarget;
      FillSrc[I] = int32_t(F);
      auto Ins = SkipLabelOf.try_emplace(Rec[I].L.Id, Label{});
      if (Ins.second) {
        Ins.first->second = V.genLabel();
        BindAfter.emplace(F, Ins.first->second);
      }
    }
  }

  Peephole PH(V, /*Enabled=*/true);

  // Raw single-word emission for delay slots (operands are unspilled by
  // eligibility).
  auto EmitRaw = [&](const RecOp &O) {
    switch (O.K) {
    case RecOp::Binop:
      V.binop(BinOp(O.Op), O.Ty, physOf(O.D), physOf(O.S1), physOf(O.S2));
      break;
    case RecOp::BinopImm:
      V.binopImm(BinOp(O.Op), O.Ty, physOf(O.D), physOf(O.S1), O.Imm);
      break;
    case RecOp::Unop:
      V.unop(UnOp(O.Op), O.Ty, physOf(O.D), physOf(O.S1));
      break;
    case RecOp::SetInt:
      V.setInt(O.Ty, physOf(O.D), uint64_t(O.Imm));
      break;
    default:
      fatal("vreg layer: op kind not legal in a delay slot");
    }
  };

  // Loads a (possibly spilled) source operand; spilled ops run outside
  // the peephole window, staged through the reserved scratch registers.
  auto Use = [&](int32_t Vr, unsigned Which) {
    if (!isSpilled(Vr))
      return physOf(Vr);
    Reg Sc = scratchFor(Slots[Vr].Ty, Which);
    V.loadLocal(Slots[Vr].Ty, Sc, Slots[Vr].Home);
    return Sc;
  };
  auto DefReg = [&](int32_t Vr) {
    return isSpilled(Vr) ? scratchFor(Slots[Vr].Ty, 0) : physOf(Vr);
  };
  auto DefStore = [&](int32_t Vr, Reg R) {
    if (isSpilled(Vr))
      V.storeLocal(Slots[Vr].Ty, R, Slots[Vr].Home);
  };
  auto AnySpilled = [&](const RecOp &O) {
    return isSpilled(O.D) || isSpilled(O.S1) || isSpilled(O.S2);
  };

  // If an emission error (CgAbort) unwinds out of the loop, drop the
  // peephole window first: its dtor would otherwise flush into the
  // poisoned function and raise again mid-unwind.
  try {
  for (uint32_t I = 0; I < N; ++I) {
    const RecOp &O = Rec[I];
    if (Consumed[I]) {
      // Folded into the following branch's delay slot or return.
    } else if (RetImm[I]) {
      PH.flush();
      V.retImm(O.Ty, Rec[I - 1].Imm);
      ++RetFolds;
    } else if (Fill[I] == FillPred) {
      PH.flush();
      const RecOp &SlotOp = Rec[I - 1];
      V.scheduleDelay(
          [&] {
            if (O.K == RecOp::Branch)
              V.branch(Cond(O.Op), O.Ty, physOf(O.S1), physOf(O.S2), O.L);
            else if (O.K == RecOp::BranchImm)
              V.branchImm(Cond(O.Op), O.Ty, physOf(O.S1), O.Imm, O.L);
            else
              V.jmp(O.L);
          },
          [&] { EmitRaw(SlotOp); });
      ++DelayFills;
    } else if (Fill[I] == FillTarget) {
      PH.flush();
      Label Skip = SkipLabelOf.at(O.L.Id);
      V.scheduleDelay([&] { V.jmp(Skip); },
                      [&] { EmitRaw(Rec[FillSrc[I]]); });
      ++DelayFills;
    } else {
      switch (O.K) {
      case RecOp::Binop:
        if (AnySpilled(O)) {
          PH.flush();
          Reg A = Use(O.S1, 0), B = Use(O.S2, 1), D = DefReg(O.D);
          V.binop(BinOp(O.Op), O.Ty, D, A, B);
          DefStore(O.D, D);
        } else {
          PH.binop(BinOp(O.Op), O.Ty, physOf(O.D), physOf(O.S1),
                   physOf(O.S2));
        }
        break;
      case RecOp::BinopImm:
        if (AnySpilled(O)) {
          PH.flush();
          Reg A = Use(O.S1, 0), D = DefReg(O.D);
          V.binopImm(BinOp(O.Op), O.Ty, D, A, O.Imm);
          DefStore(O.D, D);
        } else if (BinOp(O.Op) == BinOp::Mul && !isFpType(O.Ty) &&
                   physOf(O.D) != physOf(O.S1)) {
          // Strength-reduce multiply-by-constant through the extension
          // expansion (shift/add chains); it emits directly, so flush.
          PH.flush();
          emitMulConst(V, O.Ty, physOf(O.D), physOf(O.S1), O.Imm);
        } else {
          PH.binopImm(BinOp(O.Op), O.Ty, physOf(O.D), physOf(O.S1), O.Imm);
        }
        break;
      case RecOp::Unop:
        if (AnySpilled(O)) {
          PH.flush();
          Reg A = Use(O.S1, 0), D = DefReg(O.D);
          V.unop(UnOp(O.Op), O.Ty, D, A);
          DefStore(O.D, D);
        } else {
          PH.unop(UnOp(O.Op), O.Ty, physOf(O.D), physOf(O.S1));
        }
        break;
      case RecOp::SetInt:
        if (isSpilled(O.D)) {
          PH.flush();
          Reg D = DefReg(O.D);
          V.setInt(O.Ty, D, uint64_t(O.Imm));
          DefStore(O.D, D);
        } else {
          PH.setInt(O.Ty, physOf(O.D), uint64_t(O.Imm));
        }
        break;
      case RecOp::Load:
        if (AnySpilled(O)) {
          PH.flush();
          Reg B = Use(O.S1, 1), D = DefReg(O.D);
          V.loadImm(O.Ty, D, B, O.Imm);
          DefStore(O.D, D);
        } else {
          PH.loadImm(O.Ty, physOf(O.D), physOf(O.S1), O.Imm);
        }
        break;
      case RecOp::Store:
        if (AnySpilled(O)) {
          PH.flush();
          Reg Val = Use(O.S1, 0), B = Use(O.S2, 1);
          V.storeImm(O.Ty, Val, B, O.Imm);
        } else {
          PH.storeImm(O.Ty, physOf(O.S1), physOf(O.S2), O.Imm);
        }
        break;
      case RecOp::Branch:
        if (AnySpilled(O)) {
          PH.flush();
          Reg A = Use(O.S1, 0), B = Use(O.S2, 1);
          V.branch(Cond(O.Op), O.Ty, A, B, O.L);
        } else {
          PH.branch(Cond(O.Op), O.Ty, physOf(O.S1), physOf(O.S2), O.L);
        }
        break;
      case RecOp::BranchImm:
        if (AnySpilled(O)) {
          PH.flush();
          Reg A = Use(O.S1, 0);
          V.branchImm(Cond(O.Op), O.Ty, A, O.Imm, O.L);
        } else {
          PH.branchImm(Cond(O.Op), O.Ty, physOf(O.S1), O.Imm, O.L);
        }
        break;
      case RecOp::Ret:
        if (AnySpilled(O)) {
          PH.flush();
          V.ret(O.Ty, Use(O.S1, 0));
        } else {
          PH.ret(O.Ty, physOf(O.S1));
        }
        break;
      case RecOp::Lbl:
        PH.label(O.L);
        break;
      case RecOp::Jmp:
        PH.jmp(O.L);
        break;
      case RecOp::JmpReg:
        PH.flush();
        V.jmpr(Use(O.S1, 0));
        break;
      case RecOp::FromPhys:
        if (Slots[O.D].Pre.isValid()) {
          // Pre-colored: the vreg *is* the argument register.
        } else if (isSpilled(O.D)) {
          PH.flush();
          V.storeLocal(O.Ty, O.Phys, Slots[O.D].Home);
        } else if (physOf(O.D) != O.Phys) {
          PH.unop(UnOp::Mov, O.Ty, physOf(O.D), O.Phys);
        }
        break;
      }
    }
    // Bind any fill-from-target skip labels that land right after this op.
    auto Range = BindAfter.equal_range(I);
    if (Range.first != Range.second) {
      PH.flush();
      for (auto It = Range.first; It != Range.second; ++It)
        V.label(It->second);
    }
  }
  PH.flush();
  } catch (...) {
    PH.discard();
    throw;
  }
  PhSaved = PH.saved();
}

void VRegLayer::finish() {
  if (Mode == Tier::Tier0 || Finished)
    return;
  Finished = true;
  VCODE_TM_COUNT("core.tier1.recordings", 1);
  VCODE_TM_COUNT("core.tier1.recorded_ops", Rec.size());
  claimPools();
  try {
    allocate();
    replay();
  } catch (...) {
    // An emission error (e.g. buffer overflow) unwound out of the
    // replay: release the claimed pool so the caller's retry starts
    // from a clean allocator, then let the driver see the error.
    releaseClaimed();
    throw;
  }
  releaseClaimed();
  if (Spills)
    VCODE_TM_COUNT("core.tier1.spills", Spills);
  if (DelayFills)
    VCODE_TM_COUNT("core.tier1.delay_fills", DelayFills);
  if (RetFolds)
    VCODE_TM_COUNT("core.tier1.ret_folds", RetFolds);
}
