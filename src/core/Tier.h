//===- core/Tier.h - Generation tiers ---------------------------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two generation tiers of the emission stack. Tier-0 is the paper's
/// one-pass in-place fast path ("an average overhead of approximately 10
/// instructions per generated instruction"); Tier-1 buys code quality with
/// a second pass: the VRegLayer records a compact buffered IR, LinearScan
/// assigns physical registers, and the replay runs Peephole/StrengthReduce
/// unconditionally and fills branch delay slots on MIPS/SPARC — the §6.2
/// "roughly a factor of two" generation-cost trade.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_CORE_TIER_H
#define VCODE_CORE_TIER_H

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace vcode {

/// Which emission pipeline a generation request uses.
enum class Tier : uint8_t {
  Tier0 = 0, ///< one-pass in-place emission (fast generation)
  Tier1 = 1, ///< record + linear-scan + optimizing replay (fast code)
};

inline const char *tierName(Tier T) {
  return T == Tier::Tier1 ? "tier1" : "tier0";
}

/// Parses "0"/"tier0" or "1"/"tier1". Returns false (leaving \p Out
/// untouched) on anything else.
inline bool parseTier(const char *S, Tier &Out) {
  if (!S)
    return false;
  if (!std::strcmp(S, "0") || !std::strcmp(S, "tier0")) {
    Out = Tier::Tier0;
    return true;
  }
  if (!std::strcmp(S, "1") || !std::strcmp(S, "tier1")) {
    Out = Tier::Tier1;
    return true;
  }
  return false;
}

/// Process-wide default tier for tier-aware clients (DpfEngine, ash
/// Pipeline, Tcc): $VCODE_TIER when set, else Tier0. Read once; raw
/// VCode/VRegLayer use stays explicit and is not affected by the
/// environment. A set-but-invalid VCODE_TIER is a hard error, not a
/// silent fallback to Tier0: a typo like VCODE_TIER=teir1 must not
/// quietly benchmark the wrong pipeline.
inline Tier defaultTier() {
  static const Tier T = [] {
    Tier R = Tier::Tier0;
    const char *Env = std::getenv("VCODE_TIER");
    if (Env && !parseTier(Env, R)) {
      std::fprintf(stderr,
                   "vcode: bad VCODE_TIER value '%s' (expected 0, 1, tier0 "
                   "or tier1)\n",
                   Env);
      std::exit(2);
    }
    return R;
  }();
  return T;
}

} // namespace vcode

#endif // VCODE_CORE_TIER_H
