//===- core/Debug.h - Generated-code debugging helpers ----------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic-listing helpers over generated code, addressing the paper's
/// §6.2 complaint that "debugging dynamically generated code currently
/// requires stepping through it at the level of host-specific machine
/// code". Each port supplies Target::disassemble; these helpers format
/// whole functions.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_CORE_DEBUG_H
#define VCODE_CORE_DEBUG_H

#include "core/Target.h"
#include <cstring>
#include <string>

namespace vcode {

/// Formats a symbolic listing of the code in [Guest, Guest+Bytes), whose
/// backing store starts at \p Host. One "addr:  word  mnemonic" line per
/// instruction.
inline std::string disassembleRange(const Target &T, const uint8_t *Host,
                                    SimAddr Guest, size_t Bytes) {
  std::string Out;
  char Line[64];
  for (size_t Off = 0; Off + 4 <= Bytes; Off += 4) {
    uint32_t W;
    std::memcpy(&W, Host + Off, 4);
    std::snprintf(Line, sizeof(Line), "%10llx:  %08x  ",
                  (unsigned long long)(Guest + Off), W);
    Out += Line;
    Out += T.disassemble(W, Guest + Off);
    Out += '\n';
  }
  return Out;
}

} // namespace vcode

#endif // VCODE_CORE_DEBUG_H
