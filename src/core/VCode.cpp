//===- core/VCode.cpp - The VCODE dynamic code generator ------------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "core/VCode.h"
#include "profile/CodeMap.h"
#include "support/BitUtils.h"
#include "support/Telemetry.h"
#include <cassert>

using namespace vcode;

VCode::VCode(Target &Tgt) : T(Tgt), TI(Tgt.info()) {
  CurCC = TI.DefaultCC;
  RA.init(TI);
}

VCode::~VCode() {
  // Never leave a dangling handler pointing at a destroyed object.
  if (RecoverMode)
    setErrorRecovery(false);
}

void VCode::setErrorRecovery(bool Enable) {
  if (Enable == RecoverMode)
    return;
  if (Enable)
    PrevHandler = setErrorHandler(&Recover);
  else {
    setErrorHandler(PrevHandler);
    PrevHandler = nullptr;
  }
  RecoverMode = Enable;
}

void VCode::RecoveryHandler::handle(const CgError &E) {
  CgError Rec = E;
  if (Rec.WordIndex == CgError::NoWordIndex && V.InFunction && V.Buf.isBound())
    Rec.WordIndex = V.Buf.wordIndex();
  if (!V.Err) // keep the first (root-cause) error
    V.Err = Rec;
  throw CgAbort(Rec);
}

void VCode::abandon() {
  InFunction = false;
  CallLocs.clear();
  CallNextArg = 0;
  SuppressDelayNop = false;
}

std::vector<Type> VCode::parseTypeString(const char *Str) const {
  std::vector<Type> Out;
  for (const char *P = Str; *P;) {
    if (*P != '%')
      fatal("bad type string '%s': expected '%%<type>'", Str);
    ++P;
    switch (*P++) {
    case 'v':
      break; // void: no parameters
    case 'i':
      Out.push_back(Type::I);
      break;
    case 'u':
      if (*P == 'l') { // "%ul": unsigned long
        ++P;
        Out.push_back(Type::UL);
      } else {
        Out.push_back(Type::U);
      }
      break;
    case 'l':
      Out.push_back(Type::L);
      break;
    case 'U':
      Out.push_back(Type::UL);
      break;
    case 'p':
      Out.push_back(Type::P);
      break;
    case 'f':
      Out.push_back(Type::F);
      break;
    case 'd':
      Out.push_back(Type::D);
      break;
    default:
      fatal("bad type string '%s': unknown type letter '%c'", Str, P[-1]);
    }
  }
  return Out;
}

void VCode::resetFunctionState() {
  MadeCall = false;
  SuppressDelayNop = false;
  LabelPos.clear();
  Fixups.clear();
  LocalBytes = 0;
  FrameBytes = 0;
  ArgLocations.clear();
  ArgCopies.clear();
  ConstPool.clear();
  ConstPoolLabels.clear();
  ConstPoolIndex.clear();
  CallLocs.clear();
  CallNextArg = 0;
  // FnName is per-function; PubTier deliberately persists (the retry
  // driver stamps it once, before Emit() runs lambda()).
  FnName.clear();
}

void VCode::lambda(const char *ArgTypeStr, Reg *ArgRegs, bool IsLeaf,
                   CodeMem Mem) {
  if (InFunction)
    fatal("v_lambda: previous function not finished with v_end");
  Err = CgError{};
  resetFunctionState();
  InFunction = true;
  LeafFlag = IsLeaf;
  Buf.reset(Mem, TI.CodeUnitBytes);
  MemArena = Mem.Arena;
  MemGuest = Mem.Guest;
  MemSize = Mem.Size;
  if (MemArena)
    MemArena->beginWrite(MemGuest, MemSize);
  RA.init(TI);
  EpiLabel = genLabel();

  std::vector<Type> ArgTypes = parseTypeString(ArgTypeStr);
  ArgLocations = computeArgLocs(CurCC, ArgTypes, TI.WordBytes);
  for (size_t I = 0; I < ArgLocations.size(); ++I) {
    const ArgLoc &L = ArgLocations[I];
    Reg R;
    if (!L.OnStack) {
      // Keep the parameter in its incoming register (paper §3.2: "strives
      // to keep parameters in their incoming registers"). The register may
      // not be an allocation candidate under a substituted convention; it
      // is used in place either way.
      RA.take(L.R);
      R = L.R;
    } else {
      R = RA.get(L.Ty, RegClass::Temp, LeafFlag);
      if (!R.isValid())
        fatalKind(CgErrKind::RegisterPressure,
                  "v_lambda: out of registers for parameter %zu", I);
      ArgCopies.push_back(PrologueArgCopy{L.Ty, R, L.StackOff});
    }
    if (ArgRegs)
      ArgRegs[I] = R;
  }
  T.beginFunction(*this);
  VCODE_TM_STMT(TmEmitStart = telemetry::tick());
}

CodePtr VCode::end() {
  if (!RecoverMode)
    return endImpl();
  if (Err) {
    // Poisoned mid-emission: never hand out partially-emitted code.
    abandon();
    return CodePtr{};
  }
  try {
    return endImpl();
  } catch (const CgAbort &) {
    abandon();
    return CodePtr{};
  }
}

CodePtr VCode::endImpl() {
  if (!InFunction)
    fatal("v_end without v_lambda");

  // Phase boundary: everything from v_lambda to here was client-driven
  // emission; everything below is finishing (prologue/epilogue patching,
  // constant pool, label resolution and backpatch). One tick serves as
  // both the emit end and the backpatch start — aggregated per function,
  // never per instruction, so the hot put() path stays untouched.
  VCODE_TM_TICK(TmFinishStart);
  VCODE_TM_SPAN_AT("core.emit", TmEmitStart, TmFinishStart);

  // Fix the activation record size now that all locals are allocated
  // (paper §5.2): fixed outgoing-argument reserve, worst-case register save
  // area, then locals, rounded to 16 bytes.
  FrameBytes = frameNeeded()
                   ? uint32_t(alignTo(TI.localAreaBase() + LocalBytes, 16))
                   : 0;

  // Write the real prologue into the reserved area and the epilogue after
  // the body; returns the entry point (which skips unused reserved words).
  CodePtr Entry = T.endFunction(*this);

  // Floating-point immediates go at the end of the instruction stream so
  // their space is reclaimed with the function (paper §5.2).
  if (!ConstPool.empty()) {
    while (Buf.cursorAddr() & 7)
      Buf.put(0);
    for (size_t I = 0; I < ConstPool.size(); ++I) {
      label(ConstPoolLabels[I]);
      if (Buf.unitBytes() == 1) {
        Buf.put64(ConstPool[I]);
      } else {
        Buf.put(uint32_t(ConstPool[I]));
        Buf.put(uint32_t(ConstPool[I] >> 32));
      }
    }
  }

  // Backpatch unresolved jumps, branches, and constant references
  // (paper §3.2 step 4).
  for (const Fixup &F : Fixups) {
    if (F.Kind == FixupKind::EpilogueJump && !frameNeeded()) {
      // No epilogue: the target rewrites the site into a direct return.
      T.applyFixup(*this, F, 0);
      continue;
    }
    T.applyFixup(*this, F, labelAddr(F.Lab));
  }

  InFunction = false;
  Entry.SizeBytes = Buf.usedBytes();

  // The bytes are final: flip the region executable and flush icaches.
  // Unreached on a poisoned function (recovery unwinds above), so
  // partially emitted code is never made executable.
  if (MemArena)
    MemArena->publish(MemGuest, Entry.SizeBytes);

  // Register the finished region with the process-wide CodeMap (no-op
  // when telemetry is compiled out). Callers with a better name/tier
  // (CodeCache keys, DBT guest ranges) annotate the entry afterwards.
  profile::CodeMap::instance().publish(
      Buf.baseAddr(), Entry.SizeBytes, Entry.Entry,
      uintptr_t(Buf.hostBase()), std::move(FnName), TI.Name, PubTier);

  VCODE_TM_SPAN("core.backpatch", TmFinishStart);
  VCODE_TM_COUNT("core.functions", 1);
  // Emitted words: body instructions plus constant-pool words.
  VCODE_TM_COUNT("core.instrs_emitted", Buf.wordIndex());
  VCODE_TM_COUNT("core.bytes_emitted", Entry.SizeBytes);
  VCODE_TM_COUNT("core.fixups", Fixups.size());
  return Entry;
}

bool VCode::frameNeeded() const {
  return !LeafFlag || MadeCall || LocalBytes != 0 ||
         RA.usedCalleeSavedMask(Reg::Int) != 0 ||
         RA.usedCalleeSavedMask(Reg::Fp) != 0;
}

Reg VCode::getreg(Type Ty, RegClass C) { return RA.get(Ty, C, LeafFlag); }

void VCode::putreg(Reg R) { RA.put(R); }

Reg VCode::tmp(unsigned I, Type Ty) const {
  const std::vector<Reg> &L = isFpType(Ty) ? TI.FpTemps : TI.IntTemps;
  if (I >= L.size())
    fatalKind(CgErrKind::RegisterPressure,
              "register assertion: %s has only %zu %s temporaries, T%u "
              "requested",
              TI.Name, L.size(), isFpType(Ty) ? "fp" : "integer", I);
  return L[I];
}

Reg VCode::sav(unsigned I, Type Ty) {
  const std::vector<Reg> &L = isFpType(Ty) ? TI.FpSaves : TI.IntSaves;
  if (I >= L.size())
    fatalKind(CgErrKind::RegisterPressure,
              "register assertion: %s has only %zu %s callee-saved "
              "registers, S%u requested",
              TI.Name, L.size(), isFpType(Ty) ? "fp" : "integer", I);
  RA.noteCalleeSavedUse(L[I]);
  return L[I];
}

Label VCode::genLabel() {
  LabelPos.push_back(-1);
  return Label{int32_t(LabelPos.size() - 1)};
}

void VCode::label(Label L) {
  assert(L.isValid() && size_t(L.Id) < LabelPos.size() && "bad label");
  if (LabelPos[L.Id] != -1)
    fatal("label %d bound twice", L.Id);
  LabelPos[L.Id] = Buf.wordIndex();
}

SimAddr VCode::labelAddr(Label L) const {
  assert(L.isValid() && size_t(L.Id) < LabelPos.size() && "bad label");
  if (LabelPos[L.Id] < 0)
    fatalKind(CgErrKind::UnboundLabel,
              "v_end: label %d is referenced but never bound", L.Id);
  return Buf.addrOfWord(uint32_t(LabelPos[L.Id]));
}

bool VCode::labelBound(Label L) const {
  return L.isValid() && size_t(L.Id) < LabelPos.size() &&
         LabelPos[L.Id] >= 0;
}

Local VCode::localVar(Type Ty) {
  unsigned Size = typeSize(Ty, TI.WordBytes);
  LocalBytes = uint32_t(alignTo(LocalBytes, Size));
  Local Lo{int32_t(TI.localAreaBase() + LocalBytes), Ty};
  LocalBytes += Size;
  return Lo;
}

void VCode::loadLocal(Type Ty, Reg Rd, Local Lo) {
  assert(Lo.isValid() && "local never allocated");
  loadImm(Ty, Rd, spReg(), Lo.Off);
}

void VCode::storeLocal(Type Ty, Reg Rs, Local Lo) {
  assert(Lo.isValid() && "local never allocated");
  storeImm(Ty, Rs, spReg(), Lo.Off);
}

void VCode::localAddr(Reg Rd, Local Lo) {
  assert(Lo.isValid() && "local never allocated");
  binopImm(BinOp::Add, Type::P, Rd, spReg(), Lo.Off);
}

Label VCode::constPoolLabel(uint64_t Bits) {
  auto It = ConstPoolIndex.find(Bits);
  if (It != ConstPoolIndex.end())
    return ConstPoolLabels[It->second];
  ConstPoolIndex.emplace(Bits, unsigned(ConstPool.size()));
  ConstPool.push_back(Bits);
  ConstPoolLabels.push_back(genLabel());
  return ConstPoolLabels.back();
}

void VCode::callBegin(const char *ArgTypeStr) {
  if (LeafFlag)
    fatal("call constructed inside a procedure declared V_LEAF");
  std::vector<Type> Types = parseTypeString(ArgTypeStr);
  CallLocs = computeArgLocs(CurCC, Types, TI.WordBytes);
  CallNextArg = 0;
  uint32_t Need = outArgBytes(CurCC, CallLocs, TI.WordBytes);
  if (Need > TI.OutArgReserveBytes)
    fatal("call needs %u bytes of stack arguments but the fixed reserve is "
          "%u; raise TargetInfo::OutArgReserveBytes",
          Need, TI.OutArgReserveBytes);
  MadeCall = true;
}

void VCode::callArg(Reg Src) {
  if (CallNextArg >= CallLocs.size())
    fatal("callArg: more arguments supplied than declared in callBegin");
  const ArgLoc &L = CallLocs[CallNextArg++];
  if (L.OnStack)
    storeImm(L.Ty, Src, spReg(), L.StackOff);
  else if (Src != L.R)
    unop(UnOp::Mov, L.Ty, L.R, Src);
}

void VCode::callAddr(SimAddr Callee) {
  if (LeafFlag)
    fatal("call constructed inside a procedure declared V_LEAF");
  MadeCall = true;
  T.emitCallAddr(*this, Callee);
}

void VCode::callReg(Reg Callee) {
  if (LeafFlag)
    fatal("call constructed inside a procedure declared V_LEAF");
  MadeCall = true;
  T.emitCallReg(*this, Callee);
}

void VCode::callLabel(Label L) {
  if (LeafFlag)
    fatal("call constructed inside a procedure declared V_LEAF");
  MadeCall = true;
  T.emitCallLabel(*this, L);
}
