//===- core/StrengthReduce.cpp - mul/div-by-constant reducer ---------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "core/StrengthReduce.h"
#include "core/VCode.h"
#include "support/BitUtils.h"

using namespace vcode;

void vcode::emitMulConst(VCode &VC, Type Ty, Reg Rd, Reg Rs, int64_t K) {
  if (Rd == Rs)
    fatal("mulk: destination must differ from source");
  if (K == 0) {
    VC.setInt(Ty, Rd, 0);
    return;
  }
  if (K == 1) {
    VC.unop(UnOp::Mov, Ty, Rd, Rs);
    return;
  }
  bool Negate = K < 0;
  uint64_t M = Negate ? uint64_t(-K) : uint64_t(K);

  if (isPowerOf2(M)) {
    VC.binopImm(BinOp::Lsh, Ty, Rd, Rs, int64_t(log2Floor(M)));
    if (Negate)
      VC.unop(UnOp::Neg, Ty, Rd, Rd);
    return;
  }
  // 2^k - 1 pattern: (rs << k) - rs.
  if (isPowerOf2(M + 1)) {
    VC.binopImm(BinOp::Lsh, Ty, Rd, Rs, int64_t(log2Floor(M + 1)));
    VC.binop(BinOp::Sub, Ty, Rd, Rd, Rs);
    if (Negate)
      VC.unop(UnOp::Neg, Ty, Rd, Rd);
    return;
  }
  // General binary decomposition if it stays cheap (a handful of set
  // bits); otherwise the hardware multiply wins.
  unsigned SetBits = 0;
  for (uint64_t V = M; V; V &= V - 1)
    ++SetBits;
  Reg T = SetBits <= 4 ? VC.getreg(Ty) : Reg();
  if (T.isValid()) {
    bool First = true;
    for (int Bit = 63; Bit >= 0; --Bit) {
      if (!(M & (uint64_t(1) << Bit)))
        continue;
      if (First) {
        if (Bit == 0)
          VC.unop(UnOp::Mov, Ty, Rd, Rs);
        else
          VC.binopImm(BinOp::Lsh, Ty, Rd, Rs, Bit);
        First = false;
        continue;
      }
      if (Bit == 0) {
        VC.binop(BinOp::Add, Ty, Rd, Rd, Rs);
      } else {
        VC.binopImm(BinOp::Lsh, Ty, T, Rs, Bit);
        VC.binop(BinOp::Add, Ty, Rd, Rd, T);
      }
    }
    if (Negate)
      VC.unop(UnOp::Neg, Ty, Rd, Rd);
    VC.putreg(T);
    return;
  }
  VC.binopImm(BinOp::Mul, Ty, Rd, Rs, K);
}

void vcode::emitDivPow2(VCode &VC, Type Ty, Reg Rd, Reg Rs, int64_t K) {
  if (K <= 0 || !isPowerOf2(uint64_t(K)))
    fatal("divk: constant must be a positive power of two");
  if (K == 1) {
    VC.unop(UnOp::Mov, Ty, Rd, Rs);
    return;
  }
  unsigned Sh = log2Floor(uint64_t(K));
  unsigned Bits = Ty == Type::L ? VC.info().WordBytes * 8 : 32;
  // Round-toward-zero: add (2^sh - 1) to negative dividends first.
  Reg T = VC.getreg(Ty);
  if (!T.isValid())
    fatal("divk: out of scratch registers");
  VC.binopImm(BinOp::Rsh, Ty, T, Rs, int64_t(Bits - 1)); // 0 or -1
  VC.binopImm(BinOp::And, Ty, T, T, K - 1);
  VC.binop(BinOp::Add, Ty, T, T, Rs);
  VC.binopImm(BinOp::Rsh, Ty, Rd, T, int64_t(Sh));
  VC.putreg(T);
}

void vcode::registerStrengthReduce(Target &T) {
  auto MulK = [](Type Ty) {
    return [Ty](VCode &VC, const Operand *Ops, unsigned N) {
      if (N != 3 || Ops[0].Kind != Operand::RegOp ||
          Ops[1].Kind != Operand::RegOp || Ops[2].Kind != Operand::ImmOp)
        fatal("mulk expects (rd, rs, imm)");
      emitMulConst(VC, Ty, Ops[0].R, Ops[1].R, Ops[2].Imm);
    };
  };
  T.defineInstruction("mulki", MulK(Type::I));
  T.defineInstruction("mulkl", MulK(Type::L));
  T.defineInstruction("divki", [](VCode &VC, const Operand *Ops, unsigned N) {
    if (N != 3 || Ops[0].Kind != Operand::RegOp ||
        Ops[1].Kind != Operand::RegOp || Ops[2].Kind != Operand::ImmOp)
      fatal("divk expects (rd, rs, imm)");
    emitDivPow2(VC, Type::I, Ops[0].R, Ops[1].R, Ops[2].Imm);
  });
}
