//===- core/VRegLayer.h - Unlimited virtual registers -----------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unlimited-virtual-register extension layer the paper describes in
/// §5.4/§6.2: "support for unlimited virtual registers could be added in a
/// similar manner [as an extension] ... preliminary results indicate that
/// the addition of this (optional) support would increase code generation
/// cost by roughly a factor of two."
///
/// The layer runs at either generation tier (core/Tier.h):
///
/// Tier-0 (the original layer): virtual registers are backed by stack
/// locals (v_local) plus a small set of physical staging registers; every
/// layered instruction loads its sources, operates, and stores its
/// destination — the paper's naive cost model, measured by bench_ablation.
///
/// Tier-1: the same mirrored surface *records* a compact buffered IR
/// (per-op vreg defs/uses) instead of emitting. finish() then runs
/// linear-scan register allocation over the recording (core/LinearScan.h)
/// and replays it through the real emitters with the Peephole and
/// StrengthReduce layers applied unconditionally and branch delay slots
/// filled on machines that have them (MIPS/SPARC). Values live in real
/// registers; stack homes are allocated only for vregs the allocator
/// spills under pressure.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_CORE_VREGLAYER_H
#define VCODE_CORE_VREGLAYER_H

#include "core/Tier.h"
#include "core/VCode.h"
#include <vector>

namespace vcode {

/// A virtual register handle.
struct VReg {
  int32_t Id = -1;
  constexpr bool isValid() const { return Id >= 0; }
};

/// Per-function virtual-register state layered over a VCode stream.
/// Create after v_lambda; use the mirrored instruction surface; call
/// finish() before v_end (a no-op at Tier-0, the allocate-and-replay
/// pass at Tier-1).
class VRegLayer {
public:
  explicit VRegLayer(VCode &V, Tier T = Tier::Tier0);
  ~VRegLayer();

  Tier tier() const { return Mode; }

  /// Allocates a fresh virtual register of type \p Ty (never fails until
  /// stack space runs out).
  VReg alloc(Type Ty);

  /// A vreg holding the incoming argument in \p ArgReg. At Tier-1 the
  /// vreg is pre-colored to the argument register (no copy); at Tier-0
  /// this is alloc + fromPhys.
  VReg fromArg(Type Ty, Reg ArgReg);

  /// Copies a physical register into a vreg. The source must still hold
  /// its value when finish() replays at Tier-1 — argument registers and
  /// registers the client has not released qualify.
  void fromPhys(VReg Dst, Reg Src);

  // Mirrored instruction surface.
  void binop(BinOp Op, Type Ty, VReg Rd, VReg Rs1, VReg Rs2);
  void binopImm(BinOp Op, Type Ty, VReg Rd, VReg Rs1, int64_t Imm);
  void unop(UnOp Op, Type Ty, VReg Rd, VReg Rs);
  void setInt(Type Ty, VReg Rd, uint64_t Imm);
  void load(Type Ty, VReg Rd, VReg Base, int64_t Off);
  void store(Type Ty, VReg Val, VReg Base, int64_t Off);
  void branch(Cond C, Type Ty, VReg A, VReg B, Label L);
  void branchImm(Cond C, Type Ty, VReg A, int64_t Imm, Label L);
  void ret(Type Ty, VReg Rs);

  // Control flow must route through the layer so the Tier-1 recording
  // sees it (labels resolve positions, backward branches extend
  // liveness across loops). At Tier-0 these forward directly.
  void label(Label L);
  void jmp(Label L);
  void jmpReg(VReg R);

  /// Tier-1: allocates registers over the recording and replays it
  /// through the optimizing emitters. Tier-0: no-op. Idempotent.
  void finish();

  // Post-finish() introspection (Tier-1; zero at Tier-0).
  unsigned spillCount() const { return Spills; }
  unsigned delayFills() const { return DelayFills; }
  unsigned retFolds() const { return RetFolds; }
  unsigned peepholeSaved() const { return PhSaved; }
  size_t recordedOps() const { return Rec.size(); }

private:
  struct Slot {
    Local Home;          ///< Tier-0: staging home. Tier-1: spill home.
    Type Ty = Type::I;
    Reg Pre;             ///< Tier-1 pre-color (argument registers)
    Reg Phys;            ///< Tier-1 assignment (invalid when spilled)
    bool Spilled = false;
  };

  /// One recorded operation of the Tier-1 buffered IR.
  struct RecOp {
    enum Kind : uint8_t {
      Binop,
      BinopImm,
      Unop,
      SetInt,
      Load,
      Store,
      Branch,
      BranchImm,
      Ret,
      Lbl,
      Jmp,
      JmpReg,
      FromPhys,
    };
    Kind K = Binop;
    uint8_t Op = 0; ///< BinOp / UnOp / Cond, per kind
    Type Ty = Type::I;
    int32_t D = -1, S1 = -1, S2 = -1; ///< vreg refs
    int64_t Imm = 0;                  ///< immediate / offset / set value
    Label L;                          ///< branch target / bound label
    Reg Phys;                         ///< FromPhys source
  };

  // --- Tier-0 path ----------------------------------------------------------
  Reg stage(unsigned Which, Type Ty); ///< staging register 0/1/2
  Reg readIn(VReg R, unsigned Which); ///< load vreg into a staging reg
  void writeBack(VReg R, Reg Phys);   ///< store staging reg to its home

  // --- Tier-1 path ----------------------------------------------------------
  RecOp &rec(RecOp::Kind K);
  void checkVReg(VReg R) const;
  void claimPools();
  void releaseClaimed();
  void allocate();
  void replay();
  Reg physOf(int32_t V) const;
  bool isSpilled(int32_t V) const;
  Reg scratchFor(Type Ty, unsigned Which) const;

  VCode &V;
  Tier Mode;
  std::vector<Slot> Slots;
  Reg IntStage[3];
  Reg FpStage[3];

  std::vector<RecOp> Rec;
  std::vector<Reg> IntPool, FpPool;
  Reg IntScratch[2], FpScratch[2];
  std::vector<Reg> Claimed; ///< everything to putreg (pool + scratch)
  bool Finished = false;
  unsigned Spills = 0;
  unsigned DelayFills = 0;
  unsigned RetFolds = 0;
  unsigned PhSaved = 0;
};

} // namespace vcode

#endif // VCODE_CORE_VREGLAYER_H
