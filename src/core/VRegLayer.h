//===- core/VRegLayer.h - Unlimited virtual registers -----------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unlimited-virtual-register extension layer the paper describes in
/// §5.4/§6.2: "support for unlimited virtual registers could be added in a
/// similar manner [as an extension] ... preliminary results indicate that
/// the addition of this (optional) support would increase code generation
/// cost by roughly a factor of two."
///
/// The layer sits strictly on top of the VCode core: virtual registers are
/// backed by stack locals (v_local) plus a small set of physical staging
/// registers; every layered instruction loads its sources, operates, and
/// stores its destination. bench_ablation measures the predicted ~2x
/// code-generation cost.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_CORE_VREGLAYER_H
#define VCODE_CORE_VREGLAYER_H

#include "core/VCode.h"
#include <vector>

namespace vcode {

/// A virtual register handle.
struct VReg {
  int32_t Id = -1;
  constexpr bool isValid() const { return Id >= 0; }
};

/// Per-function virtual-register state layered over a VCode stream.
/// Create after v_lambda; use the mirrored instruction surface; the real
/// registers it stages through are claimed from the core allocator.
class VRegLayer {
public:
  explicit VRegLayer(VCode &V);
  ~VRegLayer();

  /// Allocates a fresh virtual register of type \p Ty (never fails until
  /// stack space runs out).
  VReg alloc(Type Ty);

  /// Copies a physical register (e.g. an incoming argument) into a vreg.
  void fromPhys(VReg Dst, Reg Src);

  // Mirrored instruction surface.
  void binop(BinOp Op, Type Ty, VReg Rd, VReg Rs1, VReg Rs2);
  void binopImm(BinOp Op, Type Ty, VReg Rd, VReg Rs1, int64_t Imm);
  void unop(UnOp Op, Type Ty, VReg Rd, VReg Rs);
  void setInt(Type Ty, VReg Rd, uint64_t Imm);
  void load(Type Ty, VReg Rd, VReg Base, int64_t Off);
  void store(Type Ty, VReg Val, VReg Base, int64_t Off);
  void branch(Cond C, Type Ty, VReg A, VReg B, Label L);
  void branchImm(Cond C, Type Ty, VReg A, int64_t Imm, Label L);
  void ret(Type Ty, VReg Rs);

private:
  struct Slot {
    Local Home;
    Type Ty;
  };
  Reg stage(unsigned Which, Type Ty); ///< staging register 0/1/2
  Reg readIn(VReg R, unsigned Which); ///< load vreg into a staging reg
  void writeBack(VReg R, Reg Phys);   ///< store staging reg to its home

  VCode &V;
  std::vector<Slot> Slots;
  Reg IntStage[3];
  Reg FpStage[3];
};

} // namespace vcode

#endif // VCODE_CORE_VREGLAYER_H
