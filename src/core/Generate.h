//===- core/Generate.h - Recoverable generation driver ----------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// generateWithRetry: the recovery-mode idiom for clients whose code size
/// is data-dependent (a DPF filter or tcc program of unknown size decides
/// how many words v_lambda needs). The paper's answer is "pass a larger
/// region"; a long-running service cannot abort to deliver that advice.
/// This driver runs the client's emission callback with error recovery
/// enabled and, when the only failure is a code-buffer overflow, re-runs
/// it into a geometrically grown region until it fits (bounded attempts).
/// Any other error kind — and any overflow that persists at the size cap —
/// is returned to the caller as a structured CgError instead.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_CORE_GENERATE_H
#define VCODE_CORE_GENERATE_H

#include "core/Tier.h"
#include "core/VCode.h"
#include "support/Error.h"
#include "support/Telemetry.h"
#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <type_traits>

namespace vcode {

/// Region-growth policy (and generation tier) for generateWithRetry.
struct GenerateOptions {
  size_t InitialBytes = 4096;        ///< first attempt's region size
  size_t MaxBytes = size_t(1) << 24; ///< growth cap (16 MiB)
  unsigned MaxAttempts = 16;         ///< attempt bound
  Tier GenTier = Tier::Tier0;        ///< pipeline for tier-aware emitters
};

/// Outcome of generateWithRetry: either a valid CodePtr, or the error
/// that stopped the driver.
struct GenerateResult {
  CodePtr Code;          ///< invalid unless ok()
  CgError Err;           ///< the terminating error when !ok()
  unsigned Attempts = 0; ///< emission attempts made (>= 1)
  size_t RegionBytes = 0; ///< region size of the last attempt
  Tier GenTier = Tier::Tier0; ///< tier the driver ran the emitter at
  bool ok() const { return Code.isValid(); }
};

/// RAII enablement of recovery mode on a VCode; restores the previous
/// policy on scope exit (no-op when recovery was already on).
class RecoveryScope {
public:
  explicit RecoveryScope(VCode &V) : V(V), WasOn(V.errorRecovery()) {
    if (!WasOn)
      V.setErrorRecovery(true);
  }
  ~RecoveryScope() {
    if (!WasOn)
      V.setErrorRecovery(false);
  }
  RecoveryScope(const RecoveryScope &) = delete;
  RecoveryScope &operator=(const RecoveryScope &) = delete;

private:
  VCode &V;
  bool WasOn;
};

/// Runs \p Emit(\p Alloc(bytes)) under error recovery, growing the region
/// geometrically while the failure is CgErrKind::BufferOverflow.
///
/// \p Alloc: size_t -> CodeMem. Called once per attempt; typically
///   [&](size_t N) { return Mem.allocCode(N); }. If earlier attempts'
///   regions should be reclaimed, take a sim::Memory::mark() before the
///   call and release it inside Alloc — but only when nothing allocated
///   during emission must survive the retry.
/// \p Emit: CodeMem -> CodePtr. Must be re-runnable from scratch: it
///   receives a fresh region and performs the whole lambda()..end()
///   sequence. Errors unwind out of it via CgAbort; the driver catches
///   them, abandons the poisoned function, and decides whether to retry.
///
/// Non-overflow errors (arena exhaustion, API misuse, ...) are returned
/// immediately — a larger code region cannot cure them.
///
/// \p Emit may optionally take the generation tier as a second parameter
/// (CodeMem, Tier); tier-aware emitters receive Opts.GenTier, emitters
/// with the classic single-parameter shape run unchanged.
template <typename AllocFn, typename EmitFn>
GenerateResult generateWithRetry(VCode &V, AllocFn Alloc, EmitFn Emit,
                                 GenerateOptions Opts = {}) {
  GenerateResult R;
  R.GenTier = Opts.GenTier;
  // Stamp the tier onto the CodeMap entry v_end will publish (the stamp
  // survives lambda(); see VCode::setPublishTier).
  V.setPublishTier(Opts.GenTier);
  RecoveryScope Scope(V);
  size_t Bytes = std::max<size_t>(Opts.InitialBytes, 16);
  // Callers that ignore Attempts still need a diagnosable failure: stamp
  // the retry history into the error text the moment the driver gives up.
  auto GiveUp = [&]() -> GenerateResult & {
    size_t Len = std::strlen(R.Err.Detail);
    std::snprintf(R.Err.Detail + Len, sizeof(R.Err.Detail) - Len,
                  " [gave up after %u attempt(s), last region %zu bytes]",
                  R.Attempts, R.RegionBytes);
    return R;
  };
  for (unsigned A = 0; A < std::max(Opts.MaxAttempts, 1u); ++A) {
    ++R.Attempts;
    VCODE_TM_COUNT("core.gen.attempts", 1);
    R.RegionBytes = Bytes;
    V.clearError();
    try {
      CodePtr P;
      CodeMem CM = Alloc(Bytes);
      // Overflow diagnostics should name whoever sized the region: these
      // regions are driver-sized and regrown automatically, so "pass a
      // larger region to v_lambda" would mislead.
      if (!CM.Source)
        CM.Source = "the region was sized by generateWithRetry (it grows "
                    "and retries on overflow)";
      if constexpr (std::is_invocable_v<EmitFn, CodeMem, Tier>)
        P = Emit(CM, Opts.GenTier);
      else
        P = Emit(CM);
      if (P.isValid()) {
        R.Code = P;
        R.Err = CgError{};
        return R;
      }
      R.Err = V.lastError(); // poisoned end() returned the invalid CodePtr
    } catch (const CgAbort &E) {
      V.abandon();
      R.Err = E.error();
    }
    if (R.Err.Kind != CgErrKind::BufferOverflow || Bytes >= Opts.MaxBytes)
      return GiveUp();
    VCODE_TM_COUNT("core.gen.retry", 1);
    VCODE_TM_COUNT("core.gen.overflow_retries", 1);
    Bytes = std::min(Bytes * 2, Opts.MaxBytes);
  }
  return GiveUp();
}

} // namespace vcode

#endif // VCODE_CORE_GENERATE_H
