//===- core/CodeBuffer.h - In-place instruction emission --------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The in-place code buffer. VCODE's defining property is that instructions
/// are emitted directly into client-provided code memory with a bumped
/// instruction pointer (paper Fig. 2: "*v_ip++ = ..."), with no intermediate
/// data structures. CodeBuffer is exactly that pointer bump, plus the
/// book-keeping needed to know the (simulated-machine) address of each word
/// so absolute addresses can be encoded at emission time.
///
/// The buffer emits in units of the target's smallest instruction element:
/// 4 bytes on the fixed-width RISC ports (MIPS, SPARC, Alpha), 1 byte on
/// the variable-length x86-64 host port. All cursor arithmetic (wordIndex,
/// addrOfWord, patch indices) is in units, so the RISC backends are
/// unchanged and the x64 backend addresses individual bytes.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_CORE_CODEBUFFER_H
#define VCODE_CORE_CODEBUFFER_H

#include "support/Error.h"
#include <cassert>
#include <cstdint>
#include <cstring>

namespace vcode {

/// Simulated-machine address. 64-bit to cover the Alpha target; the 32-bit
/// targets use the low 32 bits. The native x86-64 port maps simulated
/// addresses 1:1 onto host addresses.
using SimAddr = uint64_t;

/// Arena-side hooks for executable-memory protection. An arena that hands
/// out W^X code regions (sim::Memory in native mode) implements these; the
/// generation core calls beginWrite() before emitting into a region and
/// publish() once the finished function's bytes are final, so RW->RX flips
/// and icache coherence live in one place rather than in every client.
/// The default no-op implementations keep the simulated arenas unchanged.
class CodeArena {
public:
  virtual ~CodeArena() = default;
  /// The region [Addr, Addr+Size) is about to be (re)written.
  virtual void beginWrite(SimAddr Addr, size_t Size) {
    (void)Addr;
    (void)Size;
  }
  /// The region [Addr, Addr+Size) now holds finished code: make it
  /// executable (and non-writable) and flush instruction caches.
  virtual void publish(SimAddr Addr, size_t Size) {
    (void)Addr;
    (void)Size;
  }
};

/// A span of code memory handed to v_lambda: host storage backing a range
/// of simulated addresses. On the real system these coincide; here the host
/// pointer is the simulator arena's backing store (or, in native mode, the
/// mapping itself).
struct CodeMem {
  uint8_t *Host = nullptr; ///< host storage for the region
  SimAddr Guest = 0;       ///< simulated address of Host[0]
  size_t Size = 0;         ///< capacity in bytes
  /// Owning arena's W^X hooks, when the region needs protection flips
  /// around emission (native mode); null for plain simulated memory.
  CodeArena *Arena = nullptr;
  /// Who sized this region, for overflow diagnostics ("v_lambda" when the
  /// client handed it over directly; the retry driver and the code cache
  /// stamp themselves). Null means the legacy direct-to-v_lambda wording.
  const char *Source = nullptr;
};

/// Result of v_end: the entry address of a finished function. SizeBytes
/// counts from the start of the code region (the entry may sit past a
/// partially used prologue reserve; see Target::endFunction).
struct CodePtr {
  SimAddr Entry = 0;
  size_t SizeBytes = 0;
  constexpr bool isValid() const { return Entry != 0; }
};

/// Bump-pointer emitter over a CodeMem region, in units of the target's
/// instruction granularity (TargetInfo::CodeUnitBytes): put() stores one
/// unit — a 32-bit word on the RISC ports, a byte on x86-64.
class CodeBuffer {
public:
  CodeBuffer() = default;

  /// Rebinds the buffer to \p Mem with \p UnitBytes-sized instruction
  /// units and resets the cursor. A malformed region — null or empty
  /// storage, a guest address misaligned to the unit, or a size that is
  /// not a whole number of units — is a recoverable bind-time error
  /// (CgErrKind::BadRegion), not a silent truncation: a 4-byte-unit
  /// region of 1023 bytes used to quietly lose its tail word, and a
  /// misaligned guest base mis-addressed every branch target.
  void reset(CodeMem Mem, unsigned UnitBytes = 4) {
    assert((UnitBytes == 1 || UnitBytes == 2 || UnitBytes == 4) &&
           "unsupported instruction unit");
    if (Mem.Host == nullptr || Mem.Size == 0)
      fatalKind(CgErrKind::BadRegion,
                "cannot bind code region: no storage (%zu bytes at %p)",
                Mem.Size, static_cast<void *>(Mem.Host));
    if (Mem.Guest % UnitBytes != 0)
      fatalKind(CgErrKind::BadRegion,
                "cannot bind code region: address 0x%llx is not %u-byte "
                "aligned",
                (unsigned long long)Mem.Guest, UnitBytes);
    if (Mem.Size % UnitBytes != 0)
      fatalKind(CgErrKind::BadRegion,
                "cannot bind code region: %zu bytes is not a multiple of "
                "the %u-byte instruction unit",
                Mem.Size, UnitBytes);
    Base = Mem.Host;
    Ip = Base;
    Limit = Base + Mem.Size;
    GuestBase = Mem.Guest;
    Unit = UnitBytes;
    Source = Mem.Source;
  }

  /// True once reset() has bound a region.
  bool isBound() const { return Base != nullptr; }

  /// Emits one instruction unit; the paper's "*v_ip++ = w". On a 4-byte
  /// target this is the classic word store; on a byte target it stores
  /// the low byte.
  void put(uint32_t W) {
    if (Ip == Limit)
      overflow(1);
    storeUnit(Ip, W);
    Ip += Unit;
  }

  /// Byte-granular emission for variable-length targets (requires a
  /// 1-byte unit). Little-endian, matching x86-64.
  void put8(uint8_t B) {
    assert(Unit == 1 && "byte emission needs a byte-unit buffer");
    if (Ip == Limit)
      overflow(1);
    *Ip++ = B;
  }
  void put16(uint16_t V) {
    assert(Unit == 1 && "byte emission needs a byte-unit buffer");
    ensureWords(2);
    std::memcpy(Ip, &V, 2);
    Ip += 2;
  }
  void put32(uint32_t V) {
    assert(Unit == 1 && "byte emission needs a byte-unit buffer");
    ensureWords(4);
    std::memcpy(Ip, &V, 4);
    Ip += 4;
  }
  void put64(uint64_t V) {
    assert(Unit == 1 && "byte emission needs a byte-unit buffer");
    ensureWords(8);
    std::memcpy(Ip, &V, 8);
    Ip += 8;
  }

  /// Checks up front that \p N units fit, so a multi-unit synthesis
  /// sequence reports overflow at instruction granularity instead of
  /// fataling halfway through with a partial sequence in the buffer.
  /// Backends call this once before fixed-length multi-unit sequences.
  void ensureWords(size_t N) {
    if (remainingWords() < N)
      overflow(N);
  }

  /// Current cursor as a function-relative unit index.
  uint32_t wordIndex() const { return uint32_t(Ip - Base) / Unit; }

  /// Bytes emitted so far.
  size_t usedBytes() const { return size_t(Ip - Base); }

  /// Simulated address of the next unit to be emitted.
  SimAddr cursorAddr() const { return GuestBase + SimAddr(Ip - Base); }

  /// Simulated address of unit \p Idx.
  SimAddr addrOfWord(uint32_t Idx) const {
    return GuestBase + SimAddr(Idx) * Unit;
  }

  /// Reads back an already-emitted unit (for backpatching). The bound is
  /// checked unconditionally: patch indices come from client-supplied
  /// fixups, so a bad one must be a reportable error, not release-mode UB.
  uint32_t read(uint32_t Idx) const {
    checkPatchIndex(Idx);
    uint32_t W = 0;
    std::memcpy(&W, Base + size_t(Idx) * Unit, Unit);
    return W;
  }

  /// Overwrites unit \p Idx (backpatching). Bound checked unconditionally;
  /// see read().
  void patch(uint32_t Idx, uint32_t W) {
    checkPatchIndex(Idx);
    storeUnit(Base + size_t(Idx) * Unit, W);
  }

  /// ORs bits into unit \p Idx (filling a displacement field).
  void patchOr(uint32_t Idx, uint32_t Bits) { patch(Idx, read(Idx) | Bits); }

  /// Overwrites the 4 bytes starting at unit \p Idx (little-endian), for
  /// rel32 fields on byte-unit targets.
  void patch32(uint32_t Idx, uint32_t V) {
    assert(Unit == 1 && "patch32 needs a byte-unit buffer");
    if (size_t(Idx) + 4 > usedBytes())
      fatalAt(CgErrKind::BadPatch, wordIndex(),
              "patch index %u out of range (only %u words emitted)", Idx,
              wordIndex());
    std::memcpy(Base + Idx, &V, 4);
  }

  /// Simulated address of the start of the region.
  SimAddr baseAddr() const { return GuestBase; }

  /// Host address of the start of the region (where the bytes actually
  /// live; identical to baseAddr() only for native arenas).
  const uint8_t *hostBase() const { return Base; }

  /// Number of units still available.
  size_t remainingWords() const { return size_t(Limit - Ip) / Unit; }

  /// Instruction unit in bytes (TargetInfo::CodeUnitBytes of the target
  /// this buffer was bound for).
  unsigned unitBytes() const { return Unit; }

private:
  void storeUnit(uint8_t *P, uint32_t W) {
    if (Unit == 4)
      std::memcpy(P, &W, 4); // the common RISC word store
    else if (Unit == 1)
      *P = uint8_t(W);
    else
      std::memcpy(P, &W, 2);
  }

  void checkPatchIndex(uint32_t Idx) const {
    if (Idx >= wordIndex())
      fatalAt(CgErrKind::BadPatch, wordIndex(),
              "patch index %u out of range (only %u words emitted)", Idx,
              wordIndex());
  }

  [[noreturn]] void overflow(size_t Needed) const {
    size_t Cap = size_t(Limit - Base) / Unit;
    if (Needed <= 1)
      fatalAt(CgErrKind::BufferOverflow, wordIndex(),
              "code buffer overflow (%zu words); %s", Cap,
              Source ? Source : "pass a larger region to v_lambda");
    else
      fatalAt(CgErrKind::BufferOverflow, wordIndex(),
              "code buffer overflow: instruction needs %zu words but only "
              "%zu of %zu remain; %s",
              Needed, remainingWords(), Cap,
              Source ? Source : "pass a larger region to v_lambda");
  }

  uint8_t *Base = nullptr;
  uint8_t *Ip = nullptr;
  uint8_t *Limit = nullptr;
  SimAddr GuestBase = 0;
  unsigned Unit = 4;
  const char *Source = nullptr;
};

} // namespace vcode

#endif // VCODE_CORE_CODEBUFFER_H
