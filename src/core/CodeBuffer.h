//===- core/CodeBuffer.h - In-place instruction emission --------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The in-place code buffer. VCODE's defining property is that instructions
/// are emitted directly into client-provided code memory with a bumped
/// instruction pointer (paper Fig. 2: "*v_ip++ = ..."), with no intermediate
/// data structures. CodeBuffer is exactly that pointer bump, plus the
/// book-keeping needed to know the (simulated-machine) address of each word
/// so absolute addresses can be encoded at emission time.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_CORE_CODEBUFFER_H
#define VCODE_CORE_CODEBUFFER_H

#include "support/Error.h"
#include <cassert>
#include <cstdint>
#include <cstring>

namespace vcode {

/// Simulated-machine address. 64-bit to cover the Alpha target; the 32-bit
/// targets use the low 32 bits.
using SimAddr = uint64_t;

/// A span of code memory handed to v_lambda: host storage backing a range
/// of simulated addresses. On the real system these coincide; here the host
/// pointer is the simulator arena's backing store.
struct CodeMem {
  uint8_t *Host = nullptr; ///< host storage for the region
  SimAddr Guest = 0;       ///< simulated address of Host[0]
  size_t Size = 0;         ///< capacity in bytes
};

/// Result of v_end: the entry address of a finished function. SizeBytes
/// counts from the start of the code region (the entry may sit past a
/// partially used prologue reserve; see Target::endFunction).
struct CodePtr {
  SimAddr Entry = 0;
  size_t SizeBytes = 0;
  constexpr bool isValid() const { return Entry != 0; }
};

/// Bump-pointer emitter over a CodeMem region. All targets emit fixed
/// 32-bit instruction words (MIPS, SPARC, and Alpha all do).
class CodeBuffer {
public:
  CodeBuffer() = default;

  /// Rebinds the buffer to \p Mem and resets the cursor. \p Mem must be
  /// 4-byte aligned.
  void reset(CodeMem Mem) {
    assert((Mem.Guest & 3) == 0 && "code memory must be word aligned");
    Base = reinterpret_cast<uint32_t *>(Mem.Host);
    Ip = Base;
    Limit = Base + Mem.Size / 4;
    GuestBase = Mem.Guest;
  }

  /// True once reset() has bound a region.
  bool isBound() const { return Base != nullptr; }

  /// Emits one instruction word; the paper's "*v_ip++ = w".
  void put(uint32_t W) {
    if (Ip == Limit)
      fatalAt(CgErrKind::BufferOverflow, wordIndex(),
              "code buffer overflow (%zu words); pass a larger region to "
              "v_lambda",
              size_t(Limit - Base));
    *Ip++ = W;
  }

  /// Checks up front that \p N words fit, so a multi-word synthesis
  /// sequence reports overflow at instruction granularity instead of
  /// fataling halfway through with a partial sequence in the buffer.
  /// Backends call this once before fixed-length multi-word sequences.
  void ensureWords(size_t N) {
    if (remainingWords() < N)
      fatalAt(CgErrKind::BufferOverflow, wordIndex(),
              "code buffer overflow: instruction needs %zu words but only "
              "%zu of %zu remain; pass a larger region to v_lambda",
              N, remainingWords(), size_t(Limit - Base));
  }

  /// Current cursor as a function-relative word index.
  uint32_t wordIndex() const { return uint32_t(Ip - Base); }

  /// Simulated address of the next word to be emitted.
  SimAddr cursorAddr() const { return GuestBase + 4 * wordIndex(); }

  /// Simulated address of word \p Idx.
  SimAddr addrOfWord(uint32_t Idx) const { return GuestBase + 4 * SimAddr(Idx); }

  /// Reads back an already-emitted word (for backpatching). The bound is
  /// checked unconditionally: patch indices come from client-supplied
  /// fixups, so a bad one must be a reportable error, not release-mode UB.
  uint32_t read(uint32_t Idx) const {
    if (Idx >= wordIndex())
      fatalAt(CgErrKind::BadPatch, wordIndex(),
              "patch index %u out of range (only %u words emitted)", Idx,
              wordIndex());
    return Base[Idx];
  }

  /// Overwrites word \p Idx (backpatching). Bound checked unconditionally;
  /// see read().
  void patch(uint32_t Idx, uint32_t W) {
    if (Idx >= wordIndex())
      fatalAt(CgErrKind::BadPatch, wordIndex(),
              "patch index %u out of range (only %u words emitted)", Idx,
              wordIndex());
    Base[Idx] = W;
  }

  /// ORs bits into word \p Idx (filling a displacement field).
  void patchOr(uint32_t Idx, uint32_t Bits) { patch(Idx, read(Idx) | Bits); }

  /// Simulated address of the start of the region.
  SimAddr baseAddr() const { return GuestBase; }

  /// Number of words still available.
  size_t remainingWords() const { return size_t(Limit - Ip); }

private:
  uint32_t *Base = nullptr;
  uint32_t *Ip = nullptr;
  uint32_t *Limit = nullptr;
  SimAddr GuestBase = 0;
};

} // namespace vcode

#endif // VCODE_CORE_CODEBUFFER_H
