//===- core/RegAlloc.h - Machine-independent register allocator -*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The VCODE register allocator (paper §3.2). Clients request registers by
/// type and class (Temp = caller-saved scratch, Var = persistent across
/// calls); candidates are handed out in a declared priority ordering and an
/// invalid Reg is returned on exhaustion (the paper's error code), at which
/// point clients keep values on the stack. The allocator "makes unused
/// argument registers available for allocation, is intelligent about leaf
/// procedures, and generates code to allow caller-saved registers to stand
/// in for callee-saved registers and vice-versa."
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_CORE_REGALLOC_H
#define VCODE_CORE_REGALLOC_H

#include "core/Reg.h"
#include "core/Target.h"
#include <cstdint>
#include <vector>

namespace vcode {

/// Per-function register allocation state.
class RegAlloc {
public:
  /// Resets all state from the target description: classes, priority
  /// orderings, and availability.
  void init(const TargetInfo &TI);

  /// Replaces the allocation priority ordering for one register kind
  /// (paper: "the client declares an allocation priority ordering for all
  /// register candidates"). Registers not listed become unavailable.
  void setPriorityOrder(Reg::KindType Kind, const std::vector<Reg> &Order);

  /// Dynamically reclassifies one physical register (paper §5.3).
  void setKind(Reg R, RegKind K);

  /// Reclassifies every register as callee-saved (interrupt-handler mode,
  /// paper §5.3: "in an interrupt handler all registers are live").
  void allCalleeSaved();

  /// Allocates a register suitable for type \p Ty and class \p C. Returns
  /// an invalid Reg when the machine's registers are exhausted. \p IsLeaf
  /// lets a leaf procedure use caller-saved registers for Var requests.
  Reg get(Type Ty, RegClass C, bool IsLeaf);

  /// Returns \p R to the free pool.
  void put(Reg R);

  /// Removes a specific register from the free pool (used to pin incoming
  /// argument registers). Returns false if it was already taken.
  bool take(Reg R);

  /// True if \p R is currently available for allocation.
  bool isFree(Reg R) const;

  /// Current classification of \p R (tracks setKind/allCalleeSaved).
  RegKind kindOf(Reg R) const { return entry(R).Kind; }

  /// Bitmask of callee-saved registers of kind \p K that were handed out at
  /// any point (sticky); these must be saved in the prologue.
  uint32_t usedCalleeSavedMask(Reg::KindType K) const {
    return K == Reg::Int ? UsedCalleeInt : UsedCalleeFp;
  }

  /// Marks a register as needing a callee save (used when a client writes
  /// a hard-coded callee-saved register name, paper §5.3).
  void noteCalleeSavedUse(Reg R);

private:
  struct Entry {
    RegKind Kind = RegKind::Unavailable;
    bool Free = false;
  };

  Entry &entry(Reg R);
  const Entry &entry(Reg R) const;
  Reg scan(Reg::KindType Kind, RegKind Want);

  static constexpr unsigned MaxRegs = 64;
  Entry Int[MaxRegs];
  Entry Fp[MaxRegs];
  std::vector<Reg> IntOrder;
  std::vector<Reg> FpOrder;
  uint32_t UsedCalleeInt = 0;
  uint32_t UsedCalleeFp = 0;
};

} // namespace vcode

#endif // VCODE_CORE_REGALLOC_H
