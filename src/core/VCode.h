//===- core/VCode.h - The VCODE dynamic code generator ----------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The VCODE client interface (paper §3). A VCode object is the per-function
/// dynamic code generation state: clients begin a function with lambda()
/// (the paper's v_lambda), emit instructions of the idealized load-store
/// RISC machine through the typed method families (v_addii -> addii), and
/// finish with end() (v_end), which backpatches prologue/epilogue code and
/// unresolved jumps and returns a pointer to the finished code. Machine code
/// is generated in place: every instruction method writes machine words
/// directly into the client-supplied code region.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_CORE_VCODE_H
#define VCODE_CORE_VCODE_H

#include "core/CallConv.h"
#include "core/CodeBuffer.h"
#include "core/Ops.h"
#include "core/Reg.h"
#include "core/RegAlloc.h"
#include "core/Target.h"
#include "core/Tier.h"
#include "core/Types.h"
#include "support/Error.h"
#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <vector>

namespace vcode {

/// A stack local allocated with VCode::localVar (the paper's v_local).
/// Offsets are SP-relative and stable from the moment of allocation
/// because the register save area has a fixed worst-case size (§5.2).
struct Local {
  int32_t Off = -1;
  Type Ty = Type::V;
  constexpr bool isValid() const { return Off >= 0; }
};

/// Leaf-procedure hints for lambda() (paper V_LEAF / V_NLEAF).
inline constexpr bool LeafHint = true;
inline constexpr bool NonLeafHint = false;

/// A stack argument that the prologue must copy into a register.
struct PrologueArgCopy {
  Type Ty;
  Reg Dst;
  int32_t IncomingOff; ///< byte offset above the callee frame
};

/// Per-function dynamic code generation state.
class VCode {
public:
  explicit VCode(Target &Tgt);
  ~VCode();
  VCode(const VCode &) = delete;
  VCode &operator=(const VCode &) = delete;

  Target &target() { return T; }
  const TargetInfo &info() const { return TI; }

  // --- Error policy ---------------------------------------------------------

  /// Selects the error policy. Off (the default) is the paper's policy:
  /// any error aborts the process with a diagnostic. On, errors raised
  /// while this VCode emits are recorded into lastError(), the in-progress
  /// function is poisoned (end() returns an invalid CodePtr; partially
  /// emitted code is never executable), and control unwinds out of the
  /// failing emitter via a CgAbort exception. Handlers nest per thread:
  /// enable/disable in LIFO order when using several VCode objects.
  void setErrorRecovery(bool Enable);
  /// True when recovery mode is active.
  bool errorRecovery() const { return RecoverMode; }
  /// The first error recorded since the last lambda()/clearError();
  /// CgErrKind::None if generation has succeeded so far.
  const CgError &lastError() const { return Err; }
  /// Clears the recorded error.
  void clearError() { Err = CgError{}; }
  /// Discards an in-progress (poisoned) function so lambda() can be
  /// called again, e.g. with a larger code region. See generateWithRetry.
  void abandon();

  // --- Function lifecycle (paper §3.2) ------------------------------------

  /// Overrides the calling convention for subsequently generated functions
  /// (paper §5.4: "clients can dynamically substitute calling conventions
  /// on a per-generated-function basis").
  void setCallConv(const CallConv &CC) { CurCC = CC; }

  /// Begins generation of a function. \p ArgTypeStr lists incoming
  /// parameter types, e.g. "%i%p%d" ('U' stands for unsigned long); the
  /// registers holding the parameters are returned in \p ArgRegs. \p IsLeaf
  /// declares a leaf procedure; calling out of one is an error. \p Mem is
  /// the storage for the generated code.
  void lambda(const char *ArgTypeStr, Reg *ArgRegs, bool IsLeaf, CodeMem Mem);

  /// Ends generation: links jumps, writes prologue/epilogue, emits the
  /// floating-point constant pool, and returns the entry point.
  CodePtr end();

  /// Names the function being generated for introspection (the CodeMap
  /// entry end() publishes, --dump-code, profiler reports). Cleared by
  /// lambda(); callers that know a better name (cache key, guest PC) can
  /// set it any time before end().
  void setFunctionName(std::string Name) { FnName = std::move(Name); }
  const std::string &functionName() const { return FnName; }

  /// Tier recorded on the published CodeMap entry (generateWithRetry
  /// stamps its GenerateOptions tier here). Unlike the name, the tier
  /// persists across lambda() so a stamp placed before the emitter runs
  /// survives to end().
  void setPublishTier(Tier T) { PubTier = T; }

  // --- Registers (paper §3.2, §5.3) ---------------------------------------

  /// Allocates a register for \p Ty; returns an invalid Reg on exhaustion.
  Reg getreg(Type Ty, RegClass C = RegClass::Temp);
  /// Releases a register obtained from getreg().
  void putreg(Reg R);

  /// Architecture-independent hard-coded caller-saved register names
  /// ("T0", "T1", ... in the paper §5.3). Fatal if \p I exceeds what the
  /// machine provides (the paper's "register assertion").
  Reg tmp(unsigned I, Type Ty = Type::I) const;
  /// Hard-coded callee-saved names ("S0", ...); noting the use so the
  /// prologue saves the register.
  Reg sav(unsigned I, Type Ty = Type::I);

  /// The hardwired zero register.
  Reg zeroReg() const { return TI.Zero; }
  /// The stack pointer.
  Reg spReg() const { return TI.Sp; }
  /// The register in which a function of result type \p Ty returns its
  /// value under the current convention (for register targeting).
  Reg resultReg(Type Ty) const {
    return isFpType(Ty) ? CurCC.FpRet : CurCC.IntRet;
  }

  /// Dynamically reclassifies a register (paper §5.3).
  void setRegKind(Reg R, RegKind K) { RA.setKind(R, K); }
  /// Treats every register as callee-saved (interrupt handler mode).
  void allRegsCalleeSaved() { RA.allCalleeSaved(); }
  /// Declares a new allocation priority ordering.
  void setRegPriority(Reg::KindType K, const std::vector<Reg> &Order) {
    RA.setPriorityOrder(K, Order);
  }

  // --- Labels ---------------------------------------------------------------

  /// Creates a fresh, unbound label (paper v_genlabel).
  Label genLabel();
  /// Binds \p L to the current position (paper v_label).
  void label(Label L);

  // --- Locals (paper v_local) -----------------------------------------------

  /// Allocates a stack local of type \p Ty.
  Local localVar(Type Ty);
  /// Loads a local into a register.
  void loadLocal(Type Ty, Reg Rd, Local Lo);
  /// Stores a register into a local.
  void storeLocal(Type Ty, Reg Rs, Local Lo);
  /// Materializes the address of a local into \p Rd.
  void localAddr(Reg Rd, Local Lo);

  // --- Dynamically constructed calls (paper §2: argument marshaling) --------

  /// Starts a call whose argument types are given by \p ArgTypeStr. The
  /// number and types of arguments need not be known until runtime.
  void callBegin(const char *ArgTypeStr);
  /// Supplies the next argument from \p Src (moved to its ABI location).
  void callArg(Reg Src);
  /// Performs the call to an absolute address.
  void callAddr(SimAddr Callee);
  /// Performs the call through a register.
  void callReg(Reg Callee);
  /// Performs the call to a label in the current stream (a local
  /// subroutine; the callee returns with retlink()).
  void callLabel(Label L);
  /// Returns from a local subroutine through the link register.
  void retlink() { T.emitLinkReturn(*this); }
  /// Where the callee left a result of type \p Ty.
  Reg retvalReg(Type Ty) const { return resultReg(Ty); }

  // --- Raw instruction surface ----------------------------------------------

  void binop(BinOp Op, Type Ty, Reg Rd, Reg Rs1, Reg Rs2) {
    T.emitBinop(*this, Op, Ty, Rd, Rs1, Rs2);
  }
  void binopImm(BinOp Op, Type Ty, Reg Rd, Reg Rs1, int64_t Imm) {
    T.emitBinopImm(*this, Op, Ty, Rd, Rs1, Imm);
  }
  void unop(UnOp Op, Type Ty, Reg Rd, Reg Rs) {
    T.emitUnop(*this, Op, Ty, Rd, Rs);
  }
  void cvt(Type From, Type To, Reg Rd, Reg Rs) {
    T.emitCvt(*this, From, To, Rd, Rs);
  }
  void load(Type Ty, Reg Rd, Reg Base, Reg Off) {
    T.emitLoad(*this, Ty, Rd, Base, Off);
  }
  void loadImm(Type Ty, Reg Rd, Reg Base, int64_t Off) {
    T.emitLoadImm(*this, Ty, Rd, Base, Off);
  }
  void store(Type Ty, Reg Val, Reg Base, Reg Off) {
    T.emitStore(*this, Ty, Val, Base, Off);
  }
  void storeImm(Type Ty, Reg Val, Reg Base, int64_t Off) {
    T.emitStoreImm(*this, Ty, Val, Base, Off);
  }
  void branch(Cond C, Type Ty, Reg A, Reg B, Label L) {
    T.emitBranch(*this, C, Ty, A, B, L);
  }
  void branchImm(Cond C, Type Ty, Reg A, int64_t Imm, Label L) {
    T.emitBranchImm(*this, C, Ty, A, Imm, L);
  }
  /// Unconditional jump to a label (paper "v j ... label").
  void jmp(Label L) { T.emitJump(*this, L); }
  /// Jump through a register.
  void jmpr(Reg R) { T.emitJumpReg(*this, R); }
  /// Jump to an absolute address.
  void jmpi(SimAddr A) { T.emitJumpAddr(*this, A); }
  /// Return \p Rs (typed variants in Instructions.inc).
  void ret(Type Ty, Reg Rs) { T.emitRet(*this, Ty, Rs); }
  /// Return with no value.
  void retv() { T.emitRet(*this, Type::V, Reg()); }
  /// Return the integer constant \p Imm (fused setInt + ret; see
  /// Target::emitRetImm).
  void retImm(Type Ty, int64_t Imm) { T.emitRetImm(*this, Ty, Imm); }
  void nop() { T.emitNop(*this); }
  void setInt(Type Ty, Reg Rd, uint64_t V) { T.emitSetInt(*this, Ty, Rd, V); }
  void setFp(Type Ty, Reg Rd, double V) { T.emitSetFp(*this, Ty, Rd, V); }

  // Named per-type families (paper Table 2 naming: v_addii -> addii).
#include "core/Instructions.inc"

  // --- Portable instruction scheduling (paper §5.3) --------------------------

  /// Emits branch \p Br with \p Slot scheduled into its delay slot when the
  /// machine has one; otherwise \p Slot is placed before the branch. \p Slot
  /// must emit exactly one instruction word and must not change the branch
  /// condition (the paper's v_schedule_delay).
  template <typename BrFn, typename SlotFn>
  void scheduleDelay(BrFn Br, SlotFn Slot) {
    if (!TI.HasBranchDelaySlot) {
      Slot();
      Br();
      return;
    }
    SuppressDelayNop = true;
    Br();
    SuppressDelayNop = false;
    uint32_t Before = Buf.wordIndex();
    Slot();
    if (Buf.wordIndex() != Before + 1)
      fatal("scheduleDelay: delay-slot instruction must be one word");
  }

  /// Emits load \p Ld whose result is first used \p InstrsUntilUse VCODE
  /// instructions later; pads with nops if the machine's load delay is
  /// longer (the paper's v_raw_load).
  template <typename LdFn> void rawLoad(LdFn Ld, unsigned InstrsUntilUse) {
    Ld();
    for (unsigned I = InstrsUntilUse; I < TI.LoadDelaySlots; ++I)
      nop();
  }

  /// True while a branch emitter must omit its delay-slot nop.
  bool suppressDelayNop() const { return SuppressDelayNop; }

  // --- Extension instructions (paper §5.4) -----------------------------------

  /// Emits the extension instruction \p Name with \p Ops.
  void ext(const char *Name, std::initializer_list<Operand> Ops) {
    T.emitExtension(*this, Name, Ops.begin(), unsigned(Ops.size()));
  }
  /// Emits a pre-interned extension instruction (no string lookup; intern
  /// the name once with Target::defineInstruction or findInstruction).
  void ext(ExtId Id, std::initializer_list<Operand> Ops) {
    T.emitExtension(*this, Id, Ops.begin(), unsigned(Ops.size()));
  }

  // --- Interface used by targets ---------------------------------------------

  CodeBuffer &buf() { return Buf; }
  RegAlloc &regAlloc() { return RA; }
  Reg atReg() const { return TI.At; }
  const CallConv &cc() const { return CurCC; }
  bool isLeaf() const { return LeafFlag; }
  bool inFunction() const { return InFunction; }
  bool madeCall() const { return MadeCall; }
  Label epilogueLabel() const { return EpiLabel; }
  uint32_t localBytes() const { return LocalBytes; }
  const std::vector<ArgLoc> &argLocs() const { return ArgLocations; }
  const std::vector<PrologueArgCopy> &prologueArgCopies() const {
    return ArgCopies;
  }
  /// Frame size in bytes, valid during Target::endFunction.
  uint32_t frameBytes() const { return FrameBytes; }
  /// Prologue reservation, recorded by Target::beginFunction and read
  /// back by Target::endFunction. Per-function state lives here, not on
  /// the Target: one backend instance serves concurrent VCode emitters.
  void setReservedPrologueWords(uint32_t N) { ReservedPrologueWords = N; }
  uint32_t reservedPrologueWords() const { return ReservedPrologueWords; }
  /// True if the function needs a stack frame / prologue / epilogue.
  bool frameNeeded() const;

  /// Records a fixup anchored at the *next* word to be emitted.
  void addFixup(FixupKind K, Label L) {
    Fixups.push_back(Fixup{Buf.wordIndex(), L, K});
  }
  /// Records a fixup at an explicit word index.
  void addFixupAt(uint32_t WordIdx, FixupKind K, Label L) {
    Fixups.push_back(Fixup{WordIdx, L, K});
  }
  /// Returns a label bound (at end()) to an 8-byte constant-pool entry
  /// holding \p Bits. Entries are de-duplicated.
  Label constPoolLabel(uint64_t Bits);

  /// Number of pending fixups (the *only* per-instruction-stream state
  /// VCODE keeps: "other than the memory needed to store emitted
  /// instructions, VCODE need only store pointers to labels and
  /// unresolved jumps", paper §3).
  size_t pendingFixups() const { return Fixups.size(); }
  /// Number of labels created so far.
  size_t labelCount() const { return LabelPos.size(); }

  /// Resolved address of a bound label; fatal if unbound (used during
  /// fixup application).
  SimAddr labelAddr(Label L) const;
  /// True if the label has been bound.
  bool labelBound(Label L) const;

private:
  /// Recovery-mode ErrorHandler: records the error (adding the emission
  /// cursor's word index when a function is in progress) and throws CgAbort.
  class RecoveryHandler : public ErrorHandler {
  public:
    explicit RecoveryHandler(VCode &V) : V(V) {}
    [[noreturn]] void handle(const CgError &E) override;

  private:
    VCode &V;
  };

  std::vector<Type> parseTypeString(const char *Str) const;
  void resetFunctionState();
  CodePtr endImpl();

  Target &T;
  const TargetInfo &TI;
  CodeBuffer Buf;
  RegAlloc RA;
  CallConv CurCC;

  RecoveryHandler Recover{*this};
  ErrorHandler *PrevHandler = nullptr;
  bool RecoverMode = false;
  CgError Err;

  bool InFunction = false;
  bool LeafFlag = false;
  bool MadeCall = false;
  bool SuppressDelayNop = false;

  // W^X bookkeeping for the bound code region: lambda() unprotects it for
  // writing through the arena's hooks, end() publishes it executable once
  // the bytes are final. Null arena (simulated memory) means no-ops.
  CodeArena *MemArena = nullptr;
  SimAddr MemGuest = 0;
  size_t MemSize = 0;

  // Introspection metadata carried to the CodeMap entry end() publishes.
  std::string FnName;
  Tier PubTier = Tier::Tier0;

  std::vector<int64_t> LabelPos; // word index, -1 if unbound
  std::vector<Fixup> Fixups;
  Label EpiLabel;

  uint32_t LocalBytes = 0;
  uint32_t FrameBytes = 0;
  uint32_t ReservedPrologueWords = 0;

  // Tick at which v_lambda handed control to the client (start of the
  // "core.emit" telemetry phase). Unconditional so the layout is identical
  // in VCODE_TELEMETRY=ON and OFF builds; only written when ON.
  uint64_t TmEmitStart = 0;

  std::vector<ArgLoc> ArgLocations;
  std::vector<PrologueArgCopy> ArgCopies;

  std::vector<uint64_t> ConstPool;
  std::vector<Label> ConstPoolLabels;
  std::map<uint64_t, unsigned> ConstPoolIndex;

  // Out-call in progress.
  std::vector<ArgLoc> CallLocs;
  unsigned CallNextArg = 0;
};

} // namespace vcode

#endif // VCODE_CORE_VCODE_H
