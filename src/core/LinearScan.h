//===- core/LinearScan.h - Linear-scan register allocation ------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Linear-scan register allocation over the Tier-1 vreg recording
/// (Poletto/Engler/Kaashoek's tcc lineage: one pass over live intervals,
/// no graph coloring). Intervals span [first reference, last reference];
/// a backward branch extends every interval live at its target to cover
/// the branch, iterated to a fixpoint so values stay in registers across
/// loop backedges. On pressure the interval with the furthest end is
/// spilled (whole-interval spilling — the replay stages spilled accesses
/// through reserved scratch registers and v_local homes).
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_CORE_LINEARSCAN_H
#define VCODE_CORE_LINEARSCAN_H

#include "core/Reg.h"
#include "core/Types.h"
#include <cstdint>
#include <vector>

namespace vcode {

/// One virtual register, as seen by the allocator.
struct LsVRegInfo {
  Type Ty = Type::I; ///< decides int vs fp pool
  Reg Pre;           ///< valid = pre-colored (e.g. an argument register);
                     ///< excluded from allocation, never spilled
};

/// Def/use references of one recorded operation (indices into the vreg
/// vector, -1 when absent). Positions are the operation's index.
struct LsOpRefs {
  int32_t Use0 = -1;
  int32_t Use1 = -1;
  int32_t Def = -1;
};

/// A resolved backward control-flow edge: the operation at \p Pos
/// branches (or may branch) to the operation at \p Target <= Pos.
struct LsEdge {
  uint32_t Pos = 0;
  uint32_t Target = 0;
};

/// Per-vreg allocation outcome.
struct LsAssignment {
  Reg Phys;            ///< valid unless Spilled (or vreg never referenced)
  bool Spilled = false;
};

struct LsResult {
  std::vector<LsAssignment> Assign; ///< indexed by vreg
  unsigned Spills = 0;              ///< number of spilled vregs
  unsigned IntRegsUsed = 0;         ///< distinct int pool regs assigned
  unsigned FpRegsUsed = 0;          ///< distinct fp pool regs assigned
};

/// Allocates \p VRegs over the operations \p Ops using the given physical
/// register pools (in preference order). \p BackEdges lists backward
/// branches for loop-liveness extension. Pre-colored vregs keep their
/// register; unreferenced vregs get no assignment.
LsResult linearScan(const std::vector<LsVRegInfo> &VRegs,
                    const std::vector<LsOpRefs> &Ops,
                    const std::vector<LsEdge> &BackEdges,
                    const std::vector<Reg> &IntPool,
                    const std::vector<Reg> &FpPool);

} // namespace vcode

#endif // VCODE_CORE_LINEARSCAN_H
