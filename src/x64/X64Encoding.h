//===- x64/X64Encoding.h - x86-64 instruction encoding ----------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-level x86-64 encoding helpers. Unlike the fixed-width RISC ports,
/// whose encoders are pure constexpr word builders, x86-64 instructions are
/// variable length, so the encoder is a thin stateful wrapper (Asm) that
/// appends prefix/opcode/ModRM/SIB/immediate bytes to the function's
/// CodeBuffer (bound with a 1-byte instruction unit). The paper's in-place
/// "*v_ip++ = w" model survives intact — the unit is just a byte.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_X64_X64ENCODING_H
#define VCODE_X64_X64ENCODING_H

#include "core/CodeBuffer.h"
#include <cstdint>

namespace vcode {
namespace x64 {

// Integer register numbers (standard x86-64 encoding order).
enum : unsigned {
  RAX = 0,
  RCX = 1,
  RDX = 2,
  RBX = 3,
  RSP = 4,
  RBP = 5,
  RSI = 6,
  RDI = 7,
  R8 = 8,
  R9 = 9,
  R10 = 10, // assembler temporary (TargetInfo::At)
  R11 = 11, // synthesized zero register (TargetInfo::Zero)
  R12 = 12,
  R13 = 13,
  R14 = 14,
  R15 = 15,
};

// XMM register numbers. XMM14/15 are backend scratch.
enum : unsigned { XMM14 = 14, XMM15 = 15 };

/// Port-role aliases (mirroring the RISC ports' naming).
inline constexpr unsigned AT = R10;    ///< assembler temporary
inline constexpr unsigned ZERO_ = R11; ///< synthesized zero register

// Condition-code nibbles for Jcc/SETcc (0F 8x / 0F 9x).
enum : unsigned {
  CC_O = 0x0,
  CC_B = 0x2,  // unsigned <  (also: ucomis "below")
  CC_AE = 0x3, // unsigned >=
  CC_E = 0x4,
  CC_NE = 0x5,
  CC_BE = 0x6, // unsigned <=
  CC_A = 0x7,  // unsigned >
  CC_S = 0x8,  // sign set
  CC_L = 0xC,  // signed <
  CC_GE = 0xD, // signed >=
  CC_LE = 0xE, // signed <=
  CC_G = 0xF,  // signed >
};

/// Appends x86-64 instruction bytes to a CodeBuffer. All methods follow
/// the manual's field names: \c Reg is the ModRM reg field operand, \c Rm
/// the r/m field operand, \c W selects a 64-bit operand size (REX.W).
class Asm {
public:
  explicit Asm(CodeBuffer &B) : B(B) {}

  static constexpr uint8_t modrm(unsigned Mod, unsigned Reg, unsigned Rm) {
    return uint8_t((Mod << 6) | ((Reg & 7) << 3) | (Rm & 7));
  }
  static constexpr uint8_t sib(unsigned Scale, unsigned Index, unsigned Base) {
    return uint8_t((Scale << 6) | ((Index & 7) << 3) | (Base & 7));
  }

  /// REX prefix from the extension bits of the three register fields;
  /// omitted when empty unless \p Force (needed to reach SPL/BPL/SIL/DIL
  /// in byte operations).
  void rex(bool W, unsigned Reg, unsigned Index, unsigned Base,
           bool Force = false) {
    uint8_t P = uint8_t(0x40 | (W ? 8 : 0) | ((Reg >> 3) << 2) |
                        ((Index >> 3) << 1) | (Base >> 3));
    if (P != 0x40 || Force)
      B.put8(P);
  }

  // --- Register-register forms ---------------------------------------------

  /// One-byte-opcode reg/reg instruction (ALU MR forms, mov, test...).
  void rr(bool W, uint8_t Op, unsigned Reg, unsigned Rm, bool Force = false) {
    rex(W, Reg, 0, Rm, Force);
    B.put8(Op);
    B.put8(modrm(3, Reg, Rm));
  }
  /// 0F-escaped reg/reg instruction (imul, movzx, setcc...).
  void rr0F(bool W, uint8_t Op, unsigned Reg, unsigned Rm) {
    rex(W, Reg, 0, Rm);
    B.put8(0x0F);
    B.put8(Op);
    B.put8(modrm(3, Reg, Rm));
  }

  /// mov Rd, Rs (64-bit). Safe as the universal register copy: 32-bit
  /// consumers read the low half.
  void movRR(unsigned Rd, unsigned Rs) { rr(true, 0x89, Rs, Rd); }
  /// mov Rd32, Rs32: zero-extends into the upper half.
  void movRR32(unsigned Rd, unsigned Rs) { rr(false, 0x89, Rs, Rd); }
  /// movsxd Rd, Rs32: sign-extend a 32-bit value to 64 bits.
  void movsxd(unsigned Rd, unsigned Rs) {
    rex(true, Rd, 0, Rs);
    B.put8(0x63);
    B.put8(modrm(3, Rd, Rs));
  }

  // --- Immediates ----------------------------------------------------------

  /// mov Rd32, imm32 (zero-extends; the shortest constant load).
  void movRI32(unsigned Rd, uint32_t Imm) {
    rex(false, 0, 0, Rd);
    B.put8(uint8_t(0xB8 | (Rd & 7)));
    B.put32(Imm);
  }
  /// mov Rd64, simm32 (sign-extends).
  void movRIs32(unsigned Rd, int32_t Imm) {
    rex(true, 0, 0, Rd);
    B.put8(0xC7);
    B.put8(modrm(3, 0, Rd));
    B.put32(uint32_t(Imm));
  }
  /// movabs Rd, imm64.
  void movRI64(unsigned Rd, uint64_t Imm) {
    rex(true, 0, 0, Rd);
    B.put8(uint8_t(0xB8 | (Rd & 7)));
    B.put64(Imm);
  }
  /// Group-1 ALU op (81 /ext) with a 32-bit immediate.
  void aluRI(bool W, unsigned Ext, unsigned Rm, uint32_t Imm) {
    rex(W, 0, 0, Rm);
    B.put8(0x81);
    B.put8(modrm(3, Ext, Rm));
    B.put32(Imm);
  }
  /// Shift by a constant (C1 /ext imm8).
  void shiftRI(bool W, unsigned Ext, unsigned Rm, uint8_t Imm) {
    rex(W, 0, 0, Rm);
    B.put8(0xC1);
    B.put8(modrm(3, Ext, Rm));
    B.put8(Imm);
  }
  /// Shift by CL (D3 /ext).
  void shiftRCl(bool W, unsigned Ext, unsigned Rm) {
    rex(W, 0, 0, Rm);
    B.put8(0xD3);
    B.put8(modrm(3, Ext, Rm));
  }
  /// Group-3 unary op (F7 /ext: not=2 neg=3 mul=4 div=6 idiv=7).
  void grp3(bool W, unsigned Ext, unsigned Rm) {
    rex(W, 0, 0, Rm);
    B.put8(0xF7);
    B.put8(modrm(3, Ext, Rm));
  }

  // --- Memory operands -----------------------------------------------------

  /// ModRM(+SIB) bytes for [Base + Disp] with the shortest displacement.
  void mem(unsigned Reg, unsigned Base, int32_t Disp) {
    bool NeedSib = (Base & 7) == 4; // rsp/r12 demand a SIB byte
    unsigned Rm = NeedSib ? 4 : (Base & 7);
    if (Disp == 0 && (Base & 7) != 5) { // rbp/r13 need an explicit disp
      B.put8(modrm(0, Reg, Rm));
      if (NeedSib)
        B.put8(sib(0, 4, Base));
    } else if (Disp >= -128 && Disp <= 127) {
      B.put8(modrm(1, Reg, Rm));
      if (NeedSib)
        B.put8(sib(0, 4, Base));
      B.put8(uint8_t(Disp));
    } else {
      B.put8(modrm(2, Reg, Rm));
      if (NeedSib)
        B.put8(sib(0, 4, Base));
      B.put32(uint32_t(Disp));
    }
  }
  /// ModRM+SIB for [Base + Index] (scale 1). Index must not be RSP.
  void memIdx(unsigned Reg, unsigned Base, unsigned Index) {
    bool NeedDisp = (Base & 7) == 5; // rbp/r13 base forces disp8=0
    B.put8(modrm(NeedDisp ? 1 : 0, Reg, 4));
    B.put8(sib(0, Index, Base));
    if (NeedDisp)
      B.put8(0);
  }

  /// One-byte-opcode instruction with a [Base + Disp] operand.
  void rm(bool W, uint8_t Op, unsigned Reg, unsigned Base, int32_t Disp,
          bool Force = false) {
    rex(W, Reg, 0, Base, Force);
    B.put8(Op);
    mem(Reg, Base, Disp);
  }
  /// 0F-escaped instruction with a [Base + Disp] operand.
  void rm0F(bool W, uint8_t Op, unsigned Reg, unsigned Base, int32_t Disp) {
    rex(W, Reg, 0, Base);
    B.put8(0x0F);
    B.put8(Op);
    mem(Reg, Base, Disp);
  }
  /// One-byte-opcode instruction with a [Base + Index] operand.
  void rmIdx(bool W, uint8_t Op, unsigned Reg, unsigned Base, unsigned Index,
             bool Force = false) {
    rex(W, Reg, Index, Base, Force);
    B.put8(Op);
    memIdx(Reg, Base, Index);
  }
  /// 0F-escaped instruction with a [Base + Index] operand.
  void rmIdx0F(bool W, uint8_t Op, unsigned Reg, unsigned Base,
               unsigned Index) {
    rex(W, Reg, Index, Base);
    B.put8(0x0F);
    B.put8(Op);
    memIdx(Reg, Base, Index);
  }

  // --- SSE scalar ----------------------------------------------------------

  /// Prefixed 0F-escaped reg/reg SSE instruction. \p Prefix is 0x66, 0xF2,
  /// 0xF3, or 0 (none).
  void sse(uint8_t Prefix, bool W, uint8_t Op, unsigned Reg, unsigned Rm) {
    if (Prefix)
      B.put8(Prefix);
    rex(W, Reg, 0, Rm);
    B.put8(0x0F);
    B.put8(Op);
    B.put8(modrm(3, Reg, Rm));
  }
  /// Prefixed SSE instruction with a [Base + Disp] operand.
  void sseMem(uint8_t Prefix, uint8_t Op, unsigned Reg, unsigned Base,
              int32_t Disp) {
    if (Prefix)
      B.put8(Prefix);
    rex(false, Reg, 0, Base);
    B.put8(0x0F);
    B.put8(Op);
    mem(Reg, Base, Disp);
  }
  /// Prefixed SSE instruction with a [Base + Index] operand.
  void sseMemIdx(uint8_t Prefix, uint8_t Op, unsigned Reg, unsigned Base,
                 unsigned Index) {
    if (Prefix)
      B.put8(Prefix);
    rex(false, Reg, Index, Base);
    B.put8(0x0F);
    B.put8(Op);
    memIdx(Reg, Base, Index);
  }

  // --- Stack, flow control, misc -------------------------------------------

  void push(unsigned R) {
    rex(false, 0, 0, R);
    B.put8(uint8_t(0x50 | (R & 7)));
  }
  void pop(unsigned R) {
    rex(false, 0, 0, R);
    B.put8(uint8_t(0x58 | (R & 7)));
  }
  /// cdq (W=0) / cqo (W=1): sign-extend the accumulator into rdx.
  void cdq(bool W) {
    if (W)
      B.put8(0x48);
    B.put8(0x99);
  }
  /// setcc Rm8 (always REX'd when Rm is SPL..DIL).
  void setcc(unsigned Cc, unsigned Rm) {
    rex(false, 0, 0, Rm, Rm >= 4 && Rm < 8);
    B.put8(0x0F);
    B.put8(uint8_t(0x90 | Cc));
    B.put8(modrm(3, 0, Rm));
  }
  /// jcc rel32 with a zero placeholder (6 bytes; rel32 at +2).
  void jcc32(unsigned Cc) {
    B.put8(0x0F);
    B.put8(uint8_t(0x80 | Cc));
    B.put32(0);
  }
  /// jmp rel32 (5 bytes; rel32 at +1).
  void jmp32(int32_t Rel = 0) {
    B.put8(0xE9);
    B.put32(uint32_t(Rel));
  }
  /// call rel32 (5 bytes; rel32 at +1).
  void call32(int32_t Rel = 0) {
    B.put8(0xE8);
    B.put32(uint32_t(Rel));
  }
  void jmpReg(unsigned R) {
    rex(false, 0, 0, R);
    B.put8(0xFF);
    B.put8(modrm(3, 4, R));
  }
  void callReg(unsigned R) {
    rex(false, 0, 0, R);
    B.put8(0xFF);
    B.put8(modrm(3, 2, R));
  }
  void ret() { B.put8(0xC3); }
  void nop() { B.put8(0x90); }
  /// Re-establish the synthesized zero register (xor r11d, r11d).
  void zeroR11() { rr(false, 0x31, R11, R11); }

private:
  CodeBuffer &B;
};

} // namespace x64
} // namespace vcode

#endif // VCODE_X64_X64ENCODING_H
