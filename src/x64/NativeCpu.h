//===- x64/NativeCpu.h - Direct host execution ------------------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs x64-generated code directly on the host CPU through sim::Cpu's
/// interface, so native execution drops into every harness (benches,
/// differential tests) that drives a simulator today. Requirements:
/// * the backing sim::Memory must be in native mode (identity-mapped mmap
///   arena), so simulated addresses are host addresses;
/// * the entry must have been published executable (W^X flip) — calling
///   unpublished code is rejected, not faulted;
/// * arguments beyond the SysV register set (6 integer, 8 FP) are passed
///   on the stack through the trampoline's trailing slots; up to 64 bytes
///   of stack arguments (eight 8-byte slots) are supported per call.
///
/// Native runs execute on the host thread's own stack and count no
/// simulated statistics: lastStats() is all zeros and the instruction
/// limit is not enforceable.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_X64_NATIVECPU_H
#define VCODE_X64_NATIVECPU_H

#include "sim/Cpu.h"

namespace vcode {
namespace x64 {

/// sim::Cpu implementation that calls generated code at hardware speed.
class NativeCpu final : public sim::Cpu {
public:
  explicit NativeCpu(sim::Memory &M);

  sim::TypedValue callWithConv(const CallConv &CC, SimAddr Entry,
                               const std::vector<sim::TypedValue> &Args,
                               Type RetTy) override {
    return callWithConvSpan(CC, Entry, Args.data(), Args.size(), RetTy);
  }
  /// The hot path: marshals straight from the caller's storage into the
  /// trampoline's registers, no heap allocation per call.
  sim::TypedValue callWithConvSpan(const CallConv &CC, SimAddr Entry,
                                   const sim::TypedValue *Args,
                                   size_t NumArgs, Type RetTy) override;
  const CallConv &defaultConv() const override;
  void flushCaches() override {} // icache coherence lives in publish()
  void warmData(SimAddr, size_t) override {}
  const sim::RunStats &lastStats() const override { return Last; }
  void setInstrLimit(uint64_t) override {} // real execution has no governor
  const sim::MachineConfig &config() const override { return Cfg; }

private:
  sim::Memory &Mem;
  sim::RunStats Last;
  sim::MachineConfig Cfg;
  /// Cached positive executable-range answer, valid while the memory's
  /// execEpoch() is unchanged (dispatch loops call one entry millions of
  /// times; the per-call mutex in Memory::isExecutable would dominate).
  SimAddr ExecLo = 0, ExecHi = 0;
  uint64_t ExecStamp = ~uint64_t(0);
};

} // namespace x64
} // namespace vcode

#endif // VCODE_X64_NATIVECPU_H
