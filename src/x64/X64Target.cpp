//===- x64/X64Target.cpp - x86-64 host backend ------------------------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
// The hot emitters live inline in X64Target.h; this file holds the cold
// paths: target description, function framing, fixups, disassembly, and the
// machine-level extension instructions.
//
//===----------------------------------------------------------------------===//

#include "x64/X64Target.h"
#include "profile/Disasm.h"
#include "support/Telemetry.h"
#include "x64/X64Disasm.h"
#include <cstdio>
#include <vector>

using namespace vcode;
using namespace vcode::x64;

const TargetInfo &vcode::x64::x64TargetInfo() {
  static const TargetInfo TI = [] {
    TargetInfo T;
    T.Name = "x64";
    T.WordBytes = 8;
    T.HasBranchDelaySlot = false;
    T.LoadDelaySlots = 0;
    T.CodeUnitBytes = 1; // variable-length instructions: emit bytes
    T.Zero = intReg(R11); // synthesized: prologue zeroes it, calls re-zero
    T.At = intReg(R10);
    T.Sp = intReg(RSP);
    // x86 has no link register: call pushes the return address. R11 stands
    // in so the Reg is valid; no instruction ever reads it as a link.
    T.Ra = intReg(R11);
    T.IntTemps = {intReg(RAX), intReg(R9),  intReg(R8),  intReg(RCX),
                  intReg(RDX), intReg(RSI), intReg(RDI)};
    T.IntSaves = {intReg(RBX), intReg(R12), intReg(R13),
                  intReg(R14), intReg(R15), intReg(RBP)};
    // Non-argument XMM registers first; xmm14/15 are backend scratch. The
    // SysV ABI has no callee-saved XMM registers.
    T.FpTemps = {fpReg(8), fpReg(9), fpReg(10), fpReg(11), fpReg(12),
                 fpReg(13), fpReg(7), fpReg(6), fpReg(5),  fpReg(4),
                 fpReg(3),  fpReg(2), fpReg(1), fpReg(0)};
    T.FpSaves = {};
    T.DefaultCC.IntArgRegs = {intReg(RDI), intReg(RSI), intReg(RDX),
                              intReg(RCX), intReg(R8),  intReg(R9)};
    T.DefaultCC.FpArgRegs = {fpReg(0), fpReg(1), fpReg(2), fpReg(3),
                             fpReg(4), fpReg(5), fpReg(6), fpReg(7)};
    T.DefaultCC.IntRet = intReg(RAX);
    T.DefaultCC.FpRet = fpReg(0);
    T.DefaultCC.LinkReg = intReg(R11);
    T.DefaultCC.MinOutArgBytes = 0;
    T.OutArgReserveBytes = 32;
    return T;
  }();
  return TI;
}

X64Target::X64Target() {
  registerMachineInstructions();
  // Pair the byte-level encoder with its decoder for --dump-code (and
  // force X64Disasm.o into any link that uses this backend).
  profile::registerDisassembler("x64", &x64::decodeOne);
}

void X64Target::unsignedToFp(VCode &VC, bool ToDouble, Reg Rd, Reg Rs) {
  // cvtsi2ss/sd is a signed convert; a UL/P source with the top bit set
  // needs the classic fix: halve with round-to-odd, convert, double. The
  // common (top bit clear) case branches straight to the signed convert.
  CodeBuffer &B = VC.buf();
  Asm A(B);
  unsigned S = gpr(Rs), D = fpr(Rd);
  uint8_t Pfx = ToDouble ? 0xF2 : 0xF3;
  Label Big = VC.genLabel(), End = VC.genLabel();
  A.rr(true, 0x85, S, S); // test rs, rs
  VC.addFixup(FixupKind::Branch, Big);
  A.jcc32(CC_S);
  A.sse(Pfx, true, 0x2A, D, S); // cvtsi2ss/sd rd, rs
  VC.addFixup(FixupKind::Jump, End);
  A.jmp32();
  VC.label(Big);
  A.push(S); // [rsp] = rs; also scratch for the sticky bit
  A.movRR(AT, S);
  A.shiftRI(true, 5, AT, 1); // shr r10, 1
  B.put8(0x48);              // and qword [rsp], 1
  B.put8(0x83);
  B.put8(0x24);
  B.put8(0x24);
  B.put8(0x01);
  A.rm(true, 0x0B, AT, RSP, 0); // or r10, [rsp]
  A.sse(Pfx, true, 0x2A, D, AT);
  A.sse(Pfx, false, 0x58, D, D); // addss/sd rd, rd: undo the halving
  A.pop(AT);
  VC.label(End);
}

// --- Function framing -------------------------------------------------------

std::string X64Target::disassemble(uint32_t Word, SimAddr Pc) const {
  // Variable-length instructions do not disassemble one unit at a time;
  // show the raw byte (the unit) at this address.
  (void)Pc;
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), ".byte 0x%02x", unsigned(Word & 0xff));
  return Buf;
}

void X64Target::beginFunction(VCode &VC) {
  // Reserve instruction-stream bytes for the worst-case prologue
  // (paper §5.2): zero-register setup (3), frame allocation (7), every
  // callee-saved register (6 x 8), and one typed load per stack-passed
  // argument (9 each). v_end writes the real prologue into the tail of
  // this region and the entry point skips the rest.
  uint32_t ReservedBytes =
      uint32_t(16 + 16 * 8 + 9 * VC.prologueArgCopies().size());
  VC.setReservedPrologueWords(ReservedBytes);
  CodeBuffer &B = VC.buf();
  B.ensureWords(ReservedBytes);
  for (uint32_t I = 0; I < ReservedBytes; ++I)
    B.put8(0x90);
}

CodePtr X64Target::endFunction(VCode &VC) {
  VCODE_TM_COUNT("x64.functions", 1);
  const TargetInfo &TI = info();
  CodeBuffer &B = VC.buf();
  uint32_t F = VC.frameBytes();
  if (F > 0x7fffffffu)
    fatalKind(CgErrKind::OutOfRange,
              "x64: frame of %u bytes exceeds the rel32 immediate range", F);
  uint32_t IntMask = VC.regAlloc().usedCalleeSavedMask(Reg::Int);

  // Assemble the prologue into scratch storage (instructions are variable
  // length, so it cannot be built as words), then right-align it in the
  // reserved region.
  std::vector<uint8_t> Tmp(256 + 9 * VC.prologueArgCopies().size());
  CodeBuffer PB;
  CodeMem PM;
  PM.Host = Tmp.data();
  PM.Guest = 0;
  PM.Size = Tmp.size();
  PB.reset(PM, 1);
  Asm P(PB);
  P.zeroR11(); // establish the synthesized zero register
  if (F) {
    P.aluRI(true, 5, RSP, F); // sub rsp, F
    for (unsigned N = 0; N < 16; ++N)
      if (IntMask & (1u << N))
        P.rm(true, 0x89, N, RSP, int32_t(TI.intSaveSlot(N)));
  }
  for (const PrologueArgCopy &Copy : VC.prologueArgCopies()) {
    // +8: the return address sits between the caller's out-arg area and
    // this frame.
    int64_t Off = int64_t(F) + 8 + Copy.IncomingOff;
    if (!isInt<32>(Off))
      fatalKind(CgErrKind::OutOfRange,
                "x64: incoming stack argument offset %lld out of range",
                (long long)Off);
    loadDisp(P, Copy.Ty, Copy.Dst, RSP, int32_t(Off));
  }
  size_t ProLen = PB.usedBytes();
  uint32_t Reserved = VC.reservedPrologueWords();
  if (ProLen > Reserved)
    fatalKind(CgErrKind::Internal,
              "x64: prologue of %zu bytes exceeds the %u reserved", ProLen,
              Reserved);
  uint32_t Start = Reserved - uint32_t(ProLen);
  for (size_t I = 0; I < ProLen; ++I)
    B.patch(uint32_t(Start + I), Tmp[I]);

  // Epilogue: restore registers, release the frame, return.
  if (F) {
    VC.label(VC.epilogueLabel());
    Asm E(B);
    for (unsigned N = 0; N < 16; ++N)
      if (IntMask & (1u << N))
        E.rm(true, 0x8B, N, RSP, int32_t(TI.intSaveSlot(N)));
    E.aluRI(true, 0, RSP, F); // add rsp, F
    E.ret();
  }

  CodePtr Ptr;
  Ptr.Entry = B.addrOfWord(Start);
  return Ptr;
}

void X64Target::applyFixup(VCode &VC, const Fixup &F, SimAddr Target) {
  CodeBuffer &B = VC.buf();
  // All patch sites are rel32 fields: FieldOff bytes into an instruction
  // of Len bytes, relative to the end of that instruction.
  auto PatchRel32 = [&](uint32_t FieldOff, unsigned Len) {
    int64_t Rel = int64_t(Target) - int64_t(B.addrOfWord(F.WordIdx) + Len);
    if (!isInt<32>(Rel))
      fatalKind(CgErrKind::OutOfRange,
                "x64: branch displacement %lld out of range", (long long)Rel);
    B.patch32(F.WordIdx + FieldOff, uint32_t(Rel));
  };
  switch (F.Kind) {
  case FixupKind::Branch: // 0F 8x rel32
    PatchRel32(2, 6);
    return;
  case FixupKind::Jump: // E9 rel32
  case FixupKind::Call: // E8 rel32
    PatchRel32(1, 5);
    return;
  case FixupKind::EpilogueJump:
    // Target==0: no epilogue; rewrite the optimistic 5-byte jump into a
    // plain return (paper §5.2's eliminated epilogue jump).
    if (Target == 0) {
      B.patch(F.WordIdx, 0xC3);
      for (uint32_t I = 1; I < 5; ++I)
        B.patch(F.WordIdx + I, 0x90);
      return;
    }
    PatchRel32(1, 5);
    return;
  case FixupKind::AddrHi:
  case FixupKind::AddrLo:
    fatalKind(CgErrKind::Internal,
              "x64: absolute-address fixups are unused on this port");
  }
  unreachable("bad FixupKind");
}

// --- Extension machine instructions (paper §5.4) ----------------------------

void X64Target::registerMachineInstructions() {
  auto Sqrt = [](uint8_t Prefix) {
    return [Prefix](VCode &VC, const Operand *Ops, unsigned N) {
      if (N != 2 || Ops[0].Kind != Operand::RegOp ||
          Ops[1].Kind != Operand::RegOp)
        fatalKind(CgErrKind::BadOperand,
                  "x64 fp machine instruction expects (rd, rs)");
      Asm A(VC.buf());
      A.sse(Prefix, false, 0x51, Ops[0].R.Num, Ops[1].R.Num); // sqrtss/sd
    };
  };
  // The paper's worked example: (sqrt (rd, rs) (f fsqrts) (d fsqrtd)).
  defineInstruction("fsqrts", Sqrt(0xF3));
  defineInstruction("fsqrtd", Sqrt(0xF2));
  // A CISC-only example for the spec tests: byte swap.
  defineInstruction("x64.bswap",
                    [](VCode &VC, const Operand *Ops, unsigned N) {
                      if (N != 1 || Ops[0].Kind != Operand::RegOp)
                        fatalKind(CgErrKind::BadOperand,
                                  "x64.bswap expects (rd)");
                      unsigned R = Ops[0].R.Num;
                      Asm A(VC.buf());
                      A.rex(true, 0, 0, R);
                      VC.buf().put8(0x0F);
                      VC.buf().put8(uint8_t(0xC8 | (R & 7)));
                    });
}

// The shared static-dispatch instantiation declared in X64Target.h.
template class vcode::VCodeT<X64Target>;
