//===- x64/X64Disasm.cpp - x86-64 disassembler --------------------------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "x64/X64Disasm.h"
#include <cstdarg>
#include <cstdio>

using namespace vcode;

namespace {

std::string fmt(const char *Format, ...) {
  char Buf[128];
  va_list Ap;
  va_start(Ap, Format);
  std::vsnprintf(Buf, sizeof(Buf), Format, Ap);
  va_end(Ap);
  return Buf;
}

enum Width { W8, W16, W32, W64 };

const char *R64[16] = {"rax", "rcx", "rdx", "rbx", "rsp", "rbp",
                       "rsi", "rdi", "r8",  "r9",  "r10", "r11",
                       "r12", "r13", "r14", "r15"};
const char *R32[16] = {"eax", "ecx", "edx",  "ebx",  "esp",  "ebp",
                       "esi", "edi", "r8d",  "r9d",  "r10d", "r11d",
                       "r12d", "r13d", "r14d", "r15d"};
const char *R16[16] = {"ax",  "cx",  "dx",   "bx",   "sp",   "bp",
                       "si",  "di",  "r8w",  "r9w",  "r10w", "r11w",
                       "r12w", "r13w", "r14w", "r15w"};
// With any REX prefix, encodings 4-7 are spl/bpl/sil/dil; without, the
// legacy high-byte registers.
const char *R8Rex[16] = {"al",  "cl",  "dl",   "bl",   "spl",  "bpl",
                         "sil", "dil", "r8b",  "r9b",  "r10b", "r11b",
                         "r12b", "r13b", "r14b", "r15b"};
const char *R8Leg[8] = {"al", "cl", "dl", "bl", "ah", "ch", "dh", "bh"};

const char *CcName[16] = {"o", "no", "b",  "ae", "e",  "ne", "be", "a",
                          "s", "ns", "p",  "np", "l",  "ge", "le", "g"};

const char *Grp1Name[8] = {"add", "or",  "adc", "sbb",
                           "and", "sub", "xor", "cmp"};
const char *Grp2Name[8] = {"rol", "ror", "rcl", "rcr",
                           "shl", "shr", "shl", "sar"};
const char *Grp3Name[8] = {"test", nullptr, "not", "neg",
                           "mul",  "imul",  "div", "idiv"};

std::string regName(Width W, unsigned R, bool HasRex) {
  switch (W) {
  case W8:
    return HasRex ? R8Rex[R & 15] : R8Leg[R & 7];
  case W16:
    return R16[R & 15];
  case W32:
    return R32[R & 15];
  case W64:
    return R64[R & 15];
  }
  return "?";
}

std::string xmmName(unsigned R) { return fmt("xmm%u", R & 15); }

std::string immStr(int64_t V) {
  if (V < 0)
    return fmt("-0x%llx", (unsigned long long)-V);
  return fmt("0x%llx", (unsigned long long)V);
}

const char *sizePtr(Width W) {
  switch (W) {
  case W8:
    return "byte ptr ";
  case W16:
    return "word ptr ";
  case W32:
    return "dword ptr ";
  case W64:
    return "qword ptr ";
  }
  return "";
}

/// Bounded byte cursor; any read past Avail sets Fail and the whole
/// decode reports length 0.
struct Cursor {
  const uint8_t *P;
  size_t N;
  size_t Off = 0;
  bool Fail = false;

  uint8_t u8() {
    if (Off >= N) {
      Fail = true;
      return 0;
    }
    return P[Off++];
  }
  uint8_t peek() const { return Off < N ? P[Off] : 0; }
  bool more() const { return Off < N; }
  uint32_t u32() {
    uint32_t V = 0;
    for (int K = 0; K < 4; ++K)
      V |= uint32_t(u8()) << (8 * K);
    return V;
  }
  uint64_t u64() {
    uint64_t V = 0;
    for (int K = 0; K < 8; ++K)
      V |= uint64_t(u8()) << (8 * K);
    return V;
  }
};

/// One decoded ModRM operand pair.
struct ModRM {
  unsigned Reg = 0; ///< reg field (with REX.R)
  unsigned Rm = 0;  ///< r/m register when !IsMem (with REX.B)
  bool IsMem = false;
  std::string Mem; ///< formatted [base+index+disp] when IsMem
};

ModRM readModRM(Cursor &C, uint8_t Rex) {
  ModRM M;
  uint8_t B = C.u8();
  unsigned Mod = B >> 6, RegF = (B >> 3) & 7, RmF = B & 7;
  M.Reg = RegF | ((Rex & 4) ? 8 : 0);
  if (Mod == 3) {
    M.Rm = RmF | ((Rex & 1) ? 8 : 0);
    return M;
  }
  M.IsMem = true;
  std::string Base, Index;
  unsigned Scale = 0;
  bool HaveDisp32 = false;
  if (RmF == 4) { // SIB
    uint8_t S = C.u8();
    Scale = S >> 6;
    unsigned Ix = ((S >> 3) & 7) | ((Rex & 2) ? 8 : 0);
    unsigned Bs = (S & 7) | ((Rex & 1) ? 8 : 0);
    if (((S >> 3) & 7) != 4) // index field 4 = none (REX.X ignored)
      Index = R64[Ix];
    if (Mod == 0 && (S & 7) == 5)
      HaveDisp32 = true; // no base, disp32 follows
    else
      Base = R64[Bs];
  } else if (Mod == 0 && RmF == 5) {
    Base = "rip"; // never emitted, decoded for robustness
    HaveDisp32 = true;
  } else {
    Base = R64[RmF | ((Rex & 1) ? 8 : 0)];
  }
  int64_t Disp = 0;
  if (Mod == 1)
    Disp = int8_t(C.u8());
  else if (Mod == 2 || HaveDisp32)
    Disp = int32_t(C.u32());

  std::string Mem;
  Mem += '[';
  Mem += Base;
  if (!Index.empty()) {
    if (!Base.empty())
      Mem += '+';
    Mem += Index;
    if (Scale)
      Mem += fmt("*%u", 1u << Scale);
  }
  if (Disp || (Base.empty() && Index.empty())) {
    if (Disp < 0)
      Mem += fmt("-0x%llx", (unsigned long long)-Disp);
    else
      Mem += (Base.empty() && Index.empty())
                 ? fmt("0x%llx", (unsigned long long)Disp)
                 : fmt("+0x%llx", (unsigned long long)Disp);
  }
  Mem += ']';
  M.Mem = std::move(Mem);
  return M;
}

std::string rmStr(const ModRM &M, Width W, bool HasRex) {
  return M.IsMem ? M.Mem : regName(W, M.Rm, HasRex);
}

std::string rmStrX(const ModRM &M) {
  return M.IsMem ? M.Mem : xmmName(M.Rm);
}

} // namespace

size_t x64::decodeOne(const uint8_t *P, size_t Avail, uint64_t Pc,
                      std::string &Out) {
  Cursor C{P, Avail};
  bool P66 = false, PF2 = false, PF3 = false;
  // Legacy prefixes (the backend emits at most one, before REX).
  for (;;) {
    if (!C.more())
      return 0;
    uint8_t B = C.peek();
    if (B == 0x66)
      P66 = true;
    else if (B == 0xF2)
      PF2 = true;
    else if (B == 0xF3)
      PF3 = true;
    else
      break;
    C.u8();
  }
  uint8_t Rex = 0;
  bool HasRex = false;
  if (C.more() && (C.peek() & 0xF0) == 0x40) {
    Rex = C.u8();
    HasRex = true;
  }
  bool W = (Rex & 8) != 0;
  Width IW = W ? W64 : (P66 ? W16 : W32); // integer operand width
  uint8_t Op = C.u8();
  if (C.Fail)
    return 0;

  std::string Text;
  auto done = [&]() -> size_t {
    if (C.Fail)
      return 0;
    Out += Text;
    return C.Off;
  };

  // --- one-byte opcode map ---
  switch (Op) {
  // ALU / test / mov, MR direction: op rm, reg
  case 0x01: case 0x09: case 0x21: case 0x29: case 0x31: case 0x39:
  case 0x85: case 0x88: case 0x89: {
    const char *Name;
    Width OW = IW;
    switch (Op) {
    case 0x01: Name = "add"; break;
    case 0x09: Name = "or"; break;
    case 0x21: Name = "and"; break;
    case 0x29: Name = "sub"; break;
    case 0x31: Name = "xor"; break;
    case 0x39: Name = "cmp"; break;
    case 0x85: Name = "test"; break;
    case 0x88: Name = "mov"; OW = W8; break;
    default:   Name = "mov"; break;
    }
    ModRM M = readModRM(C, Rex);
    Text = fmt("%-7s %s, %s", Name, rmStr(M, OW, HasRex).c_str(),
               regName(OW, M.Reg, HasRex).c_str());
    return done();
  }
  // ALU / mov, RM direction: op reg, rm
  case 0x03: case 0x0B: case 0x23: case 0x2B: case 0x33: case 0x3B:
  case 0x8A: case 0x8B: {
    const char *Name;
    Width OW = IW;
    switch (Op) {
    case 0x03: Name = "add"; break;
    case 0x0B: Name = "or"; break;
    case 0x23: Name = "and"; break;
    case 0x2B: Name = "sub"; break;
    case 0x33: Name = "xor"; break;
    case 0x3B: Name = "cmp"; break;
    case 0x8A: Name = "mov"; OW = W8; break;
    default:   Name = "mov"; break;
    }
    ModRM M = readModRM(C, Rex);
    Text = fmt("%-7s %s, %s", Name, regName(OW, M.Reg, HasRex).c_str(),
               rmStr(M, OW, HasRex).c_str());
    return done();
  }
  case 0x50: case 0x51: case 0x52: case 0x53:
  case 0x54: case 0x55: case 0x56: case 0x57:
    Text = fmt("%-7s %s", "push", R64[(Op & 7) | ((Rex & 1) ? 8 : 0)]);
    return done();
  case 0x58: case 0x59: case 0x5A: case 0x5B:
  case 0x5C: case 0x5D: case 0x5E: case 0x5F:
    Text = fmt("%-7s %s", "pop", R64[(Op & 7) | ((Rex & 1) ? 8 : 0)]);
    return done();
  case 0x63: { // movsxd r64, r/m32
    ModRM M = readModRM(C, Rex);
    Text = fmt("%-7s %s, %s", "movsxd",
               regName(W ? W64 : W32, M.Reg, HasRex).c_str(),
               rmStr(M, W32, HasRex).c_str());
    return done();
  }
  case 0x69: { // imul reg, rm, imm32
    ModRM M = readModRM(C, Rex);
    int32_t Imm = int32_t(C.u32());
    Text = fmt("%-7s %s, %s, %s", "imul",
               regName(IW, M.Reg, HasRex).c_str(),
               rmStr(M, IW, HasRex).c_str(), immStr(Imm).c_str());
    return done();
  }
  case 0x6B: { // imul reg, rm, imm8
    ModRM M = readModRM(C, Rex);
    int8_t Imm = int8_t(C.u8());
    Text = fmt("%-7s %s, %s, %s", "imul",
               regName(IW, M.Reg, HasRex).c_str(),
               rmStr(M, IW, HasRex).c_str(), immStr(Imm).c_str());
    return done();
  }
  case 0x81: case 0x83: { // group 1: op rm, imm
    ModRM M = readModRM(C, Rex);
    int64_t Imm =
        Op == 0x81 ? int64_t(int32_t(C.u32())) : int64_t(int8_t(C.u8()));
    Text = fmt("%-7s %s%s, %s", Grp1Name[M.Reg & 7],
               M.IsMem ? sizePtr(IW) : "", rmStr(M, IW, HasRex).c_str(),
               immStr(Imm).c_str());
    return done();
  }
  case 0x90:
    Text = "nop";
    return done();
  case 0x99:
    Text = W ? "cqo" : "cdq";
    return done();
  case 0xB8: case 0xB9: case 0xBA: case 0xBB:
  case 0xBC: case 0xBD: case 0xBE: case 0xBF: {
    unsigned R = (Op & 7) | ((Rex & 1) ? 8 : 0);
    if (W) {
      uint64_t Imm = C.u64();
      Text = fmt("%-7s %s, 0x%llx", "movabs", R64[R],
                 (unsigned long long)Imm);
    } else if (P66) {
      uint32_t Imm = C.u8() | (uint32_t(C.u8()) << 8);
      Text = fmt("%-7s %s, 0x%x", "mov", R16[R], Imm);
    } else {
      uint32_t Imm = C.u32();
      Text = fmt("%-7s %s, 0x%x", "mov", R32[R], Imm);
    }
    return done();
  }
  case 0xC1: case 0xD1: case 0xD3: { // group 2 shifts/rotates
    ModRM M = readModRM(C, Rex);
    const char *Name = Grp2Name[M.Reg & 7];
    if (Op == 0xC1) {
      uint8_t Imm = C.u8();
      Text = fmt("%-7s %s, %u", Name, rmStr(M, IW, HasRex).c_str(), Imm);
    } else if (Op == 0xD1) {
      Text = fmt("%-7s %s, 1", Name, rmStr(M, IW, HasRex).c_str());
    } else {
      Text = fmt("%-7s %s, cl", Name, rmStr(M, IW, HasRex).c_str());
    }
    return done();
  }
  case 0xC3:
    Text = "ret";
    return done();
  case 0xC7: { // mov rm, imm32
    ModRM M = readModRM(C, Rex);
    if ((M.Reg & 7) != 0)
      return 0;
    int32_t Imm = int32_t(C.u32());
    Text = fmt("%-7s %s%s, %s", "mov", M.IsMem ? sizePtr(IW) : "",
               rmStr(M, IW, HasRex).c_str(), immStr(Imm).c_str());
    return done();
  }
  case 0xE8: case 0xE9: {
    int32_t Rel = int32_t(C.u32());
    uint64_t Target = Pc + C.Off + uint64_t(int64_t(Rel));
    Text = fmt("%-7s 0x%llx", Op == 0xE8 ? "call" : "jmp",
               (unsigned long long)Target);
    return done();
  }
  case 0xF7: { // group 3
    ModRM M = readModRM(C, Rex);
    const char *Name = Grp3Name[M.Reg & 7];
    if (!Name)
      return 0;
    if ((M.Reg & 7) == 0) { // test rm, imm32
      int32_t Imm = int32_t(C.u32());
      Text = fmt("%-7s %s%s, %s", Name, M.IsMem ? sizePtr(IW) : "",
                 rmStr(M, IW, HasRex).c_str(), immStr(Imm).c_str());
    } else {
      Text = fmt("%-7s %s%s", Name, M.IsMem ? sizePtr(IW) : "",
                 rmStr(M, IW, HasRex).c_str());
    }
    return done();
  }
  case 0xFF: { // group 5
    ModRM M = readModRM(C, Rex);
    const char *Name = nullptr;
    switch (M.Reg & 7) {
    case 0: Name = "inc"; break;
    case 1: Name = "dec"; break;
    case 2: Name = "call"; break;
    case 4: Name = "jmp"; break;
    case 6: Name = "push"; break;
    default: return 0;
    }
    // call/jmp/push through r/m default to 64-bit in long mode.
    Width OW = ((M.Reg & 7) == 0 || (M.Reg & 7) == 1) ? IW : W64;
    Text = fmt("%-7s %s%s", Name, M.IsMem ? sizePtr(OW) : "",
               rmStr(M, OW, HasRex).c_str());
    return done();
  }
  case 0x0F:
    break; // two-byte map below
  default:
    return 0;
  }

  // --- 0F two-byte opcode map ---
  uint8_t Op2 = C.u8();
  if (C.Fail)
    return 0;

  // Jcc rel32
  if (Op2 >= 0x80 && Op2 <= 0x8F) {
    int32_t Rel = int32_t(C.u32());
    uint64_t Target = Pc + C.Off + uint64_t(int64_t(Rel));
    Text = fmt("j%-6s 0x%llx", CcName[Op2 & 15], (unsigned long long)Target);
    return done();
  }
  // setcc r/m8
  if (Op2 >= 0x90 && Op2 <= 0x9F) {
    ModRM M = readModRM(C, Rex);
    Text = fmt("set%-4s %s", CcName[Op2 & 15], rmStr(M, W8, HasRex).c_str());
    return done();
  }
  // bswap r
  if (Op2 >= 0xC8 && Op2 <= 0xCF) {
    unsigned R = (Op2 & 7) | ((Rex & 1) ? 8 : 0);
    Text = fmt("%-7s %s", "bswap", W ? R64[R] : R32[R]);
    return done();
  }

  switch (Op2) {
  case 0x10: case 0x11: { // movss/movsd/movups/movupd
    const char *Name = PF3 ? (P66 ? nullptr : "movss")
                           : PF2 ? "movsd"
                                 : P66 ? "movupd" : "movups";
    if (!Name)
      return 0;
    ModRM M = readModRM(C, Rex);
    if (Op2 == 0x10)
      Text = fmt("%-7s %s, %s", Name, xmmName(M.Reg).c_str(),
                 rmStrX(M).c_str());
    else
      Text = fmt("%-7s %s, %s", Name, rmStrX(M).c_str(),
                 xmmName(M.Reg).c_str());
    return done();
  }
  case 0x2A: { // cvtsi2ss/sd xmm, r/m
    if (!PF3 && !PF2)
      return 0;
    ModRM M = readModRM(C, Rex);
    Text = fmt("%-7s %s, %s", PF3 ? "cvtsi2ss" : "cvtsi2sd",
               xmmName(M.Reg).c_str(),
               rmStr(M, W ? W64 : W32, HasRex).c_str());
    return done();
  }
  case 0x2C: { // cvttss2si/cvttsd2si r, xmm
    if (!PF3 && !PF2)
      return 0;
    ModRM M = readModRM(C, Rex);
    Text = fmt("%-7s %s, %s", PF3 ? "cvttss2si" : "cvttsd2si",
               regName(W ? W64 : W32, M.Reg, HasRex).c_str(),
               rmStrX(M).c_str());
    return done();
  }
  case 0x2E: { // ucomiss/ucomisd
    if (PF2 || PF3)
      return 0;
    ModRM M = readModRM(C, Rex);
    Text = fmt("%-7s %s, %s", P66 ? "ucomisd" : "ucomiss",
               xmmName(M.Reg).c_str(), rmStrX(M).c_str());
    return done();
  }
  case 0x51: case 0x58: case 0x59: case 0x5C: case 0x5E: { // scalar fp alu
    const char *Stem;
    switch (Op2) {
    case 0x51: Stem = "sqrt"; break;
    case 0x58: Stem = "add"; break;
    case 0x59: Stem = "mul"; break;
    case 0x5C: Stem = "sub"; break;
    default:   Stem = "div"; break;
    }
    const char *Sfx = PF3 ? "ss" : PF2 ? "sd" : P66 ? "pd" : "ps";
    ModRM M = readModRM(C, Rex);
    Text = fmt("%-7s %s, %s", (std::string(Stem) + Sfx).c_str(),
               xmmName(M.Reg).c_str(), rmStrX(M).c_str());
    return done();
  }
  case 0x5A: { // cvtss2sd / cvtsd2ss
    if (!PF3 && !PF2)
      return 0;
    ModRM M = readModRM(C, Rex);
    Text = fmt("%-7s %s, %s", PF3 ? "cvtss2sd" : "cvtsd2ss",
               xmmName(M.Reg).c_str(), rmStrX(M).c_str());
    return done();
  }
  case 0x57: { // xorps/xorpd
    if (PF2 || PF3)
      return 0;
    ModRM M = readModRM(C, Rex);
    Text = fmt("%-7s %s, %s", P66 ? "xorpd" : "xorps",
               xmmName(M.Reg).c_str(), rmStrX(M).c_str());
    return done();
  }
  case 0x6E: { // movd/movq xmm, r/m
    if (!P66)
      return 0;
    ModRM M = readModRM(C, Rex);
    Text = fmt("%-7s %s, %s", W ? "movq" : "movd", xmmName(M.Reg).c_str(),
               rmStr(M, W ? W64 : W32, HasRex).c_str());
    return done();
  }
  case 0x7E: { // movd/movq r/m, xmm
    if (!P66)
      return 0;
    ModRM M = readModRM(C, Rex);
    Text = fmt("%-7s %s, %s", W ? "movq" : "movd",
               rmStr(M, W ? W64 : W32, HasRex).c_str(),
               xmmName(M.Reg).c_str());
    return done();
  }
  case 0xAF: { // imul reg, rm
    ModRM M = readModRM(C, Rex);
    Text = fmt("%-7s %s, %s", "imul", regName(IW, M.Reg, HasRex).c_str(),
               rmStr(M, IW, HasRex).c_str());
    return done();
  }
  case 0xB6: case 0xB7: case 0xBE: case 0xBF: { // movzx/movsx
    const char *Name = Op2 < 0xBE ? "movzx" : "movsx";
    Width SrcW = (Op2 & 1) ? W16 : W8;
    ModRM M = readModRM(C, Rex);
    Text = fmt("%-7s %s, %s", Name, regName(IW, M.Reg, HasRex).c_str(),
               rmStr(M, SrcW, HasRex).c_str());
    return done();
  }
  default:
    return 0;
  }
  return 0; // unreachable: every case above returns
}
