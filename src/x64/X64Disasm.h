//===- x64/X64Disasm.h - x86-64 disassembler --------------------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A byte-level disassembler for the x86-64 subset X64Target and the DBT
/// translator emit — the variable-length counterpart of MipsDisasm/
/// SparcDisasm/AlphaDisasm (the paper's §6.2 symbolic-debugging support).
/// Unlike the word targets' one-word disassemble(), x86-64 instructions
/// span 1-10 bytes, so the interface decodes from a byte cursor and
/// reports the consumed length.
///
/// Coverage is intentionally exact: every encoding the backend and the
/// binary translator produce decodes symbolically, and the vcodegen
/// --dump-code round-trip check fails if an emitted byte sequence does
/// not (catching encoder/disassembler drift in either direction).
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_X64_X64DISASM_H
#define VCODE_X64_X64DISASM_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace vcode {
namespace x64 {

/// Decodes the instruction at \p P (at most \p Avail bytes, fetched from
/// address \p Pc — rel32 branch targets print absolute), appends its text
/// to \p Out, and returns its length in bytes. Returns 0 when the bytes
/// do not decode as an instruction this backend can emit.
size_t decodeOne(const uint8_t *P, size_t Avail, uint64_t Pc,
                 std::string &Out);

} // namespace x64
} // namespace vcode

#endif // VCODE_X64_X64DISASM_H
