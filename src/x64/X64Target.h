//===- x64/X64Target.h - x86-64 host backend --------------------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The x86-64 host port: the one backend whose output actually executes on
/// the machine running the generator (through sim::Memory's native mmap
/// mode and NativeCpu), giving the paper's "generated code runs at hardware
/// speed" claim a concrete measurement next to the simulated RISC ports.
///
/// The port maps VCODE's idealized load-store RISC machine onto a CISC:
/// * instructions are variable-length bytes (TargetInfo::CodeUnitBytes = 1),
///   emitted through the same CodeBuffer cursor as the RISC words;
/// * VCODE's three-address operations synthesize from x86's two-address
///   forms with at most one extra register move;
/// * the hardwired zero register is synthesized: r11 is pinned to zero by
///   the prologue and re-zeroed after every call;
/// * r10 is the assembler temporary; xmm14/xmm15 are FP scratch.
///
/// Hot emitters (ins*) are non-virtual and inline, exactly like the MIPS
/// port, so VCodeT<X64Target> clients keep the paper's macro-expansion cost
/// model.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_X64_X64TARGET_H
#define VCODE_X64_X64TARGET_H

#include "core/EncTable.h"
#include "core/TargetBase.h"
#include "core/VCodeT.h"
#include "support/BitUtils.h"
#include "x64/X64Encoding.h"
#include <bit>
#include <cassert>

namespace vcode {
namespace x64 {

/// Returns the shared x86-64 target description.
const TargetInfo &x64TargetInfo();

// --- Encoding tables --------------------------------------------------------

/// Direct-form integer ALU row: the reg/reg MR opcode, the /ext field of
/// the 81-group immediate form, and whether the operation commutes (used
/// by the two-address synthesis when Rd aliases Rs2). Mul/Div/Mod/shifts
/// stay invalid: they synthesize through dedicated sequences.
struct X64AluRow {
  uint8_t Op = 0;
  uint8_t Ext = 0;
  bool Commutes = false;
  bool Valid = false;

  constexpr X64AluRow() = default;
  constexpr X64AluRow(unsigned Op, unsigned Ext, bool Commutes)
      : Op(uint8_t(Op)), Ext(uint8_t(Ext)), Commutes(Commutes), Valid(true) {}
};

inline constexpr BinOpEncTable<X64AluRow> X64AluTable = [] {
  BinOpEncTable<X64AluRow> T;
  T.set(BinOp::Add, {0x01, 0, true})
      .set(BinOp::Sub, {0x29, 5, false})
      .set(BinOp::And, {0x21, 4, true})
      .set(BinOp::Or, {0x09, 1, true})
      .set(BinOp::Xor, {0x31, 6, true});
  return T;
}();

/// SSE scalar arithmetic opcodes (0F-escaped; F3/F2 prefix picks s/d).
inline constexpr BinOpEncTable<OpEnc> X64FpAluTable = [] {
  BinOpEncTable<OpEnc> T;
  T.set(BinOp::Add, {0x58})
      .set(BinOp::Sub, {0x5C})
      .set(BinOp::Mul, {0x59})
      .set(BinOp::Div, {0x5E});
  return T;
}();

/// Jcc condition nibbles: A = signed compare, B = unsigned compare. FP
/// branches use the unsigned column (ucomis sets CF/ZF like an unsigned
/// compare).
inline constexpr CondEncTable<OpPairEnc> X64CmpTable = [] {
  CondEncTable<OpPairEnc> T;
  T.set(Cond::Lt, {CC_L, CC_B})
      .set(Cond::Le, {CC_LE, CC_BE})
      .set(Cond::Gt, {CC_G, CC_A})
      .set(Cond::Ge, {CC_GE, CC_AE})
      .set(Cond::Eq, {CC_E, CC_E})
      .set(Cond::Ne, {CC_NE, CC_NE});
  return T;
}();

/// x86-64 host code generator backend.
class X64Target final : public TargetBase<X64Target> {
public:
  X64Target();

  const TargetInfo &info() const override { return x64TargetInfo(); }

  // --- Statically dispatched emitters (paper Table 2) ----------------------

  void insBinop(VCode &VC, BinOp Op, Type Ty, Reg Rd, Reg Rs1, Reg Rs2) {
    Asm A(VC.buf());
    if (isFpType(Ty)) {
      const OpEnc &E = X64FpAluTable[Op];
      if (!E.Valid)
        fatalKind(CgErrKind::BadOperand, "x64: fp binop '%s' unsupported",
                  binOpName(Op));
      fpBinop2(A, Ty == Type::F ? 0xF3 : 0xF2, uint8_t(E.Op), fpr(Rd),
               fpr(Rs1), fpr(Rs2));
      return;
    }
    bool W = isLongType(Ty);
    unsigned D = gpr(Rd), S1 = gpr(Rs1), S2 = gpr(Rs2);
    const X64AluRow &R = X64AluTable[Op];
    if (R.Valid) {
      alu2(A, W, R.Op, R.Commutes, D, S1, S2);
      return;
    }
    switch (Op) {
    case BinOp::Mul:
      // imul is RM (dst on the left), so the two-address dance mirrors
      // alu2 with Commutes = true.
      if (D == S1) {
        A.rr0F(W, 0xAF, D, S2);
      } else if (D == S2) {
        A.rr0F(W, 0xAF, D, S1);
      } else {
        A.movRR(D, S1);
        A.rr0F(W, 0xAF, D, S2);
      }
      return;
    case BinOp::Div:
    case BinOp::Mod:
      divMod(A, W, isSignedType(Ty), Op == BinOp::Mod, D, S1, S2);
      return;
    case BinOp::Lsh:
    case BinOp::Rsh:
      shiftByReg(A, W, shiftExt(Op, Ty), D, S1, S2);
      return;
    default:
      break;
    }
    unreachable("bad BinOp");
  }

  void insBinopImm(VCode &VC, BinOp Op, Type Ty, Reg Rd, Reg Rs1,
                   int64_t Imm) {
    if (isFpType(Ty))
      fatalKind(CgErrKind::BadOperand,
                "x64: immediate operands are not allowed for f/d (paper "
                "Table 2)");
    Asm A(VC.buf());
    bool W = isLongType(Ty);
    unsigned D = gpr(Rd), S = gpr(Rs1);
    switch (Op) {
    case BinOp::Lsh:
    case BinOp::Rsh:
      // Must encode directly (C1 /ext imm8): the register-count fallback
      // routes the amount through the assembler temporary, which the
      // synthesis sequence itself uses.
      assert(Imm >= 0 && Imm < (W ? 64 : 32) && "shift amount out of range");
      if (D != S)
        A.movRR(D, S);
      A.shiftRI(W, shiftExt(Op, Ty), D, uint8_t(Imm));
      return;
    case BinOp::Mul:
      if (!W || isInt<32>(Imm)) {
        // imul Rd, Rs, imm32 is the one three-address ALU form x86 has.
        A.rex(W, D, 0, S);
        VC.buf().put8(0x69);
        VC.buf().put8(Asm::modrm(3, D, S));
        VC.buf().put32(uint32_t(Imm));
        return;
      }
      break;
    case BinOp::Add:
    case BinOp::Sub:
    case BinOp::And:
    case BinOp::Or:
    case BinOp::Xor:
      if (!W || isInt<32>(Imm)) {
        if (D != S)
          A.movRR(D, S);
        A.aluRI(W, X64AluTable[Op].Ext, D, uint32_t(Imm));
        return;
      }
      break;
    default:
      break;
    }
    // Boundary condition (paper §1: "constants that don't fit in immediate
    // fields"): synthesize through the assembler temporary.
    li(A, AT, Imm, W);
    insBinop(VC, Op, Ty, Rd, Rs1, intReg(AT));
  }

  void insUnop(VCode &VC, UnOp Op, Type Ty, Reg Rd, Reg Rs) {
    Asm A(VC.buf());
    if (isFpType(Ty)) {
      bool Dbl = Ty == Type::D;
      switch (Op) {
      case UnOp::Mov:
        if (fpr(Rd) != fpr(Rs))
          A.sse(Dbl ? 0xF2 : 0xF3, false, 0x10, fpr(Rd), fpr(Rs));
        return;
      case UnOp::Neg:
        // Flip the sign bit: materialize the mask in xmm15 via r10 and xor.
        if (Dbl) {
          A.movRI64(AT, uint64_t(1) << 63);
          A.sse(0x66, true, 0x6E, XMM15, AT); // movq xmm15, r10
        } else {
          A.movRI32(AT, uint32_t(1) << 31);
          A.sse(0x66, false, 0x6E, XMM15, AT); // movd xmm15, r10d
        }
        if (fpr(Rd) != fpr(Rs))
          A.sse(Dbl ? 0xF2 : 0xF3, false, 0x10, fpr(Rd), fpr(Rs));
        A.sse(Dbl ? 0x66 : 0x00, false, 0x57, fpr(Rd), XMM15); // xorps/pd
        return;
      default:
        fatalKind(CgErrKind::BadOperand, "x64: fp unop unsupported");
      }
    }
    bool W = isLongType(Ty);
    unsigned D = gpr(Rd), S = gpr(Rs);
    switch (Op) {
    case UnOp::Com:
      if (D != S)
        A.movRR(D, S);
      A.grp3(W, 2, D); // not
      return;
    case UnOp::Not: // logical not: Rd = (Rs == 0)
      A.rr(W, 0x85, S, S); // test S, S
      A.setcc(CC_E, AT);
      A.rr0F(false, 0xB6, D, AT); // movzx D32, r10b
      return;
    case UnOp::Mov:
      if (D != S)
        A.movRR(D, S);
      return;
    case UnOp::Neg:
      if (D != S)
        A.movRR(D, S);
      A.grp3(W, 3, D); // neg
      return;
    }
    unreachable("bad UnOp");
  }

  void insSetInt(VCode &VC, Type Ty, Reg Rd, uint64_t Imm) {
    Asm A(VC.buf());
    li(A, gpr(Rd), int64_t(Imm), isLongType(Ty));
  }

  void insSetFp(VCode &VC, Type Ty, Reg Rd, double Val) {
    // No constant pool needed on x86-64: any bit pattern materializes
    // through the assembler temporary and movd/movq.
    Asm A(VC.buf());
    if (Ty == Type::F) {
      uint32_t Bits = std::bit_cast<uint32_t>(float(Val));
      if (Bits == 0) {
        A.sse(0, false, 0x57, fpr(Rd), fpr(Rd)); // xorps rd, rd
        return;
      }
      A.movRI32(AT, Bits);
      A.sse(0x66, false, 0x6E, fpr(Rd), AT); // movd rd, r10d
      return;
    }
    uint64_t Bits = std::bit_cast<uint64_t>(Val);
    if (Bits == 0) {
      A.sse(0, false, 0x57, fpr(Rd), fpr(Rd));
      return;
    }
    A.movRI64(AT, Bits);
    A.sse(0x66, true, 0x6E, fpr(Rd), AT); // movq rd, r10
  }

  void insCvt(VCode &VC, Type From, Type To, Reg Rd, Reg Rs) {
    Asm A(VC.buf());
    bool FromIntReg = isIntRegType(From);
    bool ToIntReg = isIntRegType(To);
    if (FromIntReg && ToIntReg) {
      unsigned D = gpr(Rd), S = gpr(Rs);
      if (isLongType(To)) {
        if (From == Type::I) {
          A.movsxd(D, S); // sign-extend: cvil and friends
        } else if (From == Type::U) {
          A.movRR32(D, S); // zero-extend (even when D == S: clears the top)
        } else if (D != S) {
          A.movRR(D, S);
        }
        return;
      }
      // Narrowing to 32 bits is representational only (consumers read the
      // low half), so a plain move suffices.
      if (D != S)
        A.movRR(D, S);
      return;
    }
    if (FromIntReg && isFpType(To)) {
      bool Dbl = To == Type::D;
      if (From == Type::I) {
        A.sse(Dbl ? 0xF2 : 0xF3, false, 0x2A, fpr(Rd), gpr(Rs));
        return;
      }
      if (From == Type::U) { // exact via zero-extension to 64 bits
        A.movRR32(AT, gpr(Rs));
        A.sse(Dbl ? 0xF2 : 0xF3, true, 0x2A, fpr(Rd), AT);
        return;
      }
      if (From == Type::L) {
        A.sse(Dbl ? 0xF2 : 0xF3, true, 0x2A, fpr(Rd), gpr(Rs));
        return;
      }
      unsignedToFp(VC, Dbl, Rd, Rs); // UL/P: top bit may be set
      return;
    }
    if (isFpType(From) && ToIntReg) {
      // Truncating convert through a 64-bit integer for every integer
      // destination: matches the reference semantics (int64 truncation,
      // then canonicalization by the consumer's operand size).
      A.sse(From == Type::F ? 0xF3 : 0xF2, true, 0x2C, gpr(Rd), fpr(Rs));
      return;
    }
    if (From == Type::F && To == Type::D) {
      A.sse(0xF3, false, 0x5A, fpr(Rd), fpr(Rs));
      return;
    }
    if (From == Type::D && To == Type::F) {
      A.sse(0xF2, false, 0x5A, fpr(Rd), fpr(Rs));
      return;
    }
    if (From == To && isFpType(From)) {
      if (fpr(Rd) != fpr(Rs))
        A.sse(From == Type::F ? 0xF3 : 0xF2, false, 0x10, fpr(Rd), fpr(Rs));
      return;
    }
    fatalKind(CgErrKind::BadOperand, "x64: unsupported conversion %s -> %s",
              typeName(From), typeName(To));
  }

  void insLoad(VCode &VC, Type Ty, Reg Rd, Reg Base, Reg Off) {
    Asm A(VC.buf());
    unsigned Bs = gpr(Base), Ix = gpr(Off);
    assert(Ix != RSP && "rsp cannot be a SIB index");
    switch (Ty) {
    case Type::C:
      A.rmIdx0F(false, 0xBE, gpr(Rd), Bs, Ix);
      return;
    case Type::UC:
      A.rmIdx0F(false, 0xB6, gpr(Rd), Bs, Ix);
      return;
    case Type::S:
      A.rmIdx0F(false, 0xBF, gpr(Rd), Bs, Ix);
      return;
    case Type::US:
      A.rmIdx0F(false, 0xB7, gpr(Rd), Bs, Ix);
      return;
    case Type::I:
    case Type::U:
      A.rmIdx(false, 0x8B, gpr(Rd), Bs, Ix);
      return;
    case Type::L:
    case Type::UL:
    case Type::P:
      A.rmIdx(true, 0x8B, gpr(Rd), Bs, Ix);
      return;
    case Type::F:
      A.sseMemIdx(0xF3, 0x10, fpr(Rd), Bs, Ix);
      return;
    case Type::D:
      A.sseMemIdx(0xF2, 0x10, fpr(Rd), Bs, Ix);
      return;
    default:
      unreachable("bad load type");
    }
  }

  void insLoadImm(VCode &VC, Type Ty, Reg Rd, Reg Base, int64_t Off) {
    Asm A(VC.buf());
    if (!isInt<32>(Off)) {
      li(A, AT, Off, true);
      A.rr(true, 0x01, gpr(Base), AT); // add r10, base
      loadDisp(A, Ty, Rd, AT, 0);
      return;
    }
    loadDisp(A, Ty, Rd, gpr(Base), int32_t(Off));
  }

  void insStore(VCode &VC, Type Ty, Reg Val, Reg Base, Reg Off) {
    CodeBuffer &B = VC.buf();
    Asm A(B);
    unsigned Bs = gpr(Base), Ix = gpr(Off);
    assert(Ix != RSP && "rsp cannot be a SIB index");
    switch (Ty) {
    case Type::C:
    case Type::UC: {
      unsigned V = gpr(Val);
      A.rmIdx(false, 0x88, V, Bs, Ix, /*Force=*/V >= 4 && V < 8);
      return;
    }
    case Type::S:
    case Type::US:
      B.put8(0x66);
      A.rmIdx(false, 0x89, gpr(Val), Bs, Ix);
      return;
    case Type::I:
    case Type::U:
      A.rmIdx(false, 0x89, gpr(Val), Bs, Ix);
      return;
    case Type::L:
    case Type::UL:
    case Type::P:
      A.rmIdx(true, 0x89, gpr(Val), Bs, Ix);
      return;
    case Type::F:
      A.sseMemIdx(0xF3, 0x11, fpr(Val), Bs, Ix);
      return;
    case Type::D:
      A.sseMemIdx(0xF2, 0x11, fpr(Val), Bs, Ix);
      return;
    default:
      unreachable("bad store type");
    }
  }

  void insStoreImm(VCode &VC, Type Ty, Reg Val, Reg Base, int64_t Off) {
    Asm A(VC.buf());
    if (!isInt<32>(Off)) {
      li(A, AT, Off, true);
      A.rr(true, 0x01, gpr(Base), AT); // add r10, base
      storeDisp(VC, Ty, Val, AT, 0);
      return;
    }
    storeDisp(VC, Ty, Val, gpr(Base), int32_t(Off));
  }

  void insBranch(VCode &VC, Cond C, Type Ty, Reg Rs1, Reg Rs2, Label L) {
    Asm A(VC.buf());
    const OpPairEnc &R = X64CmpTable[C];
    if (isFpType(Ty)) {
      A.sse(Ty == Type::F ? 0x00 : 0x66, false, 0x2E, fpr(Rs1), fpr(Rs2));
      VC.addFixup(FixupKind::Branch, L);
      A.jcc32(R.pick(true));
      return;
    }
    bool W = isLongType(Ty);
    A.rr(W, 0x39, gpr(Rs2), gpr(Rs1)); // cmp rs1, rs2
    VC.addFixup(FixupKind::Branch, L);
    A.jcc32(R.pick(!isSignedType(Ty)));
  }

  void insBranchImm(VCode &VC, Cond C, Type Ty, Reg Rs1, int64_t Imm,
                    Label L) {
    if (isFpType(Ty))
      fatalKind(CgErrKind::BadOperand, "x64: fp branches take register "
                                       "operands");
    Asm A(VC.buf());
    bool W = isLongType(Ty);
    if (W && !isInt<32>(Imm)) {
      li(A, AT, Imm, true);
      insBranch(VC, C, Ty, Rs1, intReg(AT), L);
      return;
    }
    A.aluRI(W, 7, gpr(Rs1), uint32_t(Imm)); // cmp rs1, imm32
    VC.addFixup(FixupKind::Branch, L);
    A.jcc32(X64CmpTable[C].pick(!isSignedType(Ty)));
  }

  void insJump(VCode &VC, Label L) {
    VC.addFixup(FixupKind::Jump, L);
    Asm(VC.buf()).jmp32();
  }

  void insJumpReg(VCode &VC, Reg R) { Asm(VC.buf()).jmpReg(gpr(R)); }

  void insJumpAddr(VCode &VC, SimAddr Ad) {
    CodeBuffer &B = VC.buf();
    Asm A(B);
    int64_t Rel = int64_t(Ad) - int64_t(B.cursorAddr() + 5);
    if (isInt<32>(Rel)) {
      A.jmp32(int32_t(Rel));
      return;
    }
    A.movRI64(AT, Ad);
    A.jmpReg(AT);
  }

  void insCallAddr(VCode &VC, SimAddr Ad) {
    CodeBuffer &B = VC.buf();
    Asm A(B);
    int64_t Rel = int64_t(Ad) - int64_t(B.cursorAddr() + 5);
    if (isInt<32>(Rel)) {
      A.call32(int32_t(Rel));
    } else {
      A.movRI64(AT, Ad);
      A.callReg(AT);
    }
    A.zeroR11(); // the callee may have clobbered the synthesized zero
  }

  void insCallLabel(VCode &VC, Label L) {
    VC.addFixup(FixupKind::Call, L);
    Asm A(VC.buf());
    A.call32();
    A.zeroR11();
  }

  void insLinkReturn(VCode &VC) {
    // x86 links through the stack: call pushed the return address, ret
    // pops it.
    Asm(VC.buf()).ret();
  }

  void insCallReg(VCode &VC, Reg R) {
    Asm A(VC.buf());
    A.callReg(gpr(R));
    A.zeroR11();
  }

  void insRet(VCode &VC, Type Ty, Reg Rs) {
    Asm A(VC.buf());
    // No delay slot to hide the result move in: move first, then jump to
    // the epilogue (rewritten to a plain ret when no frame is needed).
    if (Ty != Type::V) {
      if (isFpType(Ty)) {
        unsigned Ret = fpr(VC.resultReg(Ty));
        if (fpr(Rs) != Ret)
          A.sse(Ty == Type::F ? 0xF3 : 0xF2, false, 0x10, Ret, fpr(Rs));
      } else {
        unsigned Ret = gpr(VC.resultReg(Ty));
        if (gpr(Rs) != Ret)
          A.movRR(Ret, gpr(Rs));
      }
    }
    VC.addFixup(FixupKind::EpilogueJump, VC.epilogueLabel());
    A.jmp32();
  }

  void insRetImm(VCode &VC, Type Ty, int64_t Imm) {
    Asm A(VC.buf());
    li(A, gpr(VC.resultReg(Ty)), Imm, isLongType(Ty));
    VC.addFixup(FixupKind::EpilogueJump, VC.epilogueLabel());
    A.jmp32();
  }

  void insNop(VCode &VC) { VC.buf().put8(0x90); }

  // --- Cold paths (defined in X64Target.cpp) -------------------------------

  std::string disassemble(uint32_t Word, SimAddr Pc) const override;

  void beginFunction(VCode &VC) override;
  CodePtr endFunction(VCode &VC) override;
  void applyFixup(VCode &VC, const Fixup &F, SimAddr Target) override;

private:
  static unsigned gpr(Reg R) {
    assert(R.isInt() && "integer register expected");
    return R.Num;
  }
  static unsigned fpr(Reg R) {
    assert(R.isFp() && "fp register expected");
    return R.Num;
  }

  /// C1/D3-group /ext field for a shift: shl=4, shr=5, sar=7.
  static unsigned shiftExt(BinOp Op, Type Ty) {
    if (Op == BinOp::Lsh)
      return 4;
    return isSignedType(Ty) ? 7 : 5;
  }

  /// Three-address integer ALU op from x86's two-address form, preserving
  /// both sources. At most one move through the assembler temporary (only
  /// when Rd aliases Rs2 of a non-commutative op).
  void alu2(Asm &A, bool W, uint8_t Op, bool Commutes, unsigned D,
            unsigned S1, unsigned S2) {
    if (D == S1) {
      A.rr(W, Op, S2, D);
      return;
    }
    if (D == S2) {
      if (Commutes) {
        A.rr(W, Op, S1, D);
        return;
      }
      A.movRR(AT, S2);
      A.movRR(D, S1);
      A.rr(W, Op, AT, D);
      return;
    }
    A.movRR(D, S1);
    A.rr(W, Op, S2, D);
  }

  /// Three-address scalar FP op from SSE's two-address RM form; xmm15 is
  /// the spill for the Rd == Rs2 non-commutative case.
  void fpBinop2(Asm &A, uint8_t Prefix, uint8_t Op, unsigned D, unsigned S1,
                unsigned S2) {
    if (D == S1) {
      A.sse(Prefix, false, Op, D, S2);
      return;
    }
    if (D == S2) {
      if (Op == 0x58 || Op == 0x59) { // addss/mulss commute
        A.sse(Prefix, false, Op, D, S1);
        return;
      }
      A.sse(Prefix, false, 0x10, XMM15, S2);
      A.sse(Prefix, false, 0x10, D, S1);
      A.sse(Prefix, false, Op, D, XMM15);
      return;
    }
    A.sse(Prefix, false, 0x10, D, S1);
    A.sse(Prefix, false, Op, D, S2);
  }

  /// Division/remainder through the rax/rdx pair, preserving both around
  /// the sequence so rax/rdx stay allocatable. Sources are re-extended to
  /// 64 bits so 32-bit division matches the reference's int64 semantics
  /// (and INT_MIN / -1 cannot fault).
  void divMod(Asm &A, bool W, bool Signed, bool WantMod, unsigned D,
              unsigned S1, unsigned S2) {
    A.push(RAX);
    A.push(RDX);
    if (W) {
      A.movRR(AT, S2); // read sources before clobbering rax/rdx
      A.movRR(RAX, S1);
    } else if (Signed) {
      A.movsxd(AT, S2);
      A.movsxd(RAX, S1);
    } else {
      A.movRR32(AT, S2);
      A.movRR32(RAX, S1);
    }
    if (Signed)
      A.cdq(true); // cqo: rdx = sign(rax)
    else
      A.rr(false, 0x31, RDX, RDX); // xor edx, edx
    A.grp3(true, Signed ? 7 : 6, AT); // idiv/div r10 (64-bit)
    A.movRR(AT, WantMod ? RDX : RAX);
    A.pop(RDX);
    A.pop(RAX);
    A.movRR(D, AT);
  }

  /// Shift by a register amount through cl, preserving rcx. The shifted
  /// value rides in the assembler temporary so any Rd/Rs/rcx aliasing is
  /// safe; x86 masks the count to the operand size, exactly VCODE's
  /// portable contract.
  void shiftByReg(Asm &A, bool W, unsigned Ext, unsigned D, unsigned S1,
                  unsigned S2) {
    A.movRR(AT, S1);
    A.push(RCX);
    A.movRR(RCX, S2);
    A.shiftRCl(W, Ext, AT);
    A.pop(RCX);
    A.movRR(D, AT);
  }

  /// Loads a constant into \p Rd with the shortest encoding (5-10 bytes).
  void li(Asm &A, unsigned Rd, int64_t Imm, bool W) {
    if (!W || (Imm >= 0 && isUInt<32>(uint64_t(Imm)))) {
      A.movRI32(Rd, uint32_t(Imm));
      return;
    }
    if (isInt<32>(Imm)) {
      A.movRIs32(Rd, int32_t(Imm));
      return;
    }
    A.movRI64(Rd, uint64_t(Imm));
  }

  /// Typed load from [Base + Disp].
  void loadDisp(Asm &A, Type Ty, Reg Rd, unsigned Bs, int32_t Disp) {
    switch (Ty) {
    case Type::C:
      A.rm0F(false, 0xBE, gpr(Rd), Bs, Disp);
      return;
    case Type::UC:
      A.rm0F(false, 0xB6, gpr(Rd), Bs, Disp);
      return;
    case Type::S:
      A.rm0F(false, 0xBF, gpr(Rd), Bs, Disp);
      return;
    case Type::US:
      A.rm0F(false, 0xB7, gpr(Rd), Bs, Disp);
      return;
    case Type::I:
    case Type::U:
      A.rm(false, 0x8B, gpr(Rd), Bs, Disp);
      return;
    case Type::L:
    case Type::UL:
    case Type::P:
      A.rm(true, 0x8B, gpr(Rd), Bs, Disp);
      return;
    case Type::F:
      A.sseMem(0xF3, 0x10, fpr(Rd), Bs, Disp);
      return;
    case Type::D:
      A.sseMem(0xF2, 0x10, fpr(Rd), Bs, Disp);
      return;
    default:
      unreachable("bad load type");
    }
  }

  /// Typed store to [Base + Disp].
  void storeDisp(VCode &VC, Type Ty, Reg Val, unsigned Bs, int32_t Disp) {
    CodeBuffer &B = VC.buf();
    Asm A(B);
    switch (Ty) {
    case Type::C:
    case Type::UC: {
      unsigned V = gpr(Val);
      A.rm(false, 0x88, V, Bs, Disp, /*Force=*/V >= 4 && V < 8);
      return;
    }
    case Type::S:
    case Type::US:
      B.put8(0x66);
      A.rm(false, 0x89, gpr(Val), Bs, Disp);
      return;
    case Type::I:
    case Type::U:
      A.rm(false, 0x89, gpr(Val), Bs, Disp);
      return;
    case Type::L:
    case Type::UL:
    case Type::P:
      A.rm(true, 0x89, gpr(Val), Bs, Disp);
      return;
    case Type::F:
      A.sseMem(0xF3, 0x11, fpr(Val), Bs, Disp);
      return;
    case Type::D:
      A.sseMem(0xF2, 0x11, fpr(Val), Bs, Disp);
      return;
    default:
      unreachable("bad store type");
    }
  }

  void unsignedToFp(VCode &VC, bool ToDouble, Reg Rd, Reg Rs);
  void registerMachineInstructions();
};

} // namespace x64

// One shared instantiation of the static-dispatch emission core for this
// backend (defined in X64Target.cpp).
extern template class VCodeT<x64::X64Target>;

} // namespace vcode

#endif // VCODE_X64_X64TARGET_H
