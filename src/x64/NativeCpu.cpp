//===- x64/NativeCpu.cpp - Direct host execution -----------------------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "x64/NativeCpu.h"
#include "support/Telemetry.h"
#include "x64/X64Target.h"
#include <bit>
#include <cstring>

using namespace vcode;
using namespace vcode::x64;
using sim::TypedValue;

NativeCpu::NativeCpu(sim::Memory &M) : Mem(M) {
  Cfg.Name = "host-x64";
  Cfg.ClockMHz = 1000.0; // nominal: native runs are wall-clock timed
  Cfg.ModelCaches = false;
  if (!M.isNative())
    fatalKind(CgErrKind::ApiMisuse,
              "native: NativeCpu needs a sim::Memory in native mode "
              "(construct it with sim::Memory::Native)");
}

const CallConv &NativeCpu::defaultConv() const {
  return x64TargetInfo().DefaultCC;
}

namespace {

/// SysV argument-register orders the trampoline can realize. Position N of
/// the trampoline's parameter list lands in IntOrder[N] / xmmN.
constexpr unsigned IntOrder[6] = {RDI, RSI, RDX, RCX, R8, R9};

/// The universal trampoline shape: the SysV ABI assigns integer parameters
/// to rdi,rsi,rdx,rcx,r8,r9 and double parameters to xmm0..7 in order,
/// independent of their interleaving, so one C call with every register
/// parameter populated realizes any register-only argument list. The
/// trailing uint64_t parameters are all memory-class (the register sets
/// are exhausted by then) and land at [rsp], [rsp+8], ... in order —
/// exactly the outgoing-argument layout computeArgLocs assigns, since on
/// this target every stack argument occupies one naturally-aligned 8-byte
/// slot. Populating all eight realizes any argument list with up to 64
/// bytes of stack arguments; the callee reads only the slots its signature
/// names.
constexpr size_t MaxStackSlots = 8;
using IntFn = uint64_t (*)(uint64_t, uint64_t, uint64_t, uint64_t, uint64_t,
                           uint64_t, double, double, double, double, double,
                           double, double, double, uint64_t, uint64_t,
                           uint64_t, uint64_t, uint64_t, uint64_t, uint64_t,
                           uint64_t);
using FpFn = double (*)(uint64_t, uint64_t, uint64_t, uint64_t, uint64_t,
                        uint64_t, double, double, double, double, double,
                        double, double, double, uint64_t, uint64_t, uint64_t,
                        uint64_t, uint64_t, uint64_t, uint64_t, uint64_t);

int intSlotOf(Reg R) {
  for (int I = 0; I < 6; ++I)
    if (R.Num == IntOrder[I])
      return I;
  return -1;
}

} // namespace

TypedValue NativeCpu::callWithConvSpan(const CallConv &CC, SimAddr Entry,
                                       const TypedValue *Args, size_t NumArgs,
                                       Type RetTy) {
#ifndef __x86_64__
  (void)CC;
  (void)Entry;
  (void)Args;
  (void)NumArgs;
  (void)RetTy;
  fatalKind(CgErrKind::ApiMisuse,
            "native: direct execution requires an x86-64 host");
#else
  // Execute-before-publish gate, with the positive answer cached against
  // the memory's protection epoch so steady-state dispatch pays one atomic
  // load instead of a mutex acquisition.
  uint64_t Epoch = Mem.execEpoch();
  if (Epoch != ExecStamp || Entry < ExecLo || Entry >= ExecHi) {
    if (!Mem.executableRange(Entry, ExecLo, ExecHi))
      fatalKind(CgErrKind::SimFault,
                "native: entry 0x%llx is not published executable code "
                "(v_end publishes; did generation fail?)",
                (unsigned long long)Entry);
    ExecStamp = Epoch;
  }

  // Assign locations exactly as computeArgLocs does (next free int/fp
  // register per argument, left to right; then naturally-aligned 8-byte
  // outgoing slots), without materializing the ArgLoc vector: this path
  // runs once per dispatched message.
  uint64_t IArg[6] = {0, 0, 0, 0, 0, 0};
  double DArg[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  uint64_t SArg[MaxStackSlots] = {0, 0, 0, 0, 0, 0, 0, 0};
  size_t NextInt = 0, NextFp = 0, NextSlot = 0;
  for (size_t I = 0; I < NumArgs; ++I) {
    const TypedValue &A = Args[I];
    if (isFpType(A.Ty)) {
      // Pass the bit pattern: an F argument occupies the low 32 bits of
      // its xmm register (or stack slot), exactly where the callee reads
      // it.
      uint64_t Bits = A.Ty == Type::F ? (A.Bits & 0xffffffffu) : A.Bits;
      if (NextFp >= CC.FpArgRegs.size()) {
        if (NextSlot >= MaxStackSlots)
          fatalKind(CgErrKind::ApiMisuse,
                    "native: argument %zu needs stack slot %zu; the host "
                    "trampoline passes at most %zu stack slots",
                    I + 1, NextSlot + 1, MaxStackSlots);
        SArg[NextSlot++] = Bits;
        continue;
      }
      Reg R = CC.FpArgRegs[NextFp++];
      if (R.Num >= 8)
        fatalKind(CgErrKind::ApiMisuse,
                  "native: fp argument register xmm%u is outside the SysV "
                  "argument set",
                  unsigned(R.Num));
      DArg[R.Num] = std::bit_cast<double>(Bits);
    } else {
      if (NextInt >= CC.IntArgRegs.size()) {
        if (NextSlot >= MaxStackSlots)
          fatalKind(CgErrKind::ApiMisuse,
                    "native: argument %zu needs stack slot %zu; the host "
                    "trampoline passes at most %zu stack slots",
                    I + 1, NextSlot + 1, MaxStackSlots);
        SArg[NextSlot++] = A.Bits;
        continue;
      }
      int Slot = intSlotOf(CC.IntArgRegs[NextInt++]);
      if (Slot < 0)
        fatalKind(CgErrKind::ApiMisuse,
                  "native: integer argument register is outside the SysV "
                  "argument set");
      IArg[Slot] = A.Bits;
    }
  }

  TypedValue R;
  R.Ty = RetTy;
  auto P = uintptr_t(Entry);
  if (isFpType(RetTy)) {
    if (CC.FpRet.Num != 0)
      fatalKind(CgErrKind::ApiMisuse,
                "native: fp results must come back in xmm0");
    double D = reinterpret_cast<FpFn>(P)(
        IArg[0], IArg[1], IArg[2], IArg[3], IArg[4], IArg[5], DArg[0],
        DArg[1], DArg[2], DArg[3], DArg[4], DArg[5], DArg[6], DArg[7],
        SArg[0], SArg[1], SArg[2], SArg[3], SArg[4], SArg[5], SArg[6],
        SArg[7]);
    uint64_t Bits = std::bit_cast<uint64_t>(D);
    R.Bits = RetTy == Type::F ? (Bits & 0xffffffffu) : Bits;
  } else {
    if (RetTy != Type::V && CC.IntRet.Num != RAX)
      fatalKind(CgErrKind::ApiMisuse,
                "native: integer results must come back in rax");
    uint64_t V = reinterpret_cast<IntFn>(P)(
        IArg[0], IArg[1], IArg[2], IArg[3], IArg[4], IArg[5], DArg[0],
        DArg[1], DArg[2], DArg[3], DArg[4], DArg[5], DArg[6], DArg[7],
        SArg[0], SArg[1], SArg[2], SArg[3], SArg[4], SArg[5], SArg[6],
        SArg[7]);
    // Canonicalize like the simulators do: 32-bit results sign/zero-extend
    // (the generated code's upper 32 bits are unspecified for i/u).
    switch (RetTy) {
    case Type::V:
      R.Bits = 0;
      break;
    case Type::I:
    case Type::C:
    case Type::S:
      R.Bits = uint64_t(int64_t(int32_t(uint32_t(V))));
      break;
    case Type::U:
    case Type::UC:
    case Type::US:
      R.Bits = uint64_t(uint32_t(V));
      break;
    default: // L, UL, P
      R.Bits = V;
      break;
    }
  }
  // Native runs have no simulated statistics to fold in: lastStats() and
  // cumulativeStats() stay zero, and the call is billed to one dedicated
  // counter instead of the six per-call sim.* telemetry adds.
  Last = sim::RunStats();
  VCODE_TM_COUNT("native.calls", 1);
  return R;
#endif
}
