//===- dcg/Dcg.cpp - The DCG baseline code generator -----------------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "dcg/Dcg.h"
#include "support/BitUtils.h"
#include <cassert>

using namespace vcode;
using namespace vcode::dcg;

void Dcg::beginFunction(const char *ArgTypeStr, bool IsLeaf, CodeMem Mem) {
  Pool.clear();
  ArgRegs.assign(16, Reg());
  V.lambda(ArgTypeStr, ArgRegs.data(), IsLeaf, Mem);
}

CodePtr Dcg::endFunction() { return V.end(); }

Node *Dcg::newNode(NodeOp Op, Type Ty) {
  Pool.emplace_back();
  Node *N = &Pool.back();
  N->Op = Op;
  N->Ty = Ty;
  return N;
}

Node *Dcg::cnst(Type Ty, int64_t Value) {
  Node *N = newNode(NodeOp::Const, Ty);
  N->Value = Value;
  return N;
}

Node *Dcg::regNode(Type Ty, Reg R) {
  Node *N = newNode(NodeOp::Reg, Ty);
  N->R = R;
  return N;
}

Node *Dcg::arg(unsigned Index, Type Ty) {
  assert(Index < ArgRegs.size() && ArgRegs[Index].isValid() &&
         "argument index out of range");
  Node *N = newNode(NodeOp::Arg, Ty);
  N->Value = Index;
  N->R = ArgRegs[Index];
  return N;
}

Node *Dcg::load(Type Ty, Node *Addr) {
  Node *N = newNode(NodeOp::Load, Ty);
  N->Kids[0] = Addr;
  return N;
}

Node *Dcg::binop(BinOp Op, Type Ty, Node *L, Node *R) {
  Node *N = newNode(NodeOp::Binop, Ty);
  N->Bin = Op;
  N->Kids[0] = L;
  N->Kids[1] = R;
  return N;
}

Node *Dcg::unop(UnOp Op, Type Ty, Node *K) {
  Node *N = newNode(NodeOp::Unop, Ty);
  N->Un = Op;
  N->Kids[0] = K;
  return N;
}

Node *Dcg::cvt(Type From, Type To, Node *K) {
  Node *N = newNode(NodeOp::Cvt, To);
  N->FromTy = From;
  N->Kids[0] = K;
  return N;
}

/// Pass 1: bottom-up labelling. Assigns each node the cheapest matching
/// rule and a subtree cost, mimicking the BURS-style matcher DCG used.
void Dcg::labelTree(Node *T) {
  if (!T || T->SelectedRule != Rule::Unlabelled)
    return;
  for (Node *K : T->Kids)
    labelTree(K);
  uint16_t KidCost = 0;
  for (Node *K : T->Kids)
    if (K)
      KidCost = uint16_t(KidCost + K->Cost);

  switch (T->Op) {
  case NodeOp::Const:
    T->SelectedRule = Rule::EmitConst;
    T->Cost = isInt<16>(T->Value) ? 1 : 2;
    return;
  case NodeOp::Reg:
  case NodeOp::Arg:
    T->SelectedRule = T->Op == NodeOp::Arg ? Rule::EmitArg : Rule::ReuseReg;
    T->Cost = 0;
    return;
  case NodeOp::Load:
    // addr = base + const  -> fold the offset into the load.
    if (T->Kids[0]->Op == NodeOp::Binop && T->Kids[0]->Bin == BinOp::Add &&
        T->Kids[0]->Kids[1]->Op == NodeOp::Const &&
        isInt<15>(T->Kids[0]->Kids[1]->Value)) {
      T->SelectedRule = Rule::EmitLoadFold;
      T->Cost = uint16_t(1 + T->Kids[0]->Kids[0]->Cost);
      return;
    }
    T->SelectedRule = Rule::EmitLoad;
    T->Cost = uint16_t(1 + KidCost);
    return;
  case NodeOp::Binop:
    // op reg, const -> immediate form when the constant fits.
    if (T->Kids[1]->Op == NodeOp::Const && isInt<13>(T->Kids[1]->Value) &&
        T->Bin != BinOp::Mul && T->Bin != BinOp::Div &&
        T->Bin != BinOp::Mod) {
      T->SelectedRule = Rule::EmitBinopImm;
      T->Cost = uint16_t(1 + T->Kids[0]->Cost);
      return;
    }
    T->SelectedRule = Rule::EmitBinop;
    T->Cost = uint16_t(1 + KidCost);
    return;
  case NodeOp::Unop:
    T->SelectedRule = Rule::EmitUnop;
    T->Cost = uint16_t(1 + KidCost);
    return;
  case NodeOp::Cvt:
    T->SelectedRule = Rule::EmitCvt;
    T->Cost = uint16_t(2 + KidCost);
    return;
  }
  unreachable("bad NodeOp");
}

/// Pass 2: reduce — walk the labelled tree, allocating registers
/// dynamically and emitting machine code through the backend.
Reg Dcg::reduce(Node *T) {
  switch (T->SelectedRule) {
  case Rule::EmitConst: {
    Reg R = V.getreg(T->Ty);
    if (!R.isValid())
      fatal("dcg: out of registers");
    V.setInt(T->Ty, R, uint64_t(T->Value));
    return R;
  }
  case Rule::ReuseReg:
  case Rule::EmitArg:
    // The value is pinned in its register; copy into a scratch so the
    // consumer may clobber it (DCG's trees are single-use values).
    {
      Reg R = V.getreg(T->Ty);
      if (!R.isValid())
        fatal("dcg: out of registers");
      V.unop(UnOp::Mov, T->Ty, R, T->R);
      return R;
    }
  case Rule::EmitLoad: {
    Reg A = reduce(T->Kids[0]);
    Reg R = V.getreg(T->Ty);
    if (!R.isValid())
      fatal("dcg: out of registers");
    V.loadImm(T->Ty, R, A, 0);
    V.putreg(A);
    return R;
  }
  case Rule::EmitLoadFold: {
    Reg A = reduce(T->Kids[0]->Kids[0]);
    Reg R = V.getreg(T->Ty);
    if (!R.isValid())
      fatal("dcg: out of registers");
    V.loadImm(T->Ty, R, A, T->Kids[0]->Kids[1]->Value);
    V.putreg(A);
    return R;
  }
  case Rule::EmitBinop: {
    Reg L = reduce(T->Kids[0]);
    Reg R = reduce(T->Kids[1]);
    V.binop(T->Bin, T->Ty, L, L, R);
    V.putreg(R);
    return L;
  }
  case Rule::EmitBinopImm: {
    Reg L = reduce(T->Kids[0]);
    V.binopImm(T->Bin, T->Ty, L, L, T->Kids[1]->Value);
    return L;
  }
  case Rule::EmitUnop: {
    Reg K = reduce(T->Kids[0]);
    V.unop(T->Un, T->Ty, K, K);
    return K;
  }
  case Rule::EmitCvt: {
    Reg K = reduce(T->Kids[0]);
    if (isFpType(T->Ty) != isFpType(T->FromTy)) {
      Reg R = V.getreg(T->Ty);
      if (!R.isValid())
        fatal("dcg: out of registers");
      V.cvt(T->FromTy, T->Ty, R, K);
      V.putreg(K);
      return R;
    }
    V.cvt(T->FromTy, T->Ty, K, K);
    return K;
  }
  case Rule::Unlabelled:
    break;
  }
  unreachable("reduce on unlabelled node");
}

Reg Dcg::genExpr(Node *T) {
  labelTree(T);
  return reduce(T);
}

void Dcg::stmtStore(Type Ty, Node *Addr, Node *Val) {
  labelTree(Addr);
  labelTree(Val);
  Reg Vr = reduce(Val);
  // Reuse the load folding rule for stores.
  if (Addr->SelectedRule == Rule::EmitLoadFold ||
      (Addr->Op == NodeOp::Binop && Addr->Bin == BinOp::Add &&
       Addr->Kids[1]->Op == NodeOp::Const && isInt<13>(Addr->Kids[1]->Value))) {
    Reg A = reduce(Addr->Kids[0]);
    V.storeImm(Ty, Vr, A, Addr->Kids[1]->Value);
    V.putreg(A);
  } else {
    Reg A = reduce(Addr);
    V.storeImm(Ty, Vr, A, 0);
    V.putreg(A);
  }
  V.putreg(Vr);
}

void Dcg::stmtRet(Type Ty, Node *T) {
  Reg R = genExpr(T);
  V.ret(Ty, R);
  V.putreg(R);
}

void Dcg::stmtBranch(Cond C, Type Ty, Node *A, Node *B, Label L) {
  labelTree(A);
  labelTree(B);
  Reg Ra = reduce(A);
  if (B->Op == NodeOp::Const && !isFpType(Ty)) {
    V.branchImm(C, Ty, Ra, B->Value, L);
    V.putreg(Ra);
    return;
  }
  Reg Rb = reduce(B);
  V.branch(C, Ty, Ra, Rb, L);
  V.putreg(Ra);
  V.putreg(Rb);
}

void Dcg::stmtJump(Label L) { V.jmp(L); }
