//===- dcg/Dcg.h - The DCG baseline code generator --------------*- C++ -*-===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reimplementation of the architecture of DCG (Engler & Proebsting,
/// "DCG: An efficient, retargetable dynamic code generation system",
/// ASPLOS 1994) — the baseline the paper's headline claim is measured
/// against: "VCODE is ... approximately 35 times faster [than DCG]. Both of
/// these benefits come from eschewing an intermediate representation during
/// code generation; in contrast, DCG builds and consumes IR-trees at
/// runtime."
///
/// The reproduction keeps DCG's defining costs:
///  1. clients build heap-allocated expression trees at runtime;
///  2. a labelling pass walks each tree bottom-up, pattern-matching nodes
///     against rules and computing costs (the lcc/BURS-style machinery DCG
///     inherited from Fraser's work);
///  3. a reduction pass walks the tree again, assigning registers
///     dynamically and emitting instructions.
///
/// Emission goes through the same Target backends as VCODE so the
/// comparison isolates exactly the intermediate-representation overhead.
///
//===----------------------------------------------------------------------===//

#ifndef VCODE_DCG_DCG_H
#define VCODE_DCG_DCG_H

#include "core/VCode.h"
#include <deque>

namespace vcode {
namespace dcg {

/// IR tree node opcodes.
enum class NodeOp : uint8_t {
  Const, ///< integer constant (Value)
  Reg,   ///< a value already in a physical register (R)
  Arg,   ///< incoming argument #Value
  Load,  ///< load of Ty at Kids[0]
  Binop, ///< Bin applied to Kids[0], Kids[1]
  Unop,  ///< Un applied to Kids[0]
  Cvt,   ///< conversion from Kids[0]'s type to Ty
};

/// Rules selected by the labelling pass.
enum class Rule : uint8_t {
  Unlabelled,
  EmitConst,    ///< materialize a constant
  ReuseReg,     ///< value already lives in a register
  EmitArg,      ///< argument register
  EmitLoad,     ///< load through a register address
  EmitLoadFold, ///< load with the address's constant offset folded in
  EmitBinop,    ///< register-register operation
  EmitBinopImm, ///< operation with the right kid folded as an immediate
  EmitUnop,
  EmitCvt,
};

/// A heap-allocated IR node (the data structure VCODE exists to avoid).
struct Node {
  NodeOp Op = NodeOp::Const;
  Type Ty = Type::I;
  BinOp Bin = BinOp::Add;
  UnOp Un = UnOp::Mov;
  Type FromTy = Type::I; // for Cvt
  int64_t Value = 0;
  Reg R;
  Node *Kids[2] = {nullptr, nullptr};

  // Labelling results.
  Rule SelectedRule = Rule::Unlabelled;
  uint16_t Cost = 0;
};

/// DCG code-generation context: tree construction plus the two-pass
/// generate step. One function at a time, like VCODE.
class Dcg {
public:
  explicit Dcg(Target &T) : V(T) {}

  /// Begins a function (same contract as VCode::lambda).
  void beginFunction(const char *ArgTypeStr, bool IsLeaf, CodeMem Mem);
  /// Finishes the function: resolves jumps, writes the prologue/epilogue.
  CodePtr endFunction();

  // --- Tree construction (heap-allocating; the cost VCODE eliminates) ---
  Node *cnst(Type Ty, int64_t V);
  /// A value already in a register (seeds statement-at-a-time trees).
  Node *regNode(Type Ty, Reg R);
  Node *arg(unsigned Index, Type Ty = Type::I);
  Node *load(Type Ty, Node *Addr);
  Node *binop(BinOp Op, Type Ty, Node *L, Node *R);
  Node *unop(UnOp Op, Type Ty, Node *K);
  Node *cvt(Type From, Type To, Node *K);

  // --- Statements: label + reduce + emit the tree, then discard it ------
  /// Evaluates \p T into a register and returns it (caller must release
  /// with releaseReg unless consumed by another statement).
  Reg genExpr(Node *T);
  void releaseReg(Reg R) { V.putreg(R); }
  void stmtStore(Type Ty, Node *Addr, Node *Val);
  void stmtRet(Type Ty, Node *T);
  void stmtBranch(Cond C, Type Ty, Node *A, Node *B, Label L);
  void stmtJump(Label L);
  Label genLabel() { return V.genLabel(); }
  void bindLabel(Label L) { V.label(L); }

  /// Underlying VCode stream (for tests and statistics).
  VCode &stream() { return V; }

  /// Number of IR nodes allocated for the current function — the
  /// O(instructions) cost VCODE exists to avoid.
  size_t irNodes() const { return Pool.size(); }

private:
  Node *newNode(NodeOp Op, Type Ty);
  void labelTree(Node *T);
  Reg reduce(Node *T);

  VCode V;
  std::deque<Node> Pool; ///< per-function node arena, consumed at emit time
  std::vector<Reg> ArgRegs;
};

} // namespace dcg
} // namespace vcode

#endif // VCODE_DCG_DCG_H
