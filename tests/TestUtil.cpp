//===- tests/TestUtil.cpp - Shared test fixtures and reference semantics --===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "mips/MipsTarget.h"
#include "sim/MipsSim.h"
#include "alpha/AlphaTarget.h"
#include "sim/AlphaSim.h"
#include "sim/SparcSim.h"
#include "sparc/SparcTarget.h"
#include "support/Error.h"
#include "support/Rng.h"
#include <cmath>
#include <cstring>

using namespace vcode;
using namespace vcode::test;

namespace {

/// Parses VCODE_TEST_SEED once. Returns whether it is set and its value.
bool readEnvSeed(uint64_t &Out) {
  const char *Env = std::getenv("VCODE_TEST_SEED");
  if (!Env || !*Env)
    return false;
  Out = std::strtoull(Env, nullptr, 0); // accepts decimal and 0x-hex
  return true;
}

uint64_t envSeedValue() {
  static uint64_t V = [] {
    uint64_t S = 0;
    readEnvSeed(S);
    return S;
  }();
  return V;
}

} // namespace

uint64_t vcode::test::testBaseSeed() {
  return testSeedOverridden() ? envSeedValue() : 0;
}

bool vcode::test::testSeedOverridden() {
  static bool Set = [] {
    uint64_t Ignored;
    return readEnvSeed(Ignored);
  }();
  return Set;
}

uint64_t vcode::test::testSeed(uint64_t Salt) {
  // SplitMix64 finalizer over base^salt: with the default base this is a
  // stable function of the salt; any env base re-keys every case.
  uint64_t Z = (testBaseSeed() + 0x9e3779b97f4a7c15ull) ^
               (Salt * 0xbf58476d1ce4e5b9ull);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

std::string vcode::test::seedInfo(uint64_t Seed) {
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf),
                "rng seed 0x%016llx (base %s; rerun with VCODE_TEST_SEED=%llu "
                "to hold the corpus fixed)",
                (unsigned long long)Seed,
                testSeedOverridden() ? "from VCODE_TEST_SEED" : "default",
                (unsigned long long)testBaseSeed());
  return Buf;
}

TargetBundle vcode::test::makeBundle(const std::string &Name) {
  TargetBundle B;
  B.Mem = std::make_unique<sim::Memory>();
  if (Name == "mips") {
    B.Tgt = std::make_unique<mips::MipsTarget>();
    B.Cpu = std::make_unique<sim::MipsSim>(*B.Mem);
    return B;
  }
  if (Name == "sparc") {
    B.Tgt = std::make_unique<sparc::SparcTarget>();
    B.Cpu = std::make_unique<sim::SparcSim>(*B.Mem);
    return B;
  }
  if (Name == "alpha") {
    auto Tgt = std::make_unique<alpha::AlphaTarget>();
    Tgt->installDivHelpers(B.Mem->allocCode(16384));
    B.Tgt = std::move(Tgt);
    B.Cpu = std::make_unique<sim::AlphaSim>(*B.Mem);
    return B;
  }
  fatal("unknown test target '%s'", Name.c_str());
}

std::vector<std::string> vcode::test::allTargetNames() {
  return {"mips", "sparc", "alpha"};
}

uint64_t vcode::test::canonicalize(Type Ty, uint64_t V, unsigned WordBytes) {
  if (isFpType(Ty))
    return Ty == Type::F ? (V & 0xffffffffu) : V;
  unsigned Bits = typeBits(Ty, WordBytes);
  if (Bits >= 64)
    return V;
  uint64_t Mask = (uint64_t(1) << Bits) - 1;
  V &= Mask;
  if (isSignedType(Ty) && (V >> (Bits - 1)))
    V |= ~Mask;
  return V;
}

namespace {

float asF(uint64_t V) {
  float F;
  uint32_t B = uint32_t(V);
  std::memcpy(&F, &B, 4);
  return F;
}
uint64_t fromF(float F) {
  uint32_t B;
  std::memcpy(&B, &F, 4);
  return B;
}
double asD(uint64_t V) {
  double D;
  std::memcpy(&D, &V, 8);
  return D;
}
uint64_t fromD(double D) {
  uint64_t B;
  std::memcpy(&B, &D, 8);
  return B;
}

} // namespace

uint64_t vcode::test::refBinop(BinOp Op, Type Ty, uint64_t A, uint64_t B,
                               unsigned WordBytes) {
  if (Ty == Type::F) {
    float X = asF(A), Y = asF(B);
    switch (Op) {
    case BinOp::Add:
      return fromF(X + Y);
    case BinOp::Sub:
      return fromF(X - Y);
    case BinOp::Mul:
      return fromF(X * Y);
    case BinOp::Div:
      return fromF(X / Y);
    default:
      unreachable("bad fp op");
    }
  }
  if (Ty == Type::D) {
    double X = asD(A), Y = asD(B);
    switch (Op) {
    case BinOp::Add:
      return fromD(X + Y);
    case BinOp::Sub:
      return fromD(X - Y);
    case BinOp::Mul:
      return fromD(X * Y);
    case BinOp::Div:
      return fromD(X / Y);
    default:
      unreachable("bad fp op");
    }
  }

  unsigned Bits = typeBits(Ty, WordBytes);
  uint64_t Mask = Bits >= 64 ? ~uint64_t(0) : ((uint64_t(1) << Bits) - 1);
  bool Signed = isSignedType(Ty);
  uint64_t UA = A & Mask, UB = B & Mask;
  int64_t SA = Bits >= 64 ? int64_t(A)
                          : (int64_t(UA << (64 - Bits)) >> (64 - Bits));
  int64_t SB = Bits >= 64 ? int64_t(B)
                          : (int64_t(UB << (64 - Bits)) >> (64 - Bits));

  uint64_t R = 0;
  switch (Op) {
  case BinOp::Add:
    R = UA + UB;
    break;
  case BinOp::Sub:
    R = UA - UB;
    break;
  case BinOp::Mul:
    R = UA * UB;
    break;
  case BinOp::Div:
    if (Signed)
      R = uint64_t(SA / SB);
    else
      R = UA / UB;
    break;
  case BinOp::Mod:
    if (Signed)
      R = uint64_t(SA % SB);
    else
      R = UA % UB;
    break;
  case BinOp::And:
    R = UA & UB;
    break;
  case BinOp::Or:
    R = UA | UB;
    break;
  case BinOp::Xor:
    R = UA ^ UB;
    break;
  case BinOp::Lsh:
    R = UA << (UB & (Bits - 1));
    break;
  case BinOp::Rsh:
    if (Signed)
      R = uint64_t(SA >> (UB & (Bits - 1)));
    else
      R = UA >> (UB & (Bits - 1));
    break;
  }
  return canonicalize(Ty, R, WordBytes);
}

uint64_t vcode::test::refUnop(UnOp Op, Type Ty, uint64_t A,
                              unsigned WordBytes) {
  if (Ty == Type::F) {
    switch (Op) {
    case UnOp::Mov:
      return A & 0xffffffffu;
    case UnOp::Neg:
      return fromF(-asF(A));
    default:
      unreachable("bad fp unop");
    }
  }
  if (Ty == Type::D) {
    switch (Op) {
    case UnOp::Mov:
      return A;
    case UnOp::Neg:
      return fromD(-asD(A));
    default:
      unreachable("bad fp unop");
    }
  }
  switch (Op) {
  case UnOp::Com:
    return canonicalize(Ty, ~A, WordBytes);
  case UnOp::Not:
    return canonicalize(Ty, canonicalize(Ty, A, WordBytes) == 0 ? 1 : 0,
                        WordBytes);
  case UnOp::Mov:
    return canonicalize(Ty, A, WordBytes);
  case UnOp::Neg:
    return canonicalize(Ty, uint64_t(0) - A, WordBytes);
  }
  unreachable("bad UnOp");
}

bool vcode::test::refCond(Cond C, Type Ty, uint64_t A, uint64_t B,
                          unsigned WordBytes) {
  if (Ty == Type::F || Ty == Type::D) {
    double X = Ty == Type::F ? double(asF(A)) : asD(A);
    double Y = Ty == Type::F ? double(asF(B)) : asD(B);
    switch (C) {
    case Cond::Lt:
      return X < Y;
    case Cond::Le:
      return X <= Y;
    case Cond::Gt:
      return X > Y;
    case Cond::Ge:
      return X >= Y;
    case Cond::Eq:
      return X == Y;
    case Cond::Ne:
      return X != Y;
    }
  }
  unsigned Bits = typeBits(Ty, WordBytes);
  uint64_t Mask = Bits >= 64 ? ~uint64_t(0) : ((uint64_t(1) << Bits) - 1);
  if (isSignedType(Ty)) {
    int64_t X = Bits >= 64 ? int64_t(A)
                           : (int64_t((A & Mask) << (64 - Bits)) >>
                              (64 - Bits));
    int64_t Y = Bits >= 64 ? int64_t(B)
                           : (int64_t((B & Mask) << (64 - Bits)) >>
                              (64 - Bits));
    switch (C) {
    case Cond::Lt:
      return X < Y;
    case Cond::Le:
      return X <= Y;
    case Cond::Gt:
      return X > Y;
    case Cond::Ge:
      return X >= Y;
    case Cond::Eq:
      return X == Y;
    case Cond::Ne:
      return X != Y;
    }
  }
  uint64_t X = A & Mask, Y = B & Mask;
  switch (C) {
  case Cond::Lt:
    return X < Y;
  case Cond::Le:
    return X <= Y;
  case Cond::Gt:
    return X > Y;
  case Cond::Ge:
    return X >= Y;
  case Cond::Eq:
    return X == Y;
  case Cond::Ne:
    return X != Y;
  }
  unreachable("bad Cond");
}

uint64_t vcode::test::refCvt(Type From, Type To, uint64_t A,
                             unsigned WordBytes) {
  // Source value as a double-wide intermediate.
  if (isFpType(From)) {
    double V = From == Type::F ? double(asF(A)) : asD(A);
    if (To == Type::F)
      return fromF(float(V));
    if (To == Type::D)
      return fromD(V);
    // FP -> integer truncates toward zero.
    return canonicalize(To, uint64_t(int64_t(V)), WordBytes);
  }
  uint64_t Canon = canonicalize(From, A, WordBytes);
  if (To == Type::F || To == Type::D) {
    double V;
    if (isSignedType(From))
      V = double(int64_t(Canon));
    else
      V = double(Canon);
    return To == Type::F ? fromF(float(V)) : fromD(V);
  }
  return canonicalize(To, Canon, WordBytes);
}

std::vector<uint64_t> vcode::test::operandValues(Type Ty, unsigned WordBytes,
                                                 unsigned Total,
                                                 uint64_t Seed) {
  std::vector<uint64_t> Out;
  Rng R(Seed);
  if (Ty == Type::F) {
    const float Boundary[] = {0.0f, 1.0f, -1.0f, 0.5f, -2.25f, 1e6f, -3.5e4f};
    for (float F : Boundary)
      Out.push_back(fromF(F));
    while (Out.size() < Total) {
      float F = float(int64_t(R.range(-1000000, 1000000))) / 64.0f;
      Out.push_back(fromF(F));
    }
    return Out;
  }
  if (Ty == Type::D) {
    const double Boundary[] = {0.0, 1.0, -1.0, 0.5, -2.25, 1e12, -3.5e8};
    for (double D : Boundary)
      Out.push_back(fromD(D));
    while (Out.size() < Total) {
      double D = double(int64_t(R.next() % (1ull << 40))) / 128.0 - 1e9;
      Out.push_back(fromD(D));
    }
    return Out;
  }
  unsigned Bits = typeBits(Ty, WordBytes);
  uint64_t Mask = Bits >= 64 ? ~uint64_t(0) : ((uint64_t(1) << Bits) - 1);
  const uint64_t Boundary[] = {0,
                               1,
                               2,
                               Mask,            // all ones / -1
                               Mask >> 1,       // max signed
                               (Mask >> 1) + 1, // min signed
                               0x7f,
                               0x80,
                               0xff,
                               0x8000,
                               0x12345678 & Mask};
  for (uint64_t V : Boundary)
    Out.push_back(canonicalize(Ty, V, WordBytes));
  while (Out.size() < Total)
    Out.push_back(canonicalize(Ty, R.next(), WordBytes));
  return Out;
}
