//===- tests/FeatureTest.cpp - VCODE mechanism tests -----------------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
// Target-parameterized tests for the mechanisms that distinguish VCODE from
// a plain assembler: dynamically constructed calls with runtime signatures
// (§2), calling conventions and stack arguments (§3.2), leaf/non-leaf
// framing and callee-save backpatching (§5.2), locals, register classes and
// priority orderings (§3.2/§5.3), labels/backward branches, and the
// floating-point constant pool.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include <gtest/gtest.h>

using namespace vcode;
using namespace vcode::test;
using sim::TypedValue;

namespace {

class FeatureTest : public ::testing::TestWithParam<std::string> {
protected:
  void SetUp() override {
    B = makeBundle(GetParam());
    WB = B.Tgt->info().WordBytes;
  }
  CodeMem code(size_t Bytes = 8192) { return B.Mem->allocCode(Bytes); }

  /// Builds `int add2(int a, int b) { return a + b; }`.
  CodePtr buildAdd2() {
    VCode V(*B.Tgt);
    Reg Arg[2];
    V.lambda("%i%i", Arg, LeafHint, code());
    Reg Rd = V.getreg(Type::I);
    V.addi(Rd, Arg[0], Arg[1]);
    V.reti(Rd);
    return V.end();
  }

  TargetBundle B;
  unsigned WB = 4;
};

// --- Dynamically constructed calls (paper §2: "clients can use VCODE to
// dynamically generate functions (and function calls) that take an
// arbitrary number and type of arguments") ---------------------------------

TEST_P(FeatureTest, GeneratedCodeCallsGeneratedCode) {
  CodePtr Callee = buildAdd2();

  // caller(x) = add2(x, 100) + 1  -- non-leaf: ra must survive the call.
  VCode V(*B.Tgt);
  Reg Arg[1];
  V.lambda("%i", Arg, NonLeafHint, code());
  Reg X = V.getreg(Type::I, RegClass::Var); // must survive the call
  ASSERT_TRUE(X.isValid());
  V.movi(X, Arg[0]);
  V.callBegin("%i%i");
  V.callArg(X);
  Reg Hundred = V.getreg(Type::I);
  V.seti(Hundred, 100);
  V.callArg(Hundred);
  V.callAddr(Callee.Entry);
  Reg Res = V.retvalReg(Type::I);
  Reg Out = V.getreg(Type::I);
  V.addii(Out, Res, 1);
  // X must still be live after the call (it is callee-saved).
  V.addi(Out, Out, X);
  V.reti(Out);
  CodePtr Caller = V.end();

  // caller(5) = add2(5,100) + 1 + 5 = 111
  EXPECT_EQ(B.Cpu->call(Caller.Entry, {TypedValue::fromInt(5)}).asInt32(),
            111);
}

TEST_P(FeatureTest, CallThroughRegister) {
  CodePtr Callee = buildAdd2();

  // caller(fnptr, a, b) = fnptr(a, b) * 2
  VCode V(*B.Tgt);
  Reg Arg[3];
  V.lambda("%p%i%i", Arg, NonLeafHint, code());
  Reg Fn = V.getreg(Type::P, RegClass::Var);
  Reg A = V.getreg(Type::I, RegClass::Var);
  Reg Bv = V.getreg(Type::I, RegClass::Var);
  V.movp(Fn, Arg[0]);
  V.movi(A, Arg[1]);
  V.movi(Bv, Arg[2]);
  V.callBegin("%i%i");
  V.callArg(A);
  V.callArg(Bv);
  V.callReg(Fn);
  Reg Out = V.getreg(Type::I);
  V.mulii(Out, V.retvalReg(Type::I), 2);
  V.reti(Out);
  CodePtr Caller = V.end();

  EXPECT_EQ(B.Cpu->call(Caller.Entry,
                        {TypedValue::fromPtr(Callee.Entry),
                         TypedValue::fromInt(20), TypedValue::fromInt(1)})
                .asInt32(),
            42);
}

TEST_P(FeatureTest, CallFromLeafIsAnError) {
  VCode V(*B.Tgt);
  V.lambda("%v", nullptr, LeafHint, code());
  EXPECT_DEATH(V.callBegin("%i"), "V_LEAF");
}

// --- Calling conventions: many arguments, including stack-passed ones -------

TEST_P(FeatureTest, ManyIntArguments) {
  // f(a0..a7) = sum of 8 ints; several land on the stack on every target.
  VCode V(*B.Tgt);
  Reg Arg[8];
  V.lambda("%i%i%i%i%i%i%i%i", Arg, LeafHint, code());
  Reg Sum = V.getreg(Type::I);
  ASSERT_TRUE(Sum.isValid());
  V.movi(Sum, Arg[0]);
  for (int I = 1; I < 8; ++I)
    V.addi(Sum, Sum, Arg[I]);
  V.reti(Sum);
  CodePtr Fn = V.end();

  std::vector<TypedValue> Args;
  int32_t Want = 0;
  for (int I = 0; I < 8; ++I) {
    Args.push_back(TypedValue::fromInt((I + 1) * (I + 1)));
    Want += (I + 1) * (I + 1);
  }
  EXPECT_EQ(B.Cpu->call(Fn.Entry, Args).asInt32(), Want);
}

TEST_P(FeatureTest, MixedIntAndFpArguments) {
  // f(i, d, i, d) = i1 + i2 + int(d1 * d2)
  VCode V(*B.Tgt);
  Reg Arg[4];
  V.lambda("%i%d%i%d", Arg, LeafHint, code());
  Reg Prod = V.getreg(Type::D);
  V.muld(Prod, Arg[1], Arg[3]);
  Reg PI = V.getreg(Type::I);
  V.cvd2i(PI, Prod);
  Reg Sum = V.getreg(Type::I);
  V.addi(Sum, Arg[0], Arg[2]);
  V.addi(Sum, Sum, PI);
  V.reti(Sum);
  CodePtr Fn = V.end();

  EXPECT_EQ(B.Cpu->call(Fn.Entry,
                        {TypedValue::fromInt(10), TypedValue::fromDouble(2.5),
                         TypedValue::fromInt(20), TypedValue::fromDouble(4.0)})
                .asInt32(),
            10 + 20 + 10);
}

TEST_P(FeatureTest, StackArgumentsRoundTrip) {
  // More FP args than FP arg registers: the tail arrives on the stack and
  // the prologue copies it up (paper §3.2 step 2).
  VCode V(*B.Tgt);
  Reg Arg[8];
  V.lambda("%d%d%d%d%d%d%d%d", Arg, LeafHint, code());
  Reg Sum = V.getreg(Type::D);
  ASSERT_TRUE(Sum.isValid());
  V.movd(Sum, Arg[0]);
  for (int I = 1; I < 8; ++I)
    V.addd(Sum, Sum, Arg[I]);
  V.retd(Sum);
  CodePtr Fn = V.end();

  std::vector<TypedValue> Args;
  double Want = 0;
  for (int I = 0; I < 8; ++I) {
    Args.push_back(TypedValue::fromDouble(I + 0.25));
    Want += I + 0.25;
  }
  EXPECT_EQ(B.Cpu->call(Fn.Entry, Args, Type::D).asDouble(), Want);
}

// --- Locals (paper v_local) ---------------------------------------------------

TEST_P(FeatureTest, LocalsSpillAndReload) {
  VCode V(*B.Tgt);
  Reg Arg[2];
  V.lambda("%i%i", Arg, LeafHint, code());
  Local LA = V.localVar(Type::I);
  Local LB = V.localVar(Type::D);
  Local LC = V.localVar(Type::I);
  V.storeLocal(Type::I, Arg[0], LA);
  V.storeLocal(Type::I, Arg[1], LC);
  Reg T = V.getreg(Type::I);
  Reg Dv = V.getreg(Type::D);
  V.setd(Dv, 3.0);
  V.storeLocal(Type::D, Dv, LB);
  V.loadLocal(Type::I, T, LA);
  Reg U = V.getreg(Type::I);
  V.loadLocal(Type::I, U, LC);
  V.addi(T, T, U);
  V.loadLocal(Type::D, Dv, LB);
  Reg DI = V.getreg(Type::I);
  V.cvd2i(DI, Dv);
  V.addi(T, T, DI);
  V.reti(T);
  CodePtr Fn = V.end();

  EXPECT_EQ(B.Cpu->call(Fn.Entry,
                        {TypedValue::fromInt(4), TypedValue::fromInt(8)})
                .asInt32(),
            15);
}

TEST_P(FeatureTest, LocalAddressEscapes) {
  // Store through the address of a local, then read the local back.
  VCode V(*B.Tgt);
  Reg Arg[1];
  V.lambda("%i", Arg, LeafHint, code());
  Local L = V.localVar(Type::I);
  Reg P = V.getreg(Type::P);
  V.localAddr(P, L);
  V.stii(Arg[0], P, 0);
  Reg T = V.getreg(Type::I);
  V.loadLocal(Type::I, T, L);
  V.addii(T, T, 5);
  V.reti(T);
  CodePtr Fn = V.end();

  EXPECT_EQ(B.Cpu->call(Fn.Entry, {TypedValue::fromInt(37)}).asInt32(), 42);
}

// --- Register machinery ---------------------------------------------------------

TEST_P(FeatureTest, RegisterExhaustionReturnsInvalid) {
  // "Once the machine's registers are exhausted, the register allocator
  // returns an error code" (paper §3.2).
  VCode V(*B.Tgt);
  V.lambda("%v", nullptr, LeafHint, code(1 << 16));
  unsigned Got = 0;
  for (;;) {
    Reg R = V.getreg(Type::I);
    if (!R.isValid())
      break;
    ++Got;
    ASSERT_LT(Got, 64u) << "allocator never exhausted";
  }
  EXPECT_GE(Got, 10u);
  V.retv();
  (void)V.end();
}

TEST_P(FeatureTest, PutregRecycles) {
  VCode V(*B.Tgt);
  V.lambda("%v", nullptr, LeafHint, code());
  Reg A = V.getreg(Type::I);
  V.putreg(A);
  Reg Bv = V.getreg(Type::I);
  EXPECT_EQ(A, Bv) << "priority ordering should hand back the same register";
  V.retv();
  (void)V.end();
}

TEST_P(FeatureTest, CalleeSavedRegistersSurviveCalls) {
  CodePtr Clobber = [&] {
    // A function that dirties every caller-saved register it can get.
    VCode V(*B.Tgt);
    V.lambda("%v", nullptr, LeafHint, code());
    for (;;) {
      Reg R = V.getreg(Type::I, RegClass::Temp);
      if (!R.isValid() ||
          V.regAlloc().usedCalleeSavedMask(Reg::Int)) // stop before spills
        break;
      V.seti(R, -1);
    }
    V.retv();
    return V.end();
  }();

  VCode V(*B.Tgt);
  Reg Arg[1];
  V.lambda("%i", Arg, NonLeafHint, code());
  Reg X = V.getreg(Type::I, RegClass::Var);
  ASSERT_TRUE(X.isValid());
  V.mulii(X, Arg[0], 3);
  V.callBegin("%v");
  V.callAddr(Clobber.Entry);
  V.reti(X);
  CodePtr Fn = V.end();

  EXPECT_EQ(B.Cpu->call(Fn.Entry, {TypedValue::fromInt(14)}).asInt32(), 42);
}

TEST_P(FeatureTest, HardCodedRegisterNames) {
  // Paper §5.3: "VCODE provides architecture-independent names for
  // temporary (T0, T1, ...) and callee-saved registers (S0, S1, ...)".
  VCode V(*B.Tgt);
  Reg Arg[1];
  V.lambda("%i", Arg, LeafHint, code());
  Reg T0 = V.tmp(0), T1 = V.tmp(1);
  V.movi(T0, Arg[0]);
  V.seti(T1, 2);
  V.muli(T0, T0, T1);
  V.reti(T0);
  CodePtr Fn = V.end();
  EXPECT_EQ(B.Cpu->call(Fn.Entry, {TypedValue::fromInt(21)}).asInt32(), 42);
}

TEST_P(FeatureTest, HardCodedSavedRegisterGetsSaved) {
  // sav() notes the callee-saved use; the caller's S0 value must survive.
  CodePtr Callee = [&] {
    VCode V(*B.Tgt);
    V.lambda("%v", nullptr, LeafHint, code());
    Reg S0 = V.sav(0);
    V.seti(S0, 12345); // would clobber the caller's S0 without a save
    V.retv();
    return V.end();
  }();

  VCode V(*B.Tgt);
  Reg Arg[1];
  V.lambda("%i", Arg, NonLeafHint, code());
  Reg X = V.sav(0);
  V.movi(X, Arg[0]);
  V.callBegin("%v");
  V.callAddr(Callee.Entry);
  V.reti(X);
  CodePtr Fn = V.end();

  EXPECT_EQ(B.Cpu->call(Fn.Entry, {TypedValue::fromInt(7)}).asInt32(), 7);
}

TEST_P(FeatureTest, RegisterAssertionFires) {
  VCode V(*B.Tgt);
  V.lambda("%v", nullptr, LeafHint, code());
  EXPECT_DEATH((void)V.tmp(200), "register assertion");
  V.retv();
  (void)V.end();
}

TEST_P(FeatureTest, PriorityOrderingIsRespected) {
  VCode V(*B.Tgt);
  V.lambda("%v", nullptr, LeafHint, code());
  // Declare a custom ordering: second default temp first.
  const TargetInfo &TI = B.Tgt->info();
  std::vector<Reg> Order = {TI.IntTemps[1], TI.IntTemps[0]};
  V.setRegPriority(Reg::Int, Order);
  EXPECT_EQ(V.getreg(Type::I), TI.IntTemps[1]);
  EXPECT_EQ(V.getreg(Type::I), TI.IntTemps[0]);
  EXPECT_FALSE(V.getreg(Type::I).isValid());
  V.retv();
  (void)V.end();
}

TEST_P(FeatureTest, UnavailableRegisterIsNeverAllocated) {
  VCode V(*B.Tgt);
  V.lambda("%v", nullptr, LeafHint, code());
  Reg First = B.Tgt->info().IntTemps[0];
  V.setRegKind(First, RegKind::Unavailable);
  for (int I = 0; I < 40; ++I) {
    Reg R = V.getreg(Type::I);
    if (!R.isValid())
      break;
    EXPECT_NE(R, First);
  }
  V.retv();
  (void)V.end();
}

TEST_P(FeatureTest, InterruptHandlerModeSavesEverything) {
  // Paper §5.3: "in an interrupt handler all registers are live.
  // Therefore, for correctness, VCODE must treat all registers as
  // callee-saved." The handler must preserve even scratch registers.
  CodePtr Handler = [&] {
    VCode V(*B.Tgt);
    V.lambda("%v", nullptr, LeafHint, code());
    V.allRegsCalleeSaved();
    for (int I = 0; I < 4; ++I) {
      Reg R = V.getreg(Type::I);
      EXPECT_TRUE(R.isValid());
      V.seti(R, -1);
    }
    V.retv();
    return V.end();
  }();
  if (::testing::Test::HasFatalFailure())
    return;

  // Caller keeps live values in hard-coded caller-saved temps across the
  // "interrupt" — only legal because of the handler's register mode.
  VCode V(*B.Tgt);
  Reg Arg[1];
  V.lambda("%i", Arg, NonLeafHint, code());
  Reg T0 = V.tmp(0), T1 = V.tmp(1), T2 = V.tmp(2), T3 = V.tmp(3);
  V.movi(T0, Arg[0]);
  V.addii(T1, Arg[0], 1);
  V.addii(T2, Arg[0], 2);
  V.addii(T3, Arg[0], 3);
  V.callBegin("%v");
  V.callAddr(Handler.Entry);
  V.addi(T0, T0, T1);
  V.addi(T0, T0, T2);
  V.addi(T0, T0, T3);
  V.reti(T0);
  CodePtr Fn = V.end();

  EXPECT_EQ(B.Cpu->call(Fn.Entry, {TypedValue::fromInt(10)}).asInt32(),
            10 + 11 + 12 + 13);
}

// --- Labels and control flow -----------------------------------------------------

TEST_P(FeatureTest, BackwardBranchLoop) {
  // Compute triangular numbers with a backward branch.
  VCode V(*B.Tgt);
  Reg Arg[1];
  V.lambda("%i", Arg, LeafHint, code());
  Reg Sum = V.getreg(Type::I), I = V.getreg(Type::I);
  V.seti(Sum, 0);
  V.seti(I, 0);
  Label Loop = V.genLabel();
  V.label(Loop);
  V.addii(I, I, 1);
  V.addi(Sum, Sum, I);
  V.blti(I, Arg[0], Loop);
  V.reti(Sum);
  CodePtr Fn = V.end();

  EXPECT_EQ(B.Cpu->call(Fn.Entry, {TypedValue::fromInt(10)}).asInt32(), 55);
  EXPECT_EQ(B.Cpu->call(Fn.Entry, {TypedValue::fromInt(100)}).asInt32(), 5050);
}

TEST_P(FeatureTest, UnboundLabelIsFatal) {
  VCode V(*B.Tgt);
  V.lambda("%v", nullptr, LeafHint, code());
  Label Never = V.genLabel();
  V.jmp(Never);
  V.retv();
  EXPECT_DEATH((void)V.end(), "never bound");
}

TEST_P(FeatureTest, JumpThroughRegister) {
  // Computed goto: jump to one of two labels through a register.
  VCode V(*B.Tgt);
  Reg Arg[1];
  V.lambda("%i", Arg, LeafHint, code());
  Reg T = V.getreg(Type::P);
  Reg Out = V.getreg(Type::I);
  Label LA = V.genLabel(), LB = V.genLabel(), Pick = V.genLabel();
  V.jmp(Pick);
  V.label(LA);
  V.seti(Out, 111);
  V.reti(Out);
  V.label(LB);
  V.seti(Out, 222);
  V.reti(Out);
  V.label(Pick);
  // Address of LA/LB is not known yet; jump via a compare instead, and use
  // jmpr for the second-level dispatch once bound... here we simply branch.
  V.bneii(Arg[0], 0, LB);
  V.jmp(LA);
  CodePtr Fn = V.end();
  (void)T;

  EXPECT_EQ(B.Cpu->call(Fn.Entry, {TypedValue::fromInt(0)}).asInt32(), 111);
  EXPECT_EQ(B.Cpu->call(Fn.Entry, {TypedValue::fromInt(9)}).asInt32(), 222);
}

// --- Constant pool ------------------------------------------------------------------

TEST_P(FeatureTest, ConstantPoolDeduplicates) {
  VCode V(*B.Tgt);
  V.lambda("%v", nullptr, LeafHint, code());
  Label L1 = V.constPoolLabel(0x1234567890abcdefull);
  Label L2 = V.constPoolLabel(0x1234567890abcdefull);
  Label L3 = V.constPoolLabel(0xfeedfacecafebeefull);
  EXPECT_EQ(L1.Id, L2.Id);
  EXPECT_NE(L1.Id, L3.Id);
  V.retv();
  (void)V.end();
}

TEST_P(FeatureTest, FpArithmeticWithPoolConstants) {
  // f(x) = x * pi + e  (both constants come from the pool on most targets)
  VCode V(*B.Tgt);
  Reg Arg[1];
  V.lambda("%d", Arg, LeafHint, code());
  Reg Pi = V.getreg(Type::D), E = V.getreg(Type::D);
  V.setd(Pi, 3.141592653589793);
  V.setd(E, 2.718281828459045);
  Reg T = V.getreg(Type::D);
  V.muld(T, Arg[0], Pi);
  V.addd(T, T, E);
  V.retd(T);
  CodePtr Fn = V.end();

  double Got =
      B.Cpu->call(Fn.Entry, {TypedValue::fromDouble(2.0)}, Type::D).asDouble();
  EXPECT_DOUBLE_EQ(Got, 2.0 * 3.141592653589793 + 2.718281828459045);
}

// --- Portable instruction scheduling (paper §5.3) -------------------------------

TEST_P(FeatureTest, ScheduleDelayKeepsSemantics) {
  // count-down loop with the decrement scheduled into the branch delay slot
  // (or placed before the branch on machines without one).
  VCode V(*B.Tgt);
  Reg Arg[1];
  V.lambda("%i", Arg, LeafHint, code());
  Reg N = V.getreg(Type::I), Sum = V.getreg(Type::I);
  Reg Cnt = V.getreg(Type::I);
  V.movi(N, Arg[0]);
  V.seti(Sum, 0);
  V.seti(Cnt, 0);
  Label Loop = V.genLabel();
  V.label(Loop);
  V.addi(Sum, Sum, N);
  V.subii(N, N, 1);
  // The slot instruction must not feed the branch condition; an iteration
  // counter is independent of N.
  V.scheduleDelay([&] { V.bgtii(N, 0, Loop); },
                  [&] { V.addii(Cnt, Cnt, 1); });
  V.addi(Sum, Sum, Cnt);
  V.reti(Sum);
  CodePtr Fn = V.end();

  // sum(10..1) + 10 iterations = 55 + 10.
  EXPECT_EQ(B.Cpu->call(Fn.Entry, {TypedValue::fromInt(10)}).asInt32(), 65);
}

TEST_P(FeatureTest, RawLoadPadsLoadDelay) {
  VCode V(*B.Tgt);
  Reg Arg[1];
  V.lambda("%p", Arg, LeafHint, code());
  Reg T = V.getreg(Type::I);
  uint32_t Before = V.buf().wordIndex();
  V.rawLoad([&] { V.ldii(T, Arg[0], 0); }, /*InstrsUntilUse=*/0);
  uint32_t Emitted = V.buf().wordIndex() - Before;
  V.addii(T, T, 1);
  V.reti(T);
  CodePtr Fn = V.end();

  // On MIPS (one load delay slot) a nop must separate load and use.
  EXPECT_EQ(Emitted, 1 + B.Tgt->info().LoadDelaySlots);
  SimAddr Buf = B.Mem->alloc(8);
  B.Mem->write<int32_t>(Buf, 41);
  EXPECT_EQ(B.Cpu->call(Fn.Entry, {TypedValue::fromPtr(Buf)}).asInt32(), 42);
}

TEST_P(FeatureTest, InterleavedFunctionGeneration) {
  // The paper generates "code one function at a time" and footnotes that
  // "in the future, this interface will be extended so that clients can
  // create several functions simultaneously". Because generation state
  // lives in the VCode object (not globals, as in the original C), two
  // generations can interleave freely here.
  VCode V1(*B.Tgt), V2(*B.Tgt);
  Reg A1[1], A2[1];
  V1.lambda("%i", A1, LeafHint, code());
  V2.lambda("%i", A2, LeafHint, code());
  V1.addii(A1[0], A1[0], 1);
  V2.mulii(A2[0], A2[0], 2);
  V2.reti(A2[0]);
  V1.reti(A1[0]);
  CodePtr F2 = V2.end();
  CodePtr F1 = V1.end();

  EXPECT_EQ(B.Cpu->call(F1.Entry, {TypedValue::fromInt(41)}).asInt32(), 42);
  EXPECT_EQ(B.Cpu->call(F2.Entry, {TypedValue::fromInt(21)}).asInt32(), 42);
}

TEST_P(FeatureTest, LocalSubroutineViaCallLabel) {
  // Paper Table 2's jal takes "immediate, register, or label": a local
  // subroutine called twice through the link register.
  VCode V(*B.Tgt);
  Reg Arg[1];
  V.lambda("%i", Arg, NonLeafHint, code());
  Reg Acc = V.getreg(Type::I, RegClass::Var);
  ASSERT_TRUE(Acc.isValid());
  Label Sub = V.genLabel();
  V.movi(Acc, Arg[0]);
  V.callLabel(Sub); // acc = acc * 2 + 1
  V.callLabel(Sub);
  V.reti(Acc);
  // The subroutine body (after the return path, like the paper's
  // per-function epilogue blocks).
  V.label(Sub);
  V.addi(Acc, Acc, Acc);
  V.addii(Acc, Acc, 1);
  V.retlink();
  CodePtr Fn = V.end();

  // f(x) = 2*(2x+1)+1 = 4x+3
  EXPECT_EQ(B.Cpu->call(Fn.Entry, {TypedValue::fromInt(5)}).asInt32(), 23);
  EXPECT_EQ(B.Cpu->call(Fn.Entry, {TypedValue::fromInt(0)}).asInt32(), 3);
}

TEST_P(FeatureTest, GeneratedFunctionsAreReentrant) {
  // f(n) = n <= 1 ? 1 : n + f(n - 1): self-recursive generated code,
  // address patched into the jal after v_end via a function-pointer cell.
  SimAddr Cell = B.Mem->alloc(8, 8);
  VCode V(*B.Tgt);
  Reg Arg[1];
  V.lambda("%i", Arg, NonLeafHint, code());
  Reg N = V.getreg(Type::I, RegClass::Var);
  V.movi(N, Arg[0]);
  Label Base = V.genLabel();
  V.bleii(N, 1, Base);
  V.callBegin("%i");
  Reg T = V.getreg(Type::I);
  V.subii(T, N, 1);
  V.callArg(T);
  V.putreg(T);
  Reg Fp = V.getreg(Type::P);
  V.setp(Fp, Cell);
  V.ldpi(Fp, Fp, 0);
  V.callReg(Fp);
  V.putreg(Fp);
  Reg Out = V.getreg(Type::I);
  V.addi(Out, N, V.retvalReg(Type::I));
  V.reti(Out);
  V.label(Base);
  Reg One = V.getreg(Type::I);
  V.seti(One, 1);
  V.reti(One);
  CodePtr Fn = V.end();
  if (B.Tgt->info().WordBytes == 8)
    B.Mem->write<uint64_t>(Cell, Fn.Entry);
  else
    B.Mem->write<uint32_t>(Cell, uint32_t(Fn.Entry));

  // f(10) = 10+9+...+2 + 1 = 55
  EXPECT_EQ(B.Cpu->call(Fn.Entry, {TypedValue::fromInt(10)}).asInt32(), 55);
  EXPECT_EQ(B.Cpu->call(Fn.Entry, {TypedValue::fromInt(100)}).asInt32(),
            5050);
}

INSTANTIATE_TEST_SUITE_P(AllTargets, FeatureTest,
                         ::testing::ValuesIn(allTargetNames()),
                         [](const auto &Info) { return Info.param; });

} // namespace
