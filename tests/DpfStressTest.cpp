//===- tests/DpfStressTest.cpp - DPF stress and fuzz tests ---------------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
// Beyond the Table 3 workload: filters that branch at several fields
// (multi-level dispatch in the compiled trie), masked fields, dynamic
// filter-set changes ("new protocols ... downloaded into the packet filter
// driver"), and randomized filter sets checked against a host reference.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "dpf/Engines.h"
#include "support/Rng.h"
#include <gtest/gtest.h>

using namespace vcode;
using namespace vcode::dpf;
using namespace vcode::test;

namespace {

class DpfStressTest : public ::testing::TestWithParam<std::string> {
protected:
  void SetUp() override { B = makeBundle(GetParam()); }
  TargetBundle B;
};

int refClassify(const std::vector<Filter> &Filters, const sim::Memory &M,
                SimAddr Msg) {
  for (const Filter &F : Filters) {
    bool Match = true;
    for (const Atom &A : F.Atoms) {
      uint32_t V = 0;
      for (unsigned I = 0; I < A.Size; ++I)
        V |= uint32_t(M.read<uint8_t>(Msg + A.Offset + I)) << (8 * I);
      if ((V & A.Mask) != A.Value) {
        Match = false;
        break;
      }
    }
    if (Match)
      return F.Id;
  }
  return -1;
}

TEST_P(DpfStressTest, TwoLevelDispatch) {
  // Filters diverge at BOTH the destination IP (3 subnets) and the port
  // (5 ports each): the compiled trie dispatches twice.
  std::vector<Filter> Filters;
  int Id = 0;
  for (uint32_t Net = 0; Net < 3; ++Net)
    for (uint32_t P = 0; P < 5; ++P) {
      Filter F;
      F.Id = Id++;
      F.Atoms.push_back(Atom{pkt::VersionOff, 1, 0xff, 0x45});
      F.Atoms.push_back(Atom{pkt::ProtoOff, 1, 0xff, 6});
      F.Atoms.push_back(Atom{pkt::DstIpOff, 4, 0xffffffff, 0x0a000001 + Net});
      F.Atoms.push_back(Atom{pkt::DstPortOff, 2, 0xffff, 5000 + P});
      Filters.push_back(std::move(F));
    }

  MpfEngine Mpf(*B.Tgt, *B.Mem);
  PathFinderEngine Pf(*B.Tgt, *B.Mem);
  DpfEngine Dpf(*B.Tgt, *B.Mem);
  Mpf.install(Filters);
  Pf.install(Filters);
  Dpf.install(Filters);

  SimAddr Msg = B.Mem->alloc(pkt::HeaderBytes, 8);
  for (uint32_t Net = 0; Net < 4; ++Net)
    for (uint32_t P = 0; P < 7; ++P) {
      writeTcpPacket(*B.Mem, Msg, uint16_t(5000 + P), 0x0a000001 + Net);
      int Want = refClassify(Filters, *B.Mem, Msg);
      EXPECT_EQ(Dpf.classify(*B.Cpu, Msg), Want) << Net << ":" << P;
      EXPECT_EQ(Pf.classify(*B.Cpu, Msg), Want) << Net << ":" << P;
      EXPECT_EQ(Mpf.classify(*B.Cpu, Msg), Want) << Net << ":" << P;
    }
}

TEST_P(DpfStressTest, MaskedFields) {
  // Classify on the top nibble of the first byte and the low 12 bits of
  // the port (mask-heavy filters).
  std::vector<Filter> Filters;
  for (int I = 0; I < 4; ++I) {
    Filter F;
    F.Id = I;
    F.Atoms.push_back(Atom{pkt::VersionOff, 1, 0xf0, 0x40});
    F.Atoms.push_back(Atom{pkt::DstPortOff, 2, 0x0fff, uint32_t(0x100 + I)});
    Filters.push_back(std::move(F));
  }
  DpfEngine Dpf(*B.Tgt, *B.Mem);
  MpfEngine Mpf(*B.Tgt, *B.Mem);
  Dpf.install(Filters);
  Mpf.install(Filters);

  SimAddr Msg = B.Mem->alloc(pkt::HeaderBytes, 8);
  for (uint32_t Port : {0x100u, 0x101u, 0x103u, 0x1103u, 0xf102u, 0x200u}) {
    writeTcpPacket(*B.Mem, Msg, uint16_t(Port));
    int Want = refClassify(Filters, *B.Mem, Msg);
    EXPECT_EQ(Dpf.classify(*B.Cpu, Msg), Want) << std::hex << Port;
    EXPECT_EQ(Mpf.classify(*B.Cpu, Msg), Want) << std::hex << Port;
  }
  // High-nibble mismatch (version 5) must reject.
  writeTcpPacket(*B.Mem, Msg, 0x100);
  B.Mem->write<uint8_t>(Msg + pkt::VersionOff, 0x55);
  EXPECT_EQ(Dpf.classify(*B.Cpu, Msg), -1);
  EXPECT_EQ(Mpf.classify(*B.Cpu, Msg), -1);
}

TEST_P(DpfStressTest, DynamicReinstall) {
  // Filters come and go at runtime; each install recompiles the
  // classifier (the whole point of *dynamic* packet filters).
  DpfEngine Dpf(*B.Tgt, *B.Mem);
  SimAddr Msg = B.Mem->alloc(pkt::HeaderBytes, 8);

  for (unsigned N : {1u, 3u, 7u, 2u, 12u}) {
    std::vector<Filter> Filters = makeTcpIpFilters(N, 7000);
    Dpf.install(Filters);
    writeTcpPacket(*B.Mem, Msg, uint16_t(7000 + N - 1));
    EXPECT_EQ(Dpf.classify(*B.Cpu, Msg), int(N - 1));
    writeTcpPacket(*B.Mem, Msg, uint16_t(7000 + N));
    EXPECT_EQ(Dpf.classify(*B.Cpu, Msg), -1)
        << "stale filter survived reinstall";
  }
}

TEST_P(DpfStressTest, RandomFilterSetsAgainstReference) {
  Rng R(2024);
  for (int Trial = 0; Trial < 12; ++Trial) {
    // Random filter sets over 3 fields with random fan-out.
    unsigned NumFilters = 1 + unsigned(R.below(12));
    std::vector<Filter> Filters;
    std::vector<uint16_t> Ports;
    for (unsigned I = 0; I < NumFilters; ++I) {
      Filter F;
      F.Id = int(I);
      F.Atoms.push_back(Atom{pkt::VersionOff, 1, 0xff, 0x45});
      F.Atoms.push_back(
          Atom{pkt::ProtoOff, 1, 0xff, uint32_t(R.chance(1, 2) ? 6 : 17)});
      uint16_t Port = uint16_t(1000 + R.below(40));
      F.Atoms.push_back(Atom{pkt::DstPortOff, 2, 0xffff, Port});
      Ports.push_back(Port);
      // Duplicate (proto, port) pairs would be duplicate filters; the
      // reference takes the first, the trie fatals. Skip duplicates.
      bool Dup = false;
      for (unsigned J = 0; J + 1 < Filters.size() + 1 && J < I; ++J)
        if (Filters[J].Atoms[1].Value == F.Atoms[1].Value &&
            Filters[J].Atoms[2].Value == F.Atoms[2].Value)
          Dup = true;
      if (!Dup)
        Filters.push_back(std::move(F));
    }
    for (size_t I = 0; I < Filters.size(); ++I)
      Filters[I].Id = int(I);

    MpfEngine Mpf(*B.Tgt, *B.Mem);
    PathFinderEngine Pf(*B.Tgt, *B.Mem);
    DpfEngine Dpf(*B.Tgt, *B.Mem);
    Mpf.install(Filters);
    Pf.install(Filters);
    Dpf.install(Filters);

    SimAddr Msg = B.Mem->alloc(pkt::HeaderBytes, 8);
    for (int Probe = 0; Probe < 25; ++Probe) {
      uint16_t Port = uint16_t(1000 + R.below(45));
      writeTcpPacket(*B.Mem, Msg, Port);
      if (R.chance(1, 3))
        B.Mem->write<uint8_t>(Msg + pkt::ProtoOff, 17);
      int Want = refClassify(Filters, *B.Mem, Msg);
      ASSERT_EQ(Mpf.classify(*B.Cpu, Msg), Want)
          << "mpf trial " << Trial << " probe " << Probe;
      ASSERT_EQ(Pf.classify(*B.Cpu, Msg), Want)
          << "pathfinder trial " << Trial << " probe " << Probe;
      ASSERT_EQ(Dpf.classify(*B.Cpu, Msg), Want)
          << "dpf trial " << Trial << " probe " << Probe;
    }
  }
}

TEST_P(DpfStressTest, EvictionPressurePinnedHandlesSurvive) {
  // A cache sized to a fraction of the live filter sets: 1 shard with 2
  // entries, 6 engines each pinning their own set. Installs are serial,
  // so the LRU accounting below is deterministic.
  CodeCache Cache(*B.Mem, CodeCache::Options(1, 2));
  const unsigned Sets = 6, PerSet = 4;
  std::vector<std::unique_ptr<DpfEngine>> Engines;
  std::vector<std::vector<Filter>> Sets_;
  for (unsigned S = 0; S < Sets; ++S) {
    Sets_.push_back(
        makeTcpIpFilters(PerSet, uint16_t(2000 + 100 * S), 0x0a000001 + S));
    Engines.push_back(std::make_unique<DpfEngine>(*B.Tgt, *B.Mem));
    Engines.back()->installShared(Cache, Sets_.back());
  }
  // Capacity 2: installs 3..6 each evicted one entry.
  CodeCache::Stats St = Cache.stats();
  EXPECT_EQ(St.Misses, uint64_t(Sets));
  EXPECT_EQ(St.Generations, uint64_t(Sets));
  EXPECT_EQ(St.Evictions, uint64_t(Sets - 2));
  EXPECT_EQ(Cache.size(), 2u);

  // Pinned handles survive eviction: every engine still classifies its
  // own (long-evicted) set correctly — the pin kept the code region from
  // being reclaimed into the pool.
  SimAddr Msg = B.Mem->alloc(pkt::HeaderBytes, 8);
  for (unsigned S = 0; S < Sets; ++S) {
    writeTcpPacket(*B.Mem, Msg, uint16_t(2000 + 100 * S + 1),
                   0x0a000001 + S);
    EXPECT_EQ(Engines[S]->classify(*B.Cpu, Msg), 1) << "set " << S;
    writeTcpPacket(*B.Mem, Msg, uint16_t(2000 + 100 * S + PerSet),
                   0x0a000001 + S);
    EXPECT_EQ(Engines[S]->classify(*B.Cpu, Msg), -1) << "set " << S;
  }

  // Reinstalling an evicted set is a miss that regenerates (and evicts
  // again); reinstalling a still-cached set is a hit. The counters must
  // reconcile exactly: every miss generated, every install hit or missed.
  DpfEngine Re0(*B.Tgt, *B.Mem);
  EXPECT_FALSE(Re0.installShared(Cache, Sets_[0])); // evicted -> regenerate
  DpfEngine Re5(*B.Tgt, *B.Mem);
  EXPECT_TRUE(Re5.installShared(Cache, Sets_[5])); // still cached -> hit
  St = Cache.stats();
  EXPECT_EQ(St.Hits, 1u);
  EXPECT_EQ(St.Misses, uint64_t(Sets) + 1);
  EXPECT_EQ(St.Generations, uint64_t(Sets) + 1);
  EXPECT_EQ(St.Failures, 0u);
  EXPECT_EQ(St.Hits + St.Misses, uint64_t(Sets) + 2); // one per install
  EXPECT_EQ(St.Evictions, uint64_t(Sets - 2) + 1);
  // Every evicted version is still pinned by its engine, so no region has
  // been reclaimed into the free pool yet — eviction defers to the pin.
  EXPECT_EQ(St.RegionsReused, 0u);

  writeTcpPacket(*B.Mem, Msg, 2001, 0x0a000001);
  EXPECT_EQ(Re0.classify(*B.Cpu, Msg), 1);

  // Dropping an engine releases the last pin on its evicted version; the
  // region returns to the pool and the next generation recycles it.
  Engines[1].reset();
  DpfEngine Fresh(*B.Tgt, *B.Mem);
  Fresh.installShared(Cache,
                      makeTcpIpFilters(PerSet, 9000, 0x0a0000f0));
  St = Cache.stats();
  EXPECT_GT(St.RegionsReused, 0u);
  writeTcpPacket(*B.Mem, Msg, 9002, 0x0a0000f0);
  EXPECT_EQ(Fresh.classify(*B.Cpu, Msg), 2);
}

INSTANTIATE_TEST_SUITE_P(AllTargets, DpfStressTest,
                         ::testing::ValuesIn(allTargetNames()),
                         [](const auto &Info) { return Info.param; });

} // namespace
