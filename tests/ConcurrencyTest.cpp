//===- tests/ConcurrencyTest.cpp - Concurrent code-generation tests --------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
// The concurrency contract (README "Threading model"): independent
// VCode/VCodeT instances may emit in parallel — from private arenas or
// carving regions out of one shared arena — a Target's extension registry
// may be extended and read from any thread, and the CodeCache turns
// install-time compilation into a shared service with exactly-once
// generation per key and refcount-safe reclamation. Everything here is
// also a ThreadSanitizer workload: CI runs the suite under -DVCODE_TSAN=ON
// (satellite d), so a data race in the emission core fails the build even
// when the interleavings happen to produce correct bytes.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "core/CodeCache.h"
#include "dpf/Engines.h"
#include "sim/AlphaSim.h"
#include "sim/MipsSim.h"
#include "sim/SparcSim.h"
#include <atomic>
#include <gtest/gtest.h>
#include <thread>

using namespace vcode;
using namespace vcode::test;
using sim::TypedValue;

namespace {

constexpr unsigned NumThreads = 8;

/// A simulator over \p Mem for target \p Name (the bundle helper always
/// pairs a Cpu with its own arena; concurrent tests need several Cpus on
/// one shared arena).
std::unique_ptr<sim::Cpu> makeCpu(const std::string &Name, sim::Memory &Mem) {
  if (Name == "mips")
    return std::make_unique<sim::MipsSim>(Mem);
  if (Name == "sparc")
    return std::make_unique<sim::SparcSim>(Mem);
  return std::make_unique<sim::AlphaSim>(Mem);
}

/// Emits one small function of shape `f(a) = |((K + a) ^ M)| * 3` where K
/// and M depend on \p Variant — enough to cover constants outside the
/// immediate range, a branch with a fixup, and the frame code.
CodePtr emitVariant(VCode &V, unsigned Variant, CodeMem CM) {
  Reg Arg[1];
  V.lambda("%i", Arg, LeafHint, CM);
  Reg A = Arg[0];
  Reg B = V.getreg(Type::I);
  V.setInt(Type::I, B, 0x1000 + Variant * 7);
  V.binop(BinOp::Add, Type::I, B, B, A);
  V.binopImm(BinOp::Xor, Type::I, B, B,
             int64_t(Variant) * 0x1111 + 0x71234); // exceeds simm13/lit8
  Label L = V.genLabel();
  V.branchImm(Cond::Ge, Type::I, B, 0, L);
  V.unop(UnOp::Neg, Type::I, B, B);
  V.label(L);
  V.binopImm(BinOp::Mul, Type::I, B, B, 3);
  V.ret(Type::I, B);
  return V.end();
}

/// Host-side mirror of emitVariant's function.
int32_t expectVariant(unsigned Variant, int32_t A) {
  uint32_t B = uint32_t(0x1000 + Variant * 7);
  B += uint32_t(A);
  B ^= uint32_t(Variant) * 0x1111u + 0x71234u;
  if (int32_t(B) < 0)
    B = uint32_t(-int32_t(B));
  B *= 3u;
  return int32_t(B);
}

class ConcurrencyTest : public ::testing::TestWithParam<std::string> {};

// N threads, each with a fully independent VCode/Target/arena, generating
// the same function sequence must produce code byte-identical to a serial
// run: re-entrancy means no emission state leaks across instances, and
// no hidden global makes output depend on scheduling.
TEST_P(ConcurrencyTest, ParallelEmissionMatchesSerialByteForByte) {
  constexpr unsigned Variants = 12;

  // Serial reference: one bundle, all variants in order. Every bundle's
  // arena replays the same allocation sequence, so guest addresses (and
  // absolute fixups) match by construction.
  std::vector<std::vector<uint8_t>> Want(Variants);
  {
    TargetBundle B = makeBundle(GetParam());
    for (unsigned Vn = 0; Vn < Variants; ++Vn) {
      CodeMem CM = B.Mem->allocCode(4096);
      VCode V(*B.Tgt);
      CodePtr P = emitVariant(V, Vn, CM);
      ASSERT_TRUE(P.isValid());
      const uint8_t *Bytes = B.Mem->hostPtr(CM.Guest, P.SizeBytes);
      Want[Vn].assign(Bytes, Bytes + P.SizeBytes);
    }
  }

  std::atomic<unsigned> Mismatches{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&] {
      TargetBundle B = makeBundle(GetParam());
      for (unsigned Vn = 0; Vn < Variants; ++Vn) {
        CodeMem CM = B.Mem->allocCode(4096);
        VCode V(*B.Tgt);
        CodePtr P = emitVariant(V, Vn, CM);
        if (!P.isValid() || P.SizeBytes != Want[Vn].size()) {
          Mismatches.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const uint8_t *Bytes = B.Mem->hostPtr(CM.Guest, P.SizeBytes);
        if (!std::equal(Want[Vn].begin(), Want[Vn].end(), Bytes))
          Mismatches.fetch_add(1, std::memory_order_relaxed);
        // And the code must actually run: generation is not just byte
        // production, the entry/frame metadata must be coherent too.
        int32_t Got =
            B.Cpu->call(P.Entry, {TypedValue::fromInt(int32_t(Vn) * 37 - 5)},
                        Type::I)
                .asInt32();
        if (Got != expectVariant(Vn, int32_t(Vn) * 37 - 5))
          Mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread &Th : Threads)
    Th.join();
  EXPECT_EQ(Mismatches.load(), 0u);
}

// N threads sharing one Target and one arena: each thread carves code
// regions out of the shared bump allocator, emits through its own VCode,
// and executes on its own Cpu with a private stack. This is the intended
// concurrent deployment shape (one backend, one code arena, many
// generator threads).
TEST_P(ConcurrencyTest, SharedTargetSharedArenaGenerateAndRun) {
  TargetBundle B = makeBundle(GetParam()); // Tgt + Mem shared; B.Cpu unused
  sim::Memory &Mem = *B.Mem;
  Target &Tgt = *B.Tgt;

  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      std::unique_ptr<sim::Cpu> Cpu = makeCpu(GetParam(), Mem);
      Cpu->setStackTop(Mem.allocStack());
      for (unsigned Round = 0; Round < 6; ++Round) {
        unsigned Vn = T * 16 + Round;
        CodeMem CM = Mem.allocCode(4096);
        VCode V(Tgt);
        CodePtr P = emitVariant(V, Vn, CM);
        if (!P.isValid()) {
          Failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        for (int32_t A : {0, 1, -77, 0x40000000}) {
          int32_t Got =
              Cpu->call(P.Entry, {TypedValue::fromInt(A)}, Type::I).asInt32();
          if (Got != expectVariant(Vn, A))
            Failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread &Th : Threads)
    Th.join();
  EXPECT_EQ(Failures.load(), 0u);
}

// Concurrent registration, lookup, and emission on one Target's extension
// registry (satellite a): every thread defines its own instructions while
// emitting through freshly interned ids and probing names other threads
// are racing to define. An ExtId returned by defineInstruction must be
// usable immediately on the defining thread with no extra ordering.
TEST_P(ConcurrencyTest, ExtensionRegistryConcurrentDefineFindEmit) {
  TargetBundle B = makeBundle(GetParam());
  Target &Tgt = *B.Tgt;
  constexpr unsigned PerThread = 32;

  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      sim::Memory Mem; // private arena: only the registry is shared
      std::unique_ptr<sim::Cpu> Cpu = makeCpu(GetParam(), Mem);
      for (unsigned I = 0; I < PerThread; ++I) {
        int32_t K = int32_t(T * 1000 + I);
        std::string Name =
            "cc_ext_t" + std::to_string(T) + "_" + std::to_string(I);
        ExtId Id = Tgt.defineInstruction(
            Name, [K](VCode &V, const Operand *Ops, unsigned NumOps) {
              if (NumOps == 1 && Ops[0].Kind == Operand::RegOp)
                V.setInt(Type::I, Ops[0].R, uint64_t(uint32_t(K)));
            });
        if (!Id.isValid()) {
          Failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        // Probe names a sibling thread may be defining right now: an
        // id, once visible, must resolve to a stable pinned name.
        std::string Other = "cc_ext_t" + std::to_string((T + 1) % NumThreads) +
                            "_" + std::to_string(I);
        ExtId OtherId = Tgt.findInstruction(Other);
        if (OtherId.isValid() && Other != Tgt.instructionName(OtherId))
          Failures.fetch_add(1, std::memory_order_relaxed);

        // Emit through the fresh id and execute.
        CodeMem CM = Mem.allocCode(2048);
        VCode V(Tgt);
        Reg Arg[1];
        V.lambda("%i", Arg, LeafHint, CM);
        Reg R = V.getreg(Type::I);
        V.ext(Id, {opReg(R)});
        V.ret(Type::I, R);
        CodePtr P = V.end();
        if (!P.isValid() ||
            Cpu->call(P.Entry, {TypedValue::fromInt(0)}, Type::I).asInt32() !=
                K)
          Failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread &Th : Threads)
    Th.join();
  EXPECT_EQ(Failures.load(), 0u);
  // Everything every thread defined is now visible everywhere.
  for (unsigned T = 0; T < NumThreads; ++T)
    for (unsigned I = 0; I < PerThread; ++I)
      EXPECT_TRUE(Tgt.hasInstruction("cc_ext_t" + std::to_string(T) + "_" +
                                     std::to_string(I)));
}

INSTANTIATE_TEST_SUITE_P(AllTargets, ConcurrencyTest,
                         ::testing::ValuesIn(allTargetNames()),
                         [](const auto &Info) { return Info.param; });

// --- CodeCache ---------------------------------------------------------------

/// Distinct filter sets (distinct canonical keys): set s holds 2+s TCP/IP
/// port filters, so every set accepts dst port 1025 as filter id 1.
std::vector<std::vector<dpf::Filter>> makeFilterSets(unsigned Sets) {
  std::vector<std::vector<dpf::Filter>> FS;
  for (unsigned S = 0; S < Sets; ++S)
    FS.push_back(dpf::makeTcpIpFilters(2 + S));
  return FS;
}

// The tentpole's exactly-once guarantee, counter-verified: N threads
// hammering installShared over 8 distinct filter sets must trigger exactly
// one generation per distinct key — every other install is a hit (served
// from the cache or block-and-reuse behind the generating thread) — and
// every install, hit or miss, yields a classifier that classifies
// correctly.
TEST(ConcurrencyCacheTest, ExactlyOnceGenerationPerKey) {
  TargetBundle B = makeBundle("mips");
  sim::Memory &Mem = *B.Mem;
  CodeCache Cache(Mem);

  constexpr unsigned Sets = 8, Iters = 24;
  auto FilterSets = makeFilterSets(Sets);
  SimAddr Pkt = Mem.alloc(dpf::pkt::HeaderBytes, 8);
  dpf::writeTcpPacket(Mem, Pkt, 1025);

  std::atomic<unsigned> Generated{0}, Failures{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      dpf::DpfEngine Engine(*B.Tgt, Mem);
      std::unique_ptr<sim::Cpu> Cpu = makeCpu("mips", Mem);
      Cpu->setStackTop(Mem.allocStack());
      for (unsigned It = 0; It < Iters; ++It) {
        bool Served =
            Engine.installShared(Cache, FilterSets[(T + It) % Sets]);
        if (!Served)
          Generated.fetch_add(1, std::memory_order_relaxed);
        if (Engine.entry() == 0 ||
            Engine.classify(*Cpu, Pkt) != 1)
          Failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread &Th : Threads)
    Th.join();

  EXPECT_EQ(Failures.load(), 0u);
  EXPECT_EQ(Generated.load(), Sets);
  CodeCache::Stats S = Cache.stats();
  EXPECT_EQ(S.Generations, Sets);
  EXPECT_EQ(S.Misses, Sets);
  EXPECT_EQ(S.Failures, 0u);
  EXPECT_EQ(S.Hits + S.Misses, uint64_t(NumThreads) * Iters);
  EXPECT_EQ(Cache.size(), Sets);
}

// Eviction versus refcounts: with a deliberately tiny cache, installing
// more sets than fit evicts the oldest entries — but an engine pinning an
// evicted classifier through its Handle keeps executing valid code, and
// the region only returns to the free pool (RegionsReused) once the last
// pin drops.
TEST(ConcurrencyCacheTest, EvictionKeepsPinnedCodeAliveThenRecyclesRegion) {
  TargetBundle B = makeBundle("mips");
  sim::Memory &Mem = *B.Mem;
  CodeCache Cache(Mem, CodeCache::Options(/*Shards=*/1,
                                          /*MaxEntriesPerShard=*/2));

  auto FilterSets = makeFilterSets(6);
  SimAddr Pkt = Mem.alloc(dpf::pkt::HeaderBytes, 8);
  dpf::writeTcpPacket(Mem, Pkt, 1025);

  dpf::DpfEngine Pinned(*B.Tgt, Mem);
  ASSERT_FALSE(Pinned.installShared(Cache, FilterSets[0])); // generates
  ASSERT_EQ(Pinned.classify(*B.Cpu, Pkt), 1);

  // Blow the pinned entry out of the table.
  dpf::DpfEngine Other(*B.Tgt, Mem);
  for (unsigned S = 1; S < 5; ++S)
    Other.installShared(Cache, FilterSets[S]);
  CodeCache::Stats S1 = Cache.stats();
  EXPECT_GT(S1.Evictions, 0u);
  EXPECT_LE(Cache.size(), 2u);

  // The evicted classifier is gone from the table (a fresh install of
  // set 0 would regenerate) but Pinned's handle keeps it executable.
  EXPECT_EQ(Pinned.classify(*B.Cpu, Pkt), 1);

  // Dropping the pin (by reinstalling a different set) releases the
  // region into the pool; the next generation recycles it instead of
  // growing the arena.
  Pinned.installShared(Cache, FilterSets[1]);
  uint64_t GensBefore = Cache.stats().Generations;
  Other.installShared(Cache, FilterSets[5]); // distinct: must generate
  CodeCache::Stats S2 = Cache.stats();
  EXPECT_EQ(S2.Generations, GensBefore + 1);
  EXPECT_GT(S2.RegionsReused, S1.RegionsReused);
  EXPECT_EQ(Other.classify(*B.Cpu, Pkt), 1);
}

// A failing generator must not poison the key: the error is reported to
// the failing caller, the key is erased, and a later install succeeds.
TEST(ConcurrencyCacheTest, FailedGenerationIsRetryable) {
  TargetBundle B = makeBundle("mips");
  CodeCache Cache(*B.Mem);

  CodeCache::Handle H =
      Cache.lookupOrGenerate("k", [&](CodeCache::RegionAlloc &) {
        GenerateResult R;
        R.Err.Kind = CgErrKind::BufferOverflow;
        return R;
      });
  EXPECT_FALSE(H.valid());
  EXPECT_EQ(H.error().Kind, CgErrKind::BufferOverflow);
  EXPECT_EQ(Cache.stats().Failures, 1u);
  EXPECT_EQ(Cache.size(), 0u);

  // Retry generates for real this time.
  bool Ran = false;
  CodeCache::Handle H2 =
      Cache.lookupOrGenerate("k", [&](CodeCache::RegionAlloc &Alloc) {
        Ran = true;
        CodeMem CM = Alloc(64);
        GenerateResult R;
        R.Code = CodePtr{CM.Guest, 64};
        R.RegionBytes = CM.Size;
        return R;
      });
  EXPECT_TRUE(Ran);
  EXPECT_TRUE(H2.valid());
}

} // namespace
