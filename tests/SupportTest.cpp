//===- tests/SupportTest.cpp - Support library unit tests ----------------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
//===----------------------------------------------------------------------===//

#include "support/BitUtils.h"
#include "support/Rng.h"
#include "support/TablePrinter.h"
#include "support/ToolFlags.h"
#include "core/Types.h"
#include "core/Ops.h"
#include "core/CallConv.h"
#include <gtest/gtest.h>
#include <initializer_list>
#include <set>
#include <string>
#include <vector>

using namespace vcode;

namespace {

TEST(BitUtils, SignedImmediateRanges) {
  EXPECT_TRUE(isInt<16>(32767));
  EXPECT_FALSE(isInt<16>(32768));
  EXPECT_TRUE(isInt<16>(-32768));
  EXPECT_FALSE(isInt<16>(-32769));
  EXPECT_TRUE(isInt<13>(4095));
  EXPECT_FALSE(isInt<13>(4096));
  EXPECT_TRUE(isInt<21>(-(1 << 20)));
  EXPECT_FALSE(isInt<21>(1 << 20));
}

TEST(BitUtils, UnsignedImmediateRanges) {
  EXPECT_TRUE(isUInt<16>(65535));
  EXPECT_FALSE(isUInt<16>(65536));
  EXPECT_TRUE(isUInt<8>(255));
  EXPECT_FALSE(isUInt<8>(256));
}

TEST(BitUtils, SignExtension) {
  EXPECT_EQ(signExtend32<16>(0x8000), -32768);
  EXPECT_EQ(signExtend32<16>(0x7fff), 32767);
  EXPECT_EQ(signExtend32<21>(0x1fffff), -1);
  EXPECT_EQ((signExtend<8>(0xff)), -1);
  EXPECT_EQ((signExtend<8>(0x7f)), 127);
}

TEST(BitUtils, ByteSwaps) {
  EXPECT_EQ(byteSwap16(0x1234), 0x3412);
  EXPECT_EQ(byteSwap32(0x12345678u), 0x78563412u);
  EXPECT_EQ(byteSwap32(byteSwap32(0xdeadbeefu)), 0xdeadbeefu);
}

TEST(BitUtils, AlignAndLog) {
  EXPECT_EQ(alignTo(0, 8), 0u);
  EXPECT_EQ(alignTo(1, 8), 8u);
  EXPECT_EQ(alignTo(8, 8), 8u);
  EXPECT_EQ(alignTo(9, 16), 16u);
  EXPECT_TRUE(isPowerOf2(64));
  EXPECT_FALSE(isPowerOf2(0));
  EXPECT_FALSE(isPowerOf2(48));
  EXPECT_EQ(log2Floor(1), 0u);
  EXPECT_EQ(log2Floor(64), 6u);
  EXPECT_EQ(log2Floor(100), 6u);
}

TEST(Rng, DeterministicAndSpread) {
  Rng A(7), B(7), C(8);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
  bool Different = false;
  Rng A2(7);
  for (int I = 0; I < 10; ++I)
    Different |= A2.next() != C.next();
  EXPECT_TRUE(Different);

  // below() respects bounds; range() is inclusive.
  Rng R(1);
  std::set<int64_t> Seen;
  for (int I = 0; I < 1000; ++I) {
    uint64_t V = R.below(10);
    EXPECT_LT(V, 10u);
    Seen.insert(R.range(-3, 3));
  }
  EXPECT_EQ(Seen.size(), 7u);
  for (int64_t V : Seen) {
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
  }
}

TEST(Types, SizesAndTraits) {
  EXPECT_EQ(typeSize(Type::C, 4), 1u);
  EXPECT_EQ(typeSize(Type::S, 4), 2u);
  EXPECT_EQ(typeSize(Type::I, 8), 4u);
  EXPECT_EQ(typeSize(Type::L, 4), 4u);
  EXPECT_EQ(typeSize(Type::L, 8), 8u);
  EXPECT_EQ(typeSize(Type::P, 8), 8u);
  EXPECT_EQ(typeSize(Type::D, 4), 8u);
  EXPECT_TRUE(isSignedType(Type::C));
  EXPECT_FALSE(isSignedType(Type::UC));
  EXPECT_TRUE(isFpType(Type::F));
  EXPECT_FALSE(isRegType(Type::S));
  EXPECT_TRUE(isIntRegType(Type::P));
  EXPECT_STREQ(typeName(Type::UL), "ul");
}

TEST(Conds, SwapAndNegate) {
  EXPECT_EQ(swapCond(Cond::Lt), Cond::Gt);
  EXPECT_EQ(swapCond(Cond::Le), Cond::Ge);
  EXPECT_EQ(swapCond(Cond::Eq), Cond::Eq);
  EXPECT_EQ(negateCond(Cond::Lt), Cond::Ge);
  EXPECT_EQ(negateCond(Cond::Eq), Cond::Ne);
  EXPECT_EQ(negateCond(negateCond(Cond::Gt)), Cond::Gt);
}

TEST(CallConvPlacement, RegistersThenStack) {
  CallConv CC;
  CC.IntArgRegs = {intReg(4), intReg(5)};
  CC.FpArgRegs = {fpReg(12)};
  std::vector<Type> Args = {Type::I, Type::D, Type::I, Type::I, Type::D};
  auto Locs = computeArgLocs(CC, Args, 4);
  ASSERT_EQ(Locs.size(), 5u);
  EXPECT_FALSE(Locs[0].OnStack);
  EXPECT_EQ(Locs[0].R, intReg(4));
  EXPECT_FALSE(Locs[1].OnStack);
  EXPECT_EQ(Locs[1].R, fpReg(12));
  EXPECT_FALSE(Locs[2].OnStack);
  EXPECT_EQ(Locs[2].R, intReg(5));
  EXPECT_TRUE(Locs[3].OnStack);
  EXPECT_EQ(Locs[3].StackOff, 0);
  EXPECT_TRUE(Locs[4].OnStack);
  EXPECT_EQ(Locs[4].StackOff, 8) << "doubles align to 8 on the stack";
  EXPECT_EQ(outArgBytes(CC, Locs, 4), 16u);
}

TEST(CallConvPlacement, MinOutArgBytesFloors) {
  CallConv CC;
  CC.IntArgRegs = {intReg(4)};
  CC.MinOutArgBytes = 16;
  std::vector<Type> Args = {Type::I};
  auto Locs = computeArgLocs(CC, Args, 4);
  EXPECT_EQ(outArgBytes(CC, Locs, 4), 16u);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter T({"a", "long-header", "c"});
  T.addRow({"xxxx", "1", "2"});
  T.addRow({"y", "22"});
  // Render to a memory stream.
  char Buf[512] = {};
  FILE *F = fmemopen(Buf, sizeof(Buf), "w");
  ASSERT_NE(F, nullptr);
  T.print(F);
  std::fclose(F);
  std::string S(Buf);
  EXPECT_NE(S.find("long-header"), std::string::npos);
  EXPECT_NE(S.find("xxxx"), std::string::npos);
  // All three lines of rows + header + rule.
  EXPECT_EQ(std::count(S.begin(), S.end(), '\n'), 4);
}

// --- tool::handleArgs strict parsing ----------------------------------------

/// Mutable argv for handleArgs, which compacts it in place.
struct ArgvBuilder {
  std::vector<std::string> Store;
  std::vector<char *> Ptrs;
  ArgvBuilder(std::initializer_list<const char *> Args) {
    Store.emplace_back("tool");
    for (const char *A : Args)
      Store.emplace_back(A);
    for (std::string &S : Store)
      Ptrs.push_back(S.data());
    Ptrs.push_back(nullptr);
  }
  int argc() const { return int(Store.size()); }
  char **argv() { return Ptrs.data(); }
};

TEST(ToolFlagsTest, ParsesSharedFlagsAndCompactsArgv) {
  ArgvBuilder A({"--tier=1", "keep-me", "--hot-threshold=64",
                 "--target=host", "also-keep"});
  tool::ToolOptions Opts;
  int Argc = tool::handleArgs(A.argc(), A.argv(), Opts);
  EXPECT_EQ(Opts.GenTier, Tier::Tier1);
  EXPECT_TRUE(Opts.TierGiven);
  EXPECT_EQ(Opts.HotThreshold, 64u);
  EXPECT_TRUE(Opts.HotGiven);
  ASSERT_TRUE(Opts.TargetGiven);
  EXPECT_STREQ(Opts.TargetName, "host");
  // Only the tool's own arguments survive, in order, null-terminated.
  ASSERT_EQ(Argc, 3);
  EXPECT_STREQ(A.argv()[1], "keep-me");
  EXPECT_STREQ(A.argv()[2], "also-keep");
  EXPECT_EQ(A.argv()[3], nullptr);
}

TEST(ToolFlagsTest, AcceptsFullUint64Range) {
  ArgvBuilder A({"--hot-threshold=18446744073709551615"});
  tool::ToolOptions Opts;
  tool::handleArgs(A.argc(), A.argv(), Opts);
  EXPECT_EQ(Opts.HotThreshold, ~uint64_t(0));
}

TEST(ToolFlagsTest, RejectsMalformedHotThreshold) {
  // Each of these used to slip through strtoull: a negative count wraps, an
  // overflow saturates, trailing garbage is ignored. All must be fatal.
  for (const char *Bad : {"-5", "+5", "abc", "", "12x", "0x10",
                          "18446744073709551616", " 7"}) {
    ArgvBuilder A({(std::string("--hot-threshold=") + Bad).c_str()});
    tool::ToolOptions Opts;
    EXPECT_DEATH(tool::handleArgs(A.argc(), A.argv(), Opts),
                 "bad --hot-threshold value")
        << "value '" << Bad << "'";
  }
}

TEST(ToolFlagsTest, RejectsBadTier) {
  for (const char *Bad : {"2", "teir1", "", "01"}) {
    ArgvBuilder A({(std::string("--tier=") + Bad).c_str()});
    tool::ToolOptions Opts;
    EXPECT_DEATH(tool::handleArgs(A.argc(), A.argv(), Opts),
                 "bad --tier value")
        << "value '" << Bad << "'";
  }
}

TEST(ToolFlagsTest, RejectsUnknownTarget) {
  for (const char *Bad : {"x86", "HOST", ""}) {
    ArgvBuilder A({(std::string("--target=") + Bad).c_str()});
    tool::ToolOptions Opts;
    EXPECT_DEATH(tool::handleArgs(A.argc(), A.argv(), Opts),
                 "bad --target value")
        << "value '" << Bad << "'";
  }
}

} // namespace
