//===- tests/ProfileTest.cpp - CodeMap / sampler / export tests -----------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
// The introspection subsystem (src/profile/): CodeMap lifecycle and
// boundary lookups, snapshot consistency under 8-thread churn (the TSan
// target), v_end integration, virtual-PC sampler attribution on a
// known-hot loop, structural validation of the perf-map and jitdump
// exports by test-side readers, and disassembler round-trips. Every test
// skips cleanly under -DVCODE_TELEMETRY=OFF, where the whole subsystem
// compiles out.
//
//===----------------------------------------------------------------------===//

#include "core/VCode.h"
#include "mips/MipsTarget.h"
#include "profile/CodeMap.h"
#include "profile/Disasm.h"
#include "profile/JitDump.h"
#include "profile/Profiler.h"
#include "sim/Memory.h"
#include "sim/MipsSim.h"
#include "support/Telemetry.h"
#include "x64/X64Disasm.h"
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>
#include <gtest/gtest.h>

using namespace vcode;
using sim::TypedValue;

namespace {

/// Every test runs against a clean process-global map and sampler; the
/// whole suite skips when the subsystem is compiled out.
class ProfileTest : public ::testing::Test {
protected:
  void SetUp() override {
    if (!telemetry::compiledIn())
      GTEST_SKIP() << "built with -DVCODE_TELEMETRY=OFF";
    profile::CodeMap::instance().resetForTest();
    profile::resetSamplerForTest();
    profile::CodeMap::instance().setCaptureBytes(false);
  }
  void TearDown() override {
    if (!telemetry::compiledIn())
      return;
    profile::closeJitExports();
    profile::CodeMap::instance().resetForTest();
    profile::resetSamplerForTest();
  }
};

TEST_F(ProfileTest, CodeMapLifecycle) {
  auto &M = profile::CodeMap::instance();
  uint64_t Gen = M.publish(0x1000, 64, 0x1000, 0, "f1", "mips", Tier::Tier0);
  EXPECT_GT(Gen, 0u);
  auto St = M.stats();
  EXPECT_EQ(St.Published, 1u);
  EXPECT_EQ(St.Live, 1u);

  auto E = M.lookup(0x1020);
  ASSERT_TRUE(E);
  EXPECT_EQ(E->Name, "f1");
  EXPECT_STREQ(E->Target, "mips");
  EXPECT_EQ(E->Bytes, 64u);
  EXPECT_EQ(E->Generation, Gen);

  // CodeCache-style rename after publication.
  EXPECT_TRUE(M.annotate(0x1000, "dpf|mips|set3", Tier::Tier1));
  EXPECT_FALSE(M.annotate(0x9999, "nope", Tier::Tier0));
  auto R = M.lookup(0x1000);
  ASSERT_TRUE(R);
  EXPECT_EQ(R->Name, "dpf|mips|set3");
  EXPECT_EQ(R->GenTier, Tier::Tier1);
  ASSERT_TRUE(M.findByName("dpf|mips|set3"));

  // DBT-style guest range on the containing region.
  EXPECT_TRUE(M.setGuestRange(0x1010, 0x400000, 0x400040));
  EXPECT_EQ(M.lookup(0x1000)->GuestLo, 0x400000u);

  M.remove(0x1000);
  M.remove(0x1000); // absent: no-op, must not double-count
  St = M.stats();
  EXPECT_EQ(St.Live, 0u);
  EXPECT_EQ(St.Removed, 1u);
  EXPECT_FALSE(M.lookup(0x1020));
  EXPECT_TRUE(M.entries().empty());
}

TEST_F(ProfileTest, CodeMapBoundaryLookups) {
  auto &M = profile::CodeMap::instance();
  // Two back-to-back regions: every PC must land in exactly one.
  M.publish(0x2000, 0x40, 0x2000, 0, "lo", "mips", Tier::Tier0);
  M.publish(0x2040, 0x20, 0x2040, 0, "hi", "mips", Tier::Tier0);

  EXPECT_FALSE(M.lookup(0x1FFF));
  ASSERT_TRUE(M.lookup(0x2000));
  EXPECT_EQ(M.lookup(0x2000)->Name, "lo");
  EXPECT_EQ(M.lookup(0x203F)->Name, "lo");
  EXPECT_EQ(M.lookup(0x2040)->Name, "hi"); // first byte of the next region
  EXPECT_EQ(M.lookup(0x205F)->Name, "hi");
  EXPECT_FALSE(M.lookup(0x2060));

  // Host-address side (what a SIGPROF RIP consults).
  static uint8_t HostBuf[64];
  uintptr_t H = reinterpret_cast<uintptr_t>(HostBuf);
  M.publish(0x3000, sizeof(HostBuf), 0x3000, H, "hosted", "x64",
            Tier::Tier0);
  EXPECT_FALSE(M.lookupHost(H - 1));
  ASSERT_TRUE(M.lookupHost(H));
  EXPECT_EQ(M.lookupHost(H)->Name, "hosted");
  EXPECT_EQ(M.lookupHost(H + sizeof(HostBuf) - 1)->Name, "hosted");
  EXPECT_FALSE(M.lookupHost(H + sizeof(HostBuf)));
}

TEST_F(ProfileTest, CodeMapOverlapEvictsAndFoldsHeat) {
  auto &M = profile::CodeMap::instance();
  M.publish(0x4000, 0x100, 0x4000, 0, "old", "mips", Tier::Tier0);
  auto Old = M.lookup(0x4000);
  ASSERT_TRUE(Old);
  Old->Samples.fetch_add(5, std::memory_order_relaxed);

  // The cache's free pool reuses regions: a publish overlapping a live
  // entry evicts it, and its heat survives in the retired tally.
  M.publish(0x4080, 0x100, 0x4080, 0, "new", "mips", Tier::Tier0);
  EXPECT_FALSE(M.findByName("old"));
  EXPECT_EQ(M.lookup(0x40FF)->Name, "new");
  auto St = M.stats();
  EXPECT_EQ(St.Published, 2u);
  EXPECT_EQ(St.Removed, 1u);
  EXPECT_EQ(St.Live, 1u);

  bool Found = false;
  for (const auto &P : M.retiredHeat())
    if (P.first == "old") {
      Found = true;
      EXPECT_EQ(P.second, 5u);
    }
  EXPECT_TRUE(Found) << "retired heat lost the evicted entry's samples";
}

/// The TSan target: concurrent publish/lookup/remove across 8 threads with
/// a dedicated reader thread walking snapshots the whole time. Each writer
/// owns a disjoint address range, so the final census is exact.
TEST_F(ProfileTest, CodeMapChurnEightThreads) {
  auto &M = profile::CodeMap::instance();
  constexpr unsigned kThreads = 8;
  constexpr unsigned kIters = 1500;
  constexpr unsigned kSlots = 8;

  std::atomic<bool> Stop{false};
  std::thread Reader([&] {
    uint64_t Walks = 0;
    while (!Stop.load(std::memory_order_relaxed)) {
      for (const auto &E : M.entries()) {
        // Entries are immutable snapshots: reading through a concurrent
        // evict must always see consistent metadata.
        ASSERT_NE(E->Bytes, 0u);
        ASSERT_FALSE(E->Name.empty());
      }
      ++Walks;
    }
    EXPECT_GT(Walks, 0u);
  });

  std::vector<std::thread> Writers;
  for (unsigned T = 0; T < kThreads; ++T)
    Writers.emplace_back([&M, T] {
      uint64_t Base = 0x100000u * (T + 1);
      for (unsigned I = 0; I < kIters; ++I) {
        uint64_t Addr = Base + (I % kSlots) * 0x100;
        M.publish(Addr, 0x80, Addr, 0,
                  "churn:" + std::to_string(T) + ":" +
                      std::to_string(I % kSlots),
                  "mips", Tier::Tier0);
        auto E = M.lookup(Addr + 0x40);
        ASSERT_TRUE(E);
        E->Samples.fetch_add(1, std::memory_order_relaxed);
        if (I % 3 != 0)
          M.remove(Addr); // else: left live, overlap-evicted on slot reuse
      }
      for (unsigned S = 0; S < kSlots; ++S)
        M.remove(Base + S * 0x100);
    });
  for (auto &W : Writers)
    W.join();
  Stop.store(true, std::memory_order_relaxed);
  Reader.join();

  auto St = M.stats();
  EXPECT_EQ(St.Published, uint64_t(kThreads) * kIters);
  EXPECT_EQ(St.Live, 0u);
  EXPECT_EQ(St.Published - St.Removed, St.Live);
  EXPECT_TRUE(M.entries().empty());

  // Every one of the 12000 lookups bumped a counter; all of that heat
  // must have folded into the retired tally (bounded set of names here).
  uint64_t Retired = 0;
  for (const auto &P : M.retiredHeat())
    Retired += P.second;
  EXPECT_EQ(Retired, uint64_t(kThreads) * kIters);
}

TEST_F(ProfileTest, VEndPublishesNamedEntry) {
  auto &M = profile::CodeMap::instance();
  M.setCaptureBytes(true);
  sim::Memory Mem;
  mips::MipsTarget Target;

  VCode V(Target);
  Reg Arg[1];
  V.lambda("%i", Arg, LeafHint, Mem.allocCode(4096));
  V.setFunctionName("test:plus1"); // after lambda: lambda resets the name
  V.addii(Arg[0], Arg[0], 1);
  V.reti(Arg[0]);
  CodePtr Fn = V.end();
  ASSERT_TRUE(Fn.isValid());

  auto E = M.findByName("test:plus1");
  ASSERT_TRUE(E) << "v_end did not publish into the CodeMap";
  EXPECT_STREQ(E->Target, "mips");
  EXPECT_EQ(E->Entry, Fn.Entry);
  EXPECT_GT(E->Bytes, 0u);
  EXPECT_EQ(M.lookup(Fn.Entry).get(), E.get());
  ASSERT_FALSE(E->Code.empty()); // capture was on
  EXPECT_EQ(E->Code.size(), E->Bytes);

  // The published bytes round-trip through the registered disassembler.
  std::string Text;
  profile::DumpStats S = profile::dumpEntry(*E, Text);
  EXPECT_TRUE(S.HaveDisasm);
  EXPECT_TRUE(S.HaveBytes);
  EXPECT_EQ(S.Undecodable, 0u);
  EXPECT_EQ(S.Instrs, E->Bytes / 4);
  EXPECT_NE(Text.find("test:plus1"), std::string::npos);
}

TEST_F(ProfileTest, VirtualSamplerAttributesHotLoop) {
  auto &M = profile::CodeMap::instance();
  sim::Memory Mem;
  mips::MipsTarget Target;
  sim::MipsSim Sim(Mem, sim::dec5000Config());

  // sum(n): ~4 instructions per iteration, so 1.5M iterations is ~6M
  // instructions — well past the 4096-instruction sampling period.
  VCode V(Target);
  Reg Arg[1];
  V.lambda("%i", Arg, LeafHint, Mem.allocCode(4096));
  V.setFunctionName("hot:sum");
  Reg S = V.getreg(Type::I), I = V.getreg(Type::I);
  V.setInt(Type::I, S, 0);
  V.setInt(Type::I, I, 0);
  Label L = V.genLabel();
  V.label(L);
  V.binop(BinOp::Add, Type::I, S, S, I);
  V.binopImm(BinOp::Add, Type::I, I, I, 1);
  V.branch(Cond::Lt, Type::I, I, Arg[0], L);
  V.ret(Type::I, S);
  CodePtr Fn = V.end();
  ASSERT_TRUE(Fn.isValid());

  profile::startSampler(); // native timer may not arm; virtual always does
  ASSERT_TRUE(profile::samplerActive());
  const int64_t N = 1'500'000;
  TypedValue R = Sim.call(Fn.Entry, {TypedValue::fromInt(N)});
  profile::stopSampler();
  EXPECT_FALSE(profile::samplerActive());
  EXPECT_EQ(uint32_t(R.asInt32()), uint32_t(N * (N - 1) / 2));

  profile::SamplerStats PS = profile::samplerStats();
  EXPECT_GE(PS.VirtualSamples, 100u);
  // The acceptance bar: >= 95% of samples attribute to live entries. Here
  // essentially every sampled PC is inside the loop.
  EXPECT_GE(PS.VirtualAttributed * 100, PS.VirtualSamples * 95)
      << PS.VirtualAttributed << " of " << PS.VirtualSamples
      << " samples attributed";
  auto E = M.findByName("hot:sum");
  ASSERT_TRUE(E);
  EXPECT_GE(E->Samples.load(std::memory_order_relaxed),
            PS.VirtualAttributed);

  // Sampling is a session: with the sampler stopped, the clock keeps
  // crossing the period boundary but no samples accrue.
  Sim.call(Fn.Entry, {TypedValue::fromInt(100'000)});
  profile::SamplerStats PS2 = profile::samplerStats();
  EXPECT_EQ(PS2.VirtualSamples, PS.VirtualSamples);
}

TEST_F(ProfileTest, PerfMapStructure) {
  auto &M = profile::CodeMap::instance();
  std::string Path = ::testing::TempDir() + "vcode_profiletest_perf.map";
  ASSERT_TRUE(profile::enablePerfMap(Path.c_str()));
  EXPECT_EQ(profile::perfMapPath(), Path);

  static uint8_t HostBuf[32];
  uintptr_t H = reinterpret_cast<uintptr_t>(HostBuf);
  M.publish(0x7000, 0x40, 0x7000, 0, "sim only", "mips", Tier::Tier0);
  M.publish(0x8000, sizeof(HostBuf), 0x8000, H, "hosted_fn", "x64",
            Tier::Tier1);
  profile::closeJitExports();

  // Test-side reader: every line is "<hex addr> <hex size> <name>", with
  // the host address preferred when the region has one (perf samples host
  // RIPs). Names may contain spaces — everything after the second field.
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::string Line;
  std::vector<std::string> Lines;
  while (std::getline(In, Line))
    Lines.push_back(Line);
  ASSERT_EQ(Lines.size(), 2u);

  uint64_t A0, S0, A1, S1;
  char Name1[64];
  ASSERT_EQ(std::sscanf(Lines[0].c_str(), "%llx %llx",
                        (unsigned long long *)&A0,
                        (unsigned long long *)&S0),
            2);
  EXPECT_EQ(A0, 0x7000u);
  EXPECT_EQ(S0, 0x40u);
  EXPECT_NE(Lines[0].find("sim only"), std::string::npos);
  ASSERT_EQ(std::sscanf(Lines[1].c_str(), "%llx %llx %63s",
                        (unsigned long long *)&A1,
                        (unsigned long long *)&S1, Name1),
            3);
  EXPECT_EQ(A1, uint64_t(H));
  EXPECT_EQ(S1, sizeof(HostBuf));
  EXPECT_STREQ(Name1, "hosted_fn");
}

TEST_F(ProfileTest, JitdumpStructure) {
#if !defined(__linux__) || !defined(__x86_64__)
  GTEST_SKIP() << "jitdump is a Linux/x86-64 perf interface";
#else
  auto &M = profile::CodeMap::instance();
  M.setCaptureBytes(true);
  std::string Path = ::testing::TempDir() + "vcode_profiletest.dump";
  if (!profile::enableJitDump(Path.c_str()))
    GTEST_SKIP() << "cannot create a jitdump here";
  EXPECT_EQ(profile::jitDumpPath(), Path);

  static uint8_t CodeBuf[16] = {0x48, 0x89, 0xd8, 0xc3, 0x90, 0x90,
                                0x90, 0x90, 0x90, 0x90, 0x90, 0x90,
                                0x90, 0x90, 0x90, 0x90};
  uintptr_t H = reinterpret_cast<uintptr_t>(CodeBuf);
  M.publish(0x9000, sizeof(CodeBuf), 0x9000, H, "jitfn", "x64",
            Tier::Tier0);
  profile::closeJitExports();

  // Test-side reader for the jitdump-specification.txt layout.
  std::ifstream In(Path, std::ios::binary);
  ASSERT_TRUE(In.good());
  std::stringstream SS;
  SS << In.rdbuf();
  std::string D = SS.str();
  ASSERT_GE(D.size(), size_t(40 + 56));

  auto U32 = [&](size_t Off) {
    uint32_t V;
    std::memcpy(&V, D.data() + Off, 4);
    return V;
  };
  auto U64 = [&](size_t Off) {
    uint64_t V;
    std::memcpy(&V, D.data() + Off, 8);
    return V;
  };
  // File header: magic "JiTD", version 1, 40-byte size, EM_X86_64.
  EXPECT_EQ(U32(0), 0x4A695444u);
  EXPECT_EQ(U32(4), 1u);
  EXPECT_EQ(U32(8), 40u);
  EXPECT_EQ(U32(12), 62u);

  // One JIT_CODE_LOAD record: header + load + NUL name + code bytes.
  size_t R = 40;
  EXPECT_EQ(U32(R + 0), 0u); // record id
  size_t NameLen = std::strlen("jitfn") + 1;
  EXPECT_EQ(U32(R + 4), 56u + NameLen + sizeof(CodeBuf));
  EXPECT_EQ(U64(R + 24), uint64_t(H));        // vma
  EXPECT_EQ(U64(R + 32), uint64_t(H));        // code addr
  EXPECT_EQ(U64(R + 40), sizeof(CodeBuf));    // code size
  ASSERT_GE(D.size(), R + 56 + NameLen + sizeof(CodeBuf));
  EXPECT_STREQ(D.data() + R + 56, "jitfn");
  EXPECT_EQ(std::memcmp(D.data() + R + 56 + NameLen, CodeBuf,
                        sizeof(CodeBuf)),
            0);
#endif
}

TEST_F(ProfileTest, X64DisasmKnownEncodings) {
  // mov rax, rbx — REX.W + 89 /r.
  const uint8_t Mov[] = {0x48, 0x89, 0xd8};
  std::string Text;
  EXPECT_EQ(x64::decodeOne(Mov, sizeof(Mov), 0x1000, Text), 3u);
  EXPECT_NE(Text.find("mov"), std::string::npos);
  EXPECT_NE(Text.find("rax"), std::string::npos);
  EXPECT_NE(Text.find("rbx"), std::string::npos);

  const uint8_t Ret[] = {0xc3};
  Text.clear();
  EXPECT_EQ(x64::decodeOne(Ret, 1, 0x1000, Text), 1u);
  EXPECT_NE(Text.find("ret"), std::string::npos);

  // 0x06 (push es) does not exist in 64-bit mode and the backend never
  // emits it: the decoder must refuse, which is what makes the vcodegen
  // round-trip check able to fail.
  const uint8_t Bad[] = {0x06, 0x00, 0x00};
  Text.clear();
  EXPECT_EQ(x64::decodeOne(Bad, sizeof(Bad), 0x1000, Text), 0u);

  // Truncated instruction: a REX prefix with no opcode byte after it.
  const uint8_t Trunc[] = {0x48};
  Text.clear();
  EXPECT_EQ(x64::decodeOne(Trunc, 1, 0x1000, Text), 0u);
}

TEST_F(ProfileTest, ReportSectionsPresent) {
  auto &M = profile::CodeMap::instance();
  M.publish(0xA000, 0x40, 0xA000, 0, "rpt:fn", "mips", Tier::Tier0);
  auto E = M.lookup(0xA000);
  ASSERT_TRUE(E);
  E->Samples.fetch_add(3, std::memory_order_relaxed);

  std::string Out;
  M.appendReport(Out);
  EXPECT_NE(Out.find("codemap:"), std::string::npos);
  EXPECT_NE(Out.find("rpt:fn"), std::string::npos);

  std::string Prof;
  profile::appendProfileReport(Prof);
  EXPECT_NE(Prof.find("profile:"), std::string::npos);
}

} // namespace
