//===- tests/RegressionTest.cpp - Auto-generated instruction tests --------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
// The paper (§3.3): "VCODE includes a script to automatically generate
// regression tests for errors in instruction mappings and calling
// conventions." This file is that generator: for every (operation, type)
// composition of the core instruction set it dynamically generates a
// function, executes it on the ISA simulator, and compares the result
// against host-side reference semantics. The suite is parameterized over
// every ported target.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include <gtest/gtest.h>

using namespace vcode;
using namespace vcode::test;
using sim::TypedValue;

namespace {

class RegressionTest : public ::testing::TestWithParam<std::string> {
protected:
  void SetUp() override {
    B = makeBundle(GetParam());
    WB = B.Tgt->info().WordBytes;
  }

  /// Reclaims code memory between generated functions.
  CodeMem code() { return B.Mem->allocCode(8192); }

  TargetBundle B;
  unsigned WB = 4;
};

const Type IntRegTypes[] = {Type::I, Type::U, Type::L, Type::UL};
const Type AllRegTypes[] = {Type::I, Type::U, Type::L,
                            Type::UL, Type::F, Type::D};
const BinOp AllBinOps[] = {BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div,
                           BinOp::Mod, BinOp::And, BinOp::Or,  BinOp::Xor,
                           BinOp::Lsh, BinOp::Rsh};
const Cond AllConds[] = {Cond::Lt, Cond::Le, Cond::Gt,
                         Cond::Ge, Cond::Eq, Cond::Ne};

bool binOpValidFor(BinOp Op, Type Ty) {
  if (isFpType(Ty))
    return Op == BinOp::Add || Op == BinOp::Sub || Op == BinOp::Mul ||
           Op == BinOp::Div;
  return true;
}

bool unOpValidFor(UnOp Op, Type Ty) {
  if (isFpType(Ty))
    return Op == UnOp::Mov || Op == UnOp::Neg;
  if (Op == UnOp::Neg)
    return isSignedType(Ty);
  return true;
}

/// Skips operand pairs whose reference behaviour is undefined or
/// implementation-defined (divide by zero; INT_MIN / -1; out-of-range
/// shifts are pre-masked by the value generator).
bool operandsDefined(BinOp Op, Type Ty, uint64_t A, uint64_t B, unsigned WB) {
  if (Op != BinOp::Div && Op != BinOp::Mod)
    return true;
  if (isFpType(Ty))
    return true; // IEEE division is fully defined (inf/nan compare bitwise)
  unsigned Bits = typeBits(Ty, WB);
  uint64_t Mask = Bits >= 64 ? ~uint64_t(0) : ((uint64_t(1) << Bits) - 1);
  if ((B & Mask) == 0)
    return false;
  if (isSignedType(Ty)) {
    uint64_t Min = uint64_t(1) << (Bits - 1);
    if ((A & Mask) == Min && (B & Mask) == Mask)
      return false;
  }
  return true;
}

std::string typeStr(Type Ty) { return std::string("%") + typeName(Ty); }

} // namespace

// --- Binary operations -------------------------------------------------------

TEST_P(RegressionTest, BinopRegisterForms) {
  VCODE_SEED_TRACE();
  for (Type Ty : AllRegTypes) {
    for (BinOp Op : AllBinOps) {
      if (!binOpValidFor(Op, Ty))
        continue;
      VCode V(*B.Tgt);
      Reg Arg[2];
      std::string Sig = typeStr(Ty) + typeStr(Ty);
      V.lambda(Sig.c_str(), Arg, LeafHint, code());
      Reg Rd = V.getreg(Ty);
      ASSERT_TRUE(Rd.isValid());
      V.binop(Op, Ty, Rd, Arg[0], Arg[1]);
      V.ret(Ty, Rd);
      CodePtr Fn = V.end();

      std::vector<uint64_t> As = operandValues(Ty, WB, 10, testSeed(1));
      std::vector<uint64_t> Bs = operandValues(Ty, WB, 10, testSeed(2));
      // Keep shift amounts in range.
      if (Op == BinOp::Lsh || Op == BinOp::Rsh)
        for (uint64_t &X : Bs)
          X &= typeBits(Ty, WB) - 1;
      for (uint64_t A : As)
        for (uint64_t Bv : Bs) {
          if (!operandsDefined(Op, Ty, A, Bv, WB))
            continue;
          uint64_t Want = refBinop(Op, Ty, A, Bv, WB);
          TypedValue Got = B.Cpu->call(
              Fn.Entry, {TypedValue{Ty, A}, TypedValue{Ty, Bv}}, Ty);
          ASSERT_EQ(canonicalize(Ty, Got.Bits, WB), Want)
              << GetParam() << ": " << binOpName(Op) << typeName(Ty) << "("
              << std::hex << A << ", " << Bv << ")";
        }
    }
  }
}

TEST_P(RegressionTest, BinopImmediateForms) {
  VCODE_SEED_TRACE();
  for (Type Ty : IntRegTypes) {
    for (BinOp Op : AllBinOps) {
      std::vector<uint64_t> Imms = operandValues(Ty, WB, 8, testSeed(3));
      if (Op == BinOp::Lsh || Op == BinOp::Rsh)
        for (uint64_t &X : Imms)
          X &= typeBits(Ty, WB) - 1;
      for (uint64_t Imm : Imms) {
        if (!operandsDefined(Op, Ty, 1, Imm, WB))
          continue;
        VCode V(*B.Tgt);
        Reg Arg[1];
        V.lambda(typeStr(Ty).c_str(), Arg, LeafHint, code());
        Reg Rd = V.getreg(Ty);
        V.binopImm(Op, Ty, Rd, Arg[0], int64_t(Imm));
        V.ret(Ty, Rd);
        CodePtr Fn = V.end();

        for (uint64_t A : operandValues(Ty, WB, 6, testSeed(4))) {
          if (!operandsDefined(Op, Ty, A, Imm, WB))
            continue;
          uint64_t Want = refBinop(Op, Ty, A, Imm, WB);
          TypedValue Got = B.Cpu->call(Fn.Entry, {TypedValue{Ty, A}}, Ty);
          ASSERT_EQ(canonicalize(Ty, Got.Bits, WB), Want)
              << GetParam() << ": " << binOpName(Op) << typeName(Ty)
              << "i(a, " << std::hex << Imm << ") a=" << A;
        }
      }
    }
  }
}

// --- Unary operations --------------------------------------------------------

TEST_P(RegressionTest, UnaryOps) {
  VCODE_SEED_TRACE();
  const UnOp Ops[] = {UnOp::Com, UnOp::Not, UnOp::Mov, UnOp::Neg};
  for (Type Ty : AllRegTypes) {
    for (UnOp Op : Ops) {
      if (!unOpValidFor(Op, Ty))
        continue;
      VCode V(*B.Tgt);
      Reg Arg[1];
      V.lambda(typeStr(Ty).c_str(), Arg, LeafHint, code());
      Reg Rd = V.getreg(Ty);
      V.unop(Op, Ty, Rd, Arg[0]);
      V.ret(Ty, Rd);
      CodePtr Fn = V.end();

      for (uint64_t A : operandValues(Ty, WB, 12, testSeed(5))) {
        uint64_t Want = refUnop(Op, Ty, A, WB);
        TypedValue Got = B.Cpu->call(Fn.Entry, {TypedValue{Ty, A}}, Ty);
        ASSERT_EQ(canonicalize(Ty, Got.Bits, WB), Want)
            << GetParam() << ": unop " << int(Op) << " " << typeName(Ty)
            << "(" << std::hex << A << ")";
      }
    }
  }
}

// --- set (load constant) -----------------------------------------------------

TEST_P(RegressionTest, SetConstants) {
  VCODE_SEED_TRACE();
  for (Type Ty : IntRegTypes) {
    for (uint64_t C : operandValues(Ty, WB, 12, testSeed(6))) {
      VCode V(*B.Tgt);
      V.lambda("%v", nullptr, LeafHint, code());
      Reg Rd = V.getreg(Ty);
      V.setInt(Ty, Rd, C);
      V.ret(Ty, Rd);
      CodePtr Fn = V.end();
      TypedValue Got = B.Cpu->call(Fn.Entry, {}, Ty);
      EXPECT_EQ(canonicalize(Ty, Got.Bits, WB), canonicalize(Ty, C, WB))
          << GetParam() << ": set" << typeName(Ty) << " " << std::hex << C;
    }
  }
  // FP constants (paper §5.2: pool at the end of the instruction stream).
  for (double C : {0.0, 1.0, -1.5, 3.14159265358979, 1e30, -2.5e-9}) {
    VCode V(*B.Tgt);
    V.lambda("%v", nullptr, LeafHint, code());
    Reg Rd = V.getreg(Type::D);
    V.setd(Rd, C);
    V.retd(Rd);
    CodePtr Fn = V.end();
    EXPECT_EQ(B.Cpu->call(Fn.Entry, {}, Type::D).asDouble(), C);
  }
  for (float C : {0.0f, 1.0f, -1.5f, 2.71828f}) {
    VCode V(*B.Tgt);
    V.lambda("%v", nullptr, LeafHint, code());
    Reg Rd = V.getreg(Type::F);
    V.setf(Rd, C);
    V.retf(Rd);
    CodePtr Fn = V.end();
    EXPECT_EQ(B.Cpu->call(Fn.Entry, {}, Type::F).asFloat(), C);
  }
}

// --- Conversions -------------------------------------------------------------

TEST_P(RegressionTest, Conversions) {
  VCODE_SEED_TRACE();
  struct Pair {
    Type From, To;
  };
  const Pair Pairs[] = {
      {Type::I, Type::U},  {Type::I, Type::L},  {Type::I, Type::UL},
      {Type::U, Type::I},  {Type::U, Type::L},  {Type::U, Type::UL},
      {Type::L, Type::I},  {Type::UL, Type::I}, {Type::I, Type::F},
      {Type::I, Type::D},  {Type::U, Type::D},  {Type::F, Type::I},
      {Type::D, Type::I},  {Type::F, Type::D},  {Type::D, Type::F},
      {Type::L, Type::D},
  };
  for (const Pair &P : Pairs) {
    VCode V(*B.Tgt);
    Reg Arg[1];
    V.lambda(typeStr(P.From).c_str(), Arg, LeafHint, code());
    Reg Rd = V.getreg(P.To);
    V.cvt(P.From, P.To, Rd, Arg[0]);
    V.ret(P.To, Rd);
    CodePtr Fn = V.end();

    for (uint64_t A : operandValues(P.From, WB, 12, testSeed(7))) {
      if (isFpType(P.From) && !isFpType(P.To)) {
        // FP -> int is defined only when the truncated value fits.
        double D = P.From == Type::F
                       ? double(TypedValue{Type::F, A}.asFloat())
                       : TypedValue{Type::D, A}.asDouble();
        if (!(D > -2147483000.0 && D < 2147483000.0))
          continue;
      }
      uint64_t Want = refCvt(P.From, P.To, A, WB);
      TypedValue Got = B.Cpu->call(Fn.Entry, {TypedValue{P.From, A}}, P.To);
      ASSERT_EQ(canonicalize(P.To, Got.Bits, WB), Want)
          << GetParam() << ": cv" << typeName(P.From) << "2"
          << typeName(P.To) << "(" << std::hex << A << ")";
    }
  }
}

// --- Branches ----------------------------------------------------------------

TEST_P(RegressionTest, BranchRegisterForms) {
  VCODE_SEED_TRACE();
  for (Type Ty : AllRegTypes) {
    for (Cond C : AllConds) {
      VCode V(*B.Tgt);
      Reg Arg[2];
      std::string Sig = typeStr(Ty) + typeStr(Ty);
      V.lambda(Sig.c_str(), Arg, LeafHint, code());
      Reg Rd = V.getreg(Type::I);
      Label Taken = V.genLabel();
      V.branch(C, Ty, Arg[0], Arg[1], Taken);
      V.seti(Rd, 0);
      V.reti(Rd);
      V.label(Taken);
      V.seti(Rd, 1);
      V.reti(Rd);
      CodePtr Fn = V.end();

      for (uint64_t A : operandValues(Ty, WB, 8, testSeed(8)))
        for (uint64_t Bv : operandValues(Ty, WB, 8, testSeed(9))) {
          bool Want = refCond(C, Ty, A, Bv, WB);
          int32_t Got =
              B.Cpu->call(Fn.Entry, {TypedValue{Ty, A}, TypedValue{Ty, Bv}},
                          Type::I)
                  .asInt32();
          ASSERT_EQ(Got, Want ? 1 : 0)
              << GetParam() << ": b?" << int(C) << typeName(Ty) << "("
              << std::hex << A << ", " << Bv << ")";
        }
    }
  }
}

TEST_P(RegressionTest, BranchImmediateForms) {
  VCODE_SEED_TRACE();
  for (Type Ty : IntRegTypes) {
    for (Cond C : AllConds) {
      for (uint64_t Imm : operandValues(Ty, WB, 6, testSeed(10))) {
        VCode V(*B.Tgt);
        Reg Arg[1];
        V.lambda(typeStr(Ty).c_str(), Arg, LeafHint, code());
        Reg Rd = V.getreg(Type::I);
        Label Taken = V.genLabel();
        V.branchImm(C, Ty, Arg[0], int64_t(Imm), Taken);
        V.seti(Rd, 0);
        V.reti(Rd);
        V.label(Taken);
        V.seti(Rd, 1);
        V.reti(Rd);
        CodePtr Fn = V.end();

        for (uint64_t A : operandValues(Ty, WB, 6, testSeed(11))) {
          bool Want = refCond(C, Ty, A, Imm, WB);
          int32_t Got =
              B.Cpu->call(Fn.Entry, {TypedValue{Ty, A}}, Type::I).asInt32();
          ASSERT_EQ(Got, Want ? 1 : 0)
              << GetParam() << ": b?" << int(C) << typeName(Ty) << "i("
              << std::hex << A << ", " << Imm << ")";
        }
      }
    }
  }
}

// --- Memory operations ---------------------------------------------------------

TEST_P(RegressionTest, LoadsAllTypes) {
  VCODE_SEED_TRACE();
  const Type MemTypes[] = {Type::C, Type::UC, Type::S, Type::US, Type::I,
                           Type::U, Type::L,  Type::UL, Type::P, Type::F,
                           Type::D};
  for (Type Ty : MemTypes) {
    Type RegTy = isSmallIntType(Ty)
                     ? (isSignedType(Ty) ? Type::I : Type::U)
                     : Ty;
    for (bool ImmForm : {true, false}) {
      VCode V(*B.Tgt);
      Reg Arg[1];
      V.lambda("%p", Arg, LeafHint, code());
      Reg Rd = V.getreg(RegTy);
      if (ImmForm) {
        V.loadImm(Ty, Rd, Arg[0], 8);
      } else {
        Reg Off = V.getreg(Type::I);
        V.seti(Off, 8);
        V.load(Ty, Rd, Arg[0], Off);
      }
      V.ret(RegTy, Rd);
      CodePtr Fn = V.end();

      SimAddr Buf = B.Mem->alloc(64);
      for (uint64_t Raw : operandValues(RegTy, WB, 8, testSeed(12))) {
        unsigned Size = typeSize(Ty, WB);
        for (unsigned I = 0; I < Size; ++I)
          B.Mem->write<uint8_t>(Buf + 8 + I, uint8_t(Raw >> (8 * I)));
        uint64_t Want;
        if (Ty == Type::F)
          Want = Raw & 0xffffffffu;
        else if (Ty == Type::D)
          Want = Raw;
        else
          Want = canonicalize(Ty, Raw, WB);
        TypedValue Got =
            B.Cpu->call(Fn.Entry, {TypedValue::fromPtr(Buf)}, RegTy);
        ASSERT_EQ(canonicalize(RegTy, Got.Bits, WB),
                  canonicalize(RegTy, Want, WB))
            << GetParam() << ": ld" << typeName(Ty)
            << (ImmForm ? "i" : "") << " raw=" << std::hex << Raw;
      }
    }
  }
}

TEST_P(RegressionTest, StoresAllTypes) {
  VCODE_SEED_TRACE();
  const Type MemTypes[] = {Type::C, Type::UC, Type::S, Type::US, Type::I,
                           Type::U, Type::L,  Type::UL, Type::P, Type::F,
                           Type::D};
  for (Type Ty : MemTypes) {
    Type RegTy = isSmallIntType(Ty)
                     ? (isSignedType(Ty) ? Type::I : Type::U)
                     : Ty;
    for (bool ImmForm : {true, false}) {
      VCode V(*B.Tgt);
      Reg Arg[2];
      std::string Sig = std::string("%p") + typeStr(RegTy);
      V.lambda(Sig.c_str(), Arg, LeafHint, code());
      if (ImmForm) {
        V.storeImm(Ty, Arg[1], Arg[0], 16);
      } else {
        Reg Off = V.getreg(Type::I);
        V.seti(Off, 16);
        V.store(Ty, Arg[1], Arg[0], Off);
      }
      V.retv();
      CodePtr Fn = V.end();

      SimAddr Buf = B.Mem->alloc(64);
      for (uint64_t Raw : operandValues(RegTy, WB, 6, testSeed(13))) {
        unsigned Size = typeSize(Ty, WB);
        for (unsigned I = 0; I < 32; ++I)
          B.Mem->write<uint8_t>(Buf + I, 0xcc);
        B.Cpu->call(Fn.Entry,
                    {TypedValue::fromPtr(Buf), TypedValue{RegTy, Raw}},
                    Type::V);
        uint64_t Stored = 0;
        for (unsigned I = 0; I < Size; ++I)
          Stored |= uint64_t(B.Mem->read<uint8_t>(Buf + 16 + I)) << (8 * I);
        uint64_t Want = Raw & (Size >= 8 ? ~uint64_t(0)
                                         : ((uint64_t(1) << (8 * Size)) - 1));
        ASSERT_EQ(Stored, Want) << GetParam() << ": st" << typeName(Ty)
                                << (ImmForm ? "i" : "");
        // Neighbours untouched.
        EXPECT_EQ(B.Mem->read<uint8_t>(Buf + 15), 0xcc);
        EXPECT_EQ(B.Mem->read<uint8_t>(Buf + 16 + Size), 0xcc);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTargets, RegressionTest,
                         ::testing::ValuesIn(allTargetNames()),
                         [](const auto &Info) { return Info.param; });
