//===- tests/DbtTest.cpp - Binary-translator differential suite -----------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
// dbt::MipsTranslatingCpu must be architecturally indistinguishable from
// sim::MipsSim: every test here runs the same generated MIPS code on both
// and locks registers, memory, results, and the retired-instruction count
// bit for bit. Coverage comes from three directions — the RandomStream
// corpus (integer ALU + control flow + memory traffic), the DPF and ASH
// clients (real generated classifiers/pipelines, including jal/jr call
// trees), and targeted cases for floating point, stack-passed arguments,
// and code invalidation when the guest regenerates a function mid-run. A
// final hammer shares one TranslationEngine across threads while the guest
// keeps publishing new code, exercising concurrent translation-cache
// lookup/insert/invalidate (the CI TSan step runs it under
// ThreadSanitizer).
//
// On hosts without x86-64 + mmap the translator delegates whole calls to
// its embedded interpreter; the differential tests still run (they then
// compare the interpreter with itself) so the suite is portable.
//
//===----------------------------------------------------------------------===//

#include "StreamGen.h"
#include "TestUtil.h"
#include "ash/Ash.h"
#include "dbt/MipsTranslatingCpu.h"
#include "dpf/Engines.h"
#include "mips/MipsTarget.h"
#include "support/Rng.h"
#include <atomic>
#include <gtest/gtest.h>
#include <thread>

using namespace vcode;
using namespace vcode::test;
using sim::TypedValue;

namespace {

/// Compares every piece of architectural state the two CPUs expose after
/// a run. Skipped (vacuously true) when the translator delegated the call.
void expectStateMatches(const sim::MipsSim &Ref,
                        const dbt::MipsTranslatingCpu &Dbt,
                        const std::string &What) {
  if (!Dbt.translating())
    return; // delegate mode: the interpreter *is* the reference
  sim::MipsSim::ArchState S;
  Ref.exportState(S);
  const dbt::GuestState &G = Dbt.guestState();
  for (unsigned I = 0; I < 32; ++I) {
    EXPECT_EQ(G.R[I], S.R[I]) << What << ": $" << I;
    EXPECT_EQ(G.FPR[I], S.FPR[I]) << What << ": $f" << I;
  }
  EXPECT_EQ(G.HI, S.HI) << What << ": HI";
  EXPECT_EQ(G.LO, S.LO) << What << ": LO";
  EXPECT_EQ(G.FpCond != 0, S.FpCond) << What << ": FpCond";
}

class DbtStreamTest : public ::testing::TestWithParam<int> {};

TEST_P(DbtStreamTest, MatchesInterpreterOnRandomStreams) {
  const Type StreamTypes[] = {Type::I, Type::U, Type::L, Type::UL};
  const unsigned Chunk = unsigned(GetParam());

  for (unsigned Pn = 0; Pn < StreamProgsPerChunk; ++Pn) {
    unsigned Index = Chunk * StreamProgsPerChunk + Pn;
    VCODE_SEEDED(Index * 6151 + 101); // RandomStreamTest's corpus
    Type Ty = StreamTypes[Index % 4];
    Rng R(TestSeed);
    std::vector<StreamInsn> Prog = makeStream(R, Ty, typeBits(Ty, 4));

    sim::Memory Mem;
    mips::MipsTarget Tgt;
    sim::MipsSim Ref(Mem);
    dbt::MipsTranslatingCpu Dbt(Mem);

    std::vector<uint64_t> Init(StreamSlots);
    for (unsigned I = 0; I < StreamSlots; ++I)
      Init[I] = canonicalize(Type::UL, R.next(), 4);

    SimAddr Scratch = Mem.alloc(StreamScratchSlots * 8, 8);
    SimAddr Out = Mem.alloc(StreamSlots * 8, 8);

    VCode V(Tgt);
    CodePtr Fn =
        emitStream(V, Prog, Ty, Mem.allocCode(1 << 16), Scratch, Out);
    ASSERT_TRUE(Fn.isValid());

    std::vector<TypedValue> Args;
    for (uint64_t I : Init)
      Args.push_back(TypedValue::fromUInt(I, Type::UL));

    // Reference run.
    for (unsigned I = 0; I < StreamScratchSlots; ++I)
      Mem.write<uint64_t>(Scratch + 8 * I, 0);
    Ref.call(Fn.Entry, Args, Type::V);
    std::vector<uint64_t> OutRef(StreamSlots), ScrRef(StreamScratchSlots);
    for (unsigned I = 0; I < StreamSlots; ++I)
      OutRef[I] = Mem.read<uint64_t>(Out + 8 * I);
    for (unsigned I = 0; I < StreamScratchSlots; ++I)
      ScrRef[I] = Mem.read<uint64_t>(Scratch + 8 * I);

    // Translated run over the same code and fresh scratch.
    for (unsigned I = 0; I < StreamScratchSlots; ++I)
      Mem.write<uint64_t>(Scratch + 8 * I, 0);
    Dbt.call(Fn.Entry, Args, Type::V);

    std::string What = "program " + std::to_string(Index);
    for (unsigned I = 0; I < StreamSlots; ++I)
      EXPECT_EQ(Mem.read<uint64_t>(Out + 8 * I), OutRef[I])
          << What << " out slot " << I;
    for (unsigned I = 0; I < StreamScratchSlots; ++I)
      EXPECT_EQ(Mem.read<uint64_t>(Scratch + 8 * I), ScrRef[I])
          << What << " scratch cell " << I;
    expectStateMatches(Ref, Dbt, What);
    EXPECT_EQ(Dbt.lastStats().Instrs, Ref.lastStats().Instrs) << What;
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, DbtStreamTest,
                         ::testing::Range(0, int(StreamChunks)),
                         [](const auto &Info) {
                           return "chunk" + std::to_string(Info.param);
                         });

TEST(DbtTest, DpfClientsClassifyIdentically) {
  sim::Memory Mem;
  mips::MipsTarget Tgt;
  sim::MipsSim Ref(Mem);
  dbt::MipsTranslatingCpu Dbt(Mem);

  std::vector<dpf::Filter> Filters = dpf::makeTcpIpFilters(10, 1024);
  dpf::DpfEngine Dpf(Tgt, Mem);
  dpf::MpfEngine Mpf(Tgt, Mem);
  Dpf.install(Filters);
  Mpf.install(Filters);

  SimAddr Msg = Mem.alloc(dpf::pkt::HeaderBytes, 8);
  for (uint16_t Port : {1024, 1028, 1033, 1034, 1023, 80, 0, 65535}) {
    dpf::writeTcpPacket(Mem, Msg, Port);
    int WantDpf = Dpf.classify(Ref, Msg);
    uint64_t WantInstrs = Ref.lastStats().Instrs;
    EXPECT_EQ(Dpf.classify(Dbt, Msg), WantDpf) << "dpf port " << Port;
    EXPECT_EQ(Dbt.lastStats().Instrs, WantInstrs) << "dpf port " << Port;
    expectStateMatches(Ref, Dbt, "dpf port " + std::to_string(Port));

    int WantMpf = Mpf.classify(Ref, Msg);
    WantInstrs = Ref.lastStats().Instrs;
    EXPECT_EQ(Mpf.classify(Dbt, Msg), WantMpf) << "mpf port " << Port;
    EXPECT_EQ(Dbt.lastStats().Instrs, WantInstrs) << "mpf port " << Port;
  }
}

TEST(DbtTest, AshPipelineMatches) {
  sim::Memory Mem;
  mips::MipsTarget Tgt;
  sim::MipsSim Ref(Mem);
  dbt::MipsTranslatingCpu Dbt(Mem);

  const std::vector<ash::Step> Steps = {ash::Step::ByteSwap, ash::Step::Copy,
                                        ash::Step::Checksum};
  ash::Pipeline P(Tgt, Mem);
  for (ash::Step S : Steps)
    P.addStep(S);
  P.compile(4);

  for (uint32_t Bytes : {16u, 1000u, 4096u}) {
    VCODE_SEEDED(Bytes * 13 + 7);
    Rng R(TestSeed);
    SimAddr Src = Mem.alloc(Bytes, 8);
    for (uint32_t I = 0; I < Bytes; I += 4)
      Mem.write<uint32_t>(Src + I, uint32_t(R.next()));

    // Both runs use the same destination so pointer-carrying registers end
    // up identical; the reference output is snapshotted in between.
    SimAddr Dst = Mem.alloc(Bytes, 8);
    uint32_t SumRef = P.run(Ref, Dst, Src, Bytes);
    uint64_t WantInstrs = Ref.lastStats().Instrs;
    std::vector<uint32_t> WantDst(Bytes / 4);
    for (uint32_t I = 0; I < Bytes; I += 4)
      WantDst[I / 4] = Mem.read<uint32_t>(Dst + I);
    for (uint32_t I = 0; I < Bytes; I += 4)
      Mem.write<uint32_t>(Dst + I, 0xdeadbeef);
    uint32_t SumDbt = P.run(Dbt, Dst, Src, Bytes);

    EXPECT_EQ(SumDbt, SumRef) << Bytes << "B";
    EXPECT_EQ(Dbt.lastStats().Instrs, WantInstrs) << Bytes << "B";
    for (uint32_t I = 0; I < Bytes; I += 4)
      ASSERT_EQ(Mem.read<uint32_t>(Dst + I), WantDst[I / 4])
          << Bytes << "B at +" << I;
    expectStateMatches(Ref, Dbt, std::to_string(Bytes) + "B ash");
  }
}

TEST(DbtTest, FloatingPointMatches) {
  sim::Memory Mem;
  mips::MipsTarget Tgt;
  sim::MipsSim Ref(Mem);
  dbt::MipsTranslatingCpu Dbt(Mem);

  // d0*d1 + d0/d1 - sqrt-free mix ending in a compare-driven select, so
  // COP1 arithmetic, conversions, and bc1 all execute.
  VCode V(Tgt);
  Reg Arg[2];
  V.lambda("%d%d", Arg, LeafHint, Mem.allocCode(4096));
  Reg T0 = V.getreg(Type::D), T1 = V.getreg(Type::D);
  ASSERT_TRUE(T0.isValid() && T1.isValid());
  V.binop(BinOp::Mul, Type::D, T0, Arg[0], Arg[1]);
  V.binop(BinOp::Div, Type::D, T1, Arg[0], Arg[1]);
  V.binop(BinOp::Add, Type::D, T0, T0, T1);
  Label Ge = V.genLabel(), End = V.genLabel();
  V.branch(Cond::Ge, Type::D, T0, Arg[0], Ge);
  V.binop(BinOp::Sub, Type::D, T0, T0, Arg[0]);
  V.jmp(End);
  V.label(Ge);
  V.binop(BinOp::Add, Type::D, T0, T0, Arg[1]);
  V.label(End);
  V.ret(Type::D, T0);
  CodePtr Fn = V.end();
  ASSERT_TRUE(Fn.isValid());

  const double Cases[][2] = {{1.5, 2.25},   {-3.0, 0.5},  {1e300, 1e-300},
                             {0.0, 1.0},    {-0.0, -1.0}, {1.0, 0.0},
                             {1e9, 3.1415}, {-1e-9, 7.0}};
  for (const double *C : Cases) {
    TypedValue A = TypedValue::fromDouble(C[0]);
    TypedValue B = TypedValue::fromDouble(C[1]);
    TypedValue RRef = Ref.call(Fn.Entry, {A, B}, Type::D);
    uint64_t WantInstrs = Ref.lastStats().Instrs;
    TypedValue RDbt = Dbt.call(Fn.Entry, {A, B}, Type::D);
    EXPECT_EQ(RDbt.Bits, RRef.Bits) << C[0] << ", " << C[1];
    EXPECT_EQ(Dbt.lastStats().Instrs, WantInstrs) << C[0] << ", " << C[1];
    expectStateMatches(Ref, Dbt, "fp case");
  }
}

TEST(DbtTest, StackPassedArgumentsMatch) {
  sim::Memory Mem;
  mips::MipsTarget Tgt;
  sim::MipsSim Ref(Mem);
  dbt::MipsTranslatingCpu Dbt(Mem);

  // Six integer arguments: MIPS passes four in $a0-$a3, two on the stack,
  // so the dispatcher's stack-slot marshalling is on the result path.
  VCode V(Tgt);
  Reg Arg[6];
  V.lambda("%i%i%i%i%i%i", Arg, LeafHint, Mem.allocCode(4096));
  for (int I = 1; I < 6; ++I)
    V.binop(BinOp::Add, Type::I, Arg[0], Arg[0], Arg[I]);
  V.binopImm(BinOp::Mul, Type::I, Arg[0], Arg[0], 3);
  V.ret(Type::I, Arg[0]);
  CodePtr Fn = V.end();
  ASSERT_TRUE(Fn.isValid());

  std::vector<TypedValue> Args;
  for (int I = 1; I <= 6; ++I)
    Args.push_back(TypedValue::fromInt(I * 1000 - 2500));
  TypedValue RRef = Ref.call(Fn.Entry, Args, Type::I);
  uint64_t WantInstrs = Ref.lastStats().Instrs;
  TypedValue RDbt = Dbt.call(Fn.Entry, Args, Type::I);
  EXPECT_EQ(RDbt.Bits, RRef.Bits);
  EXPECT_EQ(RDbt.asInt32(), 3 * (1000 + 2000 + 3000 + 4000 + 5000 + 6000 -
                                 6 * 2500));
  EXPECT_EQ(Dbt.lastStats().Instrs, WantInstrs);
  expectStateMatches(Ref, Dbt, "stack args");
}

/// Emits `int f() { return K; }` into \p CM (regenerating in place).
CodePtr emitConstFn(Target &Tgt, CodeMem CM, int K) {
  VCode V(Tgt);
  V.lambda("", nullptr, LeafHint, CM);
  V.retImm(Type::I, K);
  return V.end();
}

TEST(DbtTest, GuestRegenerationInvalidatesTranslations) {
  sim::Memory Mem;
  mips::MipsTarget Tgt;
  dbt::MipsTranslatingCpu Dbt(Mem);

  CodeMem CM = Mem.allocCode(4096);
  CodePtr F1 = emitConstFn(Tgt, CM, 111);
  ASSERT_TRUE(F1.isValid());
  EXPECT_EQ(Dbt.call(F1.Entry, {}, Type::I).asInt32(), 111);
  // Hot path: the cached translation must be reused, not regenerated.
  EXPECT_EQ(Dbt.call(F1.Entry, {}, Type::I).asInt32(), 111);

  // The guest regenerates the function in place mid-run. The publish bumps
  // the memory's code generation; a stale translation would return 111.
  CodePtr F2 = emitConstFn(Tgt, CM, 222);
  ASSERT_TRUE(F2.isValid());
  ASSERT_EQ(F2.Entry, F1.Entry);
  EXPECT_EQ(Dbt.call(F2.Entry, {}, Type::I).asInt32(), 222);

  // And once more, with a different entry layout: a second region whose
  // publish must not resurrect the first region's stale code either.
  CodeMem CM2 = Mem.allocCode(4096);
  CodePtr G = emitConstFn(Tgt, CM2, 333);
  ASSERT_TRUE(G.isValid());
  EXPECT_EQ(Dbt.call(G.Entry, {}, Type::I).asInt32(), 333);
  EXPECT_EQ(Dbt.call(F2.Entry, {}, Type::I).asInt32(), 222);
}

TEST(DbtTest, ConcurrentTranslationSharedEngine) {
  sim::Memory Mem;
  mips::MipsTarget Tgt;
  auto Engine = std::make_shared<dbt::TranslationEngine>(Mem);

  // A pool of small functions: f_k(x) = 3*x + k, each its own region.
  constexpr int NumFns = 8;
  CodePtr Fns[NumFns];
  for (int K = 0; K < NumFns; ++K) {
    VCode V(Tgt);
    Reg Arg[1];
    V.lambda("%i", Arg, LeafHint, Mem.allocCode(4096));
    V.binopImm(BinOp::Mul, Type::I, Arg[0], Arg[0], 3);
    V.binopImm(BinOp::Add, Type::I, Arg[0], Arg[0], K);
    V.ret(Type::I, Arg[0]);
    Fns[K] = V.end();
    ASSERT_TRUE(Fns[K].isValid());
  }

  std::atomic<bool> Stop{false};
  std::atomic<int> Failures{0};
  std::vector<std::thread> Threads;
  constexpr int NumThreads = 4;
  for (int T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      dbt::MipsTranslatingCpu Cpu(Mem, Engine);
      Cpu.setStackTop(Mem.allocStack());
      Rng R(uint64_t(T) * 977 + 11);
      for (int It = 0; It < 400 && !Failures.load(); ++It) {
        int K = int(R.below(NumFns));
        int X = int(uint32_t(R.next()) & 0xffff);
        int Got =
            Cpu.call(Fns[K].Entry, {TypedValue::fromInt(X)}, Type::I)
                .asInt32();
        if (Got != 3 * X + K)
          ++Failures;
      }
    });
  }
  // The "guest compiler" keeps publishing fresh code, bumping the code
  // generation: every dispatcher must flush its local index and the
  // shared cache sees lookup/insert/invalidate from all sides at once.
  std::thread Publisher([&] {
    CodeMem CM = Mem.allocCode(4096);
    for (int I = 0; I < 50 && !Stop.load(); ++I) {
      CodePtr P = emitConstFn(Tgt, CM, I);
      if (!P.isValid())
        ++Failures;
      std::this_thread::yield();
    }
  });
  for (std::thread &Th : Threads)
    Th.join();
  Stop = true;
  Publisher.join();
  EXPECT_EQ(Failures.load(), 0);
}

} // namespace
