//===- tests/AshTest.cpp - ASH data-manipulation tests -----------------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
// Correctness of the three Table 4 implementations against a host
// reference (copy + checksum + byte-swap over random buffers), plus the
// performance shape the table reports: integration beats separate passes,
// and the ASH pipeline beats the hand-integrated loop.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "ash/Ash.h"
#include "support/Rng.h"
#include <gtest/gtest.h>

using namespace vcode;
using namespace vcode::ash;
using namespace vcode::test;

namespace {

class AshTest : public ::testing::TestWithParam<std::string> {
protected:
  void SetUp() override { B = makeBundle(GetParam()); }

  SimAddr makeBuffer(uint32_t Bytes, uint64_t Seed) {
    SimAddr A = B.Mem->alloc(Bytes, 8);
    Rng R(Seed);
    for (uint32_t I = 0; I < Bytes; I += 4)
      B.Mem->write<uint32_t>(A + I, uint32_t(R.next()));
    return A;
  }

  bool dstMatches(SimAddr Dst, SimAddr Ref, uint32_t Bytes) {
    for (uint32_t I = 0; I < Bytes; I += 4)
      if (B.Mem->read<uint32_t>(Dst + I) != B.Mem->read<uint32_t>(Ref + I))
        return false;
    return true;
  }

  TargetBundle B;
};

const std::vector<Step> CopyCksum = {Step::Copy, Step::Checksum};
const std::vector<Step> CopyCksumSwap = {Step::ByteSwap, Step::Copy,
                                         Step::Checksum};
const std::vector<Step> FourLayer = {Step::ByteSwap, Step::Xor, Step::Copy,
                                     Step::Checksum};

TEST_P(AshTest, AllVariantsMatchReference) {
  for (const auto &Steps : {CopyCksum, CopyCksumSwap, FourLayer}) {
    for (uint32_t Bytes : {4u, 16u, 64u, 1000u, 4096u}) {
      VCODE_SEEDED(Bytes * 7 + Steps.size());
      SimAddr Src = makeBuffer(Bytes, TestSeed);
      SimAddr RefDst = B.Mem->alloc(Bytes, 8);
      uint32_t WantSum = refRun(Steps, *B.Mem, RefDst, Src, Bytes);

      SeparateLoops Sep(*B.Tgt, *B.Mem, Steps);
      IntegratedLoop Intg(*B.Tgt, *B.Mem, Steps);
      Pipeline Ash(*B.Tgt, *B.Mem);
      for (Step S : Steps)
        Ash.addStep(S);
      Ash.compile(4);

      SimAddr D1 = B.Mem->alloc(Bytes, 8);
      EXPECT_EQ(Sep.run(*B.Cpu, D1, Src, Bytes), WantSum)
          << "separate, " << Bytes << "B";
      EXPECT_TRUE(dstMatches(D1, RefDst, Bytes));

      SimAddr D2 = B.Mem->alloc(Bytes, 8);
      EXPECT_EQ(Intg.run(*B.Cpu, D2, Src, Bytes), WantSum)
          << "integrated, " << Bytes << "B";
      EXPECT_TRUE(dstMatches(D2, RefDst, Bytes));

      SimAddr D3 = B.Mem->alloc(Bytes, 8);
      EXPECT_EQ(Ash.run(*B.Cpu, D3, Src, Bytes), WantSum)
          << "ash, " << Bytes << "B";
      EXPECT_TRUE(dstMatches(D3, RefDst, Bytes));
    }
  }
}

TEST_P(AshTest, ChecksumMatchesKnownValue) {
  // A tiny hand-computable case: two words.
  SimAddr Src = B.Mem->alloc(8, 8);
  B.Mem->write<uint32_t>(Src, 0x00010002);
  B.Mem->write<uint32_t>(Src + 4, 0xffff0003);
  SimAddr Dst = B.Mem->alloc(8, 8);
  IntegratedLoop Intg(*B.Tgt, *B.Mem, CopyCksum);
  // sum = 2 + 1 + 3 + 0xffff = 0x10005 -> fold -> 0x0006
  EXPECT_EQ(Intg.run(*B.Cpu, Dst, Src, 8), 0x0006u);
}

TEST_P(AshTest, IntegrationWins) {
  // Table 4's shape: separate > C integrated > ASH in cycles.
  const uint32_t Bytes = 16 * 1024;
  VCODE_SEEDED(99);
  SimAddr Src = makeBuffer(Bytes, TestSeed);
  SimAddr Dst = B.Mem->alloc(Bytes, 8);

  SeparateLoops Sep(*B.Tgt, *B.Mem, CopyCksumSwap);
  IntegratedLoop Intg(*B.Tgt, *B.Mem, CopyCksumSwap);
  Pipeline Ash(*B.Tgt, *B.Mem);
  for (Step S : CopyCksumSwap)
    Ash.addStep(S);
  Ash.compile(4);

  uint64_t SepCycles = 0;
  Sep.run(*B.Cpu, Dst, Src, Bytes, &SepCycles); // warm
  Sep.run(*B.Cpu, Dst, Src, Bytes, &SepCycles);
  Intg.run(*B.Cpu, Dst, Src, Bytes);
  Intg.run(*B.Cpu, Dst, Src, Bytes);
  uint64_t IntgCycles = B.Cpu->lastStats().Cycles;
  Ash.run(*B.Cpu, Dst, Src, Bytes);
  Ash.run(*B.Cpu, Dst, Src, Bytes);
  uint64_t AshCycles = B.Cpu->lastStats().Cycles;

  EXPECT_LT(IntgCycles, SepCycles);
  EXPECT_LT(AshCycles, IntgCycles);
}

TEST_P(AshTest, XorKeyIsSpecializedIntoTheCode) {
  // Two pipelines with different keys produce different data; each
  // matches the reference for its own key (the key lives in the
  // instruction stream, not in a parameter register).
  const uint32_t Bytes = 256;
  VCODE_SEEDED(3);
  SimAddr Src = makeBuffer(Bytes, TestSeed);
  std::vector<Step> Steps = {Step::Xor, Step::Copy, Step::Checksum};

  for (uint32_t Key : {0x00000000u, 0xffffffffu, 0x12345678u}) {
    Pipeline P(*B.Tgt, *B.Mem);
    for (Step S : Steps)
      P.addStep(S);
    P.setXorKey(Key);
    P.compile(4);

    SimAddr Dst = B.Mem->alloc(Bytes, 8);
    SimAddr RefDst = B.Mem->alloc(Bytes, 8);
    uint32_t Want = refRun(Steps, *B.Mem, RefDst, Src, Bytes, Key);
    EXPECT_EQ(P.run(*B.Cpu, Dst, Src, Bytes), Want) << std::hex << Key;
    EXPECT_TRUE(dstMatches(Dst, RefDst, Bytes)) << std::hex << Key;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTargets, AshTest,
                         ::testing::ValuesIn(allTargetNames()),
                         [](const auto &Info) { return Info.param; });

} // namespace
