//===- tests/DcgTest.cpp - DCG baseline tests ---------------------------------===//
//
// Part of the vcode reproduction of Engler, PLDI 1996.
//
// The DCG baseline must generate correct code (it shares the VCODE
// backends) and must be substantially slower to *generate* code than
// VCODE proper — the property the bench_dcg_compare harness measures; a
// coarse version is asserted here so regressions are caught by ctest.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "dcg/Dcg.h"
#include <chrono>
#include <gtest/gtest.h>

using namespace vcode;
using namespace vcode::test;
using sim::TypedValue;

namespace {

class DcgTest : public ::testing::TestWithParam<std::string> {
protected:
  void SetUp() override { B = makeBundle(GetParam()); }
  TargetBundle B;
};

TEST_P(DcgTest, ExpressionTreeCompiles) {
  // f(a, b) = (a + b) * 3 - (a - 7)
  dcg::Dcg D(*B.Tgt);
  D.beginFunction("%i%i", /*IsLeaf=*/true, B.Mem->allocCode(8192));
  dcg::Node *T = D.binop(
      BinOp::Sub, Type::I,
      D.binop(BinOp::Mul, Type::I,
              D.binop(BinOp::Add, Type::I, D.arg(0), D.arg(1)),
              D.cnst(Type::I, 3)),
      D.binop(BinOp::Sub, Type::I, D.arg(0), D.cnst(Type::I, 7)));
  D.stmtRet(Type::I, T);
  CodePtr Fn = D.endFunction();

  auto Ref = [](int32_t A, int32_t Bv) { return (A + Bv) * 3 - (A - 7); };
  for (auto [A, Bv] : {std::pair{1, 2}, {0, 0}, {-5, 9}, {1000, -1}})
    EXPECT_EQ(B.Cpu->call(Fn.Entry,
                          {TypedValue::fromInt(A), TypedValue::fromInt(Bv)})
                  .asInt32(),
              Ref(A, Bv));
}

TEST_P(DcgTest, LoadsStoresAndBranches) {
  // f(p) = { if (p[0] > p[1]) p[2] = p[0]; else p[2] = p[1]; return p[2]; }
  dcg::Dcg D(*B.Tgt);
  D.beginFunction("%p", true, B.Mem->allocCode(8192));
  Label LElse = D.genLabel(), LEnd = D.genLabel();
  D.stmtBranch(Cond::Le, Type::I, D.load(Type::I, D.arg(0, Type::P)),
               D.load(Type::I,
                      D.binop(BinOp::Add, Type::P, D.arg(0, Type::P),
                              D.cnst(Type::I, 4))),
               LElse);
  D.stmtStore(Type::I,
              D.binop(BinOp::Add, Type::P, D.arg(0, Type::P),
                      D.cnst(Type::I, 8)),
              D.load(Type::I, D.arg(0, Type::P)));
  D.stmtJump(LEnd);
  D.bindLabel(LElse);
  D.stmtStore(Type::I,
              D.binop(BinOp::Add, Type::P, D.arg(0, Type::P),
                      D.cnst(Type::I, 8)),
              D.load(Type::I,
                     D.binop(BinOp::Add, Type::P, D.arg(0, Type::P),
                             D.cnst(Type::I, 4))));
  D.bindLabel(LEnd);
  D.stmtRet(Type::I,
            D.load(Type::I, D.binop(BinOp::Add, Type::P, D.arg(0, Type::P),
                                    D.cnst(Type::I, 8))));
  CodePtr Fn = D.endFunction();

  SimAddr Buf = B.Mem->alloc(16, 8);
  auto Run = [&](int32_t X, int32_t Y) {
    B.Mem->write<int32_t>(Buf, X);
    B.Mem->write<int32_t>(Buf + 4, Y);
    return B.Cpu->call(Fn.Entry, {TypedValue::fromPtr(Buf)}).asInt32();
  };
  EXPECT_EQ(Run(3, 9), 9);
  EXPECT_EQ(Run(9, 3), 9);
  EXPECT_EQ(Run(-1, -2), -1);
}

TEST_P(DcgTest, VcodeGeneratesFasterThanDcg) {
  // Generate the same 600-instruction function both ways, many times;
  // VCODE must win by a wide margin (paper: ~35x on the DEC hardware).
  // The function is sized so fixed per-function costs both paths share —
  // prologue/epilogue, arena bookkeeping, CodeMap publication in v_end —
  // amortize out and the ratio measures per-instruction generation.
  auto Mark = B.Mem->mark();
  const int Reps = 200, Ops = 600;

  auto Now = [] { return std::chrono::steady_clock::now(); };
  auto Start = Now();
  for (int R = 0; R < Reps; ++R) {
    B.Mem->release(Mark);
    VCode V(*B.Tgt);
    Reg Arg[1];
    V.lambda("%i", Arg, LeafHint, B.Mem->allocCode(1 << 14));
    Reg T = V.getreg(Type::I);
    V.movi(T, Arg[0]);
    for (int I = 0; I < Ops; ++I)
      V.addii(T, T, 1);
    V.reti(T);
    (void)V.end();
  }
  double VcodeNs = std::chrono::duration<double, std::nano>(Now() - Start)
                       .count() /
                   (double(Reps) * Ops);

  Start = Now();
  for (int R = 0; R < Reps; ++R) {
    B.Mem->release(Mark);
    dcg::Dcg D(*B.Tgt);
    D.beginFunction("%i", true, B.Mem->allocCode(1 << 14));
    dcg::Node *T = D.arg(0);
    for (int I = 0; I < Ops; ++I)
      T = D.binop(BinOp::Add, Type::I, T, D.cnst(Type::I, 1));
    D.stmtRet(Type::I, T);
    (void)D.endFunction();
  }
  double DcgNs = std::chrono::duration<double, std::nano>(Now() - Start)
                     .count() /
                 (double(Reps) * Ops);

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  // Sanitizer instrumentation distorts the relative costs; only require
  // the direction to hold.
  EXPECT_GT(DcgNs / VcodeNs, 1.0)
      << "vcode " << VcodeNs << " ns/insn vs dcg " << DcgNs << " ns/insn";
#else
  EXPECT_GT(DcgNs / VcodeNs, 3.0)
      << "vcode " << VcodeNs << " ns/insn vs dcg " << DcgNs << " ns/insn";
#endif
}

TEST_P(DcgTest, MemoryFootprintContrast) {
  // Paper §3: VCODE's state is O(labels + unresolved jumps); an IR system
  // is O(instructions). Generate 3000 straight-line instructions each way
  // and compare the book-keeping.
  const int Ops = 3000;
  {
    VCode V(*B.Tgt);
    Reg Arg[1];
    V.lambda("%i", Arg, LeafHint, B.Mem->allocCode(1 << 16));
    Reg R = V.getreg(Type::I);
    V.movi(R, Arg[0]);
    for (int I = 0; I < Ops; ++I)
      V.addii(R, R, 1);
    EXPECT_LE(V.pendingFixups(), 4u)
        << "vcode book-keeping must not grow with instruction count";
    EXPECT_LE(V.labelCount(), 4u);
    V.reti(R);
    (void)V.end();
  }
  {
    dcg::Dcg D(*B.Tgt);
    D.beginFunction("%i", true, B.Mem->allocCode(1 << 16));
    dcg::Node *T = D.arg(0);
    for (int I = 0; I < Ops; ++I)
      T = D.binop(BinOp::Add, Type::I, T, D.cnst(Type::I, 1));
    D.stmtRet(Type::I, T);
    EXPECT_GE(D.irNodes(), size_t(2 * Ops))
        << "the IR baseline allocates per-instruction state";
    (void)D.endFunction();
  }
}

INSTANTIATE_TEST_SUITE_P(AllTargets, DcgTest,
                         ::testing::ValuesIn(allTargetNames()),
                         [](const auto &Info) { return Info.param; });

} // namespace
